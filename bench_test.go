// Package fnpr's benchmark suite regenerates every figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFigure1Offsets   — the Figure 1 start-offset analysis
//	BenchmarkFigure2Scenario  — the Figure 2 naive-bound counter-example
//	BenchmarkFigure4Functions — construction of the Figure 4 benchmarks
//	BenchmarkFigure5Sweep     — the full Figure 5 Q sweep (Algorithm 1 on
//	                            all three functions + state of the art)
//
// plus ablation benchmarks for the design choices DESIGN.md calls out:
// Algorithm 1 vs Equation 4 cost at several Q, the UCB cache analysis, the
// end-to-end CFG→fi pipeline, and the FNPR simulator. Figure-level
// benchmarks report headline numbers (bounds at representative Q) through
// b.ReportMetric so `go test -bench` output doubles as the experiment log.
package fnpr

import (
	"fmt"
	"math/rand"
	"testing"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/eval"
	"fnpr/internal/exact"
	"fnpr/internal/fixednpr"
	"fnpr/internal/memo"
	"fnpr/internal/npr"
	"fnpr/internal/obs"
	"fnpr/internal/sched"
	"fnpr/internal/sim"
	"fnpr/internal/synth"
	"fnpr/internal/system"
	"fnpr/internal/task"
)

// BenchmarkFigure1Offsets measures the Eq 1-3 breadth-first interval
// analysis on the paper's Figure 1 CFG and reports the resulting WCET.
func BenchmarkFigure1Offsets(b *testing.B) {
	g := cfg.Figure1()
	var wcet float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := g.AnalyzeOffsets()
		if err != nil {
			b.Fatal(err)
		}
		wcet = off.WCET
	}
	b.ReportMetric(wcet, "WCET")
}

// BenchmarkFigure2Scenario regenerates the Figure 2 counter-example and
// reports the three quantities the figure contrasts.
func BenchmarkFigure2Scenario(b *testing.B) {
	var rep *eval.Figure2Report
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(rep.Naive, "naive")
	b.ReportMetric(rep.Peak.TotalDelay, "worst-run")
	b.ReportMetric(rep.Algorithm1, "algorithm1")
}

// BenchmarkFigure4Functions measures construction of the three synthetic
// benchmark delay functions (Gaussian sampling into piecewise envelopes).
func BenchmarkFigure4Functions(b *testing.B) {
	params := delay.CalibratedParams()
	for i := 0; i < b.N; i++ {
		fns := params.Benchmarks()
		if len(fns) != 3 {
			b.Fatal("missing benchmark functions")
		}
	}
}

// BenchmarkFigure5Sweep regenerates the full Figure 5 data: Algorithm 1 on
// the three benchmark functions plus the state-of-the-art bound over the
// default Q grid. Headline values at Q=100 are reported as metrics.
//
// Two families of sub-benchmarks:
//
//   - e2e/*: the full Figure 5 pipeline (worker pool, degradation ladder,
//     state-of-the-art series, invariant checks) — the user-visible cost.
//   - kernel=*/n=*: sequential Algorithm 1 over the default Q grid on
//     Figure 4-derived functions resampled at n pieces, scan kernel vs
//     indexed kernel with the index prebuilt (its amortized regime). This
//     isolates the query-kernel cost from pool and harness overhead; the
//     scan/indexed pairs feed the speedup table of BENCH_PR3.json.
func BenchmarkFigure5Sweep(b *testing.B) {
	for _, variant := range []struct {
		name   string
		params delay.BenchmarkParams
	}{
		{"e2e/literal", delay.LiteralParams()},
		{"e2e/calibrated", delay.CalibratedParams()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var tbl = new(struct {
				g2At100, soaAt100 float64
			})
			for i := 0; i < b.N; i++ {
				t, err := eval.Figure5(nil, variant.params, eval.SweepOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := eval.Figure5Checks(t, 1); err != nil {
					b.Fatal(err)
				}
				for qi, q := range t.X {
					if q == 100 {
						for _, s := range t.Series {
							switch s.Name {
							case "Gaussian 2":
								tbl.g2At100 = s.Y[qi]
							case "State of the Art":
								tbl.soaAt100 = s.Y[qi]
							}
						}
					}
				}
			}
			b.ReportMetric(tbl.g2At100, "alg1(G2,Q=100)")
			b.ReportMetric(tbl.soaAt100, "soa(Q=100)")
		})
	}
	params := delay.CalibratedParams()
	names := delay.BenchmarkOrder()
	qs := eval.DefaultQGrid()
	for _, n := range []int{256, 1024, 4096, 16384} {
		byName, err := params.BenchmarksAt(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, kernel := range []string{"scan", "indexed"} {
			fns := make([]delay.Function, len(names))
			for i, nm := range names {
				p, ok := byName[nm]
				if !ok {
					b.Fatalf("missing benchmark function %q", nm)
				}
				if kernel == "indexed" {
					fns[i] = delay.NewIndexed(p)
				} else {
					fns[i] = p
				}
			}
			b.Run(fmt.Sprintf("kernel=%s/n=%d", kernel, n), func(b *testing.B) {
				var g2At100 float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for fi, f := range fns {
						for _, q := range qs {
							v, err := core.Analyze(nil, f, q, core.Options{})
							if err != nil {
								b.Fatal(err)
							}
							if q == 100 && names[fi] == "Gaussian 2" {
								g2At100 = v.TotalDelay
							}
						}
					}
				}
				b.ReportMetric(g2At100, "alg1(G2,Q=100)")
			})
		}
	}
}

// BenchmarkIndexedKernel micro-benchmarks the two Function queries Algorithm 1
// is built from, scan vs indexed, on a large Figure 4-derived function, plus
// the one-time index construction cost those speedups amortize.
func BenchmarkIndexedKernel(b *testing.B) {
	const n = 16384
	byName, err := delay.CalibratedParams().BenchmarksAt(n)
	if err != nil {
		b.Fatal(err)
	}
	p := byName["Gaussian 2"]
	ix := delay.NewIndexed(p)
	c := p.Domain()
	kernels := []struct {
		name string
		f    delay.Function
	}{{"scan", p}, {"indexed", ix}}
	for _, k := range kernels {
		b.Run("MaxOn/kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := float64(i%97) / 97 * c / 2
				k.f.MaxOn(a, a+c/2)
			}
		})
	}
	for _, k := range kernels {
		b.Run("FirstReach/kernel="+k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := float64(i%97) / 97 * c / 2
				k.f.FirstReachDescending(a, a+c/2, a+c/2)
			}
		})
	}
	b.Run("Build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			delay.NewIndexed(p)
		}
	})
}

// BenchmarkAlgorithm1 measures the core bound across Q (ablation: cost grows
// as Q shrinks because more windows are walked).
func BenchmarkAlgorithm1(b *testing.B) {
	f := delay.CalibratedParams().Gaussian2()
	for _, q := range []float64{20, 100, 500, 2000} {
		b.Run(fmt.Sprintf("Q=%g", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(nil, f, q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEquation4 measures the state-of-the-art fixpoint for comparison.
func BenchmarkEquation4(b *testing.B) {
	f := delay.CalibratedParams().Gaussian2()
	for _, q := range []float64{20, 100, 500, 2000} {
		b.Run(fmt.Sprintf("Q=%g", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(nil, f, q, core.Options{Method: core.Equation4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCFGPipeline measures the end-to-end Section IV pipeline on
// synthetic programs of increasing size: random CFG -> loop-free offsets ->
// UCB analysis -> fi(t).
func BenchmarkCFGPipeline(b *testing.B) {
	cc := cache.Config{Sets: 64, Assoc: 2, LineBytes: 16, ReloadCost: 2}
	for _, blocks := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			r := rand.New(rand.NewSource(42))
			g, acc, err := synth.CFG(r, synth.CFGParams{
				Blocks: blocks, MaxFanout: 3,
				EMinLo: 1, EMinHi: 4, ESpread: 4,
				Lines: 128, AccessesPerBloc: 8, Reuse: 0.6,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off, err := g.AnalyzeOffsets()
				if err != nil {
					b.Fatal(err)
				}
				ucb, err := cache.AnalyzeUCB(g, acc, cc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := delay.FromUCB(off, ucb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorFNPR measures the discrete-event simulator under the
// three preemption models.
func BenchmarkSimulatorFNPR(b *testing.B) {
	ts := task.Set{
		{Name: "fast", C: 1, T: 7, Q: 1},
		{Name: "medium", C: 4, T: 23, Q: 2},
		{Name: "victim", C: 30, T: 120, Q: 6},
	}
	ts.AssignRateMonotonic()
	fns := []delay.Function{nil, delay.Constant(0.3, 4), delay.FrontLoaded(3, 0.5, 30)}
	for _, mode := range []sim.Mode{sim.FullyPreemptive, sim.FloatingNPR, sim.NonPreemptive} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Tasks: ts, Policy: sim.FixedPriority, Mode: mode,
					Horizon: 5000, Delay: fns,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQAssignment measures the Q derivation analyses.
func BenchmarkQAssignment(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	ts, err := synth.TaskSet(r, synth.TaskSetParams{
		N: 8, Utilization: 0.7, PeriodLo: 10, PeriodHi: 1000, RoundPeriod: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("EDF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := npr.AssignQ(ts, npr.EDF); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := npr.AssignQ(ts, npr.FixedPriority); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDelayAwareRTA measures the FNPR response-time analysis with both
// delay methods (the schedulability-level ablation of the contribution).
func BenchmarkDelayAwareRTA(b *testing.B) {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10, Prio: 0},
		{Name: "mid", C: 20, T: 200, Q: 8, Prio: 1},
		{Name: "lo", C: 40, T: 400, Q: 8, Prio: 2},
	}
	fns := []delay.Function{nil, delay.FrontLoaded(4, 0.5, 20), delay.FrontLoaded(5, 0.5, 40)}
	for _, m := range []sched.DelayMethod{sched.Algorithm1, sched.Equation4} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Analyze(nil, ts, sched.Options{Delay: fns, Method: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRTASolver measures the fixed-priority RTA under the monotone and
// cutting-plane fixpoint solvers on a population of wide-period task sets
// whose delay functions are piecewise curves at n pieces (indexed, so the
// per-task core bound stays cheap and the fixpoint engine dominates). Both
// solvers are warm-started from the no-delay response times, exactly like
// the analysis pipelines; results are bit-identical, only the iteration
// count differs. The rta-iters/op metric is the engine-evaluation count per
// analysis pass (sched.rta.solver.iterations), and the solver=monotone vs
// solver=cutting pair feeds the speedup table of BENCH_PR9.json.
func BenchmarkRTASolver(b *testing.B) {
	const sets = 10
	type fixture struct {
		ts   task.Set
		fns  []delay.Function
		warm []float64
	}
	build := func(pieces int) []fixture {
		var out []fixture
		for trial := 0; len(out) < sets; trial++ {
			r := synth.SubRand(1903, pieces, trial)
			ts, err := synth.TaskSet(r, synth.TaskSetParams{
				N: 10, Utilization: 0.55 + 0.15*r.Float64(),
				PeriodLo: 10, PeriodHi: 10_000, RoundPeriod: true,
				QFraction: 0.9, MinQ: 0.1,
			})
			if err != nil {
				continue
			}
			fns := make([]delay.Function, len(ts))
			for i := 1; i < len(ts); i++ {
				peak := 0.8 * ts[i].Q
				if peak > 0.9*ts[i].C {
					peak = 0.9 * ts[i].C
				}
				if peak <= 0 {
					continue
				}
				// A decaying sawtooth over the task's execution at the
				// requested resolution.
				xs := make([]float64, pieces+1)
				vs := make([]float64, pieces)
				for k := 0; k <= pieces; k++ {
					xs[k] = ts[i].C * float64(k) / float64(pieces)
				}
				for k := 0; k < pieces; k++ {
					frac := float64(k) / float64(pieces)
					vs[k] = peak * (0.05 + 0.95*(1-frac)*(0.7+0.3*float64((7*k)%5)/4))
				}
				p, err := delay.NewPiecewise(xs, vs)
				if err != nil {
					b.Fatal(err)
				}
				fns[i] = delay.NewIndexed(p)
			}
			nd, err := sched.Analyze(nil, ts, sched.Options{Solver: sched.SolverMonotone})
			if err != nil {
				continue
			}
			out = append(out, fixture{ts: ts, fns: fns, warm: nd.Response})
		}
		return out
	}
	for _, n := range []int{64, 1024, 16384} {
		fixtures := build(n)
		for _, sv := range []struct {
			name   string
			solver sched.Solver
		}{{"monotone", sched.SolverMonotone}, {"cutting", sched.SolverCutting}} {
			b.Run(fmt.Sprintf("solver=%s/n=%d", sv.name, n), func(b *testing.B) {
				reg := obs.NewRegistry()
				sc := obs.NewScope(reg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, fx := range fixtures {
						_, err := sched.Analyze(nil, fx.ts, sched.Options{
							Delay: fx.fns, Method: sched.Algorithm1,
							Warm: fx.warm, Solver: sv.solver, Obs: sc,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(reg.Counter("sched.rta.solver.iterations").Value())/float64(b.N), "rta-iters/op")
			})
		}
	}
}

// BenchmarkCacheSim measures the concrete LRU cache simulator on a long
// trace (substrate sanity: the validation oracle must itself be cheap).
func BenchmarkCacheSim(b *testing.B) {
	cc := cache.Config{Sets: 64, Assoc: 4, LineBytes: 32, ReloadCost: 1}
	r := rand.New(rand.NewSource(3))
	trace := make([]cache.Line, 100_000)
	for i := range trace {
		trace[i] = cache.Line(r.Intn(512))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cache.NewSim(cc)
		if err != nil {
			b.Fatal(err)
		}
		s.AccessAll(trace)
	}
}

// BenchmarkAcceptanceExperiment runs the extension schedulability experiment
// (acceptance ratio vs utilization) at reduced scale and reports the
// separation between Algorithm 1 and Equation 4 at the steepest point.
func BenchmarkAcceptanceExperiment(b *testing.B) {
	p := eval.DefaultAcceptanceParams()
	p.SetsPerPoint = 40
	var sep float64
	for i := 0; i < b.N; i++ {
		tbl, err := eval.Acceptance(nil, p)
		if err != nil {
			b.Fatal(err)
		}
		if err := eval.AcceptanceChecks(tbl); err != nil {
			b.Fatal(err)
		}
		var a1, e4 []float64
		for _, s := range tbl.Series {
			switch s.Name {
			case "algorithm1":
				a1 = s.Y
			case "equation4":
				e4 = s.Y
			}
		}
		sep = 0
		for k := range a1 {
			if d := a1[k] - e4[k]; d > sep {
				sep = d
			}
		}
	}
	b.ReportMetric(sep, "max-separation")
}

// BenchmarkAcceptanceCampaign measures the sharded acceptance-ratio engine
// at several worker-pool sizes on a reduced grid. The output table is
// bit-identical across the sub-benchmarks (the campaign's determinism
// contract), so the series isolates pure scheduling overhead/speedup; the
// workers=1/workers=8 pair feeds the speedup table of BENCH_PR5.json.
// Wall-clock gains track the machine's core count — on a single-core runner
// the sub-benchmarks coincide.
func BenchmarkAcceptanceCampaign(b *testing.B) {
	p := eval.DefaultAcceptanceParams()
	p.SetsPerPoint = 20
	p.UEnd = 0.80
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p.Workers = w
			b.ReportAllocs()
			var points int
			for i := 0; i < b.N; i++ {
				tbl, err := eval.Acceptance(nil, p)
				if err != nil {
					b.Fatal(err)
				}
				points = len(tbl.X)
			}
			trials := float64(points * p.SetsPerPoint)
			b.ReportMetric(trials*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkSimTrial measures one Monte-Carlo simulation trial, fresh
// simulator per run (mode=unpooled, the package-level sim.Run) vs a reused
// sim.Runner (mode=pooled, the campaign configuration). The pair feeds the
// allocs/op reduction table of BENCH_PR5.json.
func BenchmarkSimTrial(b *testing.B) {
	ts := task.Set{
		{Name: "fast", C: 1, T: 7, Q: 1},
		{Name: "medium", C: 4, T: 23, Q: 2},
		{Name: "victim", C: 30, T: 120, Q: 6},
	}
	ts.AssignRateMonotonic()
	fns := []delay.Function{nil, delay.Constant(0.3, 4), delay.FrontLoaded(3, 0.5, 30)}
	cfg := sim.Config{
		Tasks: ts, Policy: sim.FixedPriority, Mode: sim.FloatingNPR,
		Horizon: 5000, Delay: fns,
	}
	b.Run("mode=unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=pooled", func(b *testing.B) {
		runner := sim.NewRunner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(nil, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFixedVsFloating compares, on the same linear task, the optimal
// fixed preemption-point selection (Bertogna et al.) with the floating
// Algorithm 1 bound at equal maximum non-preemptive interval.
func BenchmarkFixedVsFloating(b *testing.B) {
	var tk fixednpr.Task
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		tk.Chunks = append(tk.Chunks, fixednpr.Chunk{
			Duration: 3 + r.Float64()*6,
			Cost:     r.Float64() * 2,
		})
	}
	const qmax = 15
	f, err := tk.DelayFunction()
	if err != nil {
		b.Fatal(err)
	}
	var fixed, floating float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := fixednpr.SelectPoints(tk, qmax)
		if err != nil {
			b.Fatal(err)
		}
		fixed = sel.TotalCost
		fl, err := core.Analyze(nil, f, qmax, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		floating = fl.TotalDelay
	}
	b.ReportMetric(fixed, "fixed-delay")
	b.ReportMetric(floating, "floating-delay")
}

// BenchmarkLimitedRefinement measures the preemption-count-limited analysis
// (future work (ii)) against plain Algorithm 1 at the RTA level.
func BenchmarkLimitedRefinement(b *testing.B) {
	ts := task.Set{
		{Name: "hi", C: 5, T: 100, Q: 5, Prio: 0},
		{Name: "mid", C: 9, T: 250, Q: 6, Prio: 1},
		{Name: "lo", C: 60, T: 600, D: 400, Q: 10, Prio: 2},
	}
	fns := []delay.Function{nil, delay.Constant(1, 9), delay.Constant(3, 60)}
	var plainR, limR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err := sched.Analyze(nil, ts, sched.Options{Delay: fns, Method: sched.Algorithm1})
		if err != nil {
			b.Fatal(err)
		}
		lim, err := sched.Analyze(nil, ts, sched.Options{Delay: fns, Method: sched.Algorithm1, Limited: true})
		if err != nil {
			b.Fatal(err)
		}
		plainR, limR = plain.Response[2], lim.Response[2]
	}
	b.ReportMetric(plainR, "R-plain")
	b.ReportMetric(limR, "R-limited")
}

// BenchmarkAbstractCacheAnalysis measures the must/may abstract
// interpretation on synthetic programs.
func BenchmarkAbstractCacheAnalysis(b *testing.B) {
	cc := cache.Config{Sets: 64, Assoc: 4, LineBytes: 32, ReloadCost: 10}
	r := rand.New(rand.NewSource(6))
	g, acc, err := synth.CFG(r, synth.CFGParams{
		Blocks: 128, MaxFanout: 3,
		EMinLo: 1, EMinHi: 4, ESpread: 4,
		Lines: 256, AccessesPerBloc: 10, Reuse: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.AnalyzeAbstract(g, acc, cc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreemptionCollation runs the preemption-count sweep (the paper's
// motivation: FNPR collates arrivals into fewer preemptions) and reports the
// per-job preemption counts at the largest Q under both models.
func BenchmarkPreemptionCollation(b *testing.B) {
	p := eval.DefaultPreemptionParams()
	p.Horizon = 12000
	var fnpr, full float64
	for i := 0; i < b.N; i++ {
		tbl, err := eval.Preemptions(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := eval.PreemptionChecks(tbl); err != nil {
			b.Fatal(err)
		}
		last := len(tbl.X) - 1
		fnpr = tbl.Series[0].Y[last]
		full = tbl.Series[1].Y[last]
	}
	b.ReportMetric(fnpr, "preempts/job-fnpr")
	b.ReportMetric(full, "preempts/job-fullpre")
}

// BenchmarkSystemPipeline measures the complete program-to-schedulability
// stack of internal/system on a three-task system.
func BenchmarkSystemPipeline(b *testing.B) {
	mk := func(lines []cache.Line, unit float64) (*cfg.Graph, cache.AccessMap) {
		g := cfg.New()
		load := g.AddSimple("load", unit*2, unit*3)
		head := g.AddSimple("head", unit/4, unit/4)
		body := g.AddSimple("body", unit, unit*1.5)
		store := g.AddSimple("store", unit, unit)
		g.MustEdge(load, head)
		g.MustEdge(head, body)
		g.MustEdge(body, head)
		g.MustEdge(head, store)
		g.LoopBounds[head] = cfg.Bound{Min: 2, Max: 4}
		return g, cache.AccessMap{load: lines, body: lines, store: lines[:1]}
	}
	g1, a1 := mk([]cache.Line{0, 1}, 1)
	g2, a2 := mk([]cache.Line{8, 9, 10, 11}, 2)
	g3, a3 := mk([]cache.Line{16, 17, 18, 19, 20, 21}, 4)
	cfgSys := system.Config{
		Tasks: []system.TaskProgram{
			{Name: "a", T: 80, Prio: 0, Graph: g1, Accesses: a1},
			{Name: "b", T: 400, Prio: 1, Q: 8, Graph: g2, Accesses: a2},
			{Name: "c", T: 2000, Prio: 2, Q: 6, Graph: g3, Accesses: a3},
		},
		Cache:  cache.Config{Sets: 16, Assoc: 2, LineBytes: 16, ReloadCost: 0.8},
		Policy: npr.FixedPriority,
		UseECB: true,
	}
	var cPrime float64
	for i := 0; i < b.N; i++ {
		res, err := system.Analyze(cfgSys)
		if err != nil {
			b.Fatal(err)
		}
		cPrime = res.Tasks[2].EffectiveC
	}
	b.ReportMetric(cPrime, "C'(lowest)")
}

// BenchmarkEnvelopeResolution is the precision-vs-speed ablation for
// piecewise envelopes: Algorithm 1 on the Gaussian 2 benchmark sampled at
// decreasing resolutions (Coarsen produces a conservative superset, so the
// bound can only grow as pieces shrink).
func BenchmarkEnvelopeResolution(b *testing.B) {
	full := delay.CalibratedParams().Gaussian2()
	for _, n := range []int{4000, 400, 40} {
		b.Run(fmt.Sprintf("pieces=%d", n), func(b *testing.B) {
			f, err := full.Coarsen(n)
			if err != nil {
				b.Fatal(err)
			}
			var bound float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := core.Analyze(nil, f, 100, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				bound = v.TotalDelay
			}
			b.ReportMetric(bound, "bound(Q=100)")
		})
	}
}

// BenchmarkExactOracle measures the branch-and-bound exact worst case on the
// tightness workload, reporting bound vs exact at Q=10.
func BenchmarkExactOracle(b *testing.B) {
	f, err := delay.NewPiecewise(
		[]float64{0, 6, 9, 18, 21, 30},
		[]float64{1, 4, 0.5, 4, 0.5},
	)
	if err != nil {
		b.Fatal(err)
	}
	var exact, bound float64
	for i := 0; i < b.N; i++ {
		e, err := core.ExactWorstCase(nil, f, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		exact = e
		r, _ := core.Analyze(nil, f, 10, core.Options{})
		bound = r.TotalDelay
	}
	b.ReportMetric(exact, "exact(Q=10)")
	b.ReportMetric(bound, "alg1(Q=10)")
}

// BenchmarkEDFTests compares the exhaustive processor-demand test with QPA
// on a high-utilization set where the exhaustive horizon is large.
func BenchmarkEDFTests(b *testing.B) {
	ts := task.Set{
		{Name: "a", C: 7, T: 20, D: 18},
		{Name: "b", C: 14, T: 50, D: 45},
		{Name: "c", C: 53, T: 199, D: 180},
		{Name: "d", C: 31, T: 311, D: 300},
	}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := npr.EDFSchedulable(ts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qpa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := npr.QPA(ts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoSweep measures the content-addressed result cache on the
// Figure 5 kernel workload: Algorithm 1 over the default Q grid on the three
// calibrated benchmark functions (indexed, 4096 pieces). cache=off is the
// uncached reference, cache=cold populates a fresh cache every iteration
// (the per-sweep overhead of memoization), and cache=warm repeats the sweep
// against a prepopulated cache so every query is answered by lookup. The
// cache=cold/cache=warm pair feeds the speedup table of BENCH_PR8.json —
// the repeated-sweep payoff the -cache flag buys.
func BenchmarkMemoSweep(b *testing.B) {
	const n = 4096
	byName, err := delay.CalibratedParams().BenchmarksAt(n)
	if err != nil {
		b.Fatal(err)
	}
	names := delay.BenchmarkOrder()
	fns := make([]delay.Function, len(names))
	for i, nm := range names {
		p, ok := byName[nm]
		if !ok {
			b.Fatalf("missing benchmark function %q", nm)
		}
		fns[i] = delay.NewIndexed(p)
	}
	qs := eval.DefaultQGrid()
	sweep := func(b *testing.B, c *memo.Cache) {
		b.Helper()
		for _, f := range fns {
			for _, q := range qs {
				if _, err := core.Analyze(nil, f, q, core.Options{Memo: c}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, nil)
		}
	})
	b.Run("cache=cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, core.NewResultCache(memo.Options{}))
		}
	})
	b.Run("cache=warm", func(b *testing.B) {
		c := core.NewResultCache(memo.Options{})
		sweep(b, c) // prepopulate: every timed query hits
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, c)
		}
	})
}

// BenchmarkAnalyzeSetEdit measures the incremental task-set analysis: an
// 8-task set is analyzed over a 10-point Q grid, then one task's delay
// function is edited and the set re-analyzed. mode=full recomputes all 80
// terms from scratch; mode=incremental re-analyzes against the cache warmed
// by the previous run, so only the edited task's 10 terms recompute. Each
// iteration uses a distinct mutant so the edited column can never self-cache
// across iterations. The recomputed_frac metric (recomputed terms / total
// terms, <0.5 required) and the mode=full/mode=incremental speedup feed
// BENCH_PR8.json.
func BenchmarkAnalyzeSetEdit(b *testing.B) {
	const nTasks = 8
	r := rand.New(rand.NewSource(20260808))
	type curve struct{ xs, vs []float64 }
	curves := make([]curve, nTasks)
	ts := make(task.Set, nTasks)
	base := make([]delay.Function, nTasks)
	for i := range ts {
		np := 300 + r.Intn(200)
		xs := []float64{0}
		vs := make([]float64, 0, np)
		for k := 0; k < np; k++ {
			xs = append(xs, xs[len(xs)-1]+0.5+r.Float64()*2)
			vs = append(vs, r.Float64()*2)
		}
		p, err := delay.NewPiecewise(xs, vs)
		if err != nil {
			b.Fatal(err)
		}
		curves[i] = curve{xs: xs, vs: vs}
		ts[i] = task.Task{Name: fmt.Sprintf("t%d", i), C: p.Domain(), T: 10000}
		base[i] = p
	}
	qs := []float64{3, 4, 5, 6, 7, 8, 9, 10, 12, 15}
	// mutant returns the function slice with task 0's curve perturbed by an
	// iteration-unique amount — a fresh fingerprint every time.
	mutant := func(i int) []delay.Function {
		fns := append([]delay.Function(nil), base...)
		vs := append([]float64(nil), curves[0].vs...)
		vs[0] += float64(i+1) * 1e-9
		p, err := delay.NewPiecewise(curves[0].xs, vs)
		if err != nil {
			b.Fatal(err)
		}
		fns[0] = p
		return fns
	}
	b.Run("mode=full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.AnalyzeSet(nil, ts, mutant(i), eval.SweepOptions{Qs: qs}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=incremental", func(b *testing.B) {
		c := core.NewResultCache(memo.Options{})
		if _, err := eval.AnalyzeSet(nil, ts, base, eval.SweepOptions{Qs: qs, Memo: c}); err != nil {
			b.Fatal(err)
		}
		var recomputed, total int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eval.AnalyzeSet(nil, ts, mutant(i), eval.SweepOptions{Qs: qs, Memo: c})
			if err != nil {
				b.Fatal(err)
			}
			for _, sr := range res {
				for _, pt := range sr.Points {
					if pt.Done {
						total++
						if !pt.Cached {
							recomputed++
						}
					}
				}
			}
		}
		b.ReportMetric(float64(recomputed)/float64(total), "recomputed_frac")
	})
}

// exactBenchFunctions draws back-loaded piecewise delay curves — the family
// where the schedule-graph exploration branches hardest (the adversary's
// best strikes sit late in the job, so many candidate chains stay alive) —
// sized so the naive enumeration still terminates within the state budget.
func exactBenchFunctions(n int, c, q float64) []*delay.Piecewise {
	r := rand.New(rand.NewSource(1004))
	out := make([]*delay.Piecewise, 0, n)
	for len(out) < n {
		pieces := 10 + r.Intn(5)
		xs := make([]float64, 0, pieces+1)
		xs = append(xs, 0)
		for i := 1; i < pieces; i++ {
			xs = append(xs, c*(float64(i)+r.Float64()*0.6)/float64(pieces))
		}
		xs = append(xs, c)
		maxV := q * (0.6 + 0.25*r.Float64())
		vs := make([]float64, pieces)
		for i := range vs {
			frac := float64(i) / float64(pieces-1)
			vs[i] = maxV * (0.1 + 0.9*frac) * (0.75 + 0.25*r.Float64())
		}
		p, err := delay.NewPiecewise(xs, vs)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkExactDelay measures the exact worst-case cumulative-delay
// exploration with and without interval merging + dominance pruning on the
// same instances, with a reused (slab-pooled) Explorer. The states/op and
// merges/op metrics quantify the reduction; the mode=naive vs mode=pruned
// pair feeds the speedup table of BENCH_PR10.json.
func BenchmarkExactDelay(b *testing.B) {
	fns := exactBenchFunctions(16, 40, 6)
	for _, m := range []struct {
		name  string
		naive bool
	}{{"mode=naive", true}, {"mode=pruned", false}} {
		b.Run(m.name, func(b *testing.B) {
			ex := exact.NewExplorer()
			var states, merges int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				states, merges = 0, 0
				for _, f := range fns {
					res, err := ex.Delay(nil, f, 6, exact.Options{Naive: m.naive, MaxStates: -1})
					if err != nil {
						b.Fatal(err)
					}
					states += res.States
					merges += res.Merges
				}
			}
			b.ReportMetric(float64(states), "states/op")
			b.ReportMetric(float64(merges), "merges/op")
		})
	}
}

// exactBenchSet builds the schedule-graph benchmark workload: a jittered
// task set with execution-time intervals (BCET < C), which is what makes
// availability intervals overlap and the merge rule pay off.
func exactBenchSet(n int) task.Set {
	r := rand.New(rand.NewSource(2010))
	periods := []float64{10, 20, 40, 80}
	ts := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		T := periods[i%len(periods)]
		c := 0.4 + r.Float64()*0.12*T
		ts = append(ts, task.Task{
			Name: fmt.Sprintf("t%d", i), C: c, BCET: 0.7 * c,
			T: T, Prio: i, Jitter: 0.05 * T,
		})
	}
	return ts
}

// BenchmarkExactSAG measures the schedule-graph response-time exploration
// with and without state merging on the same jittered task set. states/op
// counts expanded states over the hyperperiod; the mode=naive vs
// mode=pruned pair feeds BENCH_PR10.json.
func BenchmarkExactSAG(b *testing.B) {
	ts := exactBenchSet(5)
	for _, m := range []struct {
		name  string
		naive bool
	}{{"mode=naive", true}, {"mode=pruned", false}} {
		b.Run(m.name, func(b *testing.B) {
			var states, merges int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exact.ResponseTimes(nil, ts, exact.Options{Naive: m.naive, MaxStates: -1})
				if err != nil {
					b.Fatal(err)
				}
				states, merges = res.States, res.Merges
			}
			b.ReportMetric(float64(states), "states/op")
			b.ReportMetric(float64(merges), "merges/op")
		})
	}
}

// BenchmarkExactFrontier measures parallel frontier expansion of the
// schedule graph at several worker counts on a wide instance — the naive
// (unmerged) exploration, whose 100k-state frontiers are what give the
// shards enough contiguous work to amortize the fan-out. Results are
// bit-identical for every worker count (contiguous shards, concatenated in
// shard order); only the wall clock moves, and only on multi-core hosts —
// on a single-CPU machine the workers>1 variants measure the sharding
// overhead itself. The workers=1 vs workers=8 pair feeds BENCH_PR10.json.
func BenchmarkExactFrontier(b *testing.B) {
	ts := exactBenchSet(5)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exact.ResponseTimes(nil, ts, exact.Options{Naive: true, Workers: w, MaxStates: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactMemo measures the content-addressed memoization of exact
// explorations: cache=cold pays one full exploration per function into a
// fresh cache, cache=warm answers every query by fingerprint lookup
// (verify-on-use). The pair feeds BENCH_PR10.json.
func BenchmarkExactMemo(b *testing.B) {
	fns := exactBenchFunctions(16, 40, 6)
	b.Run("cache=cold", func(b *testing.B) {
		ex := exact.NewExplorer()
		for i := 0; i < b.N; i++ {
			c := memo.New(memo.Options{})
			for _, f := range fns {
				if _, err := ex.Delay(nil, f, 6, exact.Options{Memo: c, MaxStates: -1}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cache=warm", func(b *testing.B) {
		ex := exact.NewExplorer()
		c := memo.New(memo.Options{})
		for _, f := range fns {
			if _, err := ex.Delay(nil, f, 6, exact.Options{Memo: c, MaxStates: -1}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				res, err := ex.Delay(nil, f, 6, exact.Options{Memo: c, MaxStates: -1})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Cached {
					b.Fatal("warm lookup missed the cache")
				}
			}
		}
	})
}

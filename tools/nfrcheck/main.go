// Command nfrcheck enforces the absolute latency budgets of docs/nfr.md:
// every row of the table names a scenario, the shell command that runs it
// end to end, and a wall-clock ceiling in seconds. The command sequence
// runs one at a time (so scenarios never contend with each other for the
// machine) and the tool exits non-zero if any command fails or overruns
// its ceiling.
//
// Unlike tools/benchregress — which compares against a recorded baseline
// and normalises for machine speed — these ceilings are absolute: they are
// the "a user is watching this terminal" bar, set an order of magnitude
// above the expected runtime so they only trip on pathological slowdowns.
//
// Usage:
//
//	nfrcheck [-table docs/nfr.md] [-run regexp] [-v]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

type scenario struct {
	name    string
	command string
	ceiling time.Duration
}

func main() {
	table := flag.String("table", "docs/nfr.md", "markdown file holding the budget table")
	run := flag.String("run", "", "only run scenarios matching this regexp")
	verbose := flag.Bool("v", false, "stream scenario output instead of discarding it")
	flag.Parse()

	scenarios, err := parseTable(*table)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfrcheck: %v\n", err)
		os.Exit(2)
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfrcheck: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		kept := scenarios[:0]
		for _, s := range scenarios {
			if re.MatchString(s.name) {
				kept = append(kept, s)
			}
		}
		scenarios = kept
	}
	if len(scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "nfrcheck: no scenarios selected")
		os.Exit(2)
	}

	failed := 0
	for _, s := range scenarios {
		cmd := exec.Command("sh", "-c", s.command)
		var out bytes.Buffer
		if *verbose {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		} else {
			cmd.Stdout = &out
			cmd.Stderr = &out
		}
		start := time.Now()
		err := cmd.Run()
		elapsed := time.Since(start)
		switch {
		case err != nil:
			failed++
			fmt.Printf("FAIL  %-22s %8.2fs  command error: %v\n", s.name, elapsed.Seconds(), err)
			if !*verbose {
				os.Stdout.Write(out.Bytes())
			}
		case elapsed > s.ceiling:
			failed++
			fmt.Printf("FAIL  %-22s %8.2fs  over the %gs ceiling\n", s.name, elapsed.Seconds(), s.ceiling.Seconds())
		default:
			fmt.Printf("ok    %-22s %8.2fs  (ceiling %gs)\n", s.name, elapsed.Seconds(), s.ceiling.Seconds())
		}
	}
	if failed > 0 {
		fmt.Printf("FAIL %d of %d scenarios over budget\n", failed, len(scenarios))
		os.Exit(1)
	}
	fmt.Printf("PASS %d scenarios within budget\n", len(scenarios))
}

// parseTable extracts the scenarios from the first markdown table whose
// rows have exactly three cells: name, command, ceiling-in-seconds. The
// header row and the |---| separator are recognised and skipped.
func parseTable(path string) ([]scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []scenario
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 3 {
			continue
		}
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		if cells[0] == "scenario" || strings.HasPrefix(cells[0], "---") || strings.HasPrefix(cells[0], ":-") {
			continue
		}
		secs, err := strconv.ParseFloat(cells[2], 64)
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("%s:%d: bad ceiling %q (want seconds > 0)", path, ln+1, cells[2])
		}
		if cells[0] == "" || cells[1] == "" {
			return nil, fmt.Errorf("%s:%d: empty scenario or command", path, ln+1)
		}
		out = append(out, scenario{name: cells[0], command: cells[1], ceiling: time.Duration(secs * float64(time.Second))})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no budget table found", path)
	}
	return out, nil
}

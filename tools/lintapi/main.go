// lintapi enforces the consolidated-API convention adopted in the
// observability PR: a package must not grow parallel exported entry points
// that differ only by a `Ctx` or `Opts` suffix (the pattern that produced
// the fourteen-function core ladder). New code takes an options struct or a
// *guard.Ctx parameter on a single entry point instead.
//
// A pair X / XCtx (or X / XOpts) in the same package is reported unless
//
//   - the suffixed declaration carries a `Deprecated:` doc comment (it is
//     inside the one-release migration window), or
//   - the pair is in the allowlist below (it predates the convention and is
//     kept for compatibility until its own deprecation cycle).
//
// Run with: go run ./tools/lintapi [dir]   (default ".")
// Exit status 1 if any new pair is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// allowlist holds the suffixed halves of pairs that existed before the
// convention. Keys are "pkgdir:Name" for functions and types, and
// "pkgdir:Recv.Name" for methods, with pkgdir relative to the module root.
// Do not add entries for new code; deprecate the old name instead.
var allowlist = map[string]bool{
	"internal/npr:AssignQCtx":              true,
	"internal/npr:EDFBlockingToleranceCtx": true,
	"internal/npr:EDFSchedulableCtx":       true,
	"internal/npr:FPBlockingToleranceCtx":  true,
	"internal/npr:QPACtx":                  true,
	"internal/npr:ValidateQCtx":            true,
	"internal/sim:RunCtx":                  true,
}

var suffixes = []string{"Ctx", "Opts"}

// decl is one exported identifier: a top-level func, a method (with its
// receiver type), or a type.
type decl struct {
	key        string // Name or Recv.Name, unique within a package
	pos        token.Position
	deprecated bool
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	pkgs, err := collect(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintapi:", err)
		os.Exit(2)
	}
	var bad []string
	for dir, decls := range pkgs {
		byKey := make(map[string]decl, len(decls))
		for _, d := range decls {
			byKey[d.key] = d
		}
		for _, d := range decls {
			for _, suf := range suffixes {
				base := strings.TrimSuffix(d.key, suf)
				if base == d.key || base == "" || strings.HasSuffix(base, ".") {
					continue
				}
				if _, ok := byKey[base]; !ok {
					continue
				}
				if d.deprecated || allowlist[dir+":"+d.key] {
					continue
				}
				bad = append(bad, fmt.Sprintf(
					"%s: exported pair %s / %s — fold the %s variant into an options parameter on %s, or mark it Deprecated:",
					d.pos, base, d.key, suf, base))
			}
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "lintapi: %d new Ctx/Opts pair(s); see tools/lintapi/main.go for the convention\n", len(bad))
		os.Exit(1)
	}
}

// collect parses every non-test Go file under root, grouped by package
// directory (relative to root).
func collect(root string) (map[string][]decl, error) {
	pkgs := make(map[string][]decl)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := e.Name()
		if e.IsDir() {
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgs[dir] = append(pkgs[dir], fileDecls(fset, file)...)
		return nil
	})
	return pkgs, err
}

func fileDecls(fset *token.FileSet, file *ast.File) []decl {
	var out []decl
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			key := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := recvTypeName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				key = recv + "." + key
			}
			out = append(out, decl{key, fset.Position(d.Pos()), isDeprecated(d.Doc)})
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, s := range d.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = d.Doc
				}
				out = append(out, decl{ts.Name.Name, fset.Position(ts.Pos()), isDeprecated(doc)})
			}
		}
	}
	return out
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

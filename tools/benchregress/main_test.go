package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, path string, ns map[string]float64) {
	t.Helper()
	rep := map[string]any{"schema": "fnpr-bench/1", "benchmarks": []any{}}
	var bs []any
	for name, v := range ns {
		bs = append(bs, map[string]any{"name": name, "metrics": map[string]float64{"ns/op": v}})
	}
	rep["benchmarks"] = bs
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareNormalisesMachineSpeed(t *testing.T) {
	// The current machine is uniformly 2x slower; no benchmark regressed
	// relative to its peers, so every normalised ratio is 1.0.
	base := map[string]float64{"A": 100, "B": 200, "C": 300, "D": 400}
	cur := map[string]float64{"A": 200, "B": 400, "C": 600, "D": 800}
	ratios, skipped := compare(base, cur, false)
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	for name, r := range ratios {
		if math.Abs(r-1.0) > 1e-9 {
			t.Errorf("ratio[%s] = %v, want 1.0", name, r)
		}
	}
}

func TestCompareFlagsRelativeRegression(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 300, "D": 400}
	cur := map[string]float64{"A": 200, "B": 400, "C": 600, "D": 1600} // D is 2x worse than peers
	ratios, _ := compare(base, cur, false)
	if r := ratios["D"]; r < 1.9 {
		t.Errorf("ratio[D] = %v, want ~2.0", r)
	}
	if r := ratios["A"]; math.Abs(r-1.0) > 1e-9 {
		t.Errorf("ratio[A] = %v, want 1.0", r)
	}
}

func TestCompareSkipsOneSidedBenchmarks(t *testing.T) {
	base := map[string]float64{"A": 100, "Gone": 50}
	cur := map[string]float64{"A": 100, "New": 70}
	ratios, skipped := compare(base, cur, true)
	if len(ratios) != 1 || len(skipped) != 2 {
		t.Fatalf("ratios = %v skipped = %v", ratios, skipped)
	}
}

func TestCompareRawSkipsNormalisation(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 100, "C": 100}
	cur := map[string]float64{"A": 200, "B": 200, "C": 200}
	ratios, _ := compare(base, cur, true)
	for name, r := range ratios {
		if math.Abs(r-2.0) > 1e-9 {
			t.Errorf("raw ratio[%s] = %v, want 2.0", name, r)
		}
	}
}

func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	writeReport(t, basePath, map[string]float64{"A": 100, "B": 200, "C": 300, "D": 400})

	writeReport(t, curPath, map[string]float64{"A": 110, "B": 210, "C": 310, "D": 420})
	if err := run(basePath, curPath, 0.30, false); err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}

	writeReport(t, curPath, map[string]float64{"A": 100, "B": 200, "C": 300, "D": 900})
	if err := run(basePath, curPath, 0.30, false); err == nil {
		t.Fatal("regressed run passed")
	}

	// Too few shared benchmarks degrades to a warning, not a verdict.
	writeReport(t, curPath, map[string]float64{"A": 1000})
	if err := run(basePath, curPath, 0.30, false); err != nil {
		t.Fatalf("sparse run should warn, got: %v", err)
	}
}

func TestLoadRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/1","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("load accepted a foreign schema")
	}
}

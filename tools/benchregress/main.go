// Command benchregress compares a fresh benchjson report against the
// checked-in baseline (BENCH_PR3.json) and fails if any shared benchmark's
// ns/op regressed beyond the tolerance. It is the CI tripwire for the
// analysis kernels: a change that silently makes the delay-function kernels
// or the Figure 5 sweep 30% slower turns the build red.
//
// Raw ns/op is not comparable across machines — the baseline was recorded on
// whatever hardware produced BENCH_PR3.json, CI runs on something else — so
// by default the comparison is normalised: each benchmark's current/baseline
// ratio is divided by the median ratio across all shared benchmarks, which
// cancels the machine-speed difference and leaves only *relative* shifts.
// A benchmark is flagged when its normalised ratio exceeds 1+tolerance.
// -raw disables the normalisation for same-machine comparisons.
//
// The comparison is deliberately tolerant of shape drift: benchmarks present
// on only one side, or missing an ns/op metric, are reported as skipped and
// never fail the run. Fewer than three shared benchmarks makes the median
// meaningless, so that also degrades to a warning instead of a verdict.
//
// Usage:
//
//	go run ./tools/benchregress -baseline BENCH_PR3.json -current bench_current.json
//
// Exit codes: 0 pass (or skipped), 1 regression detected or I/O failure,
// 2 bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// report mirrors the subset of the benchjson schema the comparison needs.
type report struct {
	Schema     string `json:"schema"`
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "fnpr-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not fnpr-bench", path, rep.Schema)
	}
	ns := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok && v > 0 {
			ns[b.Name] = v
		}
	}
	return ns, nil
}

// compare returns the per-benchmark normalised ratios and the list of names
// skipped because one side lacks the metric. Ratios are current/baseline
// divided by the median such ratio (1.0 when raw or too few shared points).
func compare(base, cur map[string]float64, raw bool) (ratios map[string]float64, skipped []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var shared []string
	for _, name := range names {
		if _, ok := cur[name]; ok {
			shared = append(shared, name)
		} else {
			skipped = append(skipped, name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			skipped = append(skipped, name)
		}
	}
	sort.Strings(skipped)
	ratios = make(map[string]float64, len(shared))
	all := make([]float64, 0, len(shared))
	for _, name := range shared {
		r := cur[name] / base[name]
		ratios[name] = r
		all = append(all, r)
	}
	calib := 1.0
	if !raw && len(all) >= 3 {
		sort.Float64s(all)
		calib = all[len(all)/2]
		if len(all)%2 == 0 {
			calib = (all[len(all)/2-1] + all[len(all)/2]) / 2
		}
	}
	if calib > 0 {
		for name := range ratios {
			ratios[name] /= calib
		}
	}
	return ratios, skipped
}

func run(basePath, curPath string, tolerance float64, raw bool) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	ratios, skipped := compare(base, cur, raw)
	for _, name := range skipped {
		fmt.Printf("SKIP %s (metric on one side only)\n", name)
	}
	if len(ratios) < 3 && !raw {
		fmt.Printf("WARN only %d shared benchmarks; too few to normalise, not judging\n", len(ratios))
		return nil
	}
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	limit := 1 + tolerance
	var bad int
	for _, name := range names {
		verdict := "ok"
		if ratios[name] > limit {
			verdict = "REGRESSED"
			bad++
		}
		fmt.Printf("%-9s %-60s %6.2fx (limit %.2fx)\n", verdict, name, ratios[name], limit)
	}
	if bad > 0 {
		return fmt.Errorf("benchregress: %d of %d benchmarks regressed beyond %.0f%%", bad, len(names), tolerance*100)
	}
	fmt.Printf("PASS %d benchmarks within %.0f%% of baseline\n", len(names), tolerance*100)
	return nil
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_PR3.json", "checked-in benchjson baseline")
		curPath   = flag.String("current", "bench_current.json", "freshly produced benchjson report")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional ns/op growth before failing")
		raw       = flag.Bool("raw", false, "compare raw ns/op without machine-speed normalisation")
	)
	flag.Parse()
	if flag.NArg() != 0 || *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchregress: unexpected arguments or negative tolerance")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*basePath, *curPath, *tolerance, *raw); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

package fnpr

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from the scan-kernel output")

// TestGoldenOutputs is the byte-level regression lock on the analysis
// pipeline: the CSV of `figures -fig 5` and the stdout of `simulate
// -scenario bounds` are captured against committed golden files, and each
// command is run twice — once with the indexed delay kernel (the default)
// and once with the scan kernel (FNPR_NO_INDEX=1) — asserting the two are
// byte-identical to each other and to the golden. Any one-ulp divergence
// between kernels, or any drift in the computed bounds, fails here.
//
// Regenerate with `go test . -run TestGoldenOutputs -update` (goldens are
// written from the scan-kernel run, the pre-index reference semantics).
// Skipped with -short.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"figures", "simulate"} {
		bin := filepath.Join(tmp, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	run := func(t *testing.T, bin string, noIndex bool, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Env = os.Environ()
		if noIndex {
			cmd.Env = append(cmd.Env, "FNPR_NO_INDEX=1")
		}
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("running %s %v (noIndex=%v): %v\nstderr: %s", filepath.Base(bin), args, noIndex, err, stderr.String())
		}
		return stdout.String()
	}

	cases := []struct {
		name   string
		bin    string
		args   []string
		golden string
	}{
		{
			name:   "figures-fig5",
			bin:    "figures",
			args:   []string{"-fig", "5", "-ascii=false"},
			golden: filepath.Join("internal", "eval", "testdata", "figures_fig5.golden"),
		},
		{
			name:   "simulate-bounds",
			bin:    "simulate",
			args:   []string{"-scenario", "bounds"},
			golden: filepath.Join("internal", "eval", "testdata", "simulate_bounds.golden"),
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			indexed := run(t, bins[c.bin], false, c.args...)
			scan := run(t, bins[c.bin], true, c.args...)
			if indexed != scan {
				t.Fatalf("indexed kernel changed the output bytes\nscan:\n%s\nindexed:\n%s", scan, indexed)
			}
			if *update {
				if err := os.WriteFile(c.golden, []byte(scan), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(c.golden)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update): %v", err)
			}
			if string(want) != indexed {
				t.Fatalf("output drifted from %s\ngolden:\n%s\ngot:\n%s", c.golden, want, indexed)
			}
		})
	}
}

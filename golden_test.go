package fnpr

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from the scan-kernel output")

// buildCmd compiles ./cmd/<name> into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestGoldenOutputs is the byte-level regression lock on the analysis
// pipeline: the CSV of `figures -fig 5` and the stdout of `simulate
// -scenario bounds` are captured against committed golden files, and each
// command is run twice — once with the indexed delay kernel (the default)
// and once with the scan kernel (FNPR_NO_INDEX=1) — asserting the two are
// byte-identical to each other and to the golden. Any one-ulp divergence
// between kernels, or any drift in the computed bounds, fails here.
//
// Regenerate with `go test . -run TestGoldenOutputs -update` (goldens are
// written from the scan-kernel run, the pre-index reference semantics).
// Skipped with -short.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"figures", "simulate"} {
		bins[name] = buildCmd(t, tmp, name)
	}

	run := func(t *testing.T, bin string, noIndex bool, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Env = os.Environ()
		if noIndex {
			cmd.Env = append(cmd.Env, "FNPR_NO_INDEX=1")
		}
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("running %s %v (noIndex=%v): %v\nstderr: %s", filepath.Base(bin), args, noIndex, err, stderr.String())
		}
		return stdout.String()
	}

	cases := []struct {
		name   string
		bin    string
		args   []string
		golden string
	}{
		{
			name:   "figures-fig5",
			bin:    "figures",
			args:   []string{"-fig", "5", "-ascii=false"},
			golden: filepath.Join("internal", "eval", "testdata", "figures_fig5.golden"),
		},
		{
			name:   "simulate-bounds",
			bin:    "simulate",
			args:   []string{"-scenario", "bounds"},
			golden: filepath.Join("internal", "eval", "testdata", "simulate_bounds.golden"),
		},
		{
			name:   "simulate-exact",
			bin:    "simulate",
			args:   []string{"-scenario", "exact"},
			golden: filepath.Join("internal", "eval", "testdata", "simulate_exact.golden"),
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			indexed := run(t, bins[c.bin], false, c.args...)
			scan := run(t, bins[c.bin], true, c.args...)
			if indexed != scan {
				t.Fatalf("indexed kernel changed the output bytes\nscan:\n%s\nindexed:\n%s", scan, indexed)
			}
			if *update {
				if err := os.WriteFile(c.golden, []byte(scan), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(c.golden)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update): %v", err)
			}
			if string(want) != indexed {
				t.Fatalf("output drifted from %s\ngolden:\n%s\ngot:\n%s", c.golden, want, indexed)
			}
		})
	}
}

// TestGoldenAcceptance locks the acceptance-campaign CSV of `figures -fig
// acceptance` against a committed golden, running the campaign both serially
// (-workers 1) and on a four-worker pool and asserting the two are
// byte-identical — the determinism contract of the sharded engine, checked
// at the CLI boundary rather than the library one. Regenerate with
// `go test . -run TestGoldenAcceptance -update` (the golden is written from
// the serial run, the reference execution order). Skipped with -short.
func TestGoldenAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	bin := buildCmd(t, t.TempDir(), "figures")
	run := func(workers string) string {
		cmd := exec.Command(bin, "-fig", "acceptance", "-ascii=false", "-workers", workers)
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("figures -fig acceptance -workers %s: %v\nstderr: %s", workers, err, stderr.String())
		}
		return stdout.String()
	}
	serial := run("1")
	parallel := run("4")
	if serial != parallel {
		t.Fatalf("-workers 4 changed the output bytes\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	golden := filepath.Join("internal", "eval", "testdata", "figures_acceptance.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(want) != serial {
		t.Fatalf("output drifted from %s\ngolden:\n%s\ngot:\n%s", golden, want, serial)
	}
}

// TestGoldenAtlas locks the pessimism-atlas CSV of `figures -fig atlas`
// against a committed golden under both serial (-workers 1) and pooled
// (-workers 4) schedule-graph exploration, asserting the two are
// byte-identical — the exact engine's determinism contract (contiguous
// frontier shards concatenated in shard order) checked at the CLI boundary.
// Regenerate with `go test . -run TestGoldenAtlas -update` (the golden is
// written from the serial run). Skipped with -short.
func TestGoldenAtlas(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	bin := buildCmd(t, t.TempDir(), "figures")
	run := func(workers string) string {
		cmd := exec.Command(bin, "-fig", "atlas", "-ascii=false", "-workers", workers)
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("figures -fig atlas -workers %s: %v\nstderr: %s", workers, err, stderr.String())
		}
		return stdout.String()
	}
	serial := run("1")
	parallel := run("4")
	if serial != parallel {
		t.Fatalf("-workers 4 changed the output bytes\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	golden := filepath.Join("internal", "eval", "testdata", "figures_atlas.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(want) != serial {
		t.Fatalf("output drifted from %s\ngolden:\n%s\ngot:\n%s", golden, want, serial)
	}
}

// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_PR3.json benchmark report: per-benchmark metrics
// (ns/op, B/op, allocs/op and every b.ReportMetric custom unit, so headline
// bound values ride along) plus a speedup table pairing each kernel=scan
// benchmark with its kernel=indexed counterpart by ns/op ratio.
//
// Usage:
//
//	go test . -run '^$' -bench . -benchmem > bench.out
//	go run ./cmd/benchjson -in bench.out -out BENCH_PR3.json
//
// Exit codes: 0 success, 1 I/O or parse failure (including input with no
// benchmark lines at all, so a silently broken bench run fails CI), 2 bad
// usage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkFigure5Sweep/kernel=scan/n=256".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line:
	// the standard ns/op, B/op, allocs/op plus custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the BENCH_PR3.json document.
type Report struct {
	// Schema identifies this format for downstream tooling.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Benchmarks lists every parsed benchmark in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a kernel-pair key (the scan benchmark's name with
	// "kernel=scan" generalised to "kernel=*") to scan-ns/op divided by
	// indexed-ns/op: >1 means the indexed kernel wins.
	Speedups map[string]float64 `json:"speedups"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // status lines like "BenchmarkX ... SKIP"
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// speedups pairs kernel=scan benchmarks with their kernel=indexed twins.
func speedups(bs []Benchmark) map[string]float64 {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	out := make(map[string]float64)
	for _, b := range bs {
		if !strings.Contains(b.Name, "kernel=scan") {
			continue
		}
		twin, ok := byName[strings.Replace(b.Name, "kernel=scan", "kernel=indexed", 1)]
		if !ok {
			continue
		}
		scanNs, ok1 := b.Metrics["ns/op"]
		indexNs, ok2 := twin.Metrics["ns/op"]
		if !ok1 || !ok2 || indexNs <= 0 {
			continue
		}
		key := strings.Replace(b.Name, "kernel=scan", "kernel=*", 1)
		out[key] = scanNs / indexNs
	}
	return out
}

func run(inPath, outPath string) error {
	in := io.Reader(os.Stdin)
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	bs, err := parse(in)
	if err != nil {
		return err
	}
	if len(bs) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input")
	}
	rep := Report{
		Schema:     "fnpr-bench/1",
		Go:         runtime.Version(),
		Benchmarks: bs,
		Speedups:   speedups(bs),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	inPath := flag.String("in", "-", "benchmark text input ('-' for stdin)")
	outPath := flag.String("out", "-", "JSON output path ('-' for stdout)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

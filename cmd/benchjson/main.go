// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_PR*.json benchmark reports: per-benchmark metrics
// (ns/op, B/op, allocs/op and every b.ReportMetric custom unit, so headline
// bound values ride along) plus before/after tables pairing each baseline
// variant with its optimised twin — kernel=scan vs kernel=indexed,
// mode=unpooled vs mode=pooled, workers=1 vs workers=8, cache=cold vs
// cache=warm, mode=full vs mode=incremental, solver=monotone vs
// solver=cutting — as an ns/op speedup and, where -benchmem ran, an
// allocs/op reduction factor.
//
// Usage:
//
//	go test . -run '^$' -bench . -benchmem > bench.out
//	go run ./cmd/benchjson -in bench.out -out BENCH_PR3.json
//
// Exit codes: 0 success, 1 I/O or parse failure (including input with no
// benchmark lines at all, so a silently broken bench run fails CI), 2 bad
// usage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkFigure5Sweep/kernel=scan/n=256".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line:
	// the standard ns/op, B/op, allocs/op plus custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the BENCH_PR3.json document.
type Report struct {
	// Schema identifies this format for downstream tooling.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Benchmarks lists every parsed benchmark in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a pair key (the baseline benchmark's name with the
	// baseline variant generalised to "*", e.g. "kernel=*" or "mode=*") to
	// baseline-ns/op divided by optimised-ns/op: >1 means the optimised
	// variant wins.
	Speedups map[string]float64 `json:"speedups"`
	// AllocReductions maps the same pair keys to baseline-allocs/op divided
	// by optimised-allocs/op, for pairs where both sides ran with -benchmem.
	// An optimised side at zero allocs/op is scored as baseline/1 (JSON has
	// no +Inf), so a fully-eliminated allocation path reports the baseline
	// count as its reduction factor.
	AllocReductions map[string]float64 `json:"alloc_reductions,omitempty"`
}

// pairs lists the baseline→optimised sub-benchmark pairings the report
// tabulates. Each campaign benchmark names its variants with one of these
// key=value markers.
var pairs = []struct{ base, opt string }{
	{"kernel=scan", "kernel=indexed"},
	{"mode=unpooled", "mode=pooled"},
	{"workers=1", "workers=8"},
	{"cache=cold", "cache=warm"},
	{"mode=full", "mode=incremental"},
	{"solver=monotone", "solver=cutting"},
	{"mode=naive", "mode=pruned"},
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // status lines like "BenchmarkX ... SKIP"
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// speedups walks the pair list and rates every baseline benchmark against
// its optimised twin: ns/op ratios into the first map, allocs/op ratios into
// the second. Pairs missing either side or either metric are skipped.
func speedups(bs []Benchmark) (map[string]float64, map[string]float64) {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	ns := make(map[string]float64)
	allocs := make(map[string]float64)
	for _, b := range bs {
		for _, p := range pairs {
			if !strings.Contains(b.Name, p.base) {
				continue
			}
			twin, ok := byName[strings.Replace(b.Name, p.base, p.opt, 1)]
			if !ok {
				continue
			}
			star := p.base[:strings.Index(p.base, "=")+1] + "*"
			key := strings.Replace(b.Name, p.base, star, 1)
			if baseNs, ok1 := b.Metrics["ns/op"]; ok1 {
				if optNs, ok2 := twin.Metrics["ns/op"]; ok2 && optNs > 0 {
					ns[key] = baseNs / optNs
				}
			}
			if baseA, ok1 := b.Metrics["allocs/op"]; ok1 && baseA > 0 {
				if optA, ok2 := twin.Metrics["allocs/op"]; ok2 {
					if optA < 1 {
						optA = 1 // fully eliminated: score baseline/1
					}
					allocs[key] = baseA / optA
				}
			}
		}
	}
	if len(allocs) == 0 {
		allocs = nil
	}
	return ns, allocs
}

func run(inPath, outPath string) error {
	in := io.Reader(os.Stdin)
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	bs, err := parse(in)
	if err != nil {
		return err
	}
	if len(bs) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input")
	}
	ns, allocs := speedups(bs)
	rep := Report{
		Schema:          "fnpr-bench/1",
		Go:              runtime.Version(),
		Benchmarks:      bs,
		Speedups:        ns,
		AllocReductions: allocs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	inPath := flag.String("in", "-", "benchmark text input ('-' for stdin)")
	outPath := flag.String("out", "-", "JSON output path ('-' for stdout)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: fnpr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure5Sweep/e2e/literal-8         	       2	 512345678 ns/op	       159.0 alg1(G2,Q=100)	       500.0 soa(Q=100)
BenchmarkFigure5Sweep/kernel=scan/n=256-8   	     423	   5570104 ns/op	       160.1 alg1(G2,Q=100)
BenchmarkFigure5Sweep/kernel=indexed/n=256-8	     818	   1392526 ns/op	       160.1 alg1(G2,Q=100)
BenchmarkIndexedKernel/MaxOn/kernel=scan-8  	   10000	     11000 ns/op	       0 B/op	       0 allocs/op
BenchmarkIndexedKernel/MaxOn/kernel=indexed-8	 1000000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkIndexedKernel/Build-8              	    1000	   1200000 ns/op
BenchmarkSimTrial/mode=unpooled-8           	    5000	    260000 ns/op	 1131464 B/op	     363 allocs/op
BenchmarkSimTrial/mode=pooled-8             	    6000	    208000 ns/op	      64 B/op	       0 allocs/op
BenchmarkAcceptanceCampaign/workers=1-8     	     100	  10000000 ns/op	     18000 trials/s
BenchmarkAcceptanceCampaign/workers=8-8     	     400	   2500000 ns/op	     72000 trials/s
PASS
ok  	fnpr	12.630s
`

func TestParse(t *testing.T) {
	bs, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 10 {
		t.Fatalf("parsed %d benchmarks, want 10", len(bs))
	}
	first := bs[0]
	if first.Name != "BenchmarkFigure5Sweep/e2e/literal" {
		t.Errorf("name %q kept its GOMAXPROCS suffix or lost its path", first.Name)
	}
	if first.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", first.Iterations)
	}
	if first.Metrics["ns/op"] != 512345678 || first.Metrics["alg1(G2,Q=100)"] != 159.0 || first.Metrics["soa(Q=100)"] != 500.0 {
		t.Errorf("metrics = %v", first.Metrics)
	}
	if m := bs[3].Metrics; m["allocs/op"] != 0 || m["B/op"] != 0 {
		t.Errorf("benchmem metrics not parsed: %v", m)
	}
}

func TestSpeedups(t *testing.T) {
	bs, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sp, ar := speedups(bs)
	if len(sp) != 4 {
		t.Fatalf("speedups = %v, want 4 baseline/optimised pairs", sp)
	}
	got := sp["BenchmarkFigure5Sweep/kernel=*/n=256"]
	if math.Abs(got-4.0) > 1e-9 {
		t.Errorf("sweep speedup = %v, want 4.0", got)
	}
	if got := sp["BenchmarkIndexedKernel/MaxOn/kernel=*"]; math.Abs(got-10.0) > 1e-9 {
		t.Errorf("MaxOn speedup = %v, want 10.0", got)
	}
	if got := sp["BenchmarkSimTrial/mode=*"]; math.Abs(got-1.25) > 1e-9 {
		t.Errorf("sim pooling speedup = %v, want 1.25", got)
	}
	if got := sp["BenchmarkAcceptanceCampaign/workers=*"]; math.Abs(got-4.0) > 1e-9 {
		t.Errorf("campaign speedup = %v, want 4.0", got)
	}
	// allocs/op pairs: the pooled simulator reaches 0 allocs/op, which is
	// scored baseline/1; the MaxOn kernel pair has a zero baseline and the
	// campaign pair ran without -benchmem, so neither appears.
	if len(ar) != 1 {
		t.Fatalf("alloc reductions = %v, want only the sim pair", ar)
	}
	if got := ar["BenchmarkSimTrial/mode=*"]; math.Abs(got-363.0) > 1e-9 {
		t.Errorf("sim alloc reduction = %v, want 363", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	bs, err := parse(strings.NewReader("goos: linux\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatalf("parsed %d benchmarks from benchmark-free input", len(bs))
	}
	// run() must turn an empty parse into a hard error so CI notices a
	// broken bench invocation instead of shipping an empty report.
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "out.json")); err == nil {
		t.Fatal("run accepted input without benchmarks")
	}
}

func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	out := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "fnpr-bench/1" || rep.Go == "" || len(rep.Benchmarks) != 10 || len(rep.Speedups) != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.AllocReductions) != 1 {
		t.Fatalf("alloc reductions = %v, want the sim pooling pair", rep.AllocReductions)
	}
}

// Command schedtest analyses a task set described by a JSON specification
// (see internal/spec) under floating non-preemptive region scheduling and
// prints a comparison of every applicable schedulability test:
//
//   - fixed priority: effective WCETs and response times with Algorithm 1,
//     with the preemption-count refinement, and with the state-of-the-art
//     Equation 4 bound; plus the delay-free RTA as an optimistic reference;
//   - EDF: the delay-aware processor-demand test with both delay methods.
//
// When -assign-q is given, missing Q values are derived from the blocking
// tolerance analysis (npr.AssignQ). With -simulate the schedule is also run
// in the discrete-event simulator and observed response times are reported
// next to the analytical bounds.
//
// Usage:
//
//	schedtest -spec taskset.json [-assign-q] [-simulate] [-horizon 10000]
//	schedtest -example          # print a sample specification and exit
package main

import (
	"flag"
	"fmt"
	"math"

	"fnpr/internal/cli"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/sim"
	"fnpr/internal/spec"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the JSON task-set specification")
		assignQ  = flag.Bool("assign-q", false, "derive missing Q values from the blocking-tolerance analysis")
		simulate = flag.Bool("simulate", false, "cross-check with the discrete-event simulator")
		horizon  = flag.Float64("horizon", 10000, "simulation horizon (with -simulate)")
		example  = flag.Bool("example", false, "print a sample specification and exit")
		margin   = flag.Bool("margin", false, "also compute the delay criticality margin (FP only)")
	)
	limits := cli.Flags()
	flag.Parse()
	g := limits.Guard()

	if *example {
		printExample()
		fatal(nil)
	}
	if *specPath == "" {
		fatal(cli.Usagef("missing -spec (or use -example)"))
	}
	p, err := spec.LoadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	if *assignQ {
		policy := npr.FixedPriority
		if p.Policy == "edf" {
			policy = npr.EDF
		}
		qs, err := npr.AssignQCtx(g, p.Tasks, policy)
		if err != nil {
			fatal(err)
		}
		for i := range p.Tasks {
			if p.Tasks[i].Q == 0 {
				p.Tasks[i].Q = qs[i].Q
			}
		}
	}

	fmt.Printf("policy: %s   tasks: %d   utilization: %.3f\n\n", p.Policy, len(p.Tasks), p.Tasks.Utilization())
	for _, tk := range p.Tasks {
		fmt.Printf("  %s\n", tk)
	}
	fmt.Println()

	switch p.Policy {
	case "fp":
		analyseFP(g, p)
		if *margin {
			reportMargin(g, p)
		}
	case "edf":
		analyseEDF(g, p)
	}

	if *simulate {
		runSimulation(g, p, *horizon)
	}
	fatal(nil)
}

func analyseFP(g *guard.Ctx, p *spec.Problem) {
	a := sched.FNPRAnalysis{Tasks: p.Tasks, Delay: p.Delay, Method: sched.Algorithm1}

	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"task", "R(no-delay)", "R(alg1)", "R(alg1-lim)", "R(eq4)", "deadline")

	// Delay-free reference: same analysis with all-nil delay functions.
	free := sched.FNPRAnalysis{Tasks: p.Tasks, Delay: make([]delay.Function, len(p.Tasks)), Method: sched.Algorithm1}
	rFree, err := free.ResponseTimesFPCtx(g)
	if err != nil {
		fatal(err)
	}
	rAlg, errAlg := a.ResponseTimesFPCtx(g)
	lim, errLim := a.ResponseTimesFPLimitedCtx(g)
	a4 := a
	a4.Method = sched.Equation4
	rEq4, errEq4 := a4.ResponseTimesFPCtx(g)
	for _, err := range []error{errAlg, errLim, errEq4} {
		// Divergence errors are reported per-column below; a tripped
		// resource limit aborts the whole run with exit code 3.
		if err != nil && cli.Code(err) == cli.ExitResource {
			fatal(err)
		}
	}

	for i, tk := range p.Tasks {
		fmt.Printf("%-10s %12s %12s %12s %12s %10g\n",
			tk.Name,
			fmtR(rFree, i, nil),
			fmtR(rAlg, i, errAlg),
			fmtLim(lim, i, errLim),
			fmtR(rEq4, i, errEq4),
			tk.Deadline())
	}
	fmt.Println()
	report := func(name string, rts []float64, err error) {
		switch {
		case err != nil:
			fmt.Printf("  %-22s error: %v\n", name, err)
		case sched.Schedulable(p.Tasks, rts):
			fmt.Printf("  %-22s SCHEDULABLE\n", name)
		default:
			fmt.Printf("  %-22s not schedulable\n", name)
		}
	}
	report("no delay (optimistic):", rFree, nil)
	report("Algorithm 1:", rAlg, errAlg)
	if errLim == nil {
		report("Algorithm 1 + limit:", lim.Response, nil)
	} else {
		report("Algorithm 1 + limit:", nil, errLim)
	}
	report("Equation 4:", rEq4, errEq4)
}

// reportMargin prints the largest factor by which every delay function can
// grow while the set stays schedulable under Algorithm 1.
func reportMargin(g *guard.Ctx, p *spec.Problem) {
	a := sched.FNPRAnalysis{Tasks: p.Tasks, Delay: p.Delay, Method: sched.Algorithm1}
	m, err := a.DelayMarginCtx(g, 100, 0.01)
	if err != nil {
		if cli.Code(err) == cli.ExitResource {
			fatal(err)
		}
		fmt.Printf("\n  delay margin: error: %v\n", err)
		return
	}
	fmt.Printf("\n  delay criticality margin: %.2fx (delay functions can scale by this factor)\n", m)
}

func analyseEDF(g *guard.Ctx, p *spec.Problem) {
	for _, m := range []sched.DelayMethod{sched.Algorithm1, sched.Equation4} {
		a := sched.FNPRAnalysis{Tasks: p.Tasks, Delay: p.Delay, Method: m}
		ok, err := a.SchedulableEDFCtx(g)
		switch {
		case err != nil && cli.Code(err) == cli.ExitResource:
			fatal(err)
		case err != nil:
			fmt.Printf("  EDF with %-12s error: %v\n", m, err)
		case ok:
			fmt.Printf("  EDF with %-12s SCHEDULABLE\n", m)
		default:
			fmt.Printf("  EDF with %-12s not schedulable\n", m)
		}
	}
}

func runSimulation(g *guard.Ctx, p *spec.Problem, horizon float64) {
	policy := sim.FixedPriority
	if p.Policy == "edf" {
		policy = sim.EDF
	}
	res, err := sim.RunCtx(g, sim.Config{
		Tasks: p.Tasks, Policy: policy, Mode: sim.FloatingNPR,
		Horizon: horizon, Delay: p.Delay,
	})
	if err != nil {
		fatal(err)
	}
	if err := sim.CheckInvariants(res); err != nil {
		fatal(fmt.Errorf("simulator invariant violation: %w", err))
	}
	fmt.Printf("\nsimulation over %g time units (floating NPR, %s):\n", horizon, policy)
	fmt.Print(res.Summary())
}

func fmtR(rts []float64, i int, err error) string {
	if err != nil || rts == nil {
		return "err"
	}
	if math.IsInf(rts[i], 1) {
		return "miss"
	}
	return fmt.Sprintf("%.2f", rts[i])
}

func fmtLim(lim *sched.LimitedResult, i int, err error) string {
	if err != nil || lim == nil {
		return "err"
	}
	return fmtR(lim.Response, i, nil)
}

func printExample() {
	fmt.Print(`{
  "policy": "fp",
  "tasks": [
    {"name": "hi", "c": 5, "t": 100, "q": 5, "prio": 0},
    {"name": "mid", "c": 9, "t": 250, "q": 6, "prio": 1,
     "delay": {"kind": "constant", "value": 1}},
    {"name": "lo", "c": 60, "t": 600, "d": 400, "q": 10, "prio": 2,
     "delay": {"kind": "frontloaded", "peak": 3, "tail": 0.5}}
  ]
}
`)
}

func fatal(err error) {
	cli.Exit("schedtest", err)
}

// Command schedtest analyses a task set described by a JSON specification
// (see internal/spec) under floating non-preemptive region scheduling and
// prints a comparison of every applicable schedulability test:
//
//   - fixed priority: effective WCETs and response times with Algorithm 1,
//     with the preemption-count refinement, and with the state-of-the-art
//     Equation 4 bound; plus the delay-free RTA as an optimistic reference;
//   - EDF: the delay-aware processor-demand test with both delay methods.
//
// When -assign-q is given, missing Q values are derived from the blocking
// tolerance analysis (npr.AssignQ). With -simulate the schedule is also run
// in the discrete-event simulator and observed response times are reported
// next to the analytical bounds.
//
// Usage:
//
//	schedtest -spec taskset.json [-assign-q] [-simulate] [-horizon 10000]
//	schedtest -example          # print a sample specification and exit
package main

import (
	"flag"
	"fmt"
	"math"

	"fnpr/internal/cli"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/sim"
	"fnpr/internal/spec"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the JSON task-set specification")
		assignQ  = flag.Bool("assign-q", false, "derive missing Q values from the blocking-tolerance analysis")
		simulate = flag.Bool("simulate", false, "cross-check with the discrete-event simulator")
		horizon  = flag.Float64("horizon", 10000, "simulation horizon (with -simulate)")
		example  = flag.Bool("example", false, "print a sample specification and exit")
		margin   = flag.Bool("margin", false, "also compute the delay criticality margin (FP only)")
		solverFl = flag.String("solver", "auto", "fixpoint solver: auto, monotone or cutting (results are identical; cutting needs far fewer iterations)")
	)
	limits := cli.Flags()
	flag.Parse()
	g := limits.Guard()
	solver, err := core.ParseSolver(*solverFl)
	if err != nil {
		fatal(cli.Usagef("%v", err))
	}

	if *example {
		printExample()
		fatal(nil)
	}
	if *specPath == "" {
		fatal(cli.Usagef("missing -spec (or use -example)"))
	}
	p, err := spec.LoadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	if *assignQ {
		policy := npr.FixedPriority
		if p.Policy == "edf" {
			policy = npr.EDF
		}
		qs, err := npr.AssignQCtx(g, p.Tasks, policy)
		if err != nil {
			fatal(err)
		}
		for i := range p.Tasks {
			if p.Tasks[i].Q == 0 {
				p.Tasks[i].Q = qs[i].Q
			}
		}
	}

	fmt.Printf("policy: %s   tasks: %d   utilization: %.3f\n\n", p.Policy, len(p.Tasks), p.Tasks.Utilization())
	for _, tk := range p.Tasks {
		fmt.Printf("  %s\n", tk)
	}
	fmt.Println()

	switch p.Policy {
	case "fp":
		analyseFP(g, p, solver)
		if *margin {
			reportMargin(g, p, solver)
		}
	case "edf":
		analyseEDF(g, p, solver)
	}

	if *simulate {
		runSimulation(g, p, *horizon)
	}
	fatal(nil)
}

func analyseFP(g *guard.Ctx, p *spec.Problem, solver sched.Solver) {
	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"task", "R(no-delay)", "R(alg1)", "R(alg1-lim)", "R(eq4)", "deadline")

	// Delay-free reference: same analysis with all-nil delay functions. Its
	// response times lower-bound every delay-aware variant, so they warm-seed
	// the other fixpoints (bit-identical results, fewer iterations).
	free, err := sched.Analyze(g, p.Tasks, sched.Options{
		Delay: make([]delay.Function, len(p.Tasks)), Method: sched.Algorithm1, Solver: solver,
	})
	if err != nil {
		fatal(err)
	}
	rFree := free.Response
	alg, errAlg := sched.Analyze(g, p.Tasks, sched.Options{
		Delay: p.Delay, Method: sched.Algorithm1, Solver: solver, Warm: rFree,
	})
	lim, errLim := sched.Analyze(g, p.Tasks, sched.Options{
		Delay: p.Delay, Method: sched.Algorithm1, Limited: true, Solver: solver, Warm: rFree,
	})
	eq4, errEq4 := sched.Analyze(g, p.Tasks, sched.Options{
		Delay: p.Delay, Method: sched.Equation4, Solver: solver, Warm: rFree,
	})
	for _, err := range []error{errAlg, errLim, errEq4} {
		// Divergence errors are reported per-column below; a tripped
		// resource limit aborts the whole run with exit code 3.
		if err != nil && cli.Code(err) == cli.ExitResource {
			fatal(err)
		}
	}

	for i, tk := range p.Tasks {
		fmt.Printf("%-10s %12s %12s %12s %12s %10g\n",
			tk.Name,
			fmtRes(free, i, nil),
			fmtRes(alg, i, errAlg),
			fmtRes(lim, i, errLim),
			fmtRes(eq4, i, errEq4),
			tk.Deadline())
	}
	fmt.Println()
	report := func(name string, res *sched.Result, err error) {
		switch {
		case err != nil:
			fmt.Printf("  %-22s error: %v\n", name, err)
		case res.Schedulable:
			fmt.Printf("  %-22s SCHEDULABLE\n", name)
		default:
			fmt.Printf("  %-22s not schedulable\n", name)
		}
	}
	report("no delay (optimistic):", free, nil)
	report("Algorithm 1:", alg, errAlg)
	report("Algorithm 1 + limit:", lim, errLim)
	report("Equation 4:", eq4, errEq4)
}

// reportMargin prints the largest factor by which every delay function can
// grow while the set stays schedulable under Algorithm 1.
func reportMargin(g *guard.Ctx, p *spec.Problem, solver sched.Solver) {
	m, err := sched.DelayMargin(g, p.Tasks, sched.Options{
		Delay: p.Delay, Method: sched.Algorithm1, Solver: solver,
	}, 100, 0.01)
	if err != nil {
		if cli.Code(err) == cli.ExitResource {
			fatal(err)
		}
		fmt.Printf("\n  delay margin: error: %v\n", err)
		return
	}
	fmt.Printf("\n  delay criticality margin: %.2fx (delay functions can scale by this factor)\n", m)
}

func analyseEDF(g *guard.Ctx, p *spec.Problem, solver sched.Solver) {
	for _, m := range []sched.DelayMethod{sched.Algorithm1, sched.Equation4} {
		res, err := sched.Analyze(g, p.Tasks, sched.Options{
			Policy: sched.EDF, Delay: p.Delay, Method: m, Solver: solver,
		})
		switch {
		case err != nil && cli.Code(err) == cli.ExitResource:
			fatal(err)
		case err != nil:
			fmt.Printf("  EDF with %-12s error: %v\n", m, err)
		case res.Schedulable:
			fmt.Printf("  EDF with %-12s SCHEDULABLE\n", m)
		default:
			fmt.Printf("  EDF with %-12s not schedulable\n", m)
		}
	}
}

func runSimulation(g *guard.Ctx, p *spec.Problem, horizon float64) {
	policy := sim.FixedPriority
	if p.Policy == "edf" {
		policy = sim.EDF
	}
	res, err := sim.RunCtx(g, sim.Config{
		Tasks: p.Tasks, Policy: policy, Mode: sim.FloatingNPR,
		Horizon: horizon, Delay: p.Delay,
	})
	if err != nil {
		fatal(err)
	}
	if err := sim.CheckInvariants(res); err != nil {
		fatal(fmt.Errorf("simulator invariant violation: %w", err))
	}
	fmt.Printf("\nsimulation over %g time units (floating NPR, %s):\n", horizon, policy)
	fmt.Print(res.Summary())
}

func fmtRes(res *sched.Result, i int, err error) string {
	if err != nil || res == nil || res.Response == nil {
		return "err"
	}
	if math.IsInf(res.Response[i], 1) {
		return "miss"
	}
	return fmt.Sprintf("%.2f", res.Response[i])
}

func printExample() {
	fmt.Print(`{
  "policy": "fp",
  "tasks": [
    {"name": "hi", "c": 5, "t": 100, "q": 5, "prio": 0},
    {"name": "mid", "c": 9, "t": 250, "q": 6, "prio": 1,
     "delay": {"kind": "constant", "value": 1}},
    {"name": "lo", "c": 60, "t": 600, "d": 400, "q": 10, "prio": 2,
     "delay": {"kind": "frontloaded", "peak": 3, "tail": 0.5}}
  ]
}
`)
}

func fatal(err error) {
	cli.Exit("schedtest", err)
}

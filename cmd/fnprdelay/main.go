// Command fnprdelay computes preemption-delay upper bounds for a task under
// floating non-preemptive region scheduling.
//
// The delay function is given either as one of the paper's named benchmarks
// (-f gaussian1|gaussian2|twopeaks) or as an inline piecewise-constant
// specification (-spec "0:5=2,5:20=0.5" meaning value 2 on [0,5) and 0.5 on
// [5,20]). For each Q in the comma-separated -q list the tool prints the
// Algorithm 1 bound, the state-of-the-art Equation 4 bound, the resulting
// effective WCETs C', and the number of preemptions charged.
//
// Example:
//
//	fnprdelay -f gaussian2 -q 50,200,1000
//	fnprdelay -spec "0:10=4,10:60=0" -q 5,15
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"fnpr/internal/cli"
	"fnpr/internal/core"
	"fnpr/internal/delay"
)

func main() {
	var (
		fname  = flag.String("f", "", "named benchmark function: gaussian1, gaussian2 or twopeaks")
		spec   = flag.String("spec", "", "inline piecewise function, e.g. 0:5=2,5:20=0.5")
		qlist  = flag.String("q", "100", "comma-separated NPR lengths Q")
		params = flag.String("params", "calibrated", "benchmark parameters: literal or calibrated")
		trace  = flag.Bool("trace", false, "print the per-iteration trace of Algorithm 1")
		limit  = flag.Int("limit", -1, "also report the preemption-count-limited bound for at most N preemptions")
	)
	limits := cli.Flags()
	flag.Parse()
	g := limits.Guard()

	f, err := buildFunction(*fname, *spec, *params)
	if err != nil {
		fatal(err)
	}
	_, maxF := f.Max()
	fmt.Printf("C = %g, max f = %g\n\n", f.Domain(), maxF)
	fmt.Printf("%10s %14s %14s %12s %12s %10s\n", "Q", "Algorithm 1", "Equation 4", "C' (Alg 1)", "C' (Eq 4)", "preempts")
	for _, q := range qList(*qlist) {
		res, err := core.Analyze(g, f, q, core.Options{Trace: true})
		if err != nil {
			fatal(err)
		}
		soa, err := core.Analyze(g, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10g %14.3f %14.3f %12.3f %12.3f %10d\n",
			q, res.TotalDelay, soa.TotalDelay, res.EffectiveWCET(f.Domain()), f.Domain()+soa.TotalDelay, res.Preemptions)
		if *limit >= 0 {
			lb, err := core.Analyze(g, f, q, core.Options{Limited: true, MaxPreemptions: *limit})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%10s with at most %d preemptions: %.3f\n", "", *limit, lb.TotalDelay)
		}
		if *trace {
			for k, it := range res.Iterations {
				fmt.Printf("    iter %3d: prog=%.3f p∩=%.3f pmax=%.3f delay=%.3f pnext=%.3f total=%.3f\n",
					k+1, it.Prog, it.PIntersect, it.PMax, it.DelayMax, it.PNext, it.Total)
			}
		}
	}
	fatal(nil)
}

func buildFunction(name, spec, params string) (*delay.Piecewise, error) {
	if (name == "") == (spec == "") {
		return nil, cli.Usagef("specify exactly one of -f or -spec")
	}
	if spec != "" {
		return delay.ParseCompact(spec)
	}
	var p delay.BenchmarkParams
	switch params {
	case "literal":
		p = delay.LiteralParams()
	case "calibrated":
		p = delay.CalibratedParams()
	default:
		return nil, cli.Usagef("unknown params %q", params)
	}
	switch name {
	case "gaussian1":
		return p.Gaussian1(), nil
	case "gaussian2":
		return p.Gaussian2(), nil
	case "twopeaks":
		return p.TwoLocalMax(), nil
	default:
		return nil, cli.Usagef("unknown function %q (want gaussian1, gaussian2 or twopeaks)", name)
	}
}

func qList(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(cli.Usagef("bad Q value %q: %v", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	cli.Exit("fnprdelay", err)
}

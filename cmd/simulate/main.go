// Command simulate runs the floating-NPR scheduler simulator on built-in
// scenarios and prints traces, timelines and bound-vs-observed comparisons.
//
// Scenarios:
//
//	-scenario fig2     the Figure 2 counter-example (naive bound vs runs)
//	-scenario basic    a three-task FP set under all three preemption modes
//	-scenario bounds   randomized FNPR runs compared against Algorithm 1
//	-scenario edf      an EDF set with Q assigned by the Bertogna-Baruah
//	                   demand-bound analysis of package npr
//	-scenario montecarlo
//	                   the pooled Monte-Carlo campaign: simulate -trials
//	                   random jobsets over -workers goroutines and check the
//	                   Algorithm 1 bound dominates every job's observed delay
//	-scenario exact    the exact schedule-graph baseline: WCETs inflated by
//	                   each delay-accounting method (exact, Algorithm 1,
//	                   Equation 4) feed the schedule-graph exploration, and a
//	                   non-preemptive run cross-checks the BCRT/WCRT envelope
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fnpr/internal/cli"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/eval"
	"fnpr/internal/exact"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/sim"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

func main() {
	var (
		scenario = flag.String("scenario", "basic", "fig2, basic, bounds, edf, stats, montecarlo or exact")
		events   = flag.Bool("events", false, "dump the full event trace")
		svgPath  = flag.String("svg", "", "write an SVG Gantt chart of the basic scenario's floating-NPR run")
		trials   = flag.Int("trials", 2000, "montecarlo scenario: number of random jobsets to simulate")
	)
	limits := cli.Flags().SweepFlags()
	flag.Parse()
	g := limits.Guard()
	if limits.Journal != "" && *scenario != "bounds" {
		cli.Exit("simulate", cli.Usagef("-journal supports -scenario bounds only (got -scenario %s)", *scenario))
	}

	var err error
	switch *scenario {
	case "fig2":
		err = fig2()
	case "basic":
		err = basic(g, *events, *svgPath)
	case "bounds":
		err = bounds(g, limits)
	case "edf":
		err = edf(g, *events)
	case "stats":
		err = stats(g, limits.Seed)
	case "montecarlo":
		err = montecarlo(g, limits, *trials)
	case "exact":
		err = exactScenario(g, limits)
	default:
		err = cli.Usagef("unknown scenario %q", *scenario)
	}
	cli.Exit("simulate", err)
}

func fig2() error {
	rep, err := eval.Figure2()
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}

func basic(g *guard.Ctx, events bool, svgPath string) error {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1},
		{Name: "mid", C: 3, T: 25, Q: 2},
		{Name: "lo", C: 14, T: 60, Q: 4},
	}
	ts.AssignRateMonotonic()
	mid, err := delay.NewConstant(0.5, 3)
	if err != nil {
		return err
	}
	lo, err := delay.NewFrontLoaded(2, 0.2, 14)
	if err != nil {
		return err
	}
	fns := []delay.Function{nil, mid, lo}
	for _, mode := range []sim.Mode{sim.FullyPreemptive, sim.FloatingNPR, sim.NonPreemptive} {
		res, err := sim.RunCtx(g, sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: mode,
			Horizon: 120, Delay: fns,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== %s ===\n", mode)
		fmt.Print(res.Summary())
		fmt.Println(res.Timeline(1.5))
		if svgPath != "" && mode == sim.FloatingNPR {
			f, err := os.Create(svgPath)
			if err != nil {
				return err
			}
			werr := res.WriteSVGTimeline(f, sim.SVGTimelineOptions{
				Title: "floating-NPR schedule",
			})
			f.Close()
			if werr != nil {
				return werr
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", svgPath)
		}
		if events {
			for _, e := range res.Events {
				fmt.Println(" ", e)
			}
		}
		fmt.Println()
	}
	return nil
}

// bounds runs the randomized soundness trials under the crash-safe batch
// runtime: with -journal each completed trial's output rows are checkpointed,
// and a -resume run replays them verbatim (byte-identical output) while
// recomputing only the trials the aborted run never finished.
func bounds(g *guard.Ctx, limits *cli.Limits) error {
	j, resume, err := limits.OpenJournal()
	if err != nil {
		return err
	}
	if j != nil {
		defer j.Close()
	}
	cli.Checkpoint(g, j)
	cache, err := limits.OpenCache()
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(limits.Seed))
	fmt.Println("Randomized FNPR runs: per-task observed worst delay vs Algorithm 1 bound")
	fmt.Printf("%6s %-8s %10s %14s %14s %8s\n", "trial", "task", "Q", "observed", "bound", "sound")
	for trial := 0; trial < 5; trial++ {
		// Inputs are drawn even for journaled trials, so the random
		// stream stays aligned with an uninterrupted run.
		n := 3
		ts := make(task.Set, 0, n)
		fns := make([]delay.Function, 0, n)
		for i := 0; i < n; i++ {
			c := 10 + r.Float64()*30
			maxD := 0.5 + r.Float64()*2
			q := maxD + 2 + r.Float64()*5
			ts = append(ts, task.Task{
				Name: fmt.Sprintf("t%d", i), C: c,
				T: c*2.5 + r.Float64()*120, Q: q, Prio: i,
			})
			fns = append(fns, synth.DelayFunction(r, c, maxD, 4))
		}
		key := fmt.Sprintf("trial:%d", trial)
		var lines []string
		if ok, err := journal.Get(resume, key, &lines); err != nil {
			return err
		} else if ok {
			for _, ln := range lines {
				fmt.Print(ln)
			}
			continue
		}
		res, err := sim.RunCtx(g, sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: sim.FloatingNPR,
			Horizon: 3000, Delay: fns,
		})
		if err != nil {
			return err
		}
		for i := range ts {
			r, err := core.Analyze(g, fns[i], ts[i].Q, core.Options{Memo: cache})
			if err != nil {
				return err
			}
			sound := "yes"
			if res.Tasks[i].MaxDelayPerJob > r.TotalDelay+1e-9 {
				sound = "VIOLATED"
			}
			lines = append(lines, fmt.Sprintf("%6d %-8s %10.3f %14.3f %14.3f %8s\n",
				trial, ts[i].Name, ts[i].Q, res.Tasks[i].MaxDelayPerJob, r.TotalDelay, sound))
		}
		for _, ln := range lines {
			fmt.Print(ln)
		}
		if j != nil {
			if err := j.Append(key, lines); err != nil {
				return err
			}
		}
	}
	return nil
}

// montecarlo runs the pooled simulation campaign and fails (exit code 1)
// if any job's observed delay exceeded its Algorithm 1 bound — an empirical
// falsification harness for Theorem 1. Output depends only on -seed and
// -trials, never on -workers.
func montecarlo(g *guard.Ctx, limits *cli.Limits, trials int) error {
	p := eval.DefaultMonteCarloParams()
	p.Seed = limits.Seed
	p.Trials = trials
	p.Workers = limits.Workers
	p.Obs = g.Obs()
	rep, err := eval.MonteCarlo(g, p)
	if err != nil {
		return err
	}
	fmt.Println("Monte-Carlo Theorem 1 campaign: observed delay vs Algorithm 1 bound")
	fmt.Printf("  trials       %d\n", rep.Trials)
	fmt.Printf("  jobs         %d\n", rep.Jobs)
	fmt.Printf("  preemptions  %d\n", rep.Preemptions)
	fmt.Printf("  max paid     %.6f\n", rep.MaxPaid)
	fmt.Printf("  min slack    %.6f\n", rep.MinSlack)
	fmt.Printf("  violations   %d\n", rep.Violations)
	if rep.Violations > 0 {
		return fmt.Errorf("simulate: %d jobs exceeded their Algorithm 1 bound", rep.Violations)
	}
	return nil
}

// exactScenario demonstrates the exact schedule-graph baseline. The demo
// set's WCETs are inflated by each delay-accounting method (exact schedule
// graph, Algorithm 1, Equation 4); for every inflation the schedule-graph
// exploration computes the exact best/worst-case response-time envelope of
// the resulting non-preemptive set (execution times range over [C, C']),
// and a simulator run at C' cross-checks that no observed response exceeds
// the graph's WCRT. Because the execution intervals nest, the WCRT columns
// must be ordered exact <= Algorithm 1 <= Equation 4 for every task; the
// scenario fails loudly if they are not.
func exactScenario(g *guard.Ctx, limits *cli.Limits) error {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 2, Prio: 0},
		{Name: "mid", C: 4, T: 20, Q: 3, Prio: 1},
		{Name: "lo", C: 7, T: 40, Q: 4, Prio: 2},
	}
	// Back-loaded delay curves (cost climbs towards the end of the job) are
	// where Algorithm 1's point-selection bound is pessimistic and the exact
	// schedule graph pays off — cf. figures -fig atlas.
	mid, err := delay.NewPiecewise([]float64{0, 2, 3, 4}, []float64{0.2, 0.8, 1.2})
	if err != nil {
		return err
	}
	lo, err := delay.NewPiecewise([]float64{0, 3, 5, 7}, []float64{0.2, 1, 2})
	if err != nil {
		return err
	}
	fns := []delay.Function{nil, mid, lo}

	methods := []struct {
		name string
		opts sched.Options
	}{
		{"exact", sched.Options{Delay: fns, Method: sched.Exact, ExactStates: limits.States}},
		{"alg1", sched.Options{Delay: fns}},
		{"eq4", sched.Options{Delay: fns, Method: sched.Equation4}},
	}
	fmt.Println("Exact schedule-graph response times under per-method WCET inflation:")
	fmt.Printf("%-6s %-6s %9s %9s %9s %9s %7s\n",
		"method", "task", "C'", "BCRT", "WCRT", "observed", "sound")
	wcrts := make([][]float64, len(methods))
	for mi, m := range methods {
		r, err := sched.Analyze(g, ts, m.opts)
		if err != nil {
			return err
		}
		inflated := ts.Clone()
		for i := range inflated {
			inflated[i].BCET = ts[i].C
			inflated[i].C = r.EffectiveC[i]
		}
		sr, err := exact.ResponseTimes(g, inflated, exact.Options{
			MaxStates: limits.States, Workers: limits.Workers,
		})
		if err != nil {
			return err
		}
		wcrts[mi] = sr.WCRT
		hp, ok := inflated.Hyperperiod()
		if !ok {
			return fmt.Errorf("simulate: demo set has no rational hyperperiod")
		}
		res, err := sim.RunCtx(g, sim.Config{
			Tasks: inflated, Policy: sim.FixedPriority, Mode: sim.NonPreemptive,
			Horizon: hp,
		})
		if err != nil {
			return err
		}
		for i := range inflated {
			obs := res.Tasks[i].MaxResponse
			sound := "yes"
			if res.Tasks[i].Finished == 0 {
				sound = "n/a"
			} else if obs > sr.WCRT[i]+1e-9 {
				sound = "NO"
			}
			fmt.Printf("%-6s %-6s %9.3f %9.3f %9.3f %9.3f %7s\n",
				m.name, inflated[i].Name, inflated[i].C, sr.BCRT[i], sr.WCRT[i], obs, sound)
			if sound == "NO" {
				return fmt.Errorf("simulate: %s/%s observed %.3f exceeds schedule-graph WCRT %.3f",
					m.name, inflated[i].Name, obs, sr.WCRT[i])
			}
		}
		fmt.Printf("%-6s %d jobs, %d states (%d merges, %d prunes), schedulable=%v\n",
			m.name, sr.Jobs, sr.States, sr.Merges, sr.Prunes, sr.Schedulable)
	}
	for i := range ts {
		if wcrts[0][i] > wcrts[1][i]+1e-9 || wcrts[1][i] > wcrts[2][i]+1e-9 {
			return fmt.Errorf("simulate: WCRT ordering violated for %s: exact %.3f, alg1 %.3f, eq4 %.3f",
				ts[i].Name, wcrts[0][i], wcrts[1][i], wcrts[2][i])
		}
	}
	fmt.Println("WCRT ordering exact <= Algorithm 1 <= Equation 4 holds for every task.")
	return nil
}

func stats(g *guard.Ctx, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	ts := task.Set{
		{Name: "fast", C: 1, T: 7, Q: 1},
		{Name: "medium", C: 4, T: 23, Q: 2},
		{Name: "victim", C: 30, T: 120, Q: 6},
	}
	ts.AssignRateMonotonic()
	med, err := delay.NewConstant(0.3, 4)
	if err != nil {
		return err
	}
	vic, err := delay.NewFrontLoaded(3, 0.5, 30)
	if err != nil {
		return err
	}
	fns := []delay.Function{nil, med, vic}
	cfg := sim.Config{
		Tasks: ts, Policy: sim.FixedPriority, Mode: sim.FloatingNPR,
		Horizon: 30000, Delay: fns,
	}
	cfg.Releases = sim.SporadicReleases(r, cfg, 0.4)
	res, err := sim.RunCtx(g, cfg)
	if err != nil {
		return err
	}
	if err := sim.CheckInvariants(res); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	fmt.Println("response-time distributions under sporadic floating-NPR load:")
	for i := range ts {
		fmt.Printf("  %-8s %s\n", ts[i].Name, res.Stats(i))
	}
	return nil
}

func edf(g *guard.Ctx, events bool) error {
	ts := task.Set{
		{Name: "a", C: 1, T: 8},
		{Name: "b", C: 3, T: 20},
		{Name: "c", C: 6, T: 50},
	}
	qs, err := npr.AssignQCtx(g, ts, npr.EDF)
	if err != nil {
		return err
	}
	fmt.Println("EDF with Q from the Bertogna-Baruah demand-bound analysis:")
	for _, tk := range qs {
		fmt.Printf("  %s\n", tk)
	}
	b, err := delay.NewConstant(0.4, 3)
	if err != nil {
		return err
	}
	c, err := delay.NewFrontLoaded(1.5, 0.1, 6)
	if err != nil {
		return err
	}
	fns := []delay.Function{nil, b, c}
	res, err := sim.RunCtx(g, sim.Config{
		Tasks: qs, Policy: sim.EDF, Mode: sim.FloatingNPR,
		Horizon: 400, Delay: fns,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(res.Summary())
	fmt.Println(res.Timeline(5))
	if events {
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	return nil
}

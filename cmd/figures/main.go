// Command figures regenerates the paper's figures as CSV files and ASCII
// charts.
//
// Usage:
//
//	figures -fig 4 [-params literal|calibrated] [-out fig4.csv]
//	figures -fig 5 [-params literal|calibrated] [-out fig5.csv] [-ascii]
//	figures -fig 1
//	figures -fig 2
//	figures -fig acceptance [-out acc.csv] [-workers N] [-seed S] [-sets N]
//	figures -fig all [-dir .]
//
// Figure 4 emits the three synthetic benchmark delay functions; Figure 5
// emits the cumulative preemption delay of Algorithm 1 on each function and
// the state-of-the-art bound over the Q sweep; Figures 1 and 2 print the
// worked CFG example and the naive-bound counter-example as text.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fnpr/internal/cli"
	"fnpr/internal/delay"
	"fnpr/internal/eval"
	"fnpr/internal/guard"
	"fnpr/internal/textplot"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1, 2, 4, 5 or all")
		params = flag.String("params", "calibrated", "benchmark parameters: literal (paper text) or calibrated (paper plot)")
		out    = flag.String("out", "", "CSV output file (default stdout; figures 4 and 5 only)")
		dir    = flag.String("dir", ".", "output directory for -fig all")
		ascii  = flag.Bool("ascii", true, "also render an ASCII chart (figures 4 and 5)")
		svg    = flag.String("svg", "", "also write an SVG chart to this file (figures 4, 5, acceptance, preemptions)")
		sets   = flag.Int("sets", 0, "acceptance campaign: task sets per utilization point (0 = paper default)")
	)
	limits := cli.Flags().SweepFlags()
	flag.Parse()
	g := limits.Guard()

	// The result cache (when -cache/-cache-file asked for one) flows into
	// the sweeps through limits.SweepOptions; Exit persists it back.
	if _, err := limits.OpenCache(); err != nil {
		fatal(err)
	}

	p, err := pickParams(*params)
	if err != nil {
		fatal(err)
	}
	if limits.Journal != "" && *fig != "5" && *fig != "acceptance" {
		fatal(cli.Usagef("-journal supports -fig 5 and -fig acceptance only (got -fig %s)", *fig))
	}

	switch *fig {
	case "1":
		rep, err := eval.Figure1Report()
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
	case "2":
		rep, err := eval.Figure2()
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
	case "3":
		rep, err := eval.Figure3Report()
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
	case "4":
		tb, err := eval.Figure4(p, 200)
		if err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, false, "Figure 4 — benchmark delay functions"); err != nil {
			fatal(err)
		}
	case "5":
		// The Figure 5 sweep runs under the crash-safe batch runtime:
		// transient per-point failures are retried with backoff before
		// degrading, and with -journal every completed grid point is
		// checkpointed so an aborted run (crash, Ctrl-C, budget) can
		// continue with -resume, byte-identical to an uninterrupted run.
		j, resume, err := limits.OpenJournal()
		if err != nil {
			fatal(err)
		}
		cli.Checkpoint(g, j)
		tb, err := eval.Figure5(g, p, limits.SweepOptions(g, j, resume))
		if j != nil {
			if cerr := j.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, true, "Figure 5 — cumulative preemption delay vs Q"); err != nil {
			fatal(err)
		}
	case "acceptance":
		// The acceptance campaign runs under the same crash-safe batch
		// runtime as the Figure 5 sweep: with -journal every fully
		// aggregated utilization point is checkpointed, and -resume restores
		// them — the table is byte-identical to an uninterrupted run because
		// every trial is a pure function of (seed, point, trial).
		j, resume, err := limits.OpenJournal()
		if err != nil {
			fatal(err)
		}
		cli.Checkpoint(g, j)
		ap := eval.DefaultAcceptanceParams()
		if *sets > 0 {
			ap.SetsPerPoint = *sets
		}
		ap.Seed = limits.Seed
		ap.Workers = limits.Workers
		ap.Obs = g.Obs()
		ap.Journal = j
		ap.Resume = resume
		tb, err := eval.Acceptance(g, ap)
		if j != nil {
			if cerr := j.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		if err := eval.AcceptanceChecks(tb); err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, false, "Acceptance ratio vs utilization"); err != nil {
			fatal(err)
		}
	case "tightness":
		tp := eval.DefaultTightnessParams()
		tb, err := eval.Tightness(g, tp)
		if err != nil {
			fatal(err)
		}
		if err := eval.TightnessChecks(tb); err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, false, "Bound tightness vs Q"); err != nil {
			fatal(err)
		}
	case "atlas":
		// The pessimism atlas sweeps the synthetic delay-function families
		// and tabulates exact-vs-Algorithm-1-vs-Equation-4 gaps; the exact
		// engine runs under the -states budget and the table is
		// bit-identical for every -workers value.
		ap := eval.DefaultAtlasParams()
		ap.Seed = limits.Seed
		ap.Workers = limits.Workers
		ap.MaxStates = limits.States
		ap.Obs = g.Obs()
		tb, err := eval.Atlas(g, ap)
		if err != nil {
			fatal(err)
		}
		if err := eval.AtlasChecks(tb); err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, false, "Pessimism atlas — exact vs Algorithm 1 vs Equation 4"); err != nil {
			fatal(err)
		}
	case "preemptions":
		pp := eval.DefaultPreemptionParams()
		tb, err := eval.Preemptions(pp)
		if err != nil {
			fatal(err)
		}
		if err := eval.PreemptionChecks(tb); err != nil {
			fatal(err)
		}
		if err := emitWithSVG(tb, *out, *svg, *ascii, false, "Preemption collation vs Q"); err != nil {
			fatal(err)
		}
	case "all":
		if err := all(g, p, *dir, *ascii); err != nil {
			fatal(err)
		}
	default:
		fatal(cli.Usagef("unknown figure %q (want 1, 2, 3, 4, 5, acceptance, atlas, preemptions, tightness or all)", *fig))
	}
	fatal(nil)
}

func pickParams(name string) (delay.BenchmarkParams, error) {
	switch name {
	case "literal":
		return delay.LiteralParams(), nil
	case "calibrated":
		return delay.CalibratedParams(), nil
	default:
		return delay.BenchmarkParams{}, cli.Usagef("unknown params %q (want literal or calibrated)", name)
	}
}

func emitWithSVG(tb *textplot.Table, out, svgPath string, ascii, logY bool, title string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tb.WriteCSV(w); err != nil {
		return err
	}
	if ascii {
		chart, err := tb.ASCII(textplot.ASCIIOptions{Width: 80, Height: 24, LogY: logY})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, chart)
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tb.WriteSVG(f, textplot.SVGOptions{LogY: logY, Title: title}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", svgPath)
	}
	return nil
}

func all(g *guard.Ctx, p delay.BenchmarkParams, dir string, ascii bool) error {
	rep1, err := eval.Figure1Report()
	if err != nil {
		return err
	}
	fmt.Println(rep1)
	rep2, err := eval.Figure2()
	if err != nil {
		return err
	}
	fmt.Println(rep2.String())
	tb4, err := eval.Figure4(p, 200)
	if err != nil {
		return err
	}
	if err := writeCSVFile(tb4, filepath.Join(dir, "fig4.csv")); err != nil {
		return err
	}
	tb5, err := eval.Figure5(g, p, eval.SweepOptions{Obs: g.Obs()})
	if err != nil {
		return err
	}
	if err := writeCSVFile(tb5, filepath.Join(dir, "fig5.csv")); err != nil {
		return err
	}
	if ascii {
		for _, c := range []struct {
			tb   *textplot.Table
			logY bool
			name string
		}{{tb4, false, "Figure 4"}, {tb5, true, "Figure 5"}} {
			chart, err := c.tb.ASCII(textplot.ASCIIOptions{Width: 80, Height: 24, LogY: c.logY})
			if err != nil {
				return err
			}
			fmt.Printf("%s:\n%s\n", c.name, chart)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", filepath.Join(dir, "fig4.csv"), filepath.Join(dir, "fig5.csv"))
	return nil
}

func writeCSVFile(tb *textplot.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}

func fatal(err error) {
	cli.Exit("figures", err)
}

// Command cfgdemo reproduces the worked example of Figure 1: a loop-free
// control-flow graph with per-block execution-time intervals, the
// breadth-first earliest/latest start-offset analysis of Equations 1-3, and
// the derived per-block execution windows. It then runs the full Section IV
// pipeline on the same graph: synthetic per-block CRPD values produce the
// preemption delay function f(t), on which Algorithm 1 and the
// state-of-the-art bound are compared for a few NPR lengths Q.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/cli"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/eval"
	"fnpr/internal/guard"
)

func main() {
	var (
		dot  = flag.Bool("dot", false, "print only the Graphviz rendering of the Figure 1 CFG")
		full = flag.Bool("pipeline", true, "run the delay-function pipeline on top of the offsets")
		file = flag.String("file", "", "analyse a CFG from a text file (see internal/cfg/text.go for the format) instead of the Figure 1 example; lines of the form 'access <block> <line>...' attach memory accesses and enable the CRPD pipeline")
	)
	limits := cli.Flags()
	flag.Parse()
	gd := limits.Guard()

	if *file != "" {
		analyseFile(gd, *file)
		fatal(nil)
	}
	if *dot {
		fmt.Print(cfg.Figure1().DOT("figure1"))
		fatal(nil)
	}
	rep, err := eval.Figure1Report()
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if !*full {
		fatal(nil)
	}

	g := cfg.Figure1()
	off, err := g.AnalyzeOffsets()
	if err != nil {
		fatal(err)
	}
	// Synthetic CRPD per block: the working-set pattern of Section III's
	// motivating example — early blocks carry a large reloadable working
	// set, late blocks only a small one.
	crpd := map[cfg.BlockID]float64{
		0: 12, 1: 12, 2: 12, 3: 10, 4: 8, 5: 6, 6: 6, 7: 4, 8: 4, 9: 2, 10: 1,
	}
	f, err := delay.FromCFG(off, crpd)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nPreemption delay function from CRPD per block:\n  f = %v\n\n", f)
	fmt.Printf("%8s %14s %18s\n", "Q", "Algorithm 1", "state of the art")
	for _, q := range []float64{15, 20, 30, 50, 80, 120, 180} {
		alg, err := core.Analyze(gd, f, q, core.Options{})
		if err != nil {
			fatal(err)
		}
		soa, err := core.Analyze(gd, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8g %14.3f %18.3f\n", q, alg.TotalDelay, soa.TotalDelay)
	}
	fatal(nil)
}

// analyseFile loads a CFG in the text format (with optional
// "access <block> <line>..." directives), collapses loops, and prints the
// offset table; when accesses are present it continues through the CRPD
// pipeline to the delay function and the Algorithm 1 / Equation 4 bounds.
func analyseFile(gd *guard.Ctx, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	// Split access directives from the core format.
	var graphLines []string
	type accessDirective struct {
		block string
		lines []cache.Line
	}
	var accesses []accessDirective
	for no, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 || fields[0] != "access" {
			graphLines = append(graphLines, line)
			continue
		}
		if len(fields) < 3 {
			fatal(fmt.Errorf("line %d: access needs a block and at least one line number", no+1))
		}
		d := accessDirective{block: fields[1]}
		for _, tok := range fields[2:] {
			v, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				fatal(fmt.Errorf("line %d: bad cache line %q: %v", no+1, tok, err))
			}
			d.lines = append(d.lines, cache.Line(v))
		}
		accesses = append(accesses, d)
	}
	g, err := cfg.Parse(strings.NewReader(strings.Join(graphLines, "\n")))
	if err != nil {
		fatal(err)
	}
	col, err := g.CollapseLoops()
	if err != nil {
		fatal(err)
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		fatal(err)
	}
	fmt.Print(off.Table())
	if len(accesses) == 0 {
		return
	}
	// Resolve block names against the ORIGINAL graph, then remap through
	// the collapse provenance.
	byName := make(map[string]cfg.BlockID)
	for id := 0; id < g.Len(); id++ {
		byName[g.Block(cfg.BlockID(id)).Label()] = cfg.BlockID(id)
	}
	acc := make(cache.AccessMap)
	for _, d := range accesses {
		id, ok := byName[d.block]
		if !ok {
			fatal(fmt.Errorf("access directive references unknown block %q", d.block))
		}
		acc[id] = append(acc[id], d.lines...)
	}
	cc := cache.Config{Sets: 64, Assoc: 2, LineBytes: 16, ReloadCost: 1}
	ucb, err := cache.AnalyzeUCB(col.Graph, cache.RemapAccesses(col, acc), cc)
	if err != nil {
		fatal(err)
	}
	f, err := delay.FromUCB(off, ucb)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nf(t) = %v\n\n", f)
	fmt.Printf("%8s %14s %18s\n", "Q", "Algorithm 1", "state of the art")
	_, maxF := f.Max()
	for _, q := range []float64{maxF + 1, maxF + 5, maxF * 3, off.WCET / 4, off.WCET / 2} {
		if q <= maxF {
			continue
		}
		alg, err := core.Analyze(gd, f, q, core.Options{})
		if err != nil {
			fatal(err)
		}
		soa, err := core.Analyze(gd, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8.2f %14.3f %18.3f\n", q, alg.TotalDelay, soa.TotalDelay)
	}
}

func fatal(err error) {
	cli.Exit("cfgdemo", err)
}

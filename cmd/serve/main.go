// Command serve runs the analysis service: an HTTP/JSON front end over the
// analysis stack with admission control, load shedding and a graceful drain
// on SIGINT/SIGTERM.
//
// Usage:
//
//	serve [-addr localhost:8080] [-drain-timeout 10s] [-queue 8]
//	      [-campaign-workers 2] [-analyze-concurrency N] [-journal-dir DIR]
//	      [-data-dir DIR] [-sync close|always|N] [-job-ttl 1h] [-max-jobs 1024]
//	      [-timeout 30s] [-max-iter N] [-metrics] [-metrics-out FILE]
//	      [-debug-addr ADDR] [-cache] [-cache-size N]
//
// -cache enables the content-addressed result cache: repeated /v1/analyze
// requests for the same (function, Q, options) are answered from memory
// (the response gains "cached": true), and /v1/analyzeset accepts
// "delta": true to reuse per-task terms across edits. See DESIGN.md §14.
//
// The shared -timeout and -max-iter flags are reinterpreted as server-wide
// caps: no request may run longer than -timeout wall-clock or charge more
// than -max-iter analysis steps, whatever it asks for. The observability
// trio works as in every other command; the debug tree is additionally
// mounted on the main listener under /debug/.
//
// -data-dir enables the durable job store: submissions are recorded in a
// WAL-style manifest (fsynced per record) before they are acked, and on
// startup the server re-registers finished jobs and automatically resumes
// campaigns a crash interrupted — a kill -9 mid-campaign costs the points in
// flight, never the completed ones. -sync sets the checkpoint journals' sync
// policy (the manifest always fsyncs per record). See DESIGN.md §13.
//
// Endpoints:
//
//	GET  /healthz                  liveness (always 200 while the process runs)
//	GET  /readyz                   readiness (503 once a drain begins)
//	POST /v1/analyze               one delay-function bound (core.Analyze)
//	POST /v1/analyzeset            a task-set grid analysis (eval.AnalyzeSet)
//	POST /v1/campaign/acceptance   submit an acceptance campaign → job ID
//	POST /v1/campaign/montecarlo   submit a Monte-Carlo campaign → job ID
//	GET  /v1/jobs                  list jobs (state, fingerprint, recovered)
//	GET  /v1/jobs/{id}             poll a campaign job
//	     /debug/                   expvar and pprof
//
// On SIGINT/SIGTERM the server drains: readiness flips, new work is refused
// with 429, running campaigns finish or — past -drain-timeout — are canceled
// with their journals checkpointed, the metrics snapshot is flushed, and the
// process exits 0. See DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fnpr/internal/cli"
	"fnpr/internal/obs"
	"fnpr/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address (host:port; :0 for an ephemeral port)")
		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "graceful-drain deadline on SIGINT/SIGTERM; running campaigns are canceled (checkpoints kept) when it expires")
		queueCap     = flag.Int("queue", server.DefaultQueueCap, "campaign queue capacity; a full queue rejects submissions immediately with 429")
		workers      = flag.Int("campaign-workers", server.DefaultWorkers, "campaign worker pool size")
		analyzeConc  = flag.Int("analyze-concurrency", 0, "max concurrent synchronous analyses (0 = 2x GOMAXPROCS); beyond it requests get 429")
		journalDir   = flag.String("journal-dir", "", "directory for campaign checkpoint journals (empty disables journaled campaigns)")
		dataDir      = flag.String("data-dir", "", "directory for the durable job store; enables crash recovery of campaign jobs (empty keeps jobs in memory only)")
		sync         = flag.String("sync", "close", "checkpoint-journal sync policy: close (on close only), always (every record), or every Nth record")
		jobTTL       = flag.Duration("job-ttl", server.DefaultJobTTL, "how long finished jobs stay pollable before eviction (negative disables)")
		maxJobs      = flag.Int("max-jobs", server.DefaultMaxJobs, "max jobs kept in the registry; oldest finished jobs are evicted first (negative disables)")
		cache        = flag.Bool("cache", false, "enable the content-addressed result cache for /v1/analyze and delta-mode /v1/analyzeset")
		cacheSize    = flag.Int("cache-size", 0, "result cache entry bound (0 = default; only with -cache)")
	)
	limits := cli.Flags()
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(cli.Usagef("unexpected arguments %q", flag.Args()))
	}
	syncEvery, err := cli.ParseSyncPolicy(*sync)
	if err != nil {
		fatal(err)
	}
	cacheEntries := 0
	if *cache {
		cacheEntries = *cacheSize
		if cacheEntries == 0 {
			cacheEntries = -1 // memo default
		}
	} else if *cacheSize != 0 {
		fatal(cli.Usagef("-cache-size requires -cache"))
	}

	srv := server.New(server.Config{
		Addr:               *addr,
		DrainTimeout:       *drainTimeout,
		MaxTimeout:         limits.Timeout,
		MaxBudget:          limits.MaxIter,
		QueueCap:           *queueCap,
		Workers:            *workers,
		AnalyzeConcurrency: *analyzeConc,
		JournalDir:         *journalDir,
		DataDir:            *dataDir,
		SyncEvery:          syncEvery,
		JobTTL:             *jobTTL,
		MaxJobs:            *maxJobs,
		CacheEntries:       cacheEntries,
		Registry:           obs.Default(),
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	limits.StartDebug()
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s\n", srv.Addr())

	// Block until a termination signal, then drain. The drain is the whole
	// shutdown story: stop admitting, finish or checkpoint campaigns, close
	// the HTTP side — and then Exit flushes the metrics snapshot like every
	// other command's exit path.
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	fmt.Fprintf(os.Stderr, "serve: %s received, draining (deadline %s)\n", sig, *drainTimeout)
	fatal(srv.Shutdown())
}

func fatal(err error) {
	cli.Exit("serve", err)
}

// fixed_vs_floating contrasts the two limited-preemption models on the same
// linear task: the fixed model (Bertogna et al.) selects explicit preemption
// points off-line, minimising total cost under a maximum non-preemptive
// interval; the floating model (this paper) lets preemptions strike anywhere
// subject to Q spacing and bounds the damage with Algorithm 1. Neither
// dominates: the sweep below shows the crossover as the allowed interval
// grows.
//
// Run with: go run ./examples/fixed_vs_floating
package main

import (
	"fmt"
	"log"

	"fnpr/internal/core"
	"fnpr/internal/fixednpr"
)

func main() {
	// A task of six chunks; boundaries alternate between expensive
	// (working set live) and cheap (between phases).
	task := fixednpr.Task{Chunks: []fixednpr.Chunk{
		{Duration: 8, Cost: 4},
		{Duration: 6, Cost: 0.5},
		{Duration: 9, Cost: 4},
		{Duration: 5, Cost: 0.5},
		{Duration: 8, Cost: 4},
		{Duration: 6, Cost: 0},
	}}
	fmt.Printf("task: C = %g over %d chunks\n\n", task.C(), len(task.Chunks))

	f, err := task.DelayFunction()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floating-model delay function: %v\n\n", f)

	fmt.Printf("%8s %16s %20s   %s\n", "q", "fixed (optimal)", "floating (Alg 1)", "points")
	for _, q := range []float64{9, 12, 15, 20, 25, 30, 42} {
		sel, err := fixednpr.SelectPoints(task, q)
		if err != nil {
			fmt.Printf("%8g %16s\n", q, "infeasible")
			continue
		}
		floating, err := core.Analyze(nil, f, q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8g %16.2f %20.2f   %v\n", q, sel.TotalCost, floating.TotalDelay, sel.Points)
	}

	fmt.Println("\nReading: with small q the fixed model must enable expensive")
	fmt.Println("points to cover the task (floating may win); with large q it")
	fmt.Println("enables only cheap points or none (fixed wins), while the")
	fmt.Println("floating bound still charges the worst point of each window.")
}

// edf_npr shows the full system-level story for EDF: derive the floating
// non-preemptive region lengths Qi from the Bertogna-Baruah demand-bound
// analysis, bound each task's cumulative preemption delay with Algorithm 1,
// inflate the WCETs (Equation 5) and run the delay-aware EDF schedulability
// test — then cross-check against the fully-preemptive alternative where
// every preemption is possible at any instant.
//
// Run with: go run ./examples/edf_npr
package main

import (
	"fmt"
	"log"

	"fnpr/internal/delay"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/task"
)

func main() {
	ts := task.Set{
		{Name: "sensor", C: 2, T: 10},
		{Name: "control", C: 6, T: 30},
		{Name: "logger", C: 20, T: 100},
	}
	fmt.Printf("task set (U = %.3f):\n", ts.Utilization())

	// Derive the largest admissible floating NPR lengths from the
	// demand-bound slack.
	qs, err := npr.AssignQ(ts, npr.EDF)
	if err != nil {
		log.Fatal(err)
	}
	for _, tk := range qs {
		fmt.Printf("  %s\n", tk)
	}

	// Delay functions: the sensor task is tiny (never preempted in
	// practice); control and logger have front-loaded working sets.
	fns := []delay.Function{
		nil,
		delay.FrontLoaded(1.5, 0.25, 6),
		delay.FrontLoaded(3, 0.5, 20),
	}

	res, err := sched.Analyze(nil, qs, sched.Options{Policy: sched.EDF, Delay: fns, Method: sched.Algorithm1})
	if err != nil {
		log.Fatal(err)
	}
	cp := res.EffectiveC
	fmt.Println("\neffective WCETs (Equation 5):")
	for i, tk := range qs {
		fmt.Printf("  %-8s C=%6.2f  C'=%6.2f  (+%.2f delay)\n", tk.Name, tk.C, cp[i], cp[i]-tk.C)
	}

	fmt.Printf("\ndelay-aware EDF schedulable with Algorithm 1: %v\n", res.Schedulable)

	// Same analysis with the pessimistic Equation 4 bound.
	res4, err := sched.Analyze(nil, qs, sched.Options{Policy: sched.EDF, Delay: fns, Method: sched.Equation4})
	if err != nil {
		log.Fatal(err)
	}
	cp4 := res4.EffectiveC
	fmt.Printf("delay-aware EDF schedulable with Equation 4:  %v (C' = %.2f, %.2f, %.2f)\n",
		res4.Schedulable, cp4[0], cp4[1], cp4[2])
}

// Quickstart: define a preemption delay function, pick a floating
// non-preemptive region length Q, and compare the paper's Algorithm 1 bound
// with the state-of-the-art Equation 4 bound.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fnpr/internal/core"
	"fnpr/internal/delay"
)

func main() {
	// A task with C = 100 whose preemption delay is expensive while its
	// working set is live (the motivating example of Section III): 12
	// units during the initial load phase, 6 while processing, 1 during
	// the long tail computation.
	f, err := delay.NewPiecewise(
		[]float64{0, 20, 35, 100},
		[]float64{12, 6, 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	const q = 25 // floating non-preemptive region length

	// The paper's contribution: Algorithm 1.
	res, err := core.Analyze(nil, f, q, core.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1:      total delay <= %.2f over %d preemptions\n",
		res.TotalDelay, res.Preemptions)
	fmt.Printf("                  effective WCET C' = %.2f (Equation 5)\n",
		res.EffectiveWCET(f.Domain()))
	for i, it := range res.Iterations {
		fmt.Printf("  window %d: prog=%.1f  p∩=%.1f  charged f(%.1f)=%.1f  next=%.1f\n",
			i+1, it.Prog, it.PIntersect, it.PMax, it.DelayMax, it.PNext)
	}

	// The state of the art charges max f for every possible preemption.
	soa, err := core.Analyze(nil, f, q, core.Options{Method: core.Equation4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nState of the art: total delay <= %.2f (Equation 4)\n", soa.TotalDelay)
	fmt.Printf("improvement:      %.1fx tighter\n", soa.TotalDelay/res.TotalDelay)

	// Theorem 1 in action: an adversarial run never exceeds the bound.
	_, worst := core.PeakSeekingScenario(f, q)
	fmt.Printf("\nworst simulated scenario pays %.2f <= bound %.2f\n",
		worst.TotalDelay, res.TotalDelay)
}

// simulation reproduces the spirit of Figure 2 with the full scheduler: it
// runs a task set under floating non-preemptive regions, records the delay
// every job of the victim task actually pays, and compares the observed
// worst case with Algorithm 1's static bound — the empirical face of
// Theorem 1. It also contrasts preemption counts across the three
// preemption models.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/sim"
	"fnpr/internal/task"
)

func main() {
	ts := task.Set{
		{Name: "fast", C: 1, T: 7, Q: 1},
		{Name: "medium", C: 4, T: 23, Q: 2},
		{Name: "victim", C: 30, T: 120, Q: 6},
	}
	ts.AssignRateMonotonic()

	// The victim's delay function has two expensive regions (working-set
	// builds) separated by cheap computation — the flavour of the
	// paper's "2 local maximum" benchmark.
	f, err := delay.NewPiecewise(
		[]float64{0, 6, 9, 18, 21, 30},
		[]float64{1, 4, 0.5, 4, 0.5},
	)
	if err != nil {
		log.Fatal(err)
	}
	fns := []delay.Function{nil, delay.Constant(0.3, 4), f}

	res, err := sim.Run(sim.Config{
		Tasks: ts, Policy: sim.FixedPriority, Mode: sim.FloatingNPR,
		Horizon: 6000, Delay: fns,
	})
	if err != nil {
		log.Fatal(err)
	}

	r, err := core.Analyze(nil, f, ts[2].Q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bound := r.TotalDelay

	fmt.Println("floating-NPR schedule over 6000 time units:")
	fmt.Print(res.Summary())

	fmt.Printf("\nvictim jobs: observed cumulative delay per job vs Algorithm 1 bound %.2f\n", bound)
	shown := 0
	for _, j := range res.Jobs {
		if j.Task != 2 || shown >= 10 {
			continue
		}
		shown++
		fmt.Printf("  job %2d: %d preemptions at progressions %v -> delay %.2f (bound %.2f)\n",
			j.Job, j.Preemptions, j.PreemptProgs, j.DelayPaid, bound)
		if j.DelayPaid > bound {
			fmt.Println("  !! BOUND VIOLATED — this must never print")
		}
	}

	fmt.Println("\npreemption counts by mode:")
	for _, mode := range []sim.Mode{sim.FullyPreemptive, sim.FloatingNPR, sim.NonPreemptive} {
		r, err := sim.Run(sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: mode,
			Horizon: 6000, Delay: fns,
		})
		if err != nil {
			log.Fatal(err)
		}
		total, misses := 0, 0
		for _, st := range r.Tasks {
			total += st.Preemptions
			misses += st.Missed
		}
		fmt.Printf("  %-18s preemptions=%4d  victim delay=%8.2f  misses=%d\n",
			mode, total, r.Tasks[2].DelayPaid, misses)
	}
}

// system_pipeline drives the complete analysis stack on a three-task system
// defined by programs rather than hand-written delay functions:
//
//	CFGs + memory accesses
//	  -> loop collapsing, execution intervals, WCET     (cfg, wcet)
//	  -> UCB/ECB cache analysis, CRPD per block          (cache)
//	  -> preemption delay functions fi(t)                (delay)
//	  -> floating NPR lengths Qi from blocking tolerance (npr)
//	  -> Algorithm 1 delay bounds and effective WCETs    (core)
//	  -> delay-aware response-time analysis              (sched)
//
// Run with: go run ./examples/system_pipeline
package main

import (
	"fmt"
	"log"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/npr"
	"fnpr/internal/system"
)

// program builds a load/loop/store task: load a table, iterate over it,
// write back a summary.
func program(lines []cache.Line, iterMin, iterMax int, unit float64) (*cfg.Graph, cache.AccessMap) {
	g := cfg.New()
	load := g.AddSimple("load", unit*2, unit*3)
	head := g.AddSimple("head", unit/4, unit/4)
	body := g.AddSimple("body", unit, unit*1.5)
	store := g.AddSimple("store", unit, unit)
	g.MustEdge(load, head)
	g.MustEdge(head, body)
	g.MustEdge(body, head)
	g.MustEdge(head, store)
	g.LoopBounds[head] = cfg.Bound{Min: iterMin, Max: iterMax}
	acc := cache.AccessMap{
		load:  lines,
		body:  lines,
		store: lines[:1+len(lines)/3],
	}
	return g, acc
}

func main() {
	g1, a1 := program([]cache.Line{0, 1}, 1, 2, 1)
	g2, a2 := program([]cache.Line{8, 9, 10, 11}, 2, 4, 2)
	g3, a3 := program([]cache.Line{16, 17, 18, 19, 20, 21}, 3, 6, 4)

	cfgSys := system.Config{
		Tasks: []system.TaskProgram{
			// sensor's Q is derived from the blocking tolerance; the
			// lower tasks get explicit, tighter NPRs so that higher-
			// priority jobs are served quickly (long NPRs would be
			// admissible here but inflate blocking).
			{Name: "sensor", T: 80, Prio: 0, Graph: g1, Accesses: a1},
			{Name: "control", T: 400, Prio: 1, Q: 8, Graph: g2, Accesses: a2},
			{Name: "logger", T: 2000, Prio: 2, Q: 6, Graph: g3, Accesses: a3},
		},
		Cache:  cache.Config{Sets: 16, Assoc: 2, LineBytes: 16, ReloadCost: 0.8},
		Policy: npr.FixedPriority,
		UseECB: true,
	}
	res, err := system.Analyze(cfgSys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("derived task set (C from WCET analysis, Q from blocking tolerance):")
	for _, tk := range res.Set {
		fmt.Printf("  %s\n", tk)
	}
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %12s %12s %12s %12s\n",
		"task", "BCET", "WCET", "max CRPD", "delay bound", "C'", "R")
	for i, ta := range res.Tasks {
		fmt.Printf("%-10s %10.2f %10.2f %12.2f %12.2f %12.2f %12.2f\n",
			ta.Task.Name, ta.BCET, ta.Task.C, ta.MaxCRPD,
			ta.TotalDelay, ta.EffectiveC, res.ResponseTimes[i])
	}
	fmt.Printf("\nschedulable: %v\n", res.Schedulable)

	fmt.Println("\nlogger's preemption delay function (from its program structure):")
	fmt.Printf("  f = %v\n", res.Tasks[2].Delay)
}

// cfg_crpd runs the complete Section IV pipeline on a small program:
//
//  1. build a control-flow graph with a loop and per-block execution-time
//     intervals and memory accesses,
//  2. collapse the loop and compute earliest/latest start offsets (Eqs 1-3),
//  3. run the useful-cache-block (UCB) analysis to get a CRPD bound per
//     basic block,
//  4. assemble the preemption delay function fi(t) = max_{b in BB(t)} CRPD_b,
//  5. bound the cumulative preemption delay with Algorithm 1.
//
// Run with: go run ./examples/cfg_crpd
package main

import (
	"fmt"
	"log"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/core"
	"fnpr/internal/delay"
)

func main() {
	// A task that loads a lookup table, iterates over input chunks in a
	// loop (reusing the table), then summarises using a small subset.
	g := cfg.New()
	load := g.AddSimple("load", 8, 10)
	head := g.AddSimple("loop-head", 1, 1)
	body := g.AddSimple("loop-body", 4, 6)
	sum := g.AddSimple("summarise", 6, 8)
	g.MustEdge(load, head)
	g.MustEdge(head, body)
	g.MustEdge(body, head) // back edge
	g.MustEdge(head, sum)
	g.LoopBounds[head] = cfg.Bound{Min: 2, Max: 4}

	// Memory accesses in cache-line units: the table occupies lines
	// 0..5, the loop reuses them, the summary touches only lines 0..1.
	acc := cache.AccessMap{
		load: {0, 1, 2, 3, 4, 5},
		body: {0, 1, 2, 3, 4, 5},
		sum:  {0, 1},
	}

	// 1 KiB direct-mapped cache with 16-byte lines and a 2-unit reload.
	cc := cache.Config{Sets: 64, Assoc: 1, LineBytes: 16, ReloadCost: 2}

	// Collapse the loop and lift accesses/CRPD onto the collapsed graph.
	col, err := g.CollapseLoops()
	if err != nil {
		log.Fatal(err)
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task BCET=%g WCET=%g\n\n%s\n", off.BCET, off.WCET, off.Table())

	ucb, err := cache.AnalyzeUCB(col.Graph, cache.RemapAccesses(col, acc), cc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CRPD per (collapsed) block:")
	for id := 0; id < col.Graph.Len(); id++ {
		b := cfg.BlockID(id)
		fmt.Printf("  %-14s UCB=%d  CRPD=%g\n",
			col.Graph.Block(b).Label(), ucb.UCB[b].Len(), ucb.CRPD(b))
	}

	f, err := delay.FromUCB(off, ucb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfi(t) = %v\n\n", f)

	fmt.Printf("%8s %14s %18s\n", "Q", "Algorithm 1", "state of the art")
	for _, q := range []float64{13, 16, 20, 30, 45} {
		alg, err := core.Analyze(nil, f, q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		soa, err := core.Analyze(nil, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8g %14.2f %18.2f\n", q, alg.TotalDelay, soa.TotalDelay)
	}

	// Against a small preempting task that only touches two cache sets,
	// the ECB-refined function is tighter still.
	ecb := cache.NewLineSet(64, 65) // preempter's lines -> sets 0 and 1
	fe, err := delay.FromUCBAgainst(off, ucb, ecb)
	if err != nil {
		log.Fatal(err)
	}
	algE, err := core.Analyze(nil, fe, 16, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	alg, _ := core.Analyze(nil, f, 16, core.Options{})
	fmt.Printf("\nECB refinement at Q=16: %.2f (UCB-only: %.2f)\n", algE.TotalDelay, alg.TotalDelay)
}

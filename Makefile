# Developer entry points. `make check` is the CI gate: static analysis, the
# full test suite under the race detector (the guarded sweep pool and the
# shared step budget are concurrent code paths), and a one-iteration bench
# smoke proving the BENCH_PR3.json pipeline still produces a report.

GO ?= go
BENCH_OUT ?= bench.out
BENCH_JSON ?= BENCH_PR3.json

.PHONY: build test check race vet lint-api bench bench-smoke bench-pr5 bench-pr8 bench-pr9 bench-pr10 bench-regress bench-regress-pr8 bench-regress-pr9 bench-regress-pr10 nfr figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint-api rejects new exported X/XCtx or X/XOpts pairs (the ladder
# anti-pattern the consolidated core.Analyze / eval.QSweep APIs replaced).
# Pre-existing pairs are allowlisted in tools/lintapi/main.go.
lint-api:
	$(GO) run ./tools/lintapi .

race:
	$(GO) test -race ./...

check: vet lint-api race bench-smoke

# bench runs the full suite at default benchtime and renders the
# machine-readable report (per-benchmark ns/op, allocs/op and headline bound
# metrics, plus the scan-vs-indexed kernel speedup table).
bench:
	$(GO) test . -run '^$$' -bench . -benchmem > $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-smoke is the CI variant: one iteration of the kernel-comparison
# benchmarks, failing if the JSON report cannot be produced. Numbers from a
# single iteration are not meaningful; only the pipeline is under test.
bench-smoke:
	$(GO) test . -run '^$$' -bench 'Figure5Sweep|IndexedKernel' -benchtime 1x -benchmem > $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON)

# bench-pr5 captures the empirical campaign layer: the sharded acceptance
# engine at several worker counts and the pooled-vs-unpooled simulator trial.
# The report's speedup table pairs workers=1 with workers=8 (wall-clock, so
# it tracks the machine's core count) and mode=unpooled with mode=pooled
# (allocs/op lands in alloc_reductions).
bench-pr5:
	$(GO) test . -run '^$$' -bench 'AcceptanceCampaign|SimTrial' -benchmem > bench_pr5.out
	$(GO) run ./cmd/benchjson -in bench_pr5.out -out BENCH_PR5.json
	@echo "wrote BENCH_PR5.json"

# bench-pr8 captures the result-cache layer: the memoized Figure 5 kernel
# sweep (cache=cold populates a fresh cache, cache=warm answers the whole
# sweep by lookup — the repeated-sweep speedup) and the incremental task-set
# re-analysis after a single-task edit (mode=full vs mode=incremental; the
# recomputed_frac metric records the fraction of terms that had to recompute,
# <0.5 by design). The report is gated by tools/benchregress like the others.
bench-pr8:
	$(GO) test . -run '^$$' -bench 'MemoSweep|AnalyzeSetEdit' -benchmem > bench_pr8.out
	$(GO) run ./cmd/benchjson -in bench_pr8.out -out BENCH_PR8.json
	@echo "wrote BENCH_PR8.json"

# bench-regress-pr8 is bench-regress for the result-cache layer: rerun the
# memoized-sweep and incremental-AnalyzeSet benchmarks and compare against
# the checked-in BENCH_PR8.json baseline (machine-speed normalised).
bench-regress-pr8:
	$(GO) test . -run '^$$' -bench 'MemoSweep|AnalyzeSetEdit' -benchtime 300ms -benchmem > bench_pr8_current.out
	$(GO) run ./cmd/benchjson -in bench_pr8_current.out -out bench_pr8_current.json
	$(GO) run ./tools/benchregress -baseline BENCH_PR8.json -current bench_pr8_current.json -tolerance 0.30

# bench-pr9 captures the fixpoint-solver layer: the delay-aware RTA over
# warm-seeded task sets under the monotone baseline and the cutting-plane
# solver, at several delay-curve sizes. The report's speedup table pairs
# solver=monotone with solver=cutting (ns/op), and the rta-iters/op metric
# records the engine-evaluation count each solver needed — the cutting
# solver's count is the one the PR 9 acceptance bar (≥25% below the
# warm-start baseline) is read from.
bench-pr9:
	$(GO) test . -run '^$$' -bench 'RTASolver' -benchmem > bench_pr9.out
	$(GO) run ./cmd/benchjson -in bench_pr9.out -out BENCH_PR9.json
	@echo "wrote BENCH_PR9.json"

# bench-regress-pr9 is bench-regress for the solver layer: rerun the
# solver-comparison benchmarks and compare against the checked-in
# BENCH_PR9.json baseline (machine-speed normalised).
bench-regress-pr9:
	$(GO) test . -run '^$$' -bench 'RTASolver' -benchtime 300ms -benchmem > bench_pr9_current.out
	$(GO) run ./cmd/benchjson -in bench_pr9_current.out -out bench_pr9_current.json
	$(GO) run ./tools/benchregress -baseline BENCH_PR9.json -current bench_pr9_current.json -tolerance 0.30

# bench-pr10 captures the exact schedule-graph layer: the worst-case-delay
# and response-time explorations with and without merging + dominance
# pruning (the mode=naive vs mode=pruned pairs report both the ns/op
# speedup and the states/op reduction the PR 10 acceptance bar — ≥10×
# fewer explored states — is read from), the parallel-frontier scaling
# ladder, and the content-addressed memoization pair.
bench-pr10:
	$(GO) test . -run '^$$' -bench 'Exact(Delay|SAG|Frontier|Memo)' -benchmem > bench_pr10.out
	$(GO) run ./cmd/benchjson -in bench_pr10.out -out BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

# bench-regress-pr10 is bench-regress for the exact-exploration layer:
# rerun the schedule-graph benchmarks and compare against the checked-in
# BENCH_PR10.json baseline (machine-speed normalised).
bench-regress-pr10:
	$(GO) test . -run '^$$' -bench 'Exact(Delay|SAG|Frontier|Memo)' -benchtime 300ms -benchmem > bench_pr10_current.out
	$(GO) run ./cmd/benchjson -in bench_pr10_current.out -out bench_pr10_current.json
	$(GO) run ./tools/benchregress -baseline BENCH_PR10.json -current bench_pr10_current.json -tolerance 0.30

# bench-regress is the CI tripwire: rerun the analysis-kernel benchmarks,
# render a fresh report to bench_current.json (NOT the checked-in baseline
# file, which bench-smoke overwrites) and compare, machine-speed normalised,
# failing on any >30% relative ns/op regression. Missing benchmarks or
# metrics are skipped, never fatal. The benchtime is a duration, not an
# iteration count, so Go scales iterations per benchmark — the sub-µs
# kernels get the millions of iterations they need for a stable ns/op.
bench-regress:
	$(GO) test . -run '^$$' -bench 'Figure5Sweep/kernel=|IndexedKernel' -benchtime 300ms -benchmem > bench_current.out
	$(GO) run ./cmd/benchjson -in bench_current.out -out bench_current.json
	$(GO) run ./tools/benchregress -baseline $(BENCH_JSON) -current bench_current.json -tolerance 0.30

# nfr enforces the absolute wall-clock ceilings of docs/nfr.md: every
# user-facing scenario in the table must finish inside its per-row budget.
# Unlike the bench-regress tripwires (relative, machine-normalised), these
# fail outright when a command stops fitting its budget. The build step
# warms the cache so `go run` measures the scenario, not compilation.
nfr:
	$(GO) build ./...
	$(GO) run ./tools/nfrcheck

figures:
	$(GO) run ./cmd/figures -fig all

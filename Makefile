# Developer entry points. `make check` is the CI gate: static analysis plus
# the full test suite under the race detector (the guarded sweep pool and the
# shared step budget are concurrent code paths).

GO ?= go

.PHONY: build test check race vet bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench=. -benchmem

figures:
	$(GO) run ./cmd/figures -fig all

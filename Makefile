# Developer entry points. `make check` is the CI gate: static analysis, the
# full test suite under the race detector (the guarded sweep pool and the
# shared step budget are concurrent code paths), and a one-iteration bench
# smoke proving the BENCH_PR3.json pipeline still produces a report.

GO ?= go
BENCH_OUT ?= bench.out
BENCH_JSON ?= BENCH_PR3.json

.PHONY: build test check race vet lint-api bench bench-smoke figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint-api rejects new exported X/XCtx or X/XOpts pairs (the ladder
# anti-pattern the consolidated core.Analyze / eval.QSweep APIs replaced).
# Pre-existing pairs are allowlisted in tools/lintapi/main.go.
lint-api:
	$(GO) run ./tools/lintapi .

race:
	$(GO) test -race ./...

check: vet lint-api race bench-smoke

# bench runs the full suite at default benchtime and renders the
# machine-readable report (per-benchmark ns/op, allocs/op and headline bound
# metrics, plus the scan-vs-indexed kernel speedup table).
bench:
	$(GO) test . -run '^$$' -bench . -benchmem > $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-smoke is the CI variant: one iteration of the kernel-comparison
# benchmarks, failing if the JSON report cannot be produced. Numbers from a
# single iteration are not meaningful; only the pipeline is under test.
bench-smoke:
	$(GO) test . -run '^$$' -bench 'Figure5Sweep|IndexedKernel' -benchtime 1x -benchmem > $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON)

figures:
	$(GO) run ./cmd/figures -fig all

package fnpr

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"fnpr/internal/eval"
)

// The crash-torture tests are the durability contract exercised the hard way:
// kill -9 in a loop, restart, and demand the final result be byte-identical
// to an uninterrupted run. Unlike the smoke tests they SHRINK under -short
// (smaller campaign, fewer kills) instead of skipping — CI's crash-torture
// job runs them in short mode on every push.

// tortureScale returns (setsPerPoint, kills) sized for the mode.
func tortureScale(full, short int, fullKills, shortKills int) (int, int) {
	if testing.Short() {
		return short, shortKills
	}
	return full, fullKills
}

func buildTool(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// countPoints counts checkpointed acceptance points in a journal file. A
// missing file counts as zero; a torn tail may over-count by one, which only
// makes the progress watcher conservative.
func countPoints(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return strings.Count(string(raw), "accpoint:")
}

// normalizeJSON re-marshals any JSON value through map[string]any so two
// encodings of the same table compare byte-for-byte (object keys sorted).
func normalizeJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var u any
	if err := json.Unmarshal(b, &u); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// startServeProc launches a serve binary and blocks until the listen line
// appears on stderr, returning the base URL, the process and its exit channel.
func startServeProc(t *testing.T, bin string, args ...string) (string, *exec.Cmd, chan error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	t.Cleanup(func() { cmd.Process.Kill() })

	var base string
	sc := bufio.NewScanner(stderr)
	var slurped strings.Builder
	for sc.Scan() {
		line := sc.Text()
		slurped.WriteString(line + "\n")
		if addr, ok := strings.CutPrefix(line, "serve: listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line on stderr:\n%s", slurped.String())
	}
	go func() {
		for sc.Scan() {
		}
		io.Copy(io.Discard, stderr)
	}()
	return base, cmd, done
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// getJob fetches a job view; connection errors fail the test (the caller
// only polls servers it just started).
func getJob(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET job: %d %s", resp.StatusCode, b)
	}
	var v map[string]any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServeCrashTorture is the tentpole's proof: a durable server is
// SIGKILLed in a loop mid-campaign — never past a kill does it lose an acked
// submission or a checkpointed point — and after the final restart the job
// runs to completion with a table byte-identical to an in-process reference
// run, with server.jobs.recovered > 0 on the survivor.
func TestServeCrashTorture(t *testing.T) {
	sets, wantKills := tortureScale(1200, 400, 3, 2)
	tmp := t.TempDir()
	bin := buildTool(t, tmp, "serve", "./cmd/serve")
	dataDir := filepath.Join(tmp, "data")

	// In-process reference: the same campaign the handler will build from the
	// submitted JSON (handler defaults fill DelayScale/QFraction).
	ap := eval.DefaultAcceptanceParams()
	ap.Seed = 7
	ap.SetsPerPoint = sets
	ap.Tasks = 3
	ap.UStart, ap.UEnd, ap.UStep = 0.5, 0.9, 0.1
	refTable, err := eval.Acceptance(nil, ap)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refJSON := normalizeJSON(t, refTable)

	body, _ := json.Marshal(map[string]any{
		"seed": 7, "sets_per_point": sets, "tasks": 3,
		"u_start": 0.5, "u_end": 0.9, "u_step": 0.1,
	})
	submit := func(base string) string {
		t.Helper()
		req, err := http.NewRequest("POST", base+"/v1/campaign/acceptance", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "torture-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != 200 {
			t.Fatalf("submit: %d %s", resp.StatusCode, b)
		}
		var v map[string]any
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		id, _ := v["id"].(string)
		if id == "" {
			t.Fatalf("submit: no job id in %s", b)
		}
		return id
	}

	serveArgs := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-sync", "always", "-drain-timeout", "15s"}
	var (
		kills                int
		id, base             string
		cmd                  *exec.Cmd
		done                 chan error
		finishedBeforeTarget bool
	)
	for {
		base, cmd, done = startServeProc(t, bin, serveArgs...)
		waitReady(t, base)
		// The same Idempotency-Key every round: round 0 creates the job, later
		// rounds dedupe against the recovered one — the retry an operator's
		// client would do after a connection reset.
		id = submit(base)
		if kills >= wantKills || finishedBeforeTarget {
			break
		}
		// Let the campaign checkpoint at least one NEW point this round, so
		// every kill is guaranteed to land mid-campaign with fresh progress at
		// risk, then kill -9 with no warning.
		jpath := filepath.Join(dataDir, "journals", id+".journal")
		snapshot := countPoints(jpath)
		progressDeadline := time.Now().Add(90 * time.Second)
		jobDone := false
		for countPoints(jpath) <= snapshot {
			if st, _ := getJob(t, base, id)["state"]; st == "done" {
				jobDone = true
				break
			}
			if time.Now().After(progressDeadline) {
				t.Fatalf("round %d: no checkpoint progress", kills)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if jobDone {
			if kills == 0 {
				t.Fatal("campaign finished before the first kill; enlarge the campaign")
			}
			finishedBeforeTarget = true
			break
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		<-done
		kills++
	}
	t.Logf("killed the server %d times", kills)

	// Final run: the surviving server resumes from checkpoints and completes.
	var view map[string]any
	completeDeadline := time.Now().Add(3 * time.Minute)
	for {
		view = getJob(t, base, id)
		if view["state"] == "done" {
			break
		}
		if view["state"] == "failed" {
			t.Fatalf("recovered campaign failed: %v", view)
		}
		if time.Now().After(completeDeadline) {
			t.Fatalf("recovered campaign never finished: %v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view["recovered"] != true {
		t.Fatalf("surviving job not marked recovered: %v", view)
	}
	if got := normalizeJSON(t, view["result"]); got != refJSON {
		t.Fatalf("post-torture table differs from uninterrupted run\nref: %s\ngot: %s", refJSON, got)
	}

	// The survivor's counters prove the recovery path ran.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Fnpr struct {
			Counters map[string]float64 `json:"counters"`
		} `json:"fnpr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Fnpr.Counters["server.jobs.recovered"] < 1 {
		t.Fatalf("server.jobs.recovered = %v, want >= 1 (counters: %v)",
			vars.Fnpr.Counters["server.jobs.recovered"], vars.Fnpr.Counters)
	}

	// And the survivor still drains cleanly: SIGTERM, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve did not exit within the drain deadline")
	}
}

// TestFiguresCrashTorture is the CLI half of the same contract: kill -9 a
// journaled `figures -fig acceptance` run in a loop, resume each time, and
// the final CSV must be byte-identical to an uninterrupted run.
func TestFiguresCrashTorture(t *testing.T) {
	sets, wantKills := tortureScale(600, 150, 3, 2)
	tmp := t.TempDir()
	bin := buildTool(t, tmp, "figures", "./cmd/figures")
	jpath := filepath.Join(tmp, "acc.journal")
	out := filepath.Join(tmp, "out.csv")
	ref := filepath.Join(tmp, "ref.csv")
	metrics := filepath.Join(tmp, "metrics.json")

	baseArgs := []string{"-fig", "acceptance", "-seed", "7",
		"-sets", strconv.Itoa(sets), "-workers", "1", "-ascii=false"}

	// Uninterrupted reference run.
	if o, err := exec.Command(bin, append(append([]string{}, baseArgs...), "-out", ref)...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, o)
	}

	tortureArgs := append(append([]string{}, baseArgs...),
		"-journal", jpath, "-sync", "always", "-out", out)
	kills := 0
	for round := 0; kills < wantKills; round++ {
		args := append([]string{}, tortureArgs...)
		if round > 0 {
			args = append(args, "-resume")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// Kill only after this round checkpointed a fresh point, so every
		// kill has uncommitted work in flight and the loop is bounded by the
		// grid size.
		snapshot := countPoints(jpath)
		progressDeadline := time.Now().Add(90 * time.Second)
		exited := false
		for countPoints(jpath) <= snapshot {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("round %d: figures exited with %v before any progress", round, err)
				}
				exited = true
			default:
			}
			if exited {
				break
			}
			if time.Now().After(progressDeadline) {
				t.Fatalf("round %d: no checkpoint progress", round)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if exited {
			// Completed before the kill count was reached — possible on a
			// very fast machine; the resume below still proves the contract.
			break
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		<-done
		kills++
	}
	t.Logf("killed figures %d times", kills)

	// Final resumed run must complete, restore the checkpointed prefix and
	// emit a CSV byte-identical to the uninterrupted reference.
	finalArgs := append(append([]string{}, tortureArgs...),
		"-resume", "-metrics-out", metrics)
	if o, err := exec.Command(bin, finalArgs...).CombinedOutput(); err != nil {
		t.Fatalf("final resumed run: %v\n%s", err, o)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-torture CSV differs from uninterrupted run\nref:\n%s\ngot:\n%s", want, got)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot: %v\n%s", err, raw)
	}
	if kills > 0 && snap.Counters["campaign.points.restored"] < 1 {
		t.Fatalf("campaign.points.restored = %v after %d kills, want >= 1",
			snap.Counters["campaign.points.restored"], kills)
	}
}

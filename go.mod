module fnpr

go 1.22

package fnpr

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCommandsAndExamples executes every binary and example end to end,
// asserting success and a recognisable marker in the output — the
// integration guard for the whole user-facing surface. Skipped with -short.
func TestCommandsAndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()

	// A task-set spec and a CFG file for the file-driven tools.
	spec := filepath.Join(tmp, "ts.json")
	if err := os.WriteFile(spec, []byte(`{
	  "policy": "fp",
	  "tasks": [
	    {"name": "hi", "c": 5, "t": 100, "q": 5, "prio": 0},
	    {"name": "lo", "c": 40, "t": 400, "q": 6, "prio": 1,
	     "delay": {"kind": "frontloaded", "peak": 3, "tail": 0.5}}
	  ]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	graph := filepath.Join(tmp, "g.txt")
	if err := os.WriteFile(graph, []byte(
		"block a 2 3\nblock b 4 6\nedge a b\naccess a 0 1\naccess b 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"figures-1", []string{"run", "./cmd/figures", "-fig", "1"}, "WCET=205"},
		{"figures-2", []string{"run", "./cmd/figures", "-fig", "2"}, "unsound"},
		{"figures-3", []string{"run", "./cmd/figures", "-fig", "3"}, "delaymax"},
		{"figures-5", []string{"run", "./cmd/figures", "-fig", "5", "-ascii=false"}, "State of the Art"},
		{"cfgdemo", []string{"run", "./cmd/cfgdemo"}, "BCET=80"},
		{"cfgdemo-file", []string{"run", "./cmd/cfgdemo", "-file", graph}, "Algorithm 1"},
		{"fnprdelay", []string{"run", "./cmd/fnprdelay", "-spec", "0:10=4,10:60=0", "-q", "15", "-limit", "2"}, "Equation 4"},
		{"simulate-fig2", []string{"run", "./cmd/simulate", "-scenario", "fig2"}, "Theorem 1"},
		{"simulate-stats", []string{"run", "./cmd/simulate", "-scenario", "stats"}, "p99"},
		{"schedtest", []string{"run", "./cmd/schedtest", "-spec", spec, "-margin"}, "SCHEDULABLE"},
		{"report", []string{"run", "./cmd/report", "-dir", filepath.Join(tmp, "res"), "-quick"}, "wrote"},
		{"ex-quickstart", []string{"run", "./examples/quickstart"}, "Algorithm 1"},
		{"ex-cfg-crpd", []string{"run", "./examples/cfg_crpd"}, "CRPD"},
		{"ex-edf-npr", []string{"run", "./examples/edf_npr"}, "EDF"},
		{"ex-simulation", []string{"run", "./examples/simulation"}, "bound"},
		{"ex-fixed-vs-floating", []string{"run", "./examples/fixed_vs_floating"}, "floating"},
		{"ex-system", []string{"run", "./examples/system_pipeline"}, "schedulable"},
		{"ex-kernels", []string{"run", "./examples/kernels"}, "matmul"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", c.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%v output missing %q:\n%s", c.args, c.want, out)
			}
		})
	}
}

// TestExitCodeContract builds the binaries once and asserts the shared exit
// code convention: 0 success, 1 analysis error, 2 usage error, 3 resource
// limit (wall-clock timeout via -timeout or step budget via -max-iter).
// Binaries are run directly (not through `go run`) so the exit status is the
// tool's own. Skipped with -short.
func TestExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"figures", "fnprdelay", "schedtest", "simulate"} {
		bin := filepath.Join(tmp, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	cases := []struct {
		name string
		bin  string
		args []string
		code int
		// stderr must contain this (empty = no stderr requirement)
		errWant string
	}{
		{"success", "fnprdelay", []string{"-spec", "0:10=4,10:60=0", "-q", "15"}, 0, ""},
		{"analysis-error", "fnprdelay", []string{"-spec", "0:10=4,10:60=0", "-q", "-5"}, 1, "fnprdelay:"},
		{"analysis-error-io", "schedtest", []string{"-spec", filepath.Join(tmp, "no-such.json")}, 1, "schedtest:"},
		{"usage-missing-input", "fnprdelay", []string{}, 2, "exactly one of -f or -spec"},
		{"usage-bad-flag", "fnprdelay", []string{"-no-such-flag"}, 2, ""},
		{"usage-unknown-figure", "figures", []string{"-fig", "99"}, 2, "unknown figure"},
		{"usage-unknown-scenario", "simulate", []string{"-scenario", "nope"}, 2, "unknown scenario"},
		{"usage-missing-spec", "schedtest", []string{}, 2, "missing -spec"},
		{"timeout", "figures", []string{"-fig", "5", "-ascii=false", "-timeout", "1ns"}, 3, "canceled"},
		{"budget", "fnprdelay", []string{"-f", "gaussian2", "-q", "15", "-max-iter", "2"}, 3, "budget"},
		{"budget-sweep-partial", "figures", []string{"-fig", "5", "-ascii=false", "-max-iter", "2000"}, 3, "sweep aborted after"},
		{"usage-resume-without-journal", "figures", []string{"-fig", "5", "-resume"}, 2, "-resume requires -journal"},
		{"usage-journal-wrong-fig", "figures", []string{"-fig", "4", "-journal", filepath.Join(tmp, "j.log")}, 2, "-journal supports -fig 5"},
		{"usage-journal-wrong-scenario", "simulate", []string{"-scenario", "basic", "-journal", filepath.Join(tmp, "j.log")}, 2, "-journal supports -scenario bounds"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(bins[c.bin], c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("running %s %v: %v", c.bin, c.args, err)
			}
			if code != c.code {
				t.Fatalf("%s %v: exit code %d, want %d\nstderr: %s",
					c.bin, c.args, code, c.code, stderr.String())
			}
			if c.errWant != "" && !strings.Contains(stderr.String(), c.errWant) {
				t.Fatalf("%s %v: stderr missing %q:\n%s", c.bin, c.args, c.errWant, stderr.String())
			}
		})
	}
}

// TestMetricsFlushOnSigterm pins the exit-path observability contract: a
// journaled sweep under heavy fault injection (FNPR_CHAOS_PANIC_PROB keeps it
// cycling through retry backoffs) killed by SIGTERM must still exit with the
// resource code AND flush a parseable -metrics-out snapshot — the signal
// lands mid-backoff or mid-analysis, and neither path may lose the metrics
// file. Skipped with -short.
func TestMetricsFlushOnSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "figures")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/figures").CombinedOutput(); err != nil {
		t.Fatalf("building figures: %v\n%s", err, out)
	}

	journal := filepath.Join(tmp, "fig5.journal")
	metrics := filepath.Join(tmp, "metrics.json")
	cmd := exec.Command(bin, "-fig", "5", "-ascii=false",
		"-workers", "1", "-journal", journal, "-metrics-out", metrics)
	cmd.Env = append(os.Environ(), "FNPR_CHAOS_PANIC_PROB=0.7")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Wait for the first checkpointed point — the run is then deep in its
	// retry/backoff churn — and hit it with SIGTERM.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(journal); err == nil && strings.Contains(string(b), "point:") {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("figures exited before SIGTERM could be sent: %v\nstderr: %s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared; stderr: %s", stderr.String())
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("wait: %v", err)
		}
		if code != 3 {
			t.Fatalf("exit code %d after SIGTERM, want 3 (resource)\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("figures ignored SIGTERM (stuck in backoff?)\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "canceled") {
		t.Fatalf("stderr missing cancellation notice:\n%s", stderr.String())
	}

	// The metrics snapshot must exist and parse, and carry real counters.
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file after SIGTERM: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file does not parse: %v\n%s", err, raw)
	}
	if len(snap) == 0 {
		t.Fatalf("metrics file is empty JSON: %s", raw)
	}
}

// TestJournalResumeByteIdentical is the end-to-end crash-safety contract: a
// sweep killed mid-flight by a step budget, then resumed from its checkpoint
// journal, produces output byte-identical to an uninterrupted run. Covered
// for both journaled commands — figures -fig 5 (CSV output) and simulate
// -scenario bounds (per-trial stdout rows). Skipped with -short.
func TestJournalResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"figures", "simulate"} {
		bin := filepath.Join(tmp, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// run executes the binary, returning stdout and the exit code.
	run := func(t *testing.T, bin string, args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running %s %v: %v", bin, args, err)
		}
		t.Logf("%s %v: exit %d, stderr: %s", filepath.Base(bin), args, code, stderr.String())
		return stdout.String(), code
	}

	t.Run("figures-fig5", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		journal := filepath.Join(dir, "fig5.journal")
		fullCSV := filepath.Join(dir, "full.csv")
		partCSV := filepath.Join(dir, "part.csv")
		resumedCSV := filepath.Join(dir, "resumed.csv")

		// Uninterrupted reference run.
		if _, code := run(t, bins["figures"], "-fig", "5", "-ascii=false", "-out", fullCSV); code != 0 {
			t.Fatalf("reference run: exit %d, want 0", code)
		}
		// Journaled run killed mid-sweep by the step budget (the 75-point
		// sweep needs ~17k steps, so 5000 aborts partway with exit 3).
		if _, code := run(t, bins["figures"], "-fig", "5", "-ascii=false",
			"-journal", journal, "-max-iter", "5000", "-out", partCSV); code != 3 {
			t.Fatalf("aborted run: exit %d, want 3", code)
		}
		jb, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(jb), "point:") {
			t.Fatalf("aborted run checkpointed no grid points:\n%s", jb)
		}
		// Resume must finish the sweep and reproduce the reference bytes.
		if _, code := run(t, bins["figures"], "-fig", "5", "-ascii=false",
			"-journal", journal, "-resume", "-out", resumedCSV); code != 0 {
			t.Fatalf("resumed run: exit %d, want 0", code)
		}
		full, err := os.ReadFile(fullCSV)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(resumedCSV)
		if err != nil {
			t.Fatal(err)
		}
		if string(full) != string(resumed) {
			t.Fatalf("resumed CSV differs from uninterrupted run\nfull:\n%s\nresumed:\n%s", full, resumed)
		}
	})

	t.Run("simulate-bounds", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		journal := filepath.Join(dir, "bounds.journal")

		full, code := run(t, bins["simulate"], "-scenario", "bounds")
		if code != 0 {
			t.Fatalf("reference run: exit %d, want 0", code)
		}
		// The five trials need ~1.5k steps; 500 aborts after a couple.
		if _, code := run(t, bins["simulate"], "-scenario", "bounds",
			"-journal", journal, "-max-iter", "500"); code != 3 {
			t.Fatalf("aborted run: exit %d, want 3", code)
		}
		jb, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(jb), "trial:") {
			t.Fatalf("aborted run checkpointed no trials:\n%s", jb)
		}
		resumed, code := run(t, bins["simulate"], "-scenario", "bounds",
			"-journal", journal, "-resume")
		if code != 0 {
			t.Fatalf("resumed run: exit %d, want 0", code)
		}
		if full != resumed {
			t.Fatalf("resumed output differs from uninterrupted run\nfull:\n%s\nresumed:\n%s", full, resumed)
		}
	})
}

// TestResultCacheByteIdentical is the end-to-end contract for the -cache
// flags: a cached Figure 5 sweep emits bytes identical to an uncached run,
// the -cache-file snapshot written at exit warm-starts the next process, and
// that warm run answers the whole sweep from the cache (memo.hits in the
// metrics snapshot). Skipped with -short.
func TestResultCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "figures")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/figures").CombinedOutput(); err != nil {
		t.Fatalf("building figures: %v\n%s", err, out)
	}

	run := func(t *testing.T, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr: %s", args, err, stderr.String())
		}
		return stdout.String()
	}
	counters := func(t *testing.T, path string) map[string]int64 {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("metrics snapshot does not parse: %v\n%s", err, raw)
		}
		return snap.Counters
	}

	dir := t.TempDir()
	snapFile := filepath.Join(dir, "fig5.cache")
	refCSV := filepath.Join(dir, "ref.csv")
	coldCSV := filepath.Join(dir, "cold.csv")
	warmCSV := filepath.Join(dir, "warm.csv")
	coldMetrics := filepath.Join(dir, "cold.json")
	warmMetrics := filepath.Join(dir, "warm.json")

	// Reference run without any caching.
	run(t, "-fig", "5", "-ascii=false", "-out", refCSV)
	// Cold cached run: populates and persists the snapshot at exit.
	run(t, "-fig", "5", "-ascii=false", "-out", coldCSV,
		"-cache", "-cache-file", snapFile, "-metrics-out", coldMetrics)
	// Warm run in a fresh process: loads the snapshot, answers from it.
	run(t, "-fig", "5", "-ascii=false", "-out", warmCSV,
		"-cache", "-cache-file", snapFile, "-metrics-out", warmMetrics)

	ref, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{coldCSV, warmCSV} {
		got, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Errorf("%s differs from the uncached reference\nref:\n%s\ngot:\n%s",
				filepath.Base(f), ref, got)
		}
	}

	cold := counters(t, coldMetrics)
	if cold["memo.misses"] == 0 {
		t.Errorf("cold run recorded no cache misses: %v", cold)
	}
	warm := counters(t, warmMetrics)
	if warm["memo.persist.loaded"] == 0 {
		t.Errorf("warm run loaded nothing from the snapshot: %v", warm)
	}
	if warm["memo.hits"] == 0 {
		t.Errorf("warm run recorded no cache hits: %v", warm)
	}
	if warm["memo.hits"] < cold["memo.misses"] {
		t.Errorf("warm hits %d < cold misses %d; sweep not fully warm-started",
			warm["memo.hits"], cold["memo.misses"])
	}
}

package fnpr

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandsAndExamples executes every binary and example end to end,
// asserting success and a recognisable marker in the output — the
// integration guard for the whole user-facing surface. Skipped with -short.
func TestCommandsAndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()

	// A task-set spec and a CFG file for the file-driven tools.
	spec := filepath.Join(tmp, "ts.json")
	if err := os.WriteFile(spec, []byte(`{
	  "policy": "fp",
	  "tasks": [
	    {"name": "hi", "c": 5, "t": 100, "q": 5, "prio": 0},
	    {"name": "lo", "c": 40, "t": 400, "q": 6, "prio": 1,
	     "delay": {"kind": "frontloaded", "peak": 3, "tail": 0.5}}
	  ]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	graph := filepath.Join(tmp, "g.txt")
	if err := os.WriteFile(graph, []byte(
		"block a 2 3\nblock b 4 6\nedge a b\naccess a 0 1\naccess b 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"figures-1", []string{"run", "./cmd/figures", "-fig", "1"}, "WCET=205"},
		{"figures-2", []string{"run", "./cmd/figures", "-fig", "2"}, "unsound"},
		{"figures-3", []string{"run", "./cmd/figures", "-fig", "3"}, "delaymax"},
		{"figures-5", []string{"run", "./cmd/figures", "-fig", "5", "-ascii=false"}, "State of the Art"},
		{"cfgdemo", []string{"run", "./cmd/cfgdemo"}, "BCET=80"},
		{"cfgdemo-file", []string{"run", "./cmd/cfgdemo", "-file", graph}, "Algorithm 1"},
		{"fnprdelay", []string{"run", "./cmd/fnprdelay", "-spec", "0:10=4,10:60=0", "-q", "15", "-limit", "2"}, "Equation 4"},
		{"simulate-fig2", []string{"run", "./cmd/simulate", "-scenario", "fig2"}, "Theorem 1"},
		{"simulate-stats", []string{"run", "./cmd/simulate", "-scenario", "stats"}, "p99"},
		{"schedtest", []string{"run", "./cmd/schedtest", "-spec", spec, "-margin"}, "SCHEDULABLE"},
		{"report", []string{"run", "./cmd/report", "-dir", filepath.Join(tmp, "res"), "-quick"}, "wrote"},
		{"ex-quickstart", []string{"run", "./examples/quickstart"}, "Algorithm 1"},
		{"ex-cfg-crpd", []string{"run", "./examples/cfg_crpd"}, "CRPD"},
		{"ex-edf-npr", []string{"run", "./examples/edf_npr"}, "EDF"},
		{"ex-simulation", []string{"run", "./examples/simulation"}, "bound"},
		{"ex-fixed-vs-floating", []string{"run", "./examples/fixed_vs_floating"}, "floating"},
		{"ex-system", []string{"run", "./examples/system_pipeline"}, "schedulable"},
		{"ex-kernels", []string{"run", "./examples/kernels"}, "matmul"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", c.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%v output missing %q:\n%s", c.args, c.want, out)
			}
		})
	}
}

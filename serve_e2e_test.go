package fnpr

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end service contract exercised exactly as an
// operator would: build cmd/serve, start it on an ephemeral port, wait for
// readiness, run a synchronous analysis and a full asynchronous campaign over
// HTTP, peek at the debug tree, then SIGTERM it and require a graceful exit
// (code 0) with a non-empty metrics snapshot on disk. This is the test CI's
// serve-smoke job runs. Skipped with -short.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/serve").CombinedOutput(); err != nil {
		t.Fatalf("building serve: %v\n%s", err, out)
	}

	metrics := filepath.Join(tmp, "metrics.json")
	journalDir := filepath.Join(tmp, "journals")
	if err := os.Mkdir(journalDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-drain-timeout", "10s",
		"-journal-dir", journalDir,
		"-cache",
		"-metrics-out", metrics)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	// On early failure, make sure the child dies; Kill on an already-exited
	// process is a harmless no-op, and the Wait goroutine's send is buffered.
	t.Cleanup(func() { cmd.Process.Kill() })

	// The listen line carries the resolved ephemeral address; keep draining
	// stderr afterwards so the process never blocks on a full pipe.
	var base string
	sc := bufio.NewScanner(stderr)
	var slurped strings.Builder
	for sc.Scan() {
		line := sc.Text()
		slurped.WriteString(line + "\n")
		if addr, ok := strings.CutPrefix(line, "serve: listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line on stderr:\n%s", slurped.String())
	}
	go func() {
		for sc.Scan() {
		}
		io.Copy(io.Discard, stderr)
	}()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
		return resp.StatusCode, v
	}

	// Readiness.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if st, _ := get("/readyz"); st == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Synchronous analysis.
	st, v := post("/v1/analyze", map[string]any{
		"delay": map[string]any{"kind": "frontloaded", "peak": 3, "tail": 0.5},
		"c":     40, "q": 15,
	})
	if st != 200 {
		t.Fatalf("analyze: %d %v", st, v)
	}
	if td, ok := v["total_delay"].(float64); !ok || td <= 0 {
		t.Fatalf("analyze: total_delay %v", v["total_delay"])
	}
	if _, ok := v["cached"]; ok {
		t.Fatalf("first analyze already marked cached: %v", v)
	}

	// The identical request again: the result cache (-cache) must answer it,
	// bit-identical and flagged advisory "cached".
	st, v2 := post("/v1/analyze", map[string]any{
		"delay": map[string]any{"kind": "frontloaded", "peak": 3, "tail": 0.5},
		"c":     40, "q": 15,
	})
	if st != 200 {
		t.Fatalf("repeated analyze: %d %v", st, v2)
	}
	if v2["cached"] != true {
		t.Fatalf("repeated analyze not served from the cache: %v", v2)
	}
	if v2["total_delay"] != v["total_delay"] {
		t.Fatalf("cached total_delay %v != computed %v", v2["total_delay"], v["total_delay"])
	}

	// Asynchronous campaign: submit, then poll the job to completion.
	st, v = post("/v1/campaign/acceptance", map[string]any{
		"seed": 7, "sets_per_point": 5, "tasks": 3,
		"u_start": 0.5, "u_end": 0.6, "u_step": 0.1,
		"journal": "smoke.journal",
	})
	if st != http.StatusAccepted {
		t.Fatalf("campaign submit: %d %v", st, v)
	}
	id, _ := v["id"].(string)
	if id == "" {
		t.Fatalf("campaign submit: no job id in %v", v)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		status, body := get("/v1/jobs/" + id)
		if status != 200 {
			t.Fatalf("job poll: %d %s", status, body)
		}
		var jv map[string]any
		if err := json.Unmarshal(body, &jv); err != nil {
			t.Fatal(err)
		}
		if jv["state"] == "done" {
			if jv["result"] == nil {
				t.Fatalf("job done without result: %s", body)
			}
			break
		}
		if jv["state"] == "failed" {
			t.Fatalf("campaign failed: %s", body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(journalDir, "smoke.journal")); err != nil {
		t.Fatalf("campaign journal missing: %v", err)
	}

	// Debug tree on the main listener.
	if st, b := get("/debug/vars"); st != 200 || !bytes.Contains(b, []byte("fnpr")) {
		t.Fatalf("/debug/vars: %d %s", st, b)
	}

	// Graceful drain on SIGTERM: exit 0 within the drain deadline and a
	// parseable, non-empty metrics snapshot.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve did not exit within the drain deadline")
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics snapshot after drain: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v\n%s", err, raw)
	}
	if len(snap) == 0 {
		t.Fatal("metrics snapshot is empty")
	}
	counters, _ := snap["counters"].(map[string]any)
	if _, ok := counters["server.admitted"]; !ok {
		t.Fatalf("metrics snapshot missing counter server.admitted:\n%s", raw)
	}
	if hits, _ := counters["memo.hits"].(float64); hits < 1 {
		t.Fatalf("metrics snapshot shows no result-cache hits (memo.hits=%v):\n%s",
			counters["memo.hits"], raw)
	}
}

package exact

import (
	"encoding/hex"
	"math"
	"slices"
	"sync"

	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// maxSAGJobs caps the job count of one schedule-graph window; beyond it the
// instance is rejected up front (the state budget would trip long before the
// window completed anyway).
const maxSAGJobs = 4096

// SAGResult carries the outcome of one schedule-graph exploration.
type SAGResult struct {
	// WCRT and BCRT hold per-task worst- and best-case response times over
	// the analysed window (latest finish minus earliest release, and the
	// symmetric best case, maximised/minimised over the task's jobs and
	// all execution orders).
	WCRT, BCRT []float64
	// Jobs is the number of jobs in the window.
	Jobs int
	// States, Merges and Prunes count expanded states, same-set interval
	// unions and contained-interval absorptions.
	States, Merges, Prunes int
	// Depth is the number of BFS layers completed (equals Jobs on a full
	// exploration).
	Depth int
	// PeakFrontier is the widest per-layer frontier after merging.
	PeakFrontier int
	// Schedulable reports every task's WCRT within its deadline.
	Schedulable bool
	// Cached reports a whole-result memo hit.
	Cached bool
}

// sagJob is one job of the analysed window. Jobs are ordered task-major
// (tasks in priority order, releases in order within a task), so the slice
// index doubles as the fixed-priority dispatch order with same-task FIFO.
type sagJob struct {
	task       int
	rmin, rmax float64
	emin, emax float64
}

// sagState is one schedule-graph node: the set of dispatched jobs (a bitmask
// slice into the explorer's word slab) and the interval of instants at which
// the processor possibly becomes available.
type sagState struct {
	off    int // word offset into the owning slab
	lo, hi float64
}

// sagShard is one worker's contribution to a layer expansion.
type sagShard struct {
	out        []sagState
	slab       []uint64
	wcrt, bcrt []float64
	expanded   int
}

// sagExplorer holds the reusable slabs of one exploration.
type sagExplorer struct {
	jobs       []sagJob
	words      int
	cur, next  []sagState
	curSlab    []uint64
	nextSlab   []uint64
	shards     []sagShard
	wcrt, bcrt []float64
}

// ResponseTimes runs the exact schedule-graph analysis of a non-preemptive
// fixed-priority job set over one hyperperiod (or opts.Horizon): every task
// releases jobs periodically with release jitter [kT, kT+J] and execution
// in [BCET, C], the dispatcher is work-conserving non-preemptive FP, and
// the result is the exact per-task response-time range over all execution
// scenarios. Tasks must be in priority order (index 0 highest), as in
// package sched.
//
// FNPR semantics enter through the execution bounds: analysing a set whose
// C was inflated by a cumulative preemption-delay bound (C' = C + delay)
// yields response times exact for the inflated set — the atlas campaign
// compares the same window under exact, Algorithm 1 and Equation 4
// inflations, where the sustainability of the model (response times are
// monotone in execution times, Vlk et al.) orders the three.
//
// Intervals are treated as closed on a continuous timeline: where a
// higher-priority certain release bounds the latest start, that bound is
// the supremum of the admissible open start interval, so reported WCRTs are
// suprema (on integer-valued inputs this matches the discrete convention of
// the literature to within one grid unit, always from above — never
// optimistic).
func ResponseTimes(g *guard.Ctx, ts task.Set, opts Options) (*SAGResult, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("exact: empty task set")
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	sc := opts.Obs
	sc.Counter("exact.runs").Inc()

	horizon := opts.Horizon
	if horizon == 0 {
		h, ok := ts.Hyperperiod()
		if !ok {
			return nil, guard.Invalidf("exact: task periods have no integral hyperperiod; set Options.Horizon explicitly")
		}
		horizon = h
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, guard.Invalidf("exact: horizon must be positive and finite, got %g", horizon)
	}

	var key uint64
	var verify string
	memoOK := false
	if opts.Memo != nil {
		key, verify = sagMemoKey(ts, horizon)
		memoOK = true
		if v, ok := opts.Memo.Get(key, verify); ok {
			if r, ok := v.(*SAGResult); ok {
				sc.Counter("exact.memo.hits").Inc()
				out := *r
				out.Cached = true
				return &out, nil
			}
		}
	}

	ex := &sagExplorer{}
	if err := ex.buildJobs(ts, horizon); err != nil {
		return nil, err
	}
	res, err := ex.explore(g, opts)
	if err != nil {
		return nil, err
	}
	res.Schedulable = true
	for i := range ts {
		if res.WCRT[i] > ts[i].Deadline()+1e-9 {
			res.Schedulable = false
		}
	}
	sc.Counter("exact.states").Add(int64(res.States))
	sc.Counter("exact.merges").Add(int64(res.Merges))
	sc.Counter("exact.prunes").Add(int64(res.Prunes))
	if memoOK {
		opts.Memo.Put(key, verify, res, int64(len(verify))+int64(16*len(ts))+96)
		sc.Counter("exact.memo.stores").Inc()
	}
	return res, nil
}

// sagMemoKey content-addresses a schedule-graph result: every task field
// that shapes the window's jobs, plus the horizon.
func sagMemoKey(ts task.Set, horizon float64) (uint64, string) {
	b := make([]byte, 0, 8+len(ts)*48)
	b = appendBits(b, uint64(len(ts)))
	for _, tk := range ts {
		b = appendBits(b, math.Float64bits(tk.C))
		b = appendBits(b, math.Float64bits(tk.Best()))
		b = appendBits(b, math.Float64bits(tk.T))
		b = appendBits(b, math.Float64bits(tk.Deadline()))
		b = appendBits(b, math.Float64bits(tk.Jitter))
	}
	b = appendBits(b, math.Float64bits(horizon))
	verify := "exact/sag:" + hex.EncodeToString(b)
	return fnv64a(verify), verify
}

// buildJobs lays out the window's jobs task-major.
func (ex *sagExplorer) buildJobs(ts task.Set, horizon float64) error {
	ex.jobs = ex.jobs[:0]
	for i, tk := range ts {
		n := int(math.Ceil(horizon/tk.T - 1e-9))
		if n < 1 {
			return guard.Invalidf("exact: horizon %g shorter than period of task %s", horizon, tk.Name)
		}
		if len(ex.jobs)+n > maxSAGJobs {
			return guard.Invalidf("exact: window has more than %d jobs", maxSAGJobs)
		}
		for k := 0; k < n; k++ {
			r := float64(k) * tk.T
			ex.jobs = append(ex.jobs, sagJob{
				task: i,
				rmin: r, rmax: r + tk.Jitter,
				emin: tk.Best(), emax: tk.C,
			})
		}
	}
	ex.words = (len(ex.jobs) + 63) / 64
	return nil
}

// explore is the layered BFS over dispatch decisions.
func (ex *sagExplorer) explore(g *guard.Ctx, opts Options) (*SAGResult, error) {
	n := len(ex.jobs)
	budget := opts.maxStates()
	res := &SAGResult{Jobs: n}

	ntasks := 0
	for _, j := range ex.jobs {
		if j.task+1 > ntasks {
			ntasks = j.task + 1
		}
	}
	ex.wcrt = resize(ex.wcrt, ntasks, math.Inf(-1))
	ex.bcrt = resize(ex.bcrt, ntasks, math.Inf(1))

	// Root: nothing dispatched, processor available at time zero.
	if cap(ex.curSlab) < ex.words {
		ex.curSlab = make([]uint64, ex.words)
	} else {
		ex.curSlab = ex.curSlab[:ex.words]
		for i := range ex.curSlab {
			ex.curSlab[i] = 0
		}
	}
	ex.cur = append(ex.cur[:0], sagState{off: 0, lo: 0, hi: 0})
	ex.nextSlab = ex.nextSlab[:0]

	for layer := 0; layer < n; layer++ {
		if len(ex.cur) == 0 {
			return nil, guard.Invalidf("exact: schedule graph stalled at layer %d (no eligible job)", layer)
		}
		if len(ex.cur) > res.PeakFrontier {
			res.PeakFrontier = len(ex.cur)
		}
		if budget > 0 && res.States+len(ex.cur) > budget {
			return nil, &StateSpaceError{States: res.States + len(ex.cur), Limit: budget}
		}
		expanded, err := ex.expandLayer(g, opts)
		if err != nil {
			return nil, err
		}
		res.States += expanded
		res.Depth++
		if !opts.Naive {
			ex.mergeLayer(res)
		}
		ex.cur, ex.next = ex.next, ex.cur[:0]
		ex.curSlab, ex.nextSlab = ex.nextSlab, ex.curSlab[:0]
	}
	res.WCRT = append([]float64(nil), ex.wcrt...)
	res.BCRT = append([]float64(nil), ex.bcrt...)
	return res, nil
}

// expandLayer expands ex.cur into ex.next/ex.nextSlab. Workers each own a
// private buffer over a contiguous frontier block; concatenating in block
// order reproduces the serial successor sequence, and per-task response
// extrema merge commutatively.
func (ex *sagExplorer) expandLayer(g *guard.Ctx, opts Options) (int, error) {
	ex.next = ex.next[:0]
	ex.nextSlab = ex.nextSlab[:0]
	workers := opts.Workers
	if workers > len(ex.cur) {
		workers = len(ex.cur)
	}
	if workers <= 1 {
		sh := sagShard{out: ex.next, slab: ex.nextSlab, wcrt: ex.wcrt, bcrt: ex.bcrt}
		if err := ex.expandShard(g, ex.cur, &sh); err != nil {
			return 0, err
		}
		ex.next, ex.nextSlab = sh.out, sh.slab
		return sh.expanded, nil
	}
	if cap(ex.shards) < workers {
		ex.shards = append(ex.shards[:cap(ex.shards)], make([]sagShard, workers-cap(ex.shards))...)
	}
	shards := ex.shards[:workers]
	var wg sync.WaitGroup
	per := (len(ex.cur) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(ex.cur) {
			hi = len(ex.cur)
		}
		sh := &shards[w]
		sh.out, sh.slab = sh.out[:0], sh.slab[:0]
		sh.expanded = 0
		sh.wcrt = resize(sh.wcrt, len(ex.wcrt), math.Inf(-1))
		sh.bcrt = resize(sh.bcrt, len(ex.bcrt), math.Inf(1))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(block []sagState, sh *sagShard) {
			defer wg.Done()
			// Work on a stack-local copy: appending through the shared
			// shard array would false-share slice headers between workers.
			local := *sh
			// Guard aborts re-surface from the post-join Err check.
			_ = ex.expandShard(g, block, &local)
			*sh = local
		}(ex.cur[lo:hi], sh)
	}
	wg.Wait()
	if err := g.Err(); err != nil {
		return 0, err
	}
	expanded := 0
	for w := range shards {
		sh := &shards[w]
		base := len(ex.nextSlab)
		ex.nextSlab = append(ex.nextSlab, sh.slab...)
		for _, s := range sh.out {
			s.off += base
			ex.next = append(ex.next, s)
		}
		for i := range ex.wcrt {
			ex.wcrt[i] = math.Max(ex.wcrt[i], sh.wcrt[i])
			ex.bcrt[i] = math.Min(ex.bcrt[i], sh.bcrt[i])
		}
		expanded += sh.expanded
	}
	return expanded, nil
}

// expandShard applies every eligible dispatch of every state in block.
//
// Eligibility follows the schedule-abstraction-graph construction: from a
// state with availability [lo, hi], job j (whose same-task predecessor is
// dispatched) can start at EST = max(lo, rmin_j); the latest instant any
// next dispatch can happen is t_wc = max(hi, min over pending rmax) (the
// processor is certainly free and some job certainly released); and j in
// particular cannot start once a higher-priority job is certainly released
// (t_high, the min rmax over pending higher-priority jobs). j is eligible
// iff EST <= min(t_wc, t_high) with the t_high bound strict, and then
// starts anywhere in [EST, LST], finishing in [EST+emin, LST+emax].
func (ex *sagExplorer) expandShard(g *guard.Ctx, block []sagState, sh *sagShard) error {
	for _, s := range block {
		if err := g.Tick(); err != nil {
			return err
		}
		sh.expanded++
		mask := ex.curSlab[s.off : s.off+ex.words]

		// min rmax over all pending jobs. Same-task successors never beat
		// their predecessor (releases are ordered within a task), so this
		// equals the min over immediately dispatchable jobs.
		minRmax := math.Inf(1)
		for j, job := range ex.jobs {
			if mask[j>>6]&(1<<(uint(j)&63)) == 0 && job.rmax < minRmax {
				minRmax = job.rmax
			}
		}
		twc := math.Max(s.hi, minRmax)

		// Jobs are priority-ordered, so one pass maintains the running min
		// rmax over higher-priority pending jobs.
		thigh := math.Inf(1)
		prevTask, prevPending := -1, false
		for j, job := range ex.jobs {
			pending := mask[j>>6]&(1<<(uint(j)&63)) == 0
			if !pending {
				if job.task != prevTask {
					prevTask, prevPending = job.task, false
				}
				continue
			}
			dispatchable := !(job.task == prevTask && prevPending)
			if job.task != prevTask {
				prevTask, prevPending = job.task, true
			} else {
				prevPending = true
			}
			if dispatchable {
				est := math.Max(s.lo, job.rmin)
				lst := math.Min(twc, thigh)
				if est <= lst && est < thigh {
					ex.dispatch(sh, mask, j, est, lst)
				}
			}
			if job.rmax < thigh {
				thigh = job.rmax
			}
		}
	}
	return nil
}

// dispatch emits the successor of starting job j in [est, lst].
func (ex *sagExplorer) dispatch(sh *sagShard, mask []uint64, j int, est, lst float64) {
	job := ex.jobs[j]
	off := len(sh.slab)
	sh.slab = append(sh.slab, mask...)
	sh.slab[off+(j>>6)] |= 1 << (uint(j) & 63)
	sh.out = append(sh.out, sagState{off: off, lo: est + job.emin, hi: lst + job.emax})
	if w := lst + job.emax - job.rmin; w > sh.wcrt[job.task] {
		sh.wcrt[job.task] = w
	}
	if b := math.Max(job.emin, est+job.emin-job.rmax); b < sh.bcrt[job.task] {
		sh.bcrt[job.task] = b
	}
}

// mergeLayer canonicalises ex.next: sort by (job set, lo asc, hi desc),
// then union same-set states whose intervals overlap or touch — the
// exactness-preserving merge rule — counting contained intervals as prunes
// and extensions as merges.
func (ex *sagExplorer) mergeLayer(res *SAGResult) {
	slices.SortFunc(ex.next, func(a, b sagState) int {
		am := ex.nextSlab[a.off : a.off+ex.words]
		bm := ex.nextSlab[b.off : b.off+ex.words]
		for w := 0; w < ex.words; w++ {
			if am[w] != bm[w] {
				if am[w] < bm[w] {
					return -1
				}
				return 1
			}
		}
		switch {
		case a.lo != b.lo:
			if a.lo < b.lo {
				return -1
			}
			return 1
		case a.hi != b.hi:
			if a.hi > b.hi {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
	out := ex.next[:0]
	for _, s := range ex.next {
		if len(out) > 0 {
			p := &out[len(out)-1]
			if sameMask(ex.nextSlab, p.off, s.off, ex.words) && s.lo <= p.hi {
				if s.hi <= p.hi {
					res.Prunes++
				} else {
					p.hi = s.hi
					res.Merges++
				}
				continue
			}
		}
		out = append(out, s)
	}
	ex.next = out
}

// sameMask compares two bitmask windows of one slab.
func sameMask(slab []uint64, a, b, words int) bool {
	for w := 0; w < words; w++ {
		if slab[a+w] != slab[b+w] {
			return false
		}
	}
	return true
}

// resize returns s with exactly n entries, all reset to v.
func resize(s []float64, n int, v float64) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

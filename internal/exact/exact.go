// Package exact implements bounded exact schedule-graph explorations for
// floating-NPR analysis, the third bound alongside Algorithm 1 and the
// Equation 4 state of the art: a breadth-first enumeration of schedule
// states engineered so the combinatorial frontier stays tractable.
//
// Two engines share the machinery:
//
//   - Delay explores preemption-strike scenarios of a single job under one
//     (f, Q) pair and returns the exact worst-case cumulative preemption
//     delay — the quantity Algorithm 1 upper-bounds. States are
//     (next-admissible-strike progression, delay paid so far) pairs; the
//     attainable future delay is a nonincreasing function of the
//     progression alone, which licenses the dominance pruning and
//     same-progression merging that collapse the naive exponential tree to
//     a pareto frontier per layer (see DESIGN.md §16 for the proof).
//
//   - ResponseTimes explores the schedule graph of a non-preemptive
//     periodic job set over one hyperperiod, per Vlk/Jaroš/Hanzálek's
//     revisiting of Nasri-style schedule-abstraction graphs: states are
//     (dispatched-job set, processor-availability interval) pairs, states
//     with equal job sets and overlapping intervals merge exactly, and the
//     per-task best/worst response times fall out of the dispatch
//     intervals.
//
// Both engines run under guard step budgets with a typed state-space
// failure (StateSpaceError, an ErrBudgetExceeded), reuse buffers across
// runs through an Explorer (zero steady-state allocations), memoize whole
// results content-addressed in an internal/memo cache (verify-on-use
// canonical fingerprints), and expand frontiers in parallel over
// deterministic contiguous shards so results are bit-identical for every
// Workers value.
//
// Metrics (catalogued in DESIGN.md §16): counters exact.runs, exact.states,
// exact.merges, exact.prunes, exact.memo.hits, exact.memo.stores,
// exact.degraded (incremented by package sched on budget degradation).
package exact

import (
	"encoding/hex"
	"fmt"
	"math"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
)

// DefaultMaxStates bounds an exploration whose Options did not say: far
// above what the merged frontiers of realistic instances need, far below
// what a naive enumeration can burn.
const DefaultMaxStates = 1 << 20

// Options configures an exploration (both engines).
type Options struct {
	// MaxStates caps the number of expanded states; the exploration fails
	// with a *StateSpaceError beyond it. Zero selects DefaultMaxStates;
	// negative means unbounded.
	MaxStates int

	// Workers shards frontier expansion over this many goroutines;
	// <= 1 runs serially. Shards are contiguous frontier blocks and the
	// merged successor layer is canonically re-sorted, so results are
	// bit-identical for every value.
	Workers int

	// Naive disables state merging, dominance pruning and the visited
	// frontier — the brute-force enumeration the benchmarks compare
	// against. Results are identical where the budget allows completion.
	Naive bool

	// Horizon is the analysis window of ResponseTimes; zero selects one
	// hyperperiod. Ignored by Delay.
	Horizon float64

	// Memo, when non-nil, content-addresses whole results so repeated
	// explorations of the same instance cost one lookup (verify-on-use,
	// counted by exact.memo.hits / exact.memo.stores).
	Memo *memo.Cache

	// Obs receives the exact.* counters; nil collects nothing.
	Obs *obs.Scope
}

// maxStates resolves the effective state budget.
func (o Options) maxStates() int {
	switch {
	case o.MaxStates == 0:
		return DefaultMaxStates
	case o.MaxStates < 0:
		return math.MaxInt
	default:
		return o.MaxStates
	}
}

// StateSpaceError reports that an exploration hit its state budget before
// draining the frontier. It unwraps to guard.ErrBudgetExceeded, so existing
// exit-code and HTTP mappings treat it as a budget failure; callers that
// can degrade (sched.Analyze falls back to Algorithm 1) detect it with
// errors.As.
type StateSpaceError struct {
	States int // states expanded before giving up
	Limit  int // the budget that tripped
}

// Error implements error.
func (e *StateSpaceError) Error() string {
	return fmt.Sprintf("exact: state space exceeded %d states (budget %d): %v",
		e.States, e.Limit, guard.ErrBudgetExceeded)
}

// Unwrap makes errors.Is(err, guard.ErrBudgetExceeded) true.
func (e *StateSpaceError) Unwrap() error { return guard.ErrBudgetExceeded }

// completionTol mirrors the completion tolerance of package core's exact
// oracle (same formula, so the two engines agree on which strikes are
// execution-time-drift artifacts near the end of the job).
func completionTol(c, e float64) float64 {
	return 1e-9 * (1 + math.Abs(c) + math.Abs(e))
}

// fnv64a is the 64-bit FNV-1a fold used for memo primary keys, matching the
// cache convention of internal/core.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// appendBits appends a big-endian uint64 to the identity bytes.
func appendBits(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// delayMemoKey builds the content address of a Delay result: the canonical
// curve fingerprint, the Q bits and an engine tag. Options that only trade
// wall-clock for cores (Workers) or change nothing but the search order
// (Naive — results are identical when it completes) are excluded.
func delayMemoKey(f delay.Function, q float64) (key uint64, verify string, ok bool) {
	fp, err := delay.FingerprintOf(f)
	if err != nil {
		return 0, "", false
	}
	b := make([]byte, 0, delay.FingerprintSize+16)
	b = append(b, fp[:]...)
	b = appendBits(b, math.Float64bits(q))
	verify = "exact/delay:" + hex.EncodeToString(b)
	return fnv64a(verify), verify, true
}

// AsPiecewise lowers a delay function to the piecewise-constant form the
// exact engines branch on: *Piecewise directly, *Indexed via its backing
// curve. The second return is false for other implementations — notably
// *PiecewiseLinear, whose charge varies within a segment, so the
// strike-at-piece-start normalisation the exact search branches on does not
// apply; callers degrade to Algorithm 1, which needs only the Function
// interface.
func AsPiecewise(f delay.Function) (*delay.Piecewise, bool) {
	switch f := f.(type) {
	case *delay.Piecewise:
		return f, true
	case *delay.Indexed:
		return f.Piecewise(), true
	default:
		return nil, false
	}
}

package exact

import (
	"errors"
	"math"
	"testing"

	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/sim"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

// twoTaskSet is a hand-checkable NP schedule: A runs [0,2], B blocks A's
// second job until 6, so WCRT(A)=3 via the blocking anomaly and WCRT(B)=6.
func twoTaskSet() task.Set {
	return task.Set{
		{Name: "A", C: 2, T: 5, D: 5, Prio: 0},
		{Name: "B", C: 4, T: 10, D: 10, Prio: 1},
	}
}

func TestSAGHandChecked(t *testing.T) {
	res, err := ResponseTimes(nil, twoTaskSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 3 {
		t.Fatalf("hyperperiod window must hold 3 jobs, got %d", res.Jobs)
	}
	if res.WCRT[0] != 3 || res.WCRT[1] != 6 {
		t.Fatalf("WCRT = %v, want [3 6]", res.WCRT)
	}
	if res.BCRT[0] != 2 || res.BCRT[1] != 6 {
		t.Fatalf("BCRT = %v, want [2 6]", res.BCRT)
	}
	if !res.Schedulable {
		t.Fatal("set is schedulable")
	}
	if res.Depth != res.Jobs {
		t.Fatalf("full exploration dispatches every job: depth %d, jobs %d", res.Depth, res.Jobs)
	}
}

// TestSAGJitterIntervals exercises interval states: with release jitter the
// WCRT must not shrink, and the exploration still merges states exactly.
func TestSAGJitterIntervals(t *testing.T) {
	base, err := ResponseTimes(nil, twoTaskSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	js := twoTaskSet()
	js[1].Jitter = 1
	jit, err := ResponseTimes(nil, js, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.WCRT {
		if jit.WCRT[i] < base.WCRT[i]-1e-12 {
			t.Fatalf("task %d: jitter reduced WCRT %g -> %g", i, base.WCRT[i], jit.WCRT[i])
		}
	}
}

// TestSAGNaiveMatchesMerged asserts the interval-merged exploration returns
// the same response times as the brute-force enumeration, bit-identically,
// while expanding no more states.
func TestSAGNaiveMatchesMerged(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		ts := randomNPSet(t, 21, trial)
		merged, err := ResponseTimes(nil, ts, Options{})
		if err != nil {
			t.Fatalf("trial %d merged: %v", trial, err)
		}
		naive, err := ResponseTimes(nil, ts, Options{Naive: true, MaxStates: -1})
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		for i := range merged.WCRT {
			if merged.WCRT[i] != naive.WCRT[i] || merged.BCRT[i] != naive.BCRT[i] {
				t.Fatalf("trial %d task %d: merged (%g,%g) != naive (%g,%g)",
					trial, i, merged.WCRT[i], merged.BCRT[i], naive.WCRT[i], naive.BCRT[i])
			}
		}
		if merged.States > naive.States {
			t.Fatalf("trial %d: merged expanded more states (%d) than naive (%d)", trial, merged.States, naive.States)
		}
	}
}

// TestSAGParallelDeterminism asserts bit-identical results for every worker
// count.
func TestSAGParallelDeterminism(t *testing.T) {
	ts := randomNPSet(t, 33, 4)
	ts[0].Jitter = 0.5
	serial, err := ResponseTimes(nil, ts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		par, err := ResponseTimes(nil, ts, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.States != serial.States || par.Merges != serial.Merges ||
			par.Prunes != serial.Prunes || par.PeakFrontier != serial.PeakFrontier {
			t.Fatalf("workers=%d: counters diverged: %+v vs %+v", workers, par, serial)
		}
		for i := range serial.WCRT {
			if par.WCRT[i] != serial.WCRT[i] || par.BCRT[i] != serial.BCRT[i] {
				t.Fatalf("workers=%d task %d: (%g,%g) != (%g,%g)",
					workers, i, par.WCRT[i], par.BCRT[i], serial.WCRT[i], serial.BCRT[i])
			}
		}
	}
}

// TestSAGSimCrossCheck: a concrete synchronous zero-jitter full-WCET
// schedule is one scenario of the graph, so the simulator's observed
// response times never exceed the SAG worst case.
func TestSAGSimCrossCheck(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		ts := randomNPSet(t, 77, trial)
		res, err := ResponseTimes(nil, ts, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		h, _ := ts.Hyperperiod()
		simRes, err := sim.RunCtx(nil, sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: sim.NonPreemptive,
			Horizon: h,
		})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}
		for i, st := range simRes.Tasks {
			if st.Finished > 0 && st.MaxResponse > res.WCRT[i]+1e-9 {
				t.Fatalf("trial %d task %d: simulated response %g exceeds exact WCRT %g",
					trial, i, st.MaxResponse, res.WCRT[i])
			}
		}
	}
}

// TestSAGBudget asserts the typed state-space failure.
func TestSAGBudget(t *testing.T) {
	ts := randomNPSet(t, 9, 0)
	ts[0].Jitter = 1
	_, err := ResponseTimes(nil, ts, Options{MaxStates: 2, Naive: true})
	var sse *StateSpaceError
	if !errors.As(err, &sse) {
		t.Fatalf("want *StateSpaceError, got %v", err)
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("must unwrap to ErrBudgetExceeded: %v", err)
	}
}

// TestSAGMemo asserts whole-result memoization keyed on the task set and
// horizon.
func TestSAGMemo(t *testing.T) {
	cache := memo.New(memo.Options{MaxEntries: 64})
	ts := twoTaskSet()
	opts := Options{Memo: cache}
	first, err := ResponseTimes(nil, ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first run must be cold")
	}
	second, err := ResponseTimes(nil, ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second run must hit the memo")
	}
	if second.WCRT[0] != first.WCRT[0] || second.WCRT[1] != first.WCRT[1] {
		t.Fatalf("cached result diverged: %v vs %v", second.WCRT, first.WCRT)
	}
	// A changed WCET must miss (content addressing).
	ts2 := twoTaskSet()
	ts2[1].C = 3
	third, err := ResponseTimes(nil, ts2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different set must not hit")
	}
}

// TestSAGValidation covers the input guards.
func TestSAGValidation(t *testing.T) {
	if _, err := ResponseTimes(nil, task.Set{}, Options{}); err == nil {
		t.Fatal("empty set must fail")
	}
	ts := twoTaskSet()
	if _, err := ResponseTimes(nil, ts, Options{Horizon: math.Inf(1)}); err == nil {
		t.Fatal("infinite horizon must fail")
	}
	if res, err := ResponseTimes(nil, ts, Options{Horizon: 3}); err != nil || res.Jobs != 2 {
		t.Fatalf("sub-period horizon releases one job per task: %v %+v", err, res)
	}
	odd := task.Set{{Name: "x", C: 1, T: math.Pi * 10, D: math.Pi * 10}}
	if _, err := ResponseTimes(nil, odd, Options{}); err == nil {
		t.Fatal("irrational hyperperiod without explicit horizon must fail")
	}
	if res, err := ResponseTimes(nil, odd, Options{Horizon: math.Pi * 10}); err != nil || res.Jobs != 1 {
		t.Fatalf("explicit horizon must work: %v %+v", err, res)
	}
}

// TestSAGUnschedulable covers the deadline verdict.
func TestSAGUnschedulable(t *testing.T) {
	ts := task.Set{
		{Name: "A", C: 3, T: 5, D: 5, Prio: 0},
		{Name: "B", C: 4, T: 10, D: 6, Prio: 1},
	}
	res, err := ResponseTimes(nil, ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatalf("B's WCRT %g cannot meet D=6", res.WCRT[1])
	}
}

// randomNPSet builds a small priority-ordered task set with integral
// periods (so the hyperperiod exists) and modest utilization.
func randomNPSet(t *testing.T, seed int64, trial int) task.Set {
	t.Helper()
	r := synth.SubRand(seed, 0, trial)
	periods := []float64{4, 5, 8, 10, 16, 20}
	n := 2 + r.Intn(3)
	ts := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		T := periods[r.Intn(len(periods))]
		c := 0.25 + r.Float64()*(T*0.2)
		ts = append(ts, task.Task{
			Name: string(rune('a' + i)), C: c, T: T, D: T, Prio: i,
		})
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return ts
}

package exact

import (
	"math"
	"slices"
	"sync"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// DelayResult carries the outcome of one exact-delay exploration.
type DelayResult struct {
	// Delay is the exact worst-case cumulative preemption delay of one job
	// under FNPR semantics; +Inf when max f >= Q (the adversary can stall
	// progression forever).
	Delay float64
	// States is the number of states expanded.
	States int
	// Merges counts successor states absorbed by an equal-progression
	// state (same e, lower-or-equal paid delay).
	Merges int
	// Prunes counts successor states dominated by a visited state with
	// earlier-or-equal progression and higher-or-equal paid delay.
	Prunes int
	// Depth is the number of BFS layers (preemptions along the deepest
	// explored scenario).
	Depth int
	// PeakFrontier is the widest per-layer frontier after merging.
	PeakFrontier int
	// Cached reports a whole-result memo hit; the counters above are the
	// original run's.
	Cached bool
}

// dstate is one exploration state: e is the progression at the earliest
// admissible next preemption strike, d the cumulative delay paid so far.
type dstate struct{ e, d float64 }

// Explorer runs exact-delay explorations with reusable state slabs: the
// frontier, successor and visited-frontier buffers survive across calls, so
// steady-state explorations of same-sized instances allocate nothing (the
// sim.Runner discipline). Not safe for concurrent use; Delay itself shards
// work over Options.Workers goroutines internally.
type Explorer struct {
	cur, next []dstate
	front     []dstate // visited pareto frontier: e ascending, d ascending
	starts    []float64
	lastF     *delay.Piecewise // breakpoints cache key for starts
	shards    []shardResult
}

// shardResult is one worker's contribution to a layer expansion.
type shardResult struct {
	out      []dstate
	best     float64
	expanded int
}

// NewExplorer returns an Explorer with empty slabs; they grow to the
// largest instance explored and are reused from then on.
func NewExplorer() *Explorer { return &Explorer{} }

// Delay computes the exact worst-case cumulative FNPR preemption delay for
// delay function f with non-preemptive region length q, by layered
// breadth-first exploration of normalised preemption-strike scenarios with
// state merging and dominance pruning (exactness argument in DESIGN.md
// §16). It is the convenience wrapper over a fresh Explorer.
func Delay(g *guard.Ctx, f *delay.Piecewise, q float64, opts Options) (DelayResult, error) {
	return NewExplorer().Delay(g, f, q, opts)
}

// Delay runs one exploration on the Explorer's slabs; see the package-level
// Delay.
func (ex *Explorer) Delay(g *guard.Ctx, f *delay.Piecewise, q float64, opts Options) (DelayResult, error) {
	if f == nil {
		return DelayResult{}, guard.Invalidf("exact: nil delay function")
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return DelayResult{}, guard.Invalidf("exact: Q must be positive and finite, got %g", q)
	}
	if err := g.Err(); err != nil {
		return DelayResult{}, err
	}
	sc := opts.Obs
	sc.Counter("exact.runs").Inc()

	var key uint64
	var verify string
	memoOK := false
	if opts.Memo != nil {
		key, verify, memoOK = delayMemoKey(f, q)
		if memoOK {
			if v, ok := opts.Memo.Get(key, verify); ok {
				if r, ok := v.(DelayResult); ok {
					sc.Counter("exact.memo.hits").Inc()
					r.Cached = true
					return r, nil
				}
			}
		}
	}

	c := f.Domain()
	_, maxF := f.Max()
	res := DelayResult{}
	if maxF >= q {
		res.Delay = math.Inf(1)
	} else {
		var err error
		res, err = ex.explore(g, f, q, c, opts)
		if err != nil {
			return DelayResult{}, err
		}
	}
	sc.Counter("exact.states").Add(int64(res.States))
	sc.Counter("exact.merges").Add(int64(res.Merges))
	sc.Counter("exact.prunes").Add(int64(res.Prunes))
	if memoOK {
		opts.Memo.Put(key, verify, res, int64(len(verify))+64)
		sc.Counter("exact.memo.stores").Inc()
	}
	return res, nil
}

// explore is the layered BFS. The scenario normalisation (every preemption
// strikes either as early as the spacing constraint allows or at the first
// instant its progression enters a later piece) is the one the naive oracle
// core.ExactWorstCase branches on; the engines agree to within float
// summation order.
func (ex *Explorer) explore(g *guard.Ctx, f *delay.Piecewise, q, c float64, opts Options) (DelayResult, error) {
	if ex.lastF != f {
		ex.starts = append(ex.starts[:0], f.Breakpoints()...)
		ex.lastF = f
	}
	budget := opts.maxStates()
	res := DelayResult{}
	best := 0.0

	ex.cur = append(ex.cur[:0], dstate{e: q, d: 0})
	ex.front = ex.front[:0]
	if !opts.Naive {
		ex.front = append(ex.front, dstate{e: q, d: 0})
	}

	for len(ex.cur) > 0 {
		res.Depth++
		if len(ex.cur) > res.PeakFrontier {
			res.PeakFrontier = len(ex.cur)
		}
		if budget > 0 && res.States+len(ex.cur) > budget {
			return DelayResult{}, &StateSpaceError{States: res.States + len(ex.cur), Limit: budget}
		}
		layerBest, expanded, err := ex.expandLayer(g, f, q, c, opts)
		if err != nil {
			return DelayResult{}, err
		}
		res.States += expanded
		if layerBest > best {
			best = layerBest
		}
		if opts.Naive {
			ex.cur, ex.next = ex.next, ex.cur
			continue
		}
		// Canonicalise the merged successor layer: sort by (e asc, d desc)
		// so one ascending sweep keeps exactly the pareto-undominated
		// states, independent of the worker sharding that produced them.
		slices.SortFunc(ex.next, func(a, b dstate) int {
			switch {
			case a.e != b.e:
				if a.e < b.e {
					return -1
				}
				return 1
			case a.d != b.d:
				if a.d > b.d {
					return -1
				}
				return 1
			default:
				return 0
			}
		})
		kept := ex.cur[:0] // reuse the consumed layer's slab
		maxD := math.Inf(-1)
		lastKeptE := math.Inf(-1)
		for _, s := range ex.next {
			if s.d <= maxD {
				// Dominated within the layer by an earlier-or-equal e
				// with at-least-equal d.
				if s.e == lastKeptE {
					res.Merges++
				} else {
					res.Prunes++
				}
				continue
			}
			if ex.frontDominates(s) {
				res.Prunes++
				continue
			}
			kept = append(kept, s)
			maxD = s.d
			lastKeptE = s.e
			ex.frontInsert(s)
		}
		// kept lives on the consumed layer's slab; ex.next keeps its own
		// slab and is reset by the next expandLayer, so the two frontiers
		// never alias.
		ex.cur = kept
	}
	res.Delay = best
	return res, nil
}

// expandLayer expands every state of ex.cur into ex.next (reset first) and
// returns the best paid delay seen plus the number of states expanded.
// With opts.Workers > 1 the frontier is split into contiguous shards, each
// expanded into a worker-private buffer, and the buffers are concatenated
// in shard order — the successor sequence is byte-identical to a serial
// expansion.
func (ex *Explorer) expandLayer(g *guard.Ctx, f *delay.Piecewise, q, c float64, opts Options) (best float64, expanded int, err error) {
	ex.next = ex.next[:0]
	workers := opts.Workers
	if workers > len(ex.cur) {
		workers = len(ex.cur)
	}
	if workers <= 1 {
		sh := shardResult{out: ex.next}
		if err := expandShard(g, f, q, c, ex.cur, ex.starts, &sh); err != nil {
			return 0, 0, err
		}
		ex.next = sh.out
		return sh.best, sh.expanded, nil
	}
	if cap(ex.shards) < workers {
		ex.shards = append(ex.shards[:cap(ex.shards)], make([]shardResult, workers-cap(ex.shards))...)
	}
	shards := ex.shards[:workers]
	var wg sync.WaitGroup
	per := (len(ex.cur) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ex.cur) {
			hi = len(ex.cur)
		}
		sh := &shards[w]
		sh.out = sh.out[:0]
		sh.best, sh.expanded = 0, 0
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(block []dstate, sh *shardResult) {
			defer wg.Done()
			// Work on a stack-local copy: appending through the shared
			// shard array would false-share slice headers between workers
			// (every append rewrites a header on a cache line the
			// neighbouring worker is also writing).
			local := *sh
			// Expansion errors are guard aborts; they re-surface from the
			// post-join g.Err() check, so the shard just stops early.
			_ = expandShard(g, f, q, c, block, ex.starts, &local)
			*sh = local
		}(ex.cur[lo:hi], sh)
	}
	wg.Wait()
	if err := g.Err(); err != nil {
		return 0, 0, err
	}
	for w := range shards {
		ex.next = append(ex.next, shards[w].out...)
		if shards[w].best > best {
			best = shards[w].best
		}
		expanded += shards[w].expanded
	}
	return best, expanded, nil
}

// expandShard expands one contiguous frontier block. Successors are emitted
// in (state, candidate) order, so concatenating shard outputs in shard
// order reproduces the serial successor sequence exactly.
func expandShard(g *guard.Ctx, f *delay.Piecewise, q, c float64, block []dstate, starts []float64, sh *shardResult) error {
	for _, s := range block {
		if err := g.Tick(); err != nil {
			return err
		}
		sh.expanded++
		emit(f, q, c, s, s.e, sh)
		for _, st := range starts {
			if st > s.e && st < c {
				emit(f, q, c, s, st, sh)
			}
		}
	}
	return nil
}

// emit charges a strike at progression prog from state s and appends the
// successor, unless the job completes before the strike.
func emit(f *delay.Piecewise, q, c float64, s dstate, prog float64, sh *shardResult) {
	if prog >= c-completionTol(c, prog+s.d) {
		return // job finishes before this strike lands
	}
	d := f.Eval(prog)
	paid := s.d + d
	if paid > sh.best {
		sh.best = paid
	}
	sh.out = append(sh.out, dstate{e: prog + q - d, d: paid})
}

// frontDominates reports whether a visited state with e' <= s.e carries
// d' >= s.d. The frontier is kept sorted by e with d strictly increasing
// (the running maximum of paid delay over all visited states up to each e),
// so one binary search answers the query.
func (ex *Explorer) frontDominates(s dstate) bool {
	// Largest index with front[i].e <= s.e.
	i, _ := slices.BinarySearchFunc(ex.front, s.e, func(st dstate, e float64) int {
		if st.e <= e {
			return -1
		}
		return 1
	})
	// i is the first index with front[i].e > s.e.
	return i > 0 && ex.front[i-1].d >= s.d
}

// frontInsert records a kept state in the visited frontier, preserving the
// e-ascending / d-strictly-increasing invariant: entries at or after the
// insertion point with d <= s.d are absorbed (their running maximum is now
// s.d).
func (ex *Explorer) frontInsert(s dstate) {
	i, _ := slices.BinarySearchFunc(ex.front, s.e, func(st dstate, e float64) int {
		if st.e <= e {
			return -1
		}
		return 1
	})
	// frontDominates ran first, so front[i-1].d < s.d here. Drop the run of
	// entries starting at i whose d <= s.d, then splice s in.
	j := i
	for j < len(ex.front) && ex.front[j].d <= s.d {
		j++
	}
	if j == i {
		ex.front = slices.Insert(ex.front, i, s)
		return
	}
	ex.front[i] = s
	ex.front = append(ex.front[:i+1], ex.front[j:]...)
}

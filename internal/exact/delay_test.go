package exact

import (
	"context"
	"errors"
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/memo"
	"fnpr/internal/synth"
)

// TestDelayDifferential cross-checks the pruned engine against the naive
// recursive oracle of internal/core on random piecewise-constant functions.
// The two agree up to float summation order (the oracle right-associates
// path sums, the engine accumulates left-to-right), hence the tolerance.
func TestDelayDifferential(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		r := synth.SubRand(42, 0, trial)
		c := 10 + r.Float64()*40
		q := 2 + r.Float64()*10
		maxV := q * (0.2 + r.Float64()*0.7) // keep max f < Q: finite delay
		f := synth.DelayFunction(r, c, maxV, 2+r.Intn(6))

		want := oracle(t, f, q)
		got, err := Delay(nil, f, q, Options{})
		if err != nil {
			t.Fatalf("trial %d: Delay: %v", trial, err)
		}
		tol := 1e-9 * (1 + math.Abs(want))
		if math.Abs(got.Delay-want) > tol {
			t.Fatalf("trial %d: exact=%g oracle=%g (c=%g q=%g)", trial, got.Delay, want, c, q)
		}
	}
}

// oracle is the naive branch-and-bound reference, reimplemented locally so
// the package does not import internal/core (which the differential would
// otherwise make cyclic once core grows an exact method).
func oracle(t *testing.T, f *delay.Piecewise, q float64) float64 {
	t.Helper()
	c := f.Domain()
	starts := f.Breakpoints()
	var search func(e, paid float64) float64
	search = func(e, paid float64) float64 {
		best := 0.0
		try := func(prog float64) {
			if prog >= c-completionTol(c, prog+paid) {
				return
			}
			d := f.Eval(prog)
			if v := d + search(prog+q-d, paid+d); v > best {
				best = v
			}
		}
		try(e)
		for _, s := range starts {
			if s > e && s < c {
				try(s)
			}
		}
		return best
	}
	return search(q, 0)
}

// TestDelayNaiveMatchesPruned asserts bit-identical results between the
// brute-force and the merged/pruned exploration: both accumulate paid delay
// left-to-right over the same emission order, so even the float result is
// byte-equal.
func TestDelayNaiveMatchesPruned(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		r := synth.SubRand(7, 1, trial)
		c := 20 + r.Float64()*30
		q := 3 + r.Float64()*6
		f := synth.DelayFunction(r, c, q*0.8, 2+r.Intn(5))

		pruned, err := Delay(nil, f, q, Options{})
		if err != nil {
			t.Fatalf("pruned: %v", err)
		}
		naive, err := Delay(nil, f, q, Options{Naive: true, MaxStates: -1})
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if pruned.Delay != naive.Delay {
			t.Fatalf("trial %d: pruned %v != naive %v", trial, pruned.Delay, naive.Delay)
		}
		if pruned.States > naive.States {
			t.Fatalf("trial %d: pruned expanded more states (%d) than naive (%d)", trial, pruned.States, naive.States)
		}
	}
}

// TestDelayParallelDeterminism asserts results are bit-identical for every
// worker count — the canonical re-sort makes sharding invisible.
func TestDelayParallelDeterminism(t *testing.T) {
	r := synth.SubRand(99, 2, 0)
	f := synth.DelayFunction(r, 120, 4.5, 9)
	serial, err := Delay(nil, f, 5, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		par, err := Delay(nil, f, 5, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par != serial {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, par, serial)
		}
	}
}

// TestDelayDivergent covers the max f >= Q unbounded case.
func TestDelayDivergent(t *testing.T) {
	f := delay.Constant(10, 100)
	res, err := Delay(nil, f, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Delay, 1) {
		t.Fatalf("want +Inf, got %v", res.Delay)
	}
}

// TestDelayBudget asserts the typed state-space failure and its unwrapping
// to the guard budget error.
func TestDelayBudget(t *testing.T) {
	r := synth.SubRand(5, 3, 0)
	f := synth.DelayFunction(r, 200, 1.8, 12)
	_, err := Delay(nil, f, 2, Options{MaxStates: 8, Naive: true})
	var sse *StateSpaceError
	if !errors.As(err, &sse) {
		t.Fatalf("want *StateSpaceError, got %v", err)
	}
	if sse.Limit != 8 || sse.States <= 8-1 {
		t.Fatalf("unexpected budget report: %+v", sse)
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("StateSpaceError must unwrap to guard.ErrBudgetExceeded: %v", err)
	}
}

// TestDelayGuard asserts guard cancellation propagates out of workers.
func TestDelayGuard(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := guard.New(ctx)
	r := synth.SubRand(5, 4, 0)
	f := synth.DelayFunction(r, 60, 3, 6)
	if _, err := Delay(g, f, 4, Options{Workers: 4}); !guard.Abortive(err) {
		t.Fatalf("want abortive error, got %v", err)
	}
}

// TestDelayMemo asserts whole-result memoization: second call hits, flags
// Cached, and returns the original counters.
func TestDelayMemo(t *testing.T) {
	cache := memo.New(memo.Options{MaxEntries: 64})
	r := synth.SubRand(11, 5, 0)
	f := synth.DelayFunction(r, 80, 3.5, 7)
	opts := Options{Memo: cache}
	first, err := Delay(nil, f, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first run must be cold")
	}
	second, err := Delay(nil, f, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second run must hit the memo")
	}
	second.Cached = false
	if second != first {
		t.Fatalf("cached result diverged: %+v vs %+v", second, first)
	}
}

// TestDelayValidation covers the input guards.
func TestDelayValidation(t *testing.T) {
	if _, err := Delay(nil, nil, 10, Options{}); err == nil {
		t.Fatal("nil function must fail")
	}
	f := delay.Constant(1, 10)
	for _, q := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Delay(nil, f, q, Options{}); err == nil {
			t.Fatalf("q=%v must fail", q)
		}
	}
}

// TestDelayZeroAlloc asserts the steady-state exploration on a reused
// Explorer allocates nothing (the sim.Runner discipline) once the slabs
// have grown to the instance size.
func TestDelayZeroAlloc(t *testing.T) {
	r := synth.SubRand(3, 6, 0)
	f := synth.DelayFunction(r, 60, 3, 8)
	ex := NewExplorer()
	if _, err := ex.Delay(nil, f, 4, Options{}); err != nil { // warm the slabs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ex.Delay(nil, f, 4, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady state allocates %v/op, want 0", allocs)
	}
}

// TestAsPiecewise covers the exact-capable lowering.
func TestAsPiecewise(t *testing.T) {
	p := delay.Constant(1, 10)
	if f, ok := AsPiecewise(p); !ok || f != p {
		t.Fatal("Piecewise must lower to itself")
	}
	ix := delay.NewIndexed(p)
	if f, ok := AsPiecewise(ix); !ok || f != ix.Piecewise() {
		t.Fatal("Indexed must lower to its backing curve")
	}
	pl, err := delay.NewPiecewiseLinear([]float64{0, 10}, []float64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AsPiecewise(pl); ok {
		t.Fatal("PiecewiseLinear must not be exact-capable")
	}
}

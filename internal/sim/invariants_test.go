package sim

import (
	"math/rand"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func TestCheckInvariantsOnCleanRuns(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 1, T: 6, Q: 1, Prio: 0},
		{Name: "m", C: 3, T: 17, Q: 2, Prio: 1},
		{Name: "lo", C: 15, T: 90, Q: 4, Prio: 2},
	}
	fns := []delay.Function{nil, delay.Constant(0.2, 3), delay.Constant(0.8, 15)}
	for _, policy := range []Policy{FixedPriority, EDF} {
		for _, mode := range []Mode{FullyPreemptive, FloatingNPR, NonPreemptive} {
			res, err := Run(Config{
				Tasks: ts, Policy: policy, Mode: mode,
				Horizon: 700, Delay: fns,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckInvariants(res); err != nil {
				t.Fatalf("%v/%v: %v", policy, mode, err)
			}
		}
	}
}

func TestCheckInvariantsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(3)
		ts := make(task.Set, 0, n)
		for i := 0; i < n; i++ {
			c := 2 + r.Float64()*20
			ts = append(ts, task.Task{
				Name: string(rune('a' + i)),
				C:    c, T: c*2 + r.Float64()*80,
				Q: 1 + r.Float64()*4, Prio: i,
			})
		}
		rel := SporadicReleases(r, Config{Tasks: ts, Horizon: 1500}, 0.5)
		res, err := Run(Config{
			Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR,
			Horizon: 1500, Releases: rel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInvariants(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	ts := task.Set{{Name: "a", C: 2, T: 10, Prio: 0}}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: duplicate a start event (double dispatch).
	for _, e := range res.Events {
		if e.Kind == EvStart {
			res.Events = append(res.Events, e)
			break
		}
	}
	if err := CheckInvariants(res); err == nil {
		t.Fatal("corrupted trace passed invariants")
	}
}

func TestSporadicReleasesShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ts := task.Set{{Name: "a", C: 1, T: 10, Prio: 0}}
	cfg := Config{Tasks: ts, Horizon: 200}
	rel := SporadicReleases(r, cfg, 0.3)
	if len(rel) != 1 || len(rel[0]) == 0 {
		t.Fatalf("releases shape wrong: %v", rel)
	}
	for i := 1; i < len(rel[0]); i++ {
		gap := rel[0][i] - rel[0][i-1]
		if gap < 10-1e-9 || gap > 13+1e-9 {
			t.Fatalf("gap %g outside [T, T*1.3]", gap)
		}
	}
	for _, tt := range rel[0] {
		if tt >= 200 {
			t.Fatalf("release %g beyond horizon", tt)
		}
	}
}

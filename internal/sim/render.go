package sim

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Timeline renders a coarse textual Gantt chart of the schedule: one row per
// task, one column per time slot of the given width. The symbol in each cell
// is '#' when a job of the task occupied the processor for the majority of
// the slot, '.' when it was pending, and ' ' otherwise. Intended for
// eyeballing simulator output in examples and the simulate binary.
func (r *Result) Timeline(slot float64) string {
	if slot <= 0 {
		slot = r.Config.Horizon / 80
	}
	n := int(math.Ceil(r.Config.Horizon / slot))
	if n <= 0 {
		return ""
	}
	rows := make([][]byte, len(r.Config.Tasks))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", n))
	}
	// Replay events to attribute occupancy: between consecutive events,
	// the running job (if any) fills its cells.
	type seg struct {
		from, to float64
		task     int
	}
	var segs []seg
	var curTask = -1
	var curFrom float64
	for _, e := range r.Events {
		switch e.Kind {
		case EvStart, EvResume:
			curTask = e.Task
			curFrom = e.Time
		case EvPreempt, EvFinish:
			if curTask == e.Task {
				segs = append(segs, seg{curFrom, e.Time, e.Task})
				curTask = -1
			}
		}
	}
	if curTask >= 0 {
		segs = append(segs, seg{curFrom, r.Config.Horizon, curTask})
	}
	for _, sg := range segs {
		lo := int(sg.from / slot)
		hi := int(math.Ceil(sg.to / slot))
		for c := lo; c < hi && c < n; c++ {
			// Majority occupancy of the slot.
			cellLo, cellHi := float64(c)*slot, float64(c+1)*slot
			overlap := math.Min(cellHi, sg.to) - math.Max(cellLo, sg.from)
			if overlap >= slot/2 || (sg.to-sg.from < slot && overlap > 0) {
				rows[sg.task][c] = '#'
			}
		}
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "%-10s |%s|\n", r.Config.Tasks[i].Name, string(row))
	}
	fmt.Fprintf(&b, "%-10s  0%*s%.0f\n", "time", n-1, "", r.Config.Horizon)
	return b.String()
}

// Summary renders per-task statistics.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %10s %10s %12s %12s\n",
		"task", "released", "finished", "missed", "preempts", "delay", "maxResp", "maxDelay/job")
	for i, st := range r.Tasks {
		fmt.Fprintf(&b, "%-10s %8d %8d %8d %10d %10.3f %12.3f %12.3f\n",
			r.Config.Tasks[i].Name, st.Released, st.Finished, st.Missed,
			st.Preemptions, st.DelayPaid, st.MaxResponse, st.MaxDelayPerJob)
	}
	fmt.Fprintf(&b, "idle: %.3f / %.3f (%.1f%%)\n", r.Idle, r.Config.Horizon, 100*r.Idle/r.Config.Horizon)
	return b.String()
}

// WriteEventsCSV emits the event trace as CSV (time, kind, task, job,
// progression, delay) for external analysis.
func (r *Result) WriteEventsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,kind,task,job,progression,delay"); err != nil {
		return err
	}
	for _, e := range r.Events {
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%d,%g,%g\n",
			e.Time, e.Kind, e.Task, e.Job, e.Progression, e.Delay); err != nil {
			return err
		}
	}
	return nil
}

package sim

import (
	"context"
	"errors"
	"testing"

	"fnpr/internal/guard"
	"fnpr/internal/task"
)

func guardedConfig() Config {
	return Config{
		Tasks: task.Set{
			{Name: "a", C: 1, T: 7, Q: 1, Prio: 0},
			{Name: "b", C: 4, T: 23, Q: 2, Prio: 1},
			{Name: "c", C: 9, T: 120, Q: 3, Prio: 2},
		},
		Policy:  FixedPriority,
		Mode:    FloatingNPR,
		Horizon: 50000,
	}
}

// TestRunCtxCancelMidRun cancels the context from the guard's own checkpoint
// callback — i.e. genuinely mid-event-loop, after at least one poll interval
// of simulation steps — and expects the run to stop with ErrCanceled instead
// of completing the horizon.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired int64
	g := guard.New(ctx).WithCheckpoint(func(steps int64) {
		if fired == 0 {
			fired = steps
		}
		cancel()
	})
	res, err := RunCtx(g, guardedConfig())
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("mid-run cancel: got %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled run still returned a result")
	}
	if fired == 0 {
		t.Fatal("checkpoint never fired: the event loop is not ticking the guard")
	}
}

// TestRunCtxBudget: a step budget far below the horizon's event count stops
// the simulation with ErrBudgetExceeded.
func TestRunCtxBudget(t *testing.T) {
	g := guard.New(context.Background()).WithBudget(100)
	_, err := RunCtx(g, guardedConfig())
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budget 100: got %v, want ErrBudgetExceeded", err)
	}
}

package sim

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/synth"
)

// randomConfig draws a random simulation config of the kind the Monte-Carlo
// campaign feeds a Runner: random task set, random mode/policy, front-loaded
// delay functions on all but the highest-priority task.
func randomConfig(t *testing.T, r *rand.Rand) Config {
	t.Helper()
	ts, err := synth.TaskSet(r, synth.TaskSetParams{
		N:           2 + r.Intn(4),
		Utilization: 0.3 + 0.5*r.Float64(),
		PeriodLo:    10,
		PeriodHi:    200,
		RoundPeriod: true,
		QFraction:   0.25,
		MinQ:        0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]delay.Function, len(ts))
	for i := 1; i < len(ts); i++ {
		peak := 0.1 * ts[i].C
		fn, err := delay.NewFrontLoaded(peak, peak/5, ts[i].C)
		if err != nil {
			t.Fatal(err)
		}
		fns[i] = fn
	}
	mode := []Mode{FullyPreemptive, FloatingNPR, NonPreemptive}[r.Intn(3)]
	policy := []Policy{FixedPriority, EDF}[r.Intn(2)]
	return Config{
		Tasks:      ts,
		Policy:     policy,
		Mode:       mode,
		Horizon:    200 + 300*r.Float64(),
		Delay:      fns,
		ExecTime:   0.5 + 0.5*r.Float64(),
		SwitchCost: 0.05 * r.Float64(),
	}
}

// equalResults compares two results field by field. reflect.DeepEqual is
// deliberately avoided: a reused Runner hands out empty-but-non-nil log
// slices where a fresh run produces nil ones, and that difference is not
// observable through the API.
func equalResults(t *testing.T, trial int, got, want *Result) {
	t.Helper()
	if len(got.Events) != len(want.Events) {
		t.Fatalf("trial %d: %d events, want %d", trial, len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("trial %d: event %d = %v, want %v", trial, i, got.Events[i], want.Events[i])
		}
	}
	if got.Idle != want.Idle {
		t.Fatalf("trial %d: idle %g, want %g", trial, got.Idle, want.Idle)
	}
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("trial %d: %d task stats, want %d", trial, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("trial %d: task %d stat = %+v, want %+v", trial, i, got.Tasks[i], want.Tasks[i])
		}
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("trial %d: %d jobs, want %d", trial, len(got.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		g, w := got.Jobs[i], want.Jobs[i]
		sameFinish := g.Finish == w.Finish ||
			(math.IsInf(g.Finish, 1) && math.IsInf(w.Finish, 1))
		if g.Task != w.Task || g.Job != w.Job || g.Release != w.Release ||
			g.Deadline != w.Deadline || !sameFinish ||
			g.Preemptions != w.Preemptions || g.DelayPaid != w.DelayPaid ||
			g.SwitchPaid != w.SwitchPaid || g.ExecDemand != w.ExecDemand ||
			g.Missed != w.Missed {
			t.Fatalf("trial %d: job %d = %+v, want %+v", trial, i, g, w)
		}
		if len(g.PreemptProgs) != len(w.PreemptProgs) || len(g.PreemptExecs) != len(w.PreemptExecs) {
			t.Fatalf("trial %d: job %d preemption logs differ in length", trial, i)
		}
		for k := range w.PreemptProgs {
			if g.PreemptProgs[k] != w.PreemptProgs[k] || g.PreemptExecs[k] != w.PreemptExecs[k] {
				t.Fatalf("trial %d: job %d preemption log %d differs", trial, i, k)
			}
		}
	}
}

// TestRunnerMatchesRun replays many random configs through one reused Runner
// and checks every trial is identical to a fresh package-level Run — the
// buffer reuse must never leak state from a previous trial.
func TestRunnerMatchesRun(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	runner := NewRunner()
	for trial := 0; trial < 60; trial++ {
		cfg := randomConfig(t, r)
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d: fresh run: %v", trial, err)
		}
		got, err := runner.Run(nil, cfg)
		if err != nil {
			t.Fatalf("trial %d: pooled run: %v", trial, err)
		}
		equalResults(t, trial, got, want)
	}
}

// TestRunnerRecoversFromError checks a Runner stays usable after a run fails
// validation or aborts.
func TestRunnerRecoversFromError(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	runner := NewRunner()
	good := randomConfig(t, r)
	if _, err := runner.Run(nil, Config{Tasks: good.Tasks, Horizon: -1}); err == nil {
		t.Fatal("accepted negative horizon")
	}
	want, err := Run(good)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Run(nil, good)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, 0, got, want)
}

// TestRunnerSteadyStateAllocs pins the pooling contract: once buffers hit
// the workload's high-water mark, repeat runs do not allocate.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	ts := twoTasks()
	fn, err := delay.NewFrontLoaded(0.5, 0.1, ts[1].C)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Tasks:   ts,
		Policy:  FixedPriority,
		Mode:    FloatingNPR,
		Horizon: 400,
		Delay:   []delay.Function{nil, fn},
	}
	runner := NewRunner()
	for i := 0; i < 3; i++ { // reach the high-water mark
		if _, err := runner.Run(nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := runner.Run(nil, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state Runner.Run allocates %.1f times per run, want 0", avg)
	}
}

package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// CheckInvariants verifies structural properties every correct schedule must
// satisfy; the test suite and the simulate binary run it on simulator
// output. Checked invariants:
//
//  1. Event times are non-decreasing.
//  2. At most one job occupies the processor at any time (start/resume and
//     preempt/finish events alternate correctly).
//  3. Under FloatingNPR, consecutive preemptions of one job are at least Q
//     apart on the job's execution-time clock, and the first preemption
//     happens no earlier than Q execution time.
//  4. Under NonPreemptive, there are no preemptions at all.
//  5. Jobs never start before their release.
//  6. Preemption delay paid per job is non-negative and finite.
//  7. The schedule is work-conserving: the processor never idles for a
//     measurable interval while a job is pending.
func CheckInvariants(r *Result) error {
	prev := math.Inf(-1)
	running := -1 // index into r.Jobs-style key space; -1 = idle
	pending := 0  // released but not finished
	key := func(task, job int) int { return task*1_000_000 + job }
	for i, e := range r.Events {
		if e.Time < prev-timeEps {
			return fmt.Errorf("sim: event %d time %g before previous %g", i, e.Time, prev)
		}
		// Work conservation: a measurable gap since the previous event
		// with an idle processor is only legal when nothing is pending.
		if running == -1 && pending > 0 && e.Time > prev+1e-6 {
			return fmt.Errorf("sim: processor idle in (%g, %g) with %d pending jobs", prev, e.Time, pending)
		}
		prev = e.Time
		switch e.Kind {
		case EvRelease:
			pending++
		case EvStart, EvResume:
			if running != -1 {
				return fmt.Errorf("sim: event %d (%v) dispatches while job %d runs", i, e, running)
			}
			running = key(e.Task, e.Job)
		case EvPreempt:
			if running != key(e.Task, e.Job) {
				return fmt.Errorf("sim: event %d (%v) stops a job that is not running", i, e)
			}
			running = -1
		case EvFinish:
			if running != key(e.Task, e.Job) {
				return fmt.Errorf("sim: event %d (%v) stops a job that is not running", i, e)
			}
			running = -1
			pending--
		}
	}
	byKey := make(map[int]JobStat, len(r.Jobs))
	for _, j := range r.Jobs {
		byKey[key(j.Task, j.Job)] = j
	}
	for _, e := range r.Events {
		if e.Kind == EvStart {
			j, ok := byKey[key(e.Task, e.Job)]
			if !ok {
				return fmt.Errorf("sim: start event for unknown job %d/%d", e.Task, e.Job)
			}
			if e.Time < j.Release-timeEps {
				return fmt.Errorf("sim: job %d/%d started at %g before release %g", e.Task, e.Job, e.Time, j.Release)
			}
		}
	}
	for _, j := range r.Jobs {
		if j.DelayPaid < 0 || math.IsNaN(j.DelayPaid) || math.IsInf(j.DelayPaid, 0) {
			return fmt.Errorf("sim: job %d/%d paid invalid delay %g", j.Task, j.Job, j.DelayPaid)
		}
		switch r.Config.Mode {
		case NonPreemptive:
			if j.Preemptions != 0 {
				return fmt.Errorf("sim: job %d/%d preempted under non-preemptive mode", j.Task, j.Job)
			}
		case FloatingNPR:
			q := r.Config.Tasks[j.Task].Q
			for k, e := range j.PreemptExecs {
				lo := q
				if k > 0 {
					lo = j.PreemptExecs[k-1] + q
				}
				if e < lo-1e-6 {
					return fmt.Errorf("sim: job %d/%d preemption %d at exec %g violates Q=%g spacing",
						j.Task, j.Job, k, e, q)
				}
			}
		}
	}
	return nil
}

// SporadicReleases draws, per task, a release sequence over the horizon with
// inter-arrival times T * (1 + U(0, jitterFrac)) — the sporadic counterpart
// of the default synchronous periodic pattern. The result plugs directly
// into Config.Releases.
func SporadicReleases(r *rand.Rand, cfg Config, jitterFrac float64) [][]float64 {
	out := make([][]float64, len(cfg.Tasks))
	for i, tk := range cfg.Tasks {
		t := r.Float64() * tk.T * jitterFrac // random initial phase
		for t < cfg.Horizon {
			out[i] = append(out[i], t)
			t += tk.T * (1 + r.Float64()*jitterFrac)
		}
	}
	return out
}

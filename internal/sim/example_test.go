package sim_test

import (
	"fmt"

	"fnpr/internal/delay"
	"fnpr/internal/sim"
	"fnpr/internal/task"
)

// A floating-NPR schedule: the lower task is preempted only after its
// non-preemptive region expires, and pays its progression-dependent delay.
func ExampleRun() {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1, Prio: 0},
		{Name: "lo", C: 12, T: 40, Q: 3, Prio: 1},
	}
	res, _ := sim.Run(sim.Config{
		Tasks:   ts,
		Policy:  sim.FixedPriority,
		Mode:    sim.FloatingNPR,
		Horizon: 40,
		Delay:   []delay.Function{nil, delay.Constant(1, 12)},
	})
	lo := res.Tasks[1]
	fmt.Printf("lo: %d preemption(s), delay paid %.0f, max response %.0f\n",
		lo.Preemptions, lo.DelayPaid, lo.MaxResponse)
	// The floating NPR defers the t=10 arrival of hi until t=13.
	for _, e := range res.Events {
		if e.Kind == sim.EvPreempt {
			fmt.Printf("preempted at t=%g (progression %g)\n", e.Time, e.Progression)
		}
	}
	// Output:
	// lo: 1 preemption(s), delay paid 1, max response 17
	// preempted at t=13 (progression 11)
}

package sim

import (
	"math/rand"
	"testing"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/sched"
	"fnpr/internal/task"
)

// TestAlgorithm1BoundsSimulatedDelay is the end-to-end Theorem 1 check:
// across randomized task sets, release patterns and delay functions, no job
// in a floating-NPR schedule ever pays more cumulative preemption delay than
// Algorithm 1's bound for its task.
func TestAlgorithm1BoundsSimulatedDelay(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(3)
		ts := make(task.Set, 0, n)
		fns := make([]delay.Function, 0, n)
		for i := 0; i < n; i++ {
			c := 5 + r.Float64()*30
			period := c*2 + r.Float64()*100
			maxD := 0.5 + r.Float64()*2
			q := maxD + 1 + r.Float64()*6
			if q > c {
				q = c
			}
			ts = append(ts, task.Task{
				Name: string(rune('a' + i)),
				C:    c, T: period, Q: q, Prio: i,
			})
			// Random peaked delay function on [0, c].
			k := 1 + r.Intn(5)
			xs := []float64{0}
			for j := 1; j < k; j++ {
				xs = append(xs, xs[len(xs)-1]+c/float64(k)*(0.5+r.Float64()))
			}
			if xs[len(xs)-1] >= c {
				xs = []float64{0}
			}
			xs = append(xs, c)
			vs := make([]float64, len(xs)-1)
			for j := range vs {
				vs[j] = r.Float64() * maxD
			}
			f, err := delay.NewPiecewise(xs, vs)
			if err != nil {
				t.Fatal(err)
			}
			fns = append(fns, f)
		}
		policy := FixedPriority
		if trial%2 == 1 {
			policy = EDF
		}
		res, err := Run(Config{
			Tasks: ts, Policy: policy, Mode: FloatingNPR,
			Horizon: 2000, Delay: fns,
		})
		if err != nil {
			t.Fatal(err)
		}
		bounds := make([]float64, n)
		for i := range ts {
			b, err := core.Analyze(nil, fns[i], ts[i].Q, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			bounds[i] = b.TotalDelay
		}
		for _, j := range res.Jobs {
			if j.DelayPaid > bounds[j.Task]+1e-9 {
				t.Fatalf("trial %d (%v): job %d/%d paid %g > bound %g (Q=%g)",
					trial, policy, j.Task, j.Job, j.DelayPaid, bounds[j.Task], ts[j.Task].Q)
			}
		}
	}
}

// TestSimulatedPreemptionCountMatchesTraceEvents cross-checks internal
// bookkeeping: per-task preemption counts equal the number of EvPreempt
// events, and every preempted job later resumes or the horizon ends.
func TestSimulatedPreemptionCountMatchesTraceEvents(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 1, T: 6, Q: 1, Prio: 0},
		{Name: "lo", C: 17, T: 60, Q: 3, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR, Horizon: 600})
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, len(ts))
	for _, e := range res.Events {
		if e.Kind == EvPreempt {
			count[e.Task]++
		}
	}
	for i, st := range res.Tasks {
		if st.Preemptions != count[i] {
			t.Fatalf("task %d: stat %d vs events %d", i, st.Preemptions, count[i])
		}
	}
	if count[1] == 0 {
		t.Fatal("no preemptions; scenario too weak")
	}
}

// TestDelayAwareRTAMatchesSimulation: the FNPR response-time analysis of
// package sched upper-bounds the simulator's observed response times. (Done
// here rather than in sched to avoid an import cycle in test helpers.)
func TestObservedResponseWithinAnalysis(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 3, T: 20, Q: 3, Prio: 0},
		{Name: "lo", C: 10, T: 50, Q: 4, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(1, 10)}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR,
		Horizon: 1000, Delay: fns,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytical C' for lo: Alg1 on const 1, Q=4, C=10: pnext=4 -> charge
	// 1 at 4, pnext=7 -> charge 1, pnext=10 -> stop. Bound 2. C'=12.
	// R_lo = 12 + ceil(R/20)*3 -> 15. R_hi = 3 + blocking min(4,12) = 7.
	if res.Tasks[0].MaxResponse > 7+1e-9 {
		t.Fatalf("hi observed response %g exceeds analytical 7", res.Tasks[0].MaxResponse)
	}
	if res.Tasks[1].MaxResponse > 15+1e-9 {
		t.Fatalf("lo observed response %g exceeds analytical 15", res.Tasks[1].MaxResponse)
	}
}

// TestEDFAnalysisAdmitsImplySimulationMeetsDeadlines: any random set the
// delay-aware EDF test admits must run without deadline misses in the
// simulator under synchronous release (a necessary-condition check; the
// converse need not hold).
func TestEDFAnalysisAdmitsImplySimulationMeetsDeadlines(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	admitted := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(3)
		ts := make(task.Set, 0, n)
		fns := make([]delay.Function, n)
		for i := 0; i < n; i++ {
			c := 2 + r.Float64()*15
			ts = append(ts, task.Task{
				Name: string(rune('a' + i)),
				C:    c,
				T:    c*float64(n)*1.5 + r.Float64()*60,
				Q:    1 + r.Float64()*3,
			})
			if i > 0 {
				peak := ts[i].Q * 0.6
				fns[i] = delay.FrontLoaded(peak, peak/4, c)
			}
		}
		ar, err := sched.Analyze(nil, ts, sched.Options{Policy: sched.EDF, Delay: fns, Method: sched.Algorithm1})
		if err != nil || !ar.Schedulable {
			continue
		}
		admitted++
		res, err := Run(Config{
			Tasks: ts, Policy: EDF, Mode: FloatingNPR,
			Horizon: 3000, Delay: fns,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range res.Tasks {
			if st.Missed > 0 {
				t.Fatalf("trial %d: analysis admitted but task %d missed %d deadlines (set %v)",
					trial, i, st.Missed, ts)
			}
		}
	}
	if admitted < 5 {
		t.Fatalf("only %d sets admitted; experiment too weak", admitted)
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"
)

// ResponseTimes returns the response times of every finished job of one
// task, in job order. Unfinished jobs are excluded.
func (r *Result) ResponseTimes(taskIdx int) []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.Task == taskIdx && !math.IsInf(j.Finish, 1) {
			out = append(out, j.ResponseTime())
		}
	}
	return out
}

// Percentile returns the p-quantile (0 <= p <= 1) of the values using the
// nearest-rank method; NaN for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ResponseStats summarises the response-time distribution of one task.
type ResponseStats struct {
	Count            int
	Min, Mean, Max   float64
	P50, P90, P99    float64
	DelayMean        float64
	PreemptionsMean  float64
	UnfinishedAtMiss int // jobs unfinished at the horizon with passed deadlines
}

// Stats computes the distribution summary for one task.
func (r *Result) Stats(taskIdx int) ResponseStats {
	rts := r.ResponseTimes(taskIdx)
	st := ResponseStats{Count: len(rts)}
	if len(rts) > 0 {
		st.Min, st.Max = math.Inf(1), math.Inf(-1)
		var sum float64
		for _, v := range rts {
			st.Min = math.Min(st.Min, v)
			st.Max = math.Max(st.Max, v)
			sum += v
		}
		st.Mean = sum / float64(len(rts))
		st.P50 = Percentile(rts, 0.50)
		st.P90 = Percentile(rts, 0.90)
		st.P99 = Percentile(rts, 0.99)
	}
	var delaySum, preSum float64
	var n int
	for _, j := range r.Jobs {
		if j.Task != taskIdx {
			continue
		}
		delaySum += j.DelayPaid
		preSum += float64(j.Preemptions)
		n++
		if math.IsInf(j.Finish, 1) && j.Missed {
			st.UnfinishedAtMiss++
		}
	}
	if n > 0 {
		st.DelayMean = delaySum / float64(n)
		st.PreemptionsMean = preSum / float64(n)
	}
	return st
}

// String renders the stats on one line.
func (s ResponseStats) String() string {
	return fmt.Sprintf("n=%d R[min=%.3f mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f] delay=%.3f preempts=%.2f",
		s.Count, s.Min, s.Mean, s.P50, s.P90, s.P99, s.Max, s.DelayMean, s.PreemptionsMean)
}

package sim

import (
	"math"
	"strings"
	"testing"

	"fnpr/internal/task"
)

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := Percentile(v, 0.5); got != 3 {
		t.Fatalf("p50 = %g, want 3", got)
	}
	if got := Percentile(v, 1); got != 5 {
		t.Fatalf("p100 = %g, want 5", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %g, want 1", got)
	}
	if got := Percentile(v, -1); got != 1 {
		t.Fatalf("clamped p = %g, want 1", got)
	}
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty percentile = %g, want NaN", got)
	}
	// Input not mutated.
	if v[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestResponseTimesAndStats(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Prio: 0},
		{Name: "lo", C: 12, T: 40, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 80})
	if err != nil {
		t.Fatal(err)
	}
	rts := res.ResponseTimes(0)
	if len(rts) != 8 {
		t.Fatalf("hi finished %d jobs, want 8", len(rts))
	}
	for _, v := range rts {
		if v != 2 {
			t.Fatalf("hi response %g, want 2", v)
		}
	}
	st := res.Stats(1)
	if st.Count != 2 {
		t.Fatalf("lo stats count = %d, want 2", st.Count)
	}
	if st.Max != 16 || st.Min != 16 {
		t.Fatalf("lo responses [%g,%g], want 16", st.Min, st.Max)
	}
	if st.PreemptionsMean != 1 {
		t.Fatalf("lo mean preemptions = %g, want 1", st.PreemptionsMean)
	}
	if !strings.Contains(st.String(), "p90") {
		t.Fatal("stats rendering broken")
	}
}

func TestStatsCountsUnfinishedMisses(t *testing.T) {
	ts := task.Set{
		{Name: "hog", C: 30, T: 100, Prio: 0},
		{Name: "b", C: 10, T: 100, D: 20, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: NonPreemptive, Horizon: 25})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats(1)
	if st.UnfinishedAtMiss != 1 {
		t.Fatalf("unfinished misses = %d, want 1", st.UnfinishedAtMiss)
	}
}

func TestWriteEventsCSV(t *testing.T) {
	ts := task.Set{{Name: "a", C: 2, T: 10, Prio: 0}}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteEventsCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header + 2 jobs x (release, start, finish) = 7.
	if len(lines) != 7 {
		t.Fatalf("CSV lines = %d, want 7:\n%s", len(lines), b.String())
	}
	if lines[0] != "time,kind,task,job,progression,delay" {
		t.Fatalf("header = %q", lines[0])
	}
}

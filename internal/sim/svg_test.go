package sim

import (
	"strings"
	"testing"

	"fnpr/internal/task"
)

func TestWriteSVGTimeline(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1, Prio: 0},
		{Name: "lo", C: 12, T: 40, Q: 3, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteSVGTimeline(&b, SVGTimelineOptions{Title: "demo"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "demo", "hi", "lo", "<rect", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// lo is preempted once in [0,40]: exactly one red preemption tick.
	if got := strings.Count(out, `stroke="red"`); got != 1 {
		t.Fatalf("preemption ticks = %d, want 1", got)
	}
	// 4 hi releases + 1 lo release = 5 triangles.
	if got := strings.Count(out, `<path d=`); got != 5 {
		t.Fatalf("release markers = %d, want 5", got)
	}
}

func TestWriteSVGTimelineClipsWindow(t *testing.T) {
	ts := task.Set{{Name: "a", C: 2, T: 10, Prio: 0}}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	var whole, clipped strings.Builder
	if err := res.WriteSVGTimeline(&whole, SVGTimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSVGTimeline(&clipped, SVGTimelineOptions{From: 0, To: 25}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(clipped.String(), "<path d=") >= strings.Count(whole.String(), "<path d=") {
		t.Fatal("clipping did not reduce marker count")
	}
}

func TestWriteSVGTimelineMissMarker(t *testing.T) {
	ts := task.Set{
		{Name: "hog", C: 30, T: 100, Prio: 0},
		{Name: "b", C: 10, T: 100, D: 20, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: NonPreemptive, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteSVGTimeline(&b, SVGTimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `fill="red"`) {
		t.Fatal("deadline-miss marker missing")
	}
}

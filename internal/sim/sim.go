// Package sim is a discrete-event uniprocessor scheduling simulator with
// first-class support for floating non-preemptive regions (FNPR) and
// progression-dependent preemption delay.
//
// It implements the run-time model of Section III of the paper: jobs of a
// task set contend for one processor under fixed-priority or EDF scheduling.
// In FloatingNPR mode, the arrival of a higher-priority job while a job of
// τi runs does not preempt immediately; instead τi enters a non-preemptive
// region of length Qi (or until it finishes), after which the normal
// priority order is enforced — potentially collating several arrivals into
// a single preemption. When a job is preempted at progression p through its
// operations, it owes fi(p) extra execution time (the cache-related
// preemption delay), repaid when it next occupies the processor before any
// further progress is made.
//
// The simulator is used by the test suite and the evaluation harness to
// validate, per Theorem 1, that the Algorithm 1 bound of package core
// dominates the delay accrued in every simulated schedule, and to reproduce
// the run-time development sketched in Figure 2.
package sim

import (
	"fmt"
	"math"
	"slices"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// Policy selects the priority order.
type Policy int

const (
	// FixedPriority uses task.Prio (smaller = higher priority).
	FixedPriority Policy = iota
	// EDF uses earliest absolute deadline first.
	EDF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FixedPriority:
		return "FP"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Mode selects the preemption model.
type Mode int

const (
	// FullyPreemptive preempts immediately on higher-priority arrival.
	FullyPreemptive Mode = iota
	// FloatingNPR defers preemption by the running task's Q.
	FloatingNPR
	// NonPreemptive never preempts a running job.
	NonPreemptive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case FullyPreemptive:
		return "fully-preemptive"
	case FloatingNPR:
		return "floating-npr"
	case NonPreemptive:
		return "non-preemptive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one simulation.
type Config struct {
	Tasks  task.Set
	Policy Policy
	Mode   Mode

	// Horizon is the simulated time span; releases beyond it are
	// ignored and jobs still active at the horizon are reported as
	// unfinished.
	Horizon float64

	// Delay holds the per-task preemption delay functions; nil entries
	// (or a nil slice) mean preemptions are free for those tasks. Each
	// function's domain must equal the task's C.
	Delay []delay.Function

	// Releases optionally overrides the release pattern per task
	// (indexed like Tasks). When nil for a task, jobs are released
	// periodically at 0, T, 2T, ... up to the horizon (the synchronous
	// worst case). Release times must be non-decreasing and successive
	// releases at least T apart is NOT enforced (sporadic bursts can be
	// modelled deliberately), but times must be non-negative.
	Releases [][]float64

	// ExecTime optionally scales each job's actual execution demand as
	// a fraction of C in (0, 1]; 1 (default when zero) simulates every
	// job running for its full WCET.
	ExecTime float64

	// SwitchCost is a fixed context-switch overhead charged to the
	// preempted job at every preemption, on top of its cache-related
	// delay. It is accounted separately (JobStat.SwitchPaid), so the
	// CRPD bounds of package core remain directly comparable with
	// JobStat.DelayPaid.
	SwitchCost float64
}

// EventKind enumerates trace events.
type EventKind int

const (
	// EvRelease marks a job arrival.
	EvRelease EventKind = iota
	// EvStart marks the first dispatch of a job.
	EvStart
	// EvPreempt marks a preemption (the victim is recorded).
	EvPreempt
	// EvResume marks a preempted job regaining the processor.
	EvResume
	// EvFinish marks a job completion.
	EvFinish
	// EvNPRStart marks the start of a floating non-preemptive region.
	EvNPRStart
	// EvNPREnd marks the expiry of a floating non-preemptive region.
	EvNPREnd
	// EvMiss marks a deadline miss (at the absolute deadline).
	EvMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvRelease:
		return "release"
	case EvStart:
		return "start"
	case EvPreempt:
		return "preempt"
	case EvResume:
		return "resume"
	case EvFinish:
		return "finish"
	case EvNPRStart:
		return "npr-start"
	case EvNPREnd:
		return "npr-end"
	case EvMiss:
		return "miss"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one trace entry.
type Event struct {
	Time float64
	Kind EventKind
	// Task and Job identify the affected job (task index and job
	// sequence number within the task).
	Task, Job int
	// Progression is the job's progression at the event (meaningful for
	// preemptions and finishes).
	Progression float64
	// Delay is the preemption delay charged (EvPreempt only).
	Delay float64
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("t=%-8.3f %-9s task=%d job=%d prog=%.3f delay=%.3f",
		e.Time, e.Kind, e.Task, e.Job, e.Progression, e.Delay)
}

// JobStat summarises one job.
type JobStat struct {
	Task, Job    int
	Release      float64
	Deadline     float64 // absolute
	Finish       float64 // completion time; +Inf when unfinished at horizon
	Preemptions  int
	DelayPaid    float64
	SwitchPaid   float64
	ExecDemand   float64 // base execution demand (without delay)
	Missed       bool
	PreemptProgs []float64 // progression at each preemption
	PreemptExecs []float64 // job execution-time clock at each preemption
}

// ResponseTime returns Finish - Release.
func (j JobStat) ResponseTime() float64 { return j.Finish - j.Release }

// TaskStat aggregates per task.
type TaskStat struct {
	Released, Finished, Missed int
	Preemptions                int
	DelayPaid                  float64
	SwitchPaid                 float64
	MaxResponse                float64
	MaxDelayPerJob             float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Config Config
	Events []Event
	Jobs   []JobStat
	Tasks  []TaskStat
	// Idle is the total processor idle time within the horizon.
	Idle float64
}

// job is the internal run-time state of one job instance.
type job struct {
	taskIdx, seq int
	release      float64
	deadline     float64
	demand       float64 // base execution demand
	progress     float64 // program progress in [0, demand]
	debt         float64 // outstanding preemption-delay work
	execTime     float64 // processor time consumed so far (progress scale + delay)
	started      bool
	missedNoted  bool
	finished     bool
	finish       float64 // completion time (meaningful when finished)

	preemptions  int
	delayPaid    float64
	switchPaid   float64
	preemptProgs []float64
	preemptExecs []float64
}

func (j *job) remainingWall() float64 {
	return j.debt + (j.demand - j.progress)
}

const timeEps = 1e-9

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	return RunCtx(nil, cfg)
}

// RunCtx is Run under a guard scope: the event loop charges one guard step
// per simulated event, so long horizons can be canceled, time-bounded and
// budget-bounded. A nil guard means no limits.
func RunCtx(g *guard.Ctx, cfg Config) (*Result, error) {
	return NewRunner().Run(g, cfg)
}

// validateConfig checks cfg and resolves the execution-time fraction.
func validateConfig(cfg Config) (float64, error) {
	if err := cfg.Tasks.Validate(); err != nil {
		return 0, err
	}
	if len(cfg.Tasks) == 0 {
		return 0, guard.Invalidf("sim: empty task set")
	}
	if cfg.Horizon <= 0 || math.IsNaN(cfg.Horizon) || math.IsInf(cfg.Horizon, 0) {
		return 0, guard.Invalidf("sim: invalid horizon %g", cfg.Horizon)
	}
	if cfg.Delay != nil && len(cfg.Delay) != len(cfg.Tasks) {
		return 0, guard.Invalidf("sim: %d delay functions for %d tasks", len(cfg.Delay), len(cfg.Tasks))
	}
	frac := cfg.ExecTime
	if frac == 0 {
		frac = 1
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return 0, guard.Invalidf("sim: ExecTime %g outside (0,1]", frac)
	}
	if cfg.SwitchCost < 0 || math.IsNaN(cfg.SwitchCost) || math.IsInf(cfg.SwitchCost, 0) {
		return 0, guard.Invalidf("sim: invalid switch cost %g", cfg.SwitchCost)
	}
	if cfg.Mode == FloatingNPR {
		for i, tk := range cfg.Tasks {
			if tk.Q <= 0 {
				return 0, guard.Invalidf("sim: task %d (%s) has no NPR length Q in FloatingNPR mode", i, tk.Name)
			}
		}
	}
	for i := range cfg.Tasks {
		if cfg.Delay != nil && cfg.Delay[i] != nil {
			if d := cfg.Delay[i].Domain(); math.Abs(d-cfg.Tasks[i].C) > 1e-9 {
				return 0, guard.Invalidf("sim: task %d delay domain %g != C %g", i, d, cfg.Tasks[i].C)
			}
		}
	}
	return frac, nil
}

// Runner is a reusable simulator instance for Monte-Carlo campaigns: every
// internal buffer — the release table, the job slab, the ready queue, the
// event trace and the result records — is retained across Run calls, so a
// worker simulating thousands of random job sets stays allocation-free once
// the buffers have grown to the workload's high-water mark.
//
// A Runner is NOT safe for concurrent use; campaigns keep one per worker
// goroutine. The *Result a Run returns (including its Events, Jobs, Tasks
// and per-job preemption logs) is owned by the Runner and only valid until
// the next Run on the same Runner — callers that need the data longer copy
// what they keep. The package-level Run/RunCtx, which construct a fresh
// Runner per call, are unaffected by this aliasing.
type Runner struct {
	st state
}

// NewRunner returns an empty Runner; buffers grow on first use.
func NewRunner() *Runner {
	return &Runner{}
}

// Run executes one simulation on the Runner's reused buffers. Semantics are
// identical to the package-level RunCtx — same validation, same event
// sequence, same statistics — only the allocation behaviour differs.
func (r *Runner) Run(g *guard.Ctx, cfg Config) (*Result, error) {
	frac, err := validateConfig(cfg)
	if err != nil {
		return nil, err
	}
	s := &r.st
	s.reset(cfg, frac)
	s.buildReleases()
	s.growSlab(len(s.releases))
	if err := s.run(g); err != nil {
		return nil, err
	}
	return s.result(), nil
}

type pendingRelease struct {
	time    float64
	taskIdx int
	seq     int
}

type state struct {
	cfg  Config
	frac float64

	releases []pendingRelease // sorted by time, then task index
	nextRel  int

	ready   []*job // pending, not running
	running *job

	// nprUntil is the wall-clock expiry of the active NPR; NaN when no
	// NPR is armed.
	nprArmed bool
	nprUntil float64

	now  float64
	idle float64

	events []Event
	jobs   []*job

	// slab is the backing storage of every job instance of one run: the
	// release table fixes the job count up front, so the slab is sized
	// once per run and the job pointers in ready/jobs/running stay stable.
	// Across Runner reuses the slab (and each slab entry's preemption
	// logs) keep their capacity, which is what makes repeat runs
	// allocation-free.
	slab     []job
	nextSlab int

	// res is the reusable result record a Runner hands out.
	res Result
}

// reset rewinds the state for a fresh run while keeping every buffer's
// capacity.
func (s *state) reset(cfg Config, frac float64) {
	s.cfg = cfg
	s.frac = frac
	s.releases = s.releases[:0]
	s.nextRel = 0
	s.ready = s.ready[:0]
	s.running = nil
	s.nprArmed = false
	s.nprUntil = 0
	s.now = 0
	s.idle = 0
	s.events = s.events[:0]
	s.jobs = s.jobs[:0]
	s.nextSlab = 0
}

// growSlab ensures storage for n jobs. Growing discards the old slab (and
// the per-job log capacity it carried); steady-state campaigns hit the
// high-water mark quickly and stop allocating.
func (s *state) growSlab(n int) {
	if cap(s.slab) < n {
		s.slab = make([]job, n)
		return
	}
	s.slab = s.slab[:n]
}

func (s *state) buildReleases() {
	for i, tk := range s.cfg.Tasks {
		if s.cfg.Releases != nil && i < len(s.cfg.Releases) && s.cfg.Releases[i] != nil {
			for k, t := range s.cfg.Releases[i] {
				if t < s.cfg.Horizon {
					s.releases = append(s.releases, pendingRelease{time: t, taskIdx: i, seq: k})
				}
			}
			continue
		}
		seq := 0
		for t := 0.0; t < s.cfg.Horizon; t += tk.T {
			s.releases = append(s.releases, pendingRelease{time: t, taskIdx: i, seq: seq})
			seq++
		}
	}
	slices.SortStableFunc(s.releases, func(a, b pendingRelease) int {
		switch {
		case a.time < b.time:
			return -1
		case a.time > b.time:
			return 1
		default:
			return a.taskIdx - b.taskIdx
		}
	})
}

// higherPriority reports whether job a strictly precedes job b.
func (s *state) higherPriority(a, b *job) bool {
	switch s.cfg.Policy {
	case EDF:
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.taskIdx < b.taskIdx
	default: // FixedPriority
		pa, pb := s.cfg.Tasks[a.taskIdx].Prio, s.cfg.Tasks[b.taskIdx].Prio
		if pa != pb {
			return pa < pb
		}
		return a.taskIdx < b.taskIdx
	}
}

func (s *state) bestReady() *job {
	var best *job
	for _, j := range s.ready {
		if best == nil || s.higherPriority(j, best) {
			best = j
		}
	}
	return best
}

func (s *state) removeReady(j *job) {
	for i, r := range s.ready {
		if r == j {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

func (s *state) emit(kind EventKind, j *job, prog, d float64) {
	s.events = append(s.events, Event{
		Time: s.now, Kind: kind,
		Task: j.taskIdx, Job: j.seq,
		Progression: prog, Delay: d,
	})
}

// advanceRunning progresses the running job by wall time dt: debt is repaid
// first, then program progress accrues.
func (s *state) advanceRunning(dt float64) {
	j := s.running
	if j == nil || dt <= 0 {
		return
	}
	j.execTime += dt
	pay := math.Min(j.debt, dt)
	j.debt -= pay
	dt -= pay
	j.progress += dt
	if j.progress > j.demand {
		j.progress = j.demand
	}
}

func (s *state) dispatch() {
	// Called when no job is running: pick the best ready job.
	best := s.bestReady()
	if best == nil {
		return
	}
	s.removeReady(best)
	s.running = best
	if !best.started {
		best.started = true
		s.emit(EvStart, best, best.progress, 0)
	} else {
		s.emit(EvResume, best, best.progress, 0)
	}
}

// preemptRunning moves the running job back to the ready queue, charging its
// preemption delay.
func (s *state) preemptRunning() {
	j := s.running
	d := 0.0
	if s.cfg.Delay != nil && s.cfg.Delay[j.taskIdx] != nil {
		d = s.cfg.Delay[j.taskIdx].Eval(j.progress)
	}
	j.debt += d + s.cfg.SwitchCost
	j.delayPaid += d
	j.switchPaid += s.cfg.SwitchCost
	j.preemptions++
	j.preemptProgs = append(j.preemptProgs, j.progress)
	j.preemptExecs = append(j.preemptExecs, j.execTime)
	s.emit(EvPreempt, j, j.progress, d)
	s.ready = append(s.ready, j)
	s.running = nil
	s.nprArmed = false
}

func (s *state) run(g *guard.Ctx) error {
	for {
		if err := g.Tick(); err != nil {
			return err
		}
		// Next event time: release, completion, NPR expiry.
		next := math.Inf(1)
		if s.nextRel < len(s.releases) {
			next = s.releases[s.nextRel].time
		}
		if s.running != nil {
			if c := s.now + s.running.remainingWall(); c < next {
				next = c
			}
		}
		if s.nprArmed && s.nprUntil < next {
			next = s.nprUntil
		}
		if math.IsInf(next, 1) || next > s.cfg.Horizon {
			// Advance to horizon and stop.
			if s.running != nil {
				s.advanceRunning(s.cfg.Horizon - s.now)
			} else {
				s.idle += s.cfg.Horizon - s.now
			}
			s.now = s.cfg.Horizon
			return nil
		}

		// Advance time to the event.
		if s.running != nil {
			s.advanceRunning(next - s.now)
		} else {
			s.idle += next - s.now
		}
		s.now = next

		// 1. Completion. Dispatching the successor is deferred to
		// step 4 so that same-instant releases are visible first —
		// otherwise a lower-priority job could be dispatched and
		// instantly preempted at progress 0, charging a spurious
		// f(0) delay.
		if s.running != nil && s.running.remainingWall() <= timeEps {
			j := s.running
			j.finished = true
			j.finish = s.now
			s.emit(EvFinish, j, j.progress, 0)
			if s.now > j.deadline+timeEps && !j.missedNoted {
				j.missedNoted = true
				s.emit(EvMiss, j, j.progress, 0)
			}
			s.running = nil
			s.nprArmed = false
		}

		// 2. Releases at this instant.
		for s.nextRel < len(s.releases) && s.releases[s.nextRel].time <= s.now+timeEps {
			rel := s.releases[s.nextRel]
			s.nextRel++
			tk := s.cfg.Tasks[rel.taskIdx]
			j := &s.slab[s.nextSlab]
			s.nextSlab++
			*j = job{
				taskIdx:      rel.taskIdx,
				seq:          rel.seq,
				release:      rel.time,
				deadline:     rel.time + tk.Deadline(),
				demand:       tk.C * s.frac,
				preemptProgs: j.preemptProgs[:0],
				preemptExecs: j.preemptExecs[:0],
			}
			s.jobs = append(s.jobs, j)
			s.emit(EvRelease, j, 0, 0)
			s.handleArrival(j)
		}

		// 3. NPR expiry.
		if s.nprArmed && s.now >= s.nprUntil-timeEps {
			s.nprArmed = false
			if s.running != nil {
				s.emit(EvNPREnd, s.running, s.running.progress, 0)
				if best := s.bestReady(); best != nil && s.higherPriority(best, s.running) {
					s.preemptRunning()
					s.dispatch()
				}
			}
		}

		// 4. Idle processor: dispatch.
		if s.running == nil {
			s.dispatch()
		}
	}
}

// handleArrival applies the preemption model to a newly released job.
func (s *state) handleArrival(j *job) {
	if s.running == nil {
		s.ready = append(s.ready, j)
		return
	}
	if !s.higherPriority(j, s.running) {
		s.ready = append(s.ready, j)
		return
	}
	switch s.cfg.Mode {
	case FullyPreemptive:
		// The displaced job is charged once; the successor is
		// dispatched in step 4 of the main loop, after every
		// same-instant release has been queued (so the highest
		// arrival wins without intermediate spurious preemptions).
		s.ready = append(s.ready, j)
		s.preemptRunning()
	case FloatingNPR:
		s.ready = append(s.ready, j)
		if !s.nprArmed {
			q := s.cfg.Tasks[s.running.taskIdx].Q
			s.nprArmed = true
			s.nprUntil = s.now + q
			s.emit(EvNPRStart, s.running, s.running.progress, 0)
		}
	case NonPreemptive:
		s.ready = append(s.ready, j)
	}
}

// result assembles the run's Result into the state's reusable record. Finish
// times and misses were recorded on the jobs as they happened, so a single
// pass over the job slab suffices — no event-log replay, no index map.
func (s *state) result() *Result {
	res := &s.res
	res.Config = s.cfg
	res.Events = s.events
	res.Idle = s.idle
	res.Jobs = res.Jobs[:0]
	if cap(res.Tasks) >= len(s.cfg.Tasks) {
		res.Tasks = res.Tasks[:len(s.cfg.Tasks)]
		for i := range res.Tasks {
			res.Tasks[i] = TaskStat{}
		}
	} else {
		res.Tasks = make([]TaskStat, len(s.cfg.Tasks))
	}
	for _, j := range s.jobs {
		st := JobStat{
			Task: j.taskIdx, Job: j.seq,
			Release: j.release, Deadline: j.deadline,
			Finish:       math.Inf(1),
			Preemptions:  j.preemptions,
			DelayPaid:    j.delayPaid,
			SwitchPaid:   j.switchPaid,
			ExecDemand:   j.demand,
			PreemptProgs: j.preemptProgs,
			PreemptExecs: j.preemptExecs,
		}
		ts := &res.Tasks[j.taskIdx]
		ts.Released++
		ts.Preemptions += j.preemptions
		ts.DelayPaid += j.delayPaid
		ts.SwitchPaid += j.switchPaid
		if j.delayPaid > ts.MaxDelayPerJob {
			ts.MaxDelayPerJob = j.delayPaid
		}
		if j.finished {
			st.Finish = j.finish
			ts.Finished++
			if rt := j.finish - j.release; rt > ts.MaxResponse {
				ts.MaxResponse = rt
			}
		}
		if j.missedNoted {
			st.Missed = true
			ts.Missed++
		} else if !j.finished && j.deadline < s.cfg.Horizon {
			// Unfinished jobs past their deadline also count as misses.
			st.Missed = true
			ts.Missed++
		}
		res.Jobs = append(res.Jobs, st)
	}
	return res
}

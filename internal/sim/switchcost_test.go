package sim

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func TestSwitchCostValidation(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 10, Prio: 0}}
	if _, err := Run(Config{Tasks: ts, Horizon: 10, SwitchCost: -1}); err == nil {
		t.Fatal("accepted negative switch cost")
	}
	if _, err := Run(Config{Tasks: ts, Horizon: 10, SwitchCost: math.NaN()}); err == nil {
		t.Fatal("accepted NaN switch cost")
	}
}

func TestSwitchCostAccountedSeparately(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1, Prio: 0},
		{Name: "lo", C: 12, T: 40, Q: 3, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(2, 12)}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon: 60, Delay: fns, SwitchCost: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// lo's first job: preempted once at t=10 (progress 8); pays 2 CRPD +
	// 0.5 switch; finish = 12 + 2 + 0.5 + 4 = 18.5.
	var j JobStat
	found := false
	for _, jj := range res.Jobs {
		if jj.Task == 1 && jj.Job == 0 {
			j, found = jj, true
		}
	}
	if !found {
		t.Fatal("lo job missing")
	}
	if j.DelayPaid != 2 || j.SwitchPaid != 0.5 {
		t.Fatalf("delay/switch = %g/%g, want 2/0.5", j.DelayPaid, j.SwitchPaid)
	}
	if math.Abs(j.Finish-18.5) > 1e-6 {
		t.Fatalf("finish = %g, want 18.5", j.Finish)
	}
	// Two lo jobs in the horizon (released at 0 and 40), each preempted
	// once by hi.
	if res.Tasks[1].SwitchPaid != 1.0 {
		t.Fatalf("task switch total = %g, want 1.0", res.Tasks[1].SwitchPaid)
	}
}

func TestSwitchCostZeroByDefault(t *testing.T) {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1, Prio: 0},
		{Name: "lo", C: 12, T: 40, Q: 3, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Tasks {
		if st.SwitchPaid != 0 {
			t.Fatalf("default switch cost nonzero: %g", st.SwitchPaid)
		}
	}
}

// Under FNPR the switch overhead still respects the Q spacing, so total
// overhead per job is bounded by (preemptions x SwitchCost).
func TestSwitchCostBoundedByPreemptions(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 1, T: 7, Q: 1, Prio: 0},
		{Name: "lo", C: 25, T: 101, Q: 4, Prio: 1},
	}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR,
		Horizon: 800, SwitchCost: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		want := float64(j.Preemptions) * 0.3
		if math.Abs(j.SwitchPaid-want) > 1e-9 {
			t.Fatalf("job %d/%d switch paid %g, want %g", j.Task, j.Job, j.SwitchPaid, want)
		}
	}
}

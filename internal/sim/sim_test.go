package sim

import (
	"math"
	"strings"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func twoTasks() task.Set {
	ts := task.Set{
		{Name: "hi", C: 2, T: 10, Q: 1},
		{Name: "lo", C: 12, T: 40, Q: 3},
	}
	ts.AssignRateMonotonic()
	return ts
}

func TestRunValidation(t *testing.T) {
	ts := twoTasks()
	if _, err := Run(Config{Tasks: task.Set{}, Horizon: 10}); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := Run(Config{Tasks: ts, Horizon: 0}); err == nil {
		t.Fatal("accepted zero horizon")
	}
	if _, err := Run(Config{Tasks: ts, Horizon: 10, Delay: make([]delay.Function, 1)}); err == nil {
		t.Fatal("accepted short delay slice")
	}
	if _, err := Run(Config{Tasks: ts, Horizon: 10, ExecTime: 2}); err == nil {
		t.Fatal("accepted ExecTime > 1")
	}
	bad := ts.Clone()
	bad[0].Q = 0
	if _, err := Run(Config{Tasks: bad, Mode: FloatingNPR, Horizon: 10}); err == nil {
		t.Fatal("accepted FNPR mode without Q")
	}
	if _, err := Run(Config{Tasks: ts, Horizon: 10,
		Delay: []delay.Function{delay.Constant(1, 99), nil}}); err == nil {
		t.Fatal("accepted delay domain mismatch")
	}
}

func TestFullyPreemptiveBasicSchedule(t *testing.T) {
	ts := twoTasks()
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	// hi: 4 jobs (0,10,20,30), each runs immediately for 2.
	if res.Tasks[0].Released != 4 || res.Tasks[0].Finished != 4 {
		t.Fatalf("hi stats = %+v", res.Tasks[0])
	}
	if res.Tasks[0].MaxResponse != 2 {
		t.Fatalf("hi max response = %g, want 2", res.Tasks[0].MaxResponse)
	}
	// lo: released at 0, preempted at 10 (after 8 of 12 done),
	// finishes at 16.
	if res.Tasks[1].Finished != 1 {
		t.Fatalf("lo stats = %+v", res.Tasks[1])
	}
	if res.Tasks[1].Preemptions != 1 {
		t.Fatalf("lo preemptions = %d, want 1", res.Tasks[1].Preemptions)
	}
	if res.Tasks[1].MaxResponse != 16 {
		t.Fatalf("lo max response = %g, want 16", res.Tasks[1].MaxResponse)
	}
	if res.Tasks[0].Missed != 0 || res.Tasks[1].Missed != 0 {
		t.Fatal("unexpected deadline misses")
	}
	// Idle: demand over 40 = 4*2 + 12 = 20 -> idle 20.
	if math.Abs(res.Idle-20) > 1e-6 {
		t.Fatalf("idle = %g, want 20", res.Idle)
	}
}

func TestNonPreemptiveNeverPreempts(t *testing.T) {
	ts := twoTasks()
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: NonPreemptive, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Tasks {
		if st.Preemptions != 0 {
			t.Fatalf("task %d preempted %d times under non-preemptive mode", i, st.Preemptions)
		}
	}
	// lo starts at 2 (behind hi@0) and holds the processor until 14;
	// hi@10 must wait and finishes at 16.
	found := false
	for _, j := range res.Jobs {
		if j.Task == 0 && j.Release == 10 {
			found = true
			if j.Finish != 16 {
				t.Fatalf("hi@10 finish = %g, want 16 (blocked by lo)", j.Finish)
			}
		}
	}
	if !found {
		t.Fatal("hi@10 job missing")
	}
}

func TestFloatingNPRDefersPreemption(t *testing.T) {
	ts := twoTasks() // lo.Q = 3
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	// lo starts at 2 (after hi@0), runs until hi@10 arrives; NPR of 3
	// defers the preemption to t=13.
	var preemptTime float64 = -1
	for _, e := range res.Events {
		if e.Kind == EvPreempt && e.Task == 1 {
			preemptTime = e.Time
			break
		}
	}
	if math.Abs(preemptTime-13) > 1e-6 {
		t.Fatalf("preemption at %g, want 13 (release 10 + Q 3)", preemptTime)
	}
	// NPR events bracket it.
	var nprStart, nprEnd float64 = -1, -1
	for _, e := range res.Events {
		if e.Kind == EvNPRStart && nprStart < 0 {
			nprStart = e.Time
		}
		if e.Kind == EvNPREnd && nprEnd < 0 {
			nprEnd = e.Time
		}
	}
	if math.Abs(nprStart-10) > 1e-6 || math.Abs(nprEnd-13) > 1e-6 {
		t.Fatalf("NPR window [%g,%g], want [10,13]", nprStart, nprEnd)
	}
}

func TestFloatingNPRCollatesArrivals(t *testing.T) {
	// Two high-priority tasks released during one NPR cause ONE
	// preemption of the low task, not two.
	ts := task.Set{
		{Name: "h1", C: 1, T: 100, Q: 1, Prio: 0},
		{Name: "h2", C: 1, T: 100, Q: 1, Prio: 1},
		{Name: "lo", C: 20, T: 100, Q: 5, Prio: 2},
	}
	rel := [][]float64{{6}, {7}, {0}}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR,
		Horizon: 100, Releases: rel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[2].Preemptions != 1 {
		t.Fatalf("lo preemptions = %d, want 1 (collated)", res.Tasks[2].Preemptions)
	}
	// The NPR started at 6 and expired at 11; both h jobs run then.
	var preempt float64 = -1
	for _, e := range res.Events {
		if e.Kind == EvPreempt && e.Task == 2 {
			preempt = e.Time
		}
	}
	if math.Abs(preempt-11) > 1e-6 {
		t.Fatalf("preemption at %g, want 11", preempt)
	}
}

func TestPreemptionDelayAccrual(t *testing.T) {
	// lo pays f(progress) at each preemption; check the finish time
	// includes the paid delay.
	ts := twoTasks()
	fLo := delay.Constant(2, 12)
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon: 60, Delay: []delay.Function{nil, fLo},
	})
	if err != nil {
		t.Fatal(err)
	}
	// lo: starts at 2, preempted at 10 (progress 8, pays 2),
	// resumes at 12, pays debt till 14, progress 4 more -> would finish
	// at 18... check: remaining progress 4, so finish = 12+2+4 = 18.
	var finish float64 = -1
	for _, j := range res.Jobs {
		if j.Task == 1 && j.Job == 0 {
			finish = j.Finish
			if j.DelayPaid != 2 {
				t.Fatalf("delay paid = %g, want 2", j.DelayPaid)
			}
			if j.Preemptions != 1 {
				t.Fatalf("preemptions = %d, want 1", j.Preemptions)
			}
		}
	}
	if math.Abs(finish-18) > 1e-6 {
		t.Fatalf("lo finish = %g, want 18", finish)
	}
}

func TestEDFOrdering(t *testing.T) {
	// Two jobs released together; EDF runs the earlier deadline first
	// regardless of declared Prio.
	ts := task.Set{
		{Name: "late", C: 2, T: 100, D: 50, Prio: 0},
		{Name: "soon", C: 2, T: 100, D: 10, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: EDF, Mode: FullyPreemptive, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	var firstStart Event
	for _, e := range res.Events {
		if e.Kind == EvStart {
			firstStart = e
			break
		}
	}
	if firstStart.Task != 1 {
		t.Fatalf("EDF started task %d first, want 1 (earlier deadline)", firstStart.Task)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 6, T: 10, Prio: 0},
		{Name: "b", C: 6, T: 12, Prio: 1},
	}
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[1].Missed == 0 {
		t.Fatal("overloaded set produced no misses")
	}
}

func TestUnfinishedJobAtHorizonCountsAsMiss(t *testing.T) {
	ts := task.Set{{Name: "a", C: 10, T: 20, D: 12, Prio: 0}}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon: 15, Releases: [][]float64{{0, 14}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job released at 14 cannot finish by horizon 15; its deadline (26)
	// is beyond the horizon so it is NOT a miss; job at 0 finishes at 10.
	if res.Tasks[0].Missed != 0 {
		t.Fatalf("misses = %d, want 0", res.Tasks[0].Missed)
	}
	// Now a horizon past the deadline with an unfinishable job.
	ts2 := task.Set{
		{Name: "hog", C: 30, T: 100, Prio: 0},
		{Name: "b", C: 10, T: 100, D: 20, Prio: 1},
	}
	res2, err := Run(Config{Tasks: ts2, Policy: FixedPriority, Mode: NonPreemptive, Horizon: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tasks[1].Missed != 1 {
		t.Fatalf("misses = %d, want 1 (unfinished past deadline)", res2.Tasks[1].Missed)
	}
}

func TestExecTimeFraction(t *testing.T) {
	ts := twoTasks()
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon: 40, ExecTime: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// hi jobs take 1 instead of 2.
	if res.Tasks[0].MaxResponse != 1 {
		t.Fatalf("hi max response = %g, want 1", res.Tasks[0].MaxResponse)
	}
}

func TestSporadicReleasesRespected(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 10, Prio: 0}}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon: 50, Releases: [][]float64{{3, 17, 42}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].Released != 3 {
		t.Fatalf("released = %d, want 3", res.Tasks[0].Released)
	}
}

// Invariant: under FloatingNPR, consecutive preemptions of one job are at
// least Q apart on the job's execution-time clock.
func TestFNPRSpacingInvariant(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 1, T: 7, Q: 1, Prio: 0},
		{Name: "m", C: 3, T: 19, Q: 2, Prio: 1},
		{Name: "lo", C: 25, T: 101, Q: 4, Prio: 2},
	}
	fns := []delay.Function{nil, delay.Constant(0.5, 3), delay.Constant(1, 25)}
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FloatingNPR,
		Horizon: 500, Delay: fns,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		q := ts[j.Task].Q
		for k := 1; k < len(j.PreemptExecs); k++ {
			gap := j.PreemptExecs[k] - j.PreemptExecs[k-1]
			if gap < q-1e-6 {
				t.Fatalf("job %d/%d preemption spacing %g < Q=%g", j.Task, j.Job, gap, q)
			}
		}
		if len(j.PreemptExecs) > 0 && j.PreemptExecs[0] < q-1e-6 {
			t.Fatalf("job %d/%d first preemption at exec %g < Q=%g", j.Task, j.Job, j.PreemptExecs[0], q)
		}
	}
	if res.Tasks[2].Preemptions == 0 {
		t.Fatal("scenario produced no preemptions; invariant untested")
	}
}

// Cross-check: preemption counts under FNPR never exceed fully-preemptive.
func TestFNPRReducesPreemptions(t *testing.T) {
	ts := task.Set{
		{Name: "h1", C: 1, T: 5, Q: 1, Prio: 0},
		{Name: "h2", C: 2, T: 13, Q: 2, Prio: 1},
		{Name: "lo", C: 20, T: 97, Q: 6, Prio: 2},
	}
	run := func(m Mode) int {
		res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: m, Horizon: 1000})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, st := range res.Tasks {
			total += st.Preemptions
		}
		return total
	}
	fp := run(FullyPreemptive)
	np := run(FloatingNPR)
	if np > fp {
		t.Fatalf("FNPR preemptions %d exceed fully-preemptive %d", np, fp)
	}
	if fp == 0 {
		t.Fatal("no preemptions at all; scenario too weak")
	}
}

func TestTimelineAndSummaryRender(t *testing.T) {
	ts := twoTasks()
	res, err := Run(Config{Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline(1)
	if !strings.Contains(tl, "hi") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline rendering broken:\n%s", tl)
	}
	sum := res.Summary()
	for _, want := range []string{"task", "hi", "lo", "idle"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestStringers(t *testing.T) {
	if FixedPriority.String() != "FP" || EDF.String() != "EDF" {
		t.Fatal("policy strings wrong")
	}
	if FullyPreemptive.String() == "" || FloatingNPR.String() == "" || NonPreemptive.String() == "" {
		t.Fatal("mode strings empty")
	}
	if EvPreempt.String() != "preempt" {
		t.Fatal("event kind strings wrong")
	}
	if Policy(9).String() == "" || Mode(9).String() == "" || EventKind(99).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
	e := Event{Time: 1, Kind: EvStart, Task: 0, Job: 1}
	if !strings.Contains(e.String(), "start") {
		t.Fatal("event string broken")
	}
}

// Regression: simultaneous higher-priority releases must cause exactly one
// preemption of the running job and no zero-progress preemption of an
// intermediate job (the dispatcher waits for the whole release batch).
func TestSimultaneousReleasesNoSpuriousPreemption(t *testing.T) {
	ts := task.Set{
		{Name: "h1", C: 1, T: 100, Prio: 0},
		{Name: "h2", C: 1, T: 100, Prio: 1},
		{Name: "lo", C: 10, T: 100, Prio: 2},
	}
	// lo starts at 0; h2 and h1 both arrive at t=3. Order the releases so
	// the LOWER-priority h2 is processed first — the dispatcher must not
	// start h2 and then preempt it for h1.
	res, err := Run(Config{
		Tasks: ts, Policy: FixedPriority, Mode: FullyPreemptive,
		Horizon:  50,
		Releases: [][]float64{{3}, {3}, {0}},
		Delay: []delay.Function{
			delay.Constant(5, 1), delay.Constant(5, 1), delay.Constant(0.5, 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[2].Preemptions; got != 1 {
		t.Fatalf("lo preemptions = %d, want 1", got)
	}
	if res.Tasks[0].Preemptions != 0 || res.Tasks[1].Preemptions != 0 {
		t.Fatalf("high tasks preempted: %d, %d — spurious zero-progress preemption",
			res.Tasks[0].Preemptions, res.Tasks[1].Preemptions)
	}
	// h1 runs before h2 despite h2's release being processed first.
	var first int = -1
	for _, e := range res.Events {
		if e.Kind == EvStart && e.Time > 2 {
			first = e.Task
			break
		}
	}
	if first != 0 {
		t.Fatalf("first dispatched high task = %d, want 0 (h1)", first)
	}
}

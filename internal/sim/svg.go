package sim

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVGTimelineOptions control schedule rendering.
type SVGTimelineOptions struct {
	// Width and Height in pixels (defaults 900 x 60 per task + margins).
	Width, Height int
	// From and To clip the rendered time window; zero values mean the
	// whole horizon.
	From, To float64
	// Title is drawn above the chart.
	Title string
}

var taskColors = []string{
	"#1f77b4", "#2ca02c", "#ff7f0e", "#9467bd", "#d62728", "#17becf",
	"#8c564b", "#7f7f7f",
}

// WriteSVGTimeline renders the schedule as a Gantt chart: one row per task,
// filled segments where a job of the task holds the processor, triangles at
// releases, red ticks at preemptions and red crosses at deadline misses.
func (r *Result) WriteSVGTimeline(w io.Writer, opt SVGTimelineOptions) error {
	from, to := opt.From, opt.To
	if to <= from {
		from, to = 0, r.Config.Horizon
	}
	n := len(r.Config.Tasks)
	const (
		marginL = 90
		marginR = 20
		marginT = 40
		marginB = 40
		rowGap  = 12
	)
	rowH := 36
	width := opt.Width
	if width <= 0 {
		width = 900
	}
	height := opt.Height
	if height <= 0 {
		height = marginT + marginB + n*(rowH+rowGap)
	}
	plotW := float64(width - marginL - marginR)
	if plotW <= 0 || to <= from {
		return fmt.Errorf("sim: invalid timeline geometry")
	}
	px := func(t float64) float64 { return marginL + plotW*(t-from)/(to-from) }
	rowY := func(i int) int { return marginT + i*(rowH+rowGap) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15">%s</text>`+"\n", marginL, xmlEscape(opt.Title))
	}
	// Row labels and baselines.
	for i := 0; i < n; i++ {
		y := rowY(i)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="end">%s</text>`+"\n",
			marginL-8, y+rowH/2+4, xmlEscape(r.Config.Tasks[i].Name))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			marginL, y+rowH, width-marginR, y+rowH)
	}
	// Execution segments from the event log.
	curTask, curFrom := -1, 0.0
	emitSeg := func(task int, a, z float64) {
		a, z = math.Max(a, from), math.Min(z, to)
		if z <= a {
			return
		}
		y := rowY(task)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.2f" height="%d" fill="%s" fill-opacity="0.8"/>`+"\n",
			px(a), y, px(z)-px(a), rowH, taskColors[task%len(taskColors)])
	}
	for _, e := range r.Events {
		switch e.Kind {
		case EvStart, EvResume:
			curTask, curFrom = e.Task, e.Time
		case EvPreempt, EvFinish:
			if curTask == e.Task {
				emitSeg(e.Task, curFrom, e.Time)
				curTask = -1
			}
		}
	}
	if curTask >= 0 {
		emitSeg(curTask, curFrom, r.Config.Horizon)
	}
	// Markers.
	for _, e := range r.Events {
		if e.Time < from || e.Time > to {
			continue
		}
		x := px(e.Time)
		y := rowY(e.Task)
		switch e.Kind {
		case EvRelease:
			fmt.Fprintf(&b, `<path d="M %.1f %d l 5 -8 l -10 0 z" fill="black"/>`+"\n", x, y+rowH)
		case EvPreempt:
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="red" stroke-width="2"/>`+"\n",
				x, y-2, x, y+rowH+2)
		case EvMiss:
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="14" fill="red" text-anchor="middle">x</text>`+"\n",
				x, y-4)
		}
	}
	// Time axis.
	axisY := rowY(n-1) + rowH + 20
	for i := 0; i <= 6; i++ {
		tt := from + (to-from)*float64(i)/6
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%.4g</text>`+"\n",
			px(tt), axisY, tt)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;").Replace(s)
}

package synth

import (
	"fmt"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
)

// This file provides structured program generators modelled on the shapes of
// classic WCET benchmark kernels. Unlike the random DAGs of CFG(), these
// have the loop nests, working sets and reuse patterns that give each task a
// characteristic preemption-delay profile — useful for examples, benchmarks
// and tests that need realistic (rather than adversarial) inputs.

// MatMulLike builds a matrix-multiply-shaped task: a triple loop nest over
// an n x n working set with strong reuse — the delay profile is high and
// flat through the kernel (the whole working set stays useful).
func MatMulLike(n int, unit float64, baseLine cache.Line) (*cfg.Graph, cache.AccessMap) {
	g := cfg.New()
	init := g.AddSimple("init", unit, unit)
	iH := g.AddSimple("i-head", unit/4, unit/4)
	jH := g.AddSimple("j-head", unit/4, unit/4)
	kB := g.AddSimple("k-body", unit, unit*1.5)
	done := g.AddSimple("done", unit, unit)
	g.MustEdge(init, iH)
	g.MustEdge(iH, jH)
	g.MustEdge(jH, kB)
	g.MustEdge(kB, kB) // k loop as a self-loop
	g.MustEdge(kB, jH) // j back edge
	g.MustEdge(jH, iH) // i back edge
	g.MustEdge(iH, done)
	g.LoopBounds[iH] = cfg.Bound{Min: n, Max: n}
	g.LoopBounds[jH] = cfg.Bound{Min: n, Max: n}
	g.LoopBounds[kB] = cfg.Bound{Min: n, Max: n}

	// Working set: rows of A, columns of B, C accumulator.
	var a, b, c []cache.Line
	for i := 0; i < n; i++ {
		a = append(a, baseLine+cache.Line(i))
		b = append(b, baseLine+cache.Line(n+i))
		c = append(c, baseLine+cache.Line(2*n+i))
	}
	acc := cache.AccessMap{
		init: append(append(append([]cache.Line{}, a...), b...), c...),
		kB:   append(append([]cache.Line{}, a...), b...),
		jH:   c,
	}
	return g, acc
}

// BSortLike builds a bubble-sort-shaped task: a double loop over one array,
// every pass touching the whole working set — high reuse, delay profile
// nearly constant until the final writeback.
func BSortLike(n int, unit float64, baseLine cache.Line) (*cfg.Graph, cache.AccessMap) {
	g := cfg.New()
	load := g.AddSimple("load", unit, unit*1.5)
	outer := g.AddSimple("outer", unit/4, unit/4)
	inner := g.AddSimple("inner", unit/2, unit)
	swap := g.AddSimple("swap", unit/4, unit/2)
	flush := g.AddSimple("flush", unit, unit)
	g.MustEdge(load, outer)
	g.MustEdge(outer, inner)
	g.MustEdge(inner, swap)
	g.MustEdge(swap, inner) // inner back edge
	g.MustEdge(inner, outer)
	g.MustEdge(outer, flush)
	g.LoopBounds[outer] = cfg.Bound{Min: n, Max: n}
	g.LoopBounds[inner] = cfg.Bound{Min: 1, Max: n}

	var arr []cache.Line
	for i := 0; i < n; i++ {
		arr = append(arr, baseLine+cache.Line(i))
	}
	acc := cache.AccessMap{
		load:  arr,
		inner: arr,
		swap:  arr[:2],
		flush: arr,
	}
	return g, acc
}

// CRCLike builds a checksum-shaped task: a single long loop streaming over
// input (no reuse) with a small lookup table (strong reuse) — the delay
// profile is dominated by the table, low and flat.
func CRCLike(iters int, unit float64, baseLine cache.Line) (*cfg.Graph, cache.AccessMap) {
	g := cfg.New()
	setup := g.AddSimple("setup", unit, unit)
	loop := g.AddSimple("loop", unit/2, unit)
	final := g.AddSimple("final", unit/2, unit/2)
	g.MustEdge(setup, loop)
	g.MustEdge(loop, loop)
	g.MustEdge(loop, final)
	g.LoopBounds[loop] = cfg.Bound{Min: iters, Max: iters}

	table := []cache.Line{baseLine, baseLine + 1, baseLine + 2, baseLine + 3}
	acc := cache.AccessMap{
		setup: table,
		loop:  table,
		final: table[:1],
	}
	return g, acc
}

// FSMLike builds a state-machine-shaped task: a branchy diamond cascade with
// per-state working sets — the delay profile varies block to block, giving
// Algorithm 1 structure to exploit.
func FSMLike(states int, unit float64, baseLine cache.Line) (*cfg.Graph, cache.AccessMap) {
	if states < 1 {
		states = 1
	}
	g := cfg.New()
	acc := make(cache.AccessMap)
	entry := g.AddSimple("entry", unit/2, unit/2)
	prev := entry
	for s := 0; s < states; s++ {
		a := g.AddSimple(fmt.Sprintf("s%d-a", s), unit, unit*2)
		b := g.AddSimple(fmt.Sprintf("s%d-b", s), unit/2, unit)
		join := g.AddSimple(fmt.Sprintf("s%d-join", s), unit/4, unit/4)
		g.MustEdge(prev, a)
		g.MustEdge(prev, b)
		g.MustEdge(a, join)
		g.MustEdge(b, join)
		// Each state owns a small working set; arm "a" uses twice as
		// much as arm "b".
		base := baseLine + cache.Line(4*s)
		acc[a] = []cache.Line{base, base + 1, base + 2, base + 3}
		acc[b] = []cache.Line{base, base + 1}
		acc[join] = []cache.Line{base}
		prev = join
	}
	exit := g.AddSimple("exit", unit/2, unit/2)
	g.MustEdge(prev, exit)
	return g, acc
}

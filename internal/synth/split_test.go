package synth

import "testing"

func TestSubSeedDeterministic(t *testing.T) {
	for _, c := range []struct{ point, trial int }{{0, 0}, {3, 17}, {11, 199}} {
		a := SubSeed(42, c.point, c.trial)
		b := SubSeed(42, c.point, c.trial)
		if a != b {
			t.Fatalf("SubSeed(42,%d,%d) not deterministic: %d vs %d", c.point, c.trial, a, b)
		}
	}
}

func TestSubSeedDistinctAcrossShards(t *testing.T) {
	// A campaign-sized grid must not collide: collisions would silently
	// duplicate trials and bias acceptance ratios.
	seen := make(map[int64][2]int)
	for point := 0; point < 64; point++ {
		for trial := 0; trial < 512; trial++ {
			s := SubSeed(7, point, trial)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], point, trial, s)
			}
			seen[s] = [2]int{point, trial}
		}
	}
}

func TestSubSeedSensitiveToCampaignSeed(t *testing.T) {
	if SubSeed(1, 0, 0) == SubSeed(2, 0, 0) {
		t.Fatal("different campaign seeds produced the same shard seed")
	}
}

func TestSubRandStreamsDiffer(t *testing.T) {
	a, b := SubRand(1, 0, 0), SubRand(1, 0, 1)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("adjacent trial sub-streams are identical")
	}
}

package synth

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/cache"
)

func TestUUniFastSumsAndBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		u := 0.1 + r.Float64()*0.9
		us := UUniFast(r, n, u)
		if len(us) != n {
			t.Fatalf("got %d utilizations, want %d", len(us), n)
		}
		var sum float64
		for _, v := range us {
			if v < 0 || v > u+1e-12 {
				t.Fatalf("utilization %g outside [0,%g]", v, u)
			}
			sum += v
		}
		if math.Abs(sum-u) > 1e-9 {
			t.Fatalf("sum = %g, want %g", sum, u)
		}
	}
}

func TestLogUniformPeriods(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ps := LogUniformPeriods(r, 200, 10, 1000, false)
	for _, p := range ps {
		if p < 10 || p > 1000 {
			t.Fatalf("period %g outside range", p)
		}
	}
	rounded := LogUniformPeriods(r, 50, 10, 1000, true)
	for _, p := range rounded {
		if p != math.Round(p) {
			t.Fatalf("period %g not integral", p)
		}
		if p < 10 {
			t.Fatalf("rounded period %g below lo", p)
		}
	}
}

func TestTaskSetGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ts, err := TaskSet(r, TaskSetParams{
		N: 5, Utilization: 0.7, PeriodLo: 10, PeriodHi: 1000,
		RoundPeriod: true, QFraction: 0.2, MinQ: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("got %d tasks", len(ts))
	}
	if math.Abs(ts.Utilization()-0.7) > 0.05 {
		// C is derived from possibly-rounded periods; allow slack.
		t.Fatalf("utilization %g far from 0.7", ts.Utilization())
	}
	for i, tk := range ts {
		if tk.Q <= 0 || tk.Q > tk.C {
			t.Fatalf("task %d Q=%g outside (0,C]", i, tk.Q)
		}
	}
	// RM order.
	for i := 1; i < len(ts); i++ {
		if ts[i-1].T > ts[i].T {
			t.Fatal("not RM sorted")
		}
	}
}

func TestTaskSetValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	if _, err := TaskSet(r, TaskSetParams{N: 0, Utilization: 0.5, PeriodLo: 1, PeriodHi: 10}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := TaskSet(r, TaskSetParams{N: 2, Utilization: 0, PeriodLo: 1, PeriodHi: 10}); err == nil {
		t.Fatal("accepted U=0")
	}
	if _, err := TaskSet(r, TaskSetParams{N: 2, Utilization: 0.5, PeriodLo: 10, PeriodHi: 1}); err == nil {
		t.Fatal("accepted inverted period range")
	}
}

func TestCFGGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, acc, err := CFG(r, CFGParams{
		Blocks: 20, MaxFanout: 3,
		EMinLo: 1, EMinHi: 5, ESpread: 3,
		Lines: 32, AccessesPerBloc: 6, Reuse: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if !g.IsAcyclic() {
		t.Fatal("generated graph has cycles")
	}
	if _, err := g.AnalyzeOffsets(); err != nil {
		t.Fatalf("offsets failed on generated graph: %v", err)
	}
	// Accesses stay within the line pool.
	for _, trace := range acc {
		for _, l := range trace {
			if l >= 32 {
				t.Fatalf("access %d outside pool", l)
			}
		}
	}
	// The UCB pipeline runs end to end.
	cc := cache.Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 1}
	if _, err := cache.AnalyzeUCB(g, acc, cc); err != nil {
		t.Fatalf("UCB on generated workload: %v", err)
	}
}

func TestCFGValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if _, _, err := CFG(r, CFGParams{Blocks: 1}); err == nil {
		t.Fatal("accepted single block")
	}
}

func TestDelayFunctionGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		c := 10 + r.Float64()*1000
		maxV := r.Float64() * 20
		f := DelayFunction(r, c, maxV, 1+r.Intn(10))
		if f.Domain() != c {
			t.Fatalf("domain %g, want %g", f.Domain(), c)
		}
		_, fm := f.Max()
		if fm > maxV {
			t.Fatalf("max %g exceeds %g", fm, maxV)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := UUniFast(rand.New(rand.NewSource(9)), 5, 0.8)
	b := UUniFast(rand.New(rand.NewSource(9)), 5, 0.8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UUniFast not deterministic under equal seeds")
		}
	}
}

package synth

import (
	"testing"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/core"
	"fnpr/internal/delay"
)

// analyse runs the full pipeline on a generated program and returns the
// delay function.
func analyse(t *testing.T, g *cfg.Graph, acc cache.AccessMap) *delay.Piecewise {
	t.Helper()
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	cc := cache.Config{Sets: 32, Assoc: 2, LineBytes: 16, ReloadCost: 1}
	ucb, err := cache.AnalyzeUCB(col.Graph, cache.RemapAccesses(col, acc), cc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := delay.FromUCB(off, ucb)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMatMulLikeProfile(t *testing.T) {
	g, acc := MatMulLike(4, 2, 0)
	f := analyse(t, g, acc)
	// Strong reuse: the delay is high through the kernel (>= working set
	// of A and B rows = 8 lines) and positive nearly everywhere.
	_, fm := f.Max()
	if fm < 8 {
		t.Fatalf("matmul peak delay = %g, want >= 8", fm)
	}
	mid := f.Eval(f.Domain() / 2)
	if mid < fm/2 {
		t.Fatalf("matmul mid-kernel delay %g should be near the peak %g", mid, fm)
	}
}

func TestBSortLikeProfile(t *testing.T) {
	g, acc := BSortLike(6, 2, 100)
	f := analyse(t, g, acc)
	_, fm := f.Max()
	if fm < 6 {
		t.Fatalf("bsort peak delay = %g, want >= 6 (whole array useful)", fm)
	}
}

func TestCRCLikeProfile(t *testing.T) {
	g, acc := CRCLike(50, 1, 200)
	f := analyse(t, g, acc)
	// Small table: delay bounded by 4 lines.
	_, fm := f.Max()
	if fm > 4 {
		t.Fatalf("crc peak delay = %g, want <= 4 (table only)", fm)
	}
	if fm <= 0 {
		t.Fatal("crc should have a nonzero delay profile")
	}
}

func TestFSMLikeProfile(t *testing.T) {
	g, acc := FSMLike(5, 2, 300)
	f := analyse(t, g, acc)
	// Branchy with per-state sets: profile must vary (not constant).
	if f.Pieces() < 3 {
		t.Fatalf("fsm profile has %d pieces, want variety", f.Pieces())
	}
	// Defensive: degenerate argument.
	g1, acc1 := FSMLike(0, 1, 0)
	if _, err := g1.AnalyzeOffsets(); err != nil {
		t.Fatalf("FSMLike(0): %v", err)
	}
	_ = acc1
}

// The generated kernels have genuinely different Algorithm 1 behaviour: the
// flat-profile kernels gain little over the state of the art, the branchy
// one gains more (relative structure matters, not absolute values).
func TestProgramProfilesDiffer(t *testing.T) {
	type gen func() (*cfg.Graph, cache.AccessMap)
	kernels := map[string]gen{
		"matmul": func() (*cfg.Graph, cache.AccessMap) { return MatMulLike(4, 2, 0) },
		"fsm":    func() (*cfg.Graph, cache.AccessMap) { return FSMLike(6, 2, 100) },
	}
	gain := map[string]float64{}
	for name, mk := range kernels {
		g, acc := mk()
		f := analyse(t, g, acc)
		_, fm := f.Max()
		q := fm + 5
		alg, err := core.Analyze(nil, f, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		soa, err := core.Analyze(nil, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			t.Fatal(err)
		}
		if alg.TotalDelay > 0 {
			gain[name] = soa.TotalDelay / alg.TotalDelay
		} else {
			gain[name] = 1
		}
	}
	if gain["fsm"] <= gain["matmul"] {
		t.Fatalf("expected the branchy FSM profile (%.2fx) to gain more than flat matmul (%.2fx)",
			gain["fsm"], gain["matmul"])
	}
}

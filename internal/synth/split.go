package synth

import "math/rand"

// This file provides splittable seed derivation for sharded experiment
// campaigns. A campaign that fans its trials out over a worker pool cannot
// share one sequential *rand.Rand without making the draw order — and hence
// every result — depend on goroutine scheduling. Instead each (point, trial)
// shard derives its own seed from the campaign seed through SplitMix64, a
// bijective 64-bit finalizer with full avalanche (Steele, Lea & Flood's
// SplittableRandom construction; also the stream-seeding mix of xoshiro).
// The derived seed is a pure function of (seed, point, trial), so a campaign
// produces bit-identical results for any worker count, including one.
//
// SplitMix64 is bijective for a fixed increment, so two shards of the same
// campaign collide only if their (point, trial) pairs collide; across
// campaign seeds the mixing makes correlated sub-streams astronomically
// unlikely (no structure survives three rounds of the finalizer).

// splitmix64 advances one SplitMix64 state step and returns the mixed
// output: the golden-gamma increment followed by the MurmurHash3-style
// 64-bit finalizer (variant by David Stafford, mix 13).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives the deterministic seed of one (point, trial) shard of a
// campaign seeded with seed. The derivation chains three SplitMix64 rounds —
// one per input — so shards that differ in any coordinate (or campaigns that
// differ in seed) get unrelated streams, while the same coordinates always
// reproduce the same seed regardless of evaluation order or worker count.
func SubSeed(seed int64, point, trial int) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ uint64(point))
	x = splitmix64(x ^ uint64(trial))
	return int64(x)
}

// SubRand returns a *rand.Rand seeded for the (point, trial) shard — the
// generator a campaign worker draws one trial's inputs from.
func SubRand(seed int64, point, trial int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(seed, point, trial)))
}

// Package synth generates synthetic workloads: task sets (UUniFast
// utilizations, log-uniform periods), control-flow graphs with
// locality-exhibiting memory accesses, and piecewise preemption-delay
// functions. All generators are seeded and deterministic, so experiments are
// reproducible.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
	"fnpr/internal/delay"
	"fnpr/internal/task"
)

// UUniFast draws n task utilizations summing to u, uniformly over the valid
// simplex (Bini & Buttazzo's UUniFast algorithm).
func UUniFast(r *rand.Rand, n int, u float64) []float64 {
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	if n > 0 {
		out[n-1] = sum
	}
	return out
}

// LogUniformPeriods draws n periods log-uniformly from [lo, hi], rounded to
// integers when round is set (keeps hyperperiods finite).
func LogUniformPeriods(r *rand.Rand, n int, lo, hi float64, round bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		p := math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
		if round {
			p = math.Round(p)
			if p < math.Ceil(lo) {
				p = math.Ceil(lo)
			}
		}
		out[i] = p
	}
	return out
}

// TaskSetParams controls TaskSet generation.
type TaskSetParams struct {
	N           int     // number of tasks
	Utilization float64 // total utilization
	PeriodLo    float64 // period range (log-uniform)
	PeriodHi    float64
	RoundPeriod bool
	// QFraction sets each task's NPR length to QFraction * C (clamped to
	// at least MinQ); 0 leaves Q unset for later assignment via npr.
	QFraction float64
	MinQ      float64
}

// TaskSet draws a random task set with rate-monotonic priorities.
func TaskSet(r *rand.Rand, p TaskSetParams) (task.Set, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("synth: need at least one task, got %d", p.N)
	}
	if p.Utilization <= 0 || p.Utilization > 1 {
		return nil, fmt.Errorf("synth: utilization %g outside (0,1]", p.Utilization)
	}
	if p.PeriodLo <= 0 || p.PeriodHi < p.PeriodLo {
		return nil, fmt.Errorf("synth: invalid period range [%g,%g]", p.PeriodLo, p.PeriodHi)
	}
	utils := UUniFast(r, p.N, p.Utilization)
	periods := LogUniformPeriods(r, p.N, p.PeriodLo, p.PeriodHi, p.RoundPeriod)
	ts := make(task.Set, 0, p.N)
	for i := 0; i < p.N; i++ {
		c := utils[i] * periods[i]
		if c <= 0 {
			c = math.Min(0.01*periods[i], periods[i])
		}
		q := 0.0
		if p.QFraction > 0 {
			q = math.Max(p.QFraction*c, p.MinQ)
			if q > c {
				q = c
			}
		}
		ts = append(ts, task.Task{
			Name: fmt.Sprintf("t%d", i),
			C:    c, T: periods[i], Q: q,
		})
	}
	ts.AssignRateMonotonic()
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// CFGParams controls random control-flow graph generation.
type CFGParams struct {
	Blocks int // number of basic blocks (>= 2)
	// MaxFanout bounds the successors per block (>= 1).
	MaxFanout int
	// EMinLo/EMinHi bound per-block minimum execution times; EMax adds a
	// uniform [0, ESpread] on top of EMin.
	EMinLo, EMinHi, ESpread float64
	// Lines is the size of the task's memory-line pool; AccesssPerBlock
	// bounds the accesses emitted per block. Reuse is the probability
	// that an access revisits a previously used line (temporal
	// locality), which is what makes UCBs non-trivial.
	Lines           int
	AccessesPerBloc int
	Reuse           float64
}

// CFG draws a random layered DAG with per-block memory accesses.
func CFG(r *rand.Rand, p CFGParams) (*cfg.Graph, cache.AccessMap, error) {
	if p.Blocks < 2 {
		return nil, nil, fmt.Errorf("synth: need >= 2 blocks, got %d", p.Blocks)
	}
	if p.MaxFanout < 1 {
		p.MaxFanout = 2
	}
	if p.EMinLo <= 0 {
		p.EMinLo = 1
	}
	if p.EMinHi < p.EMinLo {
		p.EMinHi = p.EMinLo
	}
	if p.Lines <= 0 {
		p.Lines = 16
	}
	g := cfg.New()
	acc := make(cache.AccessMap)
	ids := make([]cfg.BlockID, p.Blocks)
	var used []cache.Line
	for i := 0; i < p.Blocks; i++ {
		emin := p.EMinLo + r.Float64()*(p.EMinHi-p.EMinLo)
		emax := emin + r.Float64()*p.ESpread
		ids[i] = g.AddSimple(fmt.Sprintf("b%d", i), emin, emax)
		if i > 0 {
			k := 1 + r.Intn(p.MaxFanout)
			for j := 0; j < k; j++ {
				g.MustEdge(ids[r.Intn(i)], ids[i])
			}
		}
		na := r.Intn(p.AccessesPerBloc + 1)
		var trace []cache.Line
		for a := 0; a < na; a++ {
			var l cache.Line
			if len(used) > 0 && r.Float64() < p.Reuse {
				l = used[r.Intn(len(used))]
			} else {
				l = cache.Line(r.Intn(p.Lines))
				used = append(used, l)
			}
			trace = append(trace, l)
		}
		if len(trace) > 0 {
			acc[ids[i]] = trace
		}
	}
	return g, acc, nil
}

// DelayFunction draws a random piecewise-constant delay function on [0, c]
// with values in [0, maxV].
func DelayFunction(r *rand.Rand, c, maxV float64, pieces int) *delay.Piecewise {
	if pieces < 1 {
		pieces = 1
	}
	xs := []float64{0}
	for i := 1; i < pieces; i++ {
		next := xs[len(xs)-1] + (c-xs[len(xs)-1])*r.Float64()*0.7
		if next <= xs[len(xs)-1] || next >= c {
			break
		}
		xs = append(xs, next)
	}
	xs = append(xs, c)
	vs := make([]float64, len(xs)-1)
	for i := range vs {
		vs[i] = r.Float64() * maxV
	}
	p, err := delay.NewPiecewise(xs, vs)
	if err != nil {
		panic(err) // construction above is valid by design
	}
	return p
}

package fsfault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// write opens path through fs (append+create) and writes each payload as one
// Write call, returning the per-call errors.
func write(t *testing.T, fs FS, path string, payloads ...string) []error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	errs := make([]error, len(payloads))
	for i, p := range payloads {
		_, errs[i] = io.WriteString(f, p)
	}
	return errs
}

func readAll(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestFailWriteOrdinal pins the ENOSPC fault: exactly the targeted write
// fails, nothing of it reaches the file, and writes before/after pass.
func TestFailWriteOrdinal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := NewInjector(nil, Plan{FailWrite: 2})
	errs := write(t, in, path, "one\n", "two\n", "three\n")
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("untargeted writes failed: %v", errs)
	}
	if !errors.Is(errs[1], syscall.ENOSPC) {
		t.Fatalf("write 2: err %v, want ENOSPC", errs[1])
	}
	if got := readAll(t, path); got != "one\nthree\n" {
		t.Fatalf("file %q; the failed write must persist nothing", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired())
	}
	if !IsDiskFault(errs[1]) {
		t.Fatal("ENOSPC not classified as a disk fault")
	}
}

// TestShortWriteTearsPayload pins the torn-write fault: half the payload
// persists and io.ErrShortWrite is reported — the shape of a power loss
// mid-append.
func TestShortWriteTearsPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := NewInjector(nil, Plan{ShortWrite: 2})
	errs := write(t, in, path, "intact-1\n", "torn-record\n")
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !errors.Is(errs[1], io.ErrShortWrite) {
		t.Fatalf("torn write: err %v, want ErrShortWrite", errs[1])
	}
	if got := readAll(t, path); got != "intact-1\ntorn-r" {
		t.Fatalf("file %q; want the first half of the torn payload persisted", got)
	}
}

// TestFlipBitIsSilent pins the silent-corruption fault: the write reports
// full success while one chosen bit is inverted on disk — only a checksum
// can see it.
func TestFlipBitIsSilent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := NewInjector(nil, Plan{FlipBit: 1, FlipBitIndex: 0})
	errs := write(t, in, path, "abc")
	if errs[0] != nil {
		t.Fatalf("flipped write must report success, got %v", errs[0])
	}
	want := string([]byte{'a' ^ 1, 'b', 'c'})
	if got := readAll(t, path); got != want {
		t.Fatalf("file %q, want %q (bit 0 flipped)", got, want)
	}
	// Out-of-range indices clamp into the payload instead of panicking.
	path2 := filepath.Join(t.TempDir(), "g")
	in2 := NewInjector(nil, Plan{FlipBit: 1, FlipBitIndex: 9999})
	write(t, in2, path2, "xy")
	if got := readAll(t, path2); got == "xy" {
		t.Fatal("clamped flip did not corrupt the payload")
	}
}

// TestFailSyncLeavesDataIntact pins the fsync fault: Sync reports EIO, the
// bytes already written stay untouched, and the next Sync succeeds.
func TestFailSyncLeavesDataIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := NewInjector(nil, Plan{FailSync: 1})
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, "data\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 1: err %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 (untargeted): %v", err)
	}
	if got := readAll(t, path); got != "data\n" {
		t.Fatalf("file %q changed by a failed fsync", got)
	}
	if !IsDiskFault(syscall.EIO) || IsDiskFault(errors.New("plain")) {
		t.Fatal("IsDiskFault misclassifies")
	}
}

// TestCustomErrorsAndTempFiles pins that plans can override the fault errors
// and that CreateTemp handles route through the same counters (the journal's
// salvage rewrite writes through a temp file).
func TestCustomErrorsAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	custom := errors.New("custom disk error")
	in := NewInjector(nil, Plan{FailWrite: 1, WriteErr: custom})
	f, err := in.CreateTemp(dir, "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, "x"); !errors.Is(err, custom) {
		t.Fatalf("temp write: err %v, want custom error", err)
	}
	if in.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", in.Writes())
	}
}

// TestZeroPlanPassesThrough: an injector with an empty plan behaves exactly
// like the real filesystem.
func TestZeroPlanPassesThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := NewInjector(OS(), Plan{})
	for _, err := range write(t, in, path, "a\n", "b\n") {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := readAll(t, path); got != "a\nb\n" {
		t.Fatalf("file %q", got)
	}
	if in.Fired() != 0 {
		t.Fatalf("Fired = %d on an empty plan", in.Fired())
	}
}

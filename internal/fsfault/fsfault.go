// Package fsfault is the disk-fault injection seam of the durable-storage
// stack: a narrow filesystem interface (FS) the journal and the server's job
// store write through, a pass-through implementation backed by package os,
// and a deterministic Injector that makes precisely chosen operations fail
// the way real disks fail — a write refused with ENOSPC, a write torn short,
// an fsync reporting EIO, a bit silently flipped inside the payload.
//
// Faults are targeted by operation count (the Nth write, the Nth sync across
// the injector), so a test drives the exact same fault at the exact same
// byte every run — the same philosophy as internal/chaos, one layer down the
// stack. The injected failures mirror the OS contract: a failed or short
// write still persists its prefix (that is what makes torn tails), a failed
// fsync leaves the file contents untouched, and a bit flip succeeds silently
// (the whole point: only checksums can catch it).
//
// Crash-safety tests assert the end-to-end property the durability layer
// promises: every injected fault is either fully recovered (torn/corrupt
// tails truncated at the next open, valid prefix replayed byte-identically)
// or surfaced as a typed guard.ErrStorage error — never silent corruption.
package fsfault

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"

	"fnpr/internal/obs"
)

// File is the write-side file handle the durability layer uses. *os.File
// implements it.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	io.Closer
	// Name returns the file's path as opened.
	Name() string
}

// FS is the filesystem surface the journal and job store touch. OS is the
// real implementation; Injector wraps any FS with deterministic faults.
type FS interface {
	// OpenFile opens name like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads name like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Rename renames like os.Rename (the atomic-install step).
	Rename(oldpath, newpath string) error
	// Remove removes like os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
}

// OS returns the pass-through FS backed by package os. A nil FS everywhere
// in the durability stack means OS().
func OS() FS { return osFS{} }

// Real normalizes an FS handle: nil selects the pass-through OS
// implementation, anything else is returned as-is.
func Real(fs FS) FS {
	if fs == nil {
		return osFS{}
	}
	return fs
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Plan selects which faults an Injector fires, each targeted at one
// operation ordinal (1-based, counted across every file the injector opened;
// zero disables the fault). The counters advance deterministically with the
// write/sync sequence, so a fixed plan reproduces the same fault at the same
// byte on every run.
type Plan struct {
	// FailWrite makes the Nth write fail with WriteErr (default ENOSPC)
	// before any byte reaches the file — the disk-full refusal.
	FailWrite int64
	// WriteErr is the error FailWrite returns; nil selects syscall.ENOSPC.
	WriteErr error

	// ShortWrite tears the Nth write: only the first half of the payload
	// (at least one byte) is persisted and io.ErrShortWrite is reported —
	// the torn tail a power loss leaves behind.
	ShortWrite int64

	// FlipBit corrupts the Nth write silently: the write succeeds in full,
	// reports success, but bit FlipBitIndex of the payload is inverted on
	// its way to the device — detectable only by checksum.
	FlipBit int64
	// FlipBitIndex is the bit to invert, counted from the start of the
	// write's payload (bit k of byte k/8). It is clamped into the payload.
	FlipBitIndex int

	// FailSync makes the Nth Sync fail with SyncErr (default EIO). The
	// file's contents are untouched — the data simply is not known durable.
	FailSync int64
	// SyncErr is the error FailSync returns; nil selects syscall.EIO.
	SyncErr error
}

// Injector is a deterministic fault-injecting FS. Safe for concurrent use;
// operation ordinals are assigned in the order writes and syncs reach it.
type Injector struct {
	inner FS
	plan  Plan

	mu     sync.Mutex
	writes int64
	syncs  int64
	fired  int64
}

// NewInjector wraps inner (nil = the real OS) with the faults plan selects.
func NewInjector(inner FS, plan Plan) *Injector {
	if plan.WriteErr == nil {
		plan.WriteErr = syscall.ENOSPC
	}
	if plan.SyncErr == nil {
		plan.SyncErr = syscall.EIO
	}
	return &Injector{inner: Real(inner), plan: plan}
}

// Fired returns how many faults the injector has injected so far.
func (in *Injector) Fired() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Writes returns how many writes have reached the injector — for computing
// the ordinal a follow-up plan should target.
func (in *Injector) Writes() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.writes
}

// writeAction decides what happens to the next write.
type writeAction int

const (
	writePass writeAction = iota
	writeFail
	writeShort
	writeFlip
)

func (in *Injector) nextWrite() writeAction {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	switch in.writes {
	case in.plan.FailWrite:
		in.fired++
		obs.Default().Counter("fsfault.write_errors").Inc()
		return writeFail
	case in.plan.ShortWrite:
		in.fired++
		obs.Default().Counter("fsfault.short_writes").Inc()
		return writeShort
	case in.plan.FlipBit:
		in.fired++
		obs.Default().Counter("fsfault.bit_flips").Inc()
		return writeFlip
	}
	return writePass
}

func (in *Injector) nextSync() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.syncs++
	if in.syncs == in.plan.FailSync {
		in.fired++
		obs.Default().Counter("fsfault.sync_errors").Inc()
		return true
	}
	return false
}

// OpenFile implements FS; the returned handle routes writes and syncs
// through the fault plan.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

// CreateTemp implements FS; temp files get the same fault treatment (the
// journal's recovery rewrite goes through one).
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

// ReadFile implements FS (reads are never faulted — corruption is injected
// on the write side, where real disks corrupt).
func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error { return in.inner.Rename(oldpath, newpath) }

// Remove implements FS.
func (in *Injector) Remove(name string) error { return in.inner.Remove(name) }

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}

// faultFile applies the injector's plan to one open file.
type faultFile struct {
	File
	in *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch f.in.nextWrite() {
	case writeFail:
		return 0, f.in.plan.WriteErr
	case writeShort:
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		wrote, err := f.File.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, io.ErrShortWrite
	case writeFlip:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			idx := f.in.plan.FlipBitIndex
			if idx < 0 {
				idx = 0
			}
			if idx/8 >= len(q) {
				idx = (len(q) - 1) * 8
			}
			q[idx/8] ^= 1 << (idx % 8)
		}
		return f.File.Write(q)
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.in.nextSync() {
		return f.in.plan.SyncErr
	}
	return f.File.Sync()
}

// IsDiskFault reports whether err looks like a disk-level failure (ENOSPC,
// EIO, short write) — the classes the injector produces and the durability
// layer must convert into typed storage errors.
func IsDiskFault(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO) ||
		errors.Is(err, io.ErrShortWrite)
}

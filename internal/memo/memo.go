// Package memo implements the content-addressed result cache of the
// analysis stack: a sharded in-memory LRU that maps a canonical fingerprint
// of an analysis request — (delay function, Q, options), hashed by
// internal/core over delay.FingerprintOf — to its computed result, so a
// million identical or overlapping requests cost one walk.
//
// Correctness before speed. A wrong cache hit silently corrupts results, so
// the design is verify-on-use: the map key is a 64-bit fold of the request
// fingerprint (fast, fixed-size), but every entry stores the full
// fingerprint string and Get compares it before answering. A 64-bit
// collision therefore degrades to a miss (counted in memo.collisions) and
// the caller recomputes — the cache can be slow, never wrong. The
// differential battery in internal/core replays tens of thousands of random
// requests cache-on vs cache-off and asserts bit-identical results; the
// collision test forces two requests onto one primary key and asserts the
// second is verified, not served the first's result.
//
// Concurrency: the cache is sharded by primary key; each shard is an
// independently locked LRU list + map, so the sweep worker pool contends
// only when two workers land on one shard. Persist and Warm stream entries
// through internal/journal's checksummed record format, giving warm starts
// across restarts with the same torn-tail salvage and fingerprint-checked
// meta record the durable job store uses (DESIGN.md §13–14).
//
// Metrics (through internal/obs, catalogued in DESIGN.md §14): memo.hits,
// memo.misses, memo.puts, memo.evictions, memo.collisions,
// memo.persist.saved, memo.persist.loaded, memo.persist.rejected; gauges
// memo.entries and memo.bytes.
package memo

import (
	"container/list"
	"sync"

	"fnpr/internal/obs"
)

// DefaultMaxEntries bounds a cache whose Options did not say: generous
// enough for a full Figure-5-scale sweep (specs × grid ≈ hundreds) times a
// large Q-grid campaign, small enough that a resident cache stays in tens of
// megabytes for typical results.
const DefaultMaxEntries = 1 << 16

// defaultShards is the shard count when Options.Shards is zero; a power of
// two so the shard pick is a mask.
const defaultShards = 16

// Options configures a Cache.
type Options struct {
	// Shards is the number of independently locked LRU shards; it is
	// rounded up to a power of two. Zero selects 16.
	Shards int
	// MaxEntries bounds the total entry count across all shards; the
	// least-recently-used entry of the inserting shard is evicted beyond
	// it. Zero selects DefaultMaxEntries; negative means unbounded.
	MaxEntries int
	// Obs receives the cache's counters and gauges; nil collects nothing.
	Obs *obs.Scope
	// Codec serializes values for Persist/Warm. A cache without a codec
	// works fully in memory; Persist and Warm fail cleanly.
	Codec *Codec
}

// Cache is the sharded verify-on-use LRU. Safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64
	max    int // per-shard entry bound (total bound / shard count)
	codec  *Codec

	hits, misses, puts, evictions, collisions *obs.Counter
	entries, bytes                            *obs.Gauge
}

// shard is one locked LRU: primary key → list element, list front = most
// recently used.
type shard struct {
	mu sync.Mutex
	m  map[uint64]*list.Element
	ll *list.List
}

// entry is one cached value with its verification fingerprint.
type entry struct {
	key    uint64
	verify string
	value  any
	size   int64
}

// New builds a cache.
func New(opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two for mask addressing.
	p := 1
	for p < n {
		p <<= 1
	}
	max := opts.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	perShard := -1
	if max > 0 {
		perShard = (max + p - 1) / p
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &Cache{
		shards:     make([]shard, p),
		mask:       uint64(p - 1),
		max:        perShard,
		codec:      opts.Codec,
		hits:       opts.Obs.Counter("memo.hits"),
		misses:     opts.Obs.Counter("memo.misses"),
		puts:       opts.Obs.Counter("memo.puts"),
		evictions:  opts.Obs.Counter("memo.evictions"),
		collisions: opts.Obs.Counter("memo.collisions"),
		entries:    opts.Obs.Gauge("memo.entries"),
		bytes:      opts.Obs.Gauge("memo.bytes"),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*list.Element)
		c.shards[i].ll = list.New()
	}
	return c
}

// Get looks up key and, on a primary-key match, verifies the stored
// fingerprint against verify. A verify mismatch is a counted collision and
// reports a miss — the caller recomputes, so a folded-key collision can cost
// time but never correctness.
func (c *Cache) Get(key uint64, verify string) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	en := el.Value.(*entry)
	if en.verify != verify {
		sh.mu.Unlock()
		c.collisions.Inc()
		c.misses.Inc()
		return nil, false
	}
	sh.ll.MoveToFront(el)
	v := en.value
	sh.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// Put stores value under (key, verify); size is the caller's byte estimate,
// reported through the memo.bytes gauge. An existing entry under the same
// primary key is replaced (last writer wins — with equal verify strings the
// values are results of the same pure analysis, and with different ones the
// replaced entry would have been a collision-miss anyway).
func (c *Cache) Put(key uint64, verify string, value any, size int64) {
	if c == nil {
		return
	}
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		en := el.Value.(*entry)
		c.bytes.Add(float64(size - en.size))
		en.verify, en.value, en.size = verify, value, size
		sh.ll.MoveToFront(el)
		sh.mu.Unlock()
		c.puts.Inc()
		return
	}
	sh.m[key] = sh.ll.PushFront(&entry{key: key, verify: verify, value: value, size: size})
	var evicted *entry
	if c.max > 0 && sh.ll.Len() > c.max {
		back := sh.ll.Back()
		evicted = back.Value.(*entry)
		sh.ll.Remove(back)
		delete(sh.m, evicted.key)
	}
	sh.mu.Unlock()
	c.puts.Inc()
	c.entries.Add(1)
	c.bytes.Add(float64(size))
	if evicted != nil {
		c.evictions.Inc()
		c.entries.Add(-1)
		c.bytes.Add(float64(-evicted.size))
	}
}

// Len returns the total entry count across shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// snapshot copies every live entry (no particular order) for persistence;
// values are not copied, only referenced — cached values are immutable by
// contract.
func (c *Cache) snapshot() []*entry {
	var out []*entry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*entry))
		}
		sh.mu.Unlock()
	}
	return out
}

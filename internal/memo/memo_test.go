package memo

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/obs"
)

// testCodec stores float64 values as JSON numbers.
func testCodec() *Codec {
	return &Codec{
		Name: "test-float/1",
		Encode: func(v any) (json.RawMessage, error) {
			return json.Marshal(v.(float64))
		},
		Decode: func(data json.RawMessage) (any, int64, error) {
			var v float64
			if err := json.Unmarshal(data, &v); err != nil {
				return nil, 0, err
			}
			return v, 8, nil
		},
	}
}

func TestGetPutVerify(t *testing.T) {
	rec := obs.NewTestRecorder()
	c := New(Options{Obs: rec.Scope()})
	if _, ok := c.Get(1, "fp-a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "fp-a", 42.0, 8)
	v, ok := c.Get(1, "fp-a")
	if !ok || v.(float64) != 42.0 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// Same primary key, different fingerprint: the collision guard must
	// answer miss, never the other fingerprint's value.
	if v, ok := c.Get(1, "fp-b"); ok {
		t.Fatalf("collision served a wrong hit: %v", v)
	}
	if got := rec.Counter("memo.collisions"); got != 1 {
		t.Fatalf("memo.collisions = %d, want 1", got)
	}
	if got := rec.Counter("memo.hits"); got != 1 {
		t.Fatalf("memo.hits = %d, want 1", got)
	}
	if got := rec.Counter("memo.misses"); got != 2 {
		t.Fatalf("memo.misses = %d, want 2 (cold + collision)", got)
	}
}

func TestLRUEviction(t *testing.T) {
	rec := obs.NewTestRecorder()
	// One shard, four entries: inserting a fifth evicts the least recently
	// used.
	c := New(Options{Shards: 1, MaxEntries: 4, Obs: rec.Scope()})
	for i := uint64(0); i < 4; i++ {
		c.Put(i, fmt.Sprintf("fp-%d", i), float64(i), 8)
	}
	// Touch key 0 so key 1 is now the LRU.
	if _, ok := c.Get(0, "fp-0"); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(9, "fp-9", 9.0, 8)
	if _, ok := c.Get(1, "fp-1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(0, "fp-0"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if got := rec.Counter("memo.evictions"); got != 1 {
		t.Fatalf("memo.evictions = %d, want 1", got)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if got := rec.Registry().Gauge("memo.entries").Value(); got != 4 {
		t.Fatalf("memo.entries = %g, want 4", got)
	}
	if got := rec.Registry().Gauge("memo.bytes").Value(); got != 32 {
		t.Fatalf("memo.bytes = %g, want 32", got)
	}
}

func TestReplaceKeepsSingleEntry(t *testing.T) {
	rec := obs.NewTestRecorder()
	c := New(Options{Obs: rec.Scope()})
	c.Put(7, "fp", 1.0, 8)
	c.Put(7, "fp", 2.0, 16)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, ok := c.Get(7, "fp"); !ok || v.(float64) != 2.0 {
		t.Fatalf("Get = %v, %v; want 2", v, ok)
	}
	if got := rec.Registry().Gauge("memo.bytes").Value(); got != 16 {
		t.Fatalf("memo.bytes = %g, want 16 after replace", got)
	}
}

func TestPersistWarmRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.cache")
	c := New(Options{Codec: testCodec()})
	c.Put(1, "fp-a", 1.5, 8)
	c.Put(2, "fp-b", 2.5, 8)
	if err := c.Persist(path, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Codec: testCodec()})
	n, err := warm.Warm(path, journal.Options{})
	if err != nil || n != 2 {
		t.Fatalf("Warm = %d, %v; want 2, nil", n, err)
	}
	if v, ok := warm.Get(1, "fp-a"); !ok || v.(float64) != 1.5 {
		t.Fatalf("warmed Get(1) = %v, %v", v, ok)
	}
	if v, ok := warm.Get(2, "fp-b"); !ok || v.(float64) != 2.5 {
		t.Fatalf("warmed Get(2) = %v, %v", v, ok)
	}
	// The fingerprint still guards warmed entries.
	if _, ok := warm.Get(1, "fp-z"); ok {
		t.Fatal("warmed entry answered a mismatched fingerprint")
	}
}

func TestWarmRejectsForeignCodec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.cache")
	c := New(Options{Codec: testCodec()})
	c.Put(1, "fp", 1.0, 8)
	if err := c.Persist(path, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	other := New(Options{Codec: &Codec{
		Name:   "other/1",
		Encode: testCodec().Encode,
		Decode: testCodec().Decode,
	}})
	if _, err := other.Warm(path, journal.Options{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("foreign codec warm = %v, want ErrInvalidInput", err)
	}
}

func TestWarmMissingFileIsColdStart(t *testing.T) {
	c := New(Options{Codec: testCodec()})
	n, err := c.Warm(filepath.Join(t.TempDir(), "absent.cache"), journal.Options{})
	if err != nil || n != 0 {
		t.Fatalf("Warm(absent) = %d, %v; want 0, nil", n, err)
	}
}

func TestWarmSkipsUndecodableEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.cache")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(metaKey, persistMeta{Format: persistFormat, Codec: "test-float/1"}); err != nil {
		t.Fatal(err)
	}
	// One good entry, one with a value the codec rejects, one with a bad key.
	if err := j.Append(entryKeyPrefix+"1", persistEntry{Verify: "fp", Value: json.RawMessage(`3.25`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(entryKeyPrefix+"2", persistEntry{Verify: "fp", Value: json.RawMessage(`"not a float"`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(entryKeyPrefix+"zz-bad-hex!", persistEntry{Verify: "fp", Value: json.RawMessage(`1`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Codec: testCodec()})
	n, err := c.Warm(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Warm = %d entries, want 1 (others undecodable)", n)
	}
	if v, ok := c.Get(1, "fp"); !ok || v.(float64) != 3.25 {
		t.Fatalf("good entry missing after partial warm: %v, %v", v, ok)
	}
}

func TestPersistWithoutCodecFails(t *testing.T) {
	c := New(Options{})
	if err := c.Persist(filepath.Join(t.TempDir(), "x"), journal.Options{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("Persist without codec = %v, want ErrInvalidInput", err)
	}
	if _, err := c.Warm(filepath.Join(t.TempDir(), "x"), journal.Options{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("Warm without codec = %v, want ErrInvalidInput", err)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(1, "fp"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(1, "fp", 1.0, 8)
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if err := c.Persist("nowhere", journal.Options{}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Warm("nowhere", journal.Options{}); n != 0 || err != nil {
		t.Fatal("nil cache warm")
	}
}

// Journal-backed persistence: a cache file is an ordinary internal/journal
// log — checksummed records, torn-tail salvage on open — whose first record
// fingerprints the codec that wrote it, exactly like the sweep journals
// fingerprint their grid and the job manifest its params. A cache file
// written by a different codec (format evolution, a different value type) is
// rejected as invalid input rather than half-decoded.
package memo

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/obs"
)

// Codec serializes cached values for the persistence layer. Encode must
// round-trip bit-exactly through Decode — callers cache float-bearing
// analysis results, and a warmed cache must answer with the same bits the
// original run computed (the property the warm-start tests assert).
type Codec struct {
	// Name identifies the value encoding; it is stored in the cache file's
	// meta record and checked on Warm.
	Name string
	// Encode renders a cached value to its journal form.
	Encode func(v any) (json.RawMessage, error)
	// Decode parses a journal form back to the value and its size estimate.
	Decode func(data json.RawMessage) (any, int64, error)
}

// metaKey fingerprints a cache file; entryKeyPrefix prefixes one entry
// record per cached value.
const (
	metaKey        = "memo:meta"
	entryKeyPrefix = "memo:entry:"
)

// persistMeta is the cache file's identity record.
type persistMeta struct {
	Format string `json:"format"`
	Codec  string `json:"codec"`
}

// persistFormat names the file layout; bump on incompatible changes.
const persistFormat = "fnpr-memo/1"

// persistEntry is one journaled cache entry.
type persistEntry struct {
	Verify string          `json:"verify"`
	Size   int64           `json:"size"`
	Value  json.RawMessage `json:"value"`
}

// Persist writes the cache's current contents to path as a fresh journal
// (an existing file is replaced, not appended to — the cache is the source
// of truth, the file a snapshot). SyncEvery follows journal.Options.
func (c *Cache) Persist(path string, opts journal.Options) error {
	if c == nil {
		return nil
	}
	if c.codec == nil || c.codec.Encode == nil {
		return guard.Invalidf("memo: cache has no codec; cannot persist")
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return guard.Storagef(err, "memo: replacing cache file %s", path)
	}
	j, _, err := journal.OpenWith(path, opts)
	if err != nil {
		return err
	}
	saved := int64(0)
	err = func() error {
		if err := j.Append(metaKey, persistMeta{Format: persistFormat, Codec: c.codec.Name}); err != nil {
			return err
		}
		for i, en := range c.snapshot() {
			data, err := c.codec.Encode(en.value)
			if err != nil {
				return fmt.Errorf("memo: encoding entry %016x: %w", en.key, err)
			}
			rec := persistEntry{Verify: en.verify, Size: en.size, Value: data}
			if err := j.Append(entryKeyPrefix+strconv.FormatUint(en.key, 16), rec); err != nil {
				return err
			}
			saved = int64(i + 1)
		}
		return nil
	}()
	if cerr := j.Close(); cerr != nil && err == nil {
		err = cerr
	}
	obs.Default().Counter("memo.persist.saved").Add(saved)
	return err
}

// Warm loads a previously persisted cache file into c: the meta record is
// verified against the cache's codec, every entry record is decoded and
// Put. Undecodable individual entries are skipped (counted in
// memo.persist.rejected) — a stale or partially foreign file warms what it
// can; a file with a wrong or missing meta record is refused entirely. The
// journal layer has already salvaged any torn tail by the time records
// arrive here. Returns the number of entries loaded; a missing file is a
// clean zero (cold start).
func (c *Cache) Warm(path string, opts journal.Options) (int, error) {
	if c == nil {
		return 0, nil
	}
	if c.codec == nil || c.codec.Decode == nil {
		return 0, guard.Invalidf("memo: cache has no codec; cannot warm")
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return 0, nil
	}
	j, recs, err := journal.OpenWith(path, opts)
	if err != nil {
		return 0, err
	}
	j.Close() // read-only use: the open positioned us for appends we won't make
	latest := journal.Latest(recs)
	var meta persistMeta
	ok, err := journal.Get(latest, metaKey, &meta)
	if err != nil || !ok {
		return 0, guard.Invalidf("memo: %s is not a cache file (missing meta record)", path)
	}
	if meta.Format != persistFormat || meta.Codec != c.codec.Name {
		return 0, guard.Invalidf("memo: %s was written by codec %s/%s, this cache reads %s/%s",
			path, meta.Format, meta.Codec, persistFormat, c.codec.Name)
	}
	loaded, rejected := 0, int64(0)
	for key, data := range latest {
		hexKey, found := strings.CutPrefix(key, entryKeyPrefix)
		if !found {
			continue
		}
		pk, err := strconv.ParseUint(hexKey, 16, 64)
		if err != nil {
			rejected++
			continue
		}
		var rec persistEntry
		if err := json.Unmarshal(data, &rec); err != nil {
			rejected++
			continue
		}
		v, size, err := c.codec.Decode(rec.Value)
		if err != nil {
			rejected++
			continue
		}
		if size <= 0 {
			size = rec.Size
		}
		c.Put(pk, rec.Verify, v, size)
		loaded++
	}
	obs.Default().Counter("memo.persist.loaded").Add(int64(loaded))
	obs.Default().Counter("memo.persist.rejected").Add(rejected)
	return loaded, nil
}

package memo

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"fnpr/internal/journal"
	"fnpr/internal/obs"
)

// TestConcurrentMixedTraffic is the memo-level half of satellite torture:
// readers, writers, an eviction-heavy churner, and periodic Persist/Warm all
// hammer one small sharded cache. Run under -race (the CI race job does);
// correctness here is "no data race, no wrong hit" — every observed hit must
// carry the value that was Put under that exact (key, verify) pair.
func TestConcurrentMixedTraffic(t *testing.T) {
	rec := obs.NewTestRecorder()
	// Tiny capacity so eviction runs constantly; 4 shards so keys collide on
	// shard locks often.
	c := New(Options{Shards: 4, MaxEntries: 64, Obs: rec.Scope(), Codec: testCodec()})
	path := filepath.Join(t.TempDir(), "memo.cache")

	const (
		workers = 8
		iters   = 2000
		hotKeys = 32 // fits the cache: repeated touches must hit
	)
	value := func(k uint64) float64 { return float64(k) * 1.5 }
	verify := func(k uint64) string { return fmt.Sprintf("fp-%d", k) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Three quarters of the traffic hammers a hot set small
				// enough to stay resident (guaranteed hits); the rest is a
				// stream of never-repeated keys (guaranteed evictions).
				var k uint64
				if i%4 == 3 {
					k = 1<<32 + uint64(w*iters+i)
				} else {
					k = uint64((i*7 + w*13) % hotKeys)
				}
				if v, ok := c.Get(k, verify(k)); ok {
					if v.(float64) != value(k) {
						t.Errorf("key %d: hit returned %v, want %v", k, v, value(k))
						return
					}
				} else {
					c.Put(k, verify(k), value(k), 8)
				}
				// Deliberate primary-key collisions: a different verify
				// string must never be served the stored value.
				if i%17 == 0 {
					if v, ok := c.Get(k, "other-fingerprint"); ok {
						t.Errorf("key %d: collision served %v", k, v)
						return
					}
				}
			}
		}(w)
	}
	// Persistence racing the traffic: snapshot + rewrite the file while
	// writers churn, then warm a throwaway cache from whatever was captured.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := c.Persist(path, journal.Options{}); err != nil {
				t.Errorf("Persist: %v", err)
				return
			}
			side := New(Options{MaxEntries: 64, Codec: testCodec()})
			if _, err := side.Warm(path, journal.Options{}); err != nil {
				t.Errorf("Warm: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := rec.Counter("memo.hits"); got == 0 {
		t.Error("no hits observed; traffic pattern broken")
	}
	if got := rec.Counter("memo.evictions"); got == 0 {
		t.Error("no evictions observed; churn pattern broken")
	}
	if c.Len() > 64+3 { // per-shard rounding can exceed the total bound by at most shards-1
		t.Errorf("Len = %d, want <= 67", c.Len())
	}
	// The gauge must agree with a quiesced direct count.
	if got := rec.Registry().Gauge("memo.entries").Value(); int(got) != c.Len() {
		t.Errorf("memo.entries gauge %g disagrees with Len %d", got, c.Len())
	}
}

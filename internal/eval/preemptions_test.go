package eval

import (
	"testing"
)

func TestPreemptionsExperiment(t *testing.T) {
	p := DefaultPreemptionParams()
	p.Horizon = 12000 // shorter for the test; the binary uses 60000
	tbl, err := Preemptions(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := PreemptionChecks(tbl); err != nil {
		t.Fatal(err)
	}
	// The collation effect is material: at the largest Q the victim
	// suffers strictly fewer preemptions than fully preemptive.
	last := len(tbl.X) - 1
	if tbl.Series[0].Y[last] >= tbl.Series[1].Y[last] {
		t.Fatalf("no collation at Q=%g: FNPR %g vs FP %g",
			tbl.X[last], tbl.Series[0].Y[last], tbl.Series[1].Y[last])
	}
	// Delay follows the same direction at large Q.
	if tbl.Series[2].Y[last] > tbl.Series[3].Y[last]+1e-9 {
		t.Fatalf("FNPR delay above fully-preemptive at Q=%g", tbl.X[last])
	}
}

func TestPreemptionsValidation(t *testing.T) {
	if _, err := Preemptions(PreemptionParams{}); err == nil {
		t.Fatal("accepted empty parameters")
	}
	if _, err := Preemptions(PreemptionParams{Qs: []float64{1}, Horizon: 0}); err == nil {
		t.Fatal("accepted zero horizon")
	}
}

func TestPreemptionChecksDetectCorruption(t *testing.T) {
	p := DefaultPreemptionParams()
	p.Horizon = 6000
	p.Qs = p.Qs[:3]
	tbl, err := Preemptions(p)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Series[0].Y[0] = 1e9
	if err := PreemptionChecks(tbl); err == nil {
		t.Fatal("corrupted table passed checks")
	}
}

package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/exact"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/synth"
	"fnpr/internal/textplot"
)

// atlasFamilies names the synthetic delay-function families the pessimism
// atlas sweeps — the shapes that separate the bounds: front-loaded curves
// (Algorithm 1's point selection is nearly tight), back-loaded curves (the
// worst adversary strikes late, where Algorithm 1 over-charges early
// windows) and two-peak curves (the paper's motivating shape).
var atlasFamilies = []string{"front", "back", "twopeak"}

// AtlasParams configures the pessimism atlas: for every (family, Q) cell,
// generate random delay functions, compute the exact worst-case cumulative
// delay (schedule-graph exploration), Algorithm 1 and Equation 4, and
// tabulate the mean pessimism gaps — the figure the paper doesn't have.
type AtlasParams struct {
	// Seed makes the atlas reproducible; each cell draws from its own
	// sub-stream, so results are independent of the worker count.
	Seed int64
	// Qs is the grid of non-preemptive region lengths (the table's X).
	Qs []float64
	// FuncsPerCell is the number of random functions per (family, Q) cell.
	FuncsPerCell int
	// C is the victim WCET (every function's domain).
	C float64
	// MaxStates caps each exact exploration (0 = exact.DefaultMaxStates).
	MaxStates int
	// Workers sizes the worker pool over cells; <= 0 selects GOMAXPROCS.
	// Each worker owns one pooled exact.Explorer; the table is
	// bit-identical for every value.
	Workers int
	// Obs receives campaign progress events and metrics; nil falls back
	// to the guard's scope.
	Obs *obs.Scope
}

// DefaultAtlasParams returns the configuration the figures binary and the
// benchmarks use.
func DefaultAtlasParams() AtlasParams {
	return AtlasParams{
		Seed:         1,
		Qs:           []float64{4, 6, 8, 12},
		FuncsPerCell: 40,
		C:            40,
	}
}

// Validate rejects malformed parameters up front.
func (p AtlasParams) Validate() error {
	switch {
	case len(p.Qs) == 0:
		return guard.Invalidf("eval: atlas needs at least one Q")
	case p.FuncsPerCell <= 0:
		return guard.Invalidf("eval: FuncsPerCell %d, need > 0", p.FuncsPerCell)
	case math.IsNaN(p.C) || math.IsInf(p.C, 0) || p.C <= 0:
		return guard.Invalidf("eval: C %g, need finite > 0", p.C)
	}
	for _, q := range p.Qs {
		if math.IsNaN(q) || math.IsInf(q, 0) || q <= 0 {
			return guard.Invalidf("eval: Q %g, need finite > 0", q)
		}
		if q >= p.C {
			return guard.Invalidf("eval: Q %g must be below C %g", q, p.C)
		}
	}
	return nil
}

func (p AtlasParams) scope(g *guard.Ctx) *obs.Scope {
	if p.Obs != nil {
		return p.Obs
	}
	return g.Obs()
}

// atlasFunction draws one delay function of the given family: a
// piecewise-constant curve over [0, c) whose maximum stays safely below q
// (so every bound and the exact exploration converge), shaped so the
// families stress the bounds differently.
func atlasFunction(r *rand.Rand, fam string, c, q float64) (*delay.Piecewise, error) {
	maxV := q * (0.35 + 0.4*r.Float64())
	pieces := 3 + r.Intn(4)
	xs := make([]float64, 0, pieces+1)
	xs = append(xs, 0)
	for i := 1; i < pieces; i++ {
		xs = append(xs, c*(float64(i)+r.Float64()*0.6)/float64(pieces))
	}
	xs = append(xs, c)
	vs := make([]float64, pieces)
	for i := range vs {
		frac := float64(i) / float64(pieces-1)
		jitter := 0.75 + 0.25*r.Float64()
		switch fam {
		case "front":
			vs[i] = maxV * (1 - frac*0.9) * jitter
		case "back":
			vs[i] = maxV * (0.1 + frac*0.9) * jitter
		default: // twopeak: high ends, low middle
			vs[i] = maxV * (0.15 + 0.85*math.Abs(2*frac-1)) * jitter
		}
	}
	return delay.NewPiecewise(xs, vs)
}

// atlasCell is one (family, Q) grid point's aggregation.
type atlasCell struct {
	exact, alg1Gap, eq4Gap float64 // means over the cell's functions
	states, naiveStates    int     // explored states: pruned vs naive bound
}

// atlasCellRun computes one cell: FuncsPerCell random functions of the
// family, each measured exact vs Algorithm 1 vs Equation 4. The cell is a
// pure function of (Seed, cell index); ex is the worker's pooled explorer.
func atlasCellRun(g *guard.Ctx, p AtlasParams, fam int, qi int, ex *exact.Explorer, sc *obs.Scope) (atlasCell, error) {
	var cell atlasCell
	q := p.Qs[qi]
	for trial := 0; trial < p.FuncsPerCell; trial++ {
		if err := g.Tick(); err != nil {
			return cell, err
		}
		r := synth.SubRand(p.Seed, fam*len(p.Qs)+qi, trial)
		f, err := atlasFunction(r, atlasFamilies[fam], p.C, q)
		if err != nil {
			return cell, err
		}
		exRes, err := ex.Delay(g, f, q, exact.Options{MaxStates: p.MaxStates, Obs: sc})
		if err != nil {
			return cell, fmt.Errorf("eval: atlas %s Q=%g trial %d: %w", atlasFamilies[fam], q, trial, err)
		}
		alg1, err := core.Analyze(g, f, q, core.Options{})
		if err != nil {
			return cell, err
		}
		eq4, err := core.Analyze(g, f, q, core.Options{Method: core.Equation4})
		if err != nil {
			return cell, err
		}
		cell.exact += exRes.Delay
		cell.alg1Gap += alg1.TotalDelay - exRes.Delay
		cell.eq4Gap += eq4.TotalDelay - exRes.Delay
		cell.states += exRes.States
		// The naive tree over the same instance expands the full candidate
		// branching; its size is what merging/pruning collapsed. Depth is
		// the explored layer count, branching at most 1 + |breakpoints|.
		branch := 1 + len(f.Breakpoints())
		naive := 1
		grow := 1
		for d := 0; d < exRes.Depth && naive < 1<<30; d++ {
			grow *= branch
			naive += grow
		}
		cell.naiveStates += naive
	}
	n := float64(p.FuncsPerCell)
	cell.exact /= n
	cell.alg1Gap /= n
	cell.eq4Gap /= n
	return cell, nil
}

// Atlas runs the pessimism-atlas campaign: a (family × Q) grid of mean
// exact delays and mean Algorithm 1 / Equation 4 pessimism gaps. Cells are
// sharded over p.Workers goroutines, each owning one pooled exact.Explorer;
// cells aggregate in grid order, so the table is bit-identical for every
// worker count.
func Atlas(g *guard.Ctx, p AtlasParams) (*textplot.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sc := p.scope(g)
	cellsTotal := len(atlasFamilies) * len(p.Qs)
	sc.Emit(obs.Event{Type: obs.CampaignStarted, Spec: "atlas", Total: cellsTotal})
	sc.Gauge("campaign.workers").Set(float64(workers))
	cellsDone := sc.Counter("campaign.trials")

	cells := make([]atlasCell, cellsTotal)
	if workers == 1 {
		ex := exact.NewExplorer()
		for i := range cells {
			c, err := atlasCellRun(g, p, i/len(p.Qs), i%len(p.Qs), ex, sc)
			if err != nil {
				return nil, err
			}
			cells[i] = c
			cellsDone.Inc()
			sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "atlas",
				Completed: i + 1, Total: cellsTotal})
		}
	} else {
		var (
			mu       sync.Mutex
			abortErr error
		)
		abort := func(err error) {
			mu.Lock()
			if abortErr == nil {
				abortErr = err
			}
			mu.Unlock()
		}
		aborted := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return abortErr != nil
		}
		var completed atomic.Int64
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ex := exact.NewExplorer() // per-worker pooled explorer
				for i := range jobs {
					if aborted() {
						continue
					}
					c, err := atlasCellRun(g, p, i/len(p.Qs), i%len(p.Qs), ex, sc)
					if err != nil {
						abort(err)
						continue
					}
					cells[i] = c
					cellsDone.Inc()
					sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "atlas",
						Completed: int(completed.Add(1)), Total: cellsTotal})
				}
			}()
		}
		for i := 0; i < cellsTotal; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		mu.Lock()
		err := abortErr
		mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	tbl := &textplot.Table{
		XLabel: "Q",
		YLabel: "mean delay / pessimism gap",
		X:      append([]float64(nil), p.Qs...),
	}
	totalStates, totalNaive := 0, 0
	for fam := range atlasFamilies {
		ex := textplot.Series{Name: atlasFamilies[fam] + "/exact"}
		a1 := textplot.Series{Name: atlasFamilies[fam] + "/alg1-gap"}
		e4 := textplot.Series{Name: atlasFamilies[fam] + "/eq4-gap"}
		for qi := range p.Qs {
			c := cells[fam*len(p.Qs)+qi]
			ex.Y = append(ex.Y, c.exact)
			a1.Y = append(a1.Y, c.alg1Gap)
			e4.Y = append(e4.Y, c.eq4Gap)
			totalStates += c.states
			totalNaive += c.naiveStates
		}
		tbl.Series = append(tbl.Series, ex, a1, e4)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"explored %d states (naive tree bound %d, %.0fx reduction)",
		totalStates, totalNaive, float64(totalNaive)/math.Max(1, float64(totalStates))))
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	sc.Emit(obs.Event{Type: obs.CampaignFinished, Spec: "atlas",
		Completed: cellsTotal, Total: cellsTotal})
	return tbl, nil
}

// AtlasChecks enforces the bound ordering on an atlas table: for every
// family and Q, exact <= Algorithm 1 <= Equation 4 — both pessimism gaps
// non-negative and Equation 4's at least Algorithm 1's.
func AtlasChecks(tbl *textplot.Table) error {
	if len(tbl.Series) != 3*len(atlasFamilies) {
		return guard.Invalidf("eval: atlas table incomplete")
	}
	for fam := range atlasFamilies {
		ex := tbl.Series[3*fam].Y
		a1 := tbl.Series[3*fam+1].Y
		e4 := tbl.Series[3*fam+2].Y
		for i := range tbl.X {
			if ex[i] < 0 {
				return fmt.Errorf("eval: atlas %s: negative exact delay %g at Q=%g", atlasFamilies[fam], ex[i], tbl.X[i])
			}
			if a1[i] < -1e-9 {
				return fmt.Errorf("eval: atlas %s: Algorithm 1 below exact by %g at Q=%g — unsound", atlasFamilies[fam], -a1[i], tbl.X[i])
			}
			if e4[i] < a1[i]-1e-9 {
				return fmt.Errorf("eval: atlas %s: Equation 4 gap %g below Algorithm 1 gap %g at Q=%g", atlasFamilies[fam], e4[i], a1[i], tbl.X[i])
			}
		}
	}
	return nil
}

// Kind implements Campaign.
func (p AtlasParams) Kind() string { return "atlas" }

// atlasIdentity is the result-determining subset of AtlasParams (Workers
// only trades wall-clock for cores; MaxStates can abort the campaign but
// never changes values it returns, and is included since it decides
// completion).
type atlasIdentity struct {
	Seed         int64     `json:"seed"`
	Qs           []float64 `json:"qs"`
	FuncsPerCell int       `json:"funcs_per_cell"`
	C            float64   `json:"c"`
	MaxStates    int       `json:"max_states"`
}

// Fingerprint implements Campaign.
func (p AtlasParams) Fingerprint() string {
	return fingerprint(p.Kind(), atlasIdentity{
		Seed: p.Seed, Qs: p.Qs, FuncsPerCell: p.FuncsPerCell, C: p.C,
		MaxStates: p.MaxStates,
	})
}

// Run implements Campaign; the result is the *textplot.Table from Atlas.
func (p AtlasParams) Run(g *guard.Ctx) (any, error) { return Atlas(g, p) }

package eval

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
	"fnpr/internal/task"
)

// memoTestSet builds n tasks with random step delay functions whose domains
// match their WCETs.
func memoTestSet(t *testing.T, rng *rand.Rand, n int) (task.Set, []delay.Function) {
	t.Helper()
	ts := make(task.Set, n)
	fns := make([]delay.Function, n)
	for i := range ts {
		np := 3 + rng.Intn(10)
		xs := []float64{0}
		vs := make([]float64, 0, np)
		for k := 0; k < np; k++ {
			xs = append(xs, xs[len(xs)-1]+0.5+rng.Float64()*2)
			vs = append(vs, rng.Float64()*2)
		}
		p, err := delay.NewPiecewise(xs, vs)
		if err != nil {
			t.Fatal(err)
		}
		ts[i] = task.Task{Name: "t" + string(rune('A'+i)), C: p.Domain(), T: 1000}
		fns[i] = p
	}
	return ts, fns
}

// TestAnalyzeSetIncremental is the incremental-invalidation half of
// satellite 3: analyze a set, mutate one task's delay function, re-analyze
// with the same cache, and prove — through the sweep.analyzeset counters —
// that exactly the edited task's terms recomputed while everything else was
// reused, with results bit-equal to a full recompute.
func TestAnalyzeSetIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nTasks = 6
	ts, fns := memoTestSet(t, rng, nTasks)
	qs := []float64{4, 5, 6, 7, 8, 9, 10, 12}

	cache := core.NewResultCache(memo.Options{})

	// Run 1: populate the cache (everything recomputes).
	rec1 := obs.NewTestRecorder()
	if _, err := AnalyzeSet(nil, ts, fns, SweepOptions{Qs: qs, Memo: cache, Obs: rec1.Scope()}); err != nil {
		t.Fatal(err)
	}
	if got := rec1.Counter("sweep.analyzeset.recomputed"); got != int64(nTasks*len(qs)) {
		t.Fatalf("cold run recomputed %d terms, want %d", got, nTasks*len(qs))
	}
	if got := rec1.Counter("sweep.analyzeset.reused"); got != 0 {
		t.Fatalf("cold run reused %d terms, want 0", got)
	}

	// Edit one task: nudge one piece value by an ulp — the smallest edit
	// that changes the function's identity.
	edit := 2
	p := fns[edit].(*delay.Piecewise)
	xs, vs := p.Breakpoints(), p.Values()
	vs2 := append([]float64(nil), vs...)
	vs2[0] = math.Nextafter(vs2[0], 100)
	p2, err := delay.NewPiecewise(xs, vs2)
	if err != nil {
		t.Fatal(err)
	}
	edited := append([]delay.Function(nil), fns...)
	edited[edit] = p2

	// Run 2: incremental — only the edited task's column may recompute.
	rec2 := obs.NewTestRecorder()
	inc, err := AnalyzeSet(nil, ts, edited, SweepOptions{Qs: qs, Memo: cache, Obs: rec2.Scope()})
	if err != nil {
		t.Fatal(err)
	}
	recomputed := rec2.Counter("sweep.analyzeset.recomputed")
	reused := rec2.Counter("sweep.analyzeset.reused")
	if recomputed != int64(len(qs)) {
		t.Fatalf("incremental run recomputed %d terms, want %d (one task's column)", recomputed, len(qs))
	}
	if reused != int64((nTasks-1)*len(qs)) {
		t.Fatalf("incremental run reused %d terms, want %d", reused, (nTasks-1)*len(qs))
	}
	if frac := float64(recomputed) / float64(recomputed+reused); frac >= 0.5 {
		t.Fatalf("recomputed fraction %.3f, acceptance requires < 0.5", frac)
	}

	// Run 3: the oracle — a full recompute with no cache.
	full, err := AnalyzeSet(nil, ts, edited, SweepOptions{Qs: qs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		for k := range full[i].Points {
			w, g := full[i].Points[k], inc[i].Points[k]
			if math.Float64bits(w.Value) != math.Float64bits(g.Value) ||
				w.Degraded != g.Degraded || w.Quarantined != g.Quarantined {
				t.Fatalf("task %s Q=%g: incremental %+v differs from full recompute %+v",
					full[i].Name, w.Q, g, w)
			}
		}
	}
	// Unedited tasks were served from cache; the edited one was not.
	for i := range inc {
		for k := range inc[i].Points {
			if cached := inc[i].Points[k].Cached; cached == (i == edit) {
				t.Fatalf("task %d Q-index %d: Cached=%v, edited task is %d", i, k, cached, edit)
			}
		}
	}
}

// TestQSweepMemoBitIdentity locks the sweep-level contract: the same sweep
// run cache-off, cache-cold and cache-warm produces bit-identical point
// tables (Cached flags aside), and the warm run computes nothing.
func TestQSweepMemoBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts, fns := memoTestSet(t, rng, 4)
	_ = ts
	specs := make([]SweepSpec, len(fns))
	for i, f := range fns {
		specs[i] = SweepSpec{Name: "s" + string(rune('0'+i)), F: f}
	}
	qs := []float64{3, 4.5, 6, 7.25, 9}

	ref, err := QSweep(nil, specs, SweepOptions{Qs: qs})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewResultCache(memo.Options{})
	cold, err := QSweep(nil, specs, SweepOptions{Qs: qs, Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewTestRecorder()
	warm, err := QSweep(nil, specs, SweepOptions{Qs: qs, Memo: cache, Obs: rec.Scope()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for k := range ref[i].Points {
			a, b, c := ref[i].Points[k], cold[i].Points[k], warm[i].Points[k]
			if math.Float64bits(a.Value) != math.Float64bits(b.Value) ||
				math.Float64bits(a.Value) != math.Float64bits(c.Value) {
				t.Fatalf("spec %s Q=%g: values diverge across cache modes: %v / %v / %v",
					ref[i].Name, a.Q, a.Value, b.Value, c.Value)
			}
			if b.Cached {
				t.Fatalf("cold run spec %s Q=%g claims a cache hit", ref[i].Name, a.Q)
			}
			if !c.Cached {
				t.Fatalf("warm run spec %s Q=%g missed", ref[i].Name, a.Q)
			}
		}
	}
	// The warm sweep must not have run a single Algorithm 1 walk.
	if got := rec.Counter("core.alg1.runs"); got != 0 {
		t.Fatalf("warm sweep ran %d analyses, want 0", got)
	}
}

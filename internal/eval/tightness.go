package eval

import (
	"fmt"
	"math"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/exact"
	"fnpr/internal/guard"
	"fnpr/internal/sim"
	"fnpr/internal/task"
	"fnpr/internal/textplot"
)

// TightnessParams configures the bound-tightness experiment — an extension
// asking the question every upper bound invites: how far above reality is
// it? For a victim task with a two-peak delay pattern, sweep Q, compute
// Algorithm 1's bound, and compare with the worst per-job delay observed in
// long floating-NPR simulations and with the strongest analytic adversary
// (the peak-seeking scenario).
type TightnessParams struct {
	Qs      []float64
	Horizon float64
}

// DefaultTightnessParams returns the configuration used by the binary and
// the benchmarks.
func DefaultTightnessParams() TightnessParams {
	return TightnessParams{
		Qs:      []float64{5, 6, 8, 10, 12, 15, 20, 25, 30},
		Horizon: 60000,
	}
}

// Tightness runs the sweep under a guard scope (nil = no limits). Series:
// the Algorithm 1 bound, the adversarial peak-seeking scenario's delay (the
// best lower bound on the true worst case the library can construct), and
// the worst delay observed in the simulated schedule (whose release pattern
// is synchronous-periodic, hence generally milder than the adversary).
func Tightness(g *guard.Ctx, p TightnessParams) (*textplot.Table, error) {
	if len(p.Qs) == 0 || p.Horizon <= 0 {
		return nil, guard.Invalidf("eval: invalid tightness parameters %+v", p)
	}
	tbl := &textplot.Table{
		XLabel: "Q (victim)",
		YLabel: "per-job cumulative delay",
		X:      append([]float64(nil), p.Qs...),
		Series: []textplot.Series{
			{Name: "Algorithm 1 bound"},
			{Name: "adversarial scenario"},
			{Name: "observed worst (simulation)"},
			{Name: "exact worst case"},
		},
	}
	// Victim delay pattern: two expensive regions separated by cheap
	// computation (the flavour of the paper's third benchmark).
	victim, err := delay.NewPiecewise(
		[]float64{0, 6, 9, 18, 21, 30},
		[]float64{1, 4, 0.5, 4, 0.5},
	)
	if err != nil {
		return nil, err
	}
	helper, err := delay.NewPiecewise([]float64{0, 4}, []float64{0.3})
	if err != nil {
		return nil, err
	}
	for _, q := range p.Qs {
		f := victim
		res1, err := core.Analyze(g, f, q, core.Options{})
		if err != nil {
			return nil, err
		}
		bound := res1.TotalDelay
		_, peak := core.PeakSeekingScenario(f, q)
		ts := task.Set{
			{Name: "fast", C: 1, T: 7, Q: 1, Prio: 0},
			{Name: "medium", C: 4, T: 23, Q: 2, Prio: 1},
			{Name: "victim", C: 30, T: 120, Q: q, Prio: 2},
		}
		fns := []delay.Function{nil, helper, f}
		res, err := sim.RunCtx(g, sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: sim.FloatingNPR,
			Horizon: p.Horizon, Delay: fns,
		})
		if err != nil {
			return nil, err
		}
		tbl.Series[0].Y = append(tbl.Series[0].Y, bound)
		tbl.Series[1].Y = append(tbl.Series[1].Y, peak.TotalDelay)
		tbl.Series[2].Y = append(tbl.Series[2].Y, res.Tasks[2].MaxDelayPerJob)
		// The exact engine explores a merged pareto frontier; where even
		// that trips its state budget (very small Q) the point is omitted
		// (NaN renders as a gap), but caller aborts still stop the sweep.
		ex, err := exact.Delay(g, f, q, exact.Options{MaxStates: 3_000_000})
		oracle := ex.Delay
		if err != nil {
			if guard.Abortive(err) {
				return nil, err
			}
			oracle = math.NaN()
		}
		tbl.Series[3].Y = append(tbl.Series[3].Y, oracle)
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// TightnessChecks enforces the soundness ordering: both the adversarial
// scenario and the observed schedule stay at or below the bound at every Q.
// Note the adversary does NOT necessarily dominate the simulation — the
// peak-seeker is myopic (best point within one window), and a concrete
// schedule's arrival pattern can extract more delay over a whole job; the
// best lower bound on the true worst case is the max of the two.
func TightnessChecks(tbl *textplot.Table) error {
	if len(tbl.Series) != 4 {
		return guard.Invalidf("eval: tightness table incomplete")
	}
	bound, adv, obs, exact := tbl.Series[0].Y, tbl.Series[1].Y, tbl.Series[2].Y, tbl.Series[3].Y
	for i := range tbl.X {
		if obs[i] > bound[i]+1e-9 {
			return fmt.Errorf("eval: observed %g above bound %g at Q=%g — Theorem 1 violated", obs[i], bound[i], tbl.X[i])
		}
		if adv[i] > bound[i]+1e-9 {
			return fmt.Errorf("eval: adversarial %g above bound %g at Q=%g — Theorem 1 violated", adv[i], bound[i], tbl.X[i])
		}
		if math.IsNaN(exact[i]) {
			continue // oracle budget tripped at this Q
		}
		if exact[i] > bound[i]+1e-9 {
			return fmt.Errorf("eval: exact %g above bound %g at Q=%g — Theorem 1 violated", exact[i], bound[i], tbl.X[i])
		}
		if adv[i] > exact[i]+1e-9 || obs[i] > exact[i]+1e-9 {
			return fmt.Errorf("eval: exact %g below a constructive scenario (adv %g, obs %g) at Q=%g", exact[i], adv[i], obs[i], tbl.X[i])
		}
	}
	return nil
}

package eval

import (
	"math"
	"testing"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func analyzeTestSet(t *testing.T) (task.Set, []delay.Function) {
	t.Helper()
	f1, err := delay.NewPiecewise([]float64{0, 40, 120, 200}, []float64{3, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	f2 := delay.Step(1, 6, 90, 9)
	ts := task.Set{
		{Name: "t1", C: 200, T: 1000, D: 1000},
		{Name: "t2", C: 90, T: 500, D: 500},
		{Name: "t3", C: 50, T: 400, D: 400},
	}
	return ts, []delay.Function{f1, f2, nil}
}

// TestAnalyzeSetMatchesDirectBounds asserts every (task, Q) point of a
// batched analysis equals a direct core.UpperBound call on the raw function.
func TestAnalyzeSetMatchesDirectBounds(t *testing.T) {
	ts, fns := analyzeTestSet(t)
	qs := []float64{10, 25, 60, 150}
	res, err := AnalyzeSet(nil, ts, fns, SweepOptions{Qs: qs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ts) {
		t.Fatalf("%d curves for %d tasks", len(res), len(ts))
	}
	for i, r := range res {
		if r.Name != ts[i].Name {
			t.Fatalf("curve %d named %q, want %q", i, r.Name, ts[i].Name)
		}
		if len(r.Points) != len(qs) {
			t.Fatalf("task %s: %d points for %d grid values", r.Name, len(r.Points), len(qs))
		}
		for k, pt := range r.Points {
			if pt.Q != qs[k] || !pt.Done {
				t.Fatalf("task %s point %d: Q=%g done=%v", r.Name, k, pt.Q, pt.Done)
			}
			want := 0.0
			if fns[i] != nil {
				wr, werr := core.Analyze(nil, fns[i], qs[k], core.Options{})
				if werr != nil {
					t.Fatal(werr)
				}
				want = wr.TotalDelay
			}
			if pt.Value != want {
				t.Fatalf("task %s Q=%g: batched %v, direct %v", r.Name, qs[k], pt.Value, want)
			}
		}
	}
}

// TestAnalyzeSetIndexTransparency asserts the auto-indexed run and the
// NoIndex run produce bit-identical sweeps.
func TestAnalyzeSetIndexTransparency(t *testing.T) {
	ts, fns := analyzeTestSet(t)
	qs := []float64{10, 25, 60, 150}
	indexed, err := AnalyzeSet(nil, ts, fns, SweepOptions{Qs: qs})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AnalyzeSet(nil, ts, fns, SweepOptions{Qs: qs, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range indexed {
		for k := range indexed[i].Points {
			a, b := indexed[i].Points[k], plain[i].Points[k]
			if a != b {
				t.Fatalf("task %s Q=%g: indexed %+v vs plain %+v", ts[i].Name, qs[k], a, b)
			}
		}
	}
}

// TestAnalyzeSetValidation covers the rejection paths.
func TestAnalyzeSetValidation(t *testing.T) {
	ts, fns := analyzeTestSet(t)
	qs := []float64{10}
	if _, err := AnalyzeSet(nil, nil, nil, SweepOptions{Qs: qs}); err == nil {
		t.Error("empty task set accepted")
	}
	if _, err := AnalyzeSet(nil, ts, fns[:2], SweepOptions{Qs: qs}); err == nil {
		t.Error("mismatched function count accepted")
	}
	if _, err := AnalyzeSet(nil, ts, fns, SweepOptions{}); err == nil {
		t.Error("empty Q grid accepted")
	}
	bad := []delay.Function{delay.Constant(1, 10), nil, nil} // domain 10 != C 200
	if _, err := AnalyzeSet(nil, ts, bad, SweepOptions{Qs: qs}); err == nil {
		t.Error("domain/WCET mismatch accepted")
	}
}

// TestAnalyzeSetAllNil: a set whose tasks all lack delay functions yields
// all-zero curves without touching the sweep machinery.
func TestAnalyzeSetAllNil(t *testing.T) {
	ts, _ := analyzeTestSet(t)
	res, err := AnalyzeSet(nil, ts, make([]delay.Function, len(ts)), SweepOptions{Qs: []float64{5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		for _, pt := range r.Points {
			if pt.Value != 0 || !pt.Done {
				t.Fatalf("task %s: %+v, want zero done point", r.Name, pt)
			}
		}
	}
}

func TestEffectiveWCETs(t *testing.T) {
	ts, fns := analyzeTestSet(t)
	qs := []float64{10, 60}
	res, err := AnalyzeSet(nil, ts, fns, SweepOptions{Qs: qs})
	if err != nil {
		t.Fatal(err)
	}
	eff, err := EffectiveWCETs(ts, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		want := ts[i].C + res[i].Points[1].Value
		if eff[i] != want || math.IsNaN(eff[i]) {
			t.Fatalf("task %s: effective WCET %v, want %v", ts[i].Name, eff[i], want)
		}
	}
	if eff[2] != ts[2].C {
		t.Fatalf("nil-function task effective WCET %v, want bare C %v", eff[2], ts[2].C)
	}
	if _, err := EffectiveWCETs(ts, res[:1], 0); err == nil {
		t.Error("mismatched curve count accepted")
	}
	if _, err := EffectiveWCETs(ts, res, 7); err == nil {
		t.Error("out-of-range grid column accepted")
	}
}

package eval

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fnpr/internal/chaos"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/obs"
	"fnpr/internal/retry"
)

// The chaos suite drives the sweep's degradation ladder under every injected
// fault mode: a transient fault is absorbed by retries, a permanent fault
// degrades the point to Equation 4, a fault that also kills the fallback
// quarantines the point, and sweep-fatal faults (budget burn, delayed cancel)
// abort with the completed points preserved and the journal intact.

func chaosBase(t *testing.T) *delay.Piecewise {
	t.Helper()
	f, err := delay.NewPiecewise([]float64{0, 5, 10, 40}, []float64{2, 6, 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// noSleepRetry grants extra attempts without wall-clock delays.
func noSleepRetry(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}

func TestChaosTransientFaultAbsorbedByRetry(t *testing.T) {
	base := chaosBase(t)
	in := chaos.NewInjector(1)
	qs := []float64{15, 20, 25}
	specs := []SweepSpec{{Name: "flaky", F: in.Wrap(base, chaos.Fault{PanicAtQ: 20, Heal: 1})}}
	results, err := QSweep(nil, specs, SweepOptions{Qs: qs, Workers: 1, Retry: noSleepRetry(3)})
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}
	clean, err := QSweep(nil, []SweepSpec{{Name: "clean", F: base}}, SweepOptions{Qs: qs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range results[0].Points {
		if pt.Degraded || pt.Quarantined {
			t.Fatalf("Q=%g: transient fault degraded the point (%s)", pt.Q, pt.Code())
		}
		if pt.Value != clean[0].Points[i].Value {
			t.Fatalf("Q=%g: value %g differs from clean %g", pt.Q, pt.Value, clean[0].Points[i].Value)
		}
	}
	if got := results[0].Points[1].Attempts; got != 2 {
		t.Fatalf("faulted point took %d attempts, want 2 (one panic, one retry)", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d faults, want 1", in.Fired())
	}
}

func TestChaosPermanentFaultDegradesToEq4(t *testing.T) {
	base := chaosBase(t)
	in := chaos.NewInjector(1)
	qs := []float64{15, 20, 25}
	specs := []SweepSpec{{Name: "broken", F: in.Wrap(base, chaos.Fault{PanicAtQ: 20})}}
	results, err := QSweep(nil, specs, SweepOptions{Qs: qs, Workers: 1, Retry: noSleepRetry(3)})
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}
	pt := results[0].Points[1]
	if !pt.Degraded || pt.Quarantined {
		t.Fatalf("permanent fault: point = %+v, want degraded (not quarantined)", pt)
	}
	if pt.Code() != "degraded:panic" {
		t.Fatalf("Code = %q, want degraded:panic", pt.Code())
	}
	if pt.Attempts != 3 {
		t.Fatalf("attempts = %d, want the full retry budget of 3", pt.Attempts)
	}
	if in.Fired() != 3 {
		t.Fatalf("injector fired %d faults, want one per attempt", in.Fired())
	}
	// The degraded value is the real Equation 4 bound.
	fallback, err := QSweep(nil, []SweepSpec{{Name: "clean", F: base}}, SweepOptions{Qs: qs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Value < fallback[0].Points[1].Value {
		t.Fatalf("degraded value %g below the Algorithm 1 value %g (not an Eq.4 bound)", pt.Value, fallback[0].Points[1].Value)
	}
	// Unfaulted points of the same curve stay clean.
	for _, i := range []int{0, 2} {
		if results[0].Points[i].Degraded {
			t.Fatalf("clean Q=%g degraded: %s", qs[i], results[0].Points[i].Note)
		}
	}
}

func TestChaosFallbackFaultQuarantines(t *testing.T) {
	base := chaosBase(t)
	in := chaos.NewInjector(1)
	qs := []float64{15, 20, 25}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	specs := []SweepSpec{{Name: "doomed", F: in.Wrap(base, chaos.Fault{PanicAtQ: 20, PanicFallback: true})}}
	results, err := QSweep(nil, specs, SweepOptions{Qs: qs, Workers: 1, Retry: noSleepRetry(2), Journal: j})
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	pt := results[0].Points[1]
	if !pt.Quarantined || !pt.Degraded {
		t.Fatalf("fallback fault: point = %+v, want quarantined", pt)
	}
	if !math.IsNaN(pt.Value) {
		t.Fatalf("quarantined value = %g, want NaN", pt.Value)
	}
	if pt.Code() != "quarantined:panic+panic" {
		t.Fatalf("Code = %q, want quarantined:panic+panic", pt.Code())
	}
	if !strings.Contains(pt.Note, "fallback") {
		t.Fatalf("Reason %q does not name the fallback failure", pt.Note)
	}
	// Only the faulted point quarantines: PanicFallback fires on every
	// Eq.4 query, but clean points never reach the fallback.
	for _, i := range []int{0, 2} {
		if results[0].Points[i].Degraded {
			t.Fatalf("clean Q=%g degraded: %s", qs[i], results[0].Points[i].Note)
		}
	}
	// The quarantine surfaces machine-readably in the notes.
	notes := Degraded(results)
	if len(notes) != 1 || !strings.HasPrefix(notes[0], "quarantined:panic+panic") {
		t.Fatalf("notes = %v, want one note leading with the quarantine code", notes)
	}
	// And the journal replays it bit-for-bit, NaN included.
	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatalf("journal corrupted by chaos run: %v", err)
	}
	j2.Close()
	var stored SweepPoint
	ok, err := journal.Get(journal.Latest(recs), gridKey("doomed", 1, 20), &stored)
	if err != nil || !ok {
		t.Fatalf("quarantined point not journaled: ok=%v err=%v", ok, err)
	}
	if !math.IsNaN(stored.Value) || stored.Code() != pt.Code() || !stored.Done {
		t.Fatalf("journaled quarantine = %+v, want %+v", stored, pt)
	}
}

func TestChaosBudgetBurnAbortsWithPartialResultsAndIntactJournal(t *testing.T) {
	base := chaosBase(t)
	in := chaos.NewInjector(1)
	qs := []float64{15, 20, 25}
	g := guard.New(context.Background()).WithBudget(100000)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	specs := []SweepSpec{
		{Name: "clean", F: base},
		{Name: "burner", F: in.Wrap(base, chaos.Fault{Burn: 200000, Guard: g})},
	}
	results, err := QSweep(g, specs, SweepOptions{Qs: qs, Workers: 1, Journal: j})
	j.Close()
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("burned sweep: err = %v, want ErrBudgetExceeded", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("abort error %T does not carry partial results", err)
	}
	// The single worker finishes the whole clean curve before the burner
	// torches the budget on its first point.
	if pe.Completed != 3 || pe.Total != 6 {
		t.Fatalf("partial = %d/%d, want 3/6", pe.Completed, pe.Total)
	}
	if results == nil {
		t.Fatal("aborted sweep discarded its results slice")
	}
	for i, pt := range results[0].Points {
		if !pt.Done {
			t.Fatalf("clean point Q=%g not preserved on abort", qs[i])
		}
	}
	// Journal on disk replays exactly the completed points.
	_, recs, err := journal.Open(path)
	if err != nil {
		t.Fatalf("journal corrupted by abort: %v", err)
	}
	m := journal.Latest(recs)
	points := 0
	for k := range m {
		if strings.HasPrefix(k, "point:") {
			points++
		}
	}
	if points != pe.Completed {
		t.Fatalf("journal holds %d points, want the %d completed", points, pe.Completed)
	}
}

func TestChaosDelayedCancelAbortsWithPartialResults(t *testing.T) {
	base := chaosBase(t)
	in := chaos.NewInjector(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := guard.New(ctx)
	qs := []float64{15, 20, 25}
	specs := []SweepSpec{
		{Name: "clean", F: base},
		{Name: "canceller", F: in.Wrap(base, chaos.Fault{CancelAfter: 1, Cancel: cancel})},
	}
	_, err := QSweep(g, specs, SweepOptions{Qs: qs, Workers: 1})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled sweep: err = %v, want ErrCanceled", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("abort error %T does not carry partial results", err)
	}
	// The clean curve (3 points) completes; the canceller's first point may
	// complete before the cancel is polled, but the sweep must stop after.
	if pe.Completed < 3 || pe.Completed >= pe.Total {
		t.Fatalf("partial = %d/%d, want at least the clean curve and not all", pe.Completed, pe.Total)
	}
	for i, pt := range pe.Results[0].Points {
		if !pt.Done {
			t.Fatalf("clean point Q=%g lost on cancel", qs[i])
		}
	}
}

// TestSweepJournalResume kills a journaled sweep mid-grid via delayed
// cancellation, then resumes from the journal: the resumed sweep restores the
// completed points bit-exactly without recomputing them (proven by leaving a
// permanent fault armed at a restored point) and computes only the remainder.
func TestSweepJournalResume(t *testing.T) {
	base := chaosBase(t)
	qs := []float64{15, 20, 25, 30}
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Reference: uninterrupted clean run.
	want, err := QSweep(nil, []SweepSpec{{Name: "curve", F: base}}, SweepOptions{Qs: qs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: cancel after the second grid point's analysis begins.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := guard.New(ctx)
	in := chaos.NewInjector(1)
	j, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	// The cancel fires inside the first point's analysis; that point still
	// completes (cancellation is polled at scope entry and every poll
	// interval), and the next point's entry check aborts the sweep.
	specs1 := []SweepSpec{{Name: "curve", F: in.Wrap(base, chaos.Fault{CancelAfter: 2, Cancel: cancel})}}
	_, err = QSweep(g, specs1, SweepOptions{Qs: qs, Workers: 1, Journal: j})
	j.Close()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("run 1: err = %v, want ErrCanceled", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || pe.Completed == 0 || pe.Completed == pe.Total {
		t.Fatalf("run 1 must abort mid-grid; got %v", err)
	}

	// Run 2: resume. A permanent panic stays armed at the first grid point;
	// it must never fire because that point is restored, not recomputed.
	j2, recs2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	in2 := chaos.NewInjector(1)
	specs2 := []SweepSpec{{Name: "curve", F: in2.Wrap(base, chaos.Fault{PanicAtQ: qs[0]})}}
	got, err := QSweep(nil, specs2, SweepOptions{Qs: qs,
		Workers: 1, Journal: j2, Resume: journal.Latest(recs2),
	})
	j2.Close()
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if in2.Fired() != 0 {
		t.Fatal("resume recomputed a journaled point (armed fault fired)")
	}
	for i := range qs {
		w, gpt := want[0].Points[i], got[0].Points[i]
		if math.Float64bits(w.Value) != math.Float64bits(gpt.Value) {
			t.Fatalf("Q=%g: resumed value %g not bit-identical to uninterrupted %g", qs[i], gpt.Value, w.Value)
		}
		if gpt.Degraded || gpt.Quarantined || !gpt.Done {
			t.Fatalf("Q=%g: resumed point flags %+v", qs[i], gpt)
		}
	}
}

// TestSweepResumeRejectsForeignJournal: a journal fingerprinting a different
// grid must not be silently reapplied.
func TestSweepResumeRejectsForeignJournal(t *testing.T) {
	base := chaosBase(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QSweep(nil, []SweepSpec{{Name: "a", F: base}}, SweepOptions{Qs: []float64{15, 20}, Workers: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, err = QSweep(nil, []SweepSpec{{Name: "b", F: base}}, SweepOptions{Qs: []float64{15, 20},
		Workers: 1, Journal: j2, Resume: journal.Latest(recs),
	})
	if !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("foreign journal accepted: err = %v", err)
	}
}

// TestChaosObservabilityInvariants attaches a TestRecorder to a sweep that
// exercises every rung of the degradation ladder and asserts the metric and
// event invariants of DESIGN.md §10: the ladder counters partition the grid,
// the retry counter agrees with the PointRetried events, and a quarantined
// point emits exactly one PointQuarantined event.
func TestChaosObservabilityInvariants(t *testing.T) {
	base := chaosBase(t)
	rec := obs.NewTestRecorder()
	qs := []float64{15, 20, 25}
	specs := []SweepSpec{
		{Name: "clean", F: base},
		{Name: "flaky", F: chaos.NewInjector(1).Wrap(base, chaos.Fault{PanicAtQ: 20, Heal: 1})},
		{Name: "perma", F: chaos.NewInjector(1).Wrap(base, chaos.Fault{PanicAtQ: 15})},
		{Name: "doomed", F: chaos.NewInjector(1).Wrap(base, chaos.Fault{PanicAtQ: 25, PanicFallback: true})},
	}
	results, err := QSweep(nil, specs, SweepOptions{
		Qs: qs, Workers: 2, Retry: noSleepRetry(3), Obs: rec.Scope(),
	})
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}

	// The ladder counters partition the grid: every point settles exactly once.
	total := int64(len(specs) * len(qs))
	clean := rec.Counter("sweep.points.clean")
	degraded := rec.Counter("sweep.points.degraded")
	quarantined := rec.Counter("sweep.points.quarantined")
	if clean+degraded+quarantined != total {
		t.Fatalf("ladder counters %d+%d+%d do not partition the %d grid points",
			clean, degraded, quarantined, total)
	}
	if degraded != 1 || quarantined != 1 {
		t.Fatalf("degraded=%d quarantined=%d, want exactly 1 each", degraded, quarantined)
	}

	// Retry accounting: flaky heals after 1 panic (1 retry); perma and doomed
	// burn the full 3-attempt budget at their faulted point (2 retries each).
	if got := rec.Counter("sweep.retries"); got != 5 {
		t.Fatalf("sweep.retries = %d, want 5", got)
	}
	if got := rec.CountEvents(obs.PointRetried); got != 5 {
		t.Fatalf("%d PointRetried events, want 5", got)
	}

	// Every grid point emits exactly one PointDone; the sweep brackets them
	// with one SweepStarted and one SweepFinished.
	if got := rec.CountEvents(obs.PointDone); got != int(total) {
		t.Fatalf("%d PointDone events for %d grid points", got, total)
	}
	if rec.CountEvents(obs.SweepStarted) != 1 || rec.CountEvents(obs.SweepFinished) != 1 {
		t.Fatal("sweep did not emit exactly one SweepStarted/SweepFinished pair")
	}
	fin := rec.FilterEvents(obs.SweepFinished)[0]
	if fin.Completed != int(total) || fin.Total != int(total) || fin.Err != "" {
		t.Fatalf("SweepFinished = %+v, want %d/%d clean", fin, total, total)
	}

	// Exactly one PointQuarantined, and it names the quarantined point.
	quar := rec.FilterEvents(obs.PointQuarantined)
	if len(quar) != 1 {
		t.Fatalf("%d PointQuarantined events, want 1", len(quar))
	}
	if quar[0].Spec != "doomed" || quar[0].Q != 25 || quar[0].Code != "quarantined:panic+panic" {
		t.Fatalf("PointQuarantined = %+v, want doomed@25 quarantined:panic+panic", quar[0])
	}
	deg := rec.FilterEvents(obs.PointDegraded)
	if len(deg) != 1 || deg[0].Spec != "perma" || deg[0].Q != 15 || deg[0].Code != "degraded:panic" {
		t.Fatalf("PointDegraded = %+v, want one perma@15 degraded:panic", deg)
	}

	// The events agree with the returned points.
	for si, r := range results {
		for _, pt := range r.Points {
			if pt.Quarantined != (specs[si].Name == "doomed" && pt.Q == 25) {
				t.Fatalf("%s@%g: Quarantined=%v disagrees with the event log", r.Name, pt.Q, pt.Quarantined)
			}
		}
	}
	if got := rec.Registry().Gauge("sweep.workers").Value(); got != 2 {
		t.Fatalf("sweep.workers gauge = %g, want 2", got)
	}
}

// TestSweepSharedRegistryRace hammers one registry from the full worker pool
// while a reader snapshots it concurrently; the race detector (tier-1 runs
// with -race) guards every counter, gauge and histogram touched by the sweep.
func TestSweepSharedRegistryRace(t *testing.T) {
	base := chaosBase(t)
	reg := obs.NewRegistry()
	sc := obs.NewScope(reg)
	qs := make([]float64, 32)
	for i := range qs {
		qs[i] = 15 + float64(i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()
	specs := []SweepSpec{{Name: "a", F: base}, {Name: "b", F: base}}
	_, err := QSweep(nil, specs, SweepOptions{Qs: qs, Workers: 4, Obs: sc})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}
	if got := reg.Counter("sweep.points.clean").Value(); got != int64(len(specs)*len(qs)) {
		t.Fatalf("clean counter %d, want %d", got, len(specs)*len(qs))
	}
}

package eval

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// poisonedFunction wraps a real delay function and panics inside
// FirstReachDescending at exactly one grid point: Algorithm 1's first window
// starts at prog=Q, so a window whose left edge equals poisonQ identifies the
// poisoned grid point (the fixture's progression sequence never revisits that
// value from other grid points).
type poisonedFunction struct {
	*delay.Piecewise
	poisonQ float64
}

func (p poisonedFunction) FirstReachDescending(a, b, c float64) (float64, bool) {
	if a == p.poisonQ {
		panic("injected fault for this grid point")
	}
	return p.Piecewise.FirstReachDescending(a, b, c)
}

// TestQSweepDegradesPoisonedPoint injects a panic at one grid point of one
// curve and checks the blast radius: that point degrades to the Equation 4
// fallback and is flagged with the panic's message; every other point of both
// curves completes normally.
func TestQSweepDegradesPoisonedPoint(t *testing.T) {
	base, err := delay.NewPiecewise([]float64{0, 5, 10, 40}, []float64{2, 6, 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{15, 20, 25}
	const poisonQ = 20.0
	specs := []SweepSpec{
		{Name: "poisoned", F: poisonedFunction{base, poisonQ}},
		{Name: "healthy", F: base},
	}
	results, err := QSweep(nil, specs, SweepOptions{Qs: qs, Workers: 2})
	if err != nil {
		t.Fatalf("QSweep: %v", err)
	}
	healthy := results[1]
	for i, pt := range healthy.Points {
		if pt.Degraded {
			t.Fatalf("healthy curve degraded at Q=%g: %s", qs[i], pt.Note)
		}
	}
	var degraded int
	for i, pt := range results[0].Points {
		switch {
		case qs[i] == poisonQ:
			degraded++
			if !pt.Degraded {
				t.Fatalf("poisoned point Q=%g not flagged", poisonQ)
			}
			if !strings.Contains(pt.Note, "injected fault") {
				t.Fatalf("reason %q does not surface the panic", pt.Note)
			}
			// The fallback is the Equation 4 bound, which dominates
			// Algorithm 1 — so the degraded value must be at least the
			// healthy curve's value at the same Q.
			if pt.Value < healthy.Points[i].Value {
				t.Fatalf("degraded value %g below Algorithm 1 value %g", pt.Value, healthy.Points[i].Value)
			}
		case pt.Degraded:
			t.Fatalf("unpoisoned point Q=%g degraded: %s", qs[i], pt.Note)
		default:
			if pt.Value != healthy.Points[i].Value {
				t.Fatalf("poisoned curve differs from healthy at clean Q=%g: %g vs %g",
					qs[i], pt.Value, healthy.Points[i].Value)
			}
		}
	}
	if degraded != 1 {
		t.Fatalf("%d degraded points, want exactly 1", degraded)
	}
	notes := Degraded(results)
	if len(notes) != 1 || !strings.Contains(notes[0], "Q=20") {
		t.Fatalf("Degraded notes = %v, want one note naming Q=20", notes)
	}
}

// TestQSweepCanceled: an already-canceled guard aborts the sweep up front.
func TestQSweepCanceled(t *testing.T) {
	base, err := delay.NewPiecewise([]float64{0, 5, 40}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = QSweep(guard.New(ctx), []SweepSpec{{Name: "f", F: base}}, SweepOptions{Qs: []float64{15, 20}, Workers: 2})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled sweep: got %v, want ErrCanceled", err)
	}
}

// TestFigure5CanceledPromptly: the acceptance criterion of the guarded
// runtime — Figure5 under an already-canceled context returns ErrCanceled
// without running the sweep (the guard is consulted before any grid point is
// scheduled, so no steps are charged).
func TestFigure5CanceledPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := guard.New(ctx)
	tb, err := Figure5(g, delay.CalibratedParams(), SweepOptions{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled Figure5: got %v, want ErrCanceled", err)
	}
	if tb != nil {
		t.Fatal("canceled Figure5 still returned a table")
	}
	if g.Steps() != 0 {
		t.Fatalf("canceled Figure5 charged %d steps; the sweep ran anyway", g.Steps())
	}
}

// TestQSweepBudgetAborts: global budget exhaustion is fatal to the whole
// sweep (every remaining point would fail identically), not a degradation —
// but the grid points that finished before the budget ran out are returned
// alongside the error in a *PartialError, not discarded.
func TestQSweepBudgetAborts(t *testing.T) {
	base, err := delay.NewPiecewise([]float64{0, 5, 10, 40}, []float64{2, 6, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's points charge 1-2 steps each: budget 3 lets the first
	// point (Q=15, 2 steps) finish, then exhausts inside the second.
	g := guard.New(context.Background()).WithBudget(3)
	results, err := QSweep(g, []SweepSpec{{Name: "f", F: base}}, SweepOptions{Qs: []float64{15, 20, 25}, Workers: 1})
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budget 3 sweep: got %v, want ErrBudgetExceeded", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("abort error %T does not carry a *PartialError", err)
	}
	if pe.Total != 3 {
		t.Fatalf("PartialError.Total = %d, want 3", pe.Total)
	}
	if pe.Completed < 1 || pe.Completed >= pe.Total {
		t.Fatalf("PartialError.Completed = %d, want mid-sweep (1 or 2 of 3)", pe.Completed)
	}
	if len(results) != 1 || len(results[0].Points) != 3 {
		t.Fatalf("partial results missing: %v", results)
	}
	first := results[0].Points[0]
	if !first.Done || first.Degraded || first.Value <= 0 {
		t.Fatalf("first point not completed cleanly before abort: %+v", first)
	}
	var done int
	for _, pt := range results[0].Points {
		if pt.Done {
			done++
		}
	}
	if done != pe.Completed {
		t.Fatalf("Done points %d disagree with PartialError.Completed %d", done, pe.Completed)
	}
}

// Package eval regenerates the paper's figures: it assembles the benchmark
// functions of Section VI, runs Algorithm 1 and the state-of-the-art bound
// over the Q sweep of Figure 5, samples the functions for Figure 4, and
// reproduces the worked example of Figure 1 and the counter-example of
// Figure 2. Both the figures binary and the benchmark suite call into it.
package eval

import (
	"fmt"
	"math"
	"strings"

	"fnpr/internal/cfg"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/textplot"
)

// Figure4 samples the three synthetic benchmark functions on an n-point grid
// over [0, C] — the data behind Figure 4 of the paper.
func Figure4(params delay.BenchmarkParams, n int) (*textplot.Table, error) {
	if n < 2 {
		return nil, fmt.Errorf("eval: need at least 2 samples, got %d", n)
	}
	fns := params.Benchmarks()
	t := &textplot.Table{XLabel: "t", YLabel: "preemption delay f(t)"}
	for i := 0; i < n; i++ {
		t.X = append(t.X, params.C*float64(i)/float64(n-1))
	}
	for _, name := range delay.BenchmarkOrder() {
		f := fns[name]
		s := textplot.Series{Name: name}
		for _, x := range t.X {
			s.Y = append(s.Y, f.Eval(x))
		}
		t.Series = append(t.Series, s)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DefaultQGrid returns the Q sweep used for Figure 5: dense at small Q where
// the curves separate, sparser towards 2000. Values at or below the
// functions' maximum delay (10, resp. 14 for the offset Gaussian) are where
// the analyses diverge, so the grid starts just above.
func DefaultQGrid() []float64 {
	return []float64{
		15, 16, 18, 20, 25, 30, 40, 50, 65, 80, 100, 125, 150, 200,
		250, 300, 400, 500, 650, 800, 1000, 1250, 1500, 1750, 2000,
	}
}

// Figure5 computes, for every Q in the grid (opts.Qs, defaulting to
// DefaultQGrid), the cumulative preemption delay bound of Algorithm 1 on
// each benchmark function, plus the state-of-the-art bound of Equation 4 —
// the data behind Figure 5.
//
// The Algorithm 1 curves are evaluated on the parallel guarded sweep pool
// (QSweep) under the full crash-safe batch runtime: the guard's
// cancellation, deadline and budget apply globally; the options attach a
// per-point retry policy, a checkpoint journal and a resume view (see
// SweepOptions). A grid point whose primary analysis fails degrades to the
// Equation 4 bound, flagged in the table's Notes. On abort the error is a
// *PartialError — the completed grid points are already checkpointed when a
// journal is attached, so the same call with the journal's resume view
// continues where this one stopped and produces output byte-identical to an
// uninterrupted run. A nil guard means no limits.
//
// The paper plots a single state-of-the-art line, noting it is identical for
// all functions "since they all have the same C and maximum value"; under
// the offset reading of Gaussian 1 its maximum is 14 rather than 10, so we
// emit the common max-10 line as "State of the Art" and the max-14 variant
// separately (indistinguishable at log scale).
func Figure5(g *guard.Ctx, params delay.BenchmarkParams, opts SweepOptions) (*textplot.Table, error) {
	qs := opts.Qs
	if len(qs) == 0 {
		qs = DefaultQGrid()
		opts.Qs = qs
	}
	var specs []SweepSpec
	fns := params.Benchmarks()
	for _, name := range delay.BenchmarkOrder() {
		specs = append(specs, SweepSpec{Name: name, F: fns[name]})
	}
	results, err := QSweep(g, specs, opts)
	if err != nil {
		return nil, err
	}
	t := &textplot.Table{
		XLabel: "Q",
		YLabel: "cumulative preemption delay",
		X:      append([]float64(nil), qs...),
	}
	for _, r := range results {
		s := textplot.Series{Name: r.Name}
		for _, p := range r.Points {
			s.Y = append(s.Y, p.Value)
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = Degraded(results)
	// State-of-the-art series.
	soa := func(name string, maxDelay float64) (textplot.Series, error) {
		s := textplot.Series{Name: name}
		for _, q := range qs {
			b, err := core.Eq4Fixpoint(g, params.C, q, maxDelay)
			if err != nil {
				return s, err
			}
			s.Y = append(s.Y, b)
		}
		return s, nil
	}
	s10, err := soa("State of the Art", params.Amp)
	if err != nil {
		return nil, err
	}
	t.Series = append(t.Series, s10)
	if peak1 := params.Offset1 + params.Amp1; peak1 != params.Amp {
		s14, err := soa("State of the Art (Gaussian 1)", peak1)
		if err != nil {
			return nil, err
		}
		t.Series = append(t.Series, s14)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure5Checks verifies the qualitative claims of Figure 5 on a computed
// table: every Algorithm 1 curve lies at or below its state-of-the-art
// reference at every Q, and at the small-Q end the peaked functions
// (Gaussian 2, two local maxima) gain at least a factor gainAtLowQ.
func Figure5Checks(t *textplot.Table, gainAtLowQ float64) error {
	col := func(name string) []float64 {
		for _, s := range t.Series {
			if s.Name == name {
				return s.Y
			}
		}
		return nil
	}
	soa := col("State of the Art")
	soa1 := col("State of the Art (Gaussian 1)")
	if soa1 == nil {
		soa1 = soa
	}
	if soa == nil {
		return fmt.Errorf("eval: missing state-of-the-art series")
	}
	for _, name := range delay.BenchmarkOrder() {
		alg := col(name)
		if alg == nil {
			return fmt.Errorf("eval: missing series %q", name)
		}
		ref := soa
		if name == "Gaussian 1" {
			ref = soa1
		}
		for i := range alg {
			if alg[i] > ref[i]+1e-6 {
				return fmt.Errorf("eval: %s at Q=%g: Algorithm 1 %g above SOA %g",
					name, t.X[i], alg[i], ref[i])
			}
		}
	}
	for _, name := range []string{"Gaussian 2", "2 local maximum"} {
		alg := col(name)
		if soa[0] < gainAtLowQ*alg[0] {
			return fmt.Errorf("eval: %s gains only %.2fx at Q=%g, want >= %gx",
				name, soa[0]/alg[0], t.X[0], gainAtLowQ)
		}
	}
	return nil
}

// Figure1Report reproduces the worked example of Figure 1: the CFG, its
// per-block offsets and the derived windows, as text.
func Figure1Report() (string, error) {
	g := cfg.Figure1()
	off, err := g.AnalyzeOffsets()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 1 — CFG execution intervals and start offsets\n\n")
	b.WriteString(off.Table())
	b.WriteString("\nExpected offsets from the paper:\n")
	for id, w := range cfg.Figure1Offsets() {
		ok := "ok"
		if off.SMin[id] != w[0] || off.SMax[id] != w[1] {
			ok = "MISMATCH"
		}
		fmt.Fprintf(&b, "  b%-2d [%g,%g] %s\n", id, w[0], w[1], ok)
	}
	b.WriteString("\nDOT:\n")
	b.WriteString(g.DOT("figure1"))
	return b.String(), nil
}

// Figure2Report reproduces the Figure 2 counter-example: a peaked function
// on which the naive progression-spaced point selection undercounts a
// feasible run, while Algorithm 1 stays above it.
type Figure2Report struct {
	F          *delay.Piecewise
	Q          float64
	Naive      float64
	Greedy     core.RunResult
	Peak       core.RunResult
	Algorithm1 float64
}

// Figure2 builds the counter-example report.
func Figure2() (*Figure2Report, error) {
	f, err := delay.NewPiecewise(
		[]float64{0, 10, 12, 19, 21, 28, 30, 40},
		[]float64{0, 8, 0, 8, 0, 8, 0},
	)
	if err != nil {
		return nil, err
	}
	const q = 10
	naive, err := core.Analyze(nil, f, q, core.Options{Method: core.NaiveUnsound})
	if err != nil {
		return nil, err
	}
	_, greedy := core.GreedyScenario(f, q)
	_, peak := core.PeakSeekingScenario(f, q)
	alg, err := core.Analyze(nil, f, q, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Figure2Report{F: f, Q: q, Naive: naive.TotalDelay, Greedy: greedy, Peak: peak, Algorithm1: alg.TotalDelay}, nil
}

// String renders the report.
func (r *Figure2Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 2 — naive point selection vs run-time development\n\n")
	fmt.Fprintf(&b, "f = %v, Q = %g\n\n", r.F, r.Q)
	fmt.Fprintf(&b, "naive max-point selection (unsound): %8.3f\n", r.Naive)
	fmt.Fprintf(&b, "greedy run-time scenario:            %8.3f (%d preemptions)\n",
		r.Greedy.TotalDelay, r.Greedy.Preemptions)
	fmt.Fprintf(&b, "peak-seeking run-time scenario:      %8.3f (%d preemptions)\n",
		r.Peak.TotalDelay, r.Peak.Preemptions)
	fmt.Fprintf(&b, "Algorithm 1 upper bound:             %8.3f\n\n", r.Algorithm1)
	worst := math.Max(r.Greedy.TotalDelay, r.Peak.TotalDelay)
	if worst > r.Naive {
		fmt.Fprintf(&b, "=> a feasible run (%g) exceeds the naive bound (%g): the naive method is unsound.\n", worst, r.Naive)
	}
	if r.Algorithm1 >= worst {
		fmt.Fprintf(&b, "=> Algorithm 1 (%g) dominates every observed run, as Theorem 1 guarantees.\n", r.Algorithm1)
	}
	return b.String()
}

// Figure3Report renders the paper's Figure 3 — the sketch of one Algorithm 1
// iteration — as an annotated trace on a small worked example: for each
// window it shows prog, the descending line D(x) = prog + Q - x, the first
// crossing p∩, the charged maximum and the next progression point.
func Figure3Report() (string, error) {
	f, err := delay.NewPiecewise(
		[]float64{0, 15, 25, 40, 55, 80},
		[]float64{2, 6, 1, 4, 0.5},
	)
	if err != nil {
		return "", err
	}
	const q = 12.0
	res, err := core.Analyze(nil, f, q, core.Options{Trace: true})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3 — one Algorithm 1 iteration, annotated\n\n")
	fmt.Fprintf(&b, "f = %v, Q = %g\n\n", f, q)
	b.WriteString(res.String())
	b.WriteString("\nReading: in each window [prog, prog+Q], the first point where f\n")
	b.WriteString("reaches the descending line D(x) = prog+Q-x caps the search range\n")
	b.WriteString("(points beyond p∩ are reconsidered by later iterations); the worst\n")
	b.WriteString("delay in [prog, p∩] is charged and progression advances Q - delaymax.\n")
	return b.String(), nil
}

package eval

import (
	"math"
	"strings"
	"testing"

	"fnpr/internal/delay"
)

func TestFigure4Shape(t *testing.T) {
	tb, err := Figure4(delay.CalibratedParams(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 100 || len(tb.Series) != 3 {
		t.Fatalf("table shape %dx%d, want 100x3", len(tb.X), len(tb.Series))
	}
	if tb.X[0] != 0 || tb.X[99] != 4000 {
		t.Fatalf("X range [%g,%g], want [0,4000]", tb.X[0], tb.X[99])
	}
	// Gaussian 1 floor >= 10 at the edges, Gaussian 2 near zero there.
	g1 := tb.Series[0].Y
	g2 := tb.Series[1].Y
	if g1[0] < 9.9 {
		t.Fatalf("Gaussian 1 edge = %g, want ~10", g1[0])
	}
	if g2[0] > 1 {
		t.Fatalf("Gaussian 2 edge = %g, want ~0", g2[0])
	}
	if _, err := Figure4(delay.CalibratedParams(), 1); err == nil {
		t.Fatal("accepted n=1")
	}
}

func TestFigure5QualitativeClaims(t *testing.T) {
	cases := []struct {
		params delay.BenchmarkParams
		gain   float64
	}{
		// Needle-like literal bells: the peaked functions gain well over
		// an order of magnitude at small Q.
		{delay.LiteralParams(), 10},
		// Wide calibrated bells keep f high across much of the domain,
		// so the small-Q gain is a smaller (but still real) factor.
		{delay.CalibratedParams(), 2},
	}
	for _, c := range cases {
		params := c.params
		tb, err := Figure5(nil, params, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := Figure5Checks(tb, c.gain); err != nil {
			t.Fatalf("params %+v: %v", params, err)
		}
		// At the largest Q (2000, half of C) every bound collapses to
		// at most a couple of preemptions' worth of delay.
		last := len(tb.X) - 1
		for _, s := range tb.Series {
			if strings.HasPrefix(s.Name, "State") {
				continue
			}
			if s.Y[last] > 30 {
				t.Fatalf("%s at Q=2000: %g, want small", s.Name, s.Y[last])
			}
		}
	}
}

func TestFigure5SOAConstantAcrossFunctions(t *testing.T) {
	// The SOA series depends only on C, Q and max f: recomputing it for
	// Gaussian 2 and the two-peak function gives the same values.
	tb, err := Figure5(nil, delay.LiteralParams(), SweepOptions{Qs: []float64{20, 100, 500}})
	if err != nil {
		t.Fatal(err)
	}
	var soa []float64
	for _, s := range tb.Series {
		if s.Name == "State of the Art" {
			soa = s.Y
		}
	}
	if soa == nil {
		t.Fatal("SOA series missing")
	}
	for i, q := range tb.X {
		if q <= 10 {
			continue
		}
		if math.IsInf(soa[i], 1) {
			t.Fatalf("SOA infinite at Q=%g", q)
		}
	}
}

func TestFigure5ChecksDetectsViolation(t *testing.T) {
	tb, err := Figure5(nil, delay.LiteralParams(), SweepOptions{Qs: []float64{20, 100}})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a value to exceed the SOA and verify the check fires.
	for i := range tb.Series {
		if tb.Series[i].Name == "Gaussian 2" {
			tb.Series[i].Y[0] = 1e12
		}
	}
	if err := Figure5Checks(tb, 5); err == nil {
		t.Fatal("corrupted table passed checks")
	}
}

func TestFigure1Report(t *testing.T) {
	rep, err := Figure1Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "WCET=205", "digraph"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(rep, "MISMATCH") {
		t.Fatal("Figure 1 offsets mismatch the paper")
	}
}

func TestFigure2ReportCounterExample(t *testing.T) {
	rep, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	worst := math.Max(rep.Greedy.TotalDelay, rep.Peak.TotalDelay)
	if worst <= rep.Naive {
		t.Fatalf("counter-example lost: worst run %g <= naive %g", worst, rep.Naive)
	}
	if rep.Algorithm1 < worst {
		t.Fatalf("Algorithm 1 %g below observed %g", rep.Algorithm1, worst)
	}
	s := rep.String()
	for _, want := range []string{"naive", "Algorithm 1", "unsound"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestFigure3Report(t *testing.T) {
	rep, err := Figure3Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "p∩", "delaymax", "Q = 12"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

package eval

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/obs"
)

// qshareFixture builds a delay function with enough pieces that AutoIndex
// wraps it in the query index (the hint-capable kernel) and a Q grid inside
// its interesting range.
func qshareFixture(t *testing.T) (delay.Function, []float64) {
	t.Helper()
	const n = 48
	xs := make([]float64, n+1)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(2 * i)
	}
	for i := range ys {
		// A rough sawtooth: high early spikes decaying towards the tail,
		// so Algorithm 1's windows walk several pieces per query.
		ys[i] = 0.5 + float64((13*i)%7) + 5/float64(i+1)
	}
	f, err := delay.NewPiecewise(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]float64, 0, 10)
	for q := 12.0; q < 52; q += 4 {
		qs = append(qs, q)
	}
	return f, qs
}

// TestQSweepCrossQHints: on a single-worker sweep, each grid point's walk is
// seeded from the pieces the previous point recorded (sweep.qshare.seeded);
// only the curve's first computed point starts cold. The hints are advisory
// only — the indexed-with-hints sweep must agree bit for bit with the plain
// scan-kernel sweep.
func TestQSweepCrossQHints(t *testing.T) {
	f, qs := qshareFixture(t)
	reg := obs.NewRegistry()
	hinted, err := QSweep(nil, []SweepSpec{{Name: "curve", F: f}},
		SweepOptions{Qs: qs, Workers: 1, Obs: obs.NewScope(reg)})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range hinted[0].Points {
		if pt.Degraded || pt.Quarantined {
			t.Fatalf("point Q=%g degraded: %s", qs[i], pt.Note)
		}
	}
	seeded := reg.Counter("sweep.qshare.seeded").Value()
	cold := reg.Counter("sweep.qshare.cold").Value()
	if cold < 1 {
		t.Fatalf("no cold grid point (seeded=%d cold=%d)", seeded, cold)
	}
	if seeded == 0 {
		t.Fatalf("cross-Q seeding never happened (cold=%d over %d points)", cold, len(qs))
	}
	if seeded+cold > int64(len(qs)) {
		t.Fatalf("qshare counters exceed grid: seeded=%d cold=%d over %d points", seeded, cold, len(qs))
	}
	scan, err := QSweep(nil, []SweepSpec{{Name: "curve", F: f}},
		SweepOptions{Qs: qs, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		hv, sv := hinted[0].Points[i].Value, scan[0].Points[i].Value
		if hv != sv && !(math.IsNaN(hv) && math.IsNaN(sv)) {
			t.Fatalf("hinted and scan kernels differ at Q=%g: %g vs %g", qs[i], hv, sv)
		}
	}
}

// TestQSweepScanKernelNoHintCounters: the scan kernel records no walk pieces,
// so a NoIndex sweep must leave the qshare counters untouched (they count
// hint-capable walks only).
func TestQSweepScanKernelNoHintCounters(t *testing.T) {
	f, qs := qshareFixture(t)
	reg := obs.NewRegistry()
	if _, err := QSweep(nil, []SweepSpec{{Name: "curve", F: f}},
		SweepOptions{Qs: qs, Workers: 1, NoIndex: true, Obs: obs.NewScope(reg)}); err != nil {
		t.Fatal(err)
	}
	if s, c := reg.Counter("sweep.qshare.seeded").Value(), reg.Counter("sweep.qshare.cold").Value(); s != 0 || c != 0 {
		t.Fatalf("scan kernel bumped qshare counters: seeded=%d cold=%d", s, c)
	}
}

package eval

import (
	"fmt"

	"fnpr/internal/delay"
	"fnpr/internal/sim"
	"fnpr/internal/task"
	"fnpr/internal/textplot"
)

// PreemptionParams configures the preemption-collation experiment — an
// extension quantifying the paper's motivation: floating non-preemptive
// regions collate higher-priority arrivals into fewer preemption points,
// reducing both preemption counts and paid delay relative to fully
// preemptive scheduling.
type PreemptionParams struct {
	// Qs sweeps the victim task's NPR length.
	Qs []float64
	// Horizon is the simulated span per point.
	Horizon float64
}

// DefaultPreemptionParams returns the configuration used by the figures
// binary and the benchmarks.
func DefaultPreemptionParams() PreemptionParams {
	return PreemptionParams{
		Qs:      []float64{1, 2, 3, 4, 6, 8, 10, 12, 15, 20, 25, 30},
		Horizon: 60000,
	}
}

// preemptionWorkload is the fixed three-task workload the sweep runs on;
// only the victim's Q varies.
func preemptionWorkload(q float64) (task.Set, []delay.Function) {
	ts := task.Set{
		{Name: "fast", C: 1, T: 7, Q: 1, Prio: 0},
		{Name: "medium", C: 4, T: 23, Q: 2, Prio: 1},
		{Name: "victim", C: 30, T: 120, Q: q, Prio: 2},
	}
	fns := []delay.Function{
		nil,
		delay.Constant(0.3, 4),
		delay.FrontLoaded(3, 0.5, 30),
	}
	return ts, fns
}

// Preemptions runs the sweep and returns, per Q, the victim's average
// preemptions per job and average paid delay per job under floating NPR,
// with the fully-preemptive values as flat reference series.
func Preemptions(p PreemptionParams) (*textplot.Table, error) {
	if len(p.Qs) == 0 || p.Horizon <= 0 {
		return nil, fmt.Errorf("eval: invalid preemption parameters %+v", p)
	}
	tbl := &textplot.Table{
		XLabel: "Q (victim)",
		YLabel: "per-job average",
		X:      append([]float64(nil), p.Qs...),
		Series: []textplot.Series{
			{Name: "preemptions (floating NPR)"},
			{Name: "preemptions (fully preemptive)"},
			{Name: "delay (floating NPR)"},
			{Name: "delay (fully preemptive)"},
		},
	}
	run := func(mode sim.Mode, q float64) (perJobPreempt, perJobDelay float64, err error) {
		ts, fns := preemptionWorkload(q)
		res, err := sim.Run(sim.Config{
			Tasks: ts, Policy: sim.FixedPriority, Mode: mode,
			Horizon: p.Horizon, Delay: fns,
		})
		if err != nil {
			return 0, 0, err
		}
		st := res.Tasks[2]
		if st.Finished == 0 {
			return 0, 0, fmt.Errorf("eval: victim never finished")
		}
		return float64(st.Preemptions) / float64(st.Finished),
			st.DelayPaid / float64(st.Finished), nil
	}
	for _, q := range p.Qs {
		fp, fd, err := run(sim.FloatingNPR, q)
		if err != nil {
			return nil, err
		}
		pp, pd, err := run(sim.FullyPreemptive, q)
		if err != nil {
			return nil, err
		}
		tbl.Series[0].Y = append(tbl.Series[0].Y, fp)
		tbl.Series[1].Y = append(tbl.Series[1].Y, pp)
		tbl.Series[2].Y = append(tbl.Series[2].Y, fd)
		tbl.Series[3].Y = append(tbl.Series[3].Y, pd)
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// PreemptionChecks verifies the structural expectations: floating-NPR
// preemption counts never exceed the fully-preemptive reference, and they
// are non-increasing in Q (larger regions collate more arrivals) up to a
// small tolerance for boundary effects.
func PreemptionChecks(tbl *textplot.Table) error {
	col := func(name string) []float64 {
		for _, s := range tbl.Series {
			if s.Name == name {
				return s.Y
			}
		}
		return nil
	}
	fnpr := col("preemptions (floating NPR)")
	full := col("preemptions (fully preemptive)")
	if fnpr == nil || full == nil {
		return fmt.Errorf("eval: preemption table incomplete")
	}
	for i := range tbl.X {
		if fnpr[i] > full[i]+1e-9 {
			return fmt.Errorf("eval: FNPR preemptions (%g) above fully-preemptive (%g) at Q=%g",
				fnpr[i], full[i], tbl.X[i])
		}
	}
	const tolerance = 0.35 // jobs per hyperperiod fluctuate at window edges
	for i := 1; i < len(fnpr); i++ {
		if fnpr[i] > fnpr[i-1]+tolerance {
			return fmt.Errorf("eval: FNPR preemptions grew from %g to %g as Q rose to %g",
				fnpr[i-1], fnpr[i], tbl.X[i])
		}
	}
	return nil
}

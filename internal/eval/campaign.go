package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"fnpr/internal/guard"
)

// Campaign is the job-shaped view of the package's long-running experiments,
// used by callers that queue campaigns behind an admission-controlled worker
// pool (the analysis service): validate up front, run under a guard scope,
// return a JSON-marshalable result. Both campaign parameter types implement
// it.
type Campaign interface {
	// Kind names the campaign ("acceptance", "montecarlo") for job metadata
	// and metrics.
	Kind() string
	// Validate rejects malformed parameters without running anything.
	Validate() error
	// Fingerprint canonically hashes the parameters that determine the
	// campaign's result — the identity the durable job store records so a
	// recovered or idempotently retried submission can be matched to its
	// job. Parameters that only trade wall-clock for cores (worker counts)
	// and runtime attachments (journals, observability scopes) are
	// excluded: they never change the table.
	Fingerprint() string
	// Run executes the campaign under g and returns its result — the same
	// value the direct entry point (Acceptance, MonteCarlo) returns.
	Run(g *guard.Ctx) (any, error)
}

// fingerprint hashes the canonical JSON of a campaign's identity parameters,
// prefixed by its kind so equal parameter structs of different campaigns
// never collide.
func fingerprint(kind string, identity any) string {
	b, err := json.Marshal(identity)
	if err != nil {
		// Identity structs are plain numeric fields; marshal cannot fail.
		// Degrade to a kind-only fingerprint rather than panicking.
		b = nil
	}
	sum := sha256.Sum256(append([]byte(kind+"\n"), b...))
	return hex.EncodeToString(sum[:16])
}

// Kind implements Campaign.
func (p AcceptanceParams) Kind() string { return "acceptance" }

// Fingerprint implements Campaign: the hash covers exactly the fields the
// journal meta fingerprints (acceptanceMeta) — everything that changes the
// verdicts, nothing that doesn't.
func (p AcceptanceParams) Fingerprint() string {
	return fingerprint(p.Kind(), acceptanceMeta{
		Seed: p.Seed, SetsPerPoint: p.SetsPerPoint, Tasks: p.Tasks,
		UStart: p.UStart, UEnd: p.UEnd, UStep: p.UStep,
		DelayScale: p.DelayScale, QFraction: p.QFraction,
	})
}

// Run implements Campaign; the result is the *textplot.Table from Acceptance.
func (p AcceptanceParams) Run(g *guard.Ctx) (any, error) { return Acceptance(g, p) }

// Kind implements Campaign.
func (p MonteCarloParams) Kind() string { return "montecarlo" }

// monteCarloIdentity is the result-determining subset of MonteCarloParams
// (Workers only trades wall-clock for cores).
type monteCarloIdentity struct {
	Seed     int64   `json:"seed"`
	Trials   int     `json:"trials"`
	MaxTasks int     `json:"maxtasks"`
	Horizon  float64 `json:"horizon"`
}

// Fingerprint implements Campaign.
func (p MonteCarloParams) Fingerprint() string {
	return fingerprint(p.Kind(), monteCarloIdentity{
		Seed: p.Seed, Trials: p.Trials, MaxTasks: p.MaxTasks, Horizon: p.Horizon,
	})
}

// Run implements Campaign; the result is the *MonteCarloReport from
// MonteCarlo.
func (p MonteCarloParams) Run(g *guard.Ctx) (any, error) { return MonteCarlo(g, p) }

package eval

import "fnpr/internal/guard"

// Campaign is the job-shaped view of the package's long-running experiments,
// used by callers that queue campaigns behind an admission-controlled worker
// pool (the analysis service): validate up front, run under a guard scope,
// return a JSON-marshalable result. Both campaign parameter types implement
// it.
type Campaign interface {
	// Kind names the campaign ("acceptance", "montecarlo") for job metadata
	// and metrics.
	Kind() string
	// Validate rejects malformed parameters without running anything.
	Validate() error
	// Run executes the campaign under g and returns its result — the same
	// value the direct entry point (Acceptance, MonteCarlo) returns.
	Run(g *guard.Ctx) (any, error)
}

// Kind implements Campaign.
func (p AcceptanceParams) Kind() string { return "acceptance" }

// Run implements Campaign; the result is the *textplot.Table from Acceptance.
func (p AcceptanceParams) Run(g *guard.Ctx) (any, error) { return Acceptance(g, p) }

// Kind implements Campaign.
func (p MonteCarloParams) Kind() string { return "montecarlo" }

// Run implements Campaign; the result is the *MonteCarloReport from
// MonteCarlo.
func (p MonteCarloParams) Run(g *guard.Ctx) (any, error) { return MonteCarlo(g, p) }

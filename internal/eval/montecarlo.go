package eval

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/sim"
	"fnpr/internal/synth"
	"fnpr/internal/task"
)

// MonteCarloParams configures the simulation campaign that stress-tests
// Theorem 1 empirically: draw random floating-NPR jobsets, simulate them,
// and check that Algorithm 1's cumulative-delay bound dominates the delay
// every simulated job actually paid.
type MonteCarloParams struct {
	// Seed makes the campaign reproducible; each trial draws from its
	// own sub-stream (synth.SubRand), so results are independent of the
	// worker count.
	Seed int64
	// Trials is the number of random jobsets to simulate.
	Trials int
	// MaxTasks caps the per-trial task count (each trial draws 2..MaxTasks).
	MaxTasks int
	// Horizon is the simulated span per trial.
	Horizon float64
	// Workers sizes the worker pool; <= 0 selects GOMAXPROCS, 1 runs
	// serially. Each worker owns one pooled sim.Runner.
	Workers int
	// Obs receives campaign progress events and metrics; nil falls back
	// to the guard's scope.
	Obs *obs.Scope
}

// DefaultMonteCarloParams returns the configuration the simulate binary and
// the benchmark suite use.
func DefaultMonteCarloParams() MonteCarloParams {
	return MonteCarloParams{
		Seed:     1,
		Trials:   2000,
		MaxTasks: 4,
		Horizon:  2000,
	}
}

// Validate rejects malformed campaign parameters up front.
func (p MonteCarloParams) Validate() error {
	switch {
	case p.Trials <= 0:
		return guard.Invalidf("eval: Trials %d, need > 0", p.Trials)
	case p.MaxTasks < 2:
		return guard.Invalidf("eval: MaxTasks %d, need >= 2", p.MaxTasks)
	case math.IsNaN(p.Horizon) || math.IsInf(p.Horizon, 0) || p.Horizon <= 0:
		return guard.Invalidf("eval: Horizon %g, need finite > 0", p.Horizon)
	}
	return nil
}

func (p MonteCarloParams) scope(g *guard.Ctx) *obs.Scope {
	if p.Obs != nil {
		return p.Obs
	}
	return g.Obs()
}

// MonteCarloReport aggregates the campaign. Violations must be zero: a
// single job paying more than its task's Algorithm 1 bound would falsify
// Theorem 1 (or expose a simulator/analysis bug).
type MonteCarloReport struct {
	Trials      int     // trials simulated
	Jobs        int     // jobs observed across all schedules
	Preemptions int     // preemptions observed
	Violations  int     // jobs whose paid delay exceeded their bound
	MaxPaid     float64 // largest cumulative delay any job paid
	MinSlack    float64 // tightest bound-minus-paid gap over preempted jobs (+Inf if none)
}

// mcVerdict is one trial's contribution, a pure function of (Seed, trial).
type mcVerdict struct {
	jobs, preemptions, violations int
	maxPaid, minSlack             float64
}

// monteCarloTrial draws the trial's jobset from its own RNG sub-stream,
// simulates it on the (per-worker, pooled) runner and compares every job's
// paid delay against its task's Algorithm 1 bound. The generator mirrors the
// sim package's Theorem 1 integration test: peaked random delay functions
// with Q > max delay so every bound converges.
func monteCarloTrial(g *guard.Ctx, p MonteCarloParams, trial int, runner *sim.Runner) (mcVerdict, error) {
	v := mcVerdict{minSlack: math.Inf(1)}
	if err := g.Tick(); err != nil {
		return v, err
	}
	r := synth.SubRand(p.Seed, 0, trial)
	n := 2 + r.Intn(p.MaxTasks-1)
	ts := make(task.Set, 0, n)
	fns := make([]delay.Function, 0, n)
	for i := 0; i < n; i++ {
		c := 5 + r.Float64()*30
		period := c*2 + r.Float64()*100
		maxD := 0.5 + r.Float64()*2
		q := maxD + 1 + r.Float64()*6
		if q > c {
			q = c
		}
		ts = append(ts, task.Task{
			Name: string(rune('a' + i)),
			C:    c, T: period, Q: q, Prio: i,
		})
		fns = append(fns, synth.DelayFunction(r, c, maxD, 1+r.Intn(5)))
	}
	policy := sim.FixedPriority
	if trial%2 == 1 {
		policy = sim.EDF
	}
	res, err := runner.Run(g, sim.Config{
		Tasks: ts, Policy: policy, Mode: sim.FloatingNPR,
		Horizon: p.Horizon, Delay: fns,
		ExecTime:   0.6 + 0.4*r.Float64(),
		SwitchCost: 0.1 * r.Float64(),
	})
	if err != nil {
		return v, err
	}
	for i := range ts {
		b, err := core.Analyze(g, fns[i], ts[i].Q, core.Options{})
		if err != nil {
			return v, err
		}
		bound := b.TotalDelay
		for _, j := range res.Jobs {
			if j.Task != i {
				continue
			}
			v.jobs++
			v.preemptions += j.Preemptions
			if j.DelayPaid > v.maxPaid {
				v.maxPaid = j.DelayPaid
			}
			if j.DelayPaid > bound+1e-9 {
				v.violations++
			}
			if j.Preemptions > 0 {
				if slack := bound - j.DelayPaid; slack < v.minSlack {
					v.minSlack = slack
				}
			}
		}
	}
	return v, nil
}

// MonteCarlo runs the campaign. Trials are sharded over p.Workers
// goroutines, each owning one pooled sim.Runner; verdicts are aggregated in
// trial order, so the report is bit-identical for every worker count.
func MonteCarlo(g *guard.Ctx, p MonteCarloParams) (*MonteCarloReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sc := p.scope(g)
	sc.Emit(obs.Event{Type: obs.CampaignStarted, Spec: "montecarlo", Total: p.Trials})
	sc.Gauge("campaign.workers").Set(float64(workers))
	trialsDone := sc.Counter("campaign.trials")
	// Progress granularity: ten CampaignPoint events across the run.
	chunk := p.Trials / 10
	if chunk == 0 {
		chunk = 1
	}

	verdicts := make([]mcVerdict, p.Trials)
	if workers == 1 {
		runner := sim.NewRunner()
		for tr := 0; tr < p.Trials; tr++ {
			v, err := monteCarloTrial(g, p, tr, runner)
			if err != nil {
				return nil, err
			}
			verdicts[tr] = v
			trialsDone.Inc()
			if (tr+1)%chunk == 0 {
				sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "montecarlo",
					Completed: tr + 1, Total: p.Trials})
			}
		}
	} else {
		var (
			mu       sync.Mutex
			abortErr error
		)
		abort := func(err error) {
			mu.Lock()
			if abortErr == nil {
				abortErr = err
			}
			mu.Unlock()
		}
		aborted := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return abortErr != nil
		}
		var completed atomic.Int64
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runner := sim.NewRunner() // per-worker pooled simulator
				for tr := range jobs {
					if aborted() {
						continue
					}
					v, err := monteCarloTrial(g, p, tr, runner)
					if err != nil {
						abort(err)
						continue
					}
					verdicts[tr] = v
					trialsDone.Inc()
					if done := completed.Add(1); done%int64(chunk) == 0 {
						sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "montecarlo",
							Completed: int(done), Total: p.Trials})
					}
				}
			}()
		}
		for tr := 0; tr < p.Trials; tr++ {
			jobs <- tr
		}
		close(jobs)
		wg.Wait()
		mu.Lock()
		err := abortErr
		mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	rep := &MonteCarloReport{Trials: p.Trials, MinSlack: math.Inf(1)}
	for _, v := range verdicts {
		rep.Jobs += v.jobs
		rep.Preemptions += v.preemptions
		rep.Violations += v.violations
		if v.maxPaid > rep.MaxPaid {
			rep.MaxPaid = v.maxPaid
		}
		if v.minSlack < rep.MinSlack {
			rep.MinSlack = v.minSlack
		}
	}
	sc.Emit(obs.Event{Type: obs.CampaignFinished, Spec: "montecarlo",
		Completed: p.Trials, Total: p.Trials})
	return rep, nil
}

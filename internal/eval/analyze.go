package eval

import (
	"math"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// AnalyzeSet is the batched task-set entry point of the analysis stack: it
// evaluates the Algorithm 1 cumulative-delay bound of every task at every Q
// of the grid, building one query index per task (delay.AutoIndex) that is
// shared across the whole grid and the guarded worker pool. For a set of n
// tasks whose delay functions have up to m pieces, the whole campaign costs
// O(n·m·log m) preprocessing plus O(log m) per (task, Q) window instead of
// the scan kernel's O(m) — the difference between minutes and seconds on
// Figure 5-scale sweeps over CFG-derived functions.
//
// fns[i] is task i's preemption delay function; a nil entry means the task
// suffers no preemption delay and yields an all-zero curve without running
// the analysis. Non-nil functions must match their task's WCET: Domain() ==
// ts[i].C (within 1e-9, the same tolerance internal/sched applies).
//
// The returned slice is indexed like ts; each curve's points are indexed
// like opts.Qs. Every grid point walks the SweepOptions degradation ladder
// (retry, Equation 4 fallback, quarantine), and task names key the
// checkpoint journal, so sets with duplicate names cannot be journaled
// coherently. On abort the completed points are returned alongside a
// *PartialError, exactly like QSweep.
func AnalyzeSet(g *guard.Ctx, ts task.Set, fns []delay.Function, opts SweepOptions) ([]SweepResult, error) {
	qs := opts.Qs
	if len(ts) == 0 {
		return nil, guard.Invalidf("eval: empty task set")
	}
	if len(fns) != len(ts) {
		return nil, guard.Invalidf("eval: %d delay functions for %d tasks", len(fns), len(ts))
	}
	if len(qs) == 0 {
		return nil, guard.Invalidf("eval: task-set analysis needs a non-empty Q grid")
	}
	out := make([]SweepResult, len(ts))
	var specs []SweepSpec
	var live []int // out index of each spec
	for i, tk := range ts {
		if fns[i] == nil {
			pts := make([]SweepPoint, len(qs))
			for k, q := range qs {
				pts[k] = SweepPoint{Q: q, Done: true}
			}
			out[i] = SweepResult{Name: tk.Name, Points: pts}
			continue
		}
		if d := fns[i].Domain(); math.Abs(d-tk.C) > 1e-9 {
			return nil, guard.Invalidf("eval: task %s has C=%g but delay function domain %g", tk.Name, tk.C, d)
		}
		f := fns[i]
		if !opts.NoIndex {
			f = delay.AutoIndex(f)
		}
		specs = append(specs, SweepSpec{Name: tk.Name, F: f})
		live = append(live, i)
	}
	if len(specs) == 0 {
		return out, nil
	}
	res, err := QSweep(g, specs, opts)
	for k := range res {
		out[live[k]] = res[k]
	}
	// Account the incremental-recomputation split: with a result cache
	// attached (SweepOptions.Memo), the terms whose (function, Q) identity
	// is unchanged since an earlier run are reused and only the edited
	// tasks' terms are recomputed. The counter pair is how the incremental
	// tests — and a -metrics snapshot — see the split.
	sc := opts.scope(g)
	var reused, recomputed int64
	for _, r := range res {
		for _, pt := range r.Points {
			if !pt.Done {
				continue
			}
			if pt.Cached {
				reused++
			} else {
				recomputed++
			}
		}
	}
	sc.Counter("sweep.analyzeset.reused").Add(reused)
	sc.Counter("sweep.analyzeset.recomputed").Add(recomputed)
	return out, err
}

// EffectiveWCETs extracts C'i = Ci + bound from one grid column of an
// AnalyzeSet result (Equation 5 of the paper): qi indexes the Q grid the
// curves were computed on. Quarantined points surface as NaN, divergent ones
// as +Inf — both propagate into the effective WCET so downstream
// schedulability code cannot mistake a failed point for a finished one.
func EffectiveWCETs(ts task.Set, curves []SweepResult, qi int) ([]float64, error) {
	if len(curves) != len(ts) {
		return nil, guard.Invalidf("eval: %d curves for %d tasks", len(curves), len(ts))
	}
	out := make([]float64, len(ts))
	for i := range ts {
		if qi < 0 || qi >= len(curves[i].Points) {
			return nil, guard.Invalidf("eval: grid column %d outside task %s's %d points", qi, ts[i].Name, len(curves[i].Points))
		}
		out[i] = ts[i].C + curves[i].Points[qi].Value
	}
	return out, nil
}

package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/npr"
	"fnpr/internal/obs"
	"fnpr/internal/sched"
	"fnpr/internal/synth"
	"fnpr/internal/textplot"
)

// AcceptanceParams configures the schedulability acceptance-ratio
// experiment — an extension beyond the paper's own evaluation, in the style
// its venue uses to compare schedulability tests: sweep total utilization,
// draw random task sets, and measure the fraction each analysis admits.
type AcceptanceParams struct {
	// Seed makes the experiment reproducible. Every (point, trial) shard
	// derives its own RNG sub-stream from it (synth.SubRand), so the
	// campaign's output is a pure function of the seed — never of the
	// worker count or goroutine scheduling.
	Seed int64
	// SetsPerPoint is the number of random task sets per utilization.
	SetsPerPoint int
	// Tasks per set.
	Tasks int
	// UStart, UEnd, UStep define the utilization sweep.
	UStart, UEnd, UStep float64
	// DelayScale sets the peak preemption delay as a fraction of each
	// task's C (front-loaded pattern).
	DelayScale float64
	// QFraction sets Q as a fraction of C (clamped to C).
	QFraction float64
	// Workers is the size of the trial worker pool; <= 0 selects
	// GOMAXPROCS, 1 runs serially on the caller's goroutine. The result
	// is bit-identical for every value.
	Workers int
	// Obs receives campaign progress events and metrics; nil falls back
	// to the guard's scope.
	Obs *obs.Scope
	// Journal, when non-nil, checkpoints each fully aggregated utilization
	// point as it completes, so an aborted campaign (SIGTERM, deadline,
	// budget) can be resumed without redoing finished points.
	Journal *journal.Journal
	// Resume is the journal's latest-record view (journal.Latest); restored
	// points skip all their trials. Because every point is a pure function
	// of (Seed, point, trial), a resumed campaign's table is byte-identical
	// to an uninterrupted run's.
	Resume map[string]json.RawMessage
}

// DefaultAcceptanceParams returns the configuration used by the figures
// binary and the benchmark suite.
func DefaultAcceptanceParams() AcceptanceParams {
	return AcceptanceParams{
		Seed:         1,
		SetsPerPoint: 200,
		Tasks:        5,
		UStart:       0.40,
		UEnd:         0.95,
		UStep:        0.05,
		DelayScale:   0.10,
		QFraction:    0.25,
	}
}

// Validate rejects malformed campaign parameters up front, so a bad config
// fails fast instead of looping forever or failing thousands of trials in.
func (p AcceptanceParams) Validate() error {
	switch {
	case p.SetsPerPoint <= 0:
		return guard.Invalidf("eval: SetsPerPoint %d, need > 0", p.SetsPerPoint)
	case p.Tasks <= 0:
		return guard.Invalidf("eval: Tasks %d, need > 0", p.Tasks)
	case math.IsNaN(p.UStep) || p.UStep <= 0:
		return guard.Invalidf("eval: UStep %g, need > 0", p.UStep)
	case math.IsNaN(p.UStart) || math.IsInf(p.UStart, 0) || p.UStart <= 0:
		return guard.Invalidf("eval: UStart %g, need finite > 0", p.UStart)
	case math.IsNaN(p.UEnd) || math.IsInf(p.UEnd, 0) || p.UEnd < p.UStart:
		return guard.Invalidf("eval: UEnd %g, need finite >= UStart %g", p.UEnd, p.UStart)
	case math.IsNaN(p.DelayScale) || p.DelayScale < 0:
		return guard.Invalidf("eval: DelayScale %g, need >= 0", p.DelayScale)
	case math.IsNaN(p.QFraction) || p.QFraction <= 0:
		return guard.Invalidf("eval: QFraction %g, need > 0", p.QFraction)
	}
	return nil
}

func (p AcceptanceParams) scope(g *guard.Ctx) *obs.Scope {
	if p.Obs != nil {
		return p.Obs
	}
	return g.Obs()
}

// points enumerates the utilization grid.
func (p AcceptanceParams) points() []float64 {
	var pts []float64
	for u := p.UStart; u <= p.UEnd+1e-9; u += p.UStep {
		pts = append(pts, u)
	}
	return pts
}

// acceptanceMetaKey fingerprints a journaled campaign; acceptancePointKey is
// the journal key of one fully aggregated utilization point.
const acceptanceMetaKey = "campaign:acceptance"

func acceptancePointKey(pt int, u float64) string {
	return fmt.Sprintf("accpoint:%d:%g", pt, u)
}

// acceptanceMeta is the journal fingerprint of a campaign's shape. Every
// parameter that changes the verdicts is included, so resuming with different
// parameters is rejected instead of silently mixing two experiments.
type acceptanceMeta struct {
	Seed         int64   `json:"seed"`
	SetsPerPoint int     `json:"sets"`
	Tasks        int     `json:"tasks"`
	UStart       float64 `json:"ustart"`
	UEnd         float64 `json:"uend"`
	UStep        float64 `json:"ustep"`
	DelayScale   float64 `json:"delayscale"`
	QFraction    float64 `json:"qfraction"`
}

// acceptancePointRec is one checkpointed point: the utilization and the
// per-analysis admit counts over the point's SetsPerPoint trials.
type acceptancePointRec struct {
	U     float64 `json:"u"`
	Admit [4]int  `json:"admit"`
}

// checkMeta verifies a resumed journal belongs to this campaign's parameters
// and stamps a fresh journal with them.
func (p AcceptanceParams) checkMeta() error {
	meta := acceptanceMeta{
		Seed: p.Seed, SetsPerPoint: p.SetsPerPoint, Tasks: p.Tasks,
		UStart: p.UStart, UEnd: p.UEnd, UStep: p.UStep,
		DelayScale: p.DelayScale, QFraction: p.QFraction,
	}
	if p.Resume != nil {
		var prev acceptanceMeta
		ok, err := journal.Get(p.Resume, acceptanceMetaKey, &prev)
		if err != nil {
			return err
		}
		if ok {
			if prev != meta {
				return guard.Invalidf("eval: journal belongs to a different acceptance campaign (%+v)", prev)
			}
			return nil
		}
	}
	if p.Journal != nil {
		return p.Journal.Append(acceptanceMetaKey, meta)
	}
	return nil
}

// restore loads checkpointed points from the resume view. admits[pt] and
// restored[pt] are filled for every point the journal already holds.
func (p AcceptanceParams) restore(pts []float64, admits [][4]int, restored []bool) (int, error) {
	if p.Resume == nil {
		return 0, nil
	}
	n := 0
	for pt, u := range pts {
		var rec acceptancePointRec
		ok, err := journal.Get(p.Resume, acceptancePointKey(pt, u), &rec)
		if err != nil {
			return n, err
		}
		if ok && rec.U == u {
			admits[pt] = rec.Admit
			restored[pt] = true
			n++
		}
	}
	return n, nil
}

// acceptanceVerdict is the outcome of one random task set: which of the four
// analyses admitted it. It depends only on (Seed, point, trial) — the
// campaign aggregates verdicts in shard order, so the table is identical for
// every worker count.
type acceptanceVerdict struct {
	admit [4]bool
}

// acceptanceTrial draws the (point, trial) shard's task set from its own RNG
// sub-stream and runs the four analyses. Analysis failures count as
// rejections (the set is not admitted) unless the guard aborted, which stops
// the campaign.
//
// The response-time fixpoints are warm-chained: delay bounds are
// non-negative, so the no-delay response times lower-bound every delay-aware
// variant, and Algorithm 1's response times lower-bound Equation 4's (its C'
// vector is pointwise smaller). Seeding is sound in that direction and keeps
// every result bit-identical (see sched.Options.Warm); it only trims
// fixpoint iterations.
func acceptanceTrial(g *guard.Ctx, p AcceptanceParams, point int, u float64, trial int) (acceptanceVerdict, error) {
	var v acceptanceVerdict
	if err := g.Tick(); err != nil {
		return v, err
	}
	r := synth.SubRand(p.Seed, point, trial)
	ts, err := synth.TaskSet(r, synth.TaskSetParams{
		N: p.Tasks, Utilization: u,
		PeriodLo: 20, PeriodHi: 2000, RoundPeriod: true,
		QFraction: p.QFraction, MinQ: 0.1,
	})
	if err != nil {
		return v, err
	}
	// Clamp each Q by the blocking tolerance of the higher-priority tasks
	// (the paper assumes Q comes from such an analysis); sets that are
	// infeasible even fully preemptively count as rejections everywhere.
	if qs, err := npr.AssignQ(ts, npr.FixedPriority); err == nil {
		for i := range ts {
			if qs[i].Q < ts[i].Q {
				ts[i].Q = qs[i].Q
			}
			if ts[i].Q <= 0 {
				ts[i].Q = 1e-3
			}
		}
	} else {
		return v, nil
	}
	fns := make([]delay.Function, len(ts))
	for i, tk := range ts {
		if i == 0 {
			continue // highest priority: never preempted
		}
		peak := p.DelayScale * tk.C
		// Keep the analysis well-defined: the NPR must exceed the peak
		// delay or every bound diverges.
		if peak >= tk.Q {
			peak = tk.Q * 0.8
		}
		fn, err := delay.NewFrontLoaded(peak, peak/5, tk.C)
		if err != nil {
			return v, err
		}
		fns[i] = fn
	}
	// No-delay envelope first: its response times seed the others.
	var ndRTs []float64
	nd, err := sched.Analyze(g, ts, sched.Options{Delay: make([]delay.Function, len(ts)), Method: sched.Algorithm1})
	if err == nil {
		v.admit[3] = nd.Schedulable
		ndRTs = nd.Response
	} else if guard.Abortive(err) {
		return v, err
	}
	var a1RTs []float64
	a1, err := sched.Analyze(g, ts, sched.Options{Delay: fns, Method: sched.Algorithm1, Warm: ndRTs})
	if err == nil {
		v.admit[0] = a1.Schedulable
		a1RTs = a1.Response
	} else if guard.Abortive(err) {
		return v, err
	}
	if lim, err := sched.Analyze(g, ts, sched.Options{Delay: fns, Method: sched.Algorithm1, Limited: true, Warm: ndRTs}); err == nil {
		v.admit[1] = lim.Schedulable
	} else if guard.Abortive(err) {
		return v, err
	}
	e4Warm := ndRTs
	if a1RTs != nil {
		e4Warm = a1RTs // Algorithm 1 lower-bounds Equation 4
	}
	if e4, err := sched.Analyze(g, ts, sched.Options{Delay: fns, Method: sched.Equation4, Warm: e4Warm}); err == nil {
		v.admit[2] = e4.Schedulable
	} else if guard.Abortive(err) {
		return v, err
	}
	return v, nil
}

// Acceptance runs the experiment and returns the acceptance ratio of each
// analysis per utilization point:
//
//	algorithm1          — FNPR RTA with the paper's Algorithm 1 C'
//	algorithm1-limited  — plus the preemption-count refinement
//	equation4           — FNPR RTA with the state-of-the-art Equation 4 C'
//	no-delay            — FNPR RTA ignoring preemption delay (optimistic
//	                      upper envelope on what any sound test can admit)
//
// Trials are sharded over p.Workers goroutines; each shard draws from its
// own deterministic RNG sub-stream and verdicts are aggregated in shard
// order, so the table is bit-identical for every worker count.
//
// With a Journal attached, every fully aggregated utilization point is
// checkpointed as it completes, and a Resume view restores finished points
// without rerunning a single trial; determinism makes the resumed table
// byte-identical to an uninterrupted run's.
func Acceptance(g *guard.Ctx, p AcceptanceParams) (*textplot.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.checkMeta(); err != nil {
		return nil, err
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	pts := p.points()
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sc := p.scope(g)
	total := len(pts) * p.SetsPerPoint
	sc.Emit(obs.Event{Type: obs.CampaignStarted, Spec: "acceptance", Total: total})
	sc.Gauge("campaign.workers").Set(float64(workers))
	trialsDone := sc.Counter("campaign.trials")

	admits := make([][4]int, len(pts))
	restored := make([]bool, len(pts))
	if n, err := p.restore(pts, admits, restored); err != nil {
		return nil, err
	} else if n > 0 {
		sc.Counter("campaign.points.restored").Add(int64(n))
		sc.Emit(obs.Event{Type: obs.CampaignResumed, Spec: "acceptance",
			Restored: n * p.SetsPerPoint, Total: total})
	}
	// checkpoint appends the point's aggregate to the journal; an append
	// failure aborts the campaign (a journal that silently stops recording
	// would resume wrong).
	checkpoint := func(pt int, u float64, admit [4]int) error {
		if p.Journal == nil {
			return nil
		}
		return p.Journal.Append(acceptancePointKey(pt, u), acceptancePointRec{U: u, Admit: admit})
	}

	if workers == 1 {
		done := 0
		for pt, u := range pts {
			if restored[pt] {
				done += p.SetsPerPoint
				continue
			}
			var admit [4]int
			for tr := 0; tr < p.SetsPerPoint; tr++ {
				v, err := acceptanceTrial(g, p, pt, u, tr)
				if err != nil {
					return nil, err
				}
				for k, ok := range v.admit {
					if ok {
						admit[k]++
					}
				}
				trialsDone.Inc()
			}
			admits[pt] = admit
			if err := checkpoint(pt, u, admit); err != nil {
				return nil, err
			}
			done += p.SetsPerPoint
			sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "acceptance",
				Q: u, Completed: done, Total: total})
		}
	} else if err := p.runSharded(g, sc, pts, workers, admits, restored, checkpoint); err != nil {
		return nil, err
	}

	tbl := &textplot.Table{
		XLabel: "utilization",
		YLabel: "acceptance ratio",
		Series: []textplot.Series{
			{Name: "algorithm1"},
			{Name: "algorithm1-limited"},
			{Name: "equation4"},
			{Name: "no-delay"},
		},
	}
	for pt, u := range pts {
		tbl.X = append(tbl.X, u)
		for k := 0; k < 4; k++ {
			tbl.Series[k].Y = append(tbl.Series[k].Y, float64(admits[pt][k])/float64(p.SetsPerPoint))
		}
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	sc.Emit(obs.Event{Type: obs.CampaignFinished, Spec: "acceptance",
		Completed: total, Total: total})
	return tbl, nil
}

// runSharded fans the campaign's (point, trial) shards out over the worker
// pool, writing each verdict into its own slot of a shared slice. The worker
// finishing a point's last trial aggregates that point's admit counts into
// admits (verdicts are per-slot, so the aggregation order — and hence the
// table — is independent of worker interleaving), checkpoints it and emits
// its progress event. Restored points are never enqueued. The first abortive
// error wins; remaining shards are skipped.
func (p AcceptanceParams) runSharded(g *guard.Ctx, sc *obs.Scope, pts []float64, workers int,
	admits [][4]int, restored []bool, checkpoint func(int, float64, [4]int) error) error {
	trialsDone := sc.Counter("campaign.trials")
	total := len(pts) * p.SetsPerPoint
	verdicts := make([]acceptanceVerdict, total)
	// pointLeft counts each utilization point's outstanding trials so the
	// worker finishing a point's last trial can aggregate and checkpoint it.
	pointLeft := make([]atomic.Int64, len(pts))
	var completed atomic.Int64
	for i := range pointLeft {
		if restored[i] {
			completed.Add(int64(p.SetsPerPoint))
			continue
		}
		pointLeft[i].Store(int64(p.SetsPerPoint))
	}

	var (
		mu       sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		mu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return abortErr != nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if aborted() {
					continue
				}
				pt := idx / p.SetsPerPoint
				tr := idx % p.SetsPerPoint
				v, err := acceptanceTrial(g, p, pt, pts[pt], tr)
				if err != nil {
					abort(err)
					continue
				}
				verdicts[idx] = v
				trialsDone.Inc()
				done := completed.Add(1)
				if pointLeft[pt].Add(-1) == 0 {
					// Last trial of the point: every sibling slot was
					// written before its pointLeft decrement, so the
					// aggregation below observes all of them.
					var admit [4]int
					for i := pt * p.SetsPerPoint; i < (pt+1)*p.SetsPerPoint; i++ {
						for k, ok := range verdicts[i].admit {
							if ok {
								admit[k]++
							}
						}
					}
					admits[pt] = admit
					if err := checkpoint(pt, pts[pt], admit); err != nil {
						abort(err)
						continue
					}
					sc.Emit(obs.Event{Type: obs.CampaignPoint, Spec: "acceptance",
						Q: pts[pt], Completed: int(done), Total: total})
				}
			}
		}()
	}
	for idx := 0; idx < total; idx++ {
		if restored[idx/p.SetsPerPoint] {
			continue
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return abortErr
}

// AcceptanceChecks verifies the structural guarantees the experiment must
// exhibit: ratios in [0,1]; equation4 never admits a set algorithm1 rejects
// in aggregate (soundness of the dominance claim at population level:
// ratio(eq4) <= ratio(alg1)); the limited refinement at least matches
// algorithm1; nothing exceeds the no-delay envelope.
func AcceptanceChecks(tbl *textplot.Table) error {
	col := func(name string) []float64 {
		for _, s := range tbl.Series {
			if s.Name == name {
				return s.Y
			}
		}
		return nil
	}
	a1 := col("algorithm1")
	a1l := col("algorithm1-limited")
	e4 := col("equation4")
	nd := col("no-delay")
	if a1 == nil || a1l == nil || e4 == nil || nd == nil {
		return fmt.Errorf("eval: acceptance table incomplete")
	}
	for i := range tbl.X {
		for _, v := range []float64{a1[i], a1l[i], e4[i], nd[i]} {
			if v < 0 || v > 1 {
				return fmt.Errorf("eval: ratio %g outside [0,1] at U=%g", v, tbl.X[i])
			}
		}
		if e4[i] > a1[i]+1e-12 {
			return fmt.Errorf("eval: equation4 (%g) above algorithm1 (%g) at U=%g", e4[i], a1[i], tbl.X[i])
		}
		if a1[i] > a1l[i]+1e-12 {
			return fmt.Errorf("eval: algorithm1 (%g) above limited refinement (%g) at U=%g", a1[i], a1l[i], tbl.X[i])
		}
		if a1l[i] > nd[i]+1e-12 {
			return fmt.Errorf("eval: limited (%g) above no-delay envelope (%g) at U=%g", a1l[i], nd[i], tbl.X[i])
		}
	}
	return nil
}

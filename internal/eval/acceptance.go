package eval

import (
	"fmt"
	"math/rand"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/npr"
	"fnpr/internal/sched"
	"fnpr/internal/synth"
	"fnpr/internal/textplot"
)

// AcceptanceParams configures the schedulability acceptance-ratio
// experiment — an extension beyond the paper's own evaluation, in the style
// its venue uses to compare schedulability tests: sweep total utilization,
// draw random task sets, and measure the fraction each analysis admits.
type AcceptanceParams struct {
	// Seed makes the experiment reproducible.
	Seed int64
	// SetsPerPoint is the number of random task sets per utilization.
	SetsPerPoint int
	// Tasks per set.
	Tasks int
	// UStart, UEnd, UStep define the utilization sweep.
	UStart, UEnd, UStep float64
	// DelayScale sets the peak preemption delay as a fraction of each
	// task's C (front-loaded pattern).
	DelayScale float64
	// QFraction sets Q as a fraction of C (clamped to C).
	QFraction float64
}

// DefaultAcceptanceParams returns the configuration used by the figures
// binary and the benchmark suite.
func DefaultAcceptanceParams() AcceptanceParams {
	return AcceptanceParams{
		Seed:         1,
		SetsPerPoint: 200,
		Tasks:        5,
		UStart:       0.40,
		UEnd:         0.95,
		UStep:        0.05,
		DelayScale:   0.10,
		QFraction:    0.25,
	}
}

// Acceptance runs the experiment and returns the acceptance ratio of each
// analysis per utilization point:
//
//	algorithm1          — FNPR RTA with the paper's Algorithm 1 C'
//	algorithm1-limited  — plus the preemption-count refinement
//	equation4           — FNPR RTA with the state-of-the-art Equation 4 C'
//	no-delay            — FNPR RTA ignoring preemption delay (optimistic
//	                      upper envelope on what any sound test can admit)
func Acceptance(g *guard.Ctx, p AcceptanceParams) (*textplot.Table, error) {
	if p.SetsPerPoint <= 0 || p.Tasks <= 0 || p.UStep <= 0 || p.UStart <= 0 || p.UEnd < p.UStart {
		return nil, guard.Invalidf("eval: invalid acceptance parameters %+v", p)
	}
	r := rand.New(rand.NewSource(p.Seed))
	tbl := &textplot.Table{
		XLabel: "utilization",
		YLabel: "acceptance ratio",
		Series: []textplot.Series{
			{Name: "algorithm1"},
			{Name: "algorithm1-limited"},
			{Name: "equation4"},
			{Name: "no-delay"},
		},
	}
	for u := p.UStart; u <= p.UEnd+1e-9; u += p.UStep {
		var admit [4]int
		for s := 0; s < p.SetsPerPoint; s++ {
			if err := g.Tick(); err != nil {
				return nil, err
			}
			ts, err := synth.TaskSet(r, synth.TaskSetParams{
				N: p.Tasks, Utilization: u,
				PeriodLo: 20, PeriodHi: 2000, RoundPeriod: true,
				QFraction: p.QFraction, MinQ: 0.1,
			})
			if err != nil {
				return nil, err
			}
			// Clamp each Q by the blocking tolerance of the
			// higher-priority tasks (the paper assumes Q comes from
			// such an analysis); sets that are infeasible even
			// fully preemptively count as rejections everywhere.
			if qs, err := npr.AssignQ(ts, npr.FixedPriority); err == nil {
				for i := range ts {
					if qs[i].Q < ts[i].Q {
						ts[i].Q = qs[i].Q
					}
					if ts[i].Q <= 0 {
						ts[i].Q = 1e-3
					}
				}
			} else {
				continue
			}
			fns := make([]delay.Function, len(ts))
			for i, tk := range ts {
				if i == 0 {
					continue // highest priority: never preempted
				}
				peak := p.DelayScale * tk.C
				// Keep the analysis well-defined: the NPR must
				// exceed the peak delay or every bound diverges.
				if peak >= tk.Q {
					peak = tk.Q * 0.8
				}
				fn, err := delay.NewFrontLoaded(peak, peak/5, tk.C)
				if err != nil {
					return nil, err
				}
				fns[i] = fn
			}
			a := sched.FNPRAnalysis{Tasks: ts, Delay: fns, Method: sched.Algorithm1}
			if rts, err := a.ResponseTimesFPCtx(g); err == nil && sched.Schedulable(ts, rts) {
				admit[0]++
			} else if err != nil && guard.Abortive(err) {
				return nil, err
			}
			if lim, err := a.ResponseTimesFPLimitedCtx(g); err == nil && sched.Schedulable(ts, lim.Response) {
				admit[1]++
			} else if err != nil && guard.Abortive(err) {
				return nil, err
			}
			a4 := a
			a4.Method = sched.Equation4
			if rts, err := a4.ResponseTimesFPCtx(g); err == nil && sched.Schedulable(ts, rts) {
				admit[2]++
			} else if err != nil && guard.Abortive(err) {
				return nil, err
			}
			none := sched.FNPRAnalysis{Tasks: ts, Delay: make([]delay.Function, len(ts)), Method: sched.Algorithm1}
			if rts, err := none.ResponseTimesFPCtx(g); err == nil && sched.Schedulable(ts, rts) {
				admit[3]++
			} else if err != nil && guard.Abortive(err) {
				return nil, err
			}
		}
		tbl.X = append(tbl.X, u)
		for k := 0; k < 4; k++ {
			tbl.Series[k].Y = append(tbl.Series[k].Y, float64(admit[k])/float64(p.SetsPerPoint))
		}
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// AcceptanceChecks verifies the structural guarantees the experiment must
// exhibit: ratios in [0,1]; equation4 never admits a set algorithm1 rejects
// in aggregate (soundness of the dominance claim at population level:
// ratio(eq4) <= ratio(alg1)); the limited refinement at least matches
// algorithm1; nothing exceeds the no-delay envelope.
func AcceptanceChecks(tbl *textplot.Table) error {
	col := func(name string) []float64 {
		for _, s := range tbl.Series {
			if s.Name == name {
				return s.Y
			}
		}
		return nil
	}
	a1 := col("algorithm1")
	a1l := col("algorithm1-limited")
	e4 := col("equation4")
	nd := col("no-delay")
	if a1 == nil || a1l == nil || e4 == nil || nd == nil {
		return fmt.Errorf("eval: acceptance table incomplete")
	}
	for i := range tbl.X {
		for _, v := range []float64{a1[i], a1l[i], e4[i], nd[i]} {
			if v < 0 || v > 1 {
				return fmt.Errorf("eval: ratio %g outside [0,1] at U=%g", v, tbl.X[i])
			}
		}
		if e4[i] > a1[i]+1e-12 {
			return fmt.Errorf("eval: equation4 (%g) above algorithm1 (%g) at U=%g", e4[i], a1[i], tbl.X[i])
		}
		if a1[i] > a1l[i]+1e-12 {
			return fmt.Errorf("eval: algorithm1 (%g) above limited refinement (%g) at U=%g", a1[i], a1l[i], tbl.X[i])
		}
		if a1l[i] > nd[i]+1e-12 {
			return fmt.Errorf("eval: limited (%g) above no-delay envelope (%g) at U=%g", a1l[i], nd[i], tbl.X[i])
		}
	}
	return nil
}

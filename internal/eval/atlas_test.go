package eval

import (
	"math"
	"testing"
)

// smallAtlas keeps unit-test runtime low while still covering all families.
func smallAtlas() AtlasParams {
	return AtlasParams{Seed: 7, Qs: []float64{4, 8}, FuncsPerCell: 8, C: 30}
}

func TestAtlasOrdering(t *testing.T) {
	tbl, err := Atlas(nil, smallAtlas())
	if err != nil {
		t.Fatal(err)
	}
	if err := AtlasChecks(tbl); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 9 {
		t.Fatalf("want 9 series (3 families x 3), got %d", len(tbl.Series))
	}
	// The sweep must actually separate the bounds somewhere: Equation 4 is
	// strictly more pessimistic than Algorithm 1 on peaked curves.
	sep := false
	for fam := 0; fam < 3; fam++ {
		for i := range tbl.X {
			if tbl.Series[3*fam+2].Y[i] > tbl.Series[3*fam+1].Y[i]+1e-9 {
				sep = true
			}
		}
	}
	if !sep {
		t.Fatal("atlas never separates Equation 4 from Algorithm 1")
	}
	if len(tbl.Notes) == 0 {
		t.Fatal("atlas table must note the state reduction")
	}
}

// TestAtlasDeterministicAcrossWorkers asserts the table is bit-identical
// for every worker count (the CI race job re-runs tests matching this
// pattern under -race).
func TestAtlasDeterministicAcrossWorkers(t *testing.T) {
	p := smallAtlas()
	p.Workers = 1
	serial, err := Atlas(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		p.Workers = workers
		par, err := Atlas(nil, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range serial.Series {
			for i := range serial.X {
				if par.Series[s].Y[i] != serial.Series[s].Y[i] {
					t.Fatalf("workers=%d series %s point %d: %v != %v",
						workers, serial.Series[s].Name, i,
						par.Series[s].Y[i], serial.Series[s].Y[i])
				}
			}
		}
		if par.Notes[0] != serial.Notes[0] {
			t.Fatalf("workers=%d: notes diverged: %q vs %q", workers, par.Notes[0], serial.Notes[0])
		}
	}
}

func TestAtlasValidate(t *testing.T) {
	cases := []AtlasParams{
		{Seed: 1, Qs: nil, FuncsPerCell: 1, C: 30},
		{Seed: 1, Qs: []float64{4}, FuncsPerCell: 0, C: 30},
		{Seed: 1, Qs: []float64{4}, FuncsPerCell: 1, C: math.Inf(1)},
		{Seed: 1, Qs: []float64{40}, FuncsPerCell: 1, C: 30}, // Q >= C
		{Seed: 1, Qs: []float64{-1}, FuncsPerCell: 1, C: 30},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d must fail validation", i)
		}
	}
}

func TestAtlasFingerprint(t *testing.T) {
	a := smallAtlas()
	b := smallAtlas()
	b.Workers = 8
	b.Obs = nil
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("workers must not change the fingerprint")
	}
	b.Seed = 8
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seed must change the fingerprint")
	}
	if a.Kind() != "atlas" {
		t.Fatalf("kind %q", a.Kind())
	}
}

package eval

import (
	"testing"
)

func TestAcceptanceValidation(t *testing.T) {
	bad := DefaultAcceptanceParams()
	bad.SetsPerPoint = 0
	if _, err := Acceptance(nil, bad); err == nil {
		t.Fatal("accepted SetsPerPoint=0")
	}
	bad = DefaultAcceptanceParams()
	bad.UStep = 0
	if _, err := Acceptance(nil, bad); err == nil {
		t.Fatal("accepted UStep=0")
	}
	bad = DefaultAcceptanceParams()
	bad.UEnd = 0.1
	if _, err := Acceptance(nil, bad); err == nil {
		t.Fatal("accepted UEnd < UStart")
	}
}

func TestAcceptanceExperiment(t *testing.T) {
	p := DefaultAcceptanceParams()
	p.SetsPerPoint = 40 // keep the test fast; the binary uses 200
	tbl, err := Acceptance(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := AcceptanceChecks(tbl); err != nil {
		t.Fatal(err)
	}
	// The headline claim: at some utilization, Algorithm 1 admits
	// strictly more sets than Equation 4.
	var a1, e4 []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "algorithm1":
			a1 = s.Y
		case "equation4":
			e4 = s.Y
		}
	}
	separated := false
	for i := range a1 {
		if a1[i] > e4[i] {
			separated = true
			break
		}
	}
	if !separated {
		t.Fatal("Algorithm 1 never separated from Equation 4 — experiment lost its point")
	}
	// Low utilization admits more than high utilization for every test.
	for _, s := range tbl.Series {
		if s.Y[0] < s.Y[len(s.Y)-1] {
			t.Fatalf("%s: acceptance increases with utilization (%g -> %g)",
				s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestAcceptanceChecksDetectCorruption(t *testing.T) {
	p := DefaultAcceptanceParams()
	p.SetsPerPoint = 10
	p.UEnd = p.UStart
	tbl, err := Acceptance(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Series {
		if tbl.Series[i].Name == "equation4" {
			tbl.Series[i].Y[0] = 2 // out of range and above algorithm1
		}
	}
	if err := AcceptanceChecks(tbl); err == nil {
		t.Fatal("corrupted table passed checks")
	}
}

package eval

import (
	"math"
	"runtime"
	"testing"

	"fnpr/internal/obs"
	"fnpr/internal/textplot"
)

// sameTable compares two acceptance tables bit for bit (== on every float,
// no tolerance): the campaign's determinism contract is exact equality, not
// statistical agreement.
func sameTable(t *testing.T, label string, got, want *textplot.Table) {
	t.Helper()
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: %d points, want %d", label, len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("%s: X[%d] = %v, want %v", label, i, got.X[i], want.X[i])
		}
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", label, len(got.Series), len(want.Series))
	}
	for s := range want.Series {
		if got.Series[s].Name != want.Series[s].Name {
			t.Fatalf("%s: series %d named %q, want %q", label, s, got.Series[s].Name, want.Series[s].Name)
		}
		for i := range want.Series[s].Y {
			if got.Series[s].Y[i] != want.Series[s].Y[i] {
				t.Fatalf("%s: %s[%d] = %v, want %v",
					label, want.Series[s].Name, i, got.Series[s].Y[i], want.Series[s].Y[i])
			}
		}
	}
}

// TestAcceptanceDeterministicAcrossWorkers: the same seed must produce a
// bit-identical table for 1, 4 and GOMAXPROCS workers — the shard sub-stream
// derivation, not the schedule, owns all randomness.
func TestAcceptanceDeterministicAcrossWorkers(t *testing.T) {
	p := DefaultAcceptanceParams()
	p.SetsPerPoint = 25
	p.UEnd = 0.70 // a few points suffice; -race makes full runs slow
	p.Workers = 1
	serial, err := Acceptance(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		p.Workers = w
		got, err := Acceptance(nil, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameTable(t, "workers="+itoa(w), got, serial)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestAcceptanceSeedSensitivity: different campaign seeds must actually
// change the drawn population (guards against the derivation collapsing).
func TestAcceptanceSeedSensitivity(t *testing.T) {
	p := DefaultAcceptanceParams()
	p.SetsPerPoint = 40
	p.UEnd = 0.60
	a, err := Acceptance(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 2
	b, err := Acceptance(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for s := range a.Series {
		for i := range a.Series[s].Y {
			if a.Series[s].Y[i] != b.Series[s].Y[i] {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical tables")
	}
}

// TestAcceptanceParamsValidate covers the fail-fast ladder, including the
// NaN bounds the sweep loop would otherwise spin on.
func TestAcceptanceParamsValidate(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*AcceptanceParams)
	}{
		{"SetsPerPoint=0", func(p *AcceptanceParams) { p.SetsPerPoint = 0 }},
		{"Tasks=0", func(p *AcceptanceParams) { p.Tasks = 0 }},
		{"UStep=0", func(p *AcceptanceParams) { p.UStep = 0 }},
		{"UStep=NaN", func(p *AcceptanceParams) { p.UStep = math.NaN() }},
		{"UStart=NaN", func(p *AcceptanceParams) { p.UStart = math.NaN() }},
		{"UStart=0", func(p *AcceptanceParams) { p.UStart = 0 }},
		{"UEnd=NaN", func(p *AcceptanceParams) { p.UEnd = math.NaN() }},
		{"UEnd<UStart", func(p *AcceptanceParams) { p.UEnd = p.UStart / 2 }},
		{"UEnd=+Inf", func(p *AcceptanceParams) { p.UEnd = math.Inf(1) }},
		{"DelayScale=NaN", func(p *AcceptanceParams) { p.DelayScale = math.NaN() }},
		{"DelayScale<0", func(p *AcceptanceParams) { p.DelayScale = -0.1 }},
		{"QFraction=0", func(p *AcceptanceParams) { p.QFraction = 0 }},
		{"QFraction=NaN", func(p *AcceptanceParams) { p.QFraction = math.NaN() }},
	}
	for _, m := range mutations {
		p := DefaultAcceptanceParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
		if _, err := Acceptance(nil, p); err == nil {
			t.Errorf("%s: campaign ran anyway", m.name)
		}
	}
	if err := DefaultAcceptanceParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

// TestAcceptanceCampaignEvents: the campaign emits one Started/Finished pair
// and one CampaignPoint per utilization point, serial and parallel alike.
func TestAcceptanceCampaignEvents(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := obs.NewTestRecorder()
		p := DefaultAcceptanceParams()
		p.SetsPerPoint = 5
		p.UEnd = 0.60
		p.Workers = workers
		p.Obs = obs.NewScope(obs.NewRegistry(), rec)
		tbl, err := Acceptance(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if n := rec.CountEvents(obs.CampaignStarted); n != 1 {
			t.Fatalf("workers=%d: %d CampaignStarted events", workers, n)
		}
		if n := rec.CountEvents(obs.CampaignFinished); n != 1 {
			t.Fatalf("workers=%d: %d CampaignFinished events", workers, n)
		}
		if n := rec.CountEvents(obs.CampaignPoint); n != len(tbl.X) {
			t.Fatalf("workers=%d: %d CampaignPoint events for %d points", workers, n, len(tbl.X))
		}
	}
}

package eval

import (
	"math"
	"runtime"
	"testing"

	"fnpr/internal/obs"
)

// TestMonteCarloTheorem1 runs a moderate campaign and requires zero
// violations: no simulated job may pay more delay than Algorithm 1's bound.
func TestMonteCarloTheorem1(t *testing.T) {
	p := DefaultMonteCarloParams()
	p.Trials = 200
	rep, err := MonteCarlo(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d of %d jobs exceeded their Algorithm 1 bound", rep.Violations, rep.Jobs)
	}
	if rep.Jobs == 0 || rep.Preemptions == 0 {
		t.Fatalf("degenerate campaign: %+v", rep)
	}
	if math.IsInf(rep.MinSlack, 1) || rep.MinSlack < 0 {
		t.Fatalf("min slack %g: want finite >= 0 with %d preemptions observed",
			rep.MinSlack, rep.Preemptions)
	}
}

// TestMonteCarloDeterministicAcrossWorkers: same seed, any worker count,
// identical report.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	p := DefaultMonteCarloParams()
	p.Trials = 60
	p.Workers = 1
	serial, err := MonteCarlo(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		p.Workers = w
		got, err := MonteCarlo(nil, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if *got != *serial {
			t.Fatalf("workers=%d: report %+v != serial %+v", w, *got, *serial)
		}
	}
}

// TestMonteCarloSeedSensitivity: different seeds change the population.
func TestMonteCarloSeedSensitivity(t *testing.T) {
	p := DefaultMonteCarloParams()
	p.Trials = 40
	a, err := MonteCarlo(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 99
	b, err := MonteCarlo(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if *a == *b {
		t.Fatal("seeds 1 and 99 produced identical reports")
	}
}

// TestMonteCarloValidation covers the fail-fast ladder.
func TestMonteCarloValidation(t *testing.T) {
	for _, m := range []struct {
		name string
		mut  func(*MonteCarloParams)
	}{
		{"Trials=0", func(p *MonteCarloParams) { p.Trials = 0 }},
		{"MaxTasks=1", func(p *MonteCarloParams) { p.MaxTasks = 1 }},
		{"Horizon=0", func(p *MonteCarloParams) { p.Horizon = 0 }},
		{"Horizon=NaN", func(p *MonteCarloParams) { p.Horizon = math.NaN() }},
		{"Horizon=+Inf", func(p *MonteCarloParams) { p.Horizon = math.Inf(1) }},
	} {
		p := DefaultMonteCarloParams()
		m.mut(&p)
		if _, err := MonteCarlo(nil, p); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

// TestMonteCarloCampaignEvents: Started/Finished pair plus chunked progress.
func TestMonteCarloCampaignEvents(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := obs.NewTestRecorder()
		p := DefaultMonteCarloParams()
		p.Trials = 50
		p.Workers = workers
		p.Obs = obs.NewScope(obs.NewRegistry(), rec)
		if _, err := MonteCarlo(nil, p); err != nil {
			t.Fatal(err)
		}
		if n := rec.CountEvents(obs.CampaignStarted); n != 1 {
			t.Fatalf("workers=%d: %d CampaignStarted events", workers, n)
		}
		if n := rec.CountEvents(obs.CampaignFinished); n != 1 {
			t.Fatalf("workers=%d: %d CampaignFinished events", workers, n)
		}
		if n := rec.CountEvents(obs.CampaignPoint); n != 10 {
			t.Fatalf("workers=%d: %d CampaignPoint events, want 10", workers, n)
		}
	}
}

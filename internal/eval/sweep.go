package eval

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"fnpr/internal/chaos"
	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
	"fnpr/internal/retry"
)

// SweepSpec names one curve of a Q sweep: a preemption delay function whose
// Algorithm 1 bound is evaluated at every grid point.
type SweepSpec struct {
	Name string
	F    delay.Function
}

// Reason classifies why a degradation-ladder rung failed — the typed form of
// the failure vocabulary that SweepPoint carries and the journal encodes.
// The zero value ReasonNone means "no failure".
type Reason uint8

const (
	// ReasonNone: the rung did not fail (or was never reached).
	ReasonNone Reason = iota
	// ReasonCanceled: the caller aborted (context cancel or deadline).
	ReasonCanceled
	// ReasonBudget: a step budget ran out.
	ReasonBudget
	// ReasonDiverged: the analysis has no finite answer on this input.
	ReasonDiverged
	// ReasonInvalid: the input failed validation.
	ReasonInvalid
	// ReasonPanic: a panic was recovered inside the guarded rung.
	ReasonPanic
	// ReasonError: any other failure.
	ReasonError
	// ReasonOverload: the work was refused up front by admission control
	// (queue full, concurrency limit, draining server) — it never ran.
	ReasonOverload
	// ReasonStorage: the durable layer underneath the analysis failed —
	// a journal or manifest write refused, torn, or not fsync-able.
	ReasonStorage
)

// reasonNames is the stable wire vocabulary; it must never be reordered —
// journal records and golden files spell these strings. New classes are
// appended only.
var reasonNames = [...]string{"", "canceled", "budget", "diverged", "invalid", "panic", "error", "overload", "storage"}

// String returns the machine-readable class name ("" for ReasonNone).
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "error"
}

// reasonFromString inverts String; unknown spellings collapse to ReasonError
// (a journal written by a future version still restores as a failure).
func reasonFromString(s string) Reason {
	for i, n := range reasonNames {
		if s == n {
			return Reason(i)
		}
	}
	return ReasonError
}

// ReasonOf maps an analysis error to its failure class; nil maps to
// ReasonNone.
func ReasonOf(err error) Reason {
	switch {
	case err == nil:
		return ReasonNone
	case errors.Is(err, guard.ErrCanceled):
		return ReasonCanceled
	case errors.Is(err, guard.ErrBudgetExceeded):
		return ReasonBudget
	case errors.Is(err, guard.ErrDiverged):
		return ReasonDiverged
	case errors.Is(err, guard.ErrInvalidInput):
		return ReasonInvalid
	case errors.Is(err, guard.ErrPanic):
		return ReasonPanic
	case errors.Is(err, guard.ErrOverload):
		return ReasonOverload
	case errors.Is(err, guard.ErrStorage):
		return ReasonStorage
	default:
		return ReasonError
	}
}

// ReasonCode maps an analysis error to its machine-readable class name.
//
// Deprecated: use ReasonOf(err).String().
func ReasonCode(err error) string {
	return ReasonOf(err).String()
}

// SweepPoint is one (Q, bound) sample, together with the full story of how it
// was obtained — the degradation ladder every grid point walks down:
//
//  1. the primary Algorithm 1 analysis, retried per the sweep's backoff
//     policy on transient failures (panics, per-point budget trips);
//  2. the Equation 4 state-of-the-art fallback when the retries are
//     exhausted (Degraded is set, Primary records the failure class);
//  3. quarantine when even the fallback fails (Quarantined is set, Value is
//     NaN, Fallback records the second failure class).
//
// Nothing degrades silently: Primary/Fallback are the typed failure classes,
// Code derives the wire string ("degraded:panic", "quarantined:panic+budget",
// ...) and Note keeps the full error text.
type SweepPoint struct {
	Q        float64
	Value    float64
	Degraded bool
	// Quarantined marks a point where both the primary analysis and the
	// Equation 4 fallback failed; Value is NaN.
	Quarantined bool
	// Primary is the failure class of the primary Algorithm 1 rung
	// (ReasonNone for a clean point).
	Primary Reason
	// Fallback is the failure class of the Equation 4 rung; only
	// quarantined points have it set.
	Fallback Reason
	// Note is the human-readable error chain behind Primary/Fallback.
	Note string
	// Attempts counts the primary-analysis attempts spent on this point.
	Attempts int
	// Done marks the point as completed (cleanly, degraded or
	// quarantined). Points of an aborted sweep that were never reached
	// have Done == false.
	Done bool
	// Cached reports the point was answered from SweepOptions.Memo instead
	// of computed. Runtime-only, never serialized: journal records and API
	// responses are byte-identical whether or not a cache was attached.
	Cached bool `json:"-"`
}

// Code derives the machine-readable failure string from the typed classes:
// empty for a clean point, "degraded:<class>" for a degraded one,
// "quarantined:<class>+<class>" for a quarantined one. This is the exact
// vocabulary journal records and quarantine notes have always used.
func (p SweepPoint) Code() string {
	switch {
	case p.Quarantined:
		return "quarantined:" + p.Primary.String() + "+" + p.Fallback.String()
	case p.Degraded:
		return "degraded:" + p.Primary.String()
	default:
		return ""
	}
}

// sweepPointJSON is the journal encoding of a SweepPoint. Value is stored as
// a JSON number for finite values and as the strings "NaN" / "+Inf" / "-Inf"
// otherwise (encoding/json rejects non-finite floats). Finite numbers use
// encoding/json's shortest-roundtrip form, so a replayed value is bit-exact.
// The failure classes travel as the derived code string under the original
// "code" key, keeping journals from previous versions replayable and their
// bytes stable.
type sweepPointJSON struct {
	Q           float64         `json:"q"`
	Value       json.RawMessage `json:"value"`
	Degraded    bool            `json:"degraded,omitempty"`
	Quarantined bool            `json:"quarantined,omitempty"`
	Code        string          `json:"code,omitempty"`
	Reason      string          `json:"reason,omitempty"`
	Attempts    int             `json:"attempts,omitempty"`
	Done        bool            `json:"done,omitempty"`
}

// MarshalJSON implements json.Marshaler (see sweepPointJSON).
func (p SweepPoint) MarshalJSON() ([]byte, error) {
	var value json.RawMessage
	switch {
	case math.IsNaN(p.Value):
		value = json.RawMessage(`"NaN"`)
	case math.IsInf(p.Value, 1):
		value = json.RawMessage(`"+Inf"`)
	case math.IsInf(p.Value, -1):
		value = json.RawMessage(`"-Inf"`)
	default:
		v, err := json.Marshal(p.Value)
		if err != nil {
			return nil, err
		}
		value = v
	}
	return json.Marshal(sweepPointJSON{
		Q: p.Q, Value: value, Degraded: p.Degraded, Quarantined: p.Quarantined,
		Code: p.Code(), Reason: p.Note, Attempts: p.Attempts, Done: p.Done,
	})
}

// UnmarshalJSON implements json.Unmarshaler (see sweepPointJSON).
func (p *SweepPoint) UnmarshalJSON(data []byte) error {
	var enc sweepPointJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	*p = SweepPoint{
		Q: enc.Q, Degraded: enc.Degraded, Quarantined: enc.Quarantined,
		Note: enc.Reason, Attempts: enc.Attempts, Done: enc.Done,
	}
	if enc.Code != "" {
		body := enc.Code
		if rest, ok := strings.CutPrefix(body, "quarantined:"); ok {
			prim, fb, _ := strings.Cut(rest, "+")
			p.Primary = reasonFromString(prim)
			p.Fallback = reasonFromString(fb)
		} else if rest, ok := strings.CutPrefix(body, "degraded:"); ok {
			p.Primary = reasonFromString(rest)
		} else {
			p.Primary = reasonFromString(body)
		}
	}
	var s string
	if err := json.Unmarshal(enc.Value, &s); err == nil {
		switch s {
		case "NaN":
			p.Value = math.NaN()
		case "+Inf":
			p.Value = math.Inf(1)
		case "-Inf":
			p.Value = math.Inf(-1)
		default:
			return fmt.Errorf("eval: unknown sweep point value %q", s)
		}
		return nil
	}
	return json.Unmarshal(enc.Value, &p.Value)
}

// SweepResult is one curve of the sweep.
type SweepResult struct {
	Name   string
	Points []SweepPoint // indexed like the input Q grid
}

// PartialError wraps the abort cause of a sweep that completed some grid
// points before stopping (cancellation, budget exhaustion). The completed
// points are NOT discarded: QSweep returns them alongside this error, and
// when a journal is attached they are already checkpointed on disk. Callers
// classify the cause with errors.Is (it wraps a guard sentinel) and recover
// the partial table with errors.As.
type PartialError struct {
	// Results holds every curve with the points completed so far
	// (Done marks them); incomplete points carry only their Q.
	Results []SweepResult
	// Completed and Total count grid points across all curves.
	Completed, Total int
	// Err is the abort cause.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("sweep aborted after %d/%d grid points: %v", e.Completed, e.Total, e.Err)
}

// Unwrap exposes the abort cause for errors.Is classification.
func (e *PartialError) Unwrap() error { return e.Err }

// SweepOptions configures one Q sweep end to end: the grid, the worker pool,
// the crash-safe batch runtime around it and the observability scope it
// reports into. The zero value (plus a non-empty Qs grid) is a plain
// in-memory sweep: GOMAXPROCS workers, a single attempt per point, no
// checkpointing, no events.
type SweepOptions struct {
	// Qs is the Q grid every spec is evaluated on. QSweep requires it
	// non-empty; figure-level wrappers default it to DefaultQGrid().
	Qs []float64

	// Workers is the size of the goroutine pool; <= 0 selects GOMAXPROCS.
	Workers int

	// Retry is the backoff policy applied to each grid point's primary
	// analysis before it degrades to the Equation 4 fallback. Transient
	// failures (recovered panics, per-point budget trips) are retried;
	// deterministic failures (invalid input, divergence) and sweep-fatal
	// conditions (cancellation, global budget exhaustion) are not. The
	// policy's Rand must be safe for concurrent use when Jitter > 0
	// (wrap with retry.Locked). The zero policy means one attempt.
	Retry retry.Policy

	// Journal, when non-nil, receives one checkpoint record per completed
	// grid point, so an aborted sweep can resume. The first record
	// fingerprints the grid (spec names and Q values); resuming against a
	// journal from a different sweep is refused.
	Journal *journal.Journal

	// Resume is the replayed view of a prior run's journal
	// (journal.Latest): grid points found here are restored instead of
	// recomputed. The restored values are bit-exact, so a resumed sweep's
	// output is byte-identical to an uninterrupted run's.
	Resume map[string]json.RawMessage

	// Memo, when non-nil, is the content-addressed result cache every grid
	// point consults before computing (core.Options.Memo): a repeated sweep
	// over the same functions and grid is answered from memory, and an
	// edited task set recomputes only the terms whose fingerprints changed.
	// Hits are bit-identical to fresh computations and marked
	// SweepPoint.Cached. Build with core.NewResultCache.
	Memo *memo.Cache

	// Solver selects the fixpoint solver every grid point runs with
	// (core.SolverAuto by default: cutting-plane acceleration with
	// monotone fallback). Results are bit-identical across solvers.
	Solver core.Solver

	// NoIndex disables the per-spec query index (delay.AutoIndex), forcing
	// every grid point onto the linear-scan kernel. The indexed and scan
	// kernels are bit-for-bit equivalent (proven by the differential and
	// golden tests), so this only trades speed — it exists for those tests
	// and for the scan side of the kernel benchmarks. The FNPR_NO_INDEX
	// environment variable has the same effect process-wide.
	NoIndex bool

	// Obs is the observability scope the sweep reports into: progress
	// events (SweepStarted, PointDone, PointRetried, PointDegraded,
	// PointQuarantined, SweepResumed, SweepFinished), per-worker
	// utilisation and the ladder-transition counters (DESIGN.md §10).
	// When nil the guard's attached scope is used; a nil scope collects
	// nothing and costs nothing beyond a few nil checks.
	Obs *obs.Scope
}

// scope resolves the sweep's observability scope: the explicit option wins,
// then the guard's attached scope.
func (o SweepOptions) scope(g *guard.Ctx) *obs.Scope {
	if o.Obs != nil {
		return o.Obs
	}
	return g.Obs()
}

// DefaultSweepRetry is the retry policy the command-line tools use: three
// attempts with 5ms–100ms exponentially-growing, jittered backoff. The seed
// makes the jitter sequence (and nothing else) reproducible.
func DefaultSweepRetry(seed int64) retry.Policy {
	return retry.Policy{
		MaxAttempts: 3,
		MinDelay:    5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Growth:      2,
		Jitter:      0.25,
		Rand:        retry.Locked(rand.New(rand.NewSource(seed))),
	}
}

// gridKey is the journal key of one grid point; gridMetaKey fingerprints the
// whole sweep.
func gridKey(spec string, qi int, q float64) string {
	return fmt.Sprintf("point:%s@%d:%g", spec, qi, q)
}

const gridMetaKey = "sweep:grid"

// gridMeta is the journal fingerprint of a sweep's shape.
type gridMeta struct {
	Specs []string  `json:"specs"`
	Qs    []float64 `json:"qs"`
}

// QSweep evaluates the Algorithm 1 bound of every spec at every Q of
// opts.Qs on a pool of worker goroutines sharing one guard scope:
// cancellation, deadline and step budget are global to the sweep.
//
// Each grid point walks the degradation ladder documented on SweepPoint:
// primary analysis with retries, Equation 4 fallback, quarantine — every
// rung under its own panic-recovery scope (guard.Run), so a pathological
// point never kills the sweep. Only caller aborts (guard.ErrCanceled) and
// exhaustion of the sweep's own global budget stop everything; then the
// completed points are returned alongside a *PartialError describing the
// abort — partial results are never discarded, and with a journal attached
// they are already checkpointed for a later resume.
//
// This is the package's only sweep entry point; it absorbed the former
// positional QSweep(g, specs, qs, workers) and QSweepOpts variants.
func QSweep(g *guard.Ctx, specs []SweepSpec, opts SweepOptions) ([]SweepResult, error) {
	qs := opts.Qs
	if len(specs) == 0 {
		return nil, guard.Invalidf("eval: sweep needs at least one function")
	}
	if len(qs) == 0 {
		return nil, guard.Invalidf("eval: sweep needs a non-empty Q grid")
	}
	for i, q := range qs {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, guard.Invalidf("eval: grid point %d is non-finite (%g)", i, q)
		}
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		if s.F == nil {
			return nil, guard.Invalidf("eval: sweep spec %d (%q) has a nil function", i, s.Name)
		}
		names[i] = s.Name
	}
	// Surface a misconfigured retry policy before any worker starts
	// (retry.Do would also catch it, but per-point, after work began).
	if err := opts.Retry.Validate(); err != nil {
		return nil, guard.Invalidf("eval: %v", err)
	}
	if err := checkGridMeta(opts, names, qs); err != nil {
		return nil, err
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Build each spec's query index once, up front, and share it across the
	// whole Q grid and every worker (Indexed is immutable, hence safe for
	// concurrent queries). Working on a copy keeps the caller's specs
	// untouched.
	if !opts.NoIndex {
		indexed := make([]SweepSpec, len(specs))
		copy(indexed, specs)
		for i := range indexed {
			indexed[i].F = delay.AutoIndex(indexed[i].F)
		}
		specs = indexed
	}
	// FNPR_CHAOS_PANIC_PROB (like FNPR_NO_INDEX, a doc-gated escape hatch)
	// wraps every spec in the deterministic fault injector, forcing real
	// retries and backoff sleeps — the seam the end-to-end crash-safety
	// tests use to kill a binary mid-backoff. Unset in normal operation.
	specs = chaosWrap(specs)

	sc := opts.scope(g)
	total := len(specs) * len(qs)
	sc.Emit(obs.Event{Type: obs.SweepStarted, Total: total})
	if opts.Resume != nil {
		restorable := 0
		for key := range opts.Resume {
			if strings.HasPrefix(key, "point:") {
				restorable++
			}
		}
		sc.Emit(obs.Event{Type: obs.SweepResumed, Restored: restorable, Total: total})
	}
	sc.Gauge("sweep.workers").Set(float64(workers))

	type job struct{ si, qi int }
	jobs := make(chan job)
	results := make([]SweepResult, len(specs))
	for i, s := range specs {
		results[i] = SweepResult{Name: s.Name, Points: make([]SweepPoint, len(qs))}
	}

	// Cross-Q hint slots, one per spec: the walk pieces recorded by the most
	// recently computed grid point seed the descending-line searches of the
	// next point on the same curve (core.WalkHints — bit-identical, the hint
	// only short-circuits provably equivalent query work). Adjacent Q points
	// cross similar piece sequences, so the seed usually lands. Workers
	// race on the slot, but hints are advisory: any stored sequence is a
	// valid seed for any Q, so last-writer-wins needs no ordering.
	type hintSlot struct {
		mu     sync.Mutex
		pieces []int32
	}
	hintSlots := make([]hintSlot, len(specs))

	var (
		mu       sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		mu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return abortErr != nil
	}
	// fatal classifies errors that must stop the whole sweep: a caller
	// abort, or exhaustion of the sweep's own shared budget (once it is
	// gone, every remaining point would fail the same way).
	fatal := func(err error) bool {
		if guard.Abortive(err) {
			return true
		}
		return errors.Is(err, guard.ErrBudgetExceeded) && g.Remaining() == 0
	}
	// settled classifies errors no retry can fix: sweep-fatal conditions,
	// deterministic analysis outcomes (divergence) and rejected inputs.
	// Only transient classes — recovered panics and per-point budget
	// trips — are worth another attempt.
	settled := func(err error) bool {
		return fatal(err) ||
			errors.Is(err, guard.ErrDiverged) ||
			errors.Is(err, guard.ErrInvalidInput)
	}
	// checkpoint appends the completed point to the journal. A journal
	// write failure is sweep-fatal: continuing would break the crash-
	// safety contract the caller asked for.
	checkpoint := func(jb job, pt *SweepPoint) {
		if opts.Journal == nil {
			return
		}
		key := gridKey(specs[jb.si].Name, jb.qi, qs[jb.qi])
		if err := opts.Journal.Append(key, *pt); err != nil {
			abort(err)
		}
	}
	// finish settles a point: ladder counters, the point's progress events
	// and the checkpoint write. Every rung of the ladder funnels through
	// here exactly once per point.
	finish := func(jb job, pt *SweepPoint, restored bool) {
		pt.Done = true
		switch {
		case restored:
			sc.Counter("sweep.points.restored").Inc()
		case pt.Quarantined:
			sc.Counter("sweep.points.quarantined").Inc()
			sc.Emit(obs.Event{Type: obs.PointQuarantined, Spec: results[jb.si].Name, Q: pt.Q, Attempt: pt.Attempts, Code: pt.Code(), Err: pt.Note})
		case pt.Degraded:
			sc.Counter("sweep.points.degraded").Inc()
			sc.Emit(obs.Event{Type: obs.PointDegraded, Spec: results[jb.si].Name, Q: pt.Q, Attempt: pt.Attempts, Code: pt.Code(), Err: pt.Note})
		default:
			sc.Counter("sweep.points.clean").Inc()
		}
		sc.Emit(obs.Event{Type: obs.PointDone, Spec: results[jb.si].Name, Q: pt.Q, Attempt: pt.Attempts, Code: pt.Code()})
		if !restored {
			checkpoint(jb, pt)
		}
	}

	timed := sc != nil
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busyNs, waitNs, points int64
			var idleSince time.Time
			if timed {
				idleSince = time.Now()
			}
			for jb := range jobs {
				var jobStart time.Time
				if timed {
					jobStart = time.Now()
					waitNs += jobStart.Sub(idleSince).Nanoseconds()
				}
				if aborted() {
					if timed {
						idleSince = time.Now()
					}
					continue // drain
				}
				spec, q := specs[jb.si], qs[jb.qi]
				pt := &results[jb.si].Points[jb.qi]
				pt.Q = q
				if restorePoint(opts.Resume, spec.Name, jb.qi, q, pt) {
					finish(jb, pt, true)
					if timed {
						idleSince = time.Now()
					}
					continue
				}
				label := fmt.Sprintf("%s at Q=%g", spec.Name, q)
				pol := opts.Retry
				if pol.Sleep == nil {
					// Backoff sleeps observe the guard's cancellation
					// channel: a SIGTERM arriving mid-backoff aborts the
					// sweep promptly (and flushes metrics/journal) instead
					// of sleeping through the signal.
					pol.Sleep = guardSleep(g)
				}
				if timed {
					pol.OnBackoff = func(n int, d time.Duration) {
						sc.Counter("sweep.retries").Inc()
						sc.Histogram("sweep.backoff_ns").Observe(d.Nanoseconds())
						sc.Emit(obs.Event{Type: obs.PointRetried, Spec: spec.Name, Q: q, Attempt: n + 1})
					}
				}
				var hints core.WalkHints
				v, err := retry.Do(pol, settled, func(attempt int) (core.Result, error) {
					pt.Attempts = attempt + 1
					return guard.Run(g, label, func() (core.Result, error) {
						hs := &hintSlots[jb.si]
						hs.mu.Lock()
						in := hs.pieces
						hs.mu.Unlock()
						// Fresh Out every attempt: the stored slice is only
						// ever read (as a later walk's In), never appended to.
						hints = core.WalkHints{In: in}
						return core.Analyze(g, spec.F, q, core.Options{Obs: sc, Memo: opts.Memo, Solver: opts.Solver, Hints: &hints})
					})
				})
				if err == nil {
					pt.Value = v.TotalDelay
					pt.Cached = v.Cached
					if !v.Cached && len(hints.Out) > 0 {
						if len(hints.In) > 0 {
							sc.Counter("sweep.qshare.seeded").Inc()
						} else {
							sc.Counter("sweep.qshare.cold").Inc()
						}
						hs := &hintSlots[jb.si]
						hs.mu.Lock()
						hs.pieces = hints.Out
						hs.mu.Unlock()
					}
					finish(jb, pt, false)
					if timed {
						busyNs += time.Since(jobStart).Nanoseconds()
						points++
						sc.Histogram("sweep.point.ns").Observe(time.Since(jobStart).Nanoseconds())
						idleSince = time.Now()
					}
					continue
				}
				if fatal(err) {
					abort(err)
					if timed {
						idleSince = time.Now()
					}
					continue
				}
				// Rung 2: degrade to the Equation 4 bound, itself under
				// a recovery scope (a poisoned function can panic in
				// Domain/MaxOn too).
				fb, ferr := guard.Run(g, label+" (Eq.4 fallback)", func() (core.Result, error) {
					return core.Analyze(g, spec.F, q, core.Options{Method: core.Equation4, Obs: sc, Memo: opts.Memo, Solver: opts.Solver})
				})
				if ferr != nil {
					if fatal(ferr) {
						abort(ferr)
						if timed {
							idleSince = time.Now()
						}
						continue
					}
					// Rung 3: quarantine.
					pt.Value = math.NaN()
					pt.Degraded = true
					pt.Quarantined = true
					pt.Primary = ReasonOf(err)
					pt.Fallback = ReasonOf(ferr)
					pt.Note = fmt.Sprintf("%v; fallback: %v", err, ferr)
				} else {
					pt.Value = fb.TotalDelay
					pt.Cached = fb.Cached
					pt.Degraded = true
					pt.Primary = ReasonOf(err)
					pt.Note = err.Error()
				}
				finish(jb, pt, false)
				if timed {
					busyNs += time.Since(jobStart).Nanoseconds()
					points++
					sc.Histogram("sweep.point.ns").Observe(time.Since(jobStart).Nanoseconds())
					idleSince = time.Now()
				}
			}
			if timed {
				sc.Histogram("sweep.worker.busy_ns").Observe(busyNs)
				sc.Histogram("sweep.worker.wait_ns").Observe(waitNs)
				sc.Histogram("sweep.worker.points").Observe(points)
				if busyNs+waitNs > 0 {
					sc.Histogram("sweep.worker.utilization_pct").Observe(100 * busyNs / (busyNs + waitNs))
				}
			}
		}()
	}
	for si := range specs {
		for qi := range qs {
			jobs <- job{si, qi}
		}
	}
	close(jobs)
	wg.Wait()

	completed := 0
	for _, r := range results {
		for _, pt := range r.Points {
			if pt.Done {
				completed++
			}
		}
	}
	if abortErr != nil {
		sc.Emit(obs.Event{Type: obs.SweepFinished, Completed: completed, Total: total, Err: abortErr.Error()})
		return results, &PartialError{
			Results:   results,
			Completed: completed,
			Total:     total,
			Err:       abortErr,
		}
	}
	sc.Emit(obs.Event{Type: obs.SweepFinished, Completed: completed, Total: total})
	return results, nil
}

// checkGridMeta verifies a resumed journal belongs to this sweep's grid and
// fingerprints fresh journals.
func checkGridMeta(opts SweepOptions, names []string, qs []float64) error {
	meta := gridMeta{Specs: names, Qs: qs}
	if opts.Resume != nil {
		var prev gridMeta
		ok, err := journal.Get(opts.Resume, gridMetaKey, &prev)
		if err != nil {
			return fmt.Errorf("eval: resume journal: %w", err)
		}
		if ok {
			if !equalStrings(prev.Specs, names) || !equalFloats(prev.Qs, qs) {
				return guard.Invalidf("eval: resume journal fingerprints a different sweep (specs %v, %d grid points)", prev.Specs, len(prev.Qs))
			}
			return nil // journal already fingerprinted; nothing to append
		}
	}
	if opts.Journal != nil {
		return opts.Journal.Append(gridMetaKey, meta)
	}
	return nil
}

// restorePoint loads a completed point from the resume view; it reports false
// (recompute) for missing, undecodable or incomplete records.
func restorePoint(resume map[string]json.RawMessage, spec string, qi int, q float64, pt *SweepPoint) bool {
	if resume == nil {
		return false
	}
	var prev SweepPoint
	ok, err := journal.Get(resume, gridKey(spec, qi, q), &prev)
	if err != nil || !ok || !prev.Done {
		return false
	}
	*pt = prev
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// guardSleep returns a sleep function bound to the guard's cancellation
// channel: it wakes early when the scope is canceled, so backoff waits never
// outlive a SIGINT/SIGTERM or a server drain. It returns nil (plain
// time.Sleep) when the scope has no cancellation source.
func guardSleep(g *guard.Ctx) func(time.Duration) {
	done := g.Done()
	if done == nil {
		return nil
	}
	return func(d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-done:
		}
	}
}

// chaosWrap applies the FNPR_CHAOS_PANIC_PROB fault-injection seam: when the
// variable holds a probability in (0, 1], every spec is wrapped in a
// deterministic chaos injector that panics inside analysis queries with that
// probability, exercising the retry/backoff/degradation ladder in a real
// binary. Anything unset, unparsable or non-positive is a no-op.
func chaosWrap(specs []SweepSpec) []SweepSpec {
	v := os.Getenv("FNPR_CHAOS_PANIC_PROB")
	if v == "" {
		return specs
	}
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p <= 0 {
		return specs
	}
	in := chaos.NewInjector(1)
	wrapped := make([]SweepSpec, len(specs))
	copy(wrapped, specs)
	for i := range wrapped {
		wrapped[i].F = in.Wrap(wrapped[i].F, chaos.Fault{PanicProb: p})
	}
	return wrapped
}

// Degraded collects the flagged points of a sweep as human-readable strings
// (quarantined points lead with their machine-readable code), for surfacing
// in table notes and on stderr. The text is derived from the typed failure
// classes, so it always agrees with the journal encoding.
func Degraded(results []SweepResult) []string {
	var out []string
	for _, r := range results {
		for _, p := range r.Points {
			switch {
			case p.Quarantined:
				out = append(out, fmt.Sprintf("%s %s at Q=%g: %s", p.Code(), r.Name, p.Q, p.Note))
			case p.Degraded:
				out = append(out, fmt.Sprintf("degraded %s at Q=%g: %s", r.Name, p.Q, p.Note))
			}
		}
	}
	return out
}

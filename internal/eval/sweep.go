package eval

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// SweepSpec names one curve of a Q sweep: a preemption delay function whose
// Algorithm 1 bound is evaluated at every grid point.
type SweepSpec struct {
	Name string
	F    delay.Function
}

// SweepPoint is one (Q, bound) sample. When the primary analysis fails on
// this point only (a panic inside the delay function, a per-point budget trip
// inside the oracle, a genuine divergence error), the point degrades to the
// Equation 4 state-of-the-art bound and is flagged — never silently. When
// even the fallback fails, Value is NaN.
type SweepPoint struct {
	Q        float64
	Value    float64
	Degraded bool
	Reason   string
}

// SweepResult is one curve of the sweep.
type SweepResult struct {
	Name   string
	Points []SweepPoint // indexed like the input Q grid
}

// QSweep evaluates the Algorithm 1 bound of every spec at every Q of the grid
// on a pool of worker goroutines sharing one guard scope: cancellation,
// deadline and step budget are global to the sweep.
//
// Each grid point runs under its own panic-recovery scope (guard.Run), so a
// pathological point degrades to the Equation 4 bound — itself recovered —
// instead of killing the whole sweep. Only caller aborts (guard.ErrCanceled)
// and exhaustion of the sweep's own global budget stop everything; the
// partial results are discarded and the abort error is returned.
//
// workers <= 0 selects GOMAXPROCS workers.
func QSweep(g *guard.Ctx, specs []SweepSpec, qs []float64, workers int) ([]SweepResult, error) {
	if len(specs) == 0 {
		return nil, guard.Invalidf("eval: sweep needs at least one function")
	}
	if len(qs) == 0 {
		return nil, guard.Invalidf("eval: sweep needs a non-empty Q grid")
	}
	for i, s := range specs {
		if s.F == nil {
			return nil, guard.Invalidf("eval: sweep spec %d (%q) has a nil function", i, s.Name)
		}
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ si, qi int }
	jobs := make(chan job)
	results := make([]SweepResult, len(specs))
	for i, s := range specs {
		results[i] = SweepResult{Name: s.Name, Points: make([]SweepPoint, len(qs))}
	}

	var (
		mu       sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		mu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return abortErr != nil
	}
	// fatal classifies errors that must stop the whole sweep: a caller
	// abort, or exhaustion of the sweep's own shared budget (once it is
	// gone, every remaining point would fail the same way).
	fatal := func(err error) bool {
		if guard.Abortive(err) {
			return true
		}
		return errors.Is(err, guard.ErrBudgetExceeded) && g.Remaining() == 0
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if aborted() {
					continue // drain
				}
				spec, q := specs[jb.si], qs[jb.qi]
				pt := &results[jb.si].Points[jb.qi]
				pt.Q = q
				label := fmt.Sprintf("%s at Q=%g", spec.Name, q)
				v, err := guard.Run(g, label, func() (float64, error) {
					return core.UpperBoundCtx(g, spec.F, q)
				})
				if err == nil {
					pt.Value = v
					continue
				}
				if fatal(err) {
					abort(err)
					continue
				}
				// Degrade to the Equation 4 bound, itself under a
				// recovery scope (a poisoned function can panic in
				// Domain/MaxOn too).
				fb, ferr := guard.Run(g, label+" (Eq.4 fallback)", func() (float64, error) {
					return core.StateOfTheArtCtx(g, spec.F, q)
				})
				if ferr != nil {
					if fatal(ferr) {
						abort(ferr)
						continue
					}
					fb = math.NaN()
				}
				pt.Value = fb
				pt.Degraded = true
				pt.Reason = err.Error()
			}
		}()
	}
	for si := range specs {
		for qi := range qs {
			jobs <- job{si, qi}
		}
	}
	close(jobs)
	wg.Wait()

	if abortErr != nil {
		return nil, abortErr
	}
	return results, nil
}

// Degraded collects the flagged points of a sweep as human-readable strings,
// for surfacing in table notes and on stderr.
func Degraded(results []SweepResult) []string {
	var out []string
	for _, r := range results {
		for _, p := range r.Points {
			if p.Degraded {
				out = append(out, fmt.Sprintf("degraded %s at Q=%g: %s", r.Name, p.Q, p.Reason))
			}
		}
	}
	return out
}

package eval

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/obs"
)

// smallAcceptance is a campaign small enough for unit tests: 3 utilization
// points, 6 sets each.
func smallAcceptance() AcceptanceParams {
	return AcceptanceParams{
		Seed: 7, SetsPerPoint: 6, Tasks: 3,
		UStart: 0.5, UEnd: 0.7, UStep: 0.1,
		DelayScale: 0.1, QFraction: 0.25,
	}
}

// TestAcceptanceJournalResume is the campaign-level crash-safety contract:
// an acceptance campaign aborted after checkpointing some points, then
// resumed from its journal, produces a table byte-identical to an
// uninterrupted run — for the serial path and the sharded pool alike.
func TestAcceptanceJournalResume(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(map[int]string{1: "serial", 4: "sharded"}[workers], func(t *testing.T) {
			p := smallAcceptance()
			p.Workers = workers

			ref, err := Acceptance(nil, p)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			refJSON, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}

			// Aborted run: cancel the guard as soon as the first point's
			// checkpoint lands, so at least one point is journaled and the
			// campaign dies partway.
			path := filepath.Join(t.TempDir(), "acc.journal")
			j, _, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pa := p
			pa.Journal = j
			pa.Obs = obs.NewScope(obs.NewRegistry(), obs.SinkFunc(func(e obs.Event) {
				if e.Type == obs.CampaignPoint {
					cancel()
				}
			}))
			_, err = Acceptance(guard.New(ctx), pa)
			if cerr := j.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("aborted run: err = %v, want ErrCanceled", err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(raw), "accpoint:") {
				t.Fatalf("aborted run checkpointed no points:\n%s", raw)
			}

			// Resumed run: restores the checkpointed points, reruns the rest.
			j2, recs, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			pr := p
			pr.Journal = j2
			pr.Resume = journal.Latest(recs)
			reg := obs.NewRegistry()
			pr.Obs = obs.NewScope(reg)
			got, err := Acceptance(nil, pr)
			if cerr := j2.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(refJSON) {
				t.Fatalf("resumed table differs from uninterrupted run\nref: %s\ngot: %s", refJSON, gotJSON)
			}
			if n := reg.Counter("campaign.points.restored").Value(); n < 1 {
				t.Fatalf("campaign.points.restored = %d, want >= 1", n)
			}
		})
	}
}

// TestAcceptanceResumeAfterMidFileCorruption pins the salvage-then-resume
// path end to end: a completed journal gets one bit flipped in a middle
// record (at-rest corruption, not a torn tail), the next open must salvage —
// truncate to the valid prefix (journal.truncations advances) and replay
// exactly the records before the flip — and a -resume on the salvaged
// journal must restore that prefix and recompute the rest into a table
// byte-identical to an uninterrupted run.
func TestAcceptanceResumeAfterMidFileCorruption(t *testing.T) {
	p := smallAcceptance()
	p.Workers = 1

	ref, err := Acceptance(nil, p)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Full journaled run: header + meta record + one record per point.
	path := filepath.Join(t.TempDir(), "acc.journal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pj := p
	pj.Journal = j
	if _, err := Acceptance(nil, pj); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside the second accpoint record's JSON. Everything from
	// that record on is untrustworthy; the meta record and the first point
	// survive.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	target := -1
	seen := 0
	for i, ln := range lines {
		if strings.Contains(ln, "accpoint:") {
			if seen++; seen == 2 {
				target = i
				break
			}
		}
	}
	if target < 0 {
		t.Fatalf("journal has fewer than 2 point records:\n%s", raw)
	}
	flipped := []byte(lines[target])
	flipped[len(flipped)/2] ^= 0x01
	lines[target] = string(flipped)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Salvage: the open truncates at the flipped record and replays only the
	// valid prefix — meta + 1 point.
	baseTrunc := obs.Default().Counter("journal.truncations").Value()
	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	if d := obs.Default().Counter("journal.truncations").Value() - baseTrunc; d != 1 {
		t.Fatalf("journal.truncations advanced %d, want 1", d)
	}
	points := 0
	for _, r := range recs {
		if strings.HasPrefix(r.Key, "accpoint:") {
			points++
		}
	}
	if points != 1 {
		t.Fatalf("salvaged %d point records, want exactly the 1 before the flip", points)
	}
	// The file itself is a valid prefix again: byte-identical to the
	// uncorrupted journal's first lines.
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.Join(lines[:target], ""); string(now) != want {
		t.Fatalf("salvaged file is not the valid prefix\ngot:  %q\nwant: %q", now, want)
	}

	// Resume from the salvaged journal: restored == surviving points, table
	// byte-identical to the uninterrupted reference.
	pr := p
	pr.Journal = j2
	pr.Resume = journal.Latest(recs)
	reg := obs.NewRegistry()
	pr.Obs = obs.NewScope(reg)
	got, err := Acceptance(nil, pr)
	if cerr := j2.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("resume after salvage: %v", err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("post-salvage resume differs from uninterrupted run\nref: %s\ngot: %s", refJSON, gotJSON)
	}
	if n := reg.Counter("campaign.points.restored").Value(); n != 1 {
		t.Fatalf("campaign.points.restored = %d, want 1 (the salvaged point)", n)
	}
}

// TestAcceptanceResumeRejectsForeignJournal pins the fingerprint check: a
// journal written under different campaign parameters must be refused, not
// silently mixed into a new experiment.
func TestAcceptanceResumeRejectsForeignJournal(t *testing.T) {
	p := smallAcceptance()
	p.Workers = 1
	path := filepath.Join(t.TempDir(), "acc.journal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pa := p
	pa.Journal = j
	if _, err := Acceptance(nil, pa); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	foreign := p
	foreign.Seed++ // different experiment
	foreign.Journal = j2
	foreign.Resume = journal.Latest(recs)
	if _, err := Acceptance(nil, foreign); !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("foreign resume: err = %v, want ErrInvalidInput", err)
	}
}

// TestCampaignInterface pins the job-shaped view both campaign types expose
// to the analysis service.
func TestCampaignInterface(t *testing.T) {
	var camps = []Campaign{smallAcceptance(), DefaultMonteCarloParams()}
	if k := camps[0].Kind(); k != "acceptance" {
		t.Fatalf("Kind() = %q, want acceptance", k)
	}
	if k := camps[1].Kind(); k != "montecarlo" {
		t.Fatalf("Kind() = %q, want montecarlo", k)
	}
	res, err := camps[0].Run(nil)
	if err != nil {
		t.Fatalf("acceptance Run: %v", err)
	}
	if res == nil {
		t.Fatal("acceptance Run returned nil result")
	}
	bad := MonteCarloParams{Trials: -1}
	if err := Campaign(bad).Validate(); err == nil {
		t.Fatal("Validate() accepted Trials = -1")
	}
}

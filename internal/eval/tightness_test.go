package eval

import (
	"testing"
)

func TestTightnessExperiment(t *testing.T) {
	p := DefaultTightnessParams()
	p.Horizon = 12000 // shorter for the test; the binary uses 60000
	tbl, err := Tightness(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := TightnessChecks(tbl); err != nil {
		t.Fatal(err)
	}
	// The experiment must be informative: the lower bound (max of
	// adversarial and observed) reaches at least a third of the bound
	// somewhere — the bound is tight to a small constant, not vacuous.
	informative := false
	for i := range tbl.X {
		lower := tbl.Series[1].Y[i]
		if tbl.Series[2].Y[i] > lower {
			lower = tbl.Series[2].Y[i]
		}
		if lower >= tbl.Series[0].Y[i]/3 {
			informative = true
		}
	}
	if !informative {
		t.Fatal("bound never within 3x of any lower bound; experiment uninformative")
	}
}

func TestTightnessValidation(t *testing.T) {
	if _, err := Tightness(nil, TightnessParams{}); err == nil {
		t.Fatal("accepted empty parameters")
	}
	if _, err := Tightness(nil, TightnessParams{Qs: []float64{5}, Horizon: 0}); err == nil {
		t.Fatal("accepted zero horizon")
	}
}

func TestTightnessChecksDetectViolation(t *testing.T) {
	p := DefaultTightnessParams()
	p.Qs = p.Qs[:2]
	p.Horizon = 4000
	tbl, err := Tightness(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Series[2].Y[0] = 1e9
	if err := TightnessChecks(tbl); err == nil {
		t.Fatal("corrupted table passed checks")
	}
}

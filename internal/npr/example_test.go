package npr_test

import (
	"fmt"

	"fnpr/internal/npr"
	"fnpr/internal/task"
)

// Deriving floating non-preemptive region lengths from the EDF demand-bound
// slack (Bertogna & Baruah) — the analysis Section III of the paper assumes.
func ExampleAssignQ() {
	ts := task.Set{
		{Name: "a", C: 1, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
	qs, _ := npr.AssignQ(ts, npr.EDF)
	for _, tk := range qs {
		fmt.Printf("%s: Q = %g\n", tk.Name, tk.Q)
	}
	// Output:
	// a: Q = 1
	// b: Q = 2
	// c: Q = 3
}

func ExampleDemandBound() {
	ts := task.Set{
		{Name: "a", C: 1, T: 4},
		{Name: "b", C: 2, T: 8},
	}
	fmt.Println(npr.DemandBound(ts, 8))
	// Output:
	// 4
}

// Package npr computes the lengths Qi of floating non-preemptive regions.
//
// Section III of the paper assumes Qi given, citing two ways to obtain it:
// the EDF demand-bound-function analysis of Bertogna and Baruah (reference
// [2]) and the fixed-priority analysis of Yao, Buttazzo and Bertogna
// (reference [11]) / Marinho and Petters (reference [12]). This package
// implements both, so the library is self-contained: the blocking tolerance
// of each task is derived from the schedulability analysis, and the floating
// NPR length of a task is the largest blocking every task it may delay can
// absorb.
package npr

import (
	"fmt"
	"math"
	"sort"

	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// DemandBound returns the EDF demand bound function of the task set at t:
// the cumulative execution demand of all jobs with both release and deadline
// inside any interval of length t.
func DemandBound(ts task.Set, t float64) float64 {
	var d float64
	for _, tk := range ts {
		n := math.Floor((t-tk.Deadline())/tk.T) + 1
		if n > 0 {
			d += n * tk.C
		}
	}
	return d
}

// maxDeadlinePoints caps the number of demand-test checkpoints; horizons
// near U = 1 can otherwise explode the candidate set.
const maxDeadlinePoints = 2_000_000

// deadlinesUpTo lists the distinct absolute deadlines k*T + D <= limit of
// all tasks, sorted ascending. The list is truncated at maxDeadlinePoints
// (callers treat analyses on a truncated list as failed via
// checkDeadlineBudget).
func deadlinesUpTo(ts task.Set, limit float64) []float64 {
	set := make(map[float64]struct{})
	for _, tk := range ts {
		for d := tk.Deadline(); d <= limit; d += tk.T {
			set[d] = struct{}{}
			if len(set) > maxDeadlinePoints {
				break
			}
		}
	}
	out := make([]float64, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Float64s(out)
	return out
}

// checkDeadlineBudget reports whether the horizon fits the checkpoint cap.
func checkDeadlineBudget(ts task.Set, limit float64) error {
	var points float64
	for _, tk := range ts {
		points += limit / tk.T
	}
	if points > maxDeadlinePoints {
		return guard.Budgetf("npr: demand test needs ~%.0f checkpoints over horizon %g (cap %d); utilization too close to 1", points, limit, maxDeadlinePoints)
	}
	return nil
}

// AnalysisHorizon returns the interval length up to which the EDF demand
// test needs to be checked: beyond it, slack t - dbf(t) can only grow.
// For U < 1 the classic bound max(D_max, U/(1-U) * max(T_i - D_i)) applies,
// capped by the hyperperiod when available.
func AnalysisHorizon(ts task.Set) (float64, error) {
	u := ts.Utilization()
	if u > 1 {
		return 0, guard.Invalidf("npr: utilization %.3f exceeds 1, no horizon", u)
	}
	var dmax, shift float64
	for _, tk := range ts {
		dmax = math.Max(dmax, tk.Deadline())
		shift = math.Max(shift, tk.T-tk.Deadline())
	}
	h := dmax
	if u < 1 {
		h = math.Max(h, u/(1-u)*shift)
	} else if hp, ok := ts.Hyperperiod(); ok {
		h = math.Max(h, hp+dmax)
	} else {
		return 0, guard.Invalidf("npr: U = 1 with non-integral periods: unbounded horizon")
	}
	if hp, ok := ts.Hyperperiod(); ok && hp+dmax < h {
		h = hp + dmax
	}
	return h, nil
}

// EDFBlockingTolerance computes, for every task (sorted by any order), the
// maximum blocking βi that jobs with absolute deadlines earlier than τi's can
// tolerate from a non-preemptive region of a later-deadline job:
//
//	βi = min over absolute deadlines t < Di of (t - dbf(t))
//
// following Bertogna and Baruah's limited-preemption EDF analysis. A negative
// tolerance means the set is not EDF-schedulable even fully preemptively.
// Tasks with the earliest relative deadline get +Inf (no earlier deadline to
// protect, so their own NPR length is unconstrained — they can only be
// "blocked" by even-earlier deadlines, of which there are none shorter).
func EDFBlockingTolerance(ts task.Set) ([]float64, error) {
	return EDFBlockingToleranceCtx(nil, ts)
}

// EDFBlockingToleranceCtx is EDFBlockingTolerance under a guard scope: the
// demand sweep charges one guard step per deadline checkpoint. A nil guard
// means no limits.
func EDFBlockingToleranceCtx(g *guard.Ctx, ts task.Set) ([]float64, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("npr: empty task set")
	}
	horizon, err := AnalysisHorizon(ts)
	if err != nil {
		return nil, err
	}
	if err := checkDeadlineBudget(ts, horizon); err != nil {
		return nil, err
	}
	deadlines := deadlinesUpTo(ts, horizon)
	slacks := make([]float64, len(deadlines))
	for i, t := range deadlines {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		slacks[i] = t - DemandBound(ts, t)
	}
	// Prefix minima: minSlackBelow[i] = min slack at deadlines < x.
	out := make([]float64, len(ts))
	for i, tk := range ts {
		m := math.Inf(1)
		for j, t := range deadlines {
			if t >= tk.Deadline() {
				break
			}
			if slacks[j] < m {
				m = slacks[j]
			}
		}
		out[i] = m
	}
	return out, nil
}

// RequestBound returns the fixed-priority level-i request bound function:
// the worst-case execution demand of τi and all higher-priority tasks over
// an interval of length t, with the set sorted by priority and i an index
// into it. Release jitter is accounted in the standard way.
func RequestBound(ts task.Set, i int, t float64) float64 {
	w := ts[i].C
	for j := 0; j < i; j++ {
		w += math.Ceil((t+ts[j].Jitter)/ts[j].T) * ts[j].C
	}
	return w
}

// FPBlockingTolerance computes, for every task of a priority-sorted set, the
// maximum blocking βi tolerable by τi under fixed-priority scheduling:
//
//	βi = max over t in (0, Di] of (t - Wi(t))
//
// where Wi is the level-i request bound and the maximum is taken over the
// finitely many points where Wi changes (multiples of higher-priority
// periods, plus Di itself). A negative tolerance means τi misses deadlines
// even without blocking.
func FPBlockingTolerance(ts task.Set) ([]float64, error) {
	return FPBlockingToleranceCtx(nil, ts)
}

// FPBlockingToleranceCtx is FPBlockingTolerance under a guard scope: the
// level-i sweep charges one guard step per scheduling point.
func FPBlockingToleranceCtx(g *guard.Ctx, ts task.Set) ([]float64, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("npr: empty task set")
	}
	out := make([]float64, len(ts))
	for i, tk := range ts {
		points := schedulingPoints(ts, i, tk.Deadline())
		best := math.Inf(-1)
		for _, t := range points {
			if err := g.Tick(); err != nil {
				return nil, err
			}
			if s := t - RequestBound(ts, i, t); s > best {
				best = s
			}
		}
		out[i] = best
	}
	return out, nil
}

// schedulingPoints lists the candidate points for the level-i analysis:
// all multiples of higher-priority periods up to limit, plus limit itself.
func schedulingPoints(ts task.Set, i int, limit float64) []float64 {
	set := map[float64]struct{}{limit: {}}
	for j := 0; j < i; j++ {
		for t := ts[j].T; t < limit; t += ts[j].T {
			set[t] = struct{}{}
		}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// Policy selects the scheduling policy Q is derived for.
type Policy int

const (
	// EDF uses the demand-bound-function tolerance of Bertogna & Baruah.
	EDF Policy = iota
	// FixedPriority uses the level-i tolerance of Yao et al.; the set
	// must already be sorted highest priority first.
	FixedPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EDF:
		return "EDF"
	case FixedPriority:
		return "FP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AssignQ returns a copy of the task set with each task's floating NPR
// length Q set to the largest value permitted by the policy's blocking
// analysis:
//
//	EDF:  Qi = βi — a non-preemptive region of τi can only block jobs
//	      with absolute deadlines earlier than τi's, and βi is by
//	      construction the minimum slack over those deadlines;
//	FP:   Qi = min over tasks τj with higher priority of βj.
//
// A task that can block nobody (earliest deadline / highest priority) gets
// Qi = Ci, making it effectively non-preemptive, which is always safe for
// that task. Tolerances are clamped to [0, Ci]; an error is returned when
// any tolerance is negative (the set is unschedulable even fully
// preemptively).
func AssignQ(ts task.Set, p Policy) (task.Set, error) {
	return AssignQCtx(nil, ts, p)
}

// AssignQCtx is AssignQ under a guard scope.
func AssignQCtx(g *guard.Ctx, ts task.Set, p Policy) (task.Set, error) {
	var tol []float64
	var err error
	switch p {
	case EDF:
		tol, err = EDFBlockingToleranceCtx(g, ts)
	case FixedPriority:
		tol, err = FPBlockingToleranceCtx(g, ts)
	default:
		return nil, guard.Invalidf("npr: unknown policy %v", p)
	}
	if err != nil {
		return nil, err
	}
	out := ts.Clone()
	for i := range out {
		var q float64
		switch p {
		case EDF:
			q = tol[i]
		case FixedPriority:
			q = math.Inf(1)
			for j := 0; j < i; j++ {
				if tol[j] < q {
					q = tol[j]
				}
			}
		}
		if q < 0 {
			return nil, guard.Invalidf("npr: task %s faces negative blocking tolerance %g", out[i].Name, q)
		}
		if q > out[i].C {
			q = out[i].C
		}
		out[i].Q = q
	}
	return out, nil
}

// ValidateQ checks that the Q values carried by the task set are admissible
// under the given policy: every task's non-preemptive region fits within the
// blocking tolerance of everything it can delay. This is the acceptance-side
// counterpart of AssignQ for task sets whose Q was chosen externally.
func ValidateQ(ts task.Set, p Policy) error {
	return ValidateQCtx(nil, ts, p)
}

// ValidateQCtx is ValidateQ under a guard scope.
func ValidateQCtx(g *guard.Ctx, ts task.Set, p Policy) error {
	var tol []float64
	var err error
	switch p {
	case EDF:
		tol, err = EDFBlockingToleranceCtx(g, ts)
	case FixedPriority:
		tol, err = FPBlockingToleranceCtx(g, ts)
	default:
		return guard.Invalidf("npr: unknown policy %v", p)
	}
	if err != nil {
		return err
	}
	for i, tk := range ts {
		switch p {
		case EDF:
			if tk.Q > tol[i]+1e-9 {
				return fmt.Errorf("npr: task %s Q=%g exceeds EDF tolerance %g", tk.Name, tk.Q, tol[i])
			}
		case FixedPriority:
			for j := 0; j < i; j++ {
				if tk.Q > tol[j]+1e-9 {
					return fmt.Errorf("npr: task %s Q=%g exceeds tolerance %g of higher-priority %s",
						tk.Name, tk.Q, tol[j], ts[j].Name)
				}
			}
		}
	}
	return nil
}

package npr

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/task"
)

func implicitSet() task.Set {
	return task.Set{
		{Name: "a", C: 1, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
}

func TestDemandBound(t *testing.T) {
	ts := implicitSet()
	if got := DemandBound(ts, 0); got != 0 {
		t.Fatalf("dbf(0) = %g, want 0", got)
	}
	if got := DemandBound(ts, 4); got != 1 {
		t.Fatalf("dbf(4) = %g, want 1", got)
	}
	if got := DemandBound(ts, 8); got != 4 {
		t.Fatalf("dbf(8) = %g, want 4", got)
	}
	// t=16: a: floor(12/4)+1 = 4 jobs -> 4; b: floor(8/8)+1 = 2 -> 4;
	// c: floor(0/16)+1 = 1 -> 4. Total 12.
	if got := DemandBound(ts, 16); got != 12 {
		t.Fatalf("dbf(16) = %g, want 12", got)
	}
}

func TestDemandBoundMonotone(t *testing.T) {
	ts := implicitSet()
	r := rand.New(rand.NewSource(1))
	prevT, prevD := 0.0, 0.0
	for i := 0; i < 200; i++ {
		tt := prevT + r.Float64()*3
		d := DemandBound(ts, tt)
		if d < prevD {
			t.Fatalf("dbf not monotone: dbf(%g)=%g < dbf(%g)=%g", tt, d, prevT, prevD)
		}
		prevT, prevD = tt, d
	}
}

func TestAnalysisHorizon(t *testing.T) {
	ts := implicitSet() // U = 0.25+0.25+0.25 = 0.75
	h, err := AnalysisHorizon(ts)
	if err != nil {
		t.Fatal(err)
	}
	if h < 16 {
		t.Fatalf("horizon %g below largest deadline", h)
	}
	over := task.Set{{Name: "x", C: 10, T: 8}}
	if _, err := AnalysisHorizon(over); err == nil {
		t.Fatal("accepted overutilized set")
	}
}

func TestAnalysisHorizonFullUtilizationIntegral(t *testing.T) {
	ts := task.Set{{Name: "a", C: 2, T: 4}, {Name: "b", C: 4, T: 8}}
	h, err := AnalysisHorizon(ts)
	if err != nil {
		t.Fatal(err)
	}
	if h < 8 {
		t.Fatalf("horizon %g too small", h)
	}
}

func TestEDFBlockingTolerance(t *testing.T) {
	ts := implicitSet()
	tol, err := EDFBlockingTolerance(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Task a (D=4): no earlier deadline exists -> +Inf.
	if !math.IsInf(tol[0], 1) {
		t.Fatalf("tol[a] = %g, want +Inf", tol[0])
	}
	// Task b (D=8): earliest deadline is 4 with slack 4 - dbf(4) = 3.
	if tol[1] != 3 {
		t.Fatalf("tol[b] = %g, want 3", tol[1])
	}
	// Task c (D=16): deadlines 4 (slack 3), 8 (slack 4), 12 (slack 9).
	if tol[2] != 3 {
		t.Fatalf("tol[c] = %g, want 3", tol[2])
	}
}

func TestEDFBlockingToleranceRejectsInvalid(t *testing.T) {
	if _, err := EDFBlockingTolerance(task.Set{}); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := EDFBlockingTolerance(task.Set{{Name: "", C: 1, T: 2}}); err == nil {
		t.Fatal("accepted invalid task")
	}
}

func TestRequestBound(t *testing.T) {
	ts := implicitSet()
	ts.AssignRateMonotonic()
	// Level 2 (task c) at t=16: own C 4 + a: ceil(16/4)*1 = 4 + b:
	// ceil(16/8)*2 = 4 -> 12.
	if got := RequestBound(ts, 2, 16); got != 12 {
		t.Fatalf("W_2(16) = %g, want 12", got)
	}
	// Level 0 at any t is its own C.
	if got := RequestBound(ts, 0, 3); got != 1 {
		t.Fatalf("W_0(3) = %g, want 1", got)
	}
}

func TestFPBlockingTolerance(t *testing.T) {
	ts := implicitSet()
	ts.AssignRateMonotonic()
	tol, err := FPBlockingTolerance(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Task a: max over (0,4] of t - 1 -> 3 at t=4.
	if tol[0] != 3 {
		t.Fatalf("tol[a] = %g, want 3", tol[0])
	}
	// Task b: points 4, 8: 4 - (2 + 1*1) = 1; 8 - (2 + 2*1) = 4.
	if tol[1] != 4 {
		t.Fatalf("tol[b] = %g, want 4", tol[1])
	}
	// Task c: points 4: 4-(4+1+2)=-3; 8: 8-(4+2+2)=0; 12: 12-(4+3+4)=1;
	// 16: 16-(4+4+4)=4.
	if tol[2] != 4 {
		t.Fatalf("tol[c] = %g, want 4", tol[2])
	}
}

func TestFPBlockingToleranceUnschedulable(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 3, T: 4, Prio: 0},
		{Name: "b", C: 3, T: 8, D: 6, Prio: 1},
	}
	tol, err := FPBlockingTolerance(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Task b: points 4: 4-(3+3)=-2; 6: 6-(3+2*3)=-3 -> best -2 < 0.
	if tol[1] >= 0 {
		t.Fatalf("tol[b] = %g, want negative", tol[1])
	}
}

func TestAssignQEDF(t *testing.T) {
	ts := implicitSet()
	qs, err := AssignQ(ts, EDF)
	if err != nil {
		t.Fatal(err)
	}
	// Task a: earliest deadline, its NPR can block nobody with an
	// earlier deadline -> tolerance +Inf, clamped to C = 1.
	if qs[0].Q != 1 {
		t.Fatalf("Q[a] = %g, want 1 (clamped to C)", qs[0].Q)
	}
	// Task b: must protect deadline 4 (slack 3) -> Q = min(3, C=2) = 2.
	if qs[1].Q != 2 {
		t.Fatalf("Q[b] = %g, want 2", qs[1].Q)
	}
	// Task c: deadlines 4 (slack 3), 8 (slack 4), 12 (slack 7) -> 3.
	if qs[2].Q != 3 {
		t.Fatalf("Q[c] = %g, want 3", qs[2].Q)
	}
	checkConsistency(t, ts, qs)
}

// checkConsistency verifies structural invariants of AssignQ output.
func checkConsistency(t *testing.T, in, out task.Set) {
	t.Helper()
	if len(in) != len(out) {
		t.Fatal("AssignQ changed set size")
	}
	for i := range out {
		if out[i].Q < 0 || out[i].Q > out[i].C {
			t.Fatalf("Q[%s] = %g outside [0, C=%g]", out[i].Name, out[i].Q, out[i].C)
		}
		if out[i].Name != in[i].Name || out[i].C != in[i].C || out[i].T != in[i].T {
			t.Fatal("AssignQ mutated task parameters")
		}
	}
}

func TestAssignQFP(t *testing.T) {
	ts := implicitSet()
	ts.AssignRateMonotonic()
	qs, err := AssignQ(ts, FixedPriority)
	if err != nil {
		t.Fatal(err)
	}
	// Highest priority: Q = C (nobody above to block).
	if qs[0].Q != qs[0].C {
		t.Fatalf("Q[hi] = %g, want C=%g", qs[0].Q, qs[0].C)
	}
	// b: blocks only a (tol 3) -> Q = min(3, C=2) = 2.
	if qs[1].Q != 2 {
		t.Fatalf("Q[b] = %g, want 2", qs[1].Q)
	}
	// c: blocks a (3) and b (4) -> 3, clamped by C=4 -> 3.
	if qs[2].Q != 3 {
		t.Fatalf("Q[c] = %g, want 3", qs[2].Q)
	}
	checkConsistency(t, ts, qs)
}

func TestAssignQUnknownPolicy(t *testing.T) {
	if _, err := AssignQ(implicitSet(), Policy(42)); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestAssignQUnschedulable(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 3, T: 4, Prio: 0},
		{Name: "b", C: 3, T: 8, D: 6, Prio: 1},
		{Name: "c", C: 1, T: 50, Prio: 2},
	}
	if _, err := AssignQ(ts, FixedPriority); err == nil {
		t.Fatal("accepted set with negative tolerance")
	}
}

func TestPolicyString(t *testing.T) {
	if EDF.String() != "EDF" || FixedPriority.String() != "FP" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}

// randomSchedulableSet builds a random implicit-deadline set with total
// utilization below cap and integral periods.
func randomSchedulableSet(r *rand.Rand, n int, cap float64) task.Set {
	ts := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		period := float64(4 * (1 + r.Intn(32)))
		c := 1 + r.Float64()*(period*cap/float64(n)-1)
		if c < 0.5 {
			c = 0.5
		}
		ts = append(ts, task.Task{
			Name: string(rune('a' + i)),
			C:    c,
			T:    period,
		})
	}
	return ts
}

// Property: AssignQ(EDF) yields Q values that keep every deadline's dbf
// slack at least as large as the largest Q of any later-deadline task —
// the Bertogna-Baruah schedulability condition for floating NPRs.
func TestAssignQEDFSoundSlack(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		ts := randomSchedulableSet(r, 2+r.Intn(4), 0.8)
		if ts.Utilization() >= 1 {
			continue
		}
		qs, err := AssignQ(ts, EDF)
		if err != nil {
			continue // negative tolerance: skip unschedulable draws
		}
		horizon, err := AnalysisHorizon(qs)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deadlinesUpTo(qs, horizon) {
			slack := d - DemandBound(qs, d)
			var blocking float64
			for _, tk := range qs {
				if tk.Deadline() > d && tk.Q > blocking {
					blocking = tk.Q
				}
			}
			if blocking > slack+1e-9 {
				t.Fatalf("trial %d: deadline %g slack %g below blocking %g (set %v)",
					trial, d, slack, blocking, qs)
			}
		}
	}
}

// Property: AssignQ(FP) yields Q values no larger than every higher-priority
// task's tolerance, so each task remains schedulable under the level-i test
// with the blocking its lower-priority tasks can impose.
func TestAssignQFPSound(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		ts := randomSchedulableSet(r, 2+r.Intn(4), 0.7)
		ts.AssignRateMonotonic()
		qs, err := AssignQ(ts, FixedPriority)
		if err != nil {
			continue
		}
		tol, err := FPBlockingTolerance(ts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			var maxLowerQ float64
			for j := i + 1; j < len(qs); j++ {
				if qs[j].Q > maxLowerQ {
					maxLowerQ = qs[j].Q
				}
			}
			if maxLowerQ > tol[i]+1e-9 {
				t.Fatalf("trial %d: task %d tolerance %g exceeded by lower-priority Q %g",
					trial, i, tol[i], maxLowerQ)
			}
		}
	}
}

func TestValidateQ(t *testing.T) {
	ts := implicitSet()
	ts.AssignRateMonotonic()
	qs, err := AssignQ(ts, FixedPriority)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateQ(qs, FixedPriority); err != nil {
		t.Fatalf("AssignQ output rejected: %v", err)
	}
	// Inflate one Q beyond tolerance.
	bad := qs.Clone()
	bad[2].Q = 100
	if err := ValidateQ(bad, FixedPriority); err == nil {
		t.Fatal("oversized Q accepted under FP")
	}
	eqs, err := AssignQ(implicitSet(), EDF)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateQ(eqs, EDF); err != nil {
		t.Fatalf("EDF AssignQ output rejected: %v", err)
	}
	bad2 := eqs.Clone()
	bad2[2].Q = 100
	if err := ValidateQ(bad2, EDF); err == nil {
		t.Fatal("oversized Q accepted under EDF")
	}
	if err := ValidateQ(implicitSet(), Policy(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDeadlineBudgetGuard(t *testing.T) {
	// Utilization extremely close to 1 with a tiny period creates a
	// gigantic horizon; the analysis must fail loudly, not blow memory.
	ts := task.Set{
		{Name: "a", C: 0.9999999, T: 1},
		{Name: "b", C: 0.00000005, T: 1e9},
	}
	if _, err := EDFBlockingTolerance(ts); err == nil {
		t.Fatal("accepted pathological horizon")
	}
}

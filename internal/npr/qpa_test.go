package npr

import (
	"math/rand"
	"testing"

	"fnpr/internal/task"
)

func TestQPASchedulableSet(t *testing.T) {
	ok, err := QPA(implicitSet())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("QPA rejected a schedulable set")
	}
}

func TestQPAOverloadedSet(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 3, T: 4},
		{Name: "b", C: 2, T: 6},
	}
	ok, err := QPA(ts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("QPA accepted an overloaded set")
	}
}

func TestQPAConstrainedDeadlineMiss(t *testing.T) {
	// U < 1 but a tight constrained deadline fails the demand test.
	ts := task.Set{
		{Name: "a", C: 2, T: 10, D: 3},
		{Name: "b", C: 2, T: 10, D: 3.5},
	}
	ok, err := QPA(ts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("QPA accepted a set with infeasible constrained deadlines")
	}
	ref, err := EDFSchedulable(ts)
	if err != nil {
		t.Fatal(err)
	}
	if ref {
		t.Fatal("reference test disagrees")
	}
}

func TestQPAValidation(t *testing.T) {
	if _, err := QPA(task.Set{}); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := EDFSchedulable(task.Set{{Name: "", C: 1, T: 2}}); err == nil {
		t.Fatal("reference accepted invalid task")
	}
}

func TestLastDeadlineBefore(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 10, D: 4}} // deadlines 4, 14, 24, ...
	if got := lastDeadlineBefore(ts, 25); got != 24 {
		t.Fatalf("lastDeadlineBefore(25) = %g, want 24", got)
	}
	if got := lastDeadlineBefore(ts, 24); got != 14 {
		t.Fatalf("lastDeadlineBefore(24) = %g, want 14", got)
	}
	if got := lastDeadlineBefore(ts, 4); got != -1 {
		t.Fatalf("lastDeadlineBefore(4) = %g, want -1", got)
	}
}

// Property: QPA agrees with the exhaustive processor-demand test on random
// constrained-deadline sets.
func TestQPAMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	agreeSched, agreeUnsched := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(4)
		ts := make(task.Set, 0, n)
		for i := 0; i < n; i++ {
			period := float64(5 * (1 + r.Intn(40)))
			c := 1 + r.Float64()*(period/float64(n))
			d := c + r.Float64()*(period-c)
			ts = append(ts, task.Task{
				Name: string(rune('a' + i)),
				C:    c, T: period, D: d,
			})
		}
		if ts.Utilization() > 0.999 {
			continue
		}
		ref, err := EDFSchedulable(ts)
		if err != nil {
			continue // horizon budget tripped; QPA may still work but skip comparison
		}
		got, err := QPA(ts)
		if err != nil {
			t.Fatalf("trial %d: QPA error: %v", trial, err)
		}
		if got != ref {
			t.Fatalf("trial %d: QPA=%v, exhaustive=%v for %v", trial, got, ref, ts)
		}
		if ref {
			agreeSched++
		} else {
			agreeUnsched++
		}
	}
	if agreeSched < 20 || agreeUnsched < 20 {
		t.Fatalf("weak coverage: %d schedulable, %d unschedulable agreements", agreeSched, agreeUnsched)
	}
}

package npr

import (
	"math"

	"fnpr/internal/guard"
	"fnpr/internal/task"
)

// QPA implements Zhang and Burns' Quick Processor-demand Analysis for EDF:
// instead of checking dbf(t) <= t at every absolute deadline up to the
// horizon, it iterates t <- dbf(t) downward from the largest deadline below
// the horizon, visiting only a short chain of points. The set is
// EDF-schedulable iff the iteration terminates with dbf(t) <= min deadline.
//
// It is exactly equivalent to the exhaustive demand test (the test suite
// checks the equivalence on random sets) and typically orders of magnitude
// faster near U = 1, which is where the exhaustive horizon explodes.
func QPA(ts task.Set) (bool, error) {
	return QPACtx(nil, ts)
}

// QPACtx is QPA under a guard scope: the downward iteration charges one
// guard step per visited point. A nil guard means no limits.
func QPACtx(g *guard.Ctx, ts task.Set) (bool, error) {
	if err := ts.Validate(); err != nil {
		return false, err
	}
	if len(ts) == 0 {
		return false, guard.Invalidf("npr: empty task set")
	}
	if ts.Utilization() > 1 {
		return false, nil
	}
	horizon, err := AnalysisHorizon(ts)
	if err != nil {
		return false, err
	}
	dmin := math.Inf(1)
	for _, tk := range ts {
		dmin = math.Min(dmin, tk.Deadline())
	}
	// Largest absolute deadline strictly below the horizon.
	t := lastDeadlineBefore(ts, horizon)
	if t < dmin {
		return true, nil // no deadline to check
	}
	for steps := 0; steps < maxDeadlinePoints; steps++ {
		if err := g.Tick(); err != nil {
			return false, err
		}
		h := DemandBound(ts, t)
		switch {
		case h > t:
			return false, nil
		case h < t:
			t = h
		default: // h == t
			t = lastDeadlineBefore(ts, t)
		}
		if t < dmin {
			return true, nil
		}
	}
	return false, guard.Divergedf("npr: QPA did not converge (pathological parameters)")
}

// lastDeadlineBefore returns the largest absolute deadline strictly smaller
// than t, or -1 when none exists.
func lastDeadlineBefore(ts task.Set, t float64) float64 {
	best := -1.0
	for _, tk := range ts {
		d := tk.Deadline()
		if d >= t {
			continue
		}
		// Largest k with k*T + D < t.
		k := math.Floor((t - d) / tk.T)
		if cand := k*tk.T + d; cand >= t {
			cand -= tk.T
			if cand > best {
				best = cand
			}
		} else if cand > best {
			best = cand
		}
	}
	return best
}

// EDFSchedulable runs the exhaustive processor-demand test (dbf(t) <= t at
// every absolute deadline up to the analysis horizon) — the reference
// implementation QPA is validated against.
func EDFSchedulable(ts task.Set) (bool, error) {
	return EDFSchedulableCtx(nil, ts)
}

// EDFSchedulableCtx is EDFSchedulable under a guard scope: the exhaustive
// sweep charges one guard step per deadline.
func EDFSchedulableCtx(g *guard.Ctx, ts task.Set) (bool, error) {
	if err := ts.Validate(); err != nil {
		return false, err
	}
	if ts.Utilization() > 1 {
		return false, nil
	}
	horizon, err := AnalysisHorizon(ts)
	if err != nil {
		return false, err
	}
	if err := checkDeadlineBudget(ts, horizon); err != nil {
		return false, err
	}
	for _, d := range deadlinesUpTo(ts, horizon) {
		if err := g.Tick(); err != nil {
			return false, err
		}
		if DemandBound(ts, d) > d {
			return false, nil
		}
	}
	return true, nil
}

package fixednpr

import (
	"math"
	"math/rand"
	"testing"

	"fnpr/internal/core"
)

func linear(durCost ...float64) Task {
	var t Task
	for i := 0; i+1 < len(durCost); i += 2 {
		t.Chunks = append(t.Chunks, Chunk{Duration: durCost[i], Cost: durCost[i+1]})
	}
	return t
}

func TestValidate(t *testing.T) {
	if err := (Task{}).Validate(); err == nil {
		t.Fatal("accepted empty task")
	}
	if err := linear(0, 1).Validate(); err == nil {
		t.Fatal("accepted zero duration")
	}
	if err := linear(1, -1).Validate(); err == nil {
		t.Fatal("accepted negative cost")
	}
	if err := linear(5, 2, 5, 1).Validate(); err != nil {
		t.Fatalf("rejected valid task: %v", err)
	}
}

func TestC(t *testing.T) {
	tk := linear(5, 2, 7, 1, 3, 0)
	if tk.C() != 15 {
		t.Fatalf("C = %g, want 15", tk.C())
	}
}

func TestSelectPointsNoPointNeeded(t *testing.T) {
	tk := linear(5, 9, 5, 9) // total 10
	sel, err := SelectPoints(tk, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) != 0 || sel.TotalCost != 0 {
		t.Fatalf("selection = %+v, want no points", sel)
	}
	if sel.MaxInterval != 10 {
		t.Fatalf("max interval = %g, want 10", sel.MaxInterval)
	}
}

func TestSelectPointsPicksCheapest(t *testing.T) {
	// Three chunks of 5; qmax 10 requires at least one point; boundary
	// after chunk 0 costs 9, after chunk 1 costs 1 -> pick the cheap one.
	tk := linear(5, 9, 5, 1, 5, 0)
	sel, err := SelectPoints(tk, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) != 1 || sel.Points[0] != 1 {
		t.Fatalf("points = %v, want [1]", sel.Points)
	}
	if sel.TotalCost != 1 {
		t.Fatalf("cost = %g, want 1", sel.TotalCost)
	}
	if sel.MaxInterval > 10 {
		t.Fatalf("interval %g exceeds qmax", sel.MaxInterval)
	}
	if tk.EffectiveWCET(sel) != 16 {
		t.Fatalf("C' = %g, want 16", tk.EffectiveWCET(sel))
	}
}

func TestSelectPointsMultiple(t *testing.T) {
	// Six chunks of 4; qmax 8 -> need a point at least every 2 chunks.
	tk := linear(4, 5, 4, 1, 4, 5, 4, 1, 4, 5, 4, 0)
	sel, err := SelectPoints(tk, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.MaxInterval > 8+1e-9 {
		t.Fatalf("interval %g exceeds qmax", sel.MaxInterval)
	}
	// Optimal: points after chunks 1 and 3 (cost 1+1=2), leaving the
	// last interval = chunks 4+5 = 8 <= 8.
	if sel.TotalCost != 2 {
		t.Fatalf("cost = %g, want 2 (points %v)", sel.TotalCost, sel.Points)
	}
}

func TestSelectPointsInfeasible(t *testing.T) {
	tk := linear(12, 1, 5, 1)
	if _, err := SelectPoints(tk, 10); err == nil {
		t.Fatal("accepted chunk longer than qmax")
	}
	if _, err := SelectPoints(tk, 0); err == nil {
		t.Fatal("accepted qmax=0")
	}
}

func TestDelayFunction(t *testing.T) {
	tk := linear(5, 2, 5, 3, 5, 9)
	f, err := tk.DelayFunction()
	if err != nil {
		t.Fatal(err)
	}
	if f.Domain() != 15 {
		t.Fatalf("domain = %g, want 15", f.Domain())
	}
	if f.Eval(2) != 2 || f.Eval(7) != 3 {
		t.Fatalf("values wrong: f(2)=%g f(7)=%g", f.Eval(2), f.Eval(7))
	}
	// Last chunk's cost is zeroed (no preemption at task end).
	if f.Eval(13) != 0 {
		t.Fatalf("f(13) = %g, want 0", f.Eval(13))
	}
}

// Neither model dominates the other: the fixed model pays for every enabled
// point (but places them at the cheapest boundaries), while the floating
// bound pays only inside reachable Q windows (but at the worst point of each
// window). Both directions occur; this test pins one concrete example of
// each, plus basic sanity (fixed cost never exceeds the sum of all boundary
// costs) on random tasks.
func TestFixedVsFloatingNonDominance(t *testing.T) {
	// Floating wins: the whole task is cheap except one expensive early
	// boundary that floating preemptions can never reach (first window
	// starts past it) but fixed coverage must cross.
	a := linear(9, 5, 9, 5, 9, 0) // C=27, boundary costs 5, 5
	qa := 14.0
	selA, err := SelectPoints(a, qa)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := a.DelayFunction()
	floatA, err := core.Analyze(nil, fa, qa, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(selA.TotalCost > floatA.TotalDelay) {
		t.Fatalf("expected fixed (%g) > floating (%g) on task A", selA.TotalCost, floatA.TotalDelay)
	}

	// Fixed wins: a long task with many cheap boundaries; fixed places a
	// few zero-cost points, while floating charges the (nonzero) local
	// max in every window.
	b := linear(5, 1, 5, 0, 5, 1, 5, 0, 5, 1, 5, 0, 5, 1, 5, 0)
	qb := 10.0
	selB, err := SelectPoints(b, qb)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := b.DelayFunction()
	floatB, err := core.Analyze(nil, fb, qb, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(selB.TotalCost < floatB.TotalDelay) {
		t.Fatalf("expected fixed (%g) < floating (%g) on task B", selB.TotalCost, floatB.TotalDelay)
	}
}

// Sanity on random tasks: the optimal fixed cost never exceeds enabling
// every boundary, and the floating bound on the derived function is finite
// whenever qmax exceeds the largest boundary cost.
func TestFixedCostBounded(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(6)
		var tk Task
		var all float64
		for i := 0; i < n; i++ {
			c := Chunk{Duration: 2 + r.Float64()*8, Cost: r.Float64() * 3}
			tk.Chunks = append(tk.Chunks, c)
			if i < n-1 {
				all += c.Cost
			}
		}
		qmax := 12 + r.Float64()*10
		sel, err := SelectPoints(tk, qmax)
		if err != nil {
			continue // some chunk exceeded qmax
		}
		if sel.TotalCost > all+1e-9 {
			t.Fatalf("trial %d: optimal cost %g exceeds all-points cost %g", trial, sel.TotalCost, all)
		}
		f, err := tk.DelayFunction()
		if err != nil {
			t.Fatal(err)
		}
		floating, err := core.Analyze(nil, f, qmax, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(floating.TotalDelay, 1) {
			t.Fatalf("trial %d: floating bound diverged with qmax %g > max cost 3", trial, qmax)
		}
	}
}

func TestSelectionIntervalsRespectQmax(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8)
		var tk Task
		for i := 0; i < n; i++ {
			tk.Chunks = append(tk.Chunks, Chunk{
				Duration: 1 + r.Float64()*5,
				Cost:     r.Float64() * 4,
			})
		}
		qmax := 6 + r.Float64()*8
		sel, err := SelectPoints(tk, qmax)
		if err != nil {
			continue
		}
		if sel.MaxInterval > qmax+1e-9 {
			t.Fatalf("trial %d: interval %g exceeds qmax %g", trial, sel.MaxInterval, qmax)
		}
		// Points sorted ascending and within range.
		for i, p := range sel.Points {
			if p < 0 || p >= n-1 {
				t.Fatalf("trial %d: point %d out of range", trial, p)
			}
			if i > 0 && sel.Points[i-1] >= p {
				t.Fatalf("trial %d: points not ascending: %v", trial, sel.Points)
			}
		}
	}
}

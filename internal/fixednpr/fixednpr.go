// Package fixednpr implements the fixed non-preemptive region model the
// paper contrasts with its floating model (Section II): preemption points
// are hard-coded in the task, preemptions are allowed only there, and the
// points are chosen off-line to minimise the total preemption cost subject
// to a maximum non-preemptive interval (the blocking tolerance of the
// higher-priority workload). This is the "optimal selection of preemption
// points" problem of Bertogna et al. (reference [13] of the paper), solved
// here by dynamic programming.
//
// The package exists both as a baseline for comparison experiments (fixed
// vs floating total delay on the same task) and to make the library usable
// for systems that can afford code modification.
package fixednpr

import (
	"errors"
	"fmt"
	"math"

	"fnpr/internal/delay"
)

// Chunk is one sequential section of a task: Duration units of execution
// followed by a potential preemption point whose cache-related cost is Cost.
// The final chunk's Cost is ignored (the task end is not a preemption
// point).
type Chunk struct {
	Duration float64
	Cost     float64
}

// Task is a linear (sequential) task, the task model of reference [13].
type Task struct {
	Chunks []Chunk
}

// Validate checks the chunk list.
func (t Task) Validate() error {
	if len(t.Chunks) == 0 {
		return errors.New("fixednpr: task has no chunks")
	}
	for i, c := range t.Chunks {
		if c.Duration <= 0 || math.IsNaN(c.Duration) || math.IsInf(c.Duration, 0) {
			return fmt.Errorf("fixednpr: chunk %d has invalid duration %g", i, c.Duration)
		}
		if c.Cost < 0 || math.IsNaN(c.Cost) || math.IsInf(c.Cost, 0) {
			return fmt.Errorf("fixednpr: chunk %d has invalid cost %g", i, c.Cost)
		}
	}
	return nil
}

// C returns the task's total isolated execution time.
func (t Task) C() float64 {
	var c float64
	for _, ch := range t.Chunks {
		c += ch.Duration
	}
	return c
}

// Selection is the outcome of the preemption point optimisation.
type Selection struct {
	// Points lists the selected boundaries: Points contains i when a
	// preemption point is enabled after chunk i (0-based).
	Points []int
	// TotalCost is the summed preemption cost of the selected points —
	// the worst-case total preemption delay of the task under the fixed
	// model (every enabled point preempted once).
	TotalCost float64
	// MaxInterval is the longest non-preemptive interval of the
	// resulting task (must be <= the QMax constraint).
	MaxInterval float64
}

// SelectPoints chooses the subset of potential preemption points minimising
// total preemption cost such that no non-preemptive interval (between
// consecutive enabled points, or the task boundaries) exceeds qmax.
// It returns an error when even enabling every point leaves an interval
// above qmax (some chunk is longer than qmax).
func SelectPoints(t Task, qmax float64) (*Selection, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if qmax <= 0 || math.IsNaN(qmax) || math.IsInf(qmax, 0) {
		return nil, fmt.Errorf("fixednpr: invalid qmax %g", qmax)
	}
	n := len(t.Chunks)
	prefix := make([]float64, n+1)
	for i, c := range t.Chunks {
		prefix[i+1] = prefix[i] + c.Duration
		if c.Duration > qmax {
			return nil, fmt.Errorf("fixednpr: chunk %d duration %g exceeds qmax %g; no feasible selection", i, c.Duration, qmax)
		}
	}
	// best[j] = minimal cost of a feasible selection for the prefix
	// ending with an enabled point at boundary j (after chunk j-1);
	// boundary 0 is the task start (cost 0), boundary n the task end.
	const inf = math.MaxFloat64
	best := make([]float64, n+1)
	prev := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best[j] = inf
		prev[j] = -1
	}
	for j := 1; j <= n; j++ {
		cost := 0.0
		if j < n {
			cost = t.Chunks[j-1].Cost
		}
		for k := 0; k < j; k++ {
			if prefix[j]-prefix[k] > qmax+1e-12 {
				continue
			}
			if best[k] == inf {
				continue
			}
			if v := best[k] + cost; v < best[j] {
				best[j] = v
				prev[j] = k
			}
		}
	}
	if best[n] == inf {
		return nil, errors.New("fixednpr: no feasible selection")
	}
	// Reconstruct.
	sel := &Selection{TotalCost: best[n]}
	for j := prev[n]; j > 0; j = prev[j] {
		sel.Points = append(sel.Points, j-1)
	}
	// Reverse to ascending order.
	for i, k := 0, len(sel.Points)-1; i < k; i, k = i+1, k-1 {
		sel.Points[i], sel.Points[k] = sel.Points[k], sel.Points[i]
	}
	// Longest interval.
	last := 0.0
	for _, p := range sel.Points {
		sel.MaxInterval = math.Max(sel.MaxInterval, prefix[p+1]-last)
		last = prefix[p+1]
	}
	sel.MaxInterval = math.Max(sel.MaxInterval, prefix[n]-last)
	return sel, nil
}

// DelayFunction builds the floating-model preemption delay function
// equivalent to the linear task: while execution is inside chunk i (or at
// its boundary), a preemption costs the boundary cost of the chunk the task
// is currently in. This lets the same task be analysed under both models:
// fixed (SelectPoints) and floating (core.Analyze on this function).
func (t Task) DelayFunction() (*delay.Piecewise, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	xs := []float64{0}
	var vs []float64
	acc := 0.0
	for i, c := range t.Chunks {
		acc += c.Duration
		xs = append(xs, acc)
		cost := c.Cost
		if i == len(t.Chunks)-1 {
			cost = 0 // no preemption point at the task end
		}
		vs = append(vs, cost)
	}
	return delay.NewPiecewise(xs, vs)
}

// EffectiveWCET returns C plus the selection's total preemption cost — the
// fixed-model counterpart of the paper's Equation 5.
func (t Task) EffectiveWCET(sel *Selection) float64 {
	return t.C() + sel.TotalCost
}

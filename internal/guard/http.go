package guard

import (
	"errors"
	"net/http"
)

// HTTPStatus maps the error taxonomy onto HTTP status codes — the contract
// the analysis service (cmd/serve) exposes, parallel to the CLI exit-code
// contract in internal/cli:
//
//	nil                → 200 OK
//	ErrInvalidInput    → 400 Bad Request           (the request is wrong)
//	ErrOverload        → 429 Too Many Requests     (admission refused; retry)
//	ErrBudgetExceeded  → 422 Unprocessable Entity  (ran out of step budget)
//	ErrDiverged        → 422 Unprocessable Entity  (no finite answer exists)
//	ErrCanceled        → 504 Gateway Timeout       (deadline or caller abort)
//	ErrStorage         → 507 Insufficient Storage  (durable layer failed)
//	ErrPanic           → 500 Internal Server Error (contained programming error)
//	anything else      → 500 Internal Server Error
//
// Both ErrBudgetExceeded and ErrDiverged land on 422: the request was
// well-formed and the analysis ran, but it cannot produce the asked-for
// result — more resources (a larger budget) or a different input (a smaller
// delay function) is needed, not a retry of the same request.
//
// ErrStorage lands on 507: the server's durable layer (job manifest or
// checkpoint journal) refused a write — ENOSPC, a torn write, a failing
// fsync. Unlike 429 nothing useful comes from an immediate retry of the same
// request; unlike 500 the analysis code is healthy — the operator must fix
// the disk. The machine-readable body code is "storage" in every case.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrInvalidInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBudgetExceeded), errors.Is(err, ErrDiverged):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrStorage):
		return http.StatusInsufficientStorage
	default:
		return http.StatusInternalServerError
	}
}

package guard

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestHTTPStatusMatrix pins the full error→HTTP-status contract, including
// wrapped forms (everything real code produces is wrapped via %w or the
// builder helpers) and the taxonomy helpers' output.
func TestHTTPStatusMatrix(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"invalid", ErrInvalidInput, http.StatusBadRequest},
		{"invalid-wrapped", Invalidf("bad Q %g", -1.0), http.StatusBadRequest},
		{"overload", ErrOverload, http.StatusTooManyRequests},
		{"overload-wrapped", Overloadf("queue full"), http.StatusTooManyRequests},
		{"budget", ErrBudgetExceeded, http.StatusUnprocessableEntity},
		{"budget-wrapped", Budgetf("out of steps"), http.StatusUnprocessableEntity},
		{"diverged", ErrDiverged, http.StatusUnprocessableEntity},
		{"diverged-wrapped", Divergedf("max f >= Q"), http.StatusUnprocessableEntity},
		{"canceled", ErrCanceled, http.StatusGatewayTimeout},
		{"canceled-wrapped", fmt.Errorf("sweep: %w", ErrCanceled), http.StatusGatewayTimeout},
		{"panic", ErrPanic, http.StatusInternalServerError},
		{"panic-wrapped", fmt.Errorf("rung: %w: boom", ErrPanic), http.StatusInternalServerError},
		{"plain", errors.New("disk on fire"), http.StatusInternalServerError},
		{"double-wrapped", fmt.Errorf("outer: %w", Overloadf("inner")), http.StatusTooManyRequests},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

package guard

import (
	"errors"
	"fmt"
	"net/http"
	"syscall"
	"testing"
)

// TestHTTPStatusMatrix pins the full error→HTTP-status contract, including
// wrapped forms (everything real code produces is wrapped via %w or the
// builder helpers) and the taxonomy helpers' output.
func TestHTTPStatusMatrix(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"invalid", ErrInvalidInput, http.StatusBadRequest},
		{"invalid-wrapped", Invalidf("bad Q %g", -1.0), http.StatusBadRequest},
		{"overload", ErrOverload, http.StatusTooManyRequests},
		{"overload-wrapped", Overloadf("queue full"), http.StatusTooManyRequests},
		{"budget", ErrBudgetExceeded, http.StatusUnprocessableEntity},
		{"budget-wrapped", Budgetf("out of steps"), http.StatusUnprocessableEntity},
		{"diverged", ErrDiverged, http.StatusUnprocessableEntity},
		{"diverged-wrapped", Divergedf("max f >= Q"), http.StatusUnprocessableEntity},
		{"canceled", ErrCanceled, http.StatusGatewayTimeout},
		{"canceled-wrapped", fmt.Errorf("sweep: %w", ErrCanceled), http.StatusGatewayTimeout},
		{"panic", ErrPanic, http.StatusInternalServerError},
		{"panic-wrapped", fmt.Errorf("rung: %w: boom", ErrPanic), http.StatusInternalServerError},
		{"plain", errors.New("disk on fire"), http.StatusInternalServerError},
		{"double-wrapped", fmt.Errorf("outer: %w", Overloadf("inner")), http.StatusTooManyRequests},
		// Durable-storage failures: 507 Insufficient Storage, wrapped exactly
		// the way the journal and job store produce them — an OS-level disk
		// error (ENOSPC from a full disk, EIO from a failed fsync) inside
		// Storagef. The disk cause must stay reachable through the wrap.
		{"storage", ErrStorage, http.StatusInsufficientStorage},
		{"storage-enospc", Storagef(syscall.ENOSPC, "journal: appending %q", "pt-3"), http.StatusInsufficientStorage},
		{"storage-fsync-eio", Storagef(syscall.EIO, "journal: syncing after %q", "pt-3"), http.StatusInsufficientStorage},
		{"storage-rewrapped", fmt.Errorf("server: opening job manifest: %w", Storagef(syscall.ENOSPC, "journal: reading x")), http.StatusInsufficientStorage},
		// A checkpoint journal whose meta fingerprint names a different
		// campaign is the client's mistake (wrong journal name), not a disk
		// failure: invalid input, 400 — on live submissions and on startup
		// recovery alike.
		{"foreign-journal-fingerprint", Invalidf("campaign: journal belongs to a different campaign (params changed?)"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

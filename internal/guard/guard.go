// Package guard is the analysis runtime every long-running procedure in this
// repository threads through: a cancellation/budget scope (Ctx) polled from
// the inner loops of Algorithm 1, the Equation 4 fixpoint, the exact oracle,
// the response-time analyses, the demand-bound tests and the simulator, plus
// a panic-isolating closure runner (Run) and a structured error taxonomy.
//
// All of the paper's procedures are iterative and can legitimately diverge on
// adversarial inputs (the bound diverges whenever max f >= Q), so every entry
// point needs three things the raw algorithms do not provide: a way for the
// caller to abort (context cancellation and wall-clock deadlines), a hard
// ceiling on work (step budgets), and containment of programming errors
// (panic recovery), with errors a caller can classify:
//
//   - ErrCanceled        — the caller aborted (context cancel or deadline);
//   - ErrBudgetExceeded  — the step budget ran out before a result;
//   - ErrDiverged        — the analysis itself has no finite answer;
//   - ErrInvalidInput    — the input fails validation (NaN, ±Inf, shape);
//   - ErrPanic           — a panic was recovered inside a guarded scope;
//   - ErrOverload        — admission control refused the work up front;
//   - ErrStorage         — the durable layer (journal, job store) failed.
//
// A nil *Ctx is valid everywhere and means "no limits": Tick and Err return
// nil, so pre-existing call sites keep their exact behaviour at zero cost.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fnpr/internal/obs"
)

// The error taxonomy. Callers classify with errors.Is; all errors produced by
// this package (and by the analysis packages that build on it) wrap exactly
// one of these sentinels.
var (
	// ErrCanceled reports that the analysis was aborted by its caller,
	// either through context cancellation or a wall-clock deadline.
	ErrCanceled = errors.New("analysis canceled")
	// ErrBudgetExceeded reports that the iteration/step budget ran out
	// before the analysis reached a result.
	ErrBudgetExceeded = errors.New("analysis budget exceeded")
	// ErrDiverged reports that the analysis has no finite answer on this
	// input (e.g. the Equation 4 fixpoint with max f >= Q).
	ErrDiverged = errors.New("analysis diverged")
	// ErrInvalidInput reports input that fails validation before any
	// iteration starts (NaN or infinite parameters, malformed shapes).
	ErrInvalidInput = errors.New("invalid input")
	// ErrPanic reports a panic recovered inside a guarded scope.
	ErrPanic = errors.New("analysis panicked")
	// ErrOverload reports that the work was refused up front by admission
	// control — a full queue, a saturated concurrency limit or a draining
	// server — rather than attempted and failed. The request was not
	// started, so retrying later is always sound.
	ErrOverload = errors.New("analysis overloaded")
	// ErrStorage reports that the durable-storage layer underneath an
	// analysis failed — a journal or job-manifest write refused (ENOSPC),
	// torn short, or an fsync reporting an I/O error. The computation may
	// be fine; its durability is not, so the work must not be reported as
	// safely checkpointed.
	ErrStorage = errors.New("storage failure")
)

// Invalidf builds an ErrInvalidInput-wrapped error.
func Invalidf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInvalidInput)
}

// Divergedf builds an ErrDiverged-wrapped error.
func Divergedf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrDiverged)
}

// Budgetf builds an ErrBudgetExceeded-wrapped error.
func Budgetf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrBudgetExceeded)
}

// Overloadf builds an ErrOverload-wrapped error.
func Overloadf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrOverload)
}

// Storagef builds an ErrStorage-wrapped error around an underlying disk
// failure, keeping the cause in the chain (errors.Is still sees ENOSPC etc).
func Storagef(err error, format string, args ...any) error {
	return fmt.Errorf("%s: %w: %w", fmt.Sprintf(format, args...), ErrStorage, err)
}

// pollEvery is how many steps pass between context/deadline polls. Budget
// accounting is exact on every step; only the (comparatively expensive)
// context and clock checks are amortised.
const pollEvery = 256

// Ctx is one guarded analysis scope: a context, an optional wall-clock
// deadline, an optional step budget and an optional progress checkpoint
// callback. It is safe for concurrent use — parallel sweep workers share one
// Ctx so that budget and cancellation are global to the analysis, not
// per-goroutine.
//
// The zero value of *Ctx (nil) is a valid scope with no limits.
type Ctx struct {
	ctx        context.Context
	deadline   time.Time
	budget     int64
	steps      atomic.Int64
	checkpoint func(steps int64)
	obs        *obs.Scope
}

// New returns a guarded scope observing ctx. A nil ctx means no cancellation
// source; limits are attached with WithBudget / WithDeadline / WithTimeout.
func New(ctx context.Context) *Ctx {
	return &Ctx{ctx: ctx}
}

// WithBudget sets the total step budget; n <= 0 means unlimited. It returns
// g for chaining and must be called before the scope is shared.
func (g *Ctx) WithBudget(n int64) *Ctx {
	g.budget = n
	return g
}

// WithDeadline sets a wall-clock deadline; the zero time means none.
func (g *Ctx) WithDeadline(t time.Time) *Ctx {
	g.deadline = t
	return g
}

// WithTimeout sets the deadline d from now; d <= 0 means none.
func (g *Ctx) WithTimeout(d time.Duration) *Ctx {
	if d > 0 {
		g.deadline = time.Now().Add(d)
	}
	return g
}

// WithCheckpoint installs a progress callback invoked roughly every pollEvery
// steps with the cumulative step count. The callback must be safe for
// concurrent use when the scope is shared between goroutines.
func (g *Ctx) WithCheckpoint(fn func(steps int64)) *Ctx {
	g.checkpoint = fn
	return g
}

// WithObs attaches an observability scope: every analysis running under this
// guard reports its metrics, spans and progress events there. Like the other
// With* setters it must be called before the scope is shared.
func (g *Ctx) WithObs(s *obs.Scope) *Ctx {
	g.obs = s
	return g
}

// Obs returns the attached observability scope; nil (collect nothing) on a
// nil Ctx or when none was attached. The nil scope is valid everywhere, so
// callers use the result unconditionally.
func (g *Ctx) Obs() *obs.Scope {
	if g == nil {
		return nil
	}
	return g.obs
}

// Steps returns the number of steps charged so far.
func (g *Ctx) Steps() int64 {
	if g == nil {
		return 0
	}
	return g.steps.Load()
}

// Remaining returns the steps left in the budget, or -1 when unlimited.
func (g *Ctx) Remaining() int64 {
	if g == nil || g.budget <= 0 {
		return -1
	}
	r := g.budget - g.steps.Load()
	if r < 0 {
		return 0
	}
	return r
}

// Tick charges one step and returns a non-nil error when the scope is
// exhausted or canceled. Analyses call it once per loop iteration; it is the
// single cheap hook that makes a loop cancellable, time-bounded and
// budget-bounded at once.
func (g *Ctx) Tick() error {
	return g.TickN(1)
}

// TickN charges n steps at once (for loops whose iterations do n units of
// inner work each).
func (g *Ctx) TickN(n int64) error {
	if g == nil {
		return nil
	}
	s := g.steps.Add(n)
	if g.budget > 0 && s > g.budget {
		return fmt.Errorf("%w after %d steps (budget %d)", ErrBudgetExceeded, s, g.budget)
	}
	// Amortised: context and clock are polled every pollEvery steps. With
	// TickN the poll can only be late by one call's worth of steps.
	if s%pollEvery < n {
		if g.checkpoint != nil {
			g.checkpoint(s)
		}
		return g.poll(s)
	}
	return nil
}

// Done returns the cancellation channel of the scope's context, or nil (block
// forever) when the scope has no cancellation source. Batch runtimes select on
// it to make their backoff sleeps abort promptly on SIGINT/SIGTERM instead of
// sleeping through the signal.
func (g *Ctx) Done() <-chan struct{} {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Done()
}

// Err checks cancellation and the deadline without charging a step — the
// entry-point check, so an already-canceled context fails before any work.
func (g *Ctx) Err() error {
	if g == nil {
		return nil
	}
	return g.poll(g.steps.Load())
}

func (g *Ctx) poll(steps int64) error {
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return fmt.Errorf("%w after %d steps: %v", ErrCanceled, steps, err)
		}
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return fmt.Errorf("%w after %d steps: wall-clock deadline passed", ErrCanceled, steps)
	}
	return nil
}

// Run executes fn inside a panic-isolating scope: a panic in fn (or anything
// it calls) is recovered and returned as an ErrPanic-wrapped error carrying
// the label, instead of unwinding the caller. It also performs the entry
// check, so fn is never entered under an already-dead scope.
//
// The type parameter carries fn's result through without boxing; on error
// the zero value is returned.
func Run[T any](g *Ctx, label string, fn func() (T, error)) (out T, err error) {
	if e := g.Err(); e != nil {
		return out, e
	}
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out = zero
			err = fmt.Errorf("%s: %w: %v", label, ErrPanic, r)
		}
	}()
	return fn()
}

// Abortive reports whether err means the whole computation should stop
// (caller abort or global budget exhaustion) rather than just this unit of
// work — the classification parallel sweeps use to decide between degrading
// one grid point and aborting the sweep.
func Abortive(err error) bool {
	return errors.Is(err, ErrCanceled)
}

package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCtxIsUnlimited(t *testing.T) {
	var g *Ctx
	if err := g.Err(); err != nil {
		t.Fatalf("nil Ctx Err = %v", err)
	}
	for i := 0; i < 10_000; i++ {
		if err := g.Tick(); err != nil {
			t.Fatalf("nil Ctx Tick = %v", err)
		}
	}
	if g.Steps() != 0 {
		t.Fatalf("nil Ctx Steps = %d", g.Steps())
	}
	if g.Remaining() != -1 {
		t.Fatalf("nil Ctx Remaining = %d", g.Remaining())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := New(context.Background()).WithBudget(100)
	var err error
	n := 0
	for ; n < 1000; n++ {
		if err = g.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v after %d ticks", err, n)
	}
	if n != 100 {
		t.Fatalf("budget of 100 tripped at tick %d", n)
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining after exhaustion = %d", g.Remaining())
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx)
	if err := g.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err on canceled ctx = %v", err)
	}
	// Tick polls every pollEvery steps, so within pollEvery+1 ticks the
	// cancellation must surface.
	var err error
	for i := 0; i <= pollEvery; i++ {
		if err = g.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Tick never observed cancellation: %v", err)
	}
}

func TestDeadline(t *testing.T) {
	g := New(nil).WithDeadline(time.Now().Add(-time.Second))
	if err := g.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("expired deadline: Err = %v", err)
	}
	g2 := New(nil).WithTimeout(time.Hour)
	if err := g2.Err(); err != nil {
		t.Fatalf("distant deadline: Err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	got, err := Run(nil, "poisoned", func() (int, error) {
		panic("boom")
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	if got != 0 {
		t.Fatalf("panicking Run returned %d, want zero value", got)
	}
	if want := "poisoned"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry label %q", err, want)
	}
}

func TestRunPassesThroughResults(t *testing.T) {
	got, err := Run(nil, "ok", func() (string, error) { return "v", nil })
	if err != nil || got != "v" {
		t.Fatalf("Run = %q, %v", got, err)
	}
	sentinel := errors.New("inner")
	_, err = Run(nil, "failing", func() (string, error) { return "", sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run did not pass through the inner error: %v", err)
	}
}

func TestRunChecksScopeBeforeEntering(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	entered := false
	_, err := Run(New(ctx), "never", func() (int, error) {
		entered = true
		return 1, nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if entered {
		t.Fatal("closure entered under a canceled scope")
	}
}

func TestSharedBudgetAcrossGoroutines(t *testing.T) {
	g := New(context.Background()).WithBudget(10_000)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := g.Tick(); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Each worker over-charges by at most one step past the budget.
	if s := g.Steps(); s > 10_000+8 {
		t.Fatalf("steps %d wildly past shared budget", s)
	}
}

func TestCheckpointCallback(t *testing.T) {
	var calls int64
	g := New(context.Background()).WithCheckpoint(func(steps int64) { calls = steps })
	for i := 0; i < 3*pollEvery; i++ {
		if err := g.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if calls == 0 {
		t.Fatal("checkpoint callback never invoked")
	}
}

func TestErrorHelpers(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{Invalidf("C is %g", 1.0), ErrInvalidInput},
		{Divergedf("fixpoint at Q=%g", 2.0), ErrDiverged},
		{Budgetf("%d nodes", 3), ErrBudgetExceeded},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%v does not wrap %v", c.err, c.want)
		}
	}
	if !Abortive(fmt.Errorf("wrapped: %w", ErrCanceled)) {
		t.Error("ErrCanceled should be abortive")
	}
	if Abortive(ErrBudgetExceeded) || Abortive(ErrPanic) {
		t.Error("budget/panic errors must not abort whole sweeps")
	}
}

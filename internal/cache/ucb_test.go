package cache

import (
	"math/rand"
	"testing"

	"fnpr/internal/cfg"
)

// lineChain builds a 3-block chain a -> b -> c with the given accesses.
func lineChain(a, b, c []Line) (*cfg.Graph, AccessMap) {
	g := cfg.New()
	ba := g.AddSimple("a", 1, 1)
	bb := g.AddSimple("b", 1, 1)
	bc := g.AddSimple("c", 1, 1)
	g.MustEdge(ba, bb)
	g.MustEdge(bb, bc)
	return g, AccessMap{ba: a, bb: b, bc: c}
}

func TestUCBChain(t *testing.T) {
	// a loads {0,1}; b computes on nothing; c reuses {1}.
	g, acc := lineChain([]Line{0, 1}, nil, []Line{1})
	res, err := AnalyzeUCB(g, acc, Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Inside b, line 1 is cached and reused later: UCB_b = {1}.
	if ucb := res.UCB[1]; ucb.Len() != 1 || !ucb.Has(1) {
		t.Fatalf("UCB[b] = %v, want {1}", ucb)
	}
	// Inside c, line 1 is both reachable and used in c itself.
	if ucb := res.UCB[2]; !ucb.Has(1) {
		t.Fatalf("UCB[c] = %v, want to contain 1", ucb)
	}
	// CRPD of b = 1 line × reload 10.
	if crpd := res.CRPD(1); crpd != 10 {
		t.Fatalf("CRPD[b] = %g, want 10", crpd)
	}
}

func TestUCBNoReuseNoUCB(t *testing.T) {
	// Lines loaded in a are never reused: only a's own trailing uses count.
	g, acc := lineChain([]Line{0, 1}, []Line{2}, []Line{3})
	res, err := AnalyzeUCB(g, acc, Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ucb := res.UCB[1]; ucb.Len() != 1 || !ucb.Has(2) {
		// At entry of b, line 2 is live (used in b) but not yet
		// reached; ReachOut(b) includes it, so the conservative
		// per-block bound counts it.
		t.Fatalf("UCB[b] = %v, want {2}", ucb)
	}
}

func TestUCBBranchBothArms(t *testing.T) {
	// Diamond: top loads {0,1}; left reuses 0; right reuses 1; bottom
	// reuses both. UCB at top's exit must include both.
	g := cfg.New()
	top := g.AddSimple("top", 1, 1)
	left := g.AddSimple("left", 1, 1)
	right := g.AddSimple("right", 1, 1)
	bottom := g.AddSimple("bottom", 1, 1)
	g.MustEdge(top, left)
	g.MustEdge(top, right)
	g.MustEdge(left, bottom)
	g.MustEdge(right, bottom)
	acc := AccessMap{top: {0, 1}, left: {0}, right: {1}, bottom: {0, 1}}
	res, err := AnalyzeUCB(g, acc, Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ucb := res.UCB[top]; !ucb.Has(0) || !ucb.Has(1) {
		t.Fatalf("UCB[top] = %v, want {0,1}", ucb)
	}
}

func TestUCBRequiresAcyclic(t *testing.T) {
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 2})
	if _, err := AnalyzeUCB(g, AccessMap{}, validCfg()); err == nil {
		t.Fatal("AnalyzeUCB accepted cyclic graph")
	}
}

func TestUCBRejectsBadConfig(t *testing.T) {
	g, acc := lineChain(nil, nil, nil)
	if _, err := AnalyzeUCB(g, acc, Config{Sets: 3, Assoc: 1, LineBytes: 16}); err == nil {
		t.Fatal("AnalyzeUCB accepted invalid cache config")
	}
	if _, err := AnalyzeUCB(nil, acc, validCfg()); err == nil {
		t.Fatal("AnalyzeUCB accepted nil graph")
	}
}

func TestCRPDCappedByAssociativity(t *testing.T) {
	// 4 lines mapping to the same set of a 2-way cache: at most 2 can be
	// resident, so CRPD counts at most 2 reloads.
	cc := Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 5}
	g, acc := lineChain([]Line{0, 4, 8, 12}, nil, []Line{0, 4, 8, 12})
	res, err := AnalyzeUCB(g, acc, cc)
	if err != nil {
		t.Fatal(err)
	}
	if crpd := res.CRPD(1); crpd != 10 { // 2 lines × 5
		t.Fatalf("CRPD[b] = %g, want 10", crpd)
	}
}

func TestCRPDAgainstUntouchedSets(t *testing.T) {
	cc := Config{Sets: 4, Assoc: 1, LineBytes: 16, ReloadCost: 1}
	// Victim's useful lines in sets 0 and 1.
	g, acc := lineChain([]Line{0, 1}, nil, []Line{0, 1})
	res, err := AnalyzeUCB(g, acc, cc)
	if err != nil {
		t.Fatal(err)
	}
	// Preempter touches only set 0 (line 4 -> set 0).
	ecb := NewLineSet(4)
	if got := res.CRPDAgainst(1, ecb); got != 1 {
		t.Fatalf("CRPDAgainst = %g, want 1", got)
	}
	// Preempter touches nothing: no damage.
	if got := res.CRPDAgainst(1, NewLineSet()); got != 0 {
		t.Fatalf("CRPDAgainst(empty) = %g, want 0", got)
	}
	// CRPDAgainst never exceeds plain CRPD.
	if res.CRPDAgainst(1, NewLineSet(0, 1, 2, 3)) > res.CRPD(1) {
		t.Fatal("CRPDAgainst exceeds CRPD")
	}
}

func TestMaxCRPD(t *testing.T) {
	g, acc := lineChain([]Line{0, 1, 2}, nil, []Line{0, 1, 2})
	res, err := AnalyzeUCB(g, acc, Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, v := res.MaxCRPD()
	if v != 3 {
		t.Fatalf("MaxCRPD = %g, want 3", v)
	}
	if id == cfg.NoBlock {
		t.Fatal("MaxCRPD returned no block")
	}
}

func TestECBHelpers(t *testing.T) {
	acc := AccessMap{0: {1, 2}, 1: {2, 3}}
	ecb := ECB(acc)
	if ecb.Len() != 3 {
		t.Fatalf("ECB = %v, want 3 lines", ecb)
	}
	u := ECBUnion(NewLineSet(1), NewLineSet(2), NewLineSet(1, 3))
	if u.Len() != 3 {
		t.Fatalf("ECBUnion = %v, want 3 lines", u)
	}
	cc := Config{Sets: 4, Assoc: 1, LineBytes: 16, ReloadCost: 1}
	touched := SetsTouched(cc, NewLineSet(0, 4, 1))
	if !touched[0] || !touched[1] || touched[2] {
		t.Fatalf("SetsTouched = %v", touched)
	}
}

func TestWorstCaseEvictions(t *testing.T) {
	cc := Config{Sets: 4, Assoc: 1, LineBytes: 16, ReloadCost: 2}
	ucb := NewLineSet(0, 1, 2)                             // sets 0,1,2
	ecb := NewLineSet(4, 5)                                // sets 0,1
	if got := WorstCaseEvictions(cc, ucb, ecb); got != 4 { // 2 lines × 2
		t.Fatalf("WorstCaseEvictions = %g, want 4", got)
	}
}

// Validation: the static per-block CRPD bound dominates the extra misses a
// concrete LRU simulation observes for a preemption inside that block, on
// randomized straight-line programs.
func TestStaticCRPDBoundsSimulatedDamage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cc := Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 1}
	for trial := 0; trial < 60; trial++ {
		// Random straight-line program of 4..8 blocks over 12 lines.
		nBlocks := 4 + r.Intn(5)
		g := cfg.New()
		acc := make(AccessMap)
		var prev cfg.BlockID = cfg.NoBlock
		var ids []cfg.BlockID
		for i := 0; i < nBlocks; i++ {
			id := g.AddSimple("", 1, 1)
			na := r.Intn(6)
			tr := make([]Line, na)
			for j := range tr {
				tr[j] = Line(r.Intn(12))
			}
			acc[id] = tr
			if prev != cfg.NoBlock {
				g.MustEdge(prev, id)
			}
			prev = id
			ids = append(ids, id)
		}
		res, err := AnalyzeUCB(g, acc, cc)
		if err != nil {
			t.Fatal(err)
		}

		// Preempt at each block boundary and compare observed extra
		// misses with the static bound for the block being entered.
		full := func(from int, sim *Sim) uint64 {
			var m uint64
			for _, id := range ids[from:] {
				m += sim.AccessAll(acc[id])
			}
			return m
		}
		for cut := 1; cut < nBlocks; cut++ {
			base, _ := NewSim(cc)
			for _, id := range ids[:cut] {
				base.AccessAll(acc[id])
			}
			pre := base.Snapshot()
			baseTail := full(cut, base)

			// Preempter trashes the whole cache.
			trash := make([]Line, 0, cc.Capacity()*2)
			for i := 0; i < cc.Capacity()*2; i++ {
				trash = append(trash, Line(1000+i))
			}
			pre.AccessAll(trash)
			preTail := full(cut, pre)

			extra := (int64(preTail) - int64(baseTail)) * int64(cc.ReloadCost)
			bound := res.CRPD(ids[cut])
			if float64(extra) > bound+1e-9 {
				t.Fatalf("trial %d cut %d: observed damage %d exceeds static bound %g",
					trial, cut, extra, bound)
			}
		}
	}
}

package cache

import (
	"math/rand"
	"testing"
)

func TestSimRejectsBadConfig(t *testing.T) {
	if _, err := NewSim(Config{Sets: 3, Assoc: 1, LineBytes: 16}); err == nil {
		t.Fatal("NewSim accepted invalid config")
	}
}

func TestSimColdMissThenHit(t *testing.T) {
	s, _ := NewSim(validCfg())
	if s.Access(5) {
		t.Fatal("cold access reported hit")
	}
	if !s.Access(5) {
		t.Fatal("warm access reported miss")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("counters = %d hits, %d misses", s.Hits(), s.Misses())
	}
}

func TestSimLRUEviction(t *testing.T) {
	// 8 sets, 2-way: lines 0, 8, 16 all map to set 0.
	s, _ := NewSim(validCfg())
	s.Access(0)
	s.Access(8)
	s.Access(16) // evicts 0 (LRU)
	if s.Contains(0) {
		t.Fatal("LRU line not evicted")
	}
	if !s.Contains(8) || !s.Contains(16) {
		t.Fatal("wrong line evicted")
	}
}

func TestSimLRUOrderUpdatedOnHit(t *testing.T) {
	s, _ := NewSim(validCfg())
	s.Access(0)
	s.Access(8)
	s.Access(0)  // 0 becomes MRU
	s.Access(16) // must evict 8, not 0
	if !s.Contains(0) || s.Contains(8) {
		t.Fatal("hit did not refresh LRU order")
	}
}

func TestSimDirectMapped(t *testing.T) {
	s, _ := NewSim(Config{Sets: 4, Assoc: 1, LineBytes: 16, ReloadCost: 1})
	s.Access(0)
	s.Access(4) // same set, evicts 0
	if s.Contains(0) {
		t.Fatal("direct-mapped conflict not evicted")
	}
}

func TestSimAccessAllAndFlush(t *testing.T) {
	s, _ := NewSim(validCfg())
	n := s.AccessAll([]Line{1, 2, 3, 1, 2, 3})
	if n != 3 {
		t.Fatalf("AccessAll misses = %d, want 3", n)
	}
	if got := s.Resident().Len(); got != 3 {
		t.Fatalf("resident = %d lines, want 3", got)
	}
	s.Flush()
	if s.Resident().Len() != 0 {
		t.Fatal("Flush left residents")
	}
	if s.Misses() != 3 {
		t.Fatal("Flush cleared counters")
	}
}

func TestSimSnapshotIndependence(t *testing.T) {
	s, _ := NewSim(validCfg())
	s.Access(1)
	c := s.Snapshot()
	c.Access(2)
	if s.Contains(2) {
		t.Fatal("Snapshot shares state")
	}
	if !c.Contains(1) {
		t.Fatal("Snapshot lost state")
	}
}

// Property: residency never exceeds capacity, and replaying the same trace
// twice in a fresh cache produces at most as many misses the second time
// within one cache lifetime (inclusion: warm ≤ cold for LRU).
func TestSimCapacityAndWarmup(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		cfg := Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 1}
		s, _ := NewSim(cfg)
		trace := make([]Line, 200)
		for i := range trace {
			trace[i] = Line(r.Intn(24))
		}
		cold := s.AccessAll(trace)
		if s.Resident().Len() > cfg.Capacity() {
			t.Fatalf("trial %d: residency exceeds capacity", trial)
		}
		warm := s.AccessAll(trace)
		if warm > cold {
			t.Fatalf("trial %d: warm misses %d > cold misses %d", trial, warm, cold)
		}
	}
}

// Property: for an LRU cache, extra misses after a preemption that touches k
// distinct extra lines are bounded by the victim's resident useful lines.
func TestSimPreemptionDamageBounded(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cfg := Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 1}
	for trial := 0; trial < 50; trial++ {
		victimTrace := make([]Line, 100)
		for i := range victimTrace {
			victimTrace[i] = Line(r.Intn(16))
		}
		cut := r.Intn(len(victimTrace))

		// Baseline: no preemption.
		base, _ := NewSim(cfg)
		base.AccessAll(victimTrace[:cut])
		baseTail := base.AccessAll(victimTrace[cut:])

		// Preempted run: preempter trashes the cache at the cut.
		pre, _ := NewSim(cfg)
		pre.AccessAll(victimTrace[:cut])
		resident := pre.Resident().Len()
		preempter := make([]Line, 50)
		for i := range preempter {
			preempter[i] = Line(100 + r.Intn(16))
		}
		pre.AccessAll(preempter)
		preTail := pre.AccessAll(victimTrace[cut:])

		extra := int64(preTail) - int64(baseTail)
		if extra > int64(resident) {
			t.Fatalf("trial %d: extra misses %d exceed resident lines %d", trial, extra, resident)
		}
	}
}

package cache

import (
	"errors"
	"fmt"

	"fnpr/internal/cfg"
)

// This file implements abstract-interpretation cache analysis in the style
// of Ferdinand and Wilhelm: abstract set-associative LRU cache states with
// per-line age bounds, combined over a control-flow graph by a fixpoint-free
// topological pass (the graphs are loop-collapsed DAGs).
//
//   - Must analysis: upper bounds on ages; a line with bounded age < Assoc is
//     GUARANTEED to be cached — the basis for classifying memory accesses as
//     always-hit, which the cache-aware WCET estimation of package wcet uses
//     to derive per-block execution intervals.
//
//   - May analysis: lower bounds on ages; a line absent from the may state is
//     GUARANTEED NOT cached — usable to classify always-miss and to tighten
//     the UCB over-approximation (a line that cannot be cached at a point
//     cannot be a useful block there).
//
// Abstract states map each line to an age in [0, Assoc-1]; absence means
// "age >= Assoc" (not cached) in must, and "cannot be cached" in may.

// AbstractState is one abstract cache state: line -> age bound.
type AbstractState struct {
	cfgc Config
	// age[l] is the age bound of line l (0 = most recently used).
	age map[Line]int
}

// NewAbstractState returns the empty abstract state.
func NewAbstractState(c Config) *AbstractState {
	return &AbstractState{cfgc: c, age: make(map[Line]int)}
}

// Clone returns a deep copy.
func (s *AbstractState) Clone() *AbstractState {
	c := NewAbstractState(s.cfgc)
	for l, a := range s.age {
		c.age[l] = a
	}
	return c
}

// Age returns the age bound of a line and whether it is tracked.
func (s *AbstractState) Age(l Line) (int, bool) {
	a, ok := s.age[l]
	return a, ok
}

// Len returns the number of tracked lines.
func (s *AbstractState) Len() int { return len(s.age) }

// accessMust applies the LRU must-update: the accessed line gets age 0;
// lines in the same set with age <= the accessed line's old age (or all
// lines when it was absent) age by one, falling out at Assoc.
func (s *AbstractState) accessMust(l Line) {
	set := s.cfgc.SetOf(l)
	old, wasIn := s.age[l]
	if !wasIn {
		old = s.cfgc.Assoc // treated as beyond the last way
	}
	for m, a := range s.age {
		if m == l || s.cfgc.SetOf(m) != set {
			continue
		}
		if a < old {
			if a+1 >= s.cfgc.Assoc {
				delete(s.age, m)
			} else {
				s.age[m] = a + 1
			}
		}
	}
	s.age[l] = 0
}

// accessMay applies the LRU may-update. May ages are LOWER bounds: a line
// concretely cached with age k appears in the may state with bound <= k, and
// keeping a bound smaller than necessary is conservative (the line merely
// stays "possibly cached" longer). The accessed line gets age 0. Another
// line m with bound a provably ages only when a < old (the accessed line's
// concrete age is >= old > a, so m was strictly younger and is pushed down);
// when a >= old, a concrete state may exist in which m was older than the
// accessed line and did not age, so its lower bound stays.
func (s *AbstractState) accessMay(l Line) {
	set := s.cfgc.SetOf(l)
	old, wasIn := s.age[l]
	if !wasIn {
		old = s.cfgc.Assoc
	}
	for m, a := range s.age {
		if m == l || s.cfgc.SetOf(m) != set {
			continue
		}
		if a < old {
			if a+1 >= s.cfgc.Assoc {
				delete(s.age, m)
			} else {
				s.age[m] = a + 1
			}
		}
	}
	s.age[l] = 0
}

// joinMust intersects two must states: a line survives only if cached on
// both paths, with the maximum (worst) age.
func joinMust(a, b *AbstractState) *AbstractState {
	out := NewAbstractState(a.cfgc)
	for l, aa := range a.age {
		if ba, ok := b.age[l]; ok {
			if ba > aa {
				out.age[l] = ba
			} else {
				out.age[l] = aa
			}
		}
	}
	return out
}

// joinMay unions two may states: a line survives if cached on either path,
// with the minimum (best) age.
func joinMay(a, b *AbstractState) *AbstractState {
	out := NewAbstractState(a.cfgc)
	for l, aa := range a.age {
		out.age[l] = aa
	}
	for l, ba := range b.age {
		if aa, ok := out.age[l]; !ok || ba < aa {
			out.age[l] = ba
		}
	}
	return out
}

// Classification of one access.
type Classification int

const (
	// AlwaysHit: the line is guaranteed cached (must analysis).
	AlwaysHit Classification = iota
	// AlwaysMiss: the line is guaranteed absent (may analysis).
	AlwaysMiss
	// NotClassified: neither analysis decides.
	NotClassified
)

// String implements fmt.Stringer.
func (c Classification) String() string {
	switch c {
	case AlwaysHit:
		return "always-hit"
	case AlwaysMiss:
		return "always-miss"
	case NotClassified:
		return "not-classified"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// AbstractResult is the outcome of the must/may analysis of one task.
type AbstractResult struct {
	cfgc Config
	// MustIn and MayIn are the abstract states at each block's entry.
	MustIn map[cfg.BlockID]*AbstractState
	MayIn  map[cfg.BlockID]*AbstractState
	// Class classifies every access of every block (parallel to the
	// AccessMap traces).
	Class map[cfg.BlockID][]Classification
}

// AnalyzeAbstract runs the must and may analyses over an acyclic
// (loop-collapsed) graph with cold caches at entry, classifying every
// access. Within a block, accesses are interpreted in program order.
func AnalyzeAbstract(g *cfg.Graph, acc AccessMap, cc Config) (*AbstractResult, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errors.New("cache: nil graph")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("cache: abstract analysis requires an acyclic graph: %w", err)
	}
	res := &AbstractResult{
		cfgc:   cc,
		MustIn: make(map[cfg.BlockID]*AbstractState, g.Len()),
		MayIn:  make(map[cfg.BlockID]*AbstractState, g.Len()),
		Class:  make(map[cfg.BlockID][]Classification, g.Len()),
	}
	mustOut := make(map[cfg.BlockID]*AbstractState, g.Len())
	mayOut := make(map[cfg.BlockID]*AbstractState, g.Len())
	for _, b := range order {
		var must, may *AbstractState
		for i, p := range g.Preds(b) {
			if i == 0 {
				must = mustOut[p].Clone()
				may = mayOut[p].Clone()
				continue
			}
			must = joinMust(must, mustOut[p])
			may = joinMay(may, mayOut[p])
		}
		if must == nil {
			must = NewAbstractState(cc) // entry: cold cache
			may = NewAbstractState(cc)
		}
		res.MustIn[b] = must.Clone()
		res.MayIn[b] = may.Clone()
		var cls []Classification
		for _, l := range acc[b] {
			if _, in := must.Age(l); in {
				cls = append(cls, AlwaysHit)
			} else if _, in := may.Age(l); !in {
				cls = append(cls, AlwaysMiss)
			} else {
				cls = append(cls, NotClassified)
			}
			must.accessMust(l)
			may.accessMay(l)
		}
		res.Class[b] = cls
		mustOut[b] = must
		mayOut[b] = may
	}
	return res, nil
}

// BlockCost returns the memory-access time bounds [lo, hi] of one block
// given per-access hit and miss costs: always-hit accesses cost hitCost on
// both bounds, always-miss cost missCost on both, unclassified cost hitCost
// at best and missCost at worst.
func (r *AbstractResult) BlockCost(b cfg.BlockID, hitCost, missCost float64) (lo, hi float64) {
	for _, c := range r.Class[b] {
		switch c {
		case AlwaysHit:
			lo += hitCost
			hi += hitCost
		case AlwaysMiss:
			lo += missCost
			hi += missCost
		default:
			lo += hitCost
			hi += missCost
		}
	}
	return lo, hi
}

// GuaranteedCached returns the lines guaranteed resident at the entry of b.
func (r *AbstractResult) GuaranteedCached(b cfg.BlockID) LineSet {
	out := make(LineSet)
	for l := range r.MustIn[b].age {
		out.Add(l)
	}
	return out
}

// PossiblyCached returns the lines that may be resident at the entry of b
// according to the age-tracking may analysis — a subset of the kill-free
// ReachOut over-approximation used by AnalyzeUCB, hence usable to tighten
// the UCB set: UCB'_b = UCB_b ∩ PossiblyCached(b) ∪ (lines loaded inside b).
func (r *AbstractResult) PossiblyCached(b cfg.BlockID) LineSet {
	out := make(LineSet)
	for l := range r.MayIn[b].age {
		out.Add(l)
	}
	return out
}

package cache

// ECB computes the evicting cache blocks of a (preempting) task: the union
// of all memory lines any of its basic blocks may access. When that task
// runs during a preemption, these are the only lines it can bring into the
// cache, hence the only sets in which it can evict the preempted task's
// useful blocks.
func ECB(acc AccessMap) LineSet {
	return acc.Lines()
}

// ECBUnion merges the evicting cache blocks of several preempting tasks, the
// quantity needed when any of a set of higher-priority tasks may preempt.
func ECBUnion(tasks ...LineSet) LineSet {
	out := make(LineSet)
	for _, t := range tasks {
		out.Union(t)
	}
	return out
}

// SetsTouched returns the cache sets the given lines map to.
func SetsTouched(c Config, lines LineSet) map[int]bool {
	out := make(map[int]bool, len(lines))
	for l := range lines {
		out[c.SetOf(l)] = true
	}
	return out
}

// WorstCaseEvictions bounds the number of line reloads a preemption by a
// workload with the given ECBs can inflict on a victim with the given UCBs,
// independent of program point:
//
//	Σ_s∈touched min(|UCB_s|, Assoc)
//
// multiplied by the reload cost. This is the "maximum damage a preempting
// task may cause" in the sense of Petters and Färber (reference [1] of the
// paper), evaluated against the victim's whole UCB set.
func WorstCaseEvictions(c Config, ucb, ecb LineSet) float64 {
	touched := SetsTouched(c, ecb)
	perSet := make(map[int]int)
	for l := range ucb {
		perSet[c.SetOf(l)]++
	}
	var lines int
	for s, n := range perSet {
		if !touched[s] {
			continue
		}
		if n > c.Assoc {
			n = c.Assoc
		}
		lines += n
	}
	return float64(lines) * c.ReloadCost
}

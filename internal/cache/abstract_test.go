package cache

import (
	"math/rand"
	"testing"

	"fnpr/internal/cfg"
)

func abstractCfg() Config {
	return Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 1}
}

func TestAbstractStateMustUpdate(t *testing.T) {
	s := NewAbstractState(abstractCfg())
	s.accessMust(0) // set 0
	if a, ok := s.Age(0); !ok || a != 0 {
		t.Fatalf("age(0) = %d,%v; want 0,true", a, ok)
	}
	s.accessMust(4) // set 0: line 0 ages to 1
	if a, _ := s.Age(0); a != 1 {
		t.Fatalf("age(0) = %d, want 1", a)
	}
	s.accessMust(8) // set 0: line 0 falls out (age 2 = assoc)
	if _, ok := s.Age(0); ok {
		t.Fatal("line 0 should have aged out of the must state")
	}
	// Re-access keeps the youngest age and does not age older lines in
	// other sets.
	s.accessMust(1) // set 1, unaffected by set 0 traffic
	if a, _ := s.Age(1); a != 0 {
		t.Fatalf("age(1) = %d, want 0", a)
	}
	if a, _ := s.Age(4); a != 1 {
		t.Fatalf("cross-set aging leaked: age(4) = %d, want 1", a)
	}
}

func TestAbstractMustRefreshOnHit(t *testing.T) {
	s := NewAbstractState(abstractCfg())
	s.accessMust(0)
	s.accessMust(4) // 0 ages to 1
	s.accessMust(0) // refresh: 0 back to age 0, 4 stays (age >= old age of 0)
	if a, _ := s.Age(0); a != 0 {
		t.Fatalf("age(0) = %d, want 0 after refresh", a)
	}
	if a, _ := s.Age(4); a != 1 {
		t.Fatalf("age(4) = %d, want 1 (older than refreshed line's old age)", a)
	}
}

func TestJoinMustIntersectsWithWorstAge(t *testing.T) {
	a := NewAbstractState(abstractCfg())
	b := NewAbstractState(abstractCfg())
	a.accessMust(0)
	a.accessMust(4) // a: 0@1, 4@0
	b.accessMust(0) // b: 0@0
	j := joinMust(a, b)
	if age, ok := j.Age(0); !ok || age != 1 {
		t.Fatalf("join age(0) = %d,%v; want 1,true (max of 1 and 0)", age, ok)
	}
	if _, ok := j.Age(4); ok {
		t.Fatal("line 4 only cached on one path; must-join must drop it")
	}
}

func TestJoinMayUnionsWithBestAge(t *testing.T) {
	a := NewAbstractState(abstractCfg())
	b := NewAbstractState(abstractCfg())
	a.accessMay(0)
	a.accessMay(4) // a: 0@1, 4@0
	b.accessMay(0) // b: 0@0
	j := joinMay(a, b)
	if age, ok := j.Age(0); !ok || age != 0 {
		t.Fatalf("join age(0) = %d,%v; want 0,true (min of 1 and 0)", age, ok)
	}
	if age, ok := j.Age(4); !ok || age != 0 {
		t.Fatalf("join age(4) = %d,%v; want 0,true (union)", age, ok)
	}
}

func TestAnalyzeAbstractClassification(t *testing.T) {
	// chain: a accesses {0}, b accesses {0, 8} (0 hits: still age 0 at b
	// entry; 8 is a cold first access in a DAG -> may state has no 8 at
	// entry -> always-miss), c accesses {0} (hit: 0 aged by 8? 8 maps to
	// set 0 of a 4-set cache, so 0 ages to 1 < assoc -> still must-cached).
	g := cfg.New()
	ba := g.AddSimple("a", 1, 1)
	bb := g.AddSimple("b", 1, 1)
	bc := g.AddSimple("c", 1, 1)
	g.MustEdge(ba, bb)
	g.MustEdge(bb, bc)
	acc := AccessMap{ba: {0}, bb: {0, 8}, bc: {0}}
	res, err := AnalyzeAbstract(g, acc, abstractCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[ba][0] != AlwaysMiss {
		t.Fatalf("a[0] = %v, want always-miss (cold)", res.Class[ba][0])
	}
	if res.Class[bb][0] != AlwaysHit {
		t.Fatalf("b[0] = %v, want always-hit", res.Class[bb][0])
	}
	if res.Class[bb][1] != AlwaysMiss {
		t.Fatalf("b[8] = %v, want always-miss (cold)", res.Class[bb][1])
	}
	if res.Class[bc][0] != AlwaysHit {
		t.Fatalf("c[0] = %v, want always-hit", res.Class[bc][0])
	}
}

func TestAnalyzeAbstractBranchKillsMust(t *testing.T) {
	// Diamond: only the left arm loads line 0; at the join the must
	// state drops it (NotClassified at bottom), but the may state keeps
	// it (not always-miss either).
	g := cfg.New()
	top := g.AddSimple("top", 1, 1)
	l := g.AddSimple("l", 1, 1)
	rr := g.AddSimple("r", 1, 1)
	bot := g.AddSimple("bot", 1, 1)
	g.MustEdge(top, l)
	g.MustEdge(top, rr)
	g.MustEdge(l, bot)
	g.MustEdge(rr, bot)
	acc := AccessMap{l: {0}, bot: {0}}
	res, err := AnalyzeAbstract(g, acc, abstractCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[bot][0] != NotClassified {
		t.Fatalf("bot[0] = %v, want not-classified", res.Class[bot][0])
	}
}

func TestAnalyzeAbstractValidation(t *testing.T) {
	if _, err := AnalyzeAbstract(nil, nil, abstractCfg()); err == nil {
		t.Fatal("accepted nil graph")
	}
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 2})
	if _, err := AnalyzeAbstract(g, nil, abstractCfg()); err == nil {
		t.Fatal("accepted cyclic graph")
	}
	g2 := cfg.New()
	g2.AddSimple("a", 1, 1)
	if _, err := AnalyzeAbstract(g2, nil, Config{Sets: 3, Assoc: 1, LineBytes: 16}); err == nil {
		t.Fatal("accepted bad cache config")
	}
}

func TestBlockCost(t *testing.T) {
	g := cfg.New()
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	g.MustEdge(a, b)
	acc := AccessMap{a: {0}, b: {0, 1}}
	res, err := AnalyzeAbstract(g, acc, abstractCfg())
	if err != nil {
		t.Fatal(err)
	}
	// a: one always-miss -> [10,10]. b: 0 always-hit (1), 1 always-miss
	// (10) -> [11, 11].
	lo, hi := res.BlockCost(a, 1, 10)
	if lo != 10 || hi != 10 {
		t.Fatalf("a cost = [%g,%g], want [10,10]", lo, hi)
	}
	lo, hi = res.BlockCost(b, 1, 10)
	if lo != 11 || hi != 11 {
		t.Fatalf("b cost = [%g,%g], want [11,11]", lo, hi)
	}
}

func TestGuaranteedAndPossiblyCached(t *testing.T) {
	g := cfg.New()
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	g.MustEdge(a, b)
	acc := AccessMap{a: {0, 1}}
	res, err := AnalyzeAbstract(g, acc, abstractCfg())
	if err != nil {
		t.Fatal(err)
	}
	gc := res.GuaranteedCached(b)
	if !gc.Has(0) || !gc.Has(1) {
		t.Fatalf("guaranteed = %v, want {0,1}", gc)
	}
	pc := res.PossiblyCached(b)
	if !pc.Has(0) || !pc.Has(1) || pc.Len() != 2 {
		t.Fatalf("possibly = %v, want {0,1}", pc)
	}
	if res.GuaranteedCached(a).Len() != 0 {
		t.Fatal("entry must state should be empty (cold cache)")
	}
}

// Soundness: on random straight-line programs, every always-hit access
// concretely hits and every always-miss concretely misses, replaying the
// trace on the concrete LRU simulator.
func TestAbstractSoundAgainstConcrete(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	cc := abstractCfg()
	for trial := 0; trial < 80; trial++ {
		nBlocks := 2 + r.Intn(6)
		g := cfg.New()
		acc := make(AccessMap)
		var prev cfg.BlockID = cfg.NoBlock
		var ids []cfg.BlockID
		for i := 0; i < nBlocks; i++ {
			id := g.AddSimple("", 1, 1)
			na := r.Intn(5)
			tr := make([]Line, na)
			for j := range tr {
				tr[j] = Line(r.Intn(10))
			}
			acc[id] = tr
			if prev != cfg.NoBlock {
				g.MustEdge(prev, id)
			}
			prev = id
			ids = append(ids, id)
		}
		res, err := AnalyzeAbstract(g, acc, cc)
		if err != nil {
			t.Fatal(err)
		}
		sim, _ := NewSim(cc)
		for _, id := range ids {
			for k, l := range acc[id] {
				hit := sim.Access(l)
				switch res.Class[id][k] {
				case AlwaysHit:
					if !hit {
						t.Fatalf("trial %d: always-hit access missed (block %d, acc %d, line %d)", trial, id, k, l)
					}
				case AlwaysMiss:
					if hit {
						t.Fatalf("trial %d: always-miss access hit (block %d, acc %d, line %d)", trial, id, k, l)
					}
				}
			}
		}
	}
}

// Soundness on branchy programs: the must state at a block entry is cached
// on EVERY concrete path; verify by replaying all paths of small DAGs.
func TestMustSoundOnAllPaths(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cc := abstractCfg()
	for trial := 0; trial < 40; trial++ {
		// Diamond with random accesses.
		g := cfg.New()
		top := g.AddSimple("top", 1, 1)
		l := g.AddSimple("l", 1, 1)
		rb := g.AddSimple("r", 1, 1)
		bot := g.AddSimple("bot", 1, 1)
		g.MustEdge(top, l)
		g.MustEdge(top, rb)
		g.MustEdge(l, bot)
		g.MustEdge(rb, bot)
		acc := make(AccessMap)
		for _, id := range []cfg.BlockID{top, l, rb} {
			na := r.Intn(5)
			tr := make([]Line, na)
			for j := range tr {
				tr[j] = Line(r.Intn(8))
			}
			acc[id] = tr
		}
		res, err := AnalyzeAbstract(g, acc, cc)
		if err != nil {
			t.Fatal(err)
		}
		must := res.GuaranteedCached(bot)
		for _, path := range [][]cfg.BlockID{{top, l}, {top, rb}} {
			sim, _ := NewSim(cc)
			for _, id := range path {
				sim.AccessAll(acc[id])
			}
			for line := range must {
				if !sim.Contains(line) {
					t.Fatalf("trial %d: must line %d absent on path %v", trial, line, path)
				}
			}
		}
	}
}

func TestClassificationString(t *testing.T) {
	if AlwaysHit.String() != "always-hit" || AlwaysMiss.String() != "always-miss" ||
		NotClassified.String() != "not-classified" || Classification(9).String() == "" {
		t.Fatal("classification strings wrong")
	}
}

// Package cache models set-associative LRU caches and implements the static
// cache-related preemption delay (CRPD) analyses the paper builds on: the
// useful-cache-block (UCB) analysis in the style of Lee et al. (Section II,
// reference [3] of the paper) and the evicting-cache-block (ECB) analysis
// used to bound the damage a preempting task can cause.
//
// The package provides both:
//
//   - a static analysis over control-flow graphs (ucb.go, ecb.go), producing
//     a sound upper bound CRPD_b on the delay of a preemption inside each
//     basic block b — the quantity from which package delay assembles the
//     preemption delay function fi(t) = max_{b in BB(t)} CRPD_b; and
//
//   - a concrete trace-driven LRU cache simulator (sim.go), used by tests to
//     cross-validate the static bounds against observed reload counts.
package cache

import (
	"fmt"
	"math/bits"
)

// Line identifies a memory block in units of cache lines (a byte address
// shifted right by log2(line size)).
type Line uint64

// Config describes a set-associative cache with LRU replacement.
type Config struct {
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Assoc is the number of ways per set (1 = direct-mapped).
	Assoc int
	// LineBytes is the line size in bytes; must be a power of two.
	LineBytes int
	// ReloadCost is the time to refill one line from the next memory
	// level (the block reload time, BRT).
	ReloadCost float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0 || bits.OnesCount(uint(c.Sets)) != 1:
		return fmt.Errorf("cache: Sets must be a positive power of two, got %d", c.Sets)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: Assoc must be positive, got %d", c.Assoc)
	case c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache: LineBytes must be a positive power of two, got %d", c.LineBytes)
	case c.ReloadCost < 0:
		return fmt.Errorf("cache: ReloadCost must be non-negative, got %g", c.ReloadCost)
	}
	return nil
}

// LineOf maps a byte address to its cache line.
func (c Config) LineOf(addr uint64) Line {
	return Line(addr / uint64(c.LineBytes))
}

// SetOf maps a line to its cache set index.
func (c Config) SetOf(l Line) int {
	return int(uint64(l) % uint64(c.Sets))
}

// Capacity returns the total number of lines the cache can hold.
func (c Config) Capacity() int { return c.Sets * c.Assoc }

// LineSet is a set of cache lines, the common currency of the analyses.
type LineSet map[Line]struct{}

// NewLineSet builds a set from the given lines.
func NewLineSet(lines ...Line) LineSet {
	s := make(LineSet, len(lines))
	for _, l := range lines {
		s[l] = struct{}{}
	}
	return s
}

// Add inserts a line.
func (s LineSet) Add(l Line) { s[l] = struct{}{} }

// Has reports membership.
func (s LineSet) Has(l Line) bool {
	_, ok := s[l]
	return ok
}

// Union adds all lines of t into s and reports whether s changed.
func (s LineSet) Union(t LineSet) bool {
	changed := false
	for l := range t {
		if !s.Has(l) {
			s.Add(l)
			changed = true
		}
	}
	return changed
}

// Intersect returns a new set with the lines present in both s and t.
func (s LineSet) Intersect(t LineSet) LineSet {
	out := make(LineSet)
	for l := range s {
		if t.Has(l) {
			out.Add(l)
		}
	}
	return out
}

// Clone returns a copy of the set.
func (s LineSet) Clone() LineSet {
	out := make(LineSet, len(s))
	for l := range s {
		out.Add(l)
	}
	return out
}

// Len returns the number of lines.
func (s LineSet) Len() int { return len(s) }

// PerSet partitions the lines by cache set under the given configuration.
func (s LineSet) PerSet(c Config) map[int]int {
	out := make(map[int]int)
	for l := range s {
		out[c.SetOf(l)]++
	}
	return out
}

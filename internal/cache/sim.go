package cache

// Sim is a concrete set-associative LRU cache simulator. It is used by the
// test suite to cross-validate the static CRPD bounds: replay a task's access
// trace, inject a preempting task's accesses at a chosen point, and count the
// additional misses the task suffers afterwards.
type Sim struct {
	cfg Config
	// sets[s] holds the resident lines of set s in LRU order: index 0 is
	// the most recently used way.
	sets [][]Line

	hits, misses uint64
}

// NewSim creates an empty cache.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, sets: make([][]Line, cfg.Sets)}
	return s, nil
}

// Config returns the simulator's cache configuration.
func (s *Sim) Config() Config { return s.cfg }

// Access touches one line, updating LRU state, and reports whether it hit.
func (s *Sim) Access(l Line) bool {
	idx := s.cfg.SetOf(l)
	ways := s.sets[idx]
	for i, w := range ways {
		if w == l {
			// Hit: move to front.
			copy(ways[1:i+1], ways[:i])
			ways[0] = l
			s.hits++
			return true
		}
	}
	// Miss: insert at front, evicting the LRU way when full.
	if len(ways) < s.cfg.Assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = l
	s.sets[idx] = ways
	s.misses++
	return false
}

// AccessAll replays a trace and returns the number of misses it produced.
func (s *Sim) AccessAll(trace []Line) uint64 {
	before := s.misses
	for _, l := range trace {
		s.Access(l)
	}
	return s.misses - before
}

// Contains reports whether a line is currently resident, without touching
// LRU state.
func (s *Sim) Contains(l Line) bool {
	for _, w := range s.sets[s.cfg.SetOf(l)] {
		if w == l {
			return true
		}
	}
	return false
}

// Resident returns the set of all currently cached lines.
func (s *Sim) Resident() LineSet {
	out := make(LineSet)
	for _, ways := range s.sets {
		for _, w := range ways {
			out.Add(w)
		}
	}
	return out
}

// Hits and Misses return the accumulated counters.
func (s *Sim) Hits() uint64   { return s.hits }
func (s *Sim) Misses() uint64 { return s.misses }

// Flush empties the cache but keeps the counters.
func (s *Sim) Flush() {
	for i := range s.sets {
		s.sets[i] = nil
	}
}

// Snapshot returns a deep copy of the simulator, useful for exploring
// preemption scenarios from a common warm state.
func (s *Sim) Snapshot() *Sim {
	c := &Sim{cfg: s.cfg, sets: make([][]Line, len(s.sets)), hits: s.hits, misses: s.misses}
	for i, ways := range s.sets {
		c.sets[i] = append([]Line(nil), ways...)
	}
	return c
}

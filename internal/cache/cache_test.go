package cache

import (
	"testing"
	"testing/quick"
)

func validCfg() Config {
	return Config{Sets: 8, Assoc: 2, LineBytes: 16, ReloadCost: 10}
}

func TestConfigValidate(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Sets: 0, Assoc: 1, LineBytes: 16},
		{Sets: 3, Assoc: 1, LineBytes: 16},
		{Sets: 8, Assoc: 0, LineBytes: 16},
		{Sets: 8, Assoc: 1, LineBytes: 0},
		{Sets: 8, Assoc: 1, LineBytes: 24},
		{Sets: 8, Assoc: 1, LineBytes: 16, ReloadCost: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestLineOfAndSetOf(t *testing.T) {
	c := validCfg() // 16-byte lines, 8 sets
	if l := c.LineOf(0); l != 0 {
		t.Fatalf("LineOf(0) = %d", l)
	}
	if l := c.LineOf(15); l != 0 {
		t.Fatalf("LineOf(15) = %d, want 0", l)
	}
	if l := c.LineOf(16); l != 1 {
		t.Fatalf("LineOf(16) = %d, want 1", l)
	}
	if s := c.SetOf(Line(9)); s != 1 {
		t.Fatalf("SetOf(9) = %d, want 1", s)
	}
	if c.Capacity() != 16 {
		t.Fatalf("Capacity = %d, want 16", c.Capacity())
	}
}

func TestLineSetOps(t *testing.T) {
	s := NewLineSet(1, 2, 3)
	if s.Len() != 3 || !s.Has(2) || s.Has(4) {
		t.Fatalf("basic set ops broken: %v", s)
	}
	u := NewLineSet(3, 4)
	if !s.Union(u) {
		t.Fatal("Union reported no change")
	}
	if s.Len() != 4 {
		t.Fatalf("union size = %d, want 4", s.Len())
	}
	if s.Union(NewLineSet(1)) {
		t.Fatal("Union reported change for subset")
	}
	i := s.Intersect(NewLineSet(2, 4, 99))
	if i.Len() != 2 || !i.Has(2) || !i.Has(4) {
		t.Fatalf("Intersect = %v", i)
	}
	c := s.Clone()
	c.Add(100)
	if s.Has(100) {
		t.Fatal("Clone shares storage")
	}
}

func TestPerSet(t *testing.T) {
	c := validCfg()              // 8 sets
	s := NewLineSet(0, 8, 16, 1) // lines 0,8,16 -> set 0; line 1 -> set 1
	per := s.PerSet(c)
	if per[0] != 3 || per[1] != 1 {
		t.Fatalf("PerSet = %v", per)
	}
}

// Property: Union is idempotent and monotone in size.
func TestLineSetUnionProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := make(LineSet), make(LineSet)
		for _, x := range a {
			sa.Add(Line(x))
		}
		for _, x := range b {
			sb.Add(Line(x))
		}
		na := sa.Len()
		sa.Union(sb)
		if sa.Len() < na || sa.Len() < sb.Len() {
			return false
		}
		n := sa.Len()
		sa.Union(sb) // idempotent
		return sa.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: |Intersect(a,b)| <= min(|a|,|b|) and members belong to both.
func TestLineSetIntersectProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := make(LineSet), make(LineSet)
		for _, x := range a {
			sa.Add(Line(x))
		}
		for _, x := range b {
			sb.Add(Line(x))
		}
		i := sa.Intersect(sb)
		if i.Len() > sa.Len() || i.Len() > sb.Len() {
			return false
		}
		for l := range i {
			if !sa.Has(l) || !sb.Has(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

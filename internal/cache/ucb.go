package cache

import (
	"errors"
	"fmt"

	"fnpr/internal/cfg"
)

// AccessMap attaches a memory-access trace (in program order, in units of
// cache lines) to every basic block of a control-flow graph. In a real flow
// these traces come from the compiler/WCET tool; the library's synthetic
// workloads generate them.
type AccessMap map[cfg.BlockID][]Line

// Lines returns the union of all lines accessed by the program.
func (m AccessMap) Lines() LineSet {
	out := make(LineSet)
	for _, trace := range m {
		for _, l := range trace {
			out.Add(l)
		}
	}
	return out
}

// UCBResult holds the useful-cache-block analysis of one task.
type UCBResult struct {
	cfg *cfg.Graph
	cc  Config

	// ReachOut[b] over-approximates the lines that may be cached when
	// execution leaves block b (forward may analysis, no kill — a line
	// once loaded may still be resident later on some path).
	ReachOut map[cfg.BlockID]LineSet

	// LiveIn[b] over-approximates the lines that may be accessed at or
	// after the entry of block b (backward may analysis).
	LiveIn map[cfg.BlockID]LineSet

	// UCB[b] = ReachOut[b] ∩ LiveIn[b]: lines that may be cached at some
	// point inside b AND may be reused afterwards — the useful cache
	// blocks whose eviction a preemption inside b may have to repay.
	UCB map[cfg.BlockID]LineSet
}

// AnalyzeUCB runs the useful-cache-block analysis of Lee et al. on an acyclic
// (loop-collapsed) control-flow graph. For every basic block b it computes
// a sound over-approximation UCB_b of the memory blocks whose eviction during
// a preemption inside b the task may have to repay:
//
//	UCB_b = ReachOut(b) ∩ LiveIn(b)
//
// ReachOut accumulates accessed lines forward over all paths (a may analysis
// with empty kill set: over-approximating residency is sound for an upper
// bound); LiveIn accumulates future uses backward. For any program point p
// inside b, Reach(p) ⊆ ReachOut(b) and Live(p) ⊆ LiveIn(b), so UCB_b bounds
// the useful blocks at every point of the block.
func AnalyzeUCB(g *cfg.Graph, acc AccessMap, cc Config) (*UCBResult, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errors.New("cache: nil graph")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("cache: UCB analysis requires an acyclic graph (collapse loops first): %w", err)
	}

	res := &UCBResult{
		cfg:      g,
		cc:       cc,
		ReachOut: make(map[cfg.BlockID]LineSet, g.Len()),
		LiveIn:   make(map[cfg.BlockID]LineSet, g.Len()),
		UCB:      make(map[cfg.BlockID]LineSet, g.Len()),
	}

	// Forward pass in topological order: ReachOut(b) = gen(b) ∪
	// union over predecessors p of ReachOut(p).
	for _, b := range order {
		s := make(LineSet)
		for _, p := range g.Preds(b) {
			s.Union(res.ReachOut[p])
		}
		for _, l := range acc[b] {
			s.Add(l)
		}
		res.ReachOut[b] = s
	}

	// Backward pass in reverse topological order: LiveIn(b) = gen(b) ∪
	// union over successors s of LiveIn(s).
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		s := make(LineSet)
		for _, sc := range g.Succs(b) {
			s.Union(res.LiveIn[sc])
		}
		for _, l := range acc[b] {
			s.Add(l)
		}
		res.LiveIn[b] = s
	}

	for _, b := range order {
		res.UCB[b] = res.ReachOut[b].Intersect(res.LiveIn[b])
	}
	return res, nil
}

// CRPD returns the per-block CRPD upper bound considering only the preempted
// task: at most min(|UCB_b ∩ set s|, Assoc) lines per cache set can be both
// useful and resident, and each costs one reload:
//
//	CRPD_b = ReloadCost × Σ_s min(|UCB_b,s|, Assoc)
//
// This is the classic UCB-only bound, sound for LRU caches regardless of the
// preempting task.
func (r *UCBResult) CRPD(b cfg.BlockID) float64 {
	return r.crpdOf(r.UCB[b])
}

func (r *UCBResult) crpdOf(ucb LineSet) float64 {
	var lines int
	for _, n := range ucb.PerSet(r.cc) {
		if n > r.cc.Assoc {
			n = r.cc.Assoc
		}
		lines += n
	}
	return float64(lines) * r.cc.ReloadCost
}

// CRPDAgainst refines the per-block bound with the preempting workload's
// evicting cache blocks (ECBs): only cache sets the preempter may touch can
// lose useful blocks. For direct-mapped caches this is the classic sound
// UCB∩ECB refinement (a useful line is lost only if an evicting line maps to
// the same set); for associative LRU caches the refinement "set untouched by
// the preempter ⇒ no loss in that set" remains sound, and within a touched
// set we keep the conservative min(|UCB_s|, Assoc) count (per Burguière et
// al., counting min(|UCB_s|, |ECB_s|) is unsound for LRU when the preempted
// task's own accesses age the set afterwards).
func (r *UCBResult) CRPDAgainst(b cfg.BlockID, ecb LineSet) float64 {
	touched := make(map[int]bool)
	for l := range ecb {
		touched[r.cc.SetOf(l)] = true
	}
	var lines int
	perSet := make(map[int]int)
	for l := range r.UCB[b] {
		perSet[r.cc.SetOf(l)]++
	}
	for s, n := range perSet {
		if !touched[s] {
			continue
		}
		if n > r.cc.Assoc {
			n = r.cc.Assoc
		}
		if r.cc.Assoc == 1 {
			// Direct-mapped: at most one useful line per set, and
			// it is lost only when an ECB maps there — n is
			// already min(n, 1).
			lines += n
			continue
		}
		lines += n
	}
	return float64(lines) * r.cc.ReloadCost
}

// MaxCRPD returns the largest per-block CRPD of the task and the block
// attaining it (ties broken by lowest block ID).
func (r *UCBResult) MaxCRPD() (cfg.BlockID, float64) {
	best, bestID := -1.0, cfg.NoBlock
	for id := 0; id < r.cfg.Len(); id++ {
		if c := r.CRPD(cfg.BlockID(id)); c > best {
			best, bestID = c, cfg.BlockID(id)
		}
	}
	return bestID, best
}

// RemapAccesses lifts a per-original-block access map onto a loop-collapsed
// graph: a collapsed loop node's trace is the concatenation (in block-ID
// order) of the traces of the blocks it covers. Concatenation preserves the
// set of lines touched, which is all the may-style UCB/ECB analyses consume.
func RemapAccesses(col *cfg.Collapsed, orig AccessMap) AccessMap {
	out := make(AccessMap, col.Graph.Len())
	for id := 0; id < col.Graph.Len(); id++ {
		var trace []Line
		for _, o := range col.Origins[cfg.BlockID(id)] {
			trace = append(trace, orig[o]...)
		}
		if len(trace) > 0 {
			out[cfg.BlockID(id)] = trace
		}
	}
	return out
}

package task

import (
	"errors"
	"math"
	"testing"

	"fnpr/internal/guard"
)

// FuzzValidateTask throws arbitrary field combinations — including NaN and
// ±Inf — at Task.Validate and checks the contract both ways: a rejection must
// wrap guard.ErrInvalidInput, and an accepted task must have finite, sane
// derived quantities (effective deadline, BCET, utilization, density), so
// nothing non-finite can leak past validation into the analyses.
func FuzzValidateTask(f *testing.F) {
	f.Add("t", 2.0, 10.0, 0.0, 1.0, 0.0, 0.0)
	f.Add("", 2.0, 10.0, 0.0, 1.0, 0.0, 0.0)
	f.Add("t", math.NaN(), 10.0, 0.0, 1.0, 0.0, 0.0)
	f.Add("t", 2.0, math.Inf(1), 0.0, 1.0, 0.0, 0.0)
	f.Add("t", 2.0, 10.0, 5.0, math.Inf(-1), 0.0, 0.0)
	f.Add("t", 2.0, 10.0, 1.0, 1.0, 0.0, 0.0) // C > D
	f.Add("t", 2.0, 10.0, 0.0, 1.0, math.NaN(), 3.0)
	f.Fuzz(func(t *testing.T, name string, c, period, d, q, jitter, bcet float64) {
		tk := Task{Name: name, C: c, T: period, D: d, Q: q, Jitter: jitter, BCET: bcet}
		err := tk.Validate()
		if err != nil {
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Fatalf("Validate rejected %v with %v, which does not wrap guard.ErrInvalidInput", tk, err)
			}
			return
		}
		// Accepted: every field and derived quantity must be finite.
		finite := func(label string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Validate accepted %v but %s = %v", tk, label, v)
			}
		}
		finite("C", tk.C)
		finite("T", tk.T)
		finite("D", tk.D)
		finite("Q", tk.Q)
		finite("Jitter", tk.Jitter)
		finite("BCET", tk.BCET)
		finite("Deadline()", tk.Deadline())
		finite("Utilization()", tk.Utilization())
		finite("Density()", tk.Density())
		if tk.C <= 0 || tk.T <= 0 {
			t.Fatalf("Validate accepted non-positive C or T: %v", tk)
		}
		if tk.Deadline() < tk.C {
			t.Fatalf("Validate accepted C above the effective deadline: %v", tk)
		}
		if b := tk.Best(); b < 0 || b > tk.C {
			t.Fatalf("Validate accepted BCET outside [0, C]: %v (Best=%v)", tk, b)
		}
		if err := (Set{tk}).Validate(); err != nil {
			t.Fatalf("singleton set validation disagrees with task validation: %v", err)
		}
	})
}

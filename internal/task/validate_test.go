package task

import (
	"errors"
	"math"
	"testing"

	"fnpr/internal/guard"
)

// TestValidateRejectsNonFinite checks, field by field, that NaN and infinite
// parameters never pass validation and that every rejection wraps
// guard.ErrInvalidInput so callers can classify it.
func TestValidateRejectsNonFinite(t *testing.T) {
	valid := Task{Name: "t", C: 5, T: 100, D: 50, Q: 3, Jitter: 1, BCET: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("baseline task rejected: %v", err)
	}
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Task)
	}{
		{"C-nan", func(tk *Task) { tk.C = nan }},
		{"C-inf", func(tk *Task) { tk.C = inf }},
		{"C-neg-inf", func(tk *Task) { tk.C = -inf }},
		{"C-zero", func(tk *Task) { tk.C = 0 }},
		{"T-nan", func(tk *Task) { tk.T = nan }},
		{"T-inf", func(tk *Task) { tk.T = inf }},
		{"T-neg-inf", func(tk *Task) { tk.T = -inf }},
		{"D-nan", func(tk *Task) { tk.D = nan }},
		{"D-inf", func(tk *Task) { tk.D = inf }},
		{"D-neg-inf", func(tk *Task) { tk.D = -inf }},
		{"Q-nan", func(tk *Task) { tk.Q = nan }},
		{"Q-inf", func(tk *Task) { tk.Q = inf }},
		{"Q-neg-inf", func(tk *Task) { tk.Q = -inf }},
		{"Jitter-nan", func(tk *Task) { tk.Jitter = nan }},
		{"Jitter-inf", func(tk *Task) { tk.Jitter = inf }},
		{"Jitter-neg-inf", func(tk *Task) { tk.Jitter = -inf }},
		{"BCET-nan", func(tk *Task) { tk.BCET = nan }},
		{"BCET-inf", func(tk *Task) { tk.BCET = inf }},
		{"BCET-neg-inf", func(tk *Task) { tk.BCET = -inf }},
		{"BCET-above-C", func(tk *Task) { tk.BCET = tk.C + 1 }},
		{"empty-name", func(tk *Task) { tk.Name = "" }},
		{"C-above-deadline", func(tk *Task) { tk.D = tk.C / 2 }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tk := valid
			c.mutate(&tk)
			err := tk.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tk)
			}
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Fatalf("error %v does not wrap guard.ErrInvalidInput", err)
			}
		})
	}
}

func TestSetValidateDuplicateName(t *testing.T) {
	s := Set{
		{Name: "same", C: 1, T: 10},
		{Name: "same", C: 2, T: 20},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("duplicate names accepted")
	}
	if !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("error %v does not wrap guard.ErrInvalidInput", err)
	}
}

package task

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeadlineImplicit(t *testing.T) {
	tk := Task{Name: "a", C: 1, T: 10}
	if got := tk.Deadline(); got != 10 {
		t.Fatalf("implicit deadline = %v, want 10", got)
	}
	tk.D = 7
	if got := tk.Deadline(); got != 7 {
		t.Fatalf("explicit deadline = %v, want 7", got)
	}
}

func TestBestFallsBackToC(t *testing.T) {
	tk := Task{Name: "a", C: 5, T: 10}
	if got := tk.Best(); got != 5 {
		t.Fatalf("Best() = %v, want 5", got)
	}
	tk.BCET = 2
	if got := tk.Best(); got != 2 {
		t.Fatalf("Best() = %v, want 2", got)
	}
}

func TestUtilizationAndDensity(t *testing.T) {
	tk := Task{Name: "a", C: 2, T: 8, D: 4}
	if got := tk.Utilization(); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := tk.Density(); got != 0.5 {
		t.Fatalf("density = %v, want 0.5", got)
	}
}

func TestUtilizationZeroPeriod(t *testing.T) {
	tk := Task{Name: "a", C: 2}
	if got := tk.Utilization(); !math.IsInf(got, 1) {
		t.Fatalf("utilization with T=0 = %v, want +Inf", got)
	}
	if got := tk.Density(); !math.IsInf(got, 1) {
		t.Fatalf("density with T=0 = %v, want +Inf", got)
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	cases := []struct {
		name string
		tk   Task
	}{
		{"empty name", Task{C: 1, T: 2}},
		{"zero C", Task{Name: "x", C: 0, T: 2}},
		{"negative C", Task{Name: "x", C: -1, T: 2}},
		{"NaN C", Task{Name: "x", C: math.NaN(), T: 2}},
		{"inf C", Task{Name: "x", C: math.Inf(1), T: 2}},
		{"zero T", Task{Name: "x", C: 1, T: 0}},
		{"negative D", Task{Name: "x", C: 1, T: 2, D: -1}},
		{"negative Q", Task{Name: "x", C: 1, T: 2, Q: -0.5}},
		{"negative jitter", Task{Name: "x", C: 1, T: 2, Jitter: -1}},
		{"BCET above C", Task{Name: "x", C: 1, T: 2, BCET: 3}},
		{"C beyond deadline", Task{Name: "x", C: 3, T: 4, D: 2}},
	}
	for _, c := range cases {
		if err := c.tk.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid task %+v", c.name, c.tk)
		}
	}
}

func TestValidateAcceptsGoodTask(t *testing.T) {
	tk := Task{Name: "x", C: 1, BCET: 0.5, T: 4, D: 3, Q: 0.2, Jitter: 0.1}
	if err := tk.Validate(); err != nil {
		t.Fatalf("Validate rejected valid task: %v", err)
	}
}

func TestSetValidateDuplicateNames(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4}, {Name: "a", C: 1, T: 5}}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate names")
	}
}

func TestSetUtilization(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 1, T: 2}}
	if got := s.Utilization(); got != 0.75 {
		t.Fatalf("set utilization = %v, want 0.75", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4}}
	c := s.Clone()
	c[0].C = 99
	if s[0].C != 1 {
		t.Fatal("Clone shares backing array with original")
	}
}

func TestByName(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 2, T: 8}}
	tk, ok := s.ByName("b")
	if !ok || tk.C != 2 {
		t.Fatalf("ByName(b) = %+v, %v", tk, ok)
	}
	if _, ok := s.ByName("zzz"); ok {
		t.Fatal("ByName found a nonexistent task")
	}
	if i := s.IndexByName("b"); i != 1 {
		t.Fatalf("IndexByName(b) = %d, want 1", i)
	}
	if i := s.IndexByName("zzz"); i != -1 {
		t.Fatalf("IndexByName(zzz) = %d, want -1", i)
	}
}

func TestAssignRateMonotonic(t *testing.T) {
	s := Set{
		{Name: "slow", C: 1, T: 100},
		{Name: "fast", C: 1, T: 5},
		{Name: "mid", C: 1, T: 20},
	}
	s.AssignRateMonotonic()
	want := []string{"fast", "mid", "slow"}
	for i, n := range want {
		if s[i].Name != n {
			t.Fatalf("RM order[%d] = %s, want %s", i, s[i].Name, n)
		}
		if s[i].Prio != i {
			t.Fatalf("RM prio[%d] = %d, want %d", i, s[i].Prio, i)
		}
	}
}

func TestAssignDeadlineMonotonic(t *testing.T) {
	s := Set{
		{Name: "a", C: 1, T: 100, D: 50},
		{Name: "b", C: 1, T: 100, D: 10},
		{Name: "c", C: 1, T: 100}, // implicit D=100
	}
	s.AssignDeadlineMonotonic()
	want := []string{"b", "a", "c"}
	for i, n := range want {
		if s[i].Name != n {
			t.Fatalf("DM order[%d] = %s, want %s", i, s[i].Name, n)
		}
	}
}

func TestSortByPriorityStableAndTieBreak(t *testing.T) {
	s := Set{
		{Name: "z", C: 1, T: 10, Prio: 1},
		{Name: "a", C: 1, T: 10, Prio: 1},
		{Name: "m", C: 1, T: 10, Prio: 0},
	}
	s.SortByPriority()
	want := []string{"m", "a", "z"}
	for i, n := range want {
		if s[i].Name != n {
			t.Fatalf("order[%d] = %s, want %s", i, s[i].Name, n)
		}
	}
}

func TestHigherLowerPriority(t *testing.T) {
	s := Set{
		{Name: "h", C: 1, T: 4, Prio: 0},
		{Name: "m", C: 1, T: 8, Prio: 1},
		{Name: "l", C: 1, T: 16, Prio: 2},
	}
	hp := s.HigherPriority(1)
	if len(hp) != 1 || hp[0].Name != "h" {
		t.Fatalf("HigherPriority(1) = %v", hp)
	}
	lp := s.LowerPriority(1)
	if len(lp) != 1 || lp[0].Name != "l" {
		t.Fatalf("LowerPriority(1) = %v", lp)
	}
	if got := s.HigherPriority(-1); got != nil {
		t.Fatalf("HigherPriority(-1) = %v, want nil", got)
	}
	if got := s.LowerPriority(5); got != nil {
		t.Fatalf("LowerPriority(5) = %v, want nil", got)
	}
}

func TestHyperperiod(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 1, T: 6}, {Name: "c", C: 1, T: 10}}
	h, ok := s.Hyperperiod()
	if !ok || h != 60 {
		t.Fatalf("Hyperperiod = %v, %v; want 60, true", h, ok)
	}
}

func TestHyperperiodNonIntegral(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 4.5}}
	if _, ok := s.Hyperperiod(); ok {
		t.Fatal("Hyperperiod accepted non-integral period")
	}
}

func TestHyperperiodOverflow(t *testing.T) {
	s := Set{
		{Name: "a", C: 1, T: 1e9},
		{Name: "b", C: 1, T: 1e9 - 1},
		{Name: "c", C: 1, T: 1e9 - 3},
	}
	if _, ok := s.Hyperperiod(); ok {
		t.Fatal("Hyperperiod accepted overflowing LCM")
	}
}

func TestStringContainsNames(t *testing.T) {
	s := Set{{Name: "alpha", C: 1, T: 4}, {Name: "beta", C: 2, T: 8}}
	str := s.String()
	if !strings.Contains(str, "alpha") || !strings.Contains(str, "beta") {
		t.Fatalf("String() = %q does not mention all tasks", str)
	}
}

// Property: RM assignment always yields non-decreasing periods and priorities 0..n-1.
func TestRateMonotonicProperty(t *testing.T) {
	f := func(periods []uint16) bool {
		s := make(Set, 0, len(periods))
		for i, p := range periods {
			s = append(s, Task{Name: string(rune('a' + i%26)), C: 1, T: float64(p%1000) + 1})
		}
		s.AssignRateMonotonic()
		for i := 1; i < len(s); i++ {
			if s[i-1].T > s[i].T {
				return false
			}
			if s[i].Prio != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization of a set equals the sum of member utilizations.
func TestSetUtilizationAdditive(t *testing.T) {
	f := func(cs, ts []uint8) bool {
		n := len(cs)
		if len(ts) < n {
			n = len(ts)
		}
		s := make(Set, 0, n)
		var want float64
		for i := 0; i < n; i++ {
			c := float64(cs[i]%50) + 1
			p := float64(ts[i]%100) + 51
			s = append(s, Task{Name: "t", C: c, T: p})
			want += c / p
		}
		return math.Abs(s.Utilization()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleUtilization(t *testing.T) {
	s := Set{{Name: "a", C: 1, BCET: 0.5, T: 4}, {Name: "b", C: 2, T: 8}}
	scaled, err := s.ScaleUtilization(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.Utilization()-0.9) > 1e-12 {
		t.Fatalf("scaled utilization = %g, want 0.9", scaled.Utilization())
	}
	// BCET scales with C, original untouched.
	if scaled[0].BCET != 0.5*scaled[0].C/s[0].C*1 && scaled[0].BCET == s[0].BCET {
		t.Fatalf("BCET not scaled: %g", scaled[0].BCET)
	}
	if s.Utilization() == scaled.Utilization() {
		t.Fatal("original set mutated")
	}
	if _, err := s.ScaleUtilization(0); err == nil {
		t.Fatal("accepted target 0")
	}
	if _, err := (Set{}).ScaleUtilization(0.5); err == nil {
		t.Fatal("accepted empty set")
	}
}

// Package task defines the sporadic task model used throughout the library.
//
// The model follows Section III of Marinho, Nélis, Petters and Puaut,
// "Preemption Delay Analysis for Floating Non-Preemptive Region Scheduling"
// (DATE 2012): a set τ = {τ1..τn} of sporadic tasks runs on a single core.
// Each task τi has a worst-case execution time Ci (in isolation), a minimum
// inter-arrival time Ti, a relative deadline Di and a floating non-preemptive
// region length Qi. Once a higher-priority job arrives while τi runs, τi
// keeps the processor for at most Qi further time units before the scheduler
// re-evaluates priorities, so consecutive preemptions of a job of τi are at
// least Qi apart in its execution progression.
package task

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fnpr/internal/guard"
)

// Task is one sporadic task. All time quantities share a single (arbitrary)
// time unit; the library never assumes a particular granularity.
type Task struct {
	// Name is a human-readable identifier used in traces and error
	// messages. Names must be unique within a Set.
	Name string

	// C is the worst-case execution time of one job of the task when it
	// executes in isolation, i.e. excluding any preemption delay.
	C float64

	// BCET is the best-case execution time in isolation. Zero means
	// "unknown"; analyses that need it fall back to C.
	BCET float64

	// T is the period (periodic tasks) or minimum inter-arrival time
	// (sporadic tasks) between consecutive job releases.
	T float64

	// D is the relative deadline. Zero means implicit deadline (D = T).
	D float64

	// Q is the length of the task's floating non-preemptive regions.
	// Q = 0 degenerates to fully-preemptive behaviour; Q >= C makes the
	// task effectively non-preemptive.
	Q float64

	// Prio is the task's fixed priority; smaller values denote higher
	// priority. It is ignored by EDF analyses.
	Prio int

	// Jitter is the maximum release jitter, used by the response-time
	// analyses that account for it.
	Jitter float64
}

// Deadline returns the effective relative deadline (D, or T when D == 0).
func (t Task) Deadline() float64 {
	if t.D == 0 {
		return t.T
	}
	return t.D
}

// Best returns the effective best-case execution time (BCET, or C when unset).
func (t Task) Best() float64 {
	if t.BCET == 0 {
		return t.C
	}
	return t.BCET
}

// Utilization returns C/T.
func (t Task) Utilization() float64 {
	if t.T == 0 {
		return math.Inf(1)
	}
	return t.C / t.T
}

// Density returns C/min(D,T).
func (t Task) Density() float64 {
	d := math.Min(t.Deadline(), t.T)
	if d == 0 {
		return math.Inf(1)
	}
	return t.C / d
}

// Validate reports whether the task parameters are internally consistent:
// every time quantity must be finite and non-NaN, C and T positive, D, Q,
// Jitter and BCET non-negative, BCET <= C and C within the deadline. All
// failures wrap guard.ErrInvalidInput.
func (t Task) Validate() error {
	switch {
	case t.Name == "":
		return guard.Invalidf("task: empty name")
	case t.C <= 0 || math.IsNaN(t.C) || math.IsInf(t.C, 0):
		return guard.Invalidf("task %s: C must be positive and finite, got %v", t.Name, t.C)
	case t.T <= 0 || math.IsNaN(t.T) || math.IsInf(t.T, 0):
		return guard.Invalidf("task %s: T must be positive and finite, got %v", t.Name, t.T)
	case t.D < 0 || math.IsNaN(t.D) || math.IsInf(t.D, 0):
		return guard.Invalidf("task %s: D must be non-negative and finite, got %v", t.Name, t.D)
	case t.Q < 0 || math.IsNaN(t.Q) || math.IsInf(t.Q, 0):
		return guard.Invalidf("task %s: Q must be non-negative and finite, got %v", t.Name, t.Q)
	case t.Jitter < 0 || math.IsNaN(t.Jitter) || math.IsInf(t.Jitter, 0):
		return guard.Invalidf("task %s: jitter must be non-negative and finite, got %v", t.Name, t.Jitter)
	case t.BCET < 0 || math.IsNaN(t.BCET) || !(t.BCET <= t.C):
		return guard.Invalidf("task %s: BCET must lie in [0, C], got %v", t.Name, t.BCET)
	case t.C > t.Deadline():
		return guard.Invalidf("task %s: C (%v) exceeds deadline (%v)", t.Name, t.C, t.Deadline())
	}
	return nil
}

// String renders the task compactly for traces and error messages.
func (t Task) String() string {
	return fmt.Sprintf("%s{C=%g T=%g D=%g Q=%g P=%d}", t.Name, t.C, t.T, t.Deadline(), t.Q, t.Prio)
}

// Set is an ordered collection of tasks. The order is significant for
// fixed-priority analyses: index 0 is conventionally the highest priority
// after SortByPriority has been applied.
type Set []Task

// Validate checks every task and the set-level constraints (unique names).
func (s Set) Validate() error {
	seen := make(map[string]struct{}, len(s))
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
		if _, dup := seen[t.Name]; dup {
			return guard.Invalidf("task set: duplicate task name %q", t.Name)
		}
		seen[t.Name] = struct{}{}
	}
	return nil
}

// Utilization returns the total utilization sum(Ci/Ti).
func (s Set) Utilization() float64 {
	var u float64
	for _, t := range s {
		u += t.Utilization()
	}
	return u
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// ByName returns the task with the given name, or false when absent.
func (s Set) ByName(name string) (Task, bool) {
	for _, t := range s {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

// IndexByName returns the index of the named task, or -1.
func (s Set) IndexByName(name string) int {
	for i, t := range s {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// SortByPriority orders the set by ascending Prio value (highest priority
// first), breaking ties by name so the order is deterministic.
func (s Set) SortByPriority() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Prio != s[j].Prio {
			return s[i].Prio < s[j].Prio
		}
		return s[i].Name < s[j].Name
	})
}

// AssignRateMonotonic assigns priorities by ascending period (shorter period
// = higher priority = smaller Prio value) and sorts the set accordingly.
func (s Set) AssignRateMonotonic() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].T != s[j].T {
			return s[i].T < s[j].T
		}
		return s[i].Name < s[j].Name
	})
	for i := range s {
		s[i].Prio = i
	}
}

// AssignDeadlineMonotonic assigns priorities by ascending relative deadline
// and sorts the set accordingly.
func (s Set) AssignDeadlineMonotonic() {
	sort.SliceStable(s, func(i, j int) bool {
		di, dj := s[i].Deadline(), s[j].Deadline()
		if di != dj {
			return di < dj
		}
		return s[i].Name < s[j].Name
	})
	for i := range s {
		s[i].Prio = i
	}
}

// HigherPriority returns the sub-slice of tasks with strictly higher priority
// than the task at index i, assuming the set is sorted by priority.
func (s Set) HigherPriority(i int) Set {
	if i < 0 || i > len(s) {
		return nil
	}
	return s[:i]
}

// LowerPriority returns the tasks with strictly lower priority than the task
// at index i, assuming the set is sorted by priority.
func (s Set) LowerPriority(i int) Set {
	if i < 0 || i >= len(s) {
		return nil
	}
	return s[i+1:]
}

// Hyperperiod returns the least common multiple of the task periods, assuming
// they are (close to) integers. The second return value is false when a
// period is non-integral (beyond 1e-9 tolerance) or the LCM overflows
// practical simulation horizons (> maxHorizon).
func (s Set) Hyperperiod() (float64, bool) {
	const maxHorizon = 1e12
	lcm := int64(1)
	for _, t := range s {
		p := math.Round(t.T)
		if math.Abs(p-t.T) > 1e-9 || p <= 0 {
			return 0, false
		}
		lcm = lcmInt(lcm, int64(p))
		if lcm <= 0 || float64(lcm) > maxHorizon {
			return 0, false
		}
	}
	return float64(lcm), true
}

func gcdInt(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcmInt(a, b int64) int64 {
	g := gcdInt(a, b)
	if g == 0 {
		return 0
	}
	return a / g * b
}

// String renders the set as a table-ish single line per task.
func (s Set) String() string {
	var b strings.Builder
	for i, t := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// ScaleUtilization returns a copy of the set with every C multiplied so the
// total utilization becomes target (> 0). Deadlines, periods, priorities and
// Q are unchanged; BCETs scale with C to stay consistent.
func (s Set) ScaleUtilization(target float64) (Set, error) {
	u := s.Utilization()
	if u <= 0 || math.IsNaN(u) || math.IsInf(u, 0) {
		return nil, guard.Invalidf("task: cannot scale utilization %g", u)
	}
	if target <= 0 || math.IsNaN(target) || math.IsInf(target, 0) {
		return nil, guard.Invalidf("task: invalid target utilization %g", target)
	}
	k := target / u
	out := s.Clone()
	for i := range out {
		out[i].C *= k
		out[i].BCET *= k
	}
	return out, nil
}

package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

func base(t *testing.T) *delay.Piecewise {
	t.Helper()
	f, err := delay.NewPiecewise([]float64{0, 5, 10, 40}, []float64{2, 6, 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPanicAtQTargetsOneGridPoint: the fault fires for the targeted Q on
// every attempt and leaves other grid points untouched.
func TestPanicAtQTargetsOneGridPoint(t *testing.T) {
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{PanicAtQ: 20})
	for _, q := range []float64{15, 25} {
		if _, err := core.Analyze(nil, f, q, core.Options{}); err != nil {
			t.Fatalf("untargeted Q=%g failed: %v", q, err)
		}
	}
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := guard.Run(nil, "probe", func() (float64, error) {
			r, err := core.Analyze(nil, f, 20, core.Options{})
			return r.TotalDelay, err
		})
		if !errors.Is(err, guard.ErrPanic) || !strings.Contains(err.Error(), "chaos: injected panic at Q=20") {
			t.Fatalf("attempt %d at targeted Q: err = %v, want injected chaos panic", attempt, err)
		}
	}
	if in.Fired() != 2 {
		t.Fatalf("injector fired %d faults, want 2", in.Fired())
	}
}

// TestHealMakesFaultTransient: with Heal=2 the first two attempts panic and
// the third succeeds with the clean value.
func TestHealMakesFaultTransient(t *testing.T) {
	cr, err := core.Analyze(nil, base(t), 20, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := cr.TotalDelay
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{PanicAtQ: 20, Heal: 2})
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := guard.Run(nil, "probe", func() (float64, error) {
			r, err := core.Analyze(nil, f, 20, core.Options{})
			return r.TotalDelay, err
		}); !errors.Is(err, guard.ErrPanic) {
			t.Fatalf("attempt %d: err = %v, want panic", attempt, err)
		}
	}
	vr, err := core.Analyze(nil, f, 20, core.Options{})
	if err != nil {
		t.Fatalf("healed attempt failed: %v", err)
	}
	if v := vr.TotalDelay; v != clean {
		t.Fatalf("healed value %g differs from clean %g", v, clean)
	}
	if in.Fired() != 2 {
		t.Fatalf("fired %d, want exactly the 2 pre-heal panics", in.Fired())
	}
}

// TestPanicFallbackHitsOnlyEq4: the full-domain MaxOn query panics while the
// Algorithm 1 walk (windows starting at Q > 0) runs clean.
func TestPanicFallbackHitsOnlyEq4(t *testing.T) {
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{PanicFallback: true})
	if _, err := core.Analyze(nil, f, 20, core.Options{}); err != nil {
		t.Fatalf("Algorithm 1 walk hit the fallback fault: %v", err)
	}
	_, err := guard.Run(nil, "fallback", func() (float64, error) {
		r, err := core.Analyze(nil, f, 20, core.Options{Method: core.Equation4})
		return r.TotalDelay, err
	})
	if !errors.Is(err, guard.ErrPanic) || !strings.Contains(err.Error(), "Eq.4 fallback") {
		t.Fatalf("fallback err = %v, want injected fallback panic", err)
	}
}

// TestBurnExhaustsSharedBudget: per-query step burn trips the guard budget
// inside the analysis.
func TestBurnExhaustsSharedBudget(t *testing.T) {
	g := guard.New(context.Background()).WithBudget(50)
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{Burn: 40, Guard: g})
	_, err := core.Analyze(g, f, 20, core.Options{})
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("burned analysis: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestCancelAfterQueries: delayed cancellation lands mid-analysis.
func TestCancelAfterQueries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := guard.New(ctx)
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{CancelAfter: 2, Cancel: cancel})
	// A couple of grid points: the first queries pass, then the cancel
	// fires and a later poll observes it.
	var lastErr error
	for _, q := range []float64{15, 20, 25, 30} {
		if _, err := core.Analyze(g, f, q, core.Options{}); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, guard.ErrCanceled) {
		t.Fatalf("delayed cancel: err = %v, want ErrCanceled", lastErr)
	}
	if in.Fired() != 1 {
		t.Fatalf("fired %d, want 1 (the cancel)", in.Fired())
	}
}

// TestRandomPanicSeededReproducibly: the same seed injects at the same query
// under a fixed query order.
func TestRandomPanicSeededReproducibly(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed)
		f := in.Wrap(base(t), Fault{PanicProb: 0.3})
		var fired []bool
		for i := 0; i < 40; i++ {
			_, err := guard.Run(nil, "probe", func() (float64, error) {
				return f.Eval(float64(i)), nil
			})
			fired = append(fired, errors.Is(err, guard.ErrPanic))
		}
		return fired
	}
	a, b := run(7), run(7)
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at query %d", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("probability 0.3 over 40 queries never fired")
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestZeroFaultIsTransparent: a zero Fault wrapper changes nothing but
// counts queries.
func TestZeroFaultIsTransparent(t *testing.T) {
	in := NewInjector(1)
	f := in.Wrap(base(t), Fault{})
	cr, err := core.Analyze(nil, base(t), 20, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := cr.TotalDelay
	gr, err := core.Analyze(nil, f, 20, core.Options{})
	if err != nil || gr.TotalDelay != clean {
		t.Fatalf("wrapped bound (%g, %v), want (%g, nil)", gr.TotalDelay, err, clean)
	}
	if f.Queries() == 0 {
		t.Fatal("query counter did not advance")
	}
	if in.Fired() != 0 {
		t.Fatalf("zero fault fired %d times", in.Fired())
	}
}

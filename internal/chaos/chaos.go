// Package chaos is the deterministic fault injector the crash-safety test
// suites drive: it wraps a delay.Function with faults that fire at precisely
// chosen places in the analysis — panic at one grid point's Algorithm 1 walk,
// panic in the Equation 4 fallback query, burn the shared step budget, cancel
// the run after N queries — so every rung of the batch runtime's degradation
// ladder (retry → fallback → quarantine → abort with journal intact) can be
// exercised on purpose, repeatably.
//
// Targeting exploits two call-shape facts of internal/core:
//
//   - the Algorithm 1 walk for grid point Q issues its first
//     FirstReachDescending query with a == Q, and progression strictly
//     increases afterwards, so "a == Q" identifies exactly one grid point's
//     primary analysis (and fires once per attempt);
//   - only the Equation 4 fallback queries MaxOn(0, Domain()); the walk's
//     windows all start at or after Q > 0, so that shape identifies the
//     fallback.
//
// Counter-based faults are deterministic for a fixed query order (one
// worker); the probabilistic mode draws from a seeded source and is
// reproducible under the same ordering.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"fnpr/internal/delay"
	"fnpr/internal/guard"
)

// Fault selects which faults a wrapped function injects. The zero value
// injects nothing.
type Fault struct {
	// PanicAtQ, when positive, panics inside the Algorithm 1 walk of the
	// grid point whose protected window starts at this Q (see the package
	// comment). Each attempt of that point re-triggers the fault.
	PanicAtQ float64

	// Heal, when positive, stops the PanicAtQ fault after it has fired
	// this many times — the transient-then-healthy pattern a retry policy
	// must absorb. Zero means the fault is permanent.
	Heal int

	// PanicFallback panics inside the Equation 4 fallback's full-domain
	// MaxOn query, killing the degradation rung and forcing quarantine.
	PanicFallback bool

	// PanicProb injects a panic on each query with this probability,
	// drawn from the injector's seeded source.
	PanicProb float64

	// Burn charges this many extra steps on Guard per query, burning the
	// shared budget so the analysis trips guard.ErrBudgetExceeded
	// mid-flight.
	Burn int64

	// Guard is the scope Burn charges. Required when Burn > 0.
	Guard *guard.Ctx

	// CancelAfter invokes Cancel once, after this many queries — delayed
	// cancellation arriving while the analysis is deep in its loops.
	CancelAfter int64

	// Cancel is the abort hook CancelAfter fires (typically a
	// context.CancelFunc). Required when CancelAfter > 0.
	Cancel func()
}

// Injector owns the seeded randomness and the fault accounting shared by the
// functions it wraps. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	fired atomic.Int64
}

// NewInjector returns an injector whose probabilistic faults draw from the
// given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Fired returns how many faults this injector's wrapped functions have
// injected so far (panics thrown, cancels issued; budget burn is continuous
// and not counted).
func (in *Injector) Fired() int64 { return in.fired.Load() }

func (in *Injector) chance(p float64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// Wrap returns f with the given faults injected around its queries. The
// wrapper implements delay.Function and is safe for concurrent use.
func (in *Injector) Wrap(f delay.Function, fault Fault) *Func {
	return &Func{inner: f, fault: fault, in: in}
}

// Func is a fault-injecting delay.Function. See Injector.Wrap.
type Func struct {
	inner   delay.Function
	fault   Fault
	in      *Injector
	queries atomic.Int64
	panics  atomic.Int64 // PanicAtQ trigger opportunities, for Heal accounting
}

var _ delay.Function = (*Func)(nil)

// Queries returns how many work queries (Eval, MaxOn, FirstReachDescending)
// reached this function.
func (c *Func) Queries() int64 { return c.queries.Load() }

// hook runs the per-query faults: budget burn, delayed cancel, random panic.
func (c *Func) hook(kind string) {
	n := c.queries.Add(1)
	if c.fault.Burn > 0 && c.fault.Guard != nil {
		// The burn itself ignores the budget verdict: the analysis's own
		// next Tick observes the exhausted budget, exactly as it would if
		// the work had genuinely been done.
		_ = c.fault.Guard.TickN(c.fault.Burn)
	}
	if c.fault.CancelAfter > 0 && n == c.fault.CancelAfter && c.fault.Cancel != nil {
		c.in.fired.Add(1)
		c.fault.Cancel()
	}
	if c.fault.PanicProb > 0 && c.in.chance(c.fault.PanicProb) {
		c.in.fired.Add(1)
		panic(fmt.Sprintf("chaos: random injected panic in %s (query %d)", kind, n))
	}
}

// Domain implements delay.Function. It passes through unfaulted so input
// validation (which every analysis runs before its loops) stays clean — the
// faults target the analysis, not its preconditions.
func (c *Func) Domain() float64 { return c.inner.Domain() }

// Eval implements delay.Function.
func (c *Func) Eval(t float64) float64 {
	c.hook("Eval")
	return c.inner.Eval(t)
}

// MaxOn implements delay.Function, injecting the fallback panic on the
// Equation 4 query shape.
func (c *Func) MaxOn(a, b float64) (tmax, fmax float64) {
	c.hook("MaxOn")
	if c.fault.PanicFallback && a == 0 && b == c.inner.Domain() {
		c.in.fired.Add(1)
		panic(fmt.Sprintf("chaos: injected panic in Eq.4 fallback (MaxOn[0,%g])", b))
	}
	return c.inner.MaxOn(a, b)
}

// FirstReachDescending implements delay.Function, injecting the targeted
// grid-point panic on the first-window query shape.
func (c *Func) FirstReachDescending(a, b, cc float64) (x float64, ok bool) {
	c.hook("FirstReachDescending")
	if c.fault.PanicAtQ > 0 && a == c.fault.PanicAtQ {
		n := c.panics.Add(1)
		if c.fault.Heal <= 0 || n <= int64(c.fault.Heal) {
			c.in.fired.Add(1)
			panic(fmt.Sprintf("chaos: injected panic at Q=%g (firing %d)", a, n))
		}
	}
	return c.inner.FirstReachDescending(a, b, cc)
}

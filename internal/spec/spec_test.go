package spec

import (
	"strings"
	"testing"
)

const sample = `{
  "policy": "fp",
  "tasks": [
    {"name": "hi", "c": 5, "t": 50, "q": 5, "prio": 0},
    {"name": "lo", "c": 20, "t": 100, "q": 4, "prio": 1,
     "delay": {"kind": "frontloaded", "peak": 2, "tail": 0.5}}
  ]
}`

func TestLoadBasic(t *testing.T) {
	p, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "fp" || len(p.Tasks) != 2 {
		t.Fatalf("problem = %+v", p)
	}
	if p.Delay[0] != nil {
		t.Fatal("hi should have no delay function")
	}
	if p.Delay[1] == nil || p.Delay[1].Domain() != 20 {
		t.Fatalf("lo delay function wrong: %v", p.Delay[1])
	}
	if p.Delay[1].Eval(1) != 2 {
		t.Fatalf("frontloaded peak = %g, want 2", p.Delay[1].Eval(1))
	}
}

func TestLoadSortsByPriority(t *testing.T) {
	in := `{
	  "policy": "fp",
	  "tasks": [
	    {"name": "lo", "c": 20, "t": 100, "prio": 5,
	     "delay": {"kind": "constant", "value": 1}},
	    {"name": "hi", "c": 5, "t": 50, "prio": 1}
	  ]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks[0].Name != "hi" || p.Tasks[1].Name != "lo" {
		t.Fatalf("order = %v", p.Tasks)
	}
	// Delay functions follow their tasks through the sort.
	if p.Delay[0] != nil || p.Delay[1] == nil {
		t.Fatal("delay functions not permuted with tasks")
	}
}

func TestLoadRejectsBadSpecs(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no policy", `{"tasks":[{"name":"a","c":1,"t":2}]}`},
		{"bad policy", `{"policy":"rr","tasks":[{"name":"a","c":1,"t":2}]}`},
		{"no tasks", `{"policy":"fp","tasks":[]}`},
		{"unknown field", `{"policy":"fp","bogus":1,"tasks":[{"name":"a","c":1,"t":2}]}`},
		{"invalid task", `{"policy":"fp","tasks":[{"name":"a","c":0,"t":2}]}`},
		{"bad delay kind", `{"policy":"fp","tasks":[{"name":"a","c":1,"t":2,"delay":{"kind":"magic"}}]}`},
		{"negative constant", `{"policy":"fp","tasks":[{"name":"a","c":1,"t":2,"delay":{"kind":"constant","value":-1}}]}`},
		{"piecewise no breakpoints", `{"policy":"fp","tasks":[{"name":"a","c":1,"t":2,"delay":{"kind":"piecewise"}}]}`},
		{"piecewise domain mismatch", `{"policy":"fp","tasks":[{"name":"a","c":5,"t":20,"delay":{"kind":"piecewise","breakpoints":[0,4],"values":[1]}}]}`},
		{"gaussian no sigma", `{"policy":"fp","tasks":[{"name":"a","c":1,"t":2,"delay":{"kind":"gaussian","amp":1}}]}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadPiecewiseAndGaussian(t *testing.T) {
	in := `{
	  "policy": "edf",
	  "tasks": [
	    {"name": "a", "c": 10, "t": 40, "q": 3,
	     "delay": {"kind": "piecewise", "breakpoints": [0, 4, 10], "values": [2, 0.5]}},
	    {"name": "b", "c": 20, "t": 80, "q": 4,
	     "delay": {"kind": "gaussian", "amp": 3, "mu": 10, "sigma2": 4, "pieces": 100}}
	  ]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Delay[0].Eval(2) != 2 || p.Delay[0].Eval(5) != 0.5 {
		t.Fatal("piecewise values wrong")
	}
	_, peak := p.Delay[1].MaxOn(0, 20)
	if peak < 2.9 || peak > 3.1 {
		t.Fatalf("gaussian peak = %g, want ~3", peak)
	}
}

func TestDefaultNames(t *testing.T) {
	in := `{"policy":"edf","tasks":[{"c":1,"t":5}]}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks[0].Name != "t0" {
		t.Fatalf("default name = %q, want t0", p.Tasks[0].Name)
	}
}

func TestSaveRoundTrip(t *testing.T) {
	f := File{
		Policy: "fp",
		Tasks: []Task{
			{Name: "a", C: 1, T: 5, Q: 1, Delay: &Delay{Kind: "constant", Value: 0.5}},
		},
	}
	var b strings.Builder
	if err := Save(&b, f); err != nil {
		t.Fatal(err)
	}
	p, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks[0].Name != "a" || p.Delay[0] == nil {
		t.Fatalf("round trip lost data: %+v", p)
	}
}

func TestLoadLinearDelay(t *testing.T) {
	in := `{
	  "policy": "fp",
	  "tasks": [
	    {"name": "a", "c": 10, "t": 40, "q": 3, "prio": 0,
	     "delay": {"kind": "linear", "breakpoints": [0, 5, 10], "values": [0, 8, 0]}}
	  ]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Delay[0].Eval(2.5); got != 4 {
		t.Fatalf("linear Eval(2.5) = %g, want 4", got)
	}
	bad := strings.Replace(in, `[0, 5, 10]`, `[0, 5, 9]`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted linear domain mismatch")
	}
}

func TestAssignQFromFile(t *testing.T) {
	in := `{
	  "policy": "fp",
	  "assign_q": true,
	  "tasks": [
	    {"name": "a", "c": 1, "t": 4, "prio": 0},
	    {"name": "b", "c": 2, "t": 8, "prio": 1},
	    {"name": "c", "c": 4, "t": 16, "prio": 2, "q": 1.5}
	  ]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Missing Qs derived; the explicit Q on task c is preserved.
	if p.Tasks[0].Q <= 0 || p.Tasks[1].Q <= 0 {
		t.Fatalf("Q not derived: %v", p.Tasks)
	}
	if p.Tasks[2].Q != 1.5 {
		t.Fatalf("explicit Q overwritten: %g", p.Tasks[2].Q)
	}
}

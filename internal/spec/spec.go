// Package spec defines the on-disk JSON description of an analysis problem:
// a task set, each task's preemption delay function, and the scheduling
// policy. The schedtest binary consumes it, and it doubles as the library's
// interchange format for reproducible experiments.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"fnpr/internal/delay"
	"fnpr/internal/npr"
	"fnpr/internal/task"
)

// File is the root of a task-set specification.
type File struct {
	// Policy is "fp" (fixed priority) or "edf".
	Policy string `json:"policy"`
	// AssignQ, when true, derives missing Q values (tasks with q = 0)
	// from the blocking-tolerance analysis of package npr under the
	// file's policy.
	AssignQ bool   `json:"assign_q,omitempty"`
	Tasks   []Task `json:"tasks"`
}

// Task is one task with its delay model.
type Task struct {
	Name   string  `json:"name"`
	C      float64 `json:"c"`
	T      float64 `json:"t"`
	D      float64 `json:"d,omitempty"`
	Q      float64 `json:"q,omitempty"`
	Prio   int     `json:"prio,omitempty"`
	Jitter float64 `json:"jitter,omitempty"`
	Delay  *Delay  `json:"delay,omitempty"`
}

// Delay describes a preemption delay function.
type Delay struct {
	// Kind is "constant", "frontloaded", "piecewise", "linear" or
	// "gaussian".
	Kind string `json:"kind"`
	// Constant: Value.
	Value float64 `json:"value,omitempty"`
	// Frontloaded: Peak and Tail (see delay.FrontLoaded).
	Peak float64 `json:"peak,omitempty"`
	Tail float64 `json:"tail,omitempty"`
	// Piecewise: Breakpoints (length n+1, starting at 0, ending at the
	// task's C) and Values (length n). Linear: Breakpoints and Values of
	// equal length (values at the breakpoints, interpolated between).
	Breakpoints []float64 `json:"breakpoints,omitempty"`
	Values      []float64 `json:"values,omitempty"`
	// Gaussian: Amp, Mu, Sigma2, Offset, sampled into Pieces pieces
	// (default 1000).
	Amp    float64 `json:"amp,omitempty"`
	Mu     float64 `json:"mu,omitempty"`
	Sigma2 float64 `json:"sigma2,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	Pieces int     `json:"pieces,omitempty"`
}

// Problem is the decoded, validated analysis problem.
type Problem struct {
	Policy string
	Tasks  task.Set
	Delay  []delay.Function
}

// Load reads and decodes a specification.
func Load(r io.Reader) (*Problem, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return f.Build()
}

// LoadFile reads a specification from a path.
func LoadFile(path string) (*Problem, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Load(fh)
}

// Build validates the file and materialises the task set and delay
// functions.
func (f File) Build() (*Problem, error) {
	switch f.Policy {
	case "fp", "edf":
	case "":
		return nil, errors.New("spec: missing policy (fp or edf)")
	default:
		return nil, fmt.Errorf("spec: unknown policy %q", f.Policy)
	}
	if len(f.Tasks) == 0 {
		return nil, errors.New("spec: no tasks")
	}
	p := &Problem{Policy: f.Policy}
	for i, ts := range f.Tasks {
		tk := task.Task{
			Name: ts.Name, C: ts.C, T: ts.T, D: ts.D,
			Q: ts.Q, Prio: ts.Prio, Jitter: ts.Jitter,
		}
		if tk.Name == "" {
			tk.Name = fmt.Sprintf("t%d", i)
		}
		p.Tasks = append(p.Tasks, tk)
		fn, err := ts.Delay.build(ts.C)
		if err != nil {
			return nil, fmt.Errorf("spec: task %s: %w", tk.Name, err)
		}
		p.Delay = append(p.Delay, fn)
	}
	if err := p.Tasks.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if f.Policy == "fp" {
		p.sortByPriority()
	}
	if f.AssignQ {
		policy := npr.FixedPriority
		if f.Policy == "edf" {
			policy = npr.EDF
		}
		qs, err := npr.AssignQ(p.Tasks, policy)
		if err != nil {
			return nil, fmt.Errorf("spec: assign_q: %w", err)
		}
		for i := range p.Tasks {
			if p.Tasks[i].Q == 0 {
				p.Tasks[i].Q = qs[i].Q
			}
		}
	}
	return p, nil
}

// sortByPriority orders tasks and their delay functions together.
func (p *Problem) sortByPriority() {
	type pair struct {
		t task.Task
		f delay.Function
	}
	pairs := make([]pair, len(p.Tasks))
	for i := range p.Tasks {
		pairs[i] = pair{p.Tasks[i], p.Delay[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0; j-- {
			a, b := pairs[j-1], pairs[j]
			if a.t.Prio < b.t.Prio || (a.t.Prio == b.t.Prio && a.t.Name <= b.t.Name) {
				break
			}
			pairs[j-1], pairs[j] = b, a
		}
	}
	for i := range pairs {
		p.Tasks[i] = pairs[i].t
		p.Delay[i] = pairs[i].f
	}
}

// Build materialises the delay description into a delay.Function over the
// domain [0, c] (the owning task's execution time). A nil *Delay builds a nil
// function, meaning "no preemption delay". The analysis service uses this
// directly for single-function /v1/analyze requests; File.Build uses it per
// task.
func (d *Delay) Build(c float64) (delay.Function, error) {
	return d.build(c)
}

func (d *Delay) build(c float64) (delay.Function, error) {
	if d == nil {
		return nil, nil
	}
	switch d.Kind {
	case "constant":
		if d.Value < 0 {
			return nil, fmt.Errorf("negative constant delay %g", d.Value)
		}
		return delay.NewPiecewise([]float64{0, c}, []float64{d.Value})
	case "frontloaded":
		if d.Peak < 0 || d.Tail < 0 {
			return nil, fmt.Errorf("negative frontloaded parameters")
		}
		return delay.NewFrontLoaded(d.Peak, d.Tail, c)
	case "piecewise":
		if len(d.Breakpoints) == 0 {
			return nil, errors.New("piecewise delay needs breakpoints")
		}
		if last := d.Breakpoints[len(d.Breakpoints)-1]; last != c {
			return nil, fmt.Errorf("piecewise domain ends at %g, task C is %g", last, c)
		}
		return delay.NewPiecewise(d.Breakpoints, d.Values)
	case "linear":
		if len(d.Breakpoints) == 0 {
			return nil, errors.New("linear delay needs breakpoints")
		}
		if last := d.Breakpoints[len(d.Breakpoints)-1]; last != c {
			return nil, fmt.Errorf("linear domain ends at %g, task C is %g", last, c)
		}
		return delay.NewPiecewiseLinear(d.Breakpoints, d.Values)
	case "gaussian":
		n := d.Pieces
		if n <= 0 {
			n = 1000
		}
		if d.Sigma2 <= 0 {
			return nil, fmt.Errorf("gaussian delay needs sigma2 > 0, got %g", d.Sigma2)
		}
		fn := delay.Gaussian(d.Amp, d.Mu, d.Sigma2, d.Offset)
		return delay.UpperEnvelope(fn, c, n, []float64{d.Mu})
	default:
		return nil, fmt.Errorf("unknown delay kind %q", d.Kind)
	}
}

// Save encodes a File as indented JSON.
func Save(w io.Writer, f File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

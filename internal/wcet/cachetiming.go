package wcet

import (
	"errors"
	"fmt"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
)

// TimingModel describes how block execution intervals are derived from
// instruction counts and memory behaviour, the way a WCET tool's low-level
// analysis would.
type TimingModel struct {
	// Cache is the instruction/data cache configuration.
	Cache cache.Config
	// HitCost and MissCost are the per-access memory latencies.
	HitCost, MissCost float64
	// ComputeMin/ComputeMax bound each block's pure computation time per
	// block (added to the memory cost). Indexed by block; missing blocks
	// default to zero.
	ComputeMin, ComputeMax map[cfg.BlockID]float64
}

// Validate checks the model.
func (m TimingModel) Validate() error {
	if err := m.Cache.Validate(); err != nil {
		return err
	}
	if m.HitCost < 0 || m.MissCost < m.HitCost {
		return fmt.Errorf("wcet: need 0 <= hit (%g) <= miss (%g)", m.HitCost, m.MissCost)
	}
	return nil
}

// ApplyCacheTiming assigns every block of an acyclic (loop-collapsed) graph
// an execution interval derived from the abstract cache analysis:
//
//	[ComputeMin + Σ best-case access cost, ComputeMax + Σ worst-case cost]
//
// where always-hit accesses cost HitCost, always-miss cost MissCost, and
// unclassified accesses cost HitCost at best and MissCost at worst. The
// graph is modified in place; the classification result is returned for
// inspection.
func ApplyCacheTiming(g *cfg.Graph, acc cache.AccessMap, m TimingModel) (*cache.AbstractResult, error) {
	if g == nil {
		return nil, errors.New("wcet: nil graph")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	res, err := cache.AnalyzeAbstract(g, acc, m.Cache)
	if err != nil {
		return nil, err
	}
	for id := 0; id < g.Len(); id++ {
		b := cfg.BlockID(id)
		lo, hi := res.BlockCost(b, m.HitCost, m.MissCost)
		lo += m.ComputeMin[b]
		hi += m.ComputeMax[b]
		if hi < lo {
			return nil, fmt.Errorf("wcet: block %d compute bounds inverted", id)
		}
		g.SetInterval(b, lo, hi)
	}
	return res, nil
}

// AnalyzeWithCache runs the full cache-aware WCET flow on an acyclic graph:
// classify accesses, derive block intervals, then compute the task-level
// estimate. It returns the estimate together with the classification.
func AnalyzeWithCache(g *cfg.Graph, acc cache.AccessMap, m TimingModel) (*Estimate, *cache.AbstractResult, error) {
	if g == nil {
		return nil, nil, errors.New("wcet: nil graph")
	}
	work := g.Clone()
	cls, err := ApplyCacheTiming(work, acc, m)
	if err != nil {
		return nil, nil, err
	}
	est, err := Analyze(work)
	if err != nil {
		return nil, nil, err
	}
	return est, cls, nil
}

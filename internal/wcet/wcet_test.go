package wcet

import (
	"math/rand"
	"testing"

	"fnpr/internal/cfg"
)

func TestAnalyzeFigure1(t *testing.T) {
	est, err := Analyze(cfg.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	if est.BCET != 80 || est.WCET != 205 {
		t.Fatalf("estimate = [%g,%g], want [80,205]", est.BCET, est.WCET)
	}
	if est.Offsets == nil || est.Collapsed == nil {
		t.Fatal("estimate missing analysis artifacts")
	}
}

func TestAnalyzeWithLoop(t *testing.T) {
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 3})
	est, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// entry [1,2] + loop [4,18] + exit [2,2].
	if est.BCET != 7 || est.WCET != 22 {
		t.Fatalf("estimate = [%g,%g], want [7,22]", est.BCET, est.WCET)
	}
}

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestAnalyzeIrreducible(t *testing.T) {
	g := cfg.New()
	e := g.AddSimple("e", 1, 1)
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	x := g.AddSimple("x", 1, 1)
	g.MustEdge(e, a)
	g.MustEdge(e, b)
	g.MustEdge(a, b)
	g.MustEdge(b, a)
	g.MustEdge(a, x)
	if _, err := Analyze(g); err == nil {
		t.Fatal("accepted irreducible graph")
	}
}

func TestEnumeratePathsDiamond(t *testing.T) {
	g := cfg.Diamond([2]float64{1, 1}, [2]float64{2, 3}, [2]float64{4, 5}, [2]float64{1, 1})
	paths, err := EnumeratePaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 3 {
			t.Fatalf("path length %d, want 3", len(p))
		}
	}
}

func TestEnumeratePathsRejectsCycles(t *testing.T) {
	g := cfg.SimpleLoop(cfg.Bound{Min: 1, Max: 2})
	if _, err := EnumeratePaths(g); err == nil {
		t.Fatal("accepted cyclic graph")
	}
	if _, err := EnumeratePaths(nil); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestPathTime(t *testing.T) {
	g := cfg.Diamond([2]float64{1, 1}, [2]float64{2, 3}, [2]float64{4, 5}, [2]float64{1, 1})
	p := Path{0, 1, 3}
	lo, hi := p.Time(g)
	if lo != 4 || hi != 5 {
		t.Fatalf("path time = [%g,%g], want [4,5]", lo, hi)
	}
}

func TestExhaustiveBoundsDiamond(t *testing.T) {
	g := cfg.Diamond([2]float64{1, 1}, [2]float64{2, 3}, [2]float64{4, 5}, [2]float64{1, 1})
	bcet, wcet, err := ExhaustiveBounds(g)
	if err != nil {
		t.Fatal(err)
	}
	if bcet != 4 || wcet != 7 {
		t.Fatalf("bounds = [%g,%g], want [4,7]", bcet, wcet)
	}
}

// Property: on random DAGs, the interval analysis agrees exactly with
// exhaustive path enumeration.
func TestAnalysisMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(10)
		g := cfg.New()
		ids := make([]cfg.BlockID, n)
		for i := 0; i < n; i++ {
			emin := float64(r.Intn(10) + 1)
			ids[i] = g.AddSimple("", emin, emin+float64(r.Intn(10)))
		}
		for i := 1; i < n; i++ {
			k := 1 + r.Intn(2)
			for j := 0; j < k; j++ {
				g.MustEdge(ids[r.Intn(i)], ids[i])
			}
		}
		est, err := Analyze(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bcet, wcet, err := ExhaustiveBounds(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if est.BCET != bcet || est.WCET != wcet {
			t.Fatalf("trial %d: analysis [%g,%g] != exhaustive [%g,%g]",
				trial, est.BCET, est.WCET, bcet, wcet)
		}
	}
}

package wcet

import (
	"math/rand"
	"testing"

	"fnpr/internal/cache"
	"fnpr/internal/cfg"
)

func model() TimingModel {
	return TimingModel{
		Cache:   cache.Config{Sets: 4, Assoc: 2, LineBytes: 16, ReloadCost: 10},
		HitCost: 1, MissCost: 10,
		ComputeMin: map[cfg.BlockID]float64{},
		ComputeMax: map[cfg.BlockID]float64{},
	}
}

func TestTimingModelValidate(t *testing.T) {
	m := model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.HitCost, m.MissCost = 10, 1
	if err := m.Validate(); err == nil {
		t.Fatal("accepted miss < hit")
	}
	m = model()
	m.Cache.Sets = 3
	if err := m.Validate(); err == nil {
		t.Fatal("accepted bad cache")
	}
}

func TestApplyCacheTimingIntervals(t *testing.T) {
	g := cfg.New()
	a := g.AddSimple("a", 0, 0)
	b := g.AddSimple("b", 0, 0)
	g.MustEdge(a, b)
	acc := cache.AccessMap{a: {0, 1}, b: {0, 1}}
	m := model()
	m.ComputeMin[a], m.ComputeMax[a] = 2, 3
	m.ComputeMin[b], m.ComputeMax[b] = 1, 1
	if _, err := ApplyCacheTiming(g, acc, m); err != nil {
		t.Fatal(err)
	}
	// a: two cold misses (2x10) + compute [2,3] -> [22, 23].
	blk := g.Block(a)
	if blk.EMin != 22 || blk.EMax != 23 {
		t.Fatalf("a interval [%g,%g], want [22,23]", blk.EMin, blk.EMax)
	}
	// b: two always-hits (2x1) + compute [1,1] -> [3,3].
	blk = g.Block(b)
	if blk.EMin != 3 || blk.EMax != 3 {
		t.Fatalf("b interval [%g,%g], want [3,3]", blk.EMin, blk.EMax)
	}
}

func TestAnalyzeWithCacheLeavesInputIntact(t *testing.T) {
	g := cfg.New()
	a := g.AddSimple("a", 5, 5)
	b := g.AddSimple("b", 5, 5)
	g.MustEdge(a, b)
	acc := cache.AccessMap{a: {0}, b: {0}}
	est, cls, err := AnalyzeWithCache(g, acc, model())
	if err != nil {
		t.Fatal(err)
	}
	if g.Block(a).EMin != 5 {
		t.Fatal("AnalyzeWithCache mutated the input graph")
	}
	// a: one miss (10); b: one hit (1) -> task [11, 11].
	if est.BCET != 11 || est.WCET != 11 {
		t.Fatalf("estimate [%g,%g], want [11,11]", est.BCET, est.WCET)
	}
	if cls == nil {
		t.Fatal("classification missing")
	}
}

func TestAnalyzeWithCacheUnclassifiedWidensInterval(t *testing.T) {
	// Diamond where only one arm warms line 0: the bottom access is
	// unclassified -> interval spans hit..miss.
	g := cfg.New()
	top := g.AddSimple("top", 0, 0)
	l := g.AddSimple("l", 0, 0)
	r := g.AddSimple("r", 0, 0)
	bot := g.AddSimple("bot", 0, 0)
	g.MustEdge(top, l)
	g.MustEdge(top, r)
	g.MustEdge(l, bot)
	g.MustEdge(r, bot)
	acc := cache.AccessMap{l: {0}, bot: {0}}
	est, _, err := AnalyzeWithCache(g, acc, model())
	if err != nil {
		t.Fatal(err)
	}
	// BCET path: top->r->bot with bot hit?? bot unclassified: best 1,
	// worst 10; r has no accesses. BCET = 0 + 0 + 1 = 1; WCET = left
	// path: 10 (miss in l) + 10 (worst bot) = 20.
	if est.BCET != 1 {
		t.Fatalf("BCET = %g, want 1", est.BCET)
	}
	if est.WCET != 20 {
		t.Fatalf("WCET = %g, want 20", est.WCET)
	}
}

func TestApplyCacheTimingValidation(t *testing.T) {
	if _, err := ApplyCacheTiming(nil, nil, model()); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, _, err := AnalyzeWithCache(nil, nil, model()); err == nil {
		t.Fatal("accepted nil graph")
	}
	g := cfg.New()
	g.AddSimple("a", 0, 0)
	m := model()
	m.HitCost = -1
	if _, err := ApplyCacheTiming(g, nil, m); err == nil {
		t.Fatal("accepted invalid model")
	}
}

// Property: the cache-aware WCET with a real (concrete) trace replay never
// exceeds the static WCET on straight-line programs: the static bound
// classifies conservatively.
func TestCacheTimingConservative(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m := model()
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(6)
		g := cfg.New()
		acc := make(cache.AccessMap)
		var prev cfg.BlockID = cfg.NoBlock
		var ids []cfg.BlockID
		for i := 0; i < n; i++ {
			id := g.AddSimple("", 0, 0)
			na := r.Intn(6)
			tr := make([]cache.Line, na)
			for j := range tr {
				tr[j] = cache.Line(r.Intn(10))
			}
			acc[id] = tr
			if prev != cfg.NoBlock {
				g.MustEdge(prev, id)
			}
			prev = id
			ids = append(ids, id)
		}
		est, _, err := AnalyzeWithCache(g, acc, m)
		if err != nil {
			t.Fatal(err)
		}
		// Concrete replay.
		sim, _ := cache.NewSim(m.Cache)
		var concrete float64
		for _, id := range ids {
			for _, l := range acc[id] {
				if sim.Access(l) {
					concrete += m.HitCost
				} else {
					concrete += m.MissCost
				}
			}
		}
		if concrete > est.WCET+1e-9 {
			t.Fatalf("trial %d: concrete time %g exceeds WCET %g", trial, concrete, est.WCET)
		}
		if concrete < est.BCET-1e-9 {
			t.Fatalf("trial %d: concrete time %g below BCET %g", trial, concrete, est.BCET)
		}
	}
}

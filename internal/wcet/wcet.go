// Package wcet estimates best- and worst-case execution times of tasks from
// their control-flow graphs. It is the substrate the paper assumes in
// Section IV ("such values can be produced by standard WCET estimation
// tools"): per-block execution intervals go in, task-level [BCET, WCET]
// bounds and per-block timing data come out.
//
// The implementation is path-based on loop-collapsed graphs: the same
// breadth-first interval propagation as the offset analysis, which on a DAG
// amounts to shortest/longest path. For small graphs an exhaustive path
// enumerator provides an independent cross-check used by the test suite.
package wcet

import (
	"errors"
	"fmt"
	"math"

	"fnpr/internal/cfg"
)

// Estimate holds a task-level execution-time estimate.
type Estimate struct {
	// BCET and WCET bound the isolated execution time of the task.
	BCET, WCET float64
	// Offsets is the per-block start-offset analysis the estimate was
	// derived from (on the loop-collapsed graph).
	Offsets *cfg.Offsets
	// Collapsed relates the analysed graph back to the original.
	Collapsed *cfg.Collapsed
}

// Analyze computes the execution-time estimate of a task given its (possibly
// cyclic) control-flow graph. Loops are collapsed using g.LoopBounds.
func Analyze(g *cfg.Graph) (*Estimate, error) {
	if g == nil {
		return nil, errors.New("wcet: nil graph")
	}
	col, err := g.CollapseLoops()
	if err != nil {
		return nil, err
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		return nil, err
	}
	return &Estimate{BCET: off.BCET, WCET: off.WCET, Offsets: off, Collapsed: col}, nil
}

// Path is one source-to-exit path through a graph, by block ID.
type Path []cfg.BlockID

// Time returns the path's [min, max] execution time.
func (p Path) Time(g *cfg.Graph) (emin, emax float64) {
	for _, b := range p {
		blk := g.Block(b)
		emin += blk.EMin
		emax += blk.EMax
	}
	return emin, emax
}

// maxPaths caps exhaustive enumeration.
const maxPaths = 1 << 20

// EnumeratePaths lists every entry-to-exit path of an acyclic graph, up to
// maxPaths (an error is returned beyond that). Intended for cross-checking
// the DAG analysis on small graphs.
func EnumeratePaths(g *cfg.Graph) ([]Path, error) {
	if g == nil {
		return nil, errors.New("wcet: nil graph")
	}
	if !g.IsAcyclic() {
		return nil, errors.New("wcet: path enumeration requires an acyclic graph")
	}
	var out []Path
	var cur Path
	var walk func(cfg.BlockID) error
	walk = func(b cfg.BlockID) error {
		cur = append(cur, b)
		defer func() { cur = cur[:len(cur)-1] }()
		if len(g.Succs(b)) == 0 {
			if len(out) >= maxPaths {
				return fmt.Errorf("wcet: more than %d paths", maxPaths)
			}
			out = append(out, append(Path(nil), cur...))
			return nil
		}
		for _, s := range g.Succs(b) {
			if err := walk(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(g.Entry()); err != nil {
		return nil, err
	}
	return out, nil
}

// ExhaustiveBounds computes [BCET, WCET] by enumerating all paths — an
// independent oracle for the DAG analysis, usable only on small acyclic
// graphs.
func ExhaustiveBounds(g *cfg.Graph) (bcet, wcet float64, err error) {
	paths, err := EnumeratePaths(g)
	if err != nil {
		return 0, 0, err
	}
	if len(paths) == 0 {
		return 0, 0, errors.New("wcet: no paths")
	}
	bcet, wcet = math.Inf(1), math.Inf(-1)
	for _, p := range paths {
		lo, hi := p.Time(g)
		bcet = math.Min(bcet, lo)
		wcet = math.Max(wcet, hi)
	}
	return bcet, wcet, nil
}

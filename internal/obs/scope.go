package obs

import (
	"sync"
	"time"
)

// EventType enumerates the progress events of the batch runtime. The values
// are the wire/JSON names.
type EventType string

// The progress-event vocabulary: one SweepStarted / SweepFinished pair per
// sweep, one SweepResumed when a resume view restored at least one point, and
// per grid point the degradation-ladder transitions PointRetried (a primary
// attempt failed and another follows), PointDegraded (primary exhausted,
// Equation 4 fallback used), PointQuarantined (fallback failed too) and
// PointDone (the point completed — cleanly, degraded or quarantined).
//
// Empirical campaigns (sharded acceptance-ratio and Monte-Carlo runs) use
// their own triple: one CampaignStarted / CampaignFinished pair per campaign
// and one CampaignPoint per fully aggregated grid point. Spec names the
// campaign, Q carries the point's utilization, Completed/Total count trials.
const (
	SweepStarted     EventType = "SweepStarted"
	SweepResumed     EventType = "SweepResumed"
	PointDone        EventType = "PointDone"
	PointRetried     EventType = "PointRetried"
	PointDegraded    EventType = "PointDegraded"
	PointQuarantined EventType = "PointQuarantined"
	SweepFinished    EventType = "SweepFinished"

	CampaignStarted  EventType = "CampaignStarted"
	CampaignResumed  EventType = "CampaignResumed"
	CampaignPoint    EventType = "CampaignPoint"
	CampaignFinished EventType = "CampaignFinished"
)

// Event is one structured progress record. Fields beyond Type are populated
// when meaningful: Spec/Q identify a grid point, Attempt counts primary
// attempts spent so far, Code carries the machine-readable failure class,
// Completed/Total summarise sweep-level events, Restored counts resume hits,
// and Err holds the human-readable error text.
type Event struct {
	Type      EventType `json:"type"`
	Spec      string    `json:"spec,omitempty"`
	Q         float64   `json:"q,omitempty"`
	Attempt   int       `json:"attempt,omitempty"`
	Code      string    `json:"code,omitempty"`
	Completed int       `json:"completed,omitempty"`
	Total     int       `json:"total,omitempty"`
	Restored  int       `json:"restored,omitempty"`
	Err       string    `json:"err,omitempty"`
}

// Sink receives progress events. Observe must be safe for concurrent use:
// the sweep pool emits from every worker.
type Sink interface {
	Observe(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Observe implements Sink.
func (f SinkFunc) Observe(e Event) { f(e) }

// maxSpans bounds the in-memory span log per scope; beyond it spans still
// feed their duration histograms but are not individually retained.
const maxSpans = 4096

// SpanRecord is one finished span: a name, the wall-clock start and the
// monotonic duration.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// Scope is the handle the analysis stack threads through: a registry for
// metrics, subscribed event sinks and a bounded span log. guard.Ctx carries
// one, so everything below a guarded entry point reports into the same tree.
// The nil Scope is valid everywhere and collects nothing.
type Scope struct {
	reg   *Registry
	sinks []Sink

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewScope returns a scope recording into reg (nil means the process-global
// Default registry) with the given event sinks subscribed.
func NewScope(reg *Registry, sinks ...Sink) *Scope {
	if reg == nil {
		reg = Default()
	}
	return &Scope{reg: reg, sinks: sinks}
}

// Registry returns the scope's registry; nil on a nil scope.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter resolves a named counter in the scope's registry; nil (discard) on
// a nil scope. Resolve once per analysis, not per loop iteration.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name)
}

// Gauge resolves a named gauge; nil on a nil scope.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name)
}

// Histogram resolves a named histogram; nil on a nil scope.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name)
}

// Emit delivers e to every subscribed sink, in subscription order, on the
// caller's goroutine; a no-op on a nil scope.
func (s *Scope) Emit(e Event) {
	if s == nil {
		return
	}
	for _, sink := range s.sinks {
		sink.Observe(e)
	}
}

// Span starts a span. The returned Span carries the wall-clock start and, via
// time.Time's monotonic reading, a drift-free duration; see Span.End.
func (s *Scope) Span(name string) Span {
	return Span{scope: s, name: name, start: time.Now()}
}

// Span is one in-flight timed region. The zero Span (from a nil scope) is
// valid and End on it is a no-op.
type Span struct {
	scope *Scope
	name  string
	start time.Time
}

// End finishes the span: the monotonic duration is observed into the
// histogram "span.<name>.ns" and the record appended to the scope's bounded
// span log. It returns the duration (0 for the zero Span).
func (sp Span) End() time.Duration {
	if sp.scope == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.scope.reg.Histogram("span." + sp.name + ".ns").Observe(d.Nanoseconds())
	sp.scope.mu.Lock()
	if len(sp.scope.spans) < maxSpans {
		sp.scope.spans = append(sp.scope.spans, SpanRecord{Name: sp.name, Start: sp.start, Duration: d})
	} else {
		sp.scope.dropped++
	}
	sp.scope.mu.Unlock()
	return d
}

// Spans returns a copy of the finished-span log (at most maxSpans records;
// the rest only feed the histograms).
func (s *Scope) Spans() []SpanRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanRecord, len(s.spans))
	copy(out, s.spans)
	return out
}

// Package obs is the observability layer of the analysis stack: atomic
// counters, gauges and histograms in a Registry, lightweight span tracing
// with wall-clock timestamps and monotonic durations, and a structured
// progress-event stream that sinks subscribe to. It is dependency-free
// (standard library only) and sits below every analysis package: guard
// carries a *Scope, so core, delay, retry, journal, eval and the commands
// all report into one tree.
//
// Design constraints, in order:
//
//  1. A nil *Scope, *Counter, *Gauge or *Histogram is valid everywhere and
//     means "not collecting": every method is a nil-check away from free, so
//     un-instrumented runs pay nothing and instrumented hot loops stay
//     allocation-free (resolve the instrument once per analysis, accumulate
//     locally, flush once at the end).
//  2. Everything is safe for concurrent use — the guarded sweep pool hammers
//     one Registry from every worker.
//  3. The process-global registry (Default) is a convenience, not a
//     requirement: tests inject their own Registry through a Scope
//     (TestRecorder) and assert on it in isolation.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// discards adds.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; a no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one; a no-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 — a last-written-value instrument
// for levels and sizes. The nil Gauge discards sets.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; a no-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by v; a no-op on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0
// and bucket i holds 2^(i-1) <= v < 2^i. 64 buckets cover every non-negative
// int64 (nanosecond durations up to ~292 years).
const histBuckets = 64

// Histogram is a fixed power-of-two-bucket histogram of non-negative int64
// observations (durations in nanoseconds, sizes, counts). The nil Histogram
// discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v (negative values are clamped to 0); a no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a concurrent name → instrument table. Instruments are created
// on first use and live for the registry's lifetime; looking one up never
// allocates after creation, so per-analysis resolution is cheap enough for
// the sweep hot path. The nil Registry hands out nil instruments.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-global registry the commands snapshot at
// exit; see Default.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Package-level instrumentation
// (delay's kernel counters, journal's durability counters) reports here;
// scoped instrumentation goes wherever the Scope's registry points, which for
// the commands is also here — one tree.
func Default() *Registry { return defaultRegistry }

// enabled gates the per-query package-level counters of hot kernels (see
// Enabled): a single shared read-mostly atomic, so the disabled path costs
// one uncontended load.
var enabled atomic.Bool

// Enable turns on the package-level hot-path counters (delay's per-query
// kernel accounting). The commands call it when -metrics or -debug-addr is
// given; it is never turned off.
func Enable() { enabled.Store(true) }

// Enabled reports whether hot-path package-level instrumentation is
// collecting. Low-frequency instrumentation (per-point, per-append) ignores
// it and always collects.
func Enabled() bool { return enabled.Load() }

// Counter returns the named counter, creating it on first use; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use; nil on a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram: totals plus the
// non-empty power-of-two buckets keyed by their upper bound (2^i; the "0"
// bucket holds exact zeros).
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, the unit the -metrics flag
// serialises. Maps are plain values so encoding/json renders them with sorted
// keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state; empty on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n != 0 {
				if hs.Buckets == nil {
					hs.Buckets = map[string]int64{}
				}
				// Bucket i > 0 covers [2^(i-1), 2^i); key it by its
				// exclusive upper bound, the zero bucket by "0".
				bound := "0"
				if i > 0 {
					bound = fmt.Sprintf("%d", uint64(1)<<uint(i))
				}
				hs.Buckets[bound] = n
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteTable renders the snapshot as a human-readable text table: counters,
// gauges and histogram summaries, each section sorted by name.
func (s Snapshot) WriteTable(w io.Writer) error {
	section := func(title string, names []string, row func(name string) string) error {
		if len(names) == 0 {
			return nil
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "%s:\n", title); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  %-44s %s\n", name, row(name)); err != nil {
				return err
			}
		}
		return nil
	}
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	if err := section("counters", names, func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	if err := section("gauges", names, func(n string) string {
		return fmt.Sprintf("%g", s.Gauges[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	return section("histograms", names, func(n string) string {
		h := s.Histograms[n]
		return fmt.Sprintf("count=%d sum=%d mean=%.1f max=%d", h.Count, h.Sum, h.Mean(), h.Max)
	})
}

package obs

import "sync"

// TestRecorder is the assertion harness tests attach to an analysis: a
// private Registry (isolated from the process-global one) plus a sink that
// retains every emitted event. Pass Scope() wherever a *Scope is accepted,
// run the code under test, then assert on Counter/Events/CountEvents — e.g.
// the chaos suite asserts that exactly N retries fired and that a
// quarantined point emitted exactly one PointQuarantined event.
type TestRecorder struct {
	reg   *Registry
	scope *Scope

	mu     sync.Mutex
	events []Event
}

// NewTestRecorder returns a recorder with a fresh private registry.
func NewTestRecorder() *TestRecorder {
	r := &TestRecorder{reg: NewRegistry()}
	r.scope = NewScope(r.reg, r)
	return r
}

// Observe implements Sink, retaining the event.
func (r *TestRecorder) Observe(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Scope returns the scope to inject into the code under test.
func (r *TestRecorder) Scope() *Scope { return r.scope }

// Registry returns the recorder's private registry.
func (r *TestRecorder) Registry() *Registry { return r.reg }

// Counter returns the named counter's current value (0 when never touched).
func (r *TestRecorder) Counter(name string) int64 {
	return r.reg.Counter(name).Value()
}

// Events returns a copy of every event observed so far, in emission order.
func (r *TestRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// CountEvents returns how many events of the given type were observed.
func (r *TestRecorder) CountEvents(t EventType) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// FilterEvents returns the observed events of the given type, in order.
func (r *TestRecorder) FilterEvents(t EventType) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the core contract: every instrument and the scope are
// fully usable as nil, collecting nothing.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge retained a value")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram retained observations")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out a live instrument")
	}
	var s *Scope
	if s.Counter("x") != nil || s.Registry() != nil {
		t.Fatal("nil scope handed out a live instrument")
	}
	s.Emit(Event{Type: PointDone})
	if d := s.Span("noop").End(); d != 0 {
		t.Fatalf("nil scope span measured %v", d)
	}
	if s.Spans() != nil {
		t.Fatal("nil scope has spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestRegistryInstruments: get-or-create identity, values, snapshot.
func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.alg1.iterations")
	if c != r.Counter("core.alg1.iterations") {
		t.Fatal("counter identity not stable across lookups")
	}
	c.Add(41)
	c.Inc()
	r.Gauge("pool.workers").Set(8)
	r.Gauge("pool.workers").Add(-3)
	h := r.Histogram("point.ns")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1500)
	h.Observe(-7) // clamped to 0

	s := r.Snapshot()
	if s.Counters["core.alg1.iterations"] != 42 {
		t.Fatalf("counter = %d, want 42", s.Counters["core.alg1.iterations"])
	}
	if s.Gauges["pool.workers"] != 5 {
		t.Fatalf("gauge = %g, want 5", s.Gauges["pool.workers"])
	}
	hs := s.Histograms["point.ns"]
	if hs.Count != 4 || hs.Sum != 1501 || hs.Max != 1500 {
		t.Fatalf("histogram = %+v, want count 4 sum 1501 max 1500", hs)
	}
	// Buckets: two zeros, one v=1 (bucket "2"), one v=1500 in [1024,2048).
	if hs.Buckets["0"] != 2 || hs.Buckets["2"] != 1 || hs.Buckets["2048"] != 1 {
		t.Fatalf("buckets = %v", hs.Buckets)
	}
	if hs.Mean() != 1501.0/4 {
		t.Fatalf("mean = %g", hs.Mean())
	}
}

// TestSnapshotSerialization: the snapshot marshals to JSON and renders as a
// table without error.
func TestSnapshotSerialization(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	r.Gauge("c.d").Set(2.5)
	r.Histogram("e.f").Observe(100)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.b"] != 7 || back.Gauges["c.d"] != 2.5 || back.Histograms["e.f"].Count != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	var b strings.Builder
	if err := s.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.b", "7", "c.d", "2.5", "e.f", "count=1"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}

// TestScopeEventsAndSpans: sinks receive events in order; spans feed the
// duration histogram and the span log.
func TestScopeEventsAndSpans(t *testing.T) {
	rec := NewTestRecorder()
	s := rec.Scope()
	s.Emit(Event{Type: SweepStarted, Total: 4})
	s.Emit(Event{Type: PointDone, Spec: "g1", Q: 20})
	sp := s.Span("sweep")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if got := rec.CountEvents(PointDone); got != 1 {
		t.Fatalf("PointDone events = %d, want 1", got)
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Type != SweepStarted || evs[1].Spec != "g1" {
		t.Fatalf("events = %+v", evs)
	}
	spans := s.Spans()
	if len(spans) != 1 || spans[0].Name != "sweep" || spans[0].Duration <= 0 {
		t.Fatalf("spans = %+v", spans)
	}
	if rec.Registry().Histogram("span.sweep.ns").Count() != 1 {
		t.Fatal("span histogram not observed")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// sweep-pool sharing pattern — under the race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("obs").Observe(int64(i))
				// Exercise the create path concurrently too.
				r.Counter("shared").Add(0)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("obs").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestDebugServer: /debug/vars serves the registry snapshot under "fnpr" and
// /debug/pprof/ responds.
func TestDebugServer(t *testing.T) {
	Default().Counter("test.debug.counter").Add(9)
	srv, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars struct {
		Fnpr Snapshot `json:"fnpr"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshaling /debug/vars: %v\n%s", err, body)
	}
	if vars.Fnpr.Counters["test.debug.counter"] < 9 {
		t.Fatalf("expvar snapshot missing counter: %+v", vars.Fnpr.Counters)
	}
	resp2, err := http.Get("http://" + srv.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", resp2.StatusCode)
	}
}

package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests may start more than one debug server.
var publishOnce sync.Once

// publishExpvar exposes the registry under the expvar name "fnpr", so the
// standard /debug/vars page (and anything that scrapes it) sees the same
// snapshot the -metrics flag dumps.
func publishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("fnpr", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// DebugServer is a running diagnostics HTTP server; see StartDebugServer.
type DebugServer struct {
	// Addr is the bound listen address (with the real port when the caller
	// asked for :0).
	Addr string
	srv  *http.Server
}

// DebugMux returns the diagnostics mux — /debug/vars (expvar, including the
// registry snapshot under "fnpr") and /debug/pprof/* — for mounting into a
// larger server (the analysis service mounts it on its main listener). The
// registry defaults to Default() when nil.
func DebugMux(r *Registry) *http.ServeMux {
	if r == nil {
		r = Default()
	}
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves the DebugMux on its own listener at addr, for
// watching a long sweep from outside the process. It returns once the
// listener is bound; the server runs until Close. The registry defaults to
// Default() when nil.
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln)
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }

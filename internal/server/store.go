package server

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fnpr/internal/fsfault"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
)

// The durable job store: a WAL-style manifest under the server's -data-dir
// that records every campaign submission and each of its state transitions
// (queued → running → done | failed) as checksummed journal records, fsynced
// per record — when the submit endpoint acks 202, the job exists on disk.
//
// The manifest reuses internal/journal's record format (one "job:<id>" key
// per job, last write winning), so the same torn-tail/corruption salvage that
// protects campaign checkpoints protects the job ledger: a kill -9 mid-append
// costs at most the record being written, never the file.
//
// On startup the server replays the manifest: jobs whose last record is
// terminal (done/failed) are re-registered with their persisted result or
// error, and jobs that were queued or running when the process died are
// automatically re-enqueued with resume semantics — their checkpoint journal
// replays the completed points and determinism recomputes the rest, so the
// final table is byte-identical to an uninterrupted run.

// manifestName is the job ledger's file name inside the data directory;
// jobJournalDir holds the per-job campaign checkpoint journals.
const (
	manifestName  = "jobs.manifest"
	jobJournalDir = "journals"
)

// jobRecord is the wire form of one manifest entry — the full durable state
// of a job at one transition. Terminal records carry the result or error;
// earlier fields are repeated on every transition so a single (latest)
// record reconstructs the job.
type jobRecord struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Fingerprint string          `json:"fp"`
	IdemKey     string          `json:"idem,omitempty"`
	// Params is the submission's wire-form request body; recovery rebuilds
	// the campaign by re-decoding it exactly as the handler did.
	Params json.RawMessage `json:"params,omitempty"`
	// Journal is the campaign checkpoint journal path; Resume records
	// whether the submission itself asked for resume semantics.
	Journal string `json:"journal,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
	// TimeoutNS and Budget are the job's guard limits, preserved across
	// recovery so a resumed job runs under the caps it was admitted with.
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
	Budget    int64 `json:"budget,omitempty"`
	// Terminal-state payload.
	Error    string          `json:"error,omitempty"`
	Code     string          `json:"code,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Finished int64           `json:"finished,omitempty"` // unix nanoseconds
}

// terminal reports whether the record's state needs no further work.
func (r jobRecord) terminal() bool { return r.State == jobDone || r.State == jobFailed }

// store is the open job manifest plus the directory layout around it.
type store struct {
	dir      string
	manifest *journal.Journal

	closeOnce sync.Once
	closeErr  error
}

// openStore opens (or initialises) the job store under dir and returns the
// latest record of every job it holds, sorted by job ID. The manifest is a
// write-ahead log: every append is fsynced before the caller proceeds
// (journal.Options.SyncEvery = 1), so an acked submission survives kill -9.
func openStore(dir string, fs fsfault.FS) (*store, []jobRecord, error) {
	fs = fsfault.Real(fs)
	if err := fs.MkdirAll(filepath.Join(dir, jobJournalDir), 0o755); err != nil {
		return nil, nil, guard.Storagef(err, "server: creating data dir %s", dir)
	}
	m, recs, err := journal.OpenWith(filepath.Join(dir, manifestName),
		journal.Options{SyncEvery: 1, FS: fs})
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening job manifest: %w", err)
	}
	latest := journal.Latest(recs)
	jobs := make([]jobRecord, 0, len(latest))
	for key, raw := range latest {
		if !strings.HasPrefix(key, "job:") {
			continue
		}
		var r jobRecord
		if err := json.Unmarshal(raw, &r); err != nil || r.ID == "" {
			// The line passed its checksum, so this is a format drift, not
			// corruption; skip the record rather than refuse to start.
			continue
		}
		if r.State == jobEvicted {
			// Tombstone: the job was evicted from the registry; don't
			// resurrect it.
			continue
		}
		jobs = append(jobs, r)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	return &store{dir: dir, manifest: m}, jobs, nil
}

// record appends one job state transition; the manifest's per-record sync
// policy makes it durable before return. Errors are typed guard.ErrStorage.
func (st *store) record(r jobRecord) error {
	return st.manifest.Append("job:"+r.ID, r)
}

// journalPath returns the campaign checkpoint journal path the store assigns
// to a job that did not name its own.
func (st *store) journalPath(id string) string {
	return filepath.Join(st.dir, jobJournalDir, id+".journal")
}

// Close closes the manifest. Idempotent: both Shutdown and Close may reach
// it on overlapping teardown paths.
func (st *store) Close() error {
	if st == nil {
		return nil
	}
	st.closeOnce.Do(func() { st.closeErr = st.manifest.Close() })
	return st.closeErr
}

// seqOf extracts the numeric suffix of a "job-NNNNNN" ID (0 if foreign), so
// a restarted server continues the ID sequence past everything recovered.
func seqOf(id string) int64 {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

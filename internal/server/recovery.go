package server

import (
	"encoding/json"
	"time"

	"fnpr/internal/eval"
	"fnpr/internal/guard"
)

// Startup recovery: replay the durable job store into the in-memory
// registry. Terminal jobs (done/failed) are re-registered with their
// persisted result or error so clients can still poll them after a restart
// (counter server.jobs.reloaded). Jobs that were queued or running when the
// previous process died left no terminal record — they are rebuilt from
// their persisted parameters and re-enqueued with resume semantics (counter
// server.jobs.recovered): the checkpoint journal replays the points already
// computed and campaign determinism recomputes the rest, so the final table
// is byte-identical to an uninterrupted run. The state machine is documented
// in DESIGN.md §13.

// recoverStore opens the job store (when DataDir is configured) and replays
// it. Called from Start before the worker pool and listener come up, so
// every recovered job is registered before the first request can land.
func (s *Server) recoverStore() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	st, recs, err := openStore(s.cfg.DataDir, s.cfg.FS)
	if err != nil {
		return err
	}
	var pending []*job
	s.mu.Lock()
	s.store = st
	for _, r := range recs {
		if n := seqOf(r.ID); n > s.jobSeq {
			s.jobSeq = n
		}
		j := s.jobFromRecord(r)
		s.jobs[j.id] = j
		if j.idemKey != "" {
			s.idem[j.idemKey] = j.id
		}
		if r.terminal() {
			s.sc.Counter("server.jobs.reloaded").Inc()
			continue
		}
		s.sc.Counter("server.jobs.recovered").Inc()
		pending = append(pending, j)
	}
	s.mu.Unlock()
	if len(pending) > 0 {
		go s.enqueueRecovered(pending)
	}
	return nil
}

// jobFromRecord rebuilds a job from its latest manifest record. Terminal
// records carry their payload verbatim (the result is re-served as raw
// JSON); interrupted records get their campaign re-decoded from the
// persisted submission parameters and are marked for resume. A record whose
// parameters no longer decode (e.g. a manifest written by a newer build)
// re-registers as failed rather than being dropped silently.
func (s *Server) jobFromRecord(r jobRecord) *job {
	j := &job{
		id: r.ID, kind: r.Kind,
		fingerprint: r.Fingerprint, idemKey: r.IdemKey,
		params: r.Params, journalPath: r.Journal,
		timeout: time.Duration(r.TimeoutNS), budget: r.Budget,
		recovered: true,
		done:      make(chan struct{}),
	}
	if j.timeout <= 0 {
		j.timeout = s.cfg.MaxTimeout
	}
	if j.budget <= 0 {
		j.budget = s.cfg.CampaignBudget
	}
	finished := time.Now()
	if r.Finished > 0 {
		finished = time.Unix(0, r.Finished)
	}
	if r.terminal() {
		j.state = r.State
		j.errText, j.code = r.Error, r.Code
		if len(r.Result) > 0 {
			j.result = r.Result
		}
		j.finished = finished
		close(j.done)
		return j
	}
	camp, err := s.rebuildCampaign(r.Kind, r.Params)
	if err != nil {
		j.state = jobFailed
		j.finished = finished
		j.err = guard.Invalidf("server: recovering job %s: %v", r.ID, err)
		close(j.done)
		s.persist(j)
		return j
	}
	j.camp = camp
	j.state = jobQueued
	// Resume from the checkpoint journal regardless of what the original
	// submission asked: the journal holds exactly this job's completed
	// points (fresh submissions truncated any stale file before running).
	j.resume = j.journalPath != ""
	return j
}

// enqueueRecovered feeds recovered jobs back into the worker queue. Recovered
// jobs can outnumber the queue capacity, so each send is a non-blocking
// attempt under mu (never a blocking send that could race close(queue)),
// retried until a worker frees a slot. If the server begins draining first,
// the remaining jobs simply stay queued in memory — their manifest records
// are still non-terminal, so the next startup recovers them again.
func (s *Server) enqueueRecovered(jobs []*job) {
	for _, j := range jobs {
		for {
			s.mu.Lock()
			if s.qclosed {
				s.mu.Unlock()
				return
			}
			select {
			case s.queue <- j:
				s.sc.Gauge("server.queue.depth").Add(1)
				s.mu.Unlock()
			default:
				s.mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				continue
			}
			break
		}
	}
}

// rebuildCampaign re-decodes a persisted submission body into its campaign,
// exactly as the original handler did (defaults, strict decoding,
// validation). The journal/resume fields inside the body are ignored — the
// manifest record's Journal path is authoritative for recovery.
func (s *Server) rebuildCampaign(kind string, params json.RawMessage) (eval.Campaign, error) {
	switch kind {
	case "acceptance":
		p, _, _, err := s.acceptanceFromJSON(params)
		return p, err
	case "montecarlo":
		p, err := s.monteCarloFromJSON(params)
		return p, err
	case "atlas":
		p, err := s.atlasFromJSON(params)
		return p, err
	}
	return nil, guard.Invalidf("server: unknown campaign kind %q in job store", kind)
}

package server

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"

	"fnpr/internal/eval"
	"fnpr/internal/guard"
)

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps err onto the service's typed error contract: the HTTP status
// from guard.HTTPStatus (parallel to the CLI exit-code contract), a JSON
// body {"error": ..., "code": ...} whose code is the same machine-readable
// failure vocabulary the sweep journal uses (eval.ReasonOf), and — on 429 —
// a Retry-After header, because an admission rejection means "nothing was
// started, try again shortly", not "give up".
func writeErr(w http.ResponseWriter, err error) {
	status := guard.HTTPStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{
		"error": err.Error(),
		"code":  eval.ReasonOf(err).String(),
	})
}

// fail is writeErr plus the server-side accounting that belongs to failures
// rather than endpoints (recovered analysis panics).
func (s *Server) fail(w http.ResponseWriter, err error) {
	if errors.Is(err, guard.ErrPanic) {
		s.sc.Counter("server.panics_recovered").Inc()
	}
	writeErr(w, err)
}

// jsonNum makes a float JSON-safe: encoding/json refuses non-finite values,
// so ±Inf and NaN become the strings the sweep wire format already uses.
func jsonNum(v float64) any {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return v
	}
}

// retryAfterSeconds is exposed for tests asserting the 429 contract.
func retryAfterSeconds(h http.Header) (int, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

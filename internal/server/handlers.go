package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"fnpr/internal/core"
	"fnpr/internal/eval"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/spec"
)

// routes builds the service mux. Method+pattern routing is Go 1.22
// ServeMux; the debug tree (expvar + pprof) is the same mux the -debug-addr
// flag serves stand-alone.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.Handle("POST /v1/analyzeset", s.instrument("analyzeset", s.handleAnalyzeSet))
	mux.Handle("POST /v1/campaign/acceptance", s.instrument("campaign", s.handleCampaignAcceptance))
	mux.Handle("POST /v1/campaign/montecarlo", s.instrument("campaign", s.handleCampaignMonteCarlo))
	mux.Handle("POST /v1/campaign/atlas", s.instrument("campaign", s.handleCampaignAtlas))
	mux.Handle("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJob))
	mux.Handle("/debug/", obs.DebugMux(s.cfg.Registry))
	return mux
}

// handleHealthz is liveness: the process is up and serving. It stays 200
// during drain — the process is alive; readiness is what flips.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is readiness: 200 only while the server admits work. It goes
// 503 the moment a drain begins, so load balancers stop routing before the
// admission paths start answering 429.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// decodeJSON strictly decodes a request body; unknown fields are invalid
// input (400), catching typoed parameters instead of silently defaulting.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return guard.Invalidf("server: decoding request body: %v", err)
	}
	return nil
}

// readBody reads a bounded request body. Campaign handlers read the raw
// bytes (rather than streaming into the decoder) because the submission body
// is also the job's durable parameter record — recovery re-decodes the same
// bytes through the same path.
func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, guard.Invalidf("server: reading request body: %v", err)
	}
	return data, nil
}

// decodeStrict is decodeJSON over raw bytes, shared by the live handlers and
// startup recovery.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return guard.Invalidf("server: decoding request body: %v", err)
	}
	return nil
}

// reqGuard builds the per-request guard scope: the wall-clock deadline comes
// from ?timeout= clamped by the server maximum, the step budget from
// ?budget= clamped by the endpoint default (itself clamped by MaxBudget).
// The cancel func must be deferred by the caller.
func (s *Server) reqGuard(r *http.Request, defBudget int64) (*guard.Ctx, context.CancelFunc, error) {
	timeout := s.cfg.MaxTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, guard.Invalidf("server: bad timeout %q (want a positive duration like 5s)", v)
		}
		if d < timeout {
			timeout = d
		}
	}
	budget := defBudget
	if v := r.URL.Query().Get("budget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return nil, nil, guard.Invalidf("server: bad budget %q (want a positive step count)", v)
		}
		if n < budget {
			budget = n
		}
	}
	ctx, cancel := context.WithCancel(r.Context())
	g := guard.New(ctx).WithTimeout(timeout).WithBudget(budget).WithObs(s.sc)
	return g, cancel, nil
}

// jobLimits derives a campaign job's wall-clock and budget limits from the
// same query parameters, clamped by the campaign defaults.
func (s *Server) jobLimits(r *http.Request) (time.Duration, int64, error) {
	timeout := s.cfg.MaxTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return 0, 0, guard.Invalidf("server: bad timeout %q (want a positive duration like 5s)", v)
		}
		if d < timeout {
			timeout = d
		}
	}
	budget := s.cfg.CampaignBudget
	if v := r.URL.Query().Get("budget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return 0, 0, guard.Invalidf("server: bad budget %q (want a positive step count)", v)
		}
		if n < budget {
			budget = n
		}
	}
	return timeout, budget, nil
}

// admitAnalyze is the synchronous endpoints' admission check: draining or a
// saturated concurrency limit refuses immediately with ErrOverload. The
// release func is non-nil exactly when admission succeeded.
func (s *Server) admitAnalyze() (func(), error) {
	if s.draining.Load() || !s.ready.Load() {
		s.sc.Counter("server.shed").Inc()
		return nil, guard.Overloadf("server: draining, not admitting requests")
	}
	select {
	case s.analyzeSem <- struct{}{}:
		s.sc.Counter("server.admitted").Inc()
		return func() { <-s.analyzeSem }, nil
	default:
		s.sc.Counter("server.rejected").Inc()
		return nil, guard.Overloadf("server: analyze concurrency limit (%d) saturated", cap(s.analyzeSem))
	}
}

// analyzeRequest is the wire form of one core.Analyze call.
type analyzeRequest struct {
	// Delay is the function description (internal/spec vocabulary:
	// constant, frontloaded, piecewise, linear, gaussian).
	Delay *spec.Delay `json:"delay"`
	// C is the function's domain (the task's WCET); Q the floating
	// non-preemptive region length.
	C float64 `json:"c"`
	Q float64 `json:"q"`
	// Method is "algorithm1" (default) or "equation4".
	Method string `json:"method,omitempty"`
	// Limited applies the preemption-count refinement (Algorithm 1 only).
	Limited        bool `json:"limited,omitempty"`
	MaxPreemptions int  `json:"max_preemptions,omitempty"`
	// Solver is "auto" (default), "monotone" or "cutting"; results are
	// bit-identical for every value (the solver only changes how many
	// fixpoint iterations the bound costs).
	Solver string `json:"solver,omitempty"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	release, err := s.admitAnalyze()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()
	var req analyzeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.Delay == nil {
		s.fail(w, guard.Invalidf("server: missing delay function"))
		return
	}
	var method core.Method
	switch req.Method {
	case "", "algorithm1":
		method = core.Algorithm1
	case "equation4":
		method = core.Equation4
	default:
		s.fail(w, guard.Invalidf("server: unknown method %q (want algorithm1 or equation4)", req.Method))
		return
	}
	solver, err := core.ParseSolver(req.Solver)
	if err != nil {
		s.fail(w, err)
		return
	}
	fn, err := req.Delay.Build(req.C)
	if err != nil {
		s.fail(w, guard.Invalidf("server: %v", err))
		return
	}
	g, cancel, err := s.reqGuard(r, s.cfg.AnalyzeBudget)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	if s.cfg.WrapDelay != nil {
		fn = s.cfg.WrapDelay(fn, g, cancel)
	}
	res, err := guard.Run(g, "analyze", func() (core.Result, error) {
		return core.Analyze(g, fn, req.Q, core.Options{
			Method: method, Limited: req.Limited, MaxPreemptions: req.MaxPreemptions,
			Memo: s.memo, Solver: solver,
		})
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := map[string]any{
		"total_delay": jsonNum(res.TotalDelay),
		"preemptions": res.Preemptions,
		"diverged":    res.Diverged,
		"steps":       g.Steps(),
	}
	// Advisory, present only on a hit: a cold cache-enabled response stays
	// byte-identical to an uncached one.
	if res.Cached {
		resp["cached"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// analyzeSetRequest is the wire form of one eval.AnalyzeSet call: a task-set
// specification (the schedtest JSON format) and an optional Q grid.
type analyzeSetRequest struct {
	Spec spec.File `json:"spec"`
	// Qs is the Q grid; empty selects eval.DefaultQGrid().
	Qs []float64 `json:"qs,omitempty"`
	// Delta opts into incremental analysis against the server's result
	// cache (requires -cache): per-task interference terms whose
	// (function, Q) identity is unchanged since an earlier request are
	// reused instead of recomputed, and the response reports the
	// "recomputed"/"reused" split. Values are bit-identical either way.
	Delta bool `json:"delta,omitempty"`
	// Solver is "auto" (default), "monotone" or "cutting"; results are
	// bit-identical for every value.
	Solver string `json:"solver,omitempty"`
}

func (s *Server) handleAnalyzeSet(w http.ResponseWriter, r *http.Request) {
	release, err := s.admitAnalyze()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()
	var req analyzeSetRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	prob, err := req.Spec.Build()
	if err != nil {
		s.fail(w, guard.Invalidf("server: %v", err))
		return
	}
	qs := req.Qs
	if len(qs) == 0 {
		qs = eval.DefaultQGrid()
	}
	if req.Delta && s.memo == nil {
		s.fail(w, guard.Invalidf("server: delta mode requires the result cache (start with -cache)"))
		return
	}
	solver, err := core.ParseSolver(req.Solver)
	if err != nil {
		s.fail(w, err)
		return
	}
	g, cancel, err := s.reqGuard(r, s.cfg.AnalyzeBudget)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	opts := eval.SweepOptions{Qs: qs, Obs: s.sc, Solver: solver}
	if req.Delta {
		opts.Memo = s.memo
	}
	res, err := guard.Run(g, "analyzeset", func() ([]eval.SweepResult, error) {
		return eval.AnalyzeSet(g, prob.Tasks, prob.Delay, opts)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := map[string]any{
		"policy":  prob.Policy,
		"qs":      qs,
		"results": res,
		"steps":   g.Steps(),
	}
	if req.Delta {
		// Mirror the sweep.analyzeset.{reused,recomputed} counters: only
		// analyzed terms count — tasks without a delay function have
		// nothing to compute, and undone (quarantined) points decided
		// nothing.
		var reused, recomputed int
		for i, r := range res {
			if i < len(prob.Delay) && prob.Delay[i] == nil {
				continue
			}
			for _, pt := range r.Points {
				if !pt.Done {
					continue
				}
				if pt.Cached {
					reused++
				} else {
					recomputed++
				}
			}
		}
		resp["reused"] = reused
		resp["recomputed"] = recomputed
	}
	writeJSON(w, http.StatusOK, resp)
}

// acceptanceRequest is the wire form of an acceptance-campaign submission.
// Omitted fields keep the eval.DefaultAcceptanceParams values.
type acceptanceRequest struct {
	Seed         int64   `json:"seed"`
	SetsPerPoint int     `json:"sets_per_point"`
	Tasks        int     `json:"tasks"`
	UStart       float64 `json:"u_start"`
	UEnd         float64 `json:"u_end"`
	UStep        float64 `json:"u_step"`
	DelayScale   float64 `json:"delay_scale"`
	QFraction    float64 `json:"q_fraction"`
	Workers      int     `json:"workers,omitempty"`
	// Journal names a checkpoint journal inside the server's -journal-dir
	// (a bare file name, no path separators); Resume restores the points it
	// already holds. Requires the server to run with a journal directory.
	Journal string `json:"journal,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
}

// acceptanceFromJSON decodes a submission body (live request or persisted
// manifest record) into validated acceptance parameters, plus the journal
// name and resume flag the body asked for.
func (s *Server) acceptanceFromJSON(body []byte) (eval.AcceptanceParams, string, bool, error) {
	d := eval.DefaultAcceptanceParams()
	req := acceptanceRequest{
		Seed: d.Seed, SetsPerPoint: d.SetsPerPoint, Tasks: d.Tasks,
		UStart: d.UStart, UEnd: d.UEnd, UStep: d.UStep,
		DelayScale: d.DelayScale, QFraction: d.QFraction,
	}
	if err := decodeStrict(body, &req); err != nil {
		return eval.AcceptanceParams{}, "", false, err
	}
	p := eval.AcceptanceParams{
		Seed: req.Seed, SetsPerPoint: req.SetsPerPoint, Tasks: req.Tasks,
		UStart: req.UStart, UEnd: req.UEnd, UStep: req.UStep,
		DelayScale: req.DelayScale, QFraction: req.QFraction,
		Workers: req.Workers, Obs: s.sc,
	}
	if err := p.Validate(); err != nil {
		return eval.AcceptanceParams{}, "", false, err
	}
	return p, req.Journal, req.Resume, nil
}

func (s *Server) handleCampaignAcceptance(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	p, name, resume, err := s.acceptanceFromJSON(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	journalPath, err := s.journalPath(name, resume)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.submitCampaign(w, r, p, body, journalPath, resume)
}

// monteCarloRequest is the wire form of a Monte-Carlo campaign submission.
// Omitted fields keep the eval.DefaultMonteCarloParams values.
type monteCarloRequest struct {
	Seed     int64   `json:"seed"`
	Trials   int     `json:"trials"`
	MaxTasks int     `json:"max_tasks"`
	Horizon  float64 `json:"horizon"`
	Workers  int     `json:"workers,omitempty"`
}

// monteCarloFromJSON decodes a submission body (live request or persisted
// manifest record) into validated Monte-Carlo parameters.
func (s *Server) monteCarloFromJSON(body []byte) (eval.MonteCarloParams, error) {
	d := eval.DefaultMonteCarloParams()
	req := monteCarloRequest{
		Seed: d.Seed, Trials: d.Trials, MaxTasks: d.MaxTasks, Horizon: d.Horizon,
	}
	if err := decodeStrict(body, &req); err != nil {
		return eval.MonteCarloParams{}, err
	}
	p := eval.MonteCarloParams{
		Seed: req.Seed, Trials: req.Trials, MaxTasks: req.MaxTasks,
		Horizon: req.Horizon, Workers: req.Workers, Obs: s.sc,
	}
	if err := p.Validate(); err != nil {
		return eval.MonteCarloParams{}, err
	}
	return p, nil
}

func (s *Server) handleCampaignMonteCarlo(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	p, err := s.monteCarloFromJSON(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.submitCampaign(w, r, p, body, "", false)
}

// atlasRequest is the wire form of a pessimism-atlas campaign submission.
// Omitted fields keep the eval.DefaultAtlasParams values.
type atlasRequest struct {
	Seed         int64     `json:"seed"`
	Qs           []float64 `json:"qs,omitempty"`
	FuncsPerCell int       `json:"funcs_per_cell"`
	C            float64   `json:"c"`
	MaxStates    int       `json:"max_states,omitempty"`
	Workers      int       `json:"workers,omitempty"`
}

// atlasFromJSON decodes a submission body (live request or persisted
// manifest record) into validated atlas parameters.
func (s *Server) atlasFromJSON(body []byte) (eval.AtlasParams, error) {
	d := eval.DefaultAtlasParams()
	req := atlasRequest{
		Seed: d.Seed, Qs: d.Qs, FuncsPerCell: d.FuncsPerCell, C: d.C,
	}
	if err := decodeStrict(body, &req); err != nil {
		return eval.AtlasParams{}, err
	}
	p := eval.AtlasParams{
		Seed: req.Seed, Qs: req.Qs, FuncsPerCell: req.FuncsPerCell, C: req.C,
		MaxStates: req.MaxStates, Workers: req.Workers, Obs: s.sc,
	}
	if err := p.Validate(); err != nil {
		return eval.AtlasParams{}, err
	}
	return p, nil
}

func (s *Server) handleCampaignAtlas(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	p, err := s.atlasFromJSON(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.submitCampaign(w, r, p, body, "", false)
}

// journalPath resolves and sanitizes a client-supplied journal name: a bare
// file name inside the configured journal directory, nothing else — path
// separators and dot-dot are invalid input, and any journal request against
// a server without a journal directory is refused.
func (s *Server) journalPath(name string, resume bool) (string, error) {
	if name == "" {
		if resume {
			return "", guard.Invalidf("server: resume requires a journal name")
		}
		return "", nil
	}
	if s.cfg.JournalDir == "" {
		return "", guard.Invalidf("server: journaled campaigns disabled (no journal directory configured)")
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", guard.Invalidf("server: journal name %q must be a bare file name", name)
	}
	return filepath.Join(s.cfg.JournalDir, name), nil
}

// submitCampaign builds the job, runs admission control and answers 202 with
// the job's polling URL — or 429 immediately when the queue refuses it. An
// Idempotency-Key header that matches a previous submission with identical
// result-determining parameters answers 200 with the existing job instead of
// starting a duplicate (deduplicated: true), which is how clients safely
// retry a submit whose ack they never saw (crash inside the ack window).
func (s *Server) submitCampaign(w http.ResponseWriter, r *http.Request, camp eval.Campaign, body []byte, journalPath string, resume bool) {
	timeout, budget, err := s.jobLimits(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	j := &job{
		kind: camp.Kind(), camp: camp,
		fingerprint: camp.Fingerprint(),
		idemKey:     r.Header.Get("Idempotency-Key"),
		params:      json.RawMessage(body),
		journalPath: journalPath, resume: resume,
		timeout: timeout, budget: budget,
	}
	if err := s.submit(j); err != nil {
		s.fail(w, err)
		return
	}
	if prev := j.existing; prev != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"id":           prev.id,
			"kind":         prev.kind,
			"status":       "/v1/jobs/" + prev.id,
			"deduplicated": true,
		})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     j.id,
		"kind":   j.kind,
		"status": "/v1/jobs/" + j.id,
	})
}

// handleJobs lists every registered job (newest last) in summary form —
// state, fingerprint, recovered-or-not, error code — without result
// payloads; poll /v1/jobs/{id} for those. After a restart this is the
// operator's view of what the store recovered.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.summary())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool {
		if a, b := seqOf(views[i].ID), seqOf(views[k].ID); a != b {
			return a < b
		}
		return views[i].ID < views[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "count": len(views)})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobByID(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("unknown job %q", id),
			"code":  "invalid",
		})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

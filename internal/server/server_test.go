package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fnpr/internal/obs"
)

// newTestServer starts a server on an ephemeral port with its own registry
// and returns it with its base URL. Closed on test cleanup.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{Addr: "127.0.0.1:0", Registry: obs.NewRegistry()}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + s.Addr()
}

// doJSON posts body (marshaled) and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, resp.Header, out
}

// analyzeBody is a well-formed /v1/analyze request used across the tests.
func analyzeBody(q float64, c float64) map[string]any {
	return map[string]any{
		"delay": map[string]any{"kind": "frontloaded", "peak": 3, "tail": 0.5},
		"c":     c,
		"q":     q,
	}
}

// waitJob polls the job until it leaves the queued/running states.
func waitJob(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, _, v := doJSON(t, "GET", base+"/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("job %s: status %d", id, status)
		}
		switch v["state"] {
		case "done", "failed":
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func TestHealthAndReady(t *testing.T) {
	_, base := newTestServer(t, nil)
	if st, _, v := doJSON(t, "GET", base+"/healthz", nil); st != 200 || v["status"] != "ok" {
		t.Fatalf("healthz: %d %v", st, v)
	}
	if st, _, v := doJSON(t, "GET", base+"/readyz", nil); st != 200 || v["status"] != "ready" {
		t.Fatalf("readyz: %d %v", st, v)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	_, base := newTestServer(t, nil)

	st, _, v := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	if st != 200 {
		t.Fatalf("analyze: status %d body %v", st, v)
	}
	if td, ok := v["total_delay"].(float64); !ok || td <= 0 {
		t.Fatalf("analyze: total_delay %v, want > 0", v["total_delay"])
	}
	if v["diverged"] != false {
		t.Fatalf("analyze: diverged %v", v["diverged"])
	}

	// Equation 4 on the same input: at least as pessimistic as Algorithm 1.
	b4 := analyzeBody(15, 40)
	b4["method"] = "equation4"
	st4, _, v4 := doJSON(t, "POST", base+"/v1/analyze", b4)
	if st4 != 200 {
		t.Fatalf("analyze eq4: status %d body %v", st4, v4)
	}
	if v4["total_delay"].(float64) < v["total_delay"].(float64) {
		t.Fatalf("equation4 bound %v below algorithm1 %v", v4["total_delay"], v["total_delay"])
	}
}

// TestAnalyzeErrorMapping pins the typed error contract over HTTP: invalid
// input 400, budget 422, deadline 504, each with its machine-readable code.
func TestAnalyzeErrorMapping(t *testing.T) {
	_, base := newTestServer(t, nil)
	cases := []struct {
		name   string
		url    string
		body   any
		status int
		code   string
	}{
		{"bad-json-field", "/v1/analyze", map[string]any{"nope": 1}, 400, "invalid"},
		{"missing-delay", "/v1/analyze", map[string]any{"c": 40, "q": 15}, 400, "invalid"},
		{"bad-method", "/v1/analyze", func() any {
			b := analyzeBody(15, 40)
			b["method"] = "magic"
			return b
		}(), 400, "invalid"},
		{"bad-timeout-param", "/v1/analyze?timeout=yesterday", analyzeBody(15, 40), 400, "invalid"},
		{"budget-exhausted", "/v1/analyze?budget=2", analyzeBody(15, 10000), 422, "budget"},
		{"deadline", "/v1/analyze?timeout=1ns", analyzeBody(15, 10000), 504, "canceled"},
		{"diverged-is-200", "/v1/analyze", analyzeBody(2, 40), 200, ""}, // Q <= peak: +Inf bound, still an answer
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			st, _, v := doJSON(t, "POST", base+c.url, c.body)
			if st != c.status {
				t.Fatalf("status %d, want %d (body %v)", st, c.status, v)
			}
			if c.code != "" && v["code"] != c.code {
				t.Fatalf("code %v, want %q (body %v)", v["code"], c.code, v)
			}
			if c.name == "diverged-is-200" {
				if v["diverged"] != true || v["total_delay"] != "+Inf" {
					t.Fatalf("divergent analysis: %v", v)
				}
			}
		})
	}
}

func TestAnalyzeSetEndpoint(t *testing.T) {
	_, base := newTestServer(t, nil)
	body := map[string]any{
		"spec": map[string]any{
			"policy": "fp",
			"tasks": []any{
				map[string]any{"name": "hi", "c": 5, "t": 100, "q": 5, "prio": 0},
				map[string]any{"name": "lo", "c": 40, "t": 400, "q": 6, "prio": 1,
					"delay": map[string]any{"kind": "frontloaded", "peak": 3, "tail": 0.5}},
			},
		},
		"qs": []float64{15, 20, 30},
	}
	st, _, v := doJSON(t, "POST", base+"/v1/analyzeset", body)
	if st != 200 {
		t.Fatalf("analyzeset: status %d body %v", st, v)
	}
	results, ok := v["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("analyzeset: results %v, want 2 curves", v["results"])
	}
}

func TestCampaignJobs(t *testing.T) {
	_, base := newTestServer(t, nil)

	st, _, v := doJSON(t, "POST", base+"/v1/campaign/acceptance", map[string]any{
		"sets_per_point": 5, "tasks": 3, "u_start": 0.5, "u_end": 0.6, "u_step": 0.1,
	})
	if st != http.StatusAccepted {
		t.Fatalf("acceptance submit: status %d body %v", st, v)
	}
	id, _ := v["id"].(string)
	if !strings.HasPrefix(id, "job-") {
		t.Fatalf("acceptance submit: id %v", v["id"])
	}
	job := waitJob(t, base, id)
	if job["state"] != "done" {
		t.Fatalf("acceptance job: %v", job)
	}
	if _, ok := job["result"].(map[string]any); !ok {
		t.Fatalf("acceptance job result: %v", job["result"])
	}

	st, _, v = doJSON(t, "POST", base+"/v1/campaign/montecarlo", map[string]any{
		"trials": 20, "max_tasks": 3, "horizon": 200,
	})
	if st != http.StatusAccepted {
		t.Fatalf("montecarlo submit: status %d body %v", st, v)
	}
	job = waitJob(t, base, v["id"].(string))
	if job["state"] != "done" {
		t.Fatalf("montecarlo job: %v", job)
	}
	rep := job["result"].(map[string]any)
	if rep["violations"] != float64(0) {
		t.Fatalf("montecarlo violations: %v", rep)
	}

	st, _, v = doJSON(t, "POST", base+"/v1/campaign/atlas", map[string]any{
		"seed": 3, "qs": []float64{4, 8}, "funcs_per_cell": 4, "c": 30,
	})
	if st != http.StatusAccepted {
		t.Fatalf("atlas submit: status %d body %v", st, v)
	}
	job = waitJob(t, base, v["id"].(string))
	if job["state"] != "done" || job["kind"] != "atlas" {
		t.Fatalf("atlas job: %v", job)
	}
	if _, ok := job["result"].(map[string]any); !ok {
		t.Fatalf("atlas job result: %v", job["result"])
	}

	// Validation failures are refused at submit time, not queued.
	if st, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", map[string]any{"trials": -1}); st != 400 || v["code"] != "invalid" {
		t.Fatalf("invalid campaign: %d %v", st, v)
	}
	// Atlas validation: Q at or above C is invalid input.
	if st, _, v := doJSON(t, "POST", base+"/v1/campaign/atlas", map[string]any{"qs": []float64{50}, "c": 30}); st != 400 || v["code"] != "invalid" {
		t.Fatalf("invalid atlas campaign: %d %v", st, v)
	}
	// Journal requests against a server without a journal dir are invalid.
	if st, _, _ := doJSON(t, "POST", base+"/v1/campaign/acceptance", map[string]any{"journal": "a.j"}); st != 400 {
		t.Fatalf("journal without dir: status %d", st)
	}
	// Unknown jobs are 404.
	if st, _, _ := doJSON(t, "GET", base+"/v1/jobs/job-999999", nil); st != 404 {
		t.Fatalf("unknown job: status %d", st)
	}
}

// TestJobsListing pins GET /v1/jobs on an ordinary (non-durable) server:
// every submitted job appears in ID order with state, kind and fingerprint,
// no result payloads, and no recovery provenance (nothing was recovered).
func TestJobsListing(t *testing.T) {
	_, base := newTestServer(t, nil)
	var ids []string
	for i := 0; i < 2; i++ {
		st, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", map[string]any{
			"trials": 20, "max_tasks": 3, "horizon": 200,
		})
		if st != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, st, v)
		}
		ids = append(ids, v["id"].(string))
	}
	for _, id := range ids {
		waitJob(t, base, id)
	}
	st, _, list := doJSON(t, "GET", base+"/v1/jobs", nil)
	if st != http.StatusOK || list["count"] != float64(2) {
		t.Fatalf("listing: %d %v", st, list)
	}
	jobs := list["jobs"].([]any)
	for i, raw := range jobs {
		e := raw.(map[string]any)
		if e["id"] != ids[i] {
			t.Fatalf("listing order: entry %d is %v, want %s", i, e["id"], ids[i])
		}
		if e["state"] != "done" || e["kind"] != "montecarlo" {
			t.Fatalf("listing entry: %v", e)
		}
		if fp, _ := e["fingerprint"].(string); len(fp) != 32 {
			t.Fatalf("listing fingerprint: %v", e["fingerprint"])
		}
		if _, ok := e["result"]; ok {
			t.Fatalf("listing carries result payload: %v", e)
		}
		if _, ok := e["recovered"]; ok {
			t.Fatalf("non-recovered job marked recovered: %v", e)
		}
	}
	// Both campaigns had identical parameters: identical fingerprints.
	a := jobs[0].(map[string]any)["fingerprint"]
	b := jobs[1].(map[string]any)["fingerprint"]
	if a != b {
		t.Fatalf("equal campaigns, different fingerprints: %v vs %v", a, b)
	}
}

func TestDebugMuxMounted(t *testing.T) {
	_, base := newTestServer(t, nil)
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(raw), "fnpr") {
		t.Fatalf("/debug/vars: %d\n%s", resp.StatusCode, raw)
	}
}

// TestDrainLifecycle walks the state machine: ready → draining (readyz 503,
// admissions 429+Retry-After, polls still served) → stopped, with a running
// campaign canceled at the drain deadline and its journal checkpoints kept —
// then a second server resumes the journal and reproduces the uninterrupted
// result byte-identically.
func TestDrainLifecycle(t *testing.T) {
	dir := t.TempDir()
	campaign := map[string]any{
		"sets_per_point": 1500, "tasks": 3,
		"u_start": 0.5, "u_end": 0.9, "u_step": 0.1,
		"workers": 1, "journal": "acc.journal",
	}

	// Reference: the same campaign, uninterrupted, no journal.
	_, refBase := newTestServer(t, nil)
	ref := map[string]any{}
	for k, v := range campaign {
		ref[k] = v
	}
	delete(ref, "journal")
	_, _, v := doJSON(t, "POST", refBase+"/v1/campaign/acceptance", ref)
	refJob := waitJob(t, refBase, v["id"].(string))
	refJSON, err := json.Marshal(refJob["result"])
	if err != nil {
		t.Fatal(err)
	}

	s, base := newTestServer(t, func(c *Config) {
		c.JournalDir = dir
		c.DrainTimeout = 50 * time.Millisecond
	})
	st, _, v := doJSON(t, "POST", base+"/v1/campaign/acceptance", campaign)
	if st != http.StatusAccepted {
		t.Fatalf("submit: %d %v", st, v)
	}
	id := v["id"].(string)

	// Wait for the first checkpoint so the drain provably interrupts a
	// campaign that has durable progress.
	jpath := filepath.Join(dir, "acc.journal")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if raw, err := os.ReadFile(jpath); err == nil && strings.Contains(string(raw), "accpoint:") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never checkpointed a point")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown() }()

	// During the drain the server still answers: readyz 503, admission 429
	// with Retry-After, job polls 200.
	readyzSeen, analyze429 := false, false
	for i := 0; i < 200 && !(readyzSeen && analyze429); i++ {
		if st, _, _ := doJSON(t, "GET", base+"/readyz", nil); st == http.StatusServiceUnavailable {
			readyzSeen = true
		}
		st, hdr, _ := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
		if st == http.StatusTooManyRequests {
			if _, ok := retryAfterSeconds(hdr); !ok {
				t.Fatal("429 without Retry-After")
			}
			analyze429 = true
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !readyzSeen || !analyze429 {
		t.Fatalf("drain observability: readyz503=%v analyze429=%v", readyzSeen, analyze429)
	}
	// The interrupted job failed with the cancellation code; its journal
	// kept the completed checkpoints.
	ij, ok := s.jobByID(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	jv := ij.view()
	if jv.State != jobFailed || jv.Code != "canceled" {
		t.Fatalf("interrupted job: %+v", jv)
	}

	// Resume on a fresh server: byte-identical result, restored points > 0.
	reg2 := obs.NewRegistry()
	_, base2 := newTestServer(t, func(c *Config) {
		c.JournalDir = dir
		c.Registry = reg2
	})
	resume := map[string]any{}
	for k, v := range campaign {
		resume[k] = v
	}
	resume["resume"] = true
	st, _, v = doJSON(t, "POST", base2+"/v1/campaign/acceptance", resume)
	if st != http.StatusAccepted {
		t.Fatalf("resume submit: %d %v", st, v)
	}
	job := waitJob(t, base2, v["id"].(string))
	if job["state"] != "done" {
		t.Fatalf("resumed job: %v", job)
	}
	gotJSON, err := json.Marshal(job["result"])
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("resumed result differs from uninterrupted run\nref: %s\ngot: %s", refJSON, gotJSON)
	}
	if n := reg2.Counter("campaign.points.restored").Value(); n < 1 {
		t.Fatalf("campaign.points.restored = %d, want >= 1", n)
	}
}

// TestJournalNameSanitized pins the path-traversal guard on client-supplied
// journal names.
func TestJournalNameSanitized(t *testing.T) {
	_, base := newTestServer(t, func(c *Config) { c.JournalDir = t.TempDir() })
	for _, name := range []string{"../../etc/passwd", "a/b.j", ".hidden", "..", "/abs"} {
		st, _, v := doJSON(t, "POST", base+"/v1/campaign/acceptance", map[string]any{"journal": name})
		if st != 400 {
			t.Fatalf("journal %q: status %d %v, want 400", name, st, v)
		}
	}
	// resume without a journal name is invalid too
	if st, _, _ := doJSON(t, "POST", base+"/v1/campaign/acceptance", map[string]any{"resume": true}); st != 400 {
		t.Fatalf("resume without journal: want 400, got %d", st)
	}
}

// TestHandlerPanicContained pins per-request panic isolation at the
// middleware layer (the outermost barrier; the analysis has its own
// guard.Run underneath).
func TestHandlerPanicContained(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := newTestServer(t, func(c *Config) { c.Registry = reg })
	s.mux.Handle("GET /boom2", s.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	st, _, v := doJSON(t, "GET", base+"/boom2", nil)
	if st != 500 || v["code"] != "panic" {
		t.Fatalf("panicking handler: %d %v", st, v)
	}
	if n := reg.Counter("server.panics_recovered").Value(); n != 1 {
		t.Fatalf("panics_recovered = %d, want 1", n)
	}
	// The server survived and serves the next request normally.
	if st, _, _ := doJSON(t, "GET", base+"/healthz", nil); st != 200 {
		t.Fatalf("healthz after panic: %d", st)
	}
	if st, _, body := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40)); st != 200 {
		t.Fatalf("analyze after panic: %d %v", st, body)
	}
}

// TestRequestMetrics pins the per-endpoint instrumentation names the
// dashboards scrape.
func TestRequestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, base := newTestServer(t, func(c *Config) { c.Registry = reg })
	doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	doJSON(t, "POST", base+"/v1/analyze", map[string]any{"nope": 1})
	if n := reg.Counter("server.analyze.requests").Value(); n != 2 {
		t.Fatalf("analyze.requests = %d, want 2", n)
	}
	if n := reg.Counter("server.analyze.status.2xx").Value(); n != 1 {
		t.Fatalf("analyze.status.2xx = %d, want 1", n)
	}
	if n := reg.Counter("server.analyze.status.4xx").Value(); n != 1 {
		t.Fatalf("analyze.status.4xx = %d, want 1", n)
	}
	if n := reg.Histogram("server.analyze.latency_ns").Count(); n != 2 {
		t.Fatalf("analyze.latency_ns count = %d, want 2", n)
	}
	if g := reg.Gauge("server.analyze.inflight").Value(); g != 0 {
		t.Fatalf("analyze.inflight = %g, want 0 at rest", g)
	}
	if fmt.Sprint(reg.Gauge("server.queue.capacity").Value()) != fmt.Sprint(float64(DefaultQueueCap)) {
		t.Fatalf("queue.capacity = %g", reg.Gauge("server.queue.capacity").Value())
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fnpr/internal/fsfault"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

// mcBody is a small, fast Monte-Carlo campaign used across the store tests.
func mcBody() map[string]any {
	return map[string]any{"trials": 20, "max_tasks": 3, "horizon": 200}
}

// doJSONH is doJSON with request headers.
func doJSONH(t *testing.T, method, url string, body any, hdr map[string]string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestDurableReloadAcrossRestart is the store's terminal-job contract: a
// finished job survives a restart with its result byte-identical, marked
// recovered, visible in the listing, and counted as reloaded (not resumed).
func TestDurableReloadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, base1 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	st, _, v := doJSON(t, "POST", base1+"/v1/campaign/montecarlo", mcBody())
	if st != http.StatusAccepted {
		t.Fatalf("submit: %d %v", st, v)
	}
	id := v["id"].(string)
	ref := waitJob(t, base1, id)
	refJSON, _ := json.Marshal(ref["result"])
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	reg := obs.NewRegistry()
	_, base2 := newTestServer(t, func(c *Config) { c.DataDir = dir; c.Registry = reg })
	if n := reg.Counter("server.jobs.reloaded").Value(); n != 1 {
		t.Fatalf("server.jobs.reloaded = %d, want 1", n)
	}
	if n := reg.Counter("server.jobs.recovered").Value(); n != 0 {
		t.Fatalf("server.jobs.recovered = %d, want 0 (job was terminal)", n)
	}
	st, _, got := doJSON(t, "GET", base2+"/v1/jobs/"+id, nil)
	if st != http.StatusOK || got["state"] != "done" {
		t.Fatalf("reloaded job: %d %v", st, got)
	}
	if got["recovered"] != true {
		t.Fatalf("reloaded job not marked recovered: %v", got)
	}
	gotJSON, _ := json.Marshal(got["result"])
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("reloaded result differs\nref: %s\ngot: %s", refJSON, gotJSON)
	}

	// The listing shows it with state, fingerprint and recovery provenance.
	st, _, list := doJSON(t, "GET", base2+"/v1/jobs", nil)
	if st != http.StatusOK || list["count"] != float64(1) {
		t.Fatalf("listing: %d %v", st, list)
	}
	entry := list["jobs"].([]any)[0].(map[string]any)
	if entry["id"] != id || entry["state"] != "done" || entry["recovered"] != true {
		t.Fatalf("listing entry: %v", entry)
	}
	if fp, _ := entry["fingerprint"].(string); len(fp) != 32 {
		t.Fatalf("listing fingerprint: %q", entry["fingerprint"])
	}
	if _, ok := entry["result"]; ok {
		t.Fatalf("listing must not carry result payloads: %v", entry)
	}
}

// TestDurableAutoResume is the interrupted-job contract: a job whose last
// manifest record is non-terminal (the process died with it queued or
// running) is rebuilt from its persisted parameters on startup, re-enqueued,
// runs to completion, and produces exactly the result an uninterrupted
// submission would — and the ID sequence continues past it.
func TestDurableAutoResume(t *testing.T) {
	// Reference result from an ordinary server.
	_, refBase := newTestServer(t, nil)
	_, _, rv := doJSON(t, "POST", refBase+"/v1/campaign/montecarlo", mcBody())
	refJSON, _ := json.Marshal(waitJob(t, refBase, rv["id"].(string))["result"])

	// Hand-craft the crash leftover: a manifest whose only job never reached
	// a terminal state.
	dir := t.TempDir()
	params, _ := json.Marshal(mcBody())
	st, _, err := openStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.record(jobRecord{
		ID: "job-000007", Kind: "montecarlo", State: jobRunning,
		Fingerprint: "whatever", Params: params,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, base := newTestServer(t, func(c *Config) { c.DataDir = dir; c.Registry = reg })
	if n := reg.Counter("server.jobs.recovered").Value(); n != 1 {
		t.Fatalf("server.jobs.recovered = %d, want 1", n)
	}
	got := waitJob(t, base, "job-000007")
	if got["state"] != "done" || got["recovered"] != true {
		t.Fatalf("auto-resumed job: %v", got)
	}
	gotJSON, _ := json.Marshal(got["result"])
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("auto-resumed result differs\nref: %s\ngot: %s", refJSON, gotJSON)
	}

	// New submissions continue the recovered ID sequence.
	_, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
	if v["id"] != "job-000008" {
		t.Fatalf("post-recovery id %v, want job-000008", v["id"])
	}
}

// TestDurableAcceptanceAutoJournal: on a durable server, an acceptance job
// that names no journal gets a checkpoint journal assigned under
// DataDir/journals automatically, so it is resumable after a crash.
func TestDurableAcceptanceAutoJournal(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestServer(t, func(c *Config) { c.DataDir = dir })
	st, _, v := doJSON(t, "POST", base+"/v1/campaign/acceptance", map[string]any{
		"sets_per_point": 5, "tasks": 3, "u_start": 0.5, "u_end": 0.6, "u_step": 0.1,
	})
	if st != http.StatusAccepted {
		t.Fatalf("submit: %d %v", st, v)
	}
	id := v["id"].(string)
	if got := waitJob(t, base, id); got["state"] != "done" {
		t.Fatalf("job: %v", got)
	}
	raw, err := os.ReadFile(filepath.Join(dir, jobJournalDir, id+".journal"))
	if err != nil {
		t.Fatalf("auto-assigned journal missing: %v", err)
	}
	if !bytes.Contains(raw, []byte("accpoint:")) {
		t.Fatalf("auto-assigned journal holds no checkpoints:\n%s", raw)
	}
}

// TestIdempotencyKey pins at-least-once submission safety: the same
// Idempotency-Key with the same parameters returns the existing job (200,
// deduplicated, no second campaign), a key reused with different parameters
// is invalid input, and the key index survives a restart.
func TestIdempotencyKey(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s1, base := newTestServer(t, func(c *Config) { c.DataDir = dir; c.Registry = reg })
	hdr := map[string]string{"Idempotency-Key": "retry-abc"}

	st, v := doJSONH(t, "POST", base+"/v1/campaign/montecarlo", mcBody(), hdr)
	if st != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", st, v)
	}
	id := v["id"].(string)

	st, v = doJSONH(t, "POST", base+"/v1/campaign/montecarlo", mcBody(), hdr)
	if st != http.StatusOK || v["deduplicated"] != true || v["id"] != id {
		t.Fatalf("idempotent retry: %d %v, want 200 deduplicated id=%s", st, v, id)
	}
	if n := reg.Counter("server.jobs.deduplicated").Value(); n != 1 {
		t.Fatalf("server.jobs.deduplicated = %d, want 1", n)
	}

	// Same key, different result-determining parameters: refused.
	other := mcBody()
	other["trials"] = 21
	st, v = doJSONH(t, "POST", base+"/v1/campaign/montecarlo", other, hdr)
	if st != http.StatusBadRequest || v["code"] != "invalid" {
		t.Fatalf("conflicting idempotent submit: %d %v, want 400 invalid", st, v)
	}

	waitJob(t, base, id)
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// After a restart the key still resolves to the (reloaded) job — this is
	// what makes client retry loops safe across server crashes.
	_, base2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	st, v = doJSONH(t, "POST", base2+"/v1/campaign/montecarlo", mcBody(), hdr)
	if st != http.StatusOK || v["deduplicated"] != true || v["id"] != id {
		t.Fatalf("post-restart idempotent retry: %d %v", st, v)
	}
}

// TestJobEviction drives the registry past its cap and TTL and pins the
// eviction contract: oldest finished jobs go first, running jobs never go,
// evicted jobs answer 404, the counter advances, and a tombstoned job does
// not come back after a restart.
func TestJobEviction(t *testing.T) {
	t.Run("max-count", func(t *testing.T) {
		dir := t.TempDir()
		reg := obs.NewRegistry()
		_, base := newTestServer(t, func(c *Config) {
			c.DataDir = dir
			c.Registry = reg
			c.MaxJobs = 2
			c.JobTTL = -1
		})
		var ids []string
		for i := 0; i < 3; i++ {
			st, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
			if st != http.StatusAccepted {
				t.Fatalf("submit %d: %d %v", i, st, v)
			}
			ids = append(ids, v["id"].(string))
			waitJob(t, base, ids[i])
		}
		// Admitting the 3rd job pushed the registry past MaxJobs=2; the
		// oldest finished job was evicted.
		if n := reg.Counter("server.jobs.evicted").Value(); n != 1 {
			t.Fatalf("server.jobs.evicted = %d, want 1", n)
		}
		if st, _, _ := doJSON(t, "GET", base+"/v1/jobs/"+ids[0], nil); st != http.StatusNotFound {
			t.Fatalf("evicted job %s: status %d, want 404", ids[0], st)
		}
		st, _, list := doJSON(t, "GET", base+"/v1/jobs", nil)
		if st != http.StatusOK || list["count"] != float64(2) {
			t.Fatalf("listing after eviction: %d %v", st, list)
		}

		// Tombstone: a restart recovers the survivors, not the evicted job.
		_, base2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
		if st, _, _ := doJSON(t, "GET", base2+"/v1/jobs/"+ids[0], nil); st != http.StatusNotFound {
			t.Fatalf("evicted job resurrected after restart")
		}
		if st, _, v := doJSON(t, "GET", base2+"/v1/jobs/"+ids[1], nil); st != http.StatusOK || v["state"] != "done" {
			t.Fatalf("surviving job after restart: %d %v", st, v)
		}
	})

	t.Run("ttl", func(t *testing.T) {
		reg := obs.NewRegistry()
		_, base := newTestServer(t, func(c *Config) {
			c.Registry = reg
			c.JobTTL = time.Millisecond
			c.MaxJobs = -1
		})
		_, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
		first := v["id"].(string)
		waitJob(t, base, first)
		time.Sleep(20 * time.Millisecond)
		// The next admission sweeps expired jobs.
		doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
		if n := reg.Counter("server.jobs.evicted").Value(); n != 1 {
			t.Fatalf("server.jobs.evicted = %d, want 1", n)
		}
		if st, _, _ := doJSON(t, "GET", base+"/v1/jobs/"+first, nil); st != http.StatusNotFound {
			t.Fatalf("TTL-expired job still served: %d", st)
		}
	})
}

// TestSubmitStorageFaultSurfaced injects manifest disk faults at submission
// time: the submit must answer 507 with code "storage" (typed
// guard.ErrStorage, never a silent ack of an unpersisted job), the job must
// not exist, and the server must keep serving afterwards.
func TestSubmitStorageFaultSurfaced(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan fsfault.Plan
	}{
		// Manifest writes: 1 = header at openStore; 2 = the submission's
		// record append. Its WAL fsync is sync 1.
		{"enospc-on-append", fsfault.Plan{FailWrite: 2}},
		{"eio-on-fsync", fsfault.Plan{FailSync: 1}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			in := fsfault.NewInjector(nil, tc.plan)
			reg := obs.NewRegistry()
			_, base := newTestServer(t, func(c *Config) {
				c.DataDir = t.TempDir()
				c.Registry = reg
				c.FS = in
			})
			st, _, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
			if st != http.StatusInsufficientStorage || v["code"] != "storage" {
				t.Fatalf("faulted submit: %d %v, want 507 storage", st, v)
			}
			if in.Fired() != 1 {
				t.Fatalf("injected %d faults, want 1", in.Fired())
			}
			if n := reg.Counter("server.store.errors").Value(); n != 1 {
				t.Fatalf("server.store.errors = %d, want 1", n)
			}
			// The refused job was never registered or queued...
			st, _, list := doJSON(t, "GET", base+"/v1/jobs", nil)
			if st != http.StatusOK || list["count"] != float64(0) {
				t.Fatalf("registry after faulted submit: %v", list)
			}
			// ...and the disk having recovered, the next submit succeeds.
			st, _, v = doJSON(t, "POST", base+"/v1/campaign/montecarlo", mcBody())
			if st != http.StatusAccepted {
				t.Fatalf("submit after fault: %d %v", st, v)
			}
			if got := waitJob(t, base, v["id"].(string)); got["state"] != "done" {
				t.Fatalf("job after fault: %v", got)
			}
		})
	}
}

// TestStoreOpenFaultFailsStartup: a manifest that cannot be read/salvaged at
// startup fails Start with a typed storage error instead of silently
// starting empty (which would orphan durable jobs).
func TestStoreOpenFaultFailsStartup(t *testing.T) {
	dir := t.TempDir()
	// Seed a manifest so startup must read it.
	st, _, err := openStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	params, _ := json.Marshal(mcBody())
	if err := st.record(jobRecord{ID: "job-000001", Kind: "montecarlo", State: jobQueued, Params: params}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Corrupt the tail so the open needs a salvage rewrite, and fault the
	// rewrite's temp-file write.
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, append(raw, "deadbeef {\"k\":\"torn"...), 0o644); err != nil {
		t.Fatal(err)
	}
	in := fsfault.NewInjector(nil, fsfault.Plan{FailWrite: 1})
	s := New(Config{Addr: "127.0.0.1:0", Registry: obs.NewRegistry(), DataDir: dir, FS: in})
	if err := s.Start(); !errors.Is(err, guard.ErrStorage) {
		if err == nil {
			s.Close()
		}
		t.Fatalf("Start on unsalvageable manifest: err %v, want guard.ErrStorage", err)
	}
}

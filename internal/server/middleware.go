package server

import (
	"fmt"
	"net/http"
	"time"

	"fnpr/internal/guard"
)

// statusRecorder captures the response status (and whether a header went
// out) for the per-endpoint metrics and the panic recovery path.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-endpoint observability
// (request/in-flight/latency/status-class metrics) and the per-request panic
// barrier: a panic escaping the handler is recovered, counted in
// server.panics_recovered and answered as a 500 with code "panic" — one
// request's programming error never takes the process down or leaks into
// another request.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	requests := s.sc.Counter("server." + name + ".requests")
	inflight := s.sc.Gauge("server." + name + ".inflight")
	latency := s.sc.Histogram("server." + name + ".latency_ns")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.sc.Counter("server.panics_recovered").Inc()
				if !rec.wrote {
					writeErr(rec, fmt.Errorf("handler %s: %w: %v", name, guard.ErrPanic, p))
				}
			}
			latency.Observe(time.Since(start).Nanoseconds())
			s.sc.Counter(fmt.Sprintf("server.%s.status.%dxx", name, rec.status/100)).Inc()
			inflight.Add(-1)
		}()
		h(rec, r)
	})
}

package server

import (
	"context"
	"net/http"
	"sync"
	"testing"

	"fnpr/internal/chaos"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

// TestChaosFaults drives the chaos injector through the server's WrapDelay
// seam: panics, budget burn and delayed cancellation inside a request's
// analysis must surface as that request's typed error — the right status and
// code, the panic counter moving — while the server stays up and other
// requests (including other grid points in the very same fault window) are
// untouched.
func TestChaosFaults(t *testing.T) {
	var (
		mu    sync.Mutex
		fault chaos.Fault
	)
	setFault := func(f chaos.Fault) {
		mu.Lock()
		fault = f
		mu.Unlock()
	}
	in := chaos.NewInjector(1)

	reg := obs.NewRegistry()
	_, base := newTestServer(t, func(c *Config) {
		c.Registry = reg
		c.WrapDelay = func(f delay.Function, g *guard.Ctx, cancel context.CancelFunc) delay.Function {
			mu.Lock()
			fa := fault
			mu.Unlock()
			// Burn and delayed cancel target this request's own scope.
			fa.Guard = g
			fa.Cancel = cancel
			return in.Wrap(f, fa)
		}
	})
	healthz := func(when string) {
		t.Helper()
		if st, _, _ := doJSON(t, "GET", base+"/healthz", nil); st != 200 {
			t.Fatalf("healthz after %s: %d — server did not survive the fault", when, st)
		}
	}

	// Targeted panic: only the request analyzing the faulted grid point dies.
	setFault(chaos.Fault{PanicAtQ: 15})
	st, _, v := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	if st != http.StatusInternalServerError || v["code"] != "panic" {
		t.Fatalf("faulted request: %d %v, want 500/panic", st, v)
	}
	if n := reg.Counter("server.panics_recovered").Value(); n != 1 {
		t.Fatalf("server.panics_recovered = %d, want 1", n)
	}
	// A different grid point under the SAME live fault: no contamination.
	if st, _, v := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(20, 40)); st != 200 {
		t.Fatalf("unfaulted grid point: %d %v, want 200", st, v)
	}
	healthz("panic")

	// Budget burn: every query charges the request's own budget, so the
	// analysis trips its step budget and the request reports 422/budget.
	setFault(chaos.Fault{Burn: 2 * DefaultAnalyzeBudget})
	st, _, v = doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	if st != http.StatusUnprocessableEntity || v["code"] != "budget" {
		t.Fatalf("burned request: %d %v, want 422/budget", st, v)
	}
	healthz("burn")

	// Delayed cancel: the first query cancels the request's context; the
	// long walk (c=10000 keeps it well past the amortized cancellation poll)
	// then observes it as a deadline-style abort, 504/canceled.
	setFault(chaos.Fault{CancelAfter: 1})
	st, _, v = doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 10000))
	if st != http.StatusGatewayTimeout || v["code"] != "canceled" {
		t.Fatalf("canceled request: %d %v, want 504/canceled", st, v)
	}
	healthz("cancel")

	// Faults cleared: the server serves normally again.
	setFault(chaos.Fault{})
	if st, _, v := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40)); st != 200 || v["diverged"] != false {
		t.Fatalf("post-chaos request: %d %v, want clean 200", st, v)
	}
	if n := reg.Counter("server.panics_recovered").Value(); n != 1 {
		t.Fatalf("server.panics_recovered moved to %d after the panic fault was cleared", n)
	}
	if in.Fired() < 2 {
		t.Fatalf("injector fired %d faults, want >= 2 (panic + cancel)", in.Fired())
	}
}

package server

import (
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"fnpr/internal/eval"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

// blockerCampaign is a test Campaign that parks its worker until released
// (or until the job's guard is canceled), making queue occupancy fully
// deterministic.
type blockerCampaign struct {
	release chan struct{}
}

var _ eval.Campaign = blockerCampaign{}

func (b blockerCampaign) Kind() string        { return "blocker" }
func (b blockerCampaign) Validate() error     { return nil }
func (b blockerCampaign) Fingerprint() string { return "blocker" }
func (b blockerCampaign) Run(g *guard.Ctx) (any, error) {
	select {
	case <-b.release:
		return "released", nil
	case <-g.Done():
		return nil, g.Err()
	}
}

// TestLoadShedding is the admission-control proof: with the worker pool
// pinned and the queue full, at least 4× queue capacity of concurrent
// campaign submissions are ALL answered immediately with 429 + Retry-After
// (accepted + rejected == submitted, with zero accepted), and after release
// and drain no goroutines leak.
func TestLoadShedding(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	const queueCap = 2
	s, base := newTestServer(t, func(c *Config) {
		c.Registry = reg
		c.QueueCap = queueCap
		c.Workers = 1
	})

	// Pin the worker, then fill the queue deterministically: one blocker
	// runs, queueCap blockers wait.
	release := make(chan struct{})
	if err := s.submit(&job{kind: "blocker", camp: blockerCampaign{release: release}}); err != nil {
		t.Fatalf("first blocker refused: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("server.jobs.running").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < queueCap; i++ {
		if err := s.submit(&job{kind: "blocker", camp: blockerCampaign{release: release}}); err != nil {
			t.Fatalf("queued blocker %d refused: %v", i, err)
		}
	}

	// 4× queue capacity concurrent submissions against the full queue.
	const submitted = 4 * (queueCap + 1)
	var (
		mu                 sync.Mutex
		accepted, rejected int
		slowest            time.Duration
	)
	var wg sync.WaitGroup
	for i := 0; i < submitted; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			st, hdr, v := doJSON(t, "POST", base+"/v1/campaign/montecarlo", map[string]any{"trials": 5})
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if elapsed > slowest {
				slowest = elapsed
			}
			switch st {
			case http.StatusAccepted:
				accepted++
			case http.StatusTooManyRequests:
				if _, ok := retryAfterSeconds(hdr); !ok {
					t.Errorf("429 without Retry-After header")
				}
				if v["code"] != "overload" {
					t.Errorf("429 code %v, want overload", v["code"])
				}
				rejected++
			default:
				t.Errorf("unexpected status %d (%v)", st, v)
			}
		}()
	}
	wg.Wait()
	if accepted+rejected != submitted {
		t.Fatalf("accepted %d + rejected %d != submitted %d", accepted, rejected, submitted)
	}
	if accepted != 0 {
		t.Fatalf("full queue accepted %d submissions", accepted)
	}
	// "Immediate" rejection: no submission waited on the queue. The bound is
	// generous for CI noise; a queued (not shed) request would block until
	// the blockers release, far beyond it.
	if slowest > 2*time.Second {
		t.Fatalf("slowest rejection took %v; admission control is queueing", slowest)
	}
	if n := reg.Counter("server.rejected").Value(); n != submitted {
		t.Fatalf("server.rejected = %d, want %d", n, submitted)
	}

	// Release the blockers and drain; the queued jobs finish.
	close(release)
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// No goroutine leak once the drain completes. Idle keep-alive client
	// connections hold their own goroutines; close them so only ours count.
	// Allow slack for test-runner background goroutines.
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d -> %d\n%s", before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

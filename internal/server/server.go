// Package server implements the analysis service behind cmd/serve: an
// HTTP/JSON front end over the analysis stack (core.Analyze, eval.AnalyzeSet
// and the empirical campaigns) hardened for unattended operation.
//
// Every request runs under its own guard scope — a wall-clock deadline and a
// step budget, both clamped by server-wide maxima — so no client can pin a
// worker forever. Long-running campaigns are asynchronous: the submit
// endpoint returns a job ID immediately and clients poll /v1/jobs/{id}.
// Admission control is explicit and immediate: a full campaign queue, a
// saturated analyze concurrency limit or a draining server answers 429 with
// a Retry-After header instead of queueing unboundedly (guard.ErrOverload;
// the request was never started, so retrying is always sound).
//
// Lifecycle: Start binds the listener only after the worker pool is up;
// /readyz flips to 503 the moment Shutdown begins. Shutdown drains — stop
// admitting, let in-flight campaigns finish (or, past the drain deadline,
// cancel them; journaled campaigns keep their per-point checkpoints and a
// -resume replays byte-identically) — then closes the HTTP side. Handler
// panics are contained per request (500 with code "panic"); the process
// stays up. Error mapping and the lifecycle state machine are documented in
// DESIGN.md §12.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/eval"
	"fnpr/internal/fsfault"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
)

// Defaults for the zero-value Config fields.
const (
	DefaultDrainTimeout   = 10 * time.Second
	DefaultMaxTimeout     = 30 * time.Second
	DefaultAnalyzeBudget  = 5_000_000
	DefaultCampaignBudget = 500_000_000
	DefaultQueueCap       = 8
	DefaultWorkers        = 2
	DefaultJobTTL         = time.Hour
	DefaultMaxJobs        = 1024
)

// Config configures the service. The zero value of every field selects a
// sensible default; Addr ":0" binds an ephemeral port (tests).
type Config struct {
	// Addr is the listen address.
	Addr string
	// DrainTimeout bounds Shutdown: campaigns still running when it expires
	// are canceled (their journals keep the completed checkpoints), and
	// in-flight HTTP requests are cut off.
	DrainTimeout time.Duration
	// MaxTimeout caps the per-request wall-clock deadline. Requests may ask
	// for less via ?timeout=, never for more.
	MaxTimeout time.Duration
	// MaxBudget caps the per-request step budget (?budget=); 0 means the
	// per-endpoint defaults are the caps.
	MaxBudget int64
	// AnalyzeBudget is the default step budget of the synchronous analysis
	// endpoints; CampaignBudget of the asynchronous campaign jobs.
	AnalyzeBudget  int64
	CampaignBudget int64
	// QueueCap bounds the campaign queue; a submit finding it full is
	// rejected immediately with 429.
	QueueCap int
	// Workers is the campaign worker pool size.
	Workers int
	// AnalyzeConcurrency caps concurrently running synchronous analyses;
	// <= 0 selects 2×GOMAXPROCS.
	AnalyzeConcurrency int
	// JournalDir, when non-empty, lets acceptance-campaign requests name a
	// checkpoint journal (resolved inside this directory) and resume from
	// it. Empty disables journaled campaigns.
	JournalDir string
	// DataDir, when non-empty, enables the durable job store: every
	// campaign submission and state transition is recorded in a WAL-style
	// manifest under this directory (fsynced per record), acceptance jobs
	// without a client-named journal get one assigned under
	// DataDir/journals, and on startup the server re-registers finished
	// jobs and auto-resumes interrupted ones from their checkpoints. Empty
	// keeps the registry purely in-memory (pre-store behavior).
	DataDir string
	// SyncEvery is the campaign checkpoint journals' sync policy: 0 syncs
	// on close only, 1 fsyncs every record, N every Nth record. The job
	// manifest itself always fsyncs per record regardless. See
	// cli.ParseSyncPolicy for the flag syntax.
	SyncEvery int
	// JobTTL bounds how long finished jobs stay in the registry before
	// eviction (0 selects DefaultJobTTL; negative disables TTL eviction).
	// MaxJobs caps the registry size, evicting the oldest finished jobs
	// first (0 selects DefaultMaxJobs; negative disables the cap). Evicted
	// jobs answer 404 and are tombstoned in the manifest so a restart does
	// not resurrect them.
	JobTTL  time.Duration
	MaxJobs int
	// FS, when non-nil, intercepts all job-store and checkpoint-journal
	// file I/O — the disk-fault injection seam (internal/fsfault). Nil
	// selects the real filesystem.
	FS fsfault.FS
	// CacheEntries, when positive, enables the content-addressed result
	// cache (internal/memo) with that entry bound: /v1/analyze answers
	// repeated identical requests from memory, and /v1/analyzeset requests
	// with "delta": true reuse unchanged per-task terms across calls.
	// Negative selects memo.DefaultMaxEntries; zero disables caching.
	CacheEntries int
	// Registry receives the server's metrics; nil means obs.Default().
	Registry *obs.Registry
	// WrapDelay, when non-nil, wraps every delay function built for
	// /v1/analyze — the chaos-injection seam of the fault tests. It
	// receives the request's guard scope and cancel func so faults can
	// burn its budget or cancel it.
	WrapDelay func(f delay.Function, g *guard.Ctx, cancel context.CancelFunc) delay.Function
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:0"
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = DefaultMaxTimeout
	}
	if c.AnalyzeBudget <= 0 {
		c.AnalyzeBudget = DefaultAnalyzeBudget
	}
	if c.CampaignBudget <= 0 {
		c.CampaignBudget = DefaultCampaignBudget
	}
	if c.MaxBudget > 0 {
		if c.AnalyzeBudget > c.MaxBudget {
			c.AnalyzeBudget = c.MaxBudget
		}
		if c.CampaignBudget > c.MaxBudget {
			c.CampaignBudget = c.MaxBudget
		}
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.AnalyzeConcurrency <= 0 {
		c.AnalyzeConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if c.JobTTL == 0 {
		c.JobTTL = DefaultJobTTL
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	return c
}

// Server is one service instance. Create with New, run with Start, stop with
// Shutdown (drain) or Close (abort).
type Server struct {
	cfg Config
	sc  *obs.Scope

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	// ready gates /readyz and admission; draining latches once Shutdown
	// begins (state machine: starting → ready → draining → stopped).
	ready    atomic.Bool
	draining atomic.Bool

	// mu guards the job registry, the idempotency index, the durable store
	// handle and the queue's closed flag (submit must never race
	// close(queue)).
	mu      sync.Mutex
	qclosed bool
	jobs    map[string]*job
	jobSeq  int64
	// idem maps Idempotency-Key header values to job IDs so a retried
	// submission (e.g. after a crash inside the ack window) returns the
	// existing job instead of starting a duplicate campaign.
	idem map[string]string
	// store is the durable job manifest (nil without -data-dir).
	store *store

	queue      chan *job
	workers    sync.WaitGroup
	jobCtx     context.Context
	jobStop    context.CancelFunc
	analyzeSem chan struct{}

	// memo is the content-addressed result cache shared by the synchronous
	// analysis endpoints (nil unless Config.CacheEntries enables it).
	memo *memo.Cache
}

// New builds a server from cfg. Nothing runs until Start.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		sc:         obs.NewScope(cfg.Registry),
		jobs:       map[string]*job{},
		idem:       map[string]string{},
		queue:      make(chan *job, cfg.QueueCap),
		analyzeSem: make(chan struct{}, cfg.AnalyzeConcurrency),
	}
	if cfg.CacheEntries != 0 {
		entries := cfg.CacheEntries
		if entries < 0 {
			entries = 0 // memo.DefaultMaxEntries
		}
		s.memo = core.NewResultCache(memo.Options{MaxEntries: entries, Obs: s.sc})
	}
	s.jobCtx, s.jobStop = context.WithCancel(context.Background())
	s.mux = s.routes()
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Start brings the service up in dependency order — metrics, durable job
// store (recovering persisted jobs), worker pool, then the listener, so the
// first accepted request finds everything behind it running and every
// recovered job already registered — and returns once the listener is bound.
// The server runs until Shutdown or Close.
func (s *Server) Start() error {
	obs.Enable()
	s.sc.Gauge("server.queue.capacity").Set(float64(s.cfg.QueueCap))
	s.sc.Gauge("server.workers").Set(float64(s.cfg.Workers))
	if err := s.recoverStore(); err != nil {
		return err
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.mu.Lock()
		s.qclosed = true
		s.mu.Unlock()
		s.jobStop()
		close(s.queue)
		s.workers.Wait()
		s.store.Close()
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.ready.Store(true)
	go s.http.Serve(ln)
	return nil
}

// Addr returns the bound listen address (with the real port when the config
// asked for :0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the service: /readyz flips to 503 and every admission path
// answers 429 immediately; queued and running campaigns get until the drain
// deadline to finish, then are canceled (journaled campaigns keep their
// checkpoints — the cancel travels through the guard scope, between points);
// finally the HTTP side shuts down gracefully within the same deadline. A
// drain that had to cancel campaigns is still a clean exit (nil): the work
// is checkpointed, not lost.
func (s *Server) Shutdown() error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.ready.Store(false)
	deadline := time.Now().Add(s.cfg.DrainTimeout)

	s.mu.Lock()
	s.qclosed = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		// Hard deadline: abort in-flight campaigns through their guard
		// scopes and wait for the workers to observe it.
		s.jobStop()
		<-done
	}

	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if err := s.http.Shutdown(ctx); err != nil {
		s.http.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			s.store.Close()
			return err
		}
	}
	s.jobStop()
	// The workers are done, so every terminal transition has been recorded;
	// close the manifest cleanly (it was fsynced per record all along —
	// this only releases the descriptor).
	return s.store.Close()
}

// Close aborts the service without draining: campaigns are canceled and the
// listener closed. Shutdown is the graceful path; Close is for tests and
// fatal teardown.
func (s *Server) Close() error {
	s.ready.Store(false)
	if s.draining.CompareAndSwap(false, true) {
		s.mu.Lock()
		s.qclosed = true
		close(s.queue)
		s.mu.Unlock()
	}
	s.jobStop()
	err := s.http.Close()
	s.workers.Wait()
	s.store.Close()
	return err
}

// submit runs admission control for a campaign job: a draining server or a
// full queue refuses immediately with guard.ErrOverload (HTTP 429 +
// Retry-After) — the job is never started, so the client can simply retry.
//
// Admission order matters for durability: the queue-full check runs BEFORE
// the manifest append so a rejected submission never pollutes the store, and
// the manifest append runs BEFORE the enqueue so an acked job is on disk
// first (durable-then-queue — a crash right after the append is recovered as
// an interrupted job). The send after a successful length check cannot
// block: every sender holds mu and the workers only drain.
//
// On success the job has its ID and is queued — or, when an Idempotency-Key
// matched a previous submission with the same fingerprint, j.existing points
// at that job and nothing new was started.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.qclosed || s.draining.Load() {
		s.sc.Counter("server.shed").Inc()
		return guard.Overloadf("server: draining, not admitting campaigns")
	}
	if j.idemKey != "" {
		if id, ok := s.idem[j.idemKey]; ok {
			prev, ok := s.jobs[id]
			if ok && j.fingerprint != "" && prev.fingerprint != j.fingerprint {
				return guard.Invalidf("server: Idempotency-Key already used by job %s with different parameters", id)
			}
			if ok {
				s.sc.Counter("server.jobs.deduplicated").Inc()
				j.existing = prev
				return nil
			}
		}
	}
	if len(s.queue) == cap(s.queue) {
		s.sc.Counter("server.rejected").Inc()
		return guard.Overloadf("server: campaign queue full (%d queued)", s.cfg.QueueCap)
	}
	s.evictLocked(time.Now())
	s.jobSeq++
	j.id = fmt.Sprintf("job-%06d", s.jobSeq)
	j.done = make(chan struct{})
	j.state = jobQueued
	if s.store != nil && j.journalPath == "" && j.kind == "acceptance" {
		// Auto-assign a checkpoint journal under the data dir so every
		// durable acceptance job can resume after a crash even when the
		// client named none.
		j.journalPath = s.store.journalPath(j.id)
	}
	if s.store != nil {
		if err := s.store.record(j.rec()); err != nil {
			s.sc.Counter("server.store.errors").Inc()
			return err
		}
	}
	s.queue <- j
	s.jobs[j.id] = j
	if j.idemKey != "" {
		s.idem[j.idemKey] = j.id
	}
	s.sc.Counter("server.admitted").Inc()
	s.sc.Gauge("server.queue.depth").Add(1)
	return nil
}

// evictLocked trims the job registry under mu: finished jobs older than
// JobTTL go first, then — if the registry is still at MaxJobs — the oldest
// finished jobs until it is below the cap. Running and queued jobs are never
// evicted. Each eviction tombstones the manifest so a restart does not
// resurrect the job.
func (s *Server) evictLocked(now time.Time) {
	if s.cfg.JobTTL < 0 && s.cfg.MaxJobs < 0 {
		return
	}
	type cand struct {
		j   *job
		fin time.Time
	}
	var finished []cand
	for _, j := range s.jobs {
		if done, fin := j.terminal(); done {
			finished = append(finished, cand{j, fin})
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].fin.Before(finished[k].fin) })
	evict := func(c cand) {
		delete(s.jobs, c.j.id)
		if c.j.idemKey != "" && s.idem[c.j.idemKey] == c.j.id {
			delete(s.idem, c.j.idemKey)
		}
		s.sc.Counter("server.jobs.evicted").Inc()
		if s.store != nil {
			if err := s.store.record(jobRecord{
				ID: c.j.id, Kind: c.j.kind, State: jobEvicted, Fingerprint: c.j.fingerprint,
			}); err != nil {
				s.sc.Counter("server.store.errors").Inc()
			}
		}
	}
	i := 0
	if s.cfg.JobTTL > 0 {
		for ; i < len(finished) && now.Sub(finished[i].fin) > s.cfg.JobTTL; i++ {
			evict(finished[i])
		}
	}
	if s.cfg.MaxJobs > 0 {
		// +1: make room for the job being admitted.
		for ; i < len(finished) && len(s.jobs)+1 > s.cfg.MaxJobs; i++ {
			evict(finished[i])
		}
	}
}

// jobByID looks a job up in the registry.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one campaign worker: it drains the queue until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.sc.Gauge("server.queue.depth").Add(-1)
		s.runJob(j)
	}
}

// runJob executes one campaign under its own guard scope (derived from the
// server's job context so a forced stop cancels it), with panic isolation
// via guard.Run and, for journaled acceptance campaigns, the checkpoint
// journal opened for the duration of the run. With a durable store the
// running and terminal transitions are appended to the manifest; a persist
// failure is counted (server.store.errors), never silent, and does not take
// the in-memory job down with it.
func (s *Server) runJob(j *job) {
	running := s.sc.Gauge("server.jobs.running")
	running.Add(1)
	defer running.Add(-1)
	j.setState(jobRunning)
	s.persist(j)

	ctx, cancel := context.WithCancel(s.jobCtx)
	defer cancel()
	g := guard.New(ctx).WithTimeout(j.timeout).WithBudget(j.budget).WithObs(s.sc)

	camp := j.camp
	var jr *journal.Journal
	if j.journalPath != "" {
		var err error
		var resume map[string]json.RawMessage
		jr, resume, err = openJobJournal(j.journalPath, j.resume,
			journal.Options{SyncEvery: s.cfg.SyncEvery, FS: s.cfg.FS})
		if err != nil {
			j.finish(nil, err)
			s.persist(j)
			return
		}
		if ap, ok := camp.(eval.AcceptanceParams); ok {
			ap.Journal = jr
			ap.Resume = resume
			camp = ap
		}
		g.WithCheckpoint(func(int64) { jr.Sync() })
	}

	res, err := guard.Run(g, "job "+j.id, func() (any, error) { return camp.Run(g) })
	if jr != nil {
		if cerr := jr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if errors.Is(err, guard.ErrPanic) {
		s.sc.Counter("server.panics_recovered").Inc()
	}
	j.finish(sanitizeResult(res), err)
	s.persist(j)
}

// persist appends the job's current state to the manifest (no-op without a
// store). Failures increment server.store.errors; the in-memory job stays
// authoritative for this process's lifetime.
func (s *Server) persist(j *job) {
	if s.store == nil {
		return
	}
	if err := s.store.record(j.rec()); err != nil {
		s.sc.Counter("server.store.errors").Inc()
	}
}

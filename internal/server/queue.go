package server

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"time"

	"fnpr/internal/eval"
	"fnpr/internal/journal"
)

// Job states. A job moves queued → running → done | failed; there are no
// other transitions. Failed jobs carry the error and its machine-readable
// code in their view.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one queued or running campaign. The identity fields are written
// once at submit; mu guards the mutable state/result/err triple.
type job struct {
	id          string
	kind        string
	camp        eval.Campaign
	journalPath string
	resume      bool
	timeout     time.Duration
	budget      int64

	mu     sync.Mutex
	state  string
	result any
	err    error
	done   chan struct{}
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// finish records the terminal state and wakes anyone waiting on done.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = jobFailed
		j.err = err
	} else {
		j.state = jobDone
		j.result = result
	}
	j.mu.Unlock()
	close(j.done)
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"`
	Result any    `json:"result,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Kind: j.kind, State: j.state, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
		v.Code = eval.ReasonOf(j.err).String()
	}
	return v
}

// openJobJournal opens a campaign's checkpoint journal the same way the CLIs
// do (internal/cli.Limits.OpenJournal): a fresh run removes any stale file so
// the journal always describes exactly one campaign; a resume run replays the
// latest-record view.
func openJobJournal(path string, resume bool) (*journal.Journal, map[string]json.RawMessage, error) {
	if !resume {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
	}
	j, recs, err := journal.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if resume {
		return j, journal.Latest(recs), nil
	}
	return j, nil, nil
}

// sanitizeResult rewrites result values whose fields can hold non-finite
// floats (which encoding/json refuses) into a JSON-safe form. Campaign
// tables are always finite; the Monte-Carlo report's MinSlack is +Inf when
// no job was ever preempted.
func sanitizeResult(v any) any {
	rep, ok := v.(*eval.MonteCarloReport)
	if !ok || rep == nil {
		return v
	}
	return map[string]any{
		"trials":      rep.Trials,
		"jobs":        rep.Jobs,
		"preemptions": rep.Preemptions,
		"violations":  rep.Violations,
		"max_paid":    jsonNum(rep.MaxPaid),
		"min_slack":   jsonNum(rep.MinSlack),
	}
}

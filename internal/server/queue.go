package server

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"time"

	"fnpr/internal/eval"
	"fnpr/internal/fsfault"
	"fnpr/internal/journal"
)

// Job states. A job moves queued → running → done | failed; there are no
// other transitions. Failed jobs carry the error and its machine-readable
// code in their view. A job recovered from the durable store re-enters the
// same machine: terminal records re-register as done/failed, interrupted
// records re-enter at queued (with resume semantics).
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
	// jobEvicted is a manifest-only tombstone: an evicted job's last record
	// carries this state so a restart does not resurrect it. It never appears
	// in the in-memory registry or on the wire.
	jobEvicted = "evicted"
)

// job is one queued or running campaign. The identity fields are written
// once at submit (or at recovery); mu guards the mutable
// state/result/err/finished quadruple.
type job struct {
	id          string
	kind        string
	camp        eval.Campaign
	fingerprint string
	idemKey     string
	// params is the submission's wire-form body, persisted to the manifest
	// so recovery can rebuild camp by re-decoding it.
	params      json.RawMessage
	journalPath string
	resume      bool
	// recovered marks a job the durable store restored after a restart —
	// either re-registered (terminal) or automatically resumed.
	recovered bool
	timeout   time.Duration
	budget    int64

	// existing is set (instead of an ID) when submit deduplicates against
	// a prior job via the idempotency key; the handler answers with it.
	existing *job

	mu     sync.Mutex
	state  string
	result any
	err    error
	// errText/code carry a recovered failed job's persisted message and
	// machine code — the error object itself does not survive a restart.
	errText  string
	code     string
	finished time.Time
	done     chan struct{}
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// finish records the terminal state and wakes anyone waiting on done.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = jobFailed
		j.err = err
	} else {
		j.state = jobDone
		j.result = result
	}
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// terminal reports whether the job reached done/failed, and when.
func (j *job) terminal() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == jobDone || j.state == jobFailed, j.finished
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Recovered reports that this job was restored from the durable job
	// store after a restart (terminal jobs re-registered, interrupted jobs
	// automatically resumed).
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
	Code      string `json:"code,omitempty"`
	Result    any    `json:"result,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Kind: j.kind, State: j.state,
		Fingerprint: j.fingerprint, Recovered: j.recovered, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
		v.Code = eval.ReasonOf(j.err).String()
	} else if j.state == jobFailed {
		// Recovered failed job: the error object did not survive the
		// restart, its message and code did.
		v.Error = j.errText
		v.Code = j.code
	}
	return v
}

// summary is the listing form: everything an operator needs to triage jobs
// after a restart, without the (possibly large) result payload.
func (j *job) summary() jobView {
	v := j.view()
	v.Result = nil
	return v
}

// rec snapshots the job as a manifest record (terminal payload included when
// the job has one).
func (j *job) rec() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := jobRecord{
		ID: j.id, Kind: j.kind, State: j.state,
		Fingerprint: j.fingerprint, IdemKey: j.idemKey,
		Params: j.params, Journal: j.journalPath, Resume: j.resume,
		TimeoutNS: int64(j.timeout), Budget: j.budget,
	}
	if j.err != nil {
		r.Error = j.err.Error()
		r.Code = eval.ReasonOf(j.err).String()
	} else if j.code != "" {
		r.Error = j.errText
		r.Code = j.code
	}
	if !j.finished.IsZero() {
		r.Finished = j.finished.UnixNano()
	}
	if j.state == jobDone && j.result != nil {
		if data, err := json.Marshal(sanitizeResult(j.result)); err == nil {
			r.Result = data
		}
	}
	return r
}

// openJobJournal opens a campaign's checkpoint journal the same way the CLIs
// do (internal/cli.Limits.OpenJournal): a fresh run removes any stale file so
// the journal always describes exactly one campaign; a resume run replays the
// latest-record view. The server's sync policy and filesystem seam ride in
// through opts.
func openJobJournal(path string, resume bool, opts journal.Options) (*journal.Journal, map[string]json.RawMessage, error) {
	if !resume {
		if err := fsfault.Real(opts.FS).Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
	}
	j, recs, err := journal.OpenWith(path, opts)
	if err != nil {
		return nil, nil, err
	}
	if resume {
		return j, journal.Latest(recs), nil
	}
	return j, nil, nil
}

// sanitizeResult rewrites result values whose fields can hold non-finite
// floats (which encoding/json refuses) into a JSON-safe form. Campaign
// tables are always finite; the Monte-Carlo report's MinSlack is +Inf when
// no job was ever preempted. Results reloaded from the durable store are
// already-sanitized raw JSON and pass through.
func sanitizeResult(v any) any {
	rep, ok := v.(*eval.MonteCarloReport)
	if !ok || rep == nil {
		return v
	}
	return map[string]any{
		"trials":      rep.Trials,
		"jobs":        rep.Jobs,
		"preemptions": rep.Preemptions,
		"violations":  rep.Violations,
		"max_paid":    jsonNum(rep.MaxPaid),
		"min_slack":   jsonNum(rep.MinSlack),
	}
}

package server

import (
	"net/http"
	"testing"
)

// TestAnalyzeCached proves a -cache server answers the second identical
// /v1/analyze request from the result cache: the response values are
// identical, the advisory "cached" marker appears only on the hit, and the
// memo.hits counter moves — the same invariant the serve-smoke CI step
// asserts against a real binary.
func TestAnalyzeCached(t *testing.T) {
	s, base := newTestServer(t, func(c *Config) { c.CacheEntries = 1024 })

	st1, _, v1 := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	if st1 != http.StatusOK {
		t.Fatalf("first analyze: status %d body %v", st1, v1)
	}
	if _, present := v1["cached"]; present {
		t.Fatalf("first analyze claims a cache hit: %v", v1)
	}
	st2, _, v2 := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(15, 40))
	if st2 != http.StatusOK {
		t.Fatalf("second analyze: status %d body %v", st2, v2)
	}
	if v2["cached"] != true {
		t.Fatalf("second identical analyze not served from cache: %v", v2)
	}
	for _, k := range []string{"total_delay", "preemptions", "diverged"} {
		if v1[k] != v2[k] {
			t.Fatalf("field %s changed across cache hit: %v vs %v", k, v1[k], v2[k])
		}
	}
	if got := s.cfg.Registry.Counter("memo.hits").Value(); got < 1 {
		t.Fatalf("memo.hits = %d, want >= 1", got)
	}
	// A different Q is a different request — no false hit.
	st3, _, v3 := doJSON(t, "POST", base+"/v1/analyze", analyzeBody(16, 40))
	if st3 != http.StatusOK {
		t.Fatalf("third analyze: status %d body %v", st3, v3)
	}
	if _, present := v3["cached"]; present {
		t.Fatalf("different Q served from cache: %v", v3)
	}
}

// TestAnalyzeSetDelta drives the incremental /v1/analyzeset mode: the first
// delta request computes everything, a repeat reuses everything, and editing
// one task's delay function recomputes only that task's terms.
func TestAnalyzeSetDelta(t *testing.T) {
	_, base := newTestServer(t, func(c *Config) { c.CacheEntries = 4096 })
	mkBody := func(peak float64) map[string]any {
		return map[string]any{
			"spec": map[string]any{
				"policy": "fp",
				"tasks": []any{
					// "hi" has no delay function: nothing to compute, so it
					// must never count toward the recomputed/reused split.
					map[string]any{"name": "hi", "c": 5, "t": 100, "q": 4, "prio": 0},
					map[string]any{"name": "a", "c": 30, "t": 300, "q": 5, "prio": 1,
						"delay": map[string]any{"kind": "frontloaded", "peak": peak, "tail": 0.5}},
					map[string]any{"name": "b", "c": 40, "t": 400, "q": 6, "prio": 2,
						"delay": map[string]any{"kind": "frontloaded", "peak": 3, "tail": 0.5}},
				},
			},
			"qs":    []float64{15, 20, 30},
			"delta": true,
		}
	}
	st, _, v := doJSON(t, "POST", base+"/v1/analyzeset", mkBody(2))
	if st != http.StatusOK {
		t.Fatalf("cold delta: status %d body %v", st, v)
	}
	if v["recomputed"].(float64) != 6 || v["reused"].(float64) != 0 {
		t.Fatalf("cold delta split: recomputed=%v reused=%v, want 6/0", v["recomputed"], v["reused"])
	}
	st, _, v = doJSON(t, "POST", base+"/v1/analyzeset", mkBody(2))
	if st != http.StatusOK {
		t.Fatalf("repeat delta: status %d body %v", st, v)
	}
	if v["recomputed"].(float64) != 0 || v["reused"].(float64) != 6 {
		t.Fatalf("repeat delta split: recomputed=%v reused=%v, want 0/6", v["recomputed"], v["reused"])
	}
	// Edit task a's function: only its 3 grid points recompute.
	st, _, v = doJSON(t, "POST", base+"/v1/analyzeset", mkBody(2.5))
	if st != http.StatusOK {
		t.Fatalf("edited delta: status %d body %v", st, v)
	}
	if v["recomputed"].(float64) != 3 || v["reused"].(float64) != 3 {
		t.Fatalf("edited delta split: recomputed=%v reused=%v, want 3/3", v["recomputed"], v["reused"])
	}
}

// TestAnalyzeSetDeltaRequiresCache pins the error path: delta mode against a
// cacheless server is invalid input, not silent full recomputation.
func TestAnalyzeSetDeltaRequiresCache(t *testing.T) {
	_, base := newTestServer(t, nil)
	body := map[string]any{
		"spec": map[string]any{
			"policy": "fp",
			"tasks": []any{
				map[string]any{"name": "a", "c": 30, "t": 300, "q": 5, "prio": 0,
					"delay": map[string]any{"kind": "frontloaded", "peak": 2, "tail": 0.5}},
			},
		},
		"delta": true,
	}
	st, _, v := doJSON(t, "POST", base+"/v1/analyzeset", body)
	if st != http.StatusBadRequest {
		t.Fatalf("delta without cache: status %d body %v, want 400", st, v)
	}
}

package retry

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// fixedRand returns a constant value, pinning the jitter.
type fixedRand struct{ v float64 }

func (r fixedRand) Float64() float64 { return r.v }

func TestDelaySchedule(t *testing.T) {
	unit := time.Millisecond
	cases := []struct {
		name string
		p    Policy
		want []time.Duration
	}{
		{
			name: "constant when growth <= 1",
			p:    Policy{MinDelay: 100 * unit, MaxDelay: 500 * unit, Growth: 1},
			want: []time.Duration{100 * unit, 100 * unit, 100 * unit},
		},
		{
			name: "exponential clamps at max",
			p:    Policy{MinDelay: 100 * unit, MaxDelay: 1000 * unit, Growth: 2},
			want: []time.Duration{100 * unit, 200 * unit, 400 * unit, 800 * unit, 1000 * unit, 1000 * unit},
		},
		{
			name: "max below min collapses to max",
			p:    Policy{MinDelay: 500 * unit, MaxDelay: 400 * unit, Growth: 2},
			want: []time.Duration{400 * unit, 400 * unit},
		},
		{
			name: "negative delays clamp to zero",
			p:    Policy{MinDelay: -time.Second, MaxDelay: -time.Second, Growth: 2},
			want: []time.Duration{0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for n, want := range tc.want {
				if got := tc.p.Delay(n); got != want {
					t.Fatalf("Delay(%d) = %v, want %v", n, got, want)
				}
			}
		})
	}
}

func TestJitteredDelayBounds(t *testing.T) {
	p := Policy{MinDelay: 100 * time.Millisecond, MaxDelay: time.Second, Growth: 2, Jitter: 0.5}
	// Rand pinned low, mid and high: delay must span [d/2, 3d/2).
	for _, rc := range []struct {
		v    float64
		want time.Duration
	}{
		{0, 50 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
		{0.999999, 150 * time.Millisecond}, // just under the open upper bound
	} {
		p.Rand = fixedRand{rc.v}
		got := p.JitteredDelay(0)
		if d := got - rc.want; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("rand=%g: jittered delay %v, want ~%v", rc.v, got, rc.want)
		}
	}
	// Jitter without a Rand source passes through unjittered.
	p.Rand = nil
	if got := p.JitteredDelay(0); got != 100*time.Millisecond {
		t.Fatalf("nil Rand: got %v, want raw delay", got)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 5,
		MinDelay:    10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Growth:      2,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	out, err := Do(p, nil, func(attempt int) (string, error) {
		calls++
		if attempt < 2 {
			return "", fmt.Errorf("transient %d", attempt)
		}
		return "ok", nil
	})
	if err != nil || out != "ok" {
		t.Fatalf("Do = (%q, %v), want (ok, nil)", out, err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	base := errors.New("still broken")
	calls := 0
	_, err := Do(p, nil, func(int) (int, error) {
		calls++
		return 0, base
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("exhausted error %v does not wrap the cause", err)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	base := errors.New("bad input")
	calls := 0
	_, err := Do(p, nil, func(int) (int, error) {
		calls++
		return 0, Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
	// The Stop wrapper must be peeled off.
	if !errors.Is(err, base) || err != base {
		t.Fatalf("permanent error = %v, want the bare cause", err)
	}
}

func TestDoStopClassifier(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	fatal := errors.New("fatal")
	calls := 0
	_, err := Do(p, func(err error) bool { return errors.Is(err, fatal) }, func(int) (int, error) {
		calls++
		if calls == 2 {
			return 0, fatal
		}
		return 0, errors.New("transient")
	})
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (stop on classifier)", calls)
	}
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want the fatal cause", err)
	}
}

func TestDoZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	_, err := Do(Policy{}, nil, func(int) (int, error) {
		calls++
		return 0, errors.New("no")
	})
	if calls != 1 || err == nil {
		t.Fatalf("zero policy: %d calls, err %v; want exactly one attempt", calls, err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Policy{Jitter: 0.5}).Validate(); err == nil {
		t.Fatal("jitter without Rand accepted")
	}
	if err := (Policy{Growth: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN growth accepted")
	}
	if _, err := Do(Policy{Jitter: 0.5}, nil, func(int) (int, error) { return 1, nil }); err == nil {
		t.Fatal("Do did not surface the invalid policy")
	}
	if err := (Policy{MaxAttempts: 3, Jitter: 0.2, Rand: fixedRand{0.5}, Growth: 2}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

// Package retry provides the exponential-backoff policy the batch runtime
// uses before degrading a unit of work: a failing grid point is re-attempted
// a bounded number of times with growing, jittered delays, and only when the
// attempts are exhausted does the caller fall back to a cheaper analysis or
// quarantine the point.
//
// The package is dependency-free (standard library only) on purpose: it sits
// below every analysis package and must never import one. Randomness enters
// only through the small Rand interface, so tests drive the jitter
// deterministically, and sleeping goes through the policy's Sleep hook, so
// tests run without wall-clock waits.
package retry

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Rand is the source of jitter. math/rand.Rand satisfies it; tests substitute
// a fixed-value stub for reproducible delay sequences.
type Rand interface {
	// Float64 returns a value in [0, 1).
	Float64() float64
}

// Locked wraps r so concurrent callers serialise on a mutex — the adapter
// that makes a math/rand.Rand (not safe for concurrent use) shareable as the
// jitter source of a worker pool's common policy.
func Locked(r Rand) Rand {
	return &lockedRand{r: r}
}

type lockedRand struct {
	mu sync.Mutex
	r  Rand
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

// Policy describes one bounded exponential-backoff schedule. The zero value
// is a valid "no retries" policy: MaxAttempts 0 (normalised to 1) means the
// first failure is final.
type Policy struct {
	// MaxAttempts caps the total number of attempts (first try included).
	// Values below 1 are treated as 1: one attempt, no retries.
	MaxAttempts int

	// MinDelay is the backoff before the first retry. Negative is clamped
	// to zero.
	MinDelay time.Duration

	// MaxDelay caps the grown delay. When MaxDelay < MinDelay the
	// schedule is constant at MaxDelay (clamped non-negative).
	MaxDelay time.Duration

	// Growth is the factor applied per retry: the n-th retry (n counted
	// from 0) backs off MinDelay * Growth^n, clamped to MaxDelay. Values
	// at or below 1 mean a constant MinDelay schedule.
	Growth float64

	// Jitter spreads each delay uniformly over [d*(1-Jitter), d*(1+Jitter)]
	// to decorrelate concurrent retriers. It is clamped to [0, 1]; zero
	// disables jitter. Jitter > 0 with a nil Rand is rejected by Validate
	// rather than silently ignored.
	Jitter float64

	// Rand supplies the jitter randomness. Required iff Jitter > 0.
	Rand Rand

	// Sleep replaces time.Sleep between attempts. Tests install a recorder;
	// nil means real sleeping (and is never called for zero delays).
	Sleep func(time.Duration)

	// OnBackoff, when non-nil, is invoked before every backoff sleep with
	// the retry index (0 for the first retry) and the jittered delay about
	// to be slept — the observability hook callers use to count retries and
	// record backoff time without this package importing anything.
	OnBackoff func(retry int, d time.Duration)
}

// Validate reports a misconfigured policy. It is called by Do, so callers
// constructing policies from flags get the error at use, not a panic.
func (p Policy) Validate() error {
	if math.IsNaN(p.Growth) || math.IsInf(p.Growth, 0) {
		return fmt.Errorf("retry: non-finite growth factor %v", p.Growth)
	}
	if math.IsNaN(p.Jitter) || math.IsInf(p.Jitter, 0) {
		return fmt.Errorf("retry: non-finite jitter %v", p.Jitter)
	}
	if p.Jitter > 0 && p.Rand == nil {
		return fmt.Errorf("retry: jitter %g needs a Rand source", p.Jitter)
	}
	return nil
}

// attempts returns the normalised attempt cap.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Retries returns how many retries the policy grants after the first attempt.
func (p Policy) Retries() int { return p.attempts() - 1 }

// Delay returns the backoff before retry n (n = 0 is the first retry),
// without jitter: MinDelay * Growth^n clamped into [0, MaxDelay].
func (p Policy) Delay(n int) time.Duration {
	min, max := p.MinDelay, p.MaxDelay
	if min < 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max < min {
		return max
	}
	d := float64(min)
	if p.Growth > 1 && n > 0 {
		d *= math.Pow(p.Growth, float64(n))
	}
	if d > float64(max) {
		return max
	}
	return time.Duration(d)
}

// JitteredDelay returns Delay(n) spread by the policy's jitter: uniform over
// [d*(1-Jitter), d*(1+Jitter)], never negative. With Jitter 0 (or no Rand) it
// equals Delay(n).
func (p Policy) JitteredDelay(n int) time.Duration {
	d := p.Delay(n)
	j := p.Jitter
	if j <= 0 || p.Rand == nil || d == 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	// Uniform in [1-j, 1+j): two-sided bounded jitter.
	scale := 1 - j + 2*j*p.Rand.Float64()
	out := time.Duration(float64(d) * scale)
	if out < 0 {
		return 0
	}
	return out
}

// Stop wraps an error to tell Do the failure is permanent: no further
// attempts are useful (caller abort, invalid input, deterministic failure).
// Do returns the wrapped error unchanged.
type Stop struct{ Err error }

// Error implements error.
func (s Stop) Error() string { return s.Err.Error() }

// Unwrap exposes the permanent cause.
func (s Stop) Unwrap() error { return s.Err }

// Permanent marks err as non-retryable for Do. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return Stop{Err: err}
}

// Do runs fn up to the policy's attempt cap, sleeping the jittered backoff
// between attempts. fn receives the attempt index (0-based). A nil error
// stops immediately with the result; an error wrapped by Permanent (or any
// error for which stop returns true, when stop is non-nil) is returned
// without further attempts. When all attempts fail, Do returns the last
// error annotated with the attempt count.
func Do[T any](p Policy, stop func(error) bool, fn func(attempt int) (T, error)) (T, error) {
	var zero T
	if err := p.Validate(); err != nil {
		return zero, err
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := p.attempts()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := p.JitteredDelay(i - 1)
			if p.OnBackoff != nil {
				p.OnBackoff(i-1, d)
			}
			if d > 0 {
				sleep(d)
			}
		}
		out, err := fn(i)
		if err == nil {
			return out, nil
		}
		var s Stop
		if errors.As(err, &s) {
			return zero, s.Err
		}
		if stop != nil && stop(err) {
			return zero, err
		}
		lastErr = err
	}
	if attempts > 1 {
		lastErr = fmt.Errorf("after %d attempts: %w", attempts, lastErr)
	}
	return zero, lastErr
}

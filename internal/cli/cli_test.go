package cli

import (
	"errors"
	"fmt"
	"net/http"
	"syscall"
	"testing"

	"fnpr/internal/guard"
)

// TestErrorContractMatrix pins the whole error taxonomy onto both caller
// contracts at once — the CLI exit code (Code) and the HTTP status the
// analysis service derives from the same sentinels (guard.HTTPStatus) — so
// the two surfaces can never drift apart silently.
func TestErrorContractMatrix(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		exitCode int
		httpCode int
	}{
		{"nil", nil, ExitOK, http.StatusOK},
		{"canceled", guard.ErrCanceled, ExitResource, http.StatusGatewayTimeout},
		{"canceled-wrapped", fmt.Errorf("run: %w", guard.ErrCanceled), ExitResource, http.StatusGatewayTimeout},
		{"budget", guard.ErrBudgetExceeded, ExitResource, http.StatusUnprocessableEntity},
		{"budget-wrapped", guard.Budgetf("spent"), ExitResource, http.StatusUnprocessableEntity},
		{"overload", guard.ErrOverload, ExitResource, http.StatusTooManyRequests},
		{"overload-wrapped", guard.Overloadf("queue full"), ExitResource, http.StatusTooManyRequests},
		{"usage", ErrUsage, ExitUsage, http.StatusInternalServerError},
		{"usage-wrapped", Usagef("bad flag"), ExitUsage, http.StatusInternalServerError},
		{"invalid", guard.ErrInvalidInput, ExitAnalysis, http.StatusBadRequest},
		{"invalid-wrapped", guard.Invalidf("NaN"), ExitAnalysis, http.StatusBadRequest},
		{"diverged", guard.ErrDiverged, ExitAnalysis, http.StatusUnprocessableEntity},
		{"panic", guard.ErrPanic, ExitAnalysis, http.StatusInternalServerError},
		{"plain", errors.New("io failure"), ExitAnalysis, http.StatusInternalServerError},
		// Durable-storage failures: exit 2 (the run's output cannot be
		// trusted complete; retrying without freeing disk won't help, so it
		// is not ExitResource), HTTP 507. Wrapped exactly as the journal
		// produces them.
		{"storage", guard.ErrStorage, ExitAnalysis, http.StatusInsufficientStorage},
		{"storage-enospc", guard.Storagef(syscall.ENOSPC, "journal: appending"), ExitAnalysis, http.StatusInsufficientStorage},
		{"storage-fsync-eio", guard.Storagef(syscall.EIO, "journal: syncing"), ExitAnalysis, http.StatusInsufficientStorage},
		// A foreign-fingerprint journal (wrong -journal for these params,
		// live or during crash recovery) is invalid input: exit 2, HTTP 400.
		{"foreign-journal", guard.Invalidf("campaign: journal belongs to a different campaign"), ExitAnalysis, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.exitCode {
			t.Errorf("%s: Code(%v) = %d, want %d", c.name, c.err, got, c.exitCode)
		}
		if got := guard.HTTPStatus(c.err); got != c.httpCode {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.httpCode)
		}
	}
}

// TestObsFlagsObserved pins the condition under which Guard attaches a scope.
func TestObsFlagsObserved(t *testing.T) {
	cases := []struct {
		name string
		o    *ObsFlags
		want bool
	}{
		{"nil", nil, false},
		{"zero", &ObsFlags{}, false},
		{"metrics", &ObsFlags{Metrics: true}, true},
		{"metrics-out", &ObsFlags{MetricsOut: "m.json"}, true},
		{"debug-addr", &ObsFlags{DebugAddr: "localhost:0"}, true},
	}
	for _, c := range cases {
		if got := c.o.Observed(); got != c.want {
			t.Errorf("%s: Observed() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestGuardAlwaysObservesSignals pins the metric-flush fix: any guarded run
// (resource limits, journal or observability flags) must observe
// SIGINT/SIGTERM, not just journaled ones — a -metrics-out run killed by
// SIGTERM used to lose its snapshot.
func TestGuardAlwaysObservesSignals(t *testing.T) {
	l := &Limits{ObsFlags: ObsFlags{MetricsOut: t.TempDir() + "/m.json"}}
	g := l.Guard()
	if g == nil {
		t.Fatal("Guard() = nil for a -metrics-out run; signals would kill the process mid-write")
	}
	if g.Done() == nil {
		t.Fatal("Guard() scope has no cancellation source; SIGTERM would not cancel it")
	}
	if (&Limits{}).Guard() != nil {
		t.Fatal("Guard() != nil for a run with no limits and no observability")
	}
}

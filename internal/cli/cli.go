// Package cli holds the plumbing shared by every command-line tool: the
// -timeout / -max-iter resource-limit flags that build a guard scope, the
// batch-runtime flags (-journal / -resume / -seed) of the sweep-running
// tools, the usage-error sentinel, and the exit-code contract
//
//	0  success
//	1  analysis error (divergent bound, invariant violation, I/O failure, ...)
//	2  usage error (bad flags or arguments; also used by package flag itself)
//	3  resource limit hit (wall-clock timeout, cancellation or step budget)
//
// so scripts can distinguish "the analysis says no" from "you asked wrong"
// from "it did not finish in the allotted resources".
//
// Journaled runs are crash-safe end to end: the guard scope observes SIGINT
// and SIGTERM (a Ctrl-C aborts with exit code 3 instead of killing the
// process mid-write), completed work is checkpointed as it finishes, and the
// same command re-run with -resume picks up where the journal left off.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fnpr/internal/guard"
	"fnpr/internal/journal"
)

// Exit codes of the contract above.
const (
	ExitOK       = 0
	ExitAnalysis = 1
	ExitUsage    = 2
	ExitResource = 3
)

// ErrUsage marks command-line usage errors (exit code 2). Test with
// errors.Is.
var ErrUsage = errors.New("usage error")

// Usagef builds an ErrUsage-wrapped error.
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Limits receives the shared resource-limit and batch-runtime flags.
type Limits struct {
	Timeout time.Duration
	MaxIter int64

	// Journal, Resume and Seed are registered only by SweepFlags — the
	// batch-runtime surface of the sweep-running tools.
	Journal string
	Resume  bool
	Seed    int64
}

// Flags registers -timeout and -max-iter on the default flag set and returns
// the destination. Call before flag.Parse.
func Flags() *Limits {
	l := &Limits{Seed: 1}
	flag.DurationVar(&l.Timeout, "timeout", 0, "abort the analysis after this wall-clock time (e.g. 30s; 0 = no limit)")
	flag.Int64Var(&l.MaxIter, "max-iter", 0, "abort after this many analysis steps across all loops (0 = no limit)")
	return l
}

// SweepFlags additionally registers the batch-runtime flags — -journal,
// -resume and -seed — used by the commands that run long sweeps. Call
// between Flags and flag.Parse; it returns l for chaining.
func (l *Limits) SweepFlags() *Limits {
	flag.StringVar(&l.Journal, "journal", "", "checkpoint journal file: completed grid points are appended so an aborted run can continue with -resume")
	flag.BoolVar(&l.Resume, "resume", false, "resume from the -journal file, restoring the grid points it already holds")
	flag.Int64Var(&l.Seed, "seed", 1, "random seed for synthetic task-set generation and retry jitter")
	return l
}

// Guard builds the guard scope the flags describe: nil (no limits, zero
// bookkeeping) when neither resource flag nor a journal was given. Journaled
// runs always get a scope, and theirs observes SIGINT/SIGTERM, so an
// interrupted sweep aborts through the normal cancellation path — partial
// results checkpointed, exit code 3 — instead of dying mid-write.
func (l *Limits) Guard() *guard.Ctx {
	if l == nil || (l.Timeout <= 0 && l.MaxIter <= 0 && l.Journal == "") {
		return nil
	}
	ctx := context.Background()
	if l.Journal != "" {
		// The stop function is deliberately dropped: the notification
		// must stay installed for the whole process lifetime.
		ctx, _ = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	}
	g := guard.New(ctx)
	if l.Timeout > 0 {
		g = g.WithTimeout(l.Timeout)
	}
	if l.MaxIter > 0 {
		g = g.WithBudget(l.MaxIter)
	}
	return g
}

// OpenJournal opens the checkpoint journal the flags describe and returns it
// together with the resume view (nil unless -resume). Without -journal it
// returns all nils; -resume without -journal is a usage error. A fresh (non
// -resume) run removes any stale journal first, so the file always describes
// exactly one sweep.
func (l *Limits) OpenJournal() (*journal.Journal, map[string]json.RawMessage, error) {
	if l.Journal == "" {
		if l.Resume {
			return nil, nil, Usagef("-resume requires -journal")
		}
		return nil, nil, nil
	}
	if !l.Resume {
		if err := os.Remove(l.Journal); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("removing stale journal: %w", err)
		}
	}
	j, recs, err := journal.Open(l.Journal)
	if err != nil {
		return nil, nil, err
	}
	if l.Resume {
		return j, journal.Latest(recs), nil
	}
	return j, nil, nil
}

// Checkpoint wires the journal's periodic durability sync into the guard
// scope: the analysis loops invoke it through guard's amortised poll,
// bounding how much checkpointed work a power loss can lose. A nil scope or
// journal is a no-op.
func Checkpoint(g *guard.Ctx, j *journal.Journal) {
	if g == nil || j == nil {
		return
	}
	g.WithCheckpoint(func(int64) { j.Sync() })
}

// Code maps an error to the exit-code contract.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, guard.ErrBudgetExceeded):
		return ExitResource
	case errors.Is(err, ErrUsage):
		return ExitUsage
	default:
		return ExitAnalysis
	}
}

// Exit prints "prog: err" on stderr (for non-nil err) and exits with
// Code(err).
func Exit(prog string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(Code(err))
}

// Package cli holds the plumbing shared by every command-line tool: the
// -timeout / -max-iter resource-limit flags that build a guard scope, the
// batch-runtime flags (-journal / -resume / -seed) of the sweep-running
// tools, the usage-error sentinel, and the exit-code contract
//
//	0  success
//	1  analysis error (divergent bound, invariant violation, I/O failure, ...)
//	2  usage error (bad flags or arguments; also used by package flag itself)
//	3  resource limit hit (wall-clock timeout, cancellation, step budget or
//	   an admission rejection by the analysis service)
//
// so scripts can distinguish "the analysis says no" from "you asked wrong"
// from "it did not finish in the allotted resources".
//
// Journaled runs are crash-safe end to end: the guard scope observes SIGINT
// and SIGTERM (a Ctrl-C aborts with exit code 3 instead of killing the
// process mid-write), completed work is checkpointed as it finishes, and the
// same command re-run with -resume picks up where the journal left off.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"fnpr/internal/core"
	"fnpr/internal/eval"
	"fnpr/internal/guard"
	"fnpr/internal/journal"
	"fnpr/internal/memo"
	"fnpr/internal/obs"
)

// Exit codes of the contract above.
const (
	ExitOK       = 0
	ExitAnalysis = 1
	ExitUsage    = 2
	ExitResource = 3
)

// ErrUsage marks command-line usage errors (exit code 2). Test with
// errors.Is.
var ErrUsage = errors.New("usage error")

// Usagef builds an ErrUsage-wrapped error.
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// ObsFlags is the observability flag surface every tool (and the analysis
// server) shares: -metrics dumps the registry snapshot at exit (JSON plus a
// human table, on stderr so golden-checked stdout stays untouched),
// -metrics-out writes the JSON snapshot to a file, and -debug-addr serves
// live /debug/vars (expvar) and /debug/pprof/* while the process runs. It is
// the single definition of the trio — commands embed it via Limits, and
// cmd/serve registers it on its own flag set with Register.
type ObsFlags struct {
	Metrics    bool
	MetricsOut string
	DebugAddr  string
}

// Register installs the -metrics / -metrics-out / -debug-addr trio on fs.
func (o *ObsFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Metrics, "metrics", false, "dump the metrics snapshot (JSON and a text table) to stderr at exit")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the metrics snapshot as JSON to this file at exit")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. localhost:6060) while running")
}

// Observed reports whether any observability flag was given — the condition
// under which Guard attaches a scope and enables the gated instrumentation.
func (o *ObsFlags) Observed() bool {
	return o != nil && (o.Metrics || o.MetricsOut != "" || o.DebugAddr != "")
}

// Dump writes the process-global registry snapshot to the sinks the flags
// name: stderr (JSON, then a text table) for -metrics, a JSON file for
// -metrics-out. Exit calls it on every path; calling it with no metrics flag
// set is a no-op.
func (o *ObsFlags) Dump() error {
	if o == nil || (!o.Metrics && o.MetricsOut == "") {
		return nil
	}
	snap := obs.Default().Snapshot()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if o.Metrics {
		fmt.Fprintf(os.Stderr, "%s\n", data)
		if err := snap.WriteTable(os.Stderr); err != nil {
			return err
		}
	}
	if o.MetricsOut != "" {
		if err := os.WriteFile(o.MetricsOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
	}
	return nil
}

// StartDebug starts the expvar/pprof diagnostics server when -debug-addr was
// given. A dead diagnostics endpoint must not kill the analysis, so failures
// are reported on stderr and swallowed.
func (o *ObsFlags) StartDebug() {
	if o == nil || o.DebugAddr == "" {
		return
	}
	srv, err := obs.StartDebugServer(o.DebugAddr, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars\n", srv.Addr)
}

// Limits receives the shared resource-limit, batch-runtime and observability
// flags.
type Limits struct {
	Timeout time.Duration
	MaxIter int64

	// ObsFlags is the embedded -metrics/-metrics-out/-debug-addr trio.
	ObsFlags

	// Journal, Resume, Seed, Workers and Sync are registered only by
	// SweepFlags — the batch-runtime surface of the sweep- and
	// campaign-running tools.
	Journal string
	Resume  bool
	Seed    int64
	Workers int
	// Sync is the journal sync policy: "close" (fsync on checkpoint/close,
	// the default), "always" (fsync every record), or a positive integer N
	// (fsync every Nth record).
	Sync string

	// Cache, CacheFile and CacheSize are the result-cache surface, also
	// registered by SweepFlags: -cache enables the content-addressed
	// result cache for the run, -cache-file additionally warms it from a
	// previous run's snapshot and persists it back at exit (implies
	// -cache), -cache-size bounds the entry count. Cached results are
	// bit-identical to fresh computations (DESIGN.md §14).
	Cache     bool
	CacheFile string
	CacheSize int

	// Solver selects the fixpoint solver sweeps run with (-solver):
	// auto (cutting-plane with monotone fallback, the default), monotone
	// or cutting. Results are bit-identical for every value; the flag only
	// trades iteration counts.
	Solver core.Solver

	// States bounds each exact schedule-graph exploration (-states), also
	// registered by SweepFlags: 0 = the engine default
	// (exact.DefaultMaxStates), negative = unbounded. Only the exact
	// scenarios consume it.
	States int

	// cache is the handle OpenCache built; SweepOptions attaches it and
	// Exit persists it to CacheFile.
	cache *memo.Cache
}

// active is the Limits most recently registered by Flags; Exit consults it so
// the metrics snapshot is dumped on every exit path, success and failure
// alike.
var active *Limits

// Flags registers -timeout, -max-iter and the observability flags (-metrics,
// -metrics-out, -debug-addr) on the default flag set and returns the
// destination. Call before flag.Parse.
func Flags() *Limits {
	l := &Limits{Seed: 1}
	flag.DurationVar(&l.Timeout, "timeout", 0, "abort the analysis after this wall-clock time (e.g. 30s; 0 = no limit)")
	flag.Int64Var(&l.MaxIter, "max-iter", 0, "abort after this many analysis steps across all loops (0 = no limit)")
	l.ObsFlags.Register(flag.CommandLine)
	active = l
	return l
}

// observed reports whether any observability flag was given.
func (l *Limits) observed() bool {
	return l != nil && l.ObsFlags.Observed()
}

// SweepFlags additionally registers the batch-runtime flags — -journal,
// -resume, -seed and -workers — used by the commands that run long sweeps
// and campaigns. Call between Flags and flag.Parse; it returns l for
// chaining. Campaign results are bit-identical for every -workers value:
// the flag only trades wall-clock for cores.
func (l *Limits) SweepFlags() *Limits {
	flag.StringVar(&l.Journal, "journal", "", "checkpoint journal file: completed grid points are appended so an aborted run can continue with -resume")
	flag.BoolVar(&l.Resume, "resume", false, "resume from the -journal file, restoring the grid points it already holds")
	flag.Int64Var(&l.Seed, "seed", 1, "random seed for synthetic task-set generation and retry jitter")
	flag.IntVar(&l.Workers, "workers", 0, "worker pool size for sweeps and campaigns (0 = GOMAXPROCS); results do not depend on it")
	flag.StringVar(&l.Sync, "sync", "close", "journal sync policy: close (fsync on checkpoint/close), always (fsync every record), or N (fsync every Nth record)")
	flag.BoolVar(&l.Cache, "cache", false, "memoize analysis results content-addressed by (function, Q, options); bit-identical, repeated sweeps become lookups")
	flag.StringVar(&l.CacheFile, "cache-file", "", "warm the result cache from this snapshot file and persist it back at exit (implies -cache)")
	flag.IntVar(&l.CacheSize, "cache-size", 0, "result cache entry bound (0 = default, negative = unbounded)")
	flag.Var(solverFlag{&l.Solver}, "solver", "fixpoint solver: auto, monotone or cutting (results are identical; cutting needs far fewer iterations)")
	flag.IntVar(&l.States, "states", 0, "state budget per exact schedule-graph exploration (0 = engine default, negative = unbounded)")
	return l
}

// solverFlag adapts core.Solver to flag.Value, so -solver typos fail at
// flag.Parse with the parser's error instead of deep inside a sweep.
type solverFlag struct{ s *core.Solver }

func (f solverFlag) String() string {
	if f.s == nil {
		return core.SolverAuto.String()
	}
	return f.s.String()
}

func (f solverFlag) Set(v string) error {
	s, err := core.ParseSolver(v)
	if err != nil {
		return err
	}
	*f.s = s
	return nil
}

// SyncPolicy parses the -sync flag into the journal.Options.SyncEvery value:
// "close" (or empty) → 0, "always" → 1, a positive integer N → N.
func (l *Limits) SyncPolicy() (int, error) {
	return ParseSyncPolicy(l.Sync)
}

// ParseSyncPolicy parses a sync-policy spelling shared by the CLI -sync flag
// and the server's -sync flag.
func ParseSyncPolicy(s string) (int, error) {
	switch s {
	case "", "close":
		return 0, nil
	case "always":
		return 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, Usagef("bad -sync %q (want close, always, or a positive integer)", s)
	}
	return n, nil
}

// Guard builds the guard scope the flags describe: nil (no limits, zero
// bookkeeping) when neither resource flag, journal nor observability flag was
// given. Every guarded run observes SIGINT/SIGTERM, so an interrupted command
// aborts through the normal cancellation path — partial results checkpointed,
// the metrics snapshot flushed, exit code 3 — instead of dying mid-write. (A
// -metrics-out run killed by SIGTERM used to lose its snapshot because the
// signal was only observed when a journal was attached; the flush contract is
// now every exit path, signals included.)
func (l *Limits) Guard() *guard.Ctx {
	if l == nil || (l.Timeout <= 0 && l.MaxIter <= 0 && l.Journal == "" && !l.observed()) {
		return nil
	}
	// The stop function is deliberately dropped: the notification must stay
	// installed for the whole process lifetime.
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	g := guard.New(ctx)
	if l.Timeout > 0 {
		g = g.WithTimeout(l.Timeout)
	}
	if l.MaxIter > 0 {
		g = g.WithBudget(l.MaxIter)
	}
	if l.observed() {
		// One process-wide scope over the default registry: everything the
		// analyses report lands in the snapshot the -metrics/-debug-addr
		// surfaces read. Enable() switches on the gated hot-path counters
		// (kernel query accounting) for the whole process.
		obs.Enable()
		g = g.WithObs(obs.NewScope(nil))
		l.StartDebug()
	}
	return g
}

// SweepOptions assembles the eval.SweepOptions the batch-runtime flags
// describe: the seeded default retry policy, the journal and resume view from
// OpenJournal, the result cache from OpenCache, and the guard's observability
// scope. Callers fill Qs (and anything else sweep-specific) on the returned
// value.
func (l *Limits) SweepOptions(g *guard.Ctx, j *journal.Journal, resume map[string]json.RawMessage) eval.SweepOptions {
	return eval.SweepOptions{
		Workers: l.Workers,
		Retry:   eval.DefaultSweepRetry(l.Seed),
		Journal: j,
		Resume:  resume,
		Memo:    l.cache,
		Solver:  l.Solver,
		Obs:     g.Obs(),
	}
}

// OpenCache builds the result cache the cache flags describe — nil (and no
// error) when caching was not requested — and warms it from -cache-file when
// that snapshot exists. The handle flows into sweeps via SweepOptions, and
// Exit persists it back to -cache-file on every exit path, so consecutive
// runs of the same analysis warm-start each other.
func (l *Limits) OpenCache() (*memo.Cache, error) {
	if l == nil || (!l.Cache && l.CacheFile == "") {
		return nil, nil
	}
	if l.cache != nil {
		return l.cache, nil
	}
	c := core.NewResultCache(memo.Options{MaxEntries: l.CacheSize, Obs: obs.NewScope(nil)})
	if l.CacheFile != "" {
		if _, err := c.Warm(l.CacheFile, journal.Options{}); err != nil {
			return nil, fmt.Errorf("warming result cache: %w", err)
		}
	}
	l.cache = c
	return c, nil
}

// saveCache persists the result cache to -cache-file; a no-op without both.
func (l *Limits) saveCache() error {
	if l == nil || l.cache == nil || l.CacheFile == "" {
		return nil
	}
	if err := l.cache.Persist(l.CacheFile, journal.Options{}); err != nil {
		return fmt.Errorf("persisting result cache: %w", err)
	}
	return nil
}

// DumpMetrics writes the process-global registry snapshot to the sinks the
// observability flags name; see ObsFlags.Dump.
func (l *Limits) DumpMetrics() error {
	if l == nil {
		return nil
	}
	return l.ObsFlags.Dump()
}

// OpenJournal opens the checkpoint journal the flags describe and returns it
// together with the resume view (nil unless -resume). Without -journal it
// returns all nils; -resume without -journal is a usage error. A fresh (non
// -resume) run removes any stale journal first, so the file always describes
// exactly one sweep.
func (l *Limits) OpenJournal() (*journal.Journal, map[string]json.RawMessage, error) {
	if l.Journal == "" {
		if l.Resume {
			return nil, nil, Usagef("-resume requires -journal")
		}
		return nil, nil, nil
	}
	every, err := l.SyncPolicy()
	if err != nil {
		return nil, nil, err
	}
	if !l.Resume {
		if err := os.Remove(l.Journal); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("removing stale journal: %w", err)
		}
	}
	j, recs, err := journal.OpenWith(l.Journal, journal.Options{SyncEvery: every})
	if err != nil {
		return nil, nil, err
	}
	if l.Resume {
		return j, journal.Latest(recs), nil
	}
	return j, nil, nil
}

// Checkpoint wires the journal's periodic durability sync into the guard
// scope: the analysis loops invoke it through guard's amortised poll,
// bounding how much checkpointed work a power loss can lose. A nil scope or
// journal is a no-op.
func Checkpoint(g *guard.Ctx, j *journal.Journal) {
	if g == nil || j == nil {
		return
	}
	g.WithCheckpoint(func(int64) { j.Sync() })
}

// Code maps an error to the exit-code contract. Admission rejections
// (guard.ErrOverload — the analysis service refused the work up front) land
// on ExitResource alongside timeouts and budget trips: in all three cases the
// analysis did not run to completion for resource reasons and retrying with
// more headroom is sound. Durable-storage failures (guard.ErrStorage — a
// journal or manifest write refused, torn or not fsync-able) land on
// ExitAnalysis with every other I/O failure: the run did not complete and
// retrying without fixing the disk will not help.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, guard.ErrCanceled),
		errors.Is(err, guard.ErrBudgetExceeded),
		errors.Is(err, guard.ErrOverload):
		return ExitResource
	case errors.Is(err, ErrUsage):
		return ExitUsage
	case errors.Is(err, guard.ErrStorage):
		return ExitAnalysis
	default:
		return ExitAnalysis
	}
}

// Exit prints "prog: err" on stderr (for non-nil err), dumps the metrics
// snapshot when the observability flags ask for one, and exits with
// Code(err). Success paths call Exit(prog, nil) so the snapshot covers clean
// runs too.
func Exit(prog string, err error) {
	if cerr := active.saveCache(); cerr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, cerr)
		if err == nil {
			err = cerr
		}
	}
	if merr := active.DumpMetrics(); merr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, merr)
		if err == nil {
			err = merr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(Code(err))
}

// Package cli holds the plumbing shared by every command-line tool: the
// -timeout / -max-iter resource-limit flags that build a guard scope, the
// usage-error sentinel, and the exit-code contract
//
//	0  success
//	1  analysis error (divergent bound, invariant violation, I/O failure, ...)
//	2  usage error (bad flags or arguments; also used by package flag itself)
//	3  resource limit hit (wall-clock timeout, cancellation or step budget)
//
// so scripts can distinguish "the analysis says no" from "you asked wrong"
// from "it did not finish in the allotted resources".
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"fnpr/internal/guard"
)

// Exit codes of the contract above.
const (
	ExitOK       = 0
	ExitAnalysis = 1
	ExitUsage    = 2
	ExitResource = 3
)

// ErrUsage marks command-line usage errors (exit code 2). Test with
// errors.Is.
var ErrUsage = errors.New("usage error")

// Usagef builds an ErrUsage-wrapped error.
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Limits receives the shared resource-limit flags.
type Limits struct {
	Timeout time.Duration
	MaxIter int64
}

// Flags registers -timeout and -max-iter on the default flag set and returns
// the destination. Call before flag.Parse.
func Flags() *Limits {
	l := &Limits{}
	flag.DurationVar(&l.Timeout, "timeout", 0, "abort the analysis after this wall-clock time (e.g. 30s; 0 = no limit)")
	flag.Int64Var(&l.MaxIter, "max-iter", 0, "abort after this many analysis steps across all loops (0 = no limit)")
	return l
}

// Guard builds the guard scope the flags describe: nil (no limits, zero
// bookkeeping) when neither flag was set.
func (l *Limits) Guard() *guard.Ctx {
	if l == nil || (l.Timeout <= 0 && l.MaxIter <= 0) {
		return nil
	}
	g := guard.New(context.Background())
	if l.Timeout > 0 {
		g = g.WithTimeout(l.Timeout)
	}
	if l.MaxIter > 0 {
		g = g.WithBudget(l.MaxIter)
	}
	return g
}

// Code maps an error to the exit-code contract.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, guard.ErrBudgetExceeded):
		return ExitResource
	case errors.Is(err, ErrUsage):
		return ExitUsage
	default:
		return ExitAnalysis
	}
}

// Exit prints "prog: err" on stderr (for non-nil err) and exits with
// Code(err).
func Exit(prog string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(Code(err))
}

package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"fnpr/internal/fsfault"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

func counter(name string) int64 { return obs.Default().Counter(name).Value() }

// TestSyncPolicy pins the -sync policy semantics via the journal.syncs
// counter: SyncEvery=1 fsyncs per append (WAL semantics), SyncEvery=N every
// Nth record, the default only on Sync/Close.
func TestSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		every     int
		appends   int64
		wantSyncs int64 // before Close
	}{
		{0, 5, 0},
		{1, 5, 5},
		{3, 7, 2},
	} {
		t.Run(fmt.Sprintf("every=%d", tc.every), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.log")
			j, _, err := OpenWith(path, Options{SyncEvery: tc.every})
			if err != nil {
				t.Fatal(err)
			}
			base := counter("journal.syncs")
			for i := int64(0); i < tc.appends; i++ {
				if err := j.Append(fmt.Sprintf("k-%d", i), point{Q: float64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if got := counter("journal.syncs") - base; got != tc.wantSyncs {
				t.Fatalf("after %d appends: %d syncs, want %d", tc.appends, got, tc.wantSyncs)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, recs, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(recs)) != tc.appends {
				t.Fatalf("replayed %d records, want %d", len(recs), tc.appends)
			}
		})
	}
}

// TestFaultMatrix drives every fsfault class through the journal and asserts
// the durability contract end to end: each injected fault is either fully
// recovered at the next Open (torn/corrupt tail truncated, valid prefix
// replayed byte-identically) or surfaced as a typed guard.ErrStorage error —
// never silent corruption, never a lost intact record.
func TestFaultMatrix(t *testing.T) {
	// Writes: 1 = header, 2..4 = records. Each subcase targets record 3
	// (write ordinal 4 is record #3; ordinal 3 is record #2).
	cases := []struct {
		name string
		plan fsfault.Plan
		sync int
		// appendErr: the sentinel Append (or Sync) must wrap, nil if the
		// fault is silent at write time.
		appendErr error
		// survivors: how many of the 3 appended records the next Open must
		// replay.
		survivors int
		truncates bool
	}{
		{
			name: "enospc-write-refused",
			plan: fsfault.Plan{FailWrite: 4}, // record #3 never reaches disk
			appendErr: syscall.ENOSPC, survivors: 2, truncates: false,
		},
		{
			name: "short-write-torn-tail",
			plan: fsfault.Plan{ShortWrite: 4}, // record #3 half-persisted
			appendErr: io.ErrShortWrite, survivors: 2, truncates: true,
		},
		{
			name: "bit-flip-silent-corruption",
			plan: fsfault.Plan{FlipBit: 4, FlipBitIndex: 40}, // record #3 corrupt on disk
			appendErr: nil, survivors: 2, truncates: true,
		},
		{
			name: "fsync-eio",
			plan: fsfault.Plan{FailSync: 1}, sync: 1, // record #3's WAL fsync fails
			appendErr: syscall.EIO, survivors: 3, truncates: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.log")
			in := fsfault.NewInjector(nil, tc.plan)
			sync := tc.sync
			if tc.name == "fsync-eio" {
				// Only the last append syncs: policy every-3rd record.
				sync = 3
			}
			j, _, err := OpenWith(path, Options{SyncEvery: sync, FS: in})
			if err != nil {
				t.Fatal(err)
			}
			var lastErr error
			for i := 1; i <= 3; i++ {
				if err := j.Append(fmt.Sprintf("rec-%d", i), point{Q: float64(i)}); err != nil {
					lastErr = err
				}
			}
			j.Close()
			if in.Fired() != 1 {
				t.Fatalf("injected %d faults, want exactly 1", in.Fired())
			}

			if tc.appendErr != nil {
				if lastErr == nil {
					t.Fatalf("fault was silent; want an error wrapping %v", tc.appendErr)
				}
				if !errors.Is(lastErr, guard.ErrStorage) {
					t.Fatalf("fault error %v is not typed guard.ErrStorage", lastErr)
				}
				if !errors.Is(lastErr, tc.appendErr) {
					t.Fatalf("fault error %v does not preserve the disk cause %v", lastErr, tc.appendErr)
				}
			} else if lastErr != nil {
				t.Fatalf("silent fault surfaced at write time: %v", lastErr)
			}

			// Recovery: reopen (real fs — the fault already happened) and
			// demand the valid prefix, bit-exact, and the truncation
			// bookkeeping.
			baseTrunc := counter("journal.truncations")
			j2, recs, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after fault: %v", err)
			}
			if len(recs) != tc.survivors {
				t.Fatalf("replayed %d records, want %d", len(recs), tc.survivors)
			}
			for i, r := range recs {
				var got point
				ok, err := Get(Latest(recs[:i+1]), r.Key, &got)
				if !ok || err != nil || got.Q != float64(i+1) {
					t.Fatalf("record %d corrupt after recovery: %+v ok=%v err=%v", i, got, ok, err)
				}
			}
			gotTrunc := counter("journal.truncations") - baseTrunc
			if tc.truncates && gotTrunc != 1 {
				t.Fatalf("journal.truncations advanced %d, want 1", gotTrunc)
			}
			if !tc.truncates && gotTrunc != 0 {
				t.Fatalf("journal.truncations advanced %d, want 0", gotTrunc)
			}
			// The recovered journal accepts appends and stays fully valid.
			if err := j2.Append("after", point{Q: 99}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, recs3, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs3) != tc.survivors+1 {
				t.Fatalf("after recovery append: %d records, want %d", len(recs3), tc.survivors+1)
			}
		})
	}
}

// TestSalvageRewriteFaulted injects a disk fault into the salvage rewrite
// itself (the temp-file path of a torn-tail recovery): the open must fail
// with a typed storage error and must NOT install a half-written journal
// over the original bytes.
func TestSalvageRewriteFaulted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("good", point{Q: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail on disk...
	if err := os.WriteFile(path, append(append([]byte(nil), intact...), `deadbeef {"k":"torn`...), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and a disk that refuses the salvage write (write 1 is the temp
	// file's payload — reads are not writes).
	in := fsfault.NewInjector(nil, fsfault.Plan{FailWrite: 1})
	_, _, err = OpenWith(path, Options{FS: in})
	if !errors.Is(err, guard.ErrStorage) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("faulted salvage: err %v, want guard.ErrStorage wrapping ENOSPC", err)
	}
	// The original file is untouched; a later open on a healthy disk
	// salvages normally.
	j2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Key != "good" {
		t.Fatalf("post-fault salvage replayed %v", recs)
	}
}

package journal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type point struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

func openOrDie(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, recs := openOrDie(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	// Awkward floats must survive bit-exactly (shortest-roundtrip JSON).
	pts := []point{
		{Q: 15, Value: 1.0 / 3.0},
		{Q: 16, Value: math.Nextafter(2, 3)},
		{Q: 18, Value: 1e-300},
	}
	for i, p := range pts {
		if err := j.Append(fmt.Sprintf("pt-%d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs2 := openOrDie(t, path)
	defer j2.Close()
	if len(recs2) != len(pts) {
		t.Fatalf("replayed %d records, want %d", len(recs2), len(pts))
	}
	m := Latest(recs2)
	for i, want := range pts {
		var got point
		ok, err := Get(m, fmt.Sprintf("pt-%d", i), &got)
		if err != nil || !ok {
			t.Fatalf("pt-%d: ok=%v err=%v", i, ok, err)
		}
		if got != want {
			t.Fatalf("pt-%d round-tripped to %+v, want %+v (must be bit-exact)", i, got, want)
		}
	}
}

func TestLatestLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := openOrDie(t, path)
	for v := 1; v <= 3; v++ {
		if err := j.Append("k", point{Value: float64(v)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, recs := openOrDie(t, path)
	var got point
	if ok, err := Get(Latest(recs), "k", &got); err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got.Value != 3 {
		t.Fatalf("latest value %g, want 3", got.Value)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a record line without
// its newline (and with a broken checksum) must be dropped on open, the file
// rewritten to the valid prefix, and appends must continue cleanly after it.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := openOrDie(t, path)
	if err := j.Append("good-1", point{Q: 1, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("good-2", point{Q: 2, Value: 20}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		tail string
	}{
		{"torn write without newline", `deadbeef {"k":"torn","v":{"q":3`},
		{"checksum mismatch", "00000000 {\"k\":\"bad\",\"v\":{\"q\":3,\"value\":30}}\n"},
		{"garbage line", "not a journal line at all\n"},
		{"short checksum", "abc {\"k\":\"x\",\"v\":1}\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), intact...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, recs := openOrDie(t, path)
			if len(recs) != 2 {
				t.Fatalf("replayed %d records after corruption, want the 2 intact ones", len(recs))
			}
			// The file itself must have been truncated to the valid prefix.
			now, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(now) != string(intact) {
				t.Fatalf("journal not truncated to valid prefix:\n%q\nwant\n%q", now, intact)
			}
			// And appending afterwards yields a fully valid journal again.
			if err := j2.Append("good-3", point{Q: 3, Value: 30}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, recs3 := openOrDie(t, path)
			if len(recs3) != 3 {
				t.Fatalf("after recovery append: %d records, want 3", len(recs3))
			}
			// Restore the 2-record journal for the next subcase.
			if err := os.WriteFile(path, intact, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorruptionMidFile drops everything from the first bad record on, even
// when intact-looking records follow it: a hole in the log makes the suffix
// untrustworthy.
func TestCorruptionMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := openOrDie(t, path)
	for i := 0; i < 4; i++ {
		if err := j.Append(fmt.Sprintf("pt-%d", i), point{Q: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// lines: header, pt-0..pt-3, "". Flip one byte inside pt-1's JSON.
	lines[2] = strings.Replace(lines[2], "\"q\":1", "\"q\":9", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openOrDie(t, path)
	j2.Close()
	if len(recs) != 1 || recs[0].Key != "pt-0" {
		t.Fatalf("replayed %v, want only pt-0 (suffix after corruption dropped)", recs)
	}
}

func TestIncompatibleHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	if err := os.WriteFile(path, []byte("some other format v9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path)
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("foreign file opened as journal: err=%v", err)
	}
}

func TestEmptyFileReinitialised(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := openOrDie(t, path)
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("empty file replayed %d records", len(recs))
	}
	if err := j.Append("k", 1); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := openOrDie(t, path)
	j.Close()
	if err := j.Append("k", 1); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestConcurrentAppend exercises the mutex under the race detector: parallel
// workers appending like the sweep pool does must interleave whole records.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := openOrDie(t, path)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(fmt.Sprintf("w%d-%d", w, i), point{Q: float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	_, recs := openOrDie(t, path)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d (torn interleaving?)", len(recs), workers*per)
	}
}

// Package journal implements the crash-safe checkpoint log the batch runtime
// writes as a sweep progresses: one checksummed record per completed unit of
// work, appended to a plain file. After a crash, SIGINT/SIGTERM or budget
// exhaustion, reopening the journal recovers every record that reached disk
// intact — a torn or corrupted tail is detected by checksum and truncated to
// the last valid record via a write-temp-then-rename rewrite, never parsed.
//
// The format is deliberately simple and greppable: a header line, then one
// record per line,
//
//	fnpr-journal v1
//	<crc32c hex8> <compact JSON of {"k":key,"v":value}>
//
// where the checksum covers the JSON bytes exactly. JSON encodes float64 with
// shortest-roundtrip precision, so a value replayed from the journal is
// bit-identical to the value that was computed — the property the
// kill-and-resume tests assert end to end.
//
// Durability is configurable per journal (Options.SyncEvery): fsync after
// every record for write-ahead logs whose records must survive the ack (the
// server's job manifest), every N records to amortize, or only on
// checkpoint/Close (the default — right for sweep journals whose loss costs
// recomputation, not correctness). All file I/O goes through an
// fsfault.FS seam, so the crash-safety tests can inject ENOSPC, torn writes,
// bit flips and fsync failures deterministically; every injected fault either
// recovers at the next Open (tail truncation) or surfaces as a typed
// guard.ErrStorage error — never silent corruption.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"fnpr/internal/fsfault"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
)

// Journal traffic is orders of magnitude rarer than kernel queries (one
// append per completed unit of work), so its counters report unconditionally
// into the process-global registry: journal.appends, journal.syncs,
// journal.records_replayed and journal.truncations (torn-tail recoveries).

// header identifies the format; bump the version on incompatible changes.
const header = "fnpr-journal v1"

// ErrIncompatible reports a journal whose header names a format this code
// does not read.
var ErrIncompatible = errors.New("journal: incompatible format")

// castagnoli is the CRC-32C table (same polynomial iSCSI and ext4 use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed journal entry: an application key and the JSON it
// stored. Keys are free-form; later records with the same key supersede
// earlier ones (Latest folds that).
type Record struct {
	Key  string          `json:"k"`
	Data json.RawMessage `json:"v"`
}

// Options configures a journal's durability and its filesystem.
type Options struct {
	// SyncEvery selects the sync policy: 0 (the default) syncs only on
	// Sync/Close — the checkpoint callback's cadence; 1 fsyncs after every
	// Append (write-ahead-log semantics: when Append returns, the record
	// survives a power loss); N > 1 fsyncs every Nth record.
	SyncEvery int
	// FS is the filesystem the journal reads and writes through; nil means
	// the real OS. Tests inject disk faults here (fsfault.Injector).
	FS fsfault.FS
}

// Journal is an open, append-position journal. Append is safe for concurrent
// use by sweep workers.
type Journal struct {
	mu       sync.Mutex
	f        fsfault.File
	path     string
	every    int
	unsynced int
}

// Open opens (or creates) the journal at path with default options: sync on
// checkpoint/Close, the real filesystem. See OpenWith.
func Open(path string) (*Journal, []Record, error) {
	return OpenWith(path, Options{})
}

// OpenWith opens (or creates) the journal at path, replays the valid records
// and returns the journal positioned for appends. A corrupted or torn tail —
// whether from a crash mid-write or a flipped bit — is truncated: the valid
// prefix is rewritten to a temp file in the same directory and atomically
// renamed over the journal, so the file on disk is always a fully valid
// journal. Dropped trailing bytes are reported via journal.truncations only —
// recovery is silent by design; callers who care compare record counts across
// runs.
func OpenWith(path string, opts Options) (*Journal, []Record, error) {
	fs := fsfault.Real(opts.FS)
	raw, err := fs.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return create(path, opts)
	case err != nil:
		return nil, nil, guard.Storagef(err, "journal: reading %s", path)
	}
	if len(raw) == 0 {
		// Created but never written (e.g. crash between create and the
		// header write): re-initialise in place.
		return create(path, opts)
	}
	recs, validLen, err := scan(raw)
	if err != nil {
		return nil, nil, err
	}
	obs.Default().Counter("journal.records_replayed").Add(int64(len(recs)))
	if validLen < len(raw) {
		obs.Default().Counter("journal.truncations").Inc()
		if err := rewrite(fs, path, raw[:validLen]); err != nil {
			return nil, nil, err
		}
	}
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, guard.Storagef(err, "journal: reopening %s", path)
	}
	return &Journal{f: f, path: path, every: opts.SyncEvery}, recs, nil
}

// create initialises a fresh journal file with just the header.
func create(path string, opts Options) (*Journal, []Record, error) {
	fs := fsfault.Real(opts.FS)
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, guard.Storagef(err, "journal: creating %s", path)
	}
	if _, err := io.WriteString(f, header+"\n"); err != nil {
		f.Close()
		return nil, nil, guard.Storagef(err, "journal: writing header of %s", path)
	}
	return &Journal{f: f, path: path, every: opts.SyncEvery}, nil, nil
}

// scan parses raw journal bytes, returning the replayed records and the byte
// length of the valid prefix. Parsing stops (without error) at the first
// malformed or checksum-failing line — that and everything after it is the
// torn (or corrupted) tail.
func scan(raw []byte) ([]Record, int, error) {
	rd := bufio.NewReader(bytes.NewReader(raw))
	first, err := rd.ReadString('\n')
	if strings.TrimSuffix(first, "\n") != header {
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("journal: reading header: %w", err)
		}
		return nil, 0, fmt.Errorf("%w: header %q, want %q", ErrIncompatible, strings.TrimSpace(first), header)
	}
	validLen := len(first)
	var recs []Record
	for {
		line, err := rd.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		// A line without its terminating newline is a torn write even if
		// its checksum happens to pass a prefix; require the full line.
		if err != nil {
			break
		}
		rec, ok := parseLine(strings.TrimSuffix(line, "\n"))
		if !ok {
			break
		}
		recs = append(recs, rec)
		validLen += len(line)
	}
	return recs, validLen, nil
}

// parseLine decodes "<crc hex8> <json>" and verifies the checksum.
func parseLine(line string) (Record, bool) {
	sum, body, found := strings.Cut(line, " ")
	if !found || len(sum) != 8 {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(sum, "%08x", &want); err != nil {
		return Record{}, false
	}
	if crc32.Checksum([]byte(body), castagnoli) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// rewrite atomically replaces path with the given valid prefix: write-temp in
// the same directory, fsync, rename over, fsync the directory. This is the
// only mutation ever applied to existing journal bytes.
func rewrite(fs fsfault.FS, path string, valid []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".recover-*")
	if err != nil {
		return guard.Storagef(err, "journal: recovery temp file")
	}
	defer fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(valid); err != nil {
		tmp.Close()
		return guard.Storagef(err, "journal: writing recovery file")
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return guard.Storagef(err, "journal: syncing recovery file")
	}
	if err := tmp.Close(); err != nil {
		return guard.Storagef(err, "journal: closing recovery file")
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		return guard.Storagef(err, "journal: installing recovered journal")
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Append marshals v and appends one checksummed record. The line is written
// with a single Write call; on a crash mid-write the torn tail is dropped at
// the next Open. Under a SyncEvery policy the record (and everything before
// it) is additionally fsynced per the policy before Append returns; any write
// or sync failure surfaces as a typed guard.ErrStorage error, and the bytes
// on disk remain a valid journal prefix for the next Open to salvage.
func (j *Journal) Append(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshaling %q: %w", key, err)
	}
	body, err := json.Marshal(Record{Key: key, Data: data})
	if err != nil {
		return fmt.Errorf("journal: marshaling record %q: %w", key, err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum(body, castagnoli), body)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, err := io.WriteString(j.f, line); err != nil {
		return guard.Storagef(err, "journal: appending %q", key)
	}
	obs.Default().Counter("journal.appends").Inc()
	if j.every > 0 {
		j.unsynced++
		if j.unsynced >= j.every {
			if err := j.syncLocked(); err != nil {
				return guard.Storagef(err, "journal: syncing after %q", key)
			}
		}
	}
	return nil
}

// Sync flushes appended records to stable storage. The guard scope's
// checkpoint callback calls it periodically, bounding how much completed work
// a power loss can lose.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.syncLocked(); err != nil {
		return guard.Storagef(err, "journal: syncing %s", j.path)
	}
	return nil
}

// syncLocked fsyncs under j.mu and resets the per-policy record count.
func (j *Journal) syncLocked() error {
	obs.Default().Counter("journal.syncs").Inc()
	j.unsynced = 0
	return j.f.Sync()
}

// Close syncs and closes the journal. The file stays on disk — deleting a
// completed journal is the caller's decision.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if serr := j.f.Sync(); serr != nil {
		err = guard.Storagef(serr, "journal: syncing %s at close", j.path)
	}
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = guard.Storagef(cerr, "journal: closing %s", j.path)
	}
	j.f = nil
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Latest folds replayed records into a key → data map, last write winning —
// the resume view of a journal.
func Latest(recs []Record) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(recs))
	for _, r := range recs {
		out[r.Key] = r.Data
	}
	return out
}

// Get unmarshals the record stored under key into out, reporting whether the
// key was present.
func Get(m map[string]json.RawMessage, key string, out any) (bool, error) {
	data, ok := m[key]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, fmt.Errorf("journal: decoding %q: %w", key, err)
	}
	return true, nil
}

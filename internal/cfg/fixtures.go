package cfg

// Figure1 builds the loop-free CFG of Figure 1 of the paper. The figure gives
// per-block execution-time intervals [emin,emax] (part a) and the resulting
// earliest/latest start offsets [smin,smax] (part b). The topology below was
// reconstructed so that the offset analysis reproduces every printed value:
//
//	block  exec       offsets
//	b0     [15,25]    [0,0]
//	b1     [15,35]    [15,25]
//	b2     [20,40]    [15,25]
//	b3     [20,30]    [30,65]
//	b4     [5,5]      [50,95]
//	b5     [10,10]    [55,100]
//	b6     [15,25]    [55,100]
//	b7     [40,50]    [65,125]
//	b8     [10,20]    [50,95]
//	b9     [5,5]      [60,175]
//	b10    [15,25]    [65,180]
//
// Edges: 0->{1,2}; {1,2}->3; 3->{4,8}; 4->{5,6}; {5,6}->7; {7,8}->9; 9->10.
func Figure1() *Graph {
	g := New()
	ids := make([]BlockID, 11)
	intervals := [][2]float64{
		{15, 25}, // 0
		{15, 35}, // 1
		{20, 40}, // 2
		{20, 30}, // 3
		{5, 5},   // 4
		{10, 10}, // 5
		{15, 25}, // 6
		{40, 50}, // 7
		{10, 20}, // 8
		{5, 5},   // 9
		{15, 25}, // 10
	}
	for i, iv := range intervals {
		ids[i] = g.AddSimple("", iv[0], iv[1])
	}
	edges := [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {2, 3},
		{3, 4}, {3, 8},
		{4, 5}, {4, 6},
		{5, 7}, {6, 7},
		{7, 9}, {8, 9},
		{9, 10},
	}
	for _, e := range edges {
		g.MustEdge(ids[e[0]], ids[e[1]])
	}
	return g
}

// Figure1Offsets lists the expected [smin, smax] start offsets of Figure 1,
// indexed by block, for use in tests and the demo binary.
func Figure1Offsets() [][2]float64 {
	return [][2]float64{
		{0, 0},
		{15, 25},
		{15, 25},
		{30, 65},
		{50, 95},
		{55, 100},
		{55, 100},
		{65, 125},
		{50, 95},
		{60, 175},
		{65, 180},
	}
}

// Diamond builds the canonical 4-block if/else diamond with the given
// intervals, a small reusable test fixture.
func Diamond(top, left, right, bottom [2]float64) *Graph {
	g := New()
	a := g.AddSimple("top", top[0], top[1])
	b := g.AddSimple("left", left[0], left[1])
	c := g.AddSimple("right", right[0], right[1])
	d := g.AddSimple("bottom", bottom[0], bottom[1])
	g.MustEdge(a, b)
	g.MustEdge(a, c)
	g.MustEdge(b, d)
	g.MustEdge(c, d)
	return g
}

// SimpleLoop builds entry -> header -> body -> header (back edge), header ->
// exit, with the given iteration bound — the smallest natural-loop fixture.
func SimpleLoop(bound Bound) *Graph {
	g := New()
	entry := g.AddSimple("entry", 1, 2)
	header := g.AddSimple("header", 1, 1)
	body := g.AddSimple("body", 3, 5)
	exit := g.AddSimple("exit", 2, 2)
	g.MustEdge(entry, header)
	g.MustEdge(header, body)
	g.MustEdge(body, header)
	g.MustEdge(header, exit)
	g.LoopBounds[header] = bound
	return g
}

package cfg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Offsets holds the result of the execution-interval analysis of Section IV:
// per basic block, its earliest and latest start offsets and the derived
// window of instants during which the block may be executing, relative to the
// start of the task's (isolated) execution.
type Offsets struct {
	g *Graph

	// SMin and SMax map block ID to its earliest and latest start offset
	// (Equations 1-3 of the paper).
	SMin, SMax []float64

	// BCET and WCET bound the whole task's isolated execution time: the
	// min over exits of (smin + emin) and max over exits of (smax + emax).
	BCET, WCET float64
}

// AnalyzeOffsets runs the breadth-first interval analysis of the paper
// (Equations 1-3) on an acyclic graph:
//
//	smin_entry = smax_entry = 0
//	smin_b = min over predecessors x of (smin_x + emin_x)
//	smax_b = max over predecessors x of (smax_x + emax_x)
//
// Graphs with natural loops must be collapsed first (CollapseLoops); calling
// this on a cyclic graph returns an error.
func (g *Graph) AnalyzeOffsets() (*Offsets, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, errors.New("cfg: offset analysis requires an acyclic graph; collapse loops first")
	}
	o := &Offsets{
		g:    g,
		SMin: make([]float64, g.Len()),
		SMax: make([]float64, g.Len()),
	}
	for i := range o.SMin {
		o.SMin[i] = math.Inf(1)
		o.SMax[i] = math.Inf(-1)
	}
	o.SMin[g.entry] = 0
	o.SMax[g.entry] = 0
	for _, b := range order {
		if b != g.entry && len(g.pred[b]) == 0 {
			// Unreachable would have failed Validate; a second
			// source would be a structural error.
			return nil, fmt.Errorf("cfg: block %s has no predecessor and is not the entry", g.blocks[b].Label())
		}
		for _, x := range g.pred[b] {
			bx := g.blocks[x]
			if v := o.SMin[x] + bx.EMin; v < o.SMin[b] {
				o.SMin[b] = v
			}
			if v := o.SMax[x] + bx.EMax; v > o.SMax[b] {
				o.SMax[b] = v
			}
		}
	}
	o.BCET = math.Inf(1)
	o.WCET = 0
	for _, e := range g.Exits() {
		be := g.blocks[e]
		if v := o.SMin[e] + be.EMin; v < o.BCET {
			o.BCET = v
		}
		if v := o.SMax[e] + be.EMax; v > o.WCET {
			o.WCET = v
		}
	}
	return o, nil
}

// Window returns the interval of instants [lo, hi] during which block b may
// be executing: it can start no earlier than smin_b and, starting as late as
// smax_b and running for up to emax_b, can still be live until smax_b+emax_b.
//
// Note: the paper's prose states the window as [smin_b, smin_b + emax_b];
// that under-approximates the live range of blocks whose start time varies
// (smax_b > smin_b). We use the sound superset [smin_b, smax_b + emax_b] —
// a larger BB(t) only makes the resulting delay function more conservative,
// never unsound.
func (o *Offsets) Window(b BlockID) (lo, hi float64) {
	return o.SMin[b], o.SMax[b] + o.g.blocks[b].EMax
}

// Live reports whether block b may be executing at instant t.
func (o *Offsets) Live(b BlockID, t float64) bool {
	lo, hi := o.Window(b)
	return t >= lo && t <= hi
}

// BB returns the set of blocks that might be executing at instant t, in
// ascending ID order. For t within [0, BCET) the set is never empty.
func (o *Offsets) BB(t float64) []BlockID {
	var out []BlockID
	for id := range o.SMin {
		if o.Live(BlockID(id), t) {
			out = append(out, BlockID(id))
		}
	}
	return out
}

// Boundaries returns the sorted distinct window endpoints of all blocks.
// Between two consecutive boundaries the set BB(t) is constant, so any
// function of BB(t) — in particular the delay function fi — is piecewise
// constant with breakpoints drawn from this list.
func (o *Offsets) Boundaries() []float64 {
	set := make(map[float64]struct{}, 2*len(o.SMin))
	for id := range o.SMin {
		lo, hi := o.Window(BlockID(id))
		set[lo] = struct{}{}
		set[hi] = struct{}{}
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// Graph returns the graph the offsets were computed on.
func (o *Offsets) Graph() *Graph { return o.g }

package cfg

import (
	"fmt"
	"sort"
)

// Dominators computes the immediate dominator of every reachable block using
// the classic iterative data-flow algorithm of Cooper, Harvey and Kennedy.
// The entry block dominates itself; the returned slice maps block ID to its
// immediate dominator (idom[entry] == entry, NoBlock for unreachable blocks).
func (g *Graph) Dominators() []BlockID {
	n := len(g.blocks)
	idom := make([]BlockID, n)
	for i := range idom {
		idom[i] = NoBlock
	}
	if g.entry == NoBlock {
		return idom
	}

	// Reverse post-order over the depth-first spanning tree.
	order := g.reversePostOrder()
	pos := make([]int, n) // position of each block in rpo
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range order {
		pos[id] = i
	}

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[g.entry] = g.entry
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.entry {
				continue
			}
			var newIdom BlockID = NoBlock
			for _, p := range g.pred[b] {
				if idom[p] == NoBlock {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == NoBlock {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != NoBlock && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func (g *Graph) reversePostOrder() []BlockID {
	n := len(g.blocks)
	seen := make([]bool, n)
	var post []BlockID
	var dfs func(BlockID)
	dfs = func(b BlockID) {
		seen[b] = true
		// Visit successors in ID order for determinism.
		succs := append([]BlockID(nil), g.succ[b]...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if g.entry != NoBlock {
		dfs(g.entry)
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether a dominates b under the given idom tree.
func Dominates(idom []BlockID, a, b BlockID) bool {
	if a == b {
		return true
	}
	for b != NoBlock {
		parent := idom[b]
		if parent == b { // reached entry
			return a == b
		}
		if parent == a {
			return true
		}
		b = parent
	}
	return false
}

// Loop describes one natural loop.
type Loop struct {
	// Header is the loop's single entry block (the target of its back
	// edges).
	Header BlockID
	// Body is the set of blocks in the loop, including the header,
	// sorted by ID.
	Body []BlockID
	// BackEdges lists the tail blocks of the loop's back edges.
	BackEdges []BlockID
	// Depth is the nesting depth: 1 for an outermost loop.
	Depth int
}

// Contains reports whether the loop body includes the block.
func (l Loop) Contains(b BlockID) bool {
	i := sort.Search(len(l.Body), func(i int) bool { return l.Body[i] >= b })
	return i < len(l.Body) && l.Body[i] == b
}

// NaturalLoops finds all natural loops of the graph: for every back edge
// t->h (where h dominates t), the loop is h plus all blocks that can reach t
// without passing through h. Loops sharing a header are merged. The result is
// sorted innermost-first (descending depth, then header ID), which is the
// order required for loop collapsing.
//
// The second return value is false when the graph has a cycle that is not a
// natural loop (an irreducible region); such graphs cannot be analysed by
// the interval method of the paper.
func (g *Graph) NaturalLoops() ([]Loop, bool) {
	idom := g.Dominators()
	byHeader := make(map[BlockID]*Loop)

	for t := range g.succ {
		for _, h := range g.succ[t] {
			if Dominates(idom, h, BlockID(t)) {
				// Back edge t->h: collect the natural loop.
				l, ok := byHeader[h]
				if !ok {
					l = &Loop{Header: h}
					byHeader[h] = l
				}
				l.BackEdges = append(l.BackEdges, BlockID(t))
				collectLoopBody(g, l, h, BlockID(t))
			}
		}
	}

	// Check reducibility: every cycle must be covered by a natural loop.
	if !g.reducibleGiven(byHeader) {
		return nil, false
	}

	loops := make([]Loop, 0, len(byHeader))
	for _, l := range byHeader {
		sort.Slice(l.Body, func(i, j int) bool { return l.Body[i] < l.Body[j] })
		sort.Slice(l.BackEdges, func(i, j int) bool { return l.BackEdges[i] < l.BackEdges[j] })
		loops = append(loops, *l)
	}
	// Compute nesting depth: loop A nests inside loop B when A's header is
	// in B's body and A != B.
	for i := range loops {
		loops[i].Depth = 1
		for j := range loops {
			if i != j && loops[j].Contains(loops[i].Header) && loops[i].Header != loops[j].Header {
				loops[i].Depth++
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth // innermost first
		}
		return loops[i].Header < loops[j].Header
	})
	return loops, true
}

func collectLoopBody(g *Graph, l *Loop, header, tail BlockID) {
	in := make(map[BlockID]bool, len(l.Body))
	for _, b := range l.Body {
		in[b] = true
	}
	add := func(b BlockID) {
		if !in[b] {
			in[b] = true
			l.Body = append(l.Body, b)
		}
	}
	add(header)
	stack := []BlockID{}
	if !in[tail] {
		add(tail)
		stack = append(stack, tail)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.pred[n] {
			if !in[p] {
				add(p)
				stack = append(stack, p)
			}
		}
	}
}

// reducibleGiven checks that removing all identified back edges leaves an
// acyclic graph — the standard reducibility criterion.
func (g *Graph) reducibleGiven(byHeader map[BlockID]*Loop) bool {
	back := make(map[[2]BlockID]bool)
	for h, l := range byHeader {
		for _, t := range l.BackEdges {
			back[[2]BlockID{t, h}] = true
		}
	}
	// Kahn's algorithm ignoring back edges.
	n := len(g.blocks)
	indeg := make([]int, n)
	for t := range g.succ {
		for _, s := range g.succ[t] {
			if !back[[2]BlockID{BlockID(t), s}] {
				indeg[s]++
			}
		}
	}
	var ready []BlockID
	for id := range indeg {
		if indeg[id] == 0 {
			ready = append(ready, BlockID(id))
		}
	}
	count := 0
	for len(ready) > 0 {
		t := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		count++
		for _, s := range g.succ[t] {
			if back[[2]BlockID{t, s}] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return count == n
}

// IsReducible reports whether all cycles in the graph are natural loops.
func (g *Graph) IsReducible() bool {
	_, ok := g.NaturalLoops()
	return ok
}

// CheckLoopBounds verifies that every loop header has an iteration bound in
// g.LoopBounds and that the bounds are sane.
func (g *Graph) CheckLoopBounds() error {
	loops, ok := g.NaturalLoops()
	if !ok {
		return fmt.Errorf("cfg: graph is irreducible")
	}
	for _, l := range loops {
		b, ok := g.LoopBounds[l.Header]
		if !ok {
			return fmt.Errorf("cfg: loop headed at %s has no iteration bound", g.blocks[l.Header].Label())
		}
		if b.Max < 1 || b.Min < 0 || b.Min > b.Max {
			return fmt.Errorf("cfg: loop headed at %s has invalid bound [%d,%d]", g.blocks[l.Header].Label(), b.Min, b.Max)
		}
	}
	return nil
}

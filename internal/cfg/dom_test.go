package cfg

import (
	"testing"
)

func TestDominatorsDiamond(t *testing.T) {
	g := Diamond([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	idom := g.Dominators()
	// entry dominates itself; left/right dominated by top; bottom's idom is top.
	if idom[0] != 0 {
		t.Fatalf("idom[entry] = %d, want 0", idom[0])
	}
	if idom[1] != 0 || idom[2] != 0 {
		t.Fatalf("idom[left,right] = %d,%d; want 0,0", idom[1], idom[2])
	}
	if idom[3] != 0 {
		t.Fatalf("idom[bottom] = %d, want 0", idom[3])
	}
}

func TestDominatesRelation(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	c := g.AddSimple("c", 1, 1)
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	idom := g.Dominators()
	if !Dominates(idom, a, c) {
		t.Fatal("a should dominate c in a chain")
	}
	if !Dominates(idom, b, c) {
		t.Fatal("b should dominate c in a chain")
	}
	if Dominates(idom, c, a) {
		t.Fatal("c should not dominate a")
	}
	if !Dominates(idom, b, b) {
		t.Fatal("every block dominates itself")
	}
}

func TestNaturalLoopsSimple(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 3})
	loops, ok := g.NaturalLoops()
	if !ok {
		t.Fatal("SimpleLoop reported irreducible")
	}
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if g.Block(l.Header).Name != "header" {
		t.Fatalf("loop header = %s", g.Block(l.Header).Name)
	}
	if len(l.Body) != 2 {
		t.Fatalf("loop body = %v, want {header, body}", l.Body)
	}
	if !l.Contains(l.Header) {
		t.Fatal("loop body excludes its own header")
	}
	if l.Depth != 1 {
		t.Fatalf("depth = %d, want 1", l.Depth)
	}
}

// nestedLoops builds entry -> h1 -> h2 -> b2 -> h2 (inner), b2 -> t1 -> h1
// (outer), h1 -> exit.
func nestedLoops() (*Graph, BlockID, BlockID) {
	g := New()
	entry := g.AddSimple("entry", 1, 1)
	h1 := g.AddSimple("h1", 1, 1)
	h2 := g.AddSimple("h2", 1, 1)
	b2 := g.AddSimple("b2", 2, 3)
	t1 := g.AddSimple("t1", 1, 2)
	exit := g.AddSimple("exit", 1, 1)
	g.MustEdge(entry, h1)
	g.MustEdge(h1, h2)
	g.MustEdge(h2, b2)
	g.MustEdge(b2, h2) // inner back edge
	g.MustEdge(b2, t1)
	g.MustEdge(t1, h1) // outer back edge
	g.MustEdge(h1, exit)
	g.LoopBounds[h1] = Bound{Min: 1, Max: 4}
	g.LoopBounds[h2] = Bound{Min: 1, Max: 5}
	return g, h1, h2
}

func TestNaturalLoopsNested(t *testing.T) {
	g, h1, h2 := nestedLoops()
	loops, ok := g.NaturalLoops()
	if !ok {
		t.Fatal("nested loops reported irreducible")
	}
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// Innermost first.
	if loops[0].Header != h2 {
		t.Fatalf("innermost loop header = %v, want %v", loops[0].Header, h2)
	}
	if loops[0].Depth != 2 || loops[1].Depth != 1 {
		t.Fatalf("depths = %d,%d; want 2,1", loops[0].Depth, loops[1].Depth)
	}
	if loops[1].Header != h1 {
		t.Fatalf("outer loop header = %v, want %v", loops[1].Header, h1)
	}
	// Outer body contains inner body.
	for _, b := range loops[0].Body {
		if !loops[1].Contains(b) {
			t.Fatalf("outer loop body missing inner block %v", b)
		}
	}
}

func TestIrreducibleGraphDetected(t *testing.T) {
	// Classic irreducible region: entry branches into a cycle at two
	// points, so the cycle has no single dominating header.
	g := New()
	entry := g.AddSimple("entry", 1, 1)
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	exit := g.AddSimple("exit", 1, 1)
	g.MustEdge(entry, a)
	g.MustEdge(entry, b)
	g.MustEdge(a, b)
	g.MustEdge(b, a)
	g.MustEdge(a, exit)
	if _, ok := g.NaturalLoops(); ok {
		t.Fatal("irreducible graph not detected")
	}
	if g.IsReducible() {
		t.Fatal("IsReducible true for irreducible graph")
	}
}

func TestAcyclicGraphHasNoLoops(t *testing.T) {
	g := Figure1()
	loops, ok := g.NaturalLoops()
	if !ok {
		t.Fatal("Figure 1 graph reported irreducible")
	}
	if len(loops) != 0 {
		t.Fatalf("Figure 1 graph has %d loops, want 0", len(loops))
	}
}

func TestCheckLoopBounds(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 3})
	if err := g.CheckLoopBounds(); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
	delete(g.LoopBounds, 1)
	if err := g.CheckLoopBounds(); err == nil {
		t.Fatal("missing bound accepted")
	}
	g.LoopBounds[1] = Bound{Min: 3, Max: 1}
	if err := g.CheckLoopBounds(); err == nil {
		t.Fatal("inverted bound accepted")
	}
	g.LoopBounds[1] = Bound{Min: 0, Max: 0}
	if err := g.CheckLoopBounds(); err == nil {
		t.Fatal("Max=0 bound accepted")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	entry := g.AddSimple("entry", 1, 1)
	h := g.AddSimple("h", 2, 4)
	exit := g.AddSimple("exit", 1, 1)
	g.MustEdge(entry, h)
	g.MustEdge(h, h)
	g.MustEdge(h, exit)
	g.LoopBounds[h] = Bound{Min: 2, Max: 3}
	loops, ok := g.NaturalLoops()
	if !ok || len(loops) != 1 {
		t.Fatalf("self-loop detection: ok=%v loops=%v", ok, loops)
	}
	if len(loops[0].Body) != 1 || loops[0].Body[0] != h {
		t.Fatalf("self-loop body = %v, want [%v]", loops[0].Body, h)
	}
}

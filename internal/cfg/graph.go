// Package cfg implements control-flow graphs and the execution-interval
// analysis of Section IV of the paper ("Coupling preemption delay cost with
// execution points").
//
// A Graph is a set of basic blocks connected by directed edges. Every block b
// carries a minimum and maximum execution time [EMin, EMax] (produced, in a
// real toolchain, by a WCET estimation tool). The central analysis computes,
// for every block, its earliest and latest start offsets smin_b and smax_b
// (Equations 1-3 of the paper) by a breadth-first traversal of the graph,
// and from those the window of wall-clock instants during which the block
// might be executing when the task runs in isolation. The set BB(t) of blocks
// possibly live at instant t is the basis for the preemption delay function
// fi(t) = max_{b in BB(t)} CRPD_b built in package delay.
//
// Graphs with natural loops are handled by collapsing every loop (innermost
// first) into a single synthetic block whose execution interval accounts for
// the loop bound, exactly as the paper prescribes; acyclic call graphs are
// handled by analysing callees first (see Program).
package cfg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// BlockID identifies a basic block within one Graph.
type BlockID int

// NoBlock is the zero-value sentinel for "no block".
const NoBlock BlockID = -1

// Block is one basic block: a maximal sequence of instructions with a single
// entry and a single exit, delimited by jumps.
type Block struct {
	// ID is the block's identity within its Graph, assigned by AddBlock.
	ID BlockID

	// Name is an optional human-readable label (defaults to the ID).
	Name string

	// EMin and EMax bound the execution time of one traversal of the
	// block in isolation (no preemption). They come from a WCET tool in a
	// real flow; here from package wcet or from test fixtures.
	EMin, EMax float64

	// Call names a function invoked by this block, or "" for none. Calls
	// are resolved by Program.Analyze, which inlines the callee's
	// execution interval into the block before offset analysis.
	Call string
}

// Label returns the block's display name.
func (b Block) Label() string {
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// Graph is a single-entry control-flow graph.
type Graph struct {
	blocks []Block
	succ   [][]BlockID
	pred   [][]BlockID
	entry  BlockID

	// LoopBounds gives, per loop-header block, the maximum (and
	// optionally minimum) number of iterations of the loop it heads.
	// Required for graphs with cycles before offset analysis.
	LoopBounds map[BlockID]Bound
}

// Bound is an iteration bound for a natural loop: the loop body executes
// between Min and Max times. Min may be 0 (loop may be skipped entirely when
// its exit test fails on entry); Max must be >= Min and >= 1.
type Bound struct {
	Min, Max int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{entry: NoBlock, LoopBounds: make(map[BlockID]Bound)}
}

// AddBlock appends a block and returns its ID. The first added block becomes
// the entry unless SetEntry overrides it.
func (g *Graph) AddBlock(b Block) BlockID {
	id := BlockID(len(g.blocks))
	b.ID = id
	g.blocks = append(g.blocks, b)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	if g.entry == NoBlock {
		g.entry = id
	}
	return id
}

// AddSimple is a convenience wrapper adding a block with the given name and
// execution interval.
func (g *Graph) AddSimple(name string, emin, emax float64) BlockID {
	return g.AddBlock(Block{Name: name, EMin: emin, EMax: emax})
}

// AddEdge adds a directed edge from -> to. Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to BlockID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("cfg: edge %d->%d references unknown block", from, to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return nil
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// MustEdge is AddEdge that panics on error, for fixture construction.
func (g *Graph) MustEdge(from, to BlockID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// SetEntry designates the entry block.
func (g *Graph) SetEntry(id BlockID) error {
	if !g.valid(id) {
		return fmt.Errorf("cfg: entry %d references unknown block", id)
	}
	g.entry = id
	return nil
}

// Entry returns the entry block ID (NoBlock for an empty graph).
func (g *Graph) Entry() BlockID { return g.entry }

// Len returns the number of blocks.
func (g *Graph) Len() int { return len(g.blocks) }

// Block returns the block with the given ID.
func (g *Graph) Block(id BlockID) Block {
	return g.blocks[id]
}

// SetInterval updates a block's execution-time interval in place.
func (g *Graph) SetInterval(id BlockID, emin, emax float64) {
	g.blocks[id].EMin = emin
	g.blocks[id].EMax = emax
}

// Succs returns the successor IDs of a block (shared slice; do not mutate).
func (g *Graph) Succs(id BlockID) []BlockID { return g.succ[id] }

// Preds returns the predecessor IDs of a block (shared slice; do not mutate).
func (g *Graph) Preds(id BlockID) []BlockID { return g.pred[id] }

// Exits returns the blocks with no successors, in ID order.
func (g *Graph) Exits() []BlockID {
	var out []BlockID
	for id := range g.blocks {
		if len(g.succ[id]) == 0 {
			out = append(out, BlockID(id))
		}
	}
	return out
}

func (g *Graph) valid(id BlockID) bool {
	return id >= 0 && int(id) < len(g.blocks)
}

// Validate checks structural well-formedness: a designated entry, all blocks
// reachable from it, non-negative execution intervals with EMin <= EMax, and
// at least one exit block.
func (g *Graph) Validate() error {
	if len(g.blocks) == 0 {
		return errors.New("cfg: empty graph")
	}
	if g.entry == NoBlock {
		return errors.New("cfg: no entry block")
	}
	for _, b := range g.blocks {
		if !(b.EMin >= 0) || !(b.EMax >= b.EMin) || math.IsInf(b.EMax, 0) {
			// The negated comparisons also catch NaN, whose ordered
			// comparisons are all false.
			return fmt.Errorf("cfg: block %s has invalid interval [%g,%g]", b.Label(), b.EMin, b.EMax)
		}
	}
	reach := g.reachable()
	for id := range g.blocks {
		if !reach[id] {
			return fmt.Errorf("cfg: block %s unreachable from entry", g.blocks[id].Label())
		}
	}
	if len(g.Exits()) == 0 {
		return errors.New("cfg: no exit block (every block has successors)")
	}
	return nil
}

func (g *Graph) reachable() []bool {
	seen := make([]bool, len(g.blocks))
	if g.entry == NoBlock {
		return seen
	}
	stack := []BlockID{g.entry}
	seen[g.entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// IsAcyclic reports whether the graph contains no cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// TopoOrder returns a topological order of the blocks, or an error when the
// graph has a cycle. Ties are broken by block ID for determinism.
func (g *Graph) TopoOrder() ([]BlockID, error) {
	indeg := make([]int, len(g.blocks))
	for id := range g.blocks {
		for range g.pred[id] {
			indeg[id]++
		}
	}
	var ready []BlockID
	for id := range g.blocks {
		if indeg[id] == 0 {
			ready = append(ready, BlockID(id))
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	order := make([]BlockID, 0, len(g.blocks))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping ready sorted for determinism.
				i := sort.Search(len(ready), func(i int) bool { return ready[i] >= s })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = s
			}
		}
	}
	if len(order) != len(g.blocks) {
		return nil, errors.New("cfg: graph contains a cycle")
	}
	return order, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		blocks:     append([]Block(nil), g.blocks...),
		succ:       make([][]BlockID, len(g.succ)),
		pred:       make([][]BlockID, len(g.pred)),
		entry:      g.entry,
		LoopBounds: make(map[BlockID]Bound, len(g.LoopBounds)),
	}
	for i := range g.succ {
		c.succ[i] = append([]BlockID(nil), g.succ[i]...)
		c.pred[i] = append([]BlockID(nil), g.pred[i]...)
	}
	for k, v := range g.LoopBounds {
		c.LoopBounds[k] = v
	}
	return c
}

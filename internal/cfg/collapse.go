package cfg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Collapsed is the result of loop collapsing: an acyclic graph in which every
// natural loop of the original has been replaced by a single synthetic block,
// plus the provenance map needed to relate synthetic blocks back to the
// original blocks they cover (so per-block properties such as CRPD can be
// aggregated conservatively).
type Collapsed struct {
	// Graph is the loop-free graph, safe for AnalyzeOffsets.
	Graph *Graph

	// Origins maps every block of Graph to the original block IDs it
	// stands for. Plain (non-loop) blocks map to themselves; a collapsed
	// loop node maps to all blocks of the loop body.
	Origins map[BlockID][]BlockID
}

// CollapseLoops reduces every natural loop of g (innermost first, as the
// paper prescribes) to a single block whose execution interval accounts for
// the loop's iteration bound:
//
//	EMin(loop) = Bound.Min × (shortest path through one iteration)
//	EMax(loop) = Bound.Max × (longest  path through one iteration)
//
// where one iteration runs from the loop header to a back-edge tail,
// inclusive. Iteration bounds are taken from g.LoopBounds and are mandatory
// for every loop. The input graph is not modified.
func (g *Graph) CollapseLoops() (*Collapsed, error) {
	if err := g.CheckLoopBounds(); err != nil {
		return nil, err
	}
	cur := g.Clone()
	// origins[b] for current graph blocks.
	origins := make(map[BlockID][]BlockID, cur.Len())
	for id := 0; id < cur.Len(); id++ {
		origins[BlockID(id)] = []BlockID{BlockID(id)}
	}

	for {
		loops, ok := cur.NaturalLoops()
		if !ok {
			return nil, errors.New("cfg: irreducible graph")
		}
		if len(loops) == 0 {
			break
		}
		// Collapse one innermost loop, then re-discover: collapsing
		// changes IDs, so working loop-by-loop keeps bookkeeping simple.
		l := loops[0]
		bound, ok := cur.LoopBounds[l.Header]
		if !ok {
			return nil, fmt.Errorf("cfg: loop at %s lost its bound during collapsing", cur.blocks[l.Header].Label())
		}
		iterMin, iterMax, err := cur.iterationInterval(l)
		if err != nil {
			return nil, err
		}
		next, remap, err := cur.collapseOne(l, float64(bound.Min)*iterMin, float64(bound.Max)*iterMax)
		if err != nil {
			return nil, err
		}
		// Rebuild origins under the remapping.
		newOrigins := make(map[BlockID][]BlockID, next.Len())
		for oldID, news := range remap {
			newOrigins[news] = append(newOrigins[news], origins[oldID]...)
		}
		for id, os := range newOrigins {
			sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
			newOrigins[id] = dedupBlockIDs(os)
		}
		origins = newOrigins
		cur = next
	}
	return &Collapsed{Graph: cur, Origins: origins}, nil
}

func dedupBlockIDs(s []BlockID) []BlockID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// iterationInterval computes the shortest and longest execution time of one
// loop iteration: a path inside the loop body from the header to any
// back-edge tail, inclusive of both. The body without its back edges must be
// acyclic (guaranteed when inner loops were collapsed first).
func (g *Graph) iterationInterval(l Loop) (emin, emax float64, err error) {
	inBody := make(map[BlockID]bool, len(l.Body))
	for _, b := range l.Body {
		inBody[b] = true
	}
	isTail := make(map[BlockID]bool, len(l.BackEdges))
	for _, t := range l.BackEdges {
		isTail[t] = true
	}
	// Longest/shortest path on the body DAG (back edges to header excluded).
	// dist[min|max][b]: path time from header up to and including b.
	dmin := make(map[BlockID]float64, len(l.Body))
	dmax := make(map[BlockID]float64, len(l.Body))
	// Topological order of body blocks ignoring edges to the header.
	order, err := g.bodyTopo(l, inBody)
	if err != nil {
		return 0, 0, err
	}
	for _, b := range order {
		if b == l.Header {
			dmin[b] = g.blocks[b].EMin
			dmax[b] = g.blocks[b].EMax
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range g.pred[b] {
			if !inBody[p] || b == l.Header {
				continue
			}
			if v, ok := dmin[p]; ok && v < lo {
				lo = v
			}
			if v, ok := dmax[p]; ok && v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) {
			// No in-body predecessor: block only reachable via the
			// header's back edge, impossible in a natural loop.
			return 0, 0, fmt.Errorf("cfg: loop body block %s unreachable from header", g.blocks[b].Label())
		}
		dmin[b] = lo + g.blocks[b].EMin
		dmax[b] = hi + g.blocks[b].EMax
	}
	emin, emax = math.Inf(1), math.Inf(-1)
	for t := range isTail {
		if v, ok := dmin[t]; ok && v < emin {
			emin = v
		}
		if v, ok := dmax[t]; ok && v > emax {
			emax = v
		}
	}
	if math.IsInf(emin, 1) || math.IsInf(emax, -1) {
		return 0, 0, errors.New("cfg: loop has no reachable back-edge tail")
	}
	return emin, emax, nil
}

// bodyTopo returns a topological order of the loop body, ignoring back edges
// into the header.
func (g *Graph) bodyTopo(l Loop, inBody map[BlockID]bool) ([]BlockID, error) {
	indeg := make(map[BlockID]int, len(l.Body))
	for _, b := range l.Body {
		indeg[b] = 0
	}
	for _, b := range l.Body {
		for _, s := range g.succ[b] {
			if inBody[s] && s != l.Header {
				indeg[s]++
			}
		}
	}
	var ready []BlockID
	for _, b := range l.Body {
		if indeg[b] == 0 {
			ready = append(ready, b)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []BlockID
	for len(ready) > 0 {
		b := ready[0]
		ready = ready[1:]
		order = append(order, b)
		for _, s := range g.succ[b] {
			if !inBody[s] || s == l.Header {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				i := sort.Search(len(ready), func(i int) bool { return ready[i] >= s })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = s
			}
		}
	}
	if len(order) != len(l.Body) {
		return nil, errors.New("cfg: loop body is cyclic after excluding back edges (inner loop not collapsed?)")
	}
	return order, nil
}

// collapseOne rewrites the graph with loop l replaced by a single block with
// the given execution interval. It returns the new graph and a remapping
// old block ID -> new block ID (all body blocks map to the synthetic node).
func (g *Graph) collapseOne(l Loop, emin, emax float64) (*Graph, map[BlockID]BlockID, error) {
	inBody := make(map[BlockID]bool, len(l.Body))
	for _, b := range l.Body {
		inBody[b] = true
	}
	next := New()
	remap := make(map[BlockID]BlockID, g.Len())
	var loopNode BlockID = NoBlock
	for id := 0; id < g.Len(); id++ {
		b := BlockID(id)
		if inBody[b] {
			if loopNode == NoBlock {
				loopNode = next.AddBlock(Block{
					Name: fmt.Sprintf("loop(%s)", g.blocks[l.Header].Label()),
					EMin: emin,
					EMax: emax,
				})
			}
			remap[b] = loopNode
			continue
		}
		remap[b] = next.AddBlock(g.blocks[b])
	}
	// Edges: body-internal edges vanish; edges crossing the body boundary
	// attach to the loop node; self-loops on the loop node are dropped.
	for from := 0; from < g.Len(); from++ {
		for _, to := range g.succ[from] {
			nf, nt := remap[BlockID(from)], remap[to]
			if nf == nt && inBody[BlockID(from)] && inBody[to] {
				continue
			}
			if err := next.AddEdge(nf, nt); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := next.SetEntry(remap[g.entry]); err != nil {
		return nil, nil, err
	}
	// Carry over loop bounds of loops that survive (headers outside the
	// collapsed body).
	for h, b := range g.LoopBounds {
		if !inBody[h] {
			next.LoopBounds[remap[h]] = b
		}
	}
	return next, remap, nil
}

// Program is a set of functions, each with its own control-flow graph,
// related by an acyclic call graph. Blocks reference callees by name via
// Block.Call. Analyze processes leaves first, folding each callee's
// [BCET, WCET] into the calling block's execution interval, exactly as the
// paper prescribes for tasks containing function calls.
type Program struct {
	funcs map[string]*Graph
	root  string
}

// NewProgram creates a program with the given root (task entry) function.
func NewProgram(root string) *Program {
	return &Program{funcs: make(map[string]*Graph), root: root}
}

// AddFunc registers a function's CFG under the given name.
func (p *Program) AddFunc(name string, g *Graph) error {
	if name == "" {
		return errors.New("cfg: empty function name")
	}
	if _, dup := p.funcs[name]; dup {
		return fmt.Errorf("cfg: duplicate function %q", name)
	}
	p.funcs[name] = g
	return nil
}

// Func returns the named function's graph, or nil.
func (p *Program) Func(name string) *Graph { return p.funcs[name] }

// Root returns the root function name.
func (p *Program) Root() string { return p.root }

// FuncInterval is a function's isolated execution-time interval.
type FuncInterval struct{ BCET, WCET float64 }

// ProgramResult is the outcome of Program.Analyze.
type ProgramResult struct {
	// Intervals holds each function's isolated execution interval.
	Intervals map[string]FuncInterval

	// Root holds the root function's offsets, computed on its
	// loop-collapsed, call-inlined graph.
	Root *Offsets

	// RootCollapsed is the collapsed root graph the offsets refer to,
	// with provenance back to the original root graph's blocks.
	RootCollapsed *Collapsed
}

// Analyze processes the call graph bottom-up (leaves first). It fails on
// recursive (cyclic) call graphs, unknown callees, or irreducible CFGs.
func (p *Program) Analyze() (*ProgramResult, error) {
	if _, ok := p.funcs[p.root]; !ok {
		return nil, fmt.Errorf("cfg: root function %q not defined", p.root)
	}
	order, err := p.callOrder()
	if err != nil {
		return nil, err
	}
	res := &ProgramResult{Intervals: make(map[string]FuncInterval, len(order))}
	inlined := make(map[string]*Collapsed, len(order))
	for _, name := range order {
		g := p.funcs[name].Clone()
		// Fold callee intervals into calling blocks.
		for id := 0; id < g.Len(); id++ {
			b := g.Block(BlockID(id))
			if b.Call == "" {
				continue
			}
			iv, ok := res.Intervals[b.Call]
			if !ok {
				return nil, fmt.Errorf("cfg: function %q calls undefined or unanalysed %q", name, b.Call)
			}
			g.SetInterval(BlockID(id), b.EMin+iv.BCET, b.EMax+iv.WCET)
		}
		col, err := g.CollapseLoops()
		if err != nil {
			return nil, fmt.Errorf("cfg: function %q: %w", name, err)
		}
		off, err := col.Graph.AnalyzeOffsets()
		if err != nil {
			return nil, fmt.Errorf("cfg: function %q: %w", name, err)
		}
		res.Intervals[name] = FuncInterval{BCET: off.BCET, WCET: off.WCET}
		inlined[name] = col
		if name == p.root {
			res.Root = off
			res.RootCollapsed = col
		}
	}
	return res, nil
}

// callOrder returns the function names in bottom-up (callee before caller)
// order, or an error when the call graph is cyclic or references unknown
// functions.
func (p *Program) callOrder() ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(p.funcs))
	var order []string
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("cfg: recursive call cycle through %q", name)
		case black:
			return nil
		}
		g, ok := p.funcs[name]
		if !ok {
			return fmt.Errorf("cfg: call to undefined function %q", name)
		}
		color[name] = gray
		// Deterministic callee order.
		var callees []string
		seen := map[string]bool{}
		for id := 0; id < g.Len(); id++ {
			if c := g.Block(BlockID(id)).Call; c != "" && !seen[c] {
				seen[c] = true
				callees = append(callees, c)
			}
		}
		sort.Strings(callees)
		for _, c := range callees {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[name] = black
		order = append(order, name)
		return nil
	}
	if err := visit(p.root); err != nil {
		return nil, err
	}
	return order, nil
}

// CallOrder returns the function names reachable from the root in bottom-up
// (callee before caller) order — the order in which per-function analyses
// must run. It fails on recursive call graphs or undefined callees.
func (p *Program) CallOrder() ([]string, error) {
	return p.callOrder()
}

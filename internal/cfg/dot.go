package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, labelling each block with its
// name and execution interval. Useful for debugging and documentation.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  node [shape=box];\n")
	for id := 0; id < g.Len(); id++ {
		blk := g.Block(BlockID(id))
		label := fmt.Sprintf("%s\\n[%g,%g]", blk.Label(), blk.EMin, blk.EMax)
		if blk.Call != "" {
			label += fmt.Sprintf("\\ncall %s", blk.Call)
		}
		attrs := ""
		if BlockID(id) == g.entry {
			attrs = ", style=bold"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", id, label, attrs)
	}
	for from := 0; from < g.Len(); from++ {
		succs := append([]BlockID(nil), g.Succs(BlockID(from))...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, to := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// OffsetsTable renders a per-block table of execution intervals, start
// offsets and live windows — the textual equivalent of Figure 1 of the paper.
func (o *Offsets) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s %14s\n",
		"block", "emin", "emax", "smin", "smax", "window")
	for id := 0; id < o.g.Len(); id++ {
		blk := o.g.Block(BlockID(id))
		lo, hi := o.Window(BlockID(id))
		fmt.Fprintf(&b, "%-12s %12g %12g %12g %12g [%6g,%6g]\n",
			blk.Label(), blk.EMin, blk.EMax, o.SMin[id], o.SMax[id], lo, hi)
	}
	fmt.Fprintf(&b, "BCET=%g WCET=%g\n", o.BCET, o.WCET)
	return b.String()
}

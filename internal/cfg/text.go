package cfg

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a small line-oriented text format for control-flow
// graphs, so the command-line tools can load user-provided programs:
//
//	# comment
//	block <name> <emin> <emax> [call=<func>]
//	edge <from> <to>
//	entry <name>
//	loop <header> <min> <max>
//
// Block references are by name; the entry defaults to the first block.

// Format renders the graph in the text format; Parse(Format(g)) reproduces
// the graph up to block IDs.
func (g *Graph) Format(w io.Writer) error {
	for id := 0; id < g.Len(); id++ {
		b := g.Block(BlockID(id))
		if b.Call != "" {
			if _, err := fmt.Fprintf(w, "block %s %g %g call=%s\n", b.Label(), b.EMin, b.EMax, b.Call); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "block %s %g %g\n", b.Label(), b.EMin, b.EMax); err != nil {
			return err
		}
	}
	if g.entry != NoBlock {
		if _, err := fmt.Fprintf(w, "entry %s\n", g.Block(g.entry).Label()); err != nil {
			return err
		}
	}
	for from := 0; from < g.Len(); from++ {
		succs := append([]BlockID(nil), g.Succs(BlockID(from))...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, to := range succs {
			if _, err := fmt.Fprintf(w, "edge %s %s\n", g.Block(BlockID(from)).Label(), g.Block(to).Label()); err != nil {
				return err
			}
		}
	}
	headers := make([]BlockID, 0, len(g.LoopBounds))
	for h := range g.LoopBounds {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })
	for _, h := range headers {
		b := g.LoopBounds[h]
		if _, err := fmt.Fprintf(w, "loop %s %d %d\n", g.Block(h).Label(), b.Min, b.Max); err != nil {
			return err
		}
	}
	return nil
}

// parseFinite parses a float and rejects NaN and infinities, which
// strconv.ParseFloat happily accepts ("nan", "inf").
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// Parse reads a graph in the text format.
func Parse(r io.Reader) (*Graph, error) {
	g := New()
	byName := make(map[string]BlockID)
	sc := bufio.NewScanner(r)
	lineNo := 0
	resolve := func(name string) (BlockID, error) {
		id, ok := byName[name]
		if !ok {
			return NoBlock, fmt.Errorf("cfg: line %d: unknown block %q", lineNo, name)
		}
		return id, nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "block":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("cfg: line %d: block needs name emin emax [call=f]", lineNo)
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("cfg: line %d: duplicate block %q", lineNo, name)
			}
			emin, err := parseFinite(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: bad emin: %w", lineNo, err)
			}
			emax, err := parseFinite(fields[3])
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: bad emax: %w", lineNo, err)
			}
			b := Block{Name: name, EMin: emin, EMax: emax}
			if len(fields) == 5 {
				if !strings.HasPrefix(fields[4], "call=") {
					return nil, fmt.Errorf("cfg: line %d: expected call=<func>, got %q", lineNo, fields[4])
				}
				b.Call = strings.TrimPrefix(fields[4], "call=")
			}
			byName[name] = g.AddBlock(b)
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("cfg: line %d: edge needs from to", lineNo)
			}
			from, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			to, err := resolve(fields[2])
			if err != nil {
				return nil, err
			}
			if err := g.AddEdge(from, to); err != nil {
				return nil, fmt.Errorf("cfg: line %d: %w", lineNo, err)
			}
		case "entry":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cfg: line %d: entry needs a block name", lineNo)
			}
			id, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			if err := g.SetEntry(id); err != nil {
				return nil, fmt.Errorf("cfg: line %d: %w", lineNo, err)
			}
		case "loop":
			if len(fields) != 4 {
				return nil, fmt.Errorf("cfg: line %d: loop needs header min max", lineNo)
			}
			id, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			min, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: bad loop min: %w", lineNo, err)
			}
			max, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: bad loop max: %w", lineNo, err)
			}
			g.LoopBounds[id] = Bound{Min: min, Max: max}
		default:
			return nil, fmt.Errorf("cfg: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("cfg: empty graph")
	}
	return g, nil
}

package cfg

import (
	"strings"
	"testing"
)

// FuzzParse asserts the text parser never panics and that any graph it
// accepts survives a Format/Parse round trip with identical structure.
func FuzzParse(f *testing.F) {
	f.Add("block a 1 2\nblock b 2 3\nedge a b\nentry a\n")
	f.Add("block x 0 0\n")
	f.Add("block h 1 1\nedge h h\nloop h 1 3\n")
	f.Add("# only a comment\n")
	f.Add("block a 1 2 call=f\nblock b 1 1\nedge a b")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Parse(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var b strings.Builder
		if err := g.Format(&b); err != nil {
			t.Fatalf("accepted graph failed to format: %v", err)
		}
		g2, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip parse failed: %v\ninput: %q\nformatted: %q", err, in, b.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round trip changed block count %d -> %d", g.Len(), g2.Len())
		}
		for id := 0; id < g.Len(); id++ {
			if len(g2.Succs(BlockID(id))) != len(g.Succs(BlockID(id))) {
				t.Fatalf("round trip changed successors of block %d", id)
			}
			a, b := g.Block(BlockID(id)), g2.Block(BlockID(id))
			if a.EMin != b.EMin || a.EMax != b.EMax || a.Call != b.Call {
				t.Fatalf("round trip changed block %d: %+v -> %+v", id, a, b)
			}
		}
	})
}

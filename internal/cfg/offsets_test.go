package cfg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestFigure1Offsets checks that the offset analysis reproduces every value
// printed in Figure 1 of the paper.
func TestFigure1Offsets(t *testing.T) {
	g := Figure1()
	o, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	want := Figure1Offsets()
	for id, w := range want {
		if o.SMin[id] != w[0] || o.SMax[id] != w[1] {
			t.Errorf("block %d: offsets [%g,%g], want [%g,%g]",
				id, o.SMin[id], o.SMax[id], w[0], w[1])
		}
	}
	if o.BCET != 80 {
		t.Errorf("BCET = %g, want 80", o.BCET)
	}
	if o.WCET != 205 {
		t.Errorf("WCET = %g, want 205", o.WCET)
	}
}

func TestAnalyzeOffsetsRejectsCycles(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 2})
	if _, err := g.AnalyzeOffsets(); err == nil {
		t.Fatal("AnalyzeOffsets accepted cyclic graph")
	}
}

func TestAnalyzeOffsetsRejectsInvalid(t *testing.T) {
	g := New()
	g.AddSimple("a", 5, 1)
	if _, err := g.AnalyzeOffsets(); err == nil {
		t.Fatal("AnalyzeOffsets accepted invalid graph")
	}
}

func TestOffsetsChain(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 2, 4)
	b := g.AddSimple("b", 3, 5)
	c := g.AddSimple("c", 1, 1)
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	o, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	if o.SMin[b] != 2 || o.SMax[b] != 4 {
		t.Fatalf("b offsets [%g,%g], want [2,4]", o.SMin[b], o.SMax[b])
	}
	if o.SMin[c] != 5 || o.SMax[c] != 9 {
		t.Fatalf("c offsets [%g,%g], want [5,9]", o.SMin[c], o.SMax[c])
	}
	if o.BCET != 6 || o.WCET != 10 {
		t.Fatalf("BCET,WCET = %g,%g; want 6,10", o.BCET, o.WCET)
	}
}

func TestWindowUsesSMax(t *testing.T) {
	// A block that can start anywhere in [2,4] and run up to 5 units is
	// live until 9, not 7 as the paper's (typo'd) formula would give.
	g := New()
	a := g.AddSimple("a", 2, 4)
	b := g.AddSimple("b", 3, 5)
	g.MustEdge(a, b)
	o, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := o.Window(b)
	if lo != 2 || hi != 9 {
		t.Fatalf("window = [%g,%g], want [2,9]", lo, hi)
	}
	if !o.Live(b, 8.5) {
		t.Fatal("block should be live at 8.5")
	}
	if o.Live(b, 9.5) {
		t.Fatal("block should not be live at 9.5")
	}
}

func TestBBNeverEmptyBeforeBCET(t *testing.T) {
	g := Figure1()
	o, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 10, 40, 79.9} {
		if len(o.BB(tt)) == 0 {
			t.Errorf("BB(%g) empty before BCET=%g", tt, o.BCET)
		}
	}
}

func TestBBEntryOnly(t *testing.T) {
	g := Figure1()
	o, _ := g.AnalyzeOffsets()
	bb := o.BB(5)
	// At t=5 only block 0 can be running (blocks 1,2 start at >= 15).
	if len(bb) != 1 || bb[0] != 0 {
		t.Fatalf("BB(5) = %v, want [0]", bb)
	}
}

func TestBoundariesSortedDistinct(t *testing.T) {
	g := Figure1()
	o, _ := g.AnalyzeOffsets()
	bs := o.Boundaries()
	for i := 1; i < len(bs); i++ {
		if bs[i-1] >= bs[i] {
			t.Fatalf("boundaries not strictly increasing: %v", bs)
		}
	}
	if bs[0] != 0 {
		t.Fatalf("first boundary = %g, want 0", bs[0])
	}
}

func TestOffsetsTableRendering(t *testing.T) {
	g := Figure1()
	o, _ := g.AnalyzeOffsets()
	tbl := o.Table()
	for _, want := range []string{"block", "smin", "WCET=205", "BCET=80"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// randomDAG builds a random layered DAG with n blocks; every block has at
// least one predecessor in an earlier layer, so the graph is connected.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New()
	ids := make([]BlockID, n)
	for i := 0; i < n; i++ {
		emin := float64(r.Intn(20) + 1)
		emax := emin + float64(r.Intn(20))
		ids[i] = g.AddSimple("", emin, emax)
	}
	for i := 1; i < n; i++ {
		// Connect to 1..3 random earlier blocks.
		k := r.Intn(3) + 1
		for j := 0; j < k; j++ {
			g.MustEdge(ids[r.Intn(i)], ids[i])
		}
	}
	return g
}

// Property: on any random DAG, smin <= smax for all blocks, entry is [0,0],
// and offsets are monotone along edges: smin_b >= smin_a + emin_a for a->b.
func TestOffsetsInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(30) + 2
		g := randomDAG(r, n)
		o, err := g.AnalyzeOffsets()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if o.SMin[g.Entry()] != 0 || o.SMax[g.Entry()] != 0 {
			t.Fatalf("trial %d: entry offsets not [0,0]", trial)
		}
		for id := 0; id < g.Len(); id++ {
			if o.SMin[id] > o.SMax[id] {
				t.Fatalf("trial %d: block %d smin %g > smax %g", trial, id, o.SMin[id], o.SMax[id])
			}
			for _, s := range g.Succs(BlockID(id)) {
				blk := g.Block(BlockID(id))
				if o.SMin[s] > o.SMin[id]+blk.EMin+1e-9 {
					t.Fatalf("trial %d: smin not minimal along edge %d->%d", trial, id, s)
				}
				if o.SMax[s] < o.SMax[id]+blk.EMax-1e-9 {
					t.Fatalf("trial %d: smax not maximal along edge %d->%d", trial, id, s)
				}
			}
		}
		if o.BCET > o.WCET {
			t.Fatalf("trial %d: BCET %g > WCET %g", trial, o.BCET, o.WCET)
		}
	}
}

// Property (quick): in a chain of k identical blocks with interval [e,e],
// block i starts exactly at i*e and BCET == WCET == k*e.
func TestOffsetsDeterministicChain(t *testing.T) {
	f := func(k8, e8 uint8) bool {
		k := int(k8%10) + 1
		e := float64(e8%50) + 1
		g := New()
		var prev BlockID = NoBlock
		for i := 0; i < k; i++ {
			id := g.AddSimple("", e, e)
			if prev != NoBlock {
				g.MustEdge(prev, id)
			}
			prev = id
		}
		o, err := g.AnalyzeOffsets()
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if o.SMin[i] != float64(i)*e || o.SMax[i] != float64(i)*e {
				return false
			}
		}
		return o.BCET == float64(k)*e && o.WCET == o.BCET
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BB(t) returned blocks are exactly those whose window contains t.
func TestBBConsistentWithWindows(t *testing.T) {
	g := Figure1()
	o, _ := g.AnalyzeOffsets()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tt := r.Float64() * (o.WCET + 10)
		bb := o.BB(tt)
		inBB := map[BlockID]bool{}
		for _, b := range bb {
			inBB[b] = true
		}
		for id := 0; id < g.Len(); id++ {
			lo, hi := o.Window(BlockID(id))
			want := tt >= lo && tt <= hi
			if inBB[BlockID(id)] != want {
				t.Fatalf("BB(%g) inconsistent for block %d", tt, id)
			}
		}
	}
}

func TestWindowBoundsFinite(t *testing.T) {
	g := Figure1()
	o, _ := g.AnalyzeOffsets()
	for id := 0; id < g.Len(); id++ {
		lo, hi := o.Window(BlockID(id))
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo > hi {
			t.Fatalf("block %d window [%g,%g] invalid", id, lo, hi)
		}
	}
}

package cfg

import (
	"math"
	"strings"
	"testing"
)

func TestAddBlockAssignsIDsAndEntry(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 1, 2)
	b := g.AddSimple("b", 3, 4)
	if a != 0 || b != 1 {
		t.Fatalf("IDs = %d, %d; want 0, 1", a, b)
	}
	if g.Entry() != a {
		t.Fatalf("entry = %d, want %d", g.Entry(), a)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestAddEdgeRejectsUnknownBlocks(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 1, 2)
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("AddEdge accepted unknown target")
	}
	if err := g.AddEdge(99, a); err == nil {
		t.Fatal("AddEdge accepted unknown source")
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 1, 2)
	b := g.AddSimple("b", 1, 2)
	g.MustEdge(a, b)
	g.MustEdge(a, b)
	if n := len(g.Succs(a)); n != 1 {
		t.Fatalf("duplicate edge stored: %d successors", n)
	}
	if n := len(g.Preds(b)); n != 1 {
		t.Fatalf("duplicate edge stored: %d predecessors", n)
	}
}

func TestSetEntry(t *testing.T) {
	g := New()
	g.AddSimple("a", 1, 2)
	b := g.AddSimple("b", 1, 2)
	if err := g.SetEntry(b); err != nil {
		t.Fatal(err)
	}
	if g.Entry() != b {
		t.Fatalf("entry = %d, want %d", g.Entry(), b)
	}
	if err := g.SetEntry(42); err == nil {
		t.Fatal("SetEntry accepted unknown block")
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("Validate accepted empty graph")
	}
}

func TestValidateUnreachableBlock(t *testing.T) {
	g := New()
	g.AddSimple("a", 1, 2)
	g.AddSimple("orphan", 1, 2)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("Validate = %v, want unreachable error", err)
	}
}

func TestValidateBadInterval(t *testing.T) {
	g := New()
	g.AddSimple("a", 5, 2) // emin > emax
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted emin > emax")
	}
	g2 := New()
	g2.AddSimple("a", -1, 2)
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted negative emin")
	}
}

func TestValidateNoExit(t *testing.T) {
	g := New()
	a := g.AddSimple("a", 1, 1)
	b := g.AddSimple("b", 1, 1)
	g.MustEdge(a, b)
	g.MustEdge(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted graph with no exit")
	}
}

func TestExits(t *testing.T) {
	g := Diamond([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	ex := g.Exits()
	if len(ex) != 1 || g.Block(ex[0]).Name != "bottom" {
		t.Fatalf("Exits = %v", ex)
	}
}

func TestTopoOrder(t *testing.T) {
	g := Diamond([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[BlockID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for id := 0; id < g.Len(); id++ {
		for _, s := range g.Succs(BlockID(id)) {
			if pos[BlockID(id)] >= pos[s] {
				t.Fatalf("topo order violates edge %d->%d", id, s)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 3})
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted cyclic graph")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for loop graph")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := SimpleLoop(Bound{Min: 0, Max: 2})
	c := g.Clone()
	c.SetInterval(0, 42, 43)
	c.MustEdge(0, 3)
	c.LoopBounds[1] = Bound{Min: 5, Max: 5}
	if g.Block(0).EMin == 42 {
		t.Fatal("Clone shares block storage")
	}
	if len(g.Succs(0)) == len(c.Succs(0)) {
		t.Fatal("Clone shares edge storage")
	}
	if g.LoopBounds[1].Min == 5 {
		t.Fatal("Clone shares LoopBounds")
	}
}

func TestBlockLabel(t *testing.T) {
	b := Block{ID: 3}
	if b.Label() != "b3" {
		t.Fatalf("Label = %q, want b3", b.Label())
	}
	b.Name = "head"
	if b.Label() != "head" {
		t.Fatalf("Label = %q, want head", b.Label())
	}
}

func TestDOTOutput(t *testing.T) {
	g := Diamond([2]float64{1, 2}, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	dot := g.DOT("diamond")
	for _, want := range []string{"digraph", "top", "bottom", "n0 -> n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestValidateRejectsNonFiniteIntervals(t *testing.T) {
	g := New()
	g.AddBlock(Block{Name: "a", EMin: 0, EMax: math.NaN()})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted NaN EMax")
	}
	g2 := New()
	g2.AddBlock(Block{Name: "a", EMin: math.NaN(), EMax: 1})
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted NaN EMin")
	}
	g3 := New()
	g3.AddBlock(Block{Name: "a", EMin: 0, EMax: math.Inf(1)})
	if err := g3.Validate(); err == nil {
		t.Fatal("Validate accepted infinite EMax")
	}
}

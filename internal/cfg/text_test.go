package cfg

import (
	"strings"
	"testing"
)

const sampleText = `
# a diamond with a loop on the left arm
block top 1 2
block left 3 4
block right 5 6
block bottom 1 1
block helper 1 1 call=f
entry top
edge top left
edge top right
edge left left
edge left bottom
edge right bottom
edge bottom helper
loop left 1 3
`

func TestParseBasic(t *testing.T) {
	g, err := Parse(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("blocks = %d, want 5", g.Len())
	}
	if g.Block(g.Entry()).Name != "top" {
		t.Fatalf("entry = %s", g.Block(g.Entry()).Name)
	}
	if g.Block(4).Call != "f" {
		t.Fatalf("call = %q, want f", g.Block(4).Call)
	}
	if len(g.LoopBounds) != 1 {
		t.Fatalf("loop bounds = %v", g.LoopBounds)
	}
	// The self-loop on left must collapse and analyse cleanly.
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Graph.AnalyzeOffsets(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad directive", "frobnicate a b"},
		{"block arity", "block x 1"},
		{"bad emin", "block x a 2"},
		{"bad emax", "block x 1 b"},
		{"bad call", "block x 1 2 called=f"},
		{"duplicate block", "block x 1 2\nblock x 1 2"},
		{"edge unknown from", "block x 1 2\nedge y x"},
		{"edge unknown to", "block x 1 2\nedge x y"},
		{"edge arity", "block x 1 2\nedge x"},
		{"entry unknown", "block x 1 2\nentry y"},
		{"entry arity", "block x 1 2\nentry"},
		{"loop arity", "block x 1 2\nloop x 1"},
		{"loop bad min", "block x 1 2\nloop x a 2"},
		{"loop bad max", "block x 1 2\nloop x 1 b"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	g := Figure1()
	g.LoopBounds[0] = Bound{Min: 1, Max: 1} // exercise loop emission
	var b strings.Builder
	if err := g.Format(&b); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip parse failed: %v\n%s", err, b.String())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip changed block count: %d != %d", g2.Len(), g.Len())
	}
	// Offsets must agree (delete the artificial loop bound first: block 0
	// heads no loop, CheckLoopBounds is what would complain).
	delete(g2.LoopBounds, 0)
	o1, err := g.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := g2.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.Len(); id++ {
		if o1.SMin[id] != o2.SMin[id] || o1.SMax[id] != o2.SMax[id] {
			t.Fatalf("round trip changed offsets of block %d", id)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	in := "# header\n\nblock a 1 2\n   \n# trailing\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("blocks = %d, want 1", g.Len())
	}
}

func TestParseRejectsNonFiniteTimes(t *testing.T) {
	for _, in := range []string{
		"block a nan 2", "block a 1 nAn", "block a inf 2", "block a 1 +Inf",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

package cfg

import (
	"testing"
)

func TestCollapseSimpleLoop(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 3})
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	if !col.Graph.IsAcyclic() {
		t.Fatal("collapsed graph still cyclic")
	}
	if col.Graph.Len() != 3 { // entry, loop node, exit
		t.Fatalf("collapsed graph has %d blocks, want 3", col.Graph.Len())
	}
	// One iteration: header [1,1] + body [3,5] => [4,6]; bound [1,3]
	// => loop node interval [4, 18].
	var loopNode BlockID = NoBlock
	for id := 0; id < col.Graph.Len(); id++ {
		if len(col.Origins[BlockID(id)]) > 1 {
			loopNode = BlockID(id)
		}
	}
	if loopNode == NoBlock {
		t.Fatal("no collapsed loop node found")
	}
	blk := col.Graph.Block(loopNode)
	if blk.EMin != 4 || blk.EMax != 18 {
		t.Fatalf("loop node interval [%g,%g], want [4,18]", blk.EMin, blk.EMax)
	}
	// Provenance covers header and body (original IDs 1 and 2).
	if len(col.Origins[loopNode]) != 2 {
		t.Fatalf("loop node origins = %v, want 2 blocks", col.Origins[loopNode])
	}
}

func TestCollapseZeroMinIterations(t *testing.T) {
	g := SimpleLoop(Bound{Min: 0, Max: 2})
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < col.Graph.Len(); id++ {
		if len(col.Origins[BlockID(id)]) > 1 {
			blk := col.Graph.Block(BlockID(id))
			if blk.EMin != 0 || blk.EMax != 12 {
				t.Fatalf("loop node interval [%g,%g], want [0,12]", blk.EMin, blk.EMax)
			}
		}
	}
}

func TestCollapseNested(t *testing.T) {
	g, _, _ := nestedLoops()
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	if !col.Graph.IsAcyclic() {
		t.Fatal("collapsed graph still cyclic")
	}
	// entry, outer-loop node, exit.
	if col.Graph.Len() != 3 {
		t.Fatalf("collapsed graph has %d blocks, want 3", col.Graph.Len())
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	// Inner iteration: h2 [1,1] + b2 [2,3] => [3,4]; bound [1,5] => inner
	// node [3,20]. Outer iteration: h1 [1,1] + inner [3,20] + t1 [1,2]
	// => [5,23]; bound [1,4] => outer node [5,92].
	// Whole task: entry [1,1] + outer [5,92] + exit [1,1].
	if off.BCET != 7 {
		t.Errorf("BCET = %g, want 7", off.BCET)
	}
	if off.WCET != 94 {
		t.Errorf("WCET = %g, want 94", off.WCET)
	}
}

func TestCollapseMissingBound(t *testing.T) {
	g := SimpleLoop(Bound{Min: 1, Max: 2})
	delete(g.LoopBounds, 1)
	if _, err := g.CollapseLoops(); err == nil {
		t.Fatal("CollapseLoops accepted missing loop bound")
	}
}

func TestCollapseAcyclicIsIdentityShape(t *testing.T) {
	g := Figure1()
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	if col.Graph.Len() != g.Len() {
		t.Fatalf("acyclic collapse changed block count: %d != %d", col.Graph.Len(), g.Len())
	}
	for id := 0; id < g.Len(); id++ {
		os := col.Origins[BlockID(id)]
		if len(os) != 1 || os[0] != BlockID(id) {
			t.Fatalf("acyclic collapse perturbed origins: %v", os)
		}
	}
}

func TestCollapseSelfLoop(t *testing.T) {
	g := New()
	entry := g.AddSimple("entry", 1, 1)
	h := g.AddSimple("h", 2, 4)
	exit := g.AddSimple("exit", 1, 1)
	g.MustEdge(entry, h)
	g.MustEdge(h, h)
	g.MustEdge(h, exit)
	g.LoopBounds[h] = Bound{Min: 2, Max: 3}
	col, err := g.CollapseLoops()
	if err != nil {
		t.Fatal(err)
	}
	off, err := col.Graph.AnalyzeOffsets()
	if err != nil {
		t.Fatal(err)
	}
	// entry [1,1] + self-loop 2..3 iterations of [2,4] + exit [1,1].
	if off.BCET != 6 || off.WCET != 14 {
		t.Fatalf("BCET,WCET = %g,%g; want 6,14", off.BCET, off.WCET)
	}
}

func TestProgramAnalyzeLeafFirst(t *testing.T) {
	// leaf: two blocks [1,2] + [3,4] => [4,6].
	leaf := New()
	a := leaf.AddSimple("a", 1, 2)
	b := leaf.AddSimple("b", 3, 4)
	leaf.MustEdge(a, b)

	// main: entry [1,1]; caller block [2,2] calling leaf; exit [1,1].
	main := New()
	e := main.AddSimple("entry", 1, 1)
	c := main.AddBlock(Block{Name: "call", EMin: 2, EMax: 2, Call: "leaf"})
	x := main.AddSimple("exit", 1, 1)
	main.MustEdge(e, c)
	main.MustEdge(c, x)

	p := NewProgram("main")
	if err := p.AddFunc("main", main); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc("leaf", leaf); err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if iv := res.Intervals["leaf"]; iv.BCET != 4 || iv.WCET != 6 {
		t.Fatalf("leaf interval = %+v, want {4 6}", iv)
	}
	// main: 1 + (2+4..2+6) + 1 => [8, 10].
	if iv := res.Intervals["main"]; iv.BCET != 8 || iv.WCET != 10 {
		t.Fatalf("main interval = %+v, want {8 10}", iv)
	}
	if res.Root == nil || res.RootCollapsed == nil {
		t.Fatal("root analysis missing")
	}
}

func TestProgramRejectsRecursion(t *testing.T) {
	f := New()
	f.AddBlock(Block{Name: "self", EMin: 1, EMax: 1, Call: "f"})
	p := NewProgram("f")
	if err := p.AddFunc("f", f); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Analyze(); err == nil {
		t.Fatal("Analyze accepted recursive program")
	}
}

func TestProgramRejectsUnknownCallee(t *testing.T) {
	f := New()
	f.AddBlock(Block{Name: "c", EMin: 1, EMax: 1, Call: "ghost"})
	p := NewProgram("f")
	if err := p.AddFunc("f", f); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Analyze(); err == nil {
		t.Fatal("Analyze accepted undefined callee")
	}
}

func TestProgramRejectsMissingRoot(t *testing.T) {
	p := NewProgram("nope")
	if _, err := p.Analyze(); err == nil {
		t.Fatal("Analyze accepted missing root")
	}
}

func TestProgramDuplicateFunc(t *testing.T) {
	p := NewProgram("f")
	g := New()
	g.AddSimple("a", 1, 1)
	if err := p.AddFunc("f", g); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc("f", g); err == nil {
		t.Fatal("AddFunc accepted duplicate name")
	}
	if err := p.AddFunc("", g); err == nil {
		t.Fatal("AddFunc accepted empty name")
	}
}

func TestProgramCallInsideLoop(t *testing.T) {
	// Loop body calls a leaf function; interval must multiply through.
	leaf := New()
	leaf.AddSimple("work", 2, 3)

	main := New()
	entry := main.AddSimple("entry", 0, 0)
	h := main.AddSimple("h", 1, 1)
	body := main.AddBlock(Block{Name: "body", EMin: 1, EMax: 1, Call: "leaf"})
	exit := main.AddSimple("exit", 0, 0)
	main.MustEdge(entry, h)
	main.MustEdge(h, body)
	main.MustEdge(body, h)
	main.MustEdge(h, exit)
	main.LoopBounds[h] = Bound{Min: 2, Max: 2}

	p := NewProgram("main")
	p.AddFunc("main", main)
	p.AddFunc("leaf", leaf)
	res, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Iteration: h [1,1] + body+leaf [3,4] => [4,5]; 2 iterations => [8,10].
	if iv := res.Intervals["main"]; iv.BCET != 8 || iv.WCET != 10 {
		t.Fatalf("main interval = %+v, want {8 10}", iv)
	}
}

package sched

import (
	"math"

	"fnpr/internal/core"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/task"
)

// LimitedResult carries the outcome of the preemption-count-refined FNPR
// response-time analysis (the paper's future work (ii), implemented via
// core's Limited mode).
type LimitedResult struct {
	// Response holds the per-task response times (+Inf = unschedulable).
	Response []float64
	// EffectiveC holds the refined C' values used at the fixpoint.
	EffectiveC []float64
	// PreemptionLimit holds the per-task preemption-count bounds at the
	// fixpoint (-1 where no delay function applies).
	PreemptionLimit []int
}

// limitedAnalysis runs the fixed-priority FNPR response-time analysis with
// the cumulative delay of each task refined by the number of higher-priority
// releases within its response time: at most that many preemptions can
// occur, so the delay is bounded by the sum of the largest per-window
// charges of Algorithm 1.
//
// The analysis iterates a decreasing fixpoint from the unlimited bound:
// response times yield preemption-count limits, limits yield tighter C',
// tighter C' yield smaller response times, until stable. When a task's
// response exceeds its deadline the count is computed at the deadline (a job
// that misses is not analysed beyond it), keeping the test sound for all
// tasks it declares schedulable.
func limitedAnalysis(g *guard.Ctx, sc *obs.Scope, ts task.Set, opts Options) (*LimitedResult, error) {
	n := len(ts)
	if len(opts.Delay) != n {
		return nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(opts.Delay), n)
	}
	if opts.Method != Algorithm1 {
		return nil, guard.Invalidf("sched: preemption-count refinement requires Algorithm1, got %v", opts.Method)
	}
	boundAt := func(i, lim int) (core.Result, error) {
		return core.Analyze(g, opts.Delay[i], ts[i].Q, core.Options{
			Limited:        lim >= 0,
			MaxPreemptions: lim,
			Solver:         opts.Solver,
			Obs:            sc,
			Memo:           opts.Memo,
		})
	}
	// Initial C': the unlimited Algorithm 1 bound, or (for divergent
	// bounds) the count-limited bound at the deadline — the refinement
	// is precisely what makes such tasks analysable.
	cp := make([]float64, n)
	limits := make([]int, n)
	for i, tk := range ts {
		limits[i] = -1
		if opts.Delay[i] == nil {
			cp[i] = tk.C
			continue
		}
		if d := opts.Delay[i].Domain(); math.Abs(d-tk.C) > 1e-9 {
			return nil, guard.Invalidf("sched: task %s has C=%g but delay function domain %g", tk.Name, tk.C, d)
		}
		if tk.Q <= 0 {
			return nil, guard.Invalidf("sched: task %s has no NPR length Q", tk.Name)
		}
		lim, err := countAt(ts, i, tk.Deadline())
		if err != nil {
			return nil, err
		}
		b, err := boundAt(i, lim)
		if err != nil {
			return nil, err
		}
		limits[i] = lim
		cp[i] = tk.C + b.TotalDelay
	}

	var rts []float64
	for iter := 0; iter < 64; iter++ {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		r, err := fpResponseTimes(g, sc, ts, opts, cp)
		if err != nil {
			return nil, err
		}
		rts = r
		changed := false
		for i, tk := range ts {
			if opts.Delay[i] == nil {
				continue
			}
			horizon := rts[i]
			if math.IsInf(horizon, 1) || horizon > tk.Deadline() {
				horizon = tk.Deadline()
			}
			lim, err := countAt(ts, i, horizon)
			if err != nil {
				return nil, err
			}
			if lim != limits[i] {
				limits[i] = lim
				b, err := boundAt(i, lim)
				if err != nil {
					return nil, err
				}
				next := tk.C + b.TotalDelay
				if next != cp[i] {
					cp[i] = next
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return &LimitedResult{Response: rts, EffectiveC: cp, PreemptionLimit: limits}, nil
}

// countAt bounds task i's preemptions by the higher-priority releases within
// the horizon.
func countAt(ts task.Set, i int, horizon float64) (int, error) {
	var periods, jitters []float64
	for j := 0; j < i; j++ {
		periods = append(periods, ts[j].T)
		jitters = append(jitters, ts[j].Jitter)
	}
	return core.PreemptionCount(horizon, periods, jitters)
}

package sched

import (
	"math"

	"fnpr/internal/core"
	"fnpr/internal/guard"
)

// LimitedResult carries the outcome of the preemption-count-refined FNPR
// response-time analysis (the paper's future work (ii), implemented via
// core.UpperBoundLimited).
type LimitedResult struct {
	// Response holds the per-task response times (+Inf = unschedulable).
	Response []float64
	// EffectiveC holds the refined C' values used at the fixpoint.
	EffectiveC []float64
	// PreemptionLimit holds the per-task preemption-count bounds at the
	// fixpoint (-1 where no delay function applies).
	PreemptionLimit []int
}

// ResponseTimesFPLimited runs the fixed-priority FNPR response-time analysis
// with the cumulative delay of each task refined by the number of
// higher-priority releases within its response time: at most that many
// preemptions can occur, so the delay is bounded by the sum of the largest
// per-window charges of Algorithm 1 (core.UpperBoundLimited).
//
// The analysis iterates a decreasing fixpoint from the unlimited bound:
// response times yield preemption-count limits, limits yield tighter C',
// tighter C' yield smaller response times, until stable. When a task's
// response exceeds its deadline the count is computed at the deadline (a
// job that misses is not analysed beyond it), keeping the test sound for
// all tasks it declares schedulable.
func (a FNPRAnalysis) ResponseTimesFPLimited() (*LimitedResult, error) {
	return a.ResponseTimesFPLimitedCtx(nil)
}

// ResponseTimesFPLimitedCtx is ResponseTimesFPLimited under a guard scope.
func (a FNPRAnalysis) ResponseTimesFPLimitedCtx(g *guard.Ctx) (*LimitedResult, error) {
	n := len(a.Tasks)
	if len(a.Delay) != n {
		return nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(a.Delay), n)
	}
	if a.Method != Algorithm1 {
		return nil, guard.Invalidf("sched: preemption-count refinement requires Algorithm1, got %v", a.Method)
	}
	// Initial C': the unlimited Algorithm 1 bound, or (for divergent
	// bounds) the count-limited bound at the deadline — the refinement
	// is precisely what makes such tasks analysable.
	cp := make([]float64, n)
	limits := make([]int, n)
	for i, tk := range a.Tasks {
		limits[i] = -1
		if a.Delay[i] == nil {
			cp[i] = tk.C
			continue
		}
		if d := a.Delay[i].Domain(); math.Abs(d-tk.C) > 1e-9 {
			return nil, guard.Invalidf("sched: task %s has C=%g but delay function domain %g", tk.Name, tk.C, d)
		}
		if tk.Q <= 0 {
			return nil, guard.Invalidf("sched: task %s has no NPR length Q", tk.Name)
		}
		lim, err := a.deadlineCount(i)
		if err != nil {
			return nil, err
		}
		b, err := core.Analyze(g, a.Delay[i], tk.Q, core.Options{Limited: lim >= 0, MaxPreemptions: lim})
		if err != nil {
			return nil, err
		}
		limits[i] = lim
		cp[i] = tk.C + b.TotalDelay
	}

	var rts []float64
	for iter := 0; iter < 64; iter++ {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		r, err := a.rtaWith(g, cp)
		if err != nil {
			return nil, err
		}
		rts = r
		changed := false
		for i, tk := range a.Tasks {
			if a.Delay[i] == nil {
				continue
			}
			horizon := rts[i]
			if math.IsInf(horizon, 1) || horizon > tk.Deadline() {
				horizon = tk.Deadline()
			}
			lim, err := a.countAt(i, horizon)
			if err != nil {
				return nil, err
			}
			if lim != limits[i] {
				limits[i] = lim
				b, err := core.Analyze(g, a.Delay[i], tk.Q, core.Options{Limited: lim >= 0, MaxPreemptions: lim})
				if err != nil {
					return nil, err
				}
				next := tk.C + b.TotalDelay
				if next != cp[i] {
					cp[i] = next
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return &LimitedResult{Response: rts, EffectiveC: cp, PreemptionLimit: limits}, nil
}

// deadlineCount bounds task i's preemptions by the higher-priority releases
// within its deadline.
func (a FNPRAnalysis) deadlineCount(i int) (int, error) {
	return a.countAt(i, a.Tasks[i].Deadline())
}

func (a FNPRAnalysis) countAt(i int, horizon float64) (int, error) {
	var periods, jitters []float64
	for j := 0; j < i; j++ {
		periods = append(periods, a.Tasks[j].T)
		jitters = append(jitters, a.Tasks[j].Jitter)
	}
	return core.PreemptionCount(horizon, periods, jitters)
}

// rtaWith runs the blocking-aware RTA with the given effective WCETs.
func (a FNPRAnalysis) rtaWith(g *guard.Ctx, cp []float64) ([]float64, error) {
	inflated := a.Tasks.Clone()
	for i := range inflated {
		if math.IsInf(cp[i], 1) {
			return nil, guard.Divergedf("sched: task %s has divergent delay bound", inflated[i].Name)
		}
		inflated[i].C = cp[i]
	}
	for _, tk := range inflated {
		if tk.C > tk.Deadline() {
			rts := make([]float64, len(inflated))
			for i := range rts {
				rts[i] = math.Inf(1)
			}
			return rts, nil
		}
	}
	blocking := func(i int) float64 {
		var b float64
		for k := i + 1; k < len(inflated); k++ {
			q := math.Min(inflated[k].Q, cp[k])
			if q > b {
				b = q
			}
		}
		return b
	}
	// a.Warm is sound here too: the refinement only ever evaluates C'
	// vectors at or above the plain C vector, and the response time is
	// monotone in C' (both directly and through the blocking term).
	return responseTimes(g, inflated, nil, blocking, a.Warm)
}

// Package sched provides schedulability analyses that consume the
// preemption-delay bounds of package core: classic fixed-priority
// response-time analysis (RTA), the CRPD-aware RTA variants the paper's
// related-work section surveys (Busquets-style maximum-cost inflation and
// Petters-style preempter-damage inflation), and the floating-NPR analyses
// that plug in the effective WCET C' = C + total_delay of Equation 5 for
// both fixed-priority and EDF scheduling.
//
// Analyze is the package's single entry point; Options selects the policy
// (fixed-priority or EDF), the delay method, CRPD inflation, the
// preemption-count refinement, the fixpoint solver and warm seeding. The
// ResponseTimes*/FNPRAnalysis.* families are deprecated wrappers kept for
// one PR (see deprecated.go).
package sched

import (
	"errors"
	"fmt"
	"math"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/exact"
	"fnpr/internal/guard"
	"fnpr/internal/obs"
	"fnpr/internal/task"
)

// maxRTAIterations caps the response-time fixpoint iteration.
const maxRTAIterations = 1_000_000

// CRPDMethod selects how preemption costs inflate the RTA.
type CRPDMethod int

const (
	// NoCRPD ignores preemption delay (the classic, optimistic RTA).
	NoCRPD CRPDMethod = iota
	// BusquetsMax charges every preemption of τi the maximum CRPD of
	// τi, following Busquets-Mataix et al. (reference [5]).
	BusquetsMax
	// PettersDamage charges each preemption by τj the smaller of τi's
	// maximum CRPD and the maximum damage τj can cause (its ECB-limited
	// eviction cost), following Petters and Färber (reference [1]).
	PettersDamage
)

// String implements fmt.Stringer.
func (m CRPDMethod) String() string {
	switch m {
	case NoCRPD:
		return "none"
	case BusquetsMax:
		return "busquets-max"
	case PettersDamage:
		return "petters-damage"
	default:
		return fmt.Sprintf("CRPDMethod(%d)", int(m))
	}
}

// CRPDParams carries the per-task cache quantities the CRPD-aware RTAs use.
type CRPDParams struct {
	// MaxCRPD[i] is the largest preemption delay task i can suffer
	// (max of its fi).
	MaxCRPD []float64
	// Damage[j] is the largest eviction damage task j can inflict when
	// it preempts (Petters-style preempter cost). Only used by
	// PettersDamage.
	Damage []float64
}

// crpdGamma builds the per-preemption cost function for the CRPD-aware RTA.
func crpdGamma(ts task.Set, m CRPDMethod, p CRPDParams) (func(i, j int) float64, error) {
	if m == NoCRPD {
		return nil, nil
	}
	if len(p.MaxCRPD) != len(ts) {
		return nil, guard.Invalidf("sched: MaxCRPD has %d entries for %d tasks", len(p.MaxCRPD), len(ts))
	}
	return func(i, j int) float64 {
		switch m {
		case BusquetsMax:
			return p.MaxCRPD[i]
		case PettersDamage:
			g := p.MaxCRPD[i]
			if len(p.Damage) == len(ts) && p.Damage[j] < g {
				g = p.Damage[j]
			}
			return g
		default:
			return 0
		}
	}, nil
}

// DelayMethod selects the cumulative-delay bound used for C'.
type DelayMethod int

const (
	// Algorithm1 uses the paper's Algorithm 1 (the contribution).
	Algorithm1 DelayMethod = iota
	// Equation4 uses the state-of-the-art iterative bound.
	Equation4
	// Exact uses the schedule-graph exploration of internal/exact — the
	// true worst-case cumulative delay rather than an upper bound. Bounded
	// by Options.ExactStates; tasks whose exploration exceeds the budget
	// (or whose delay function is not piecewise-constant) degrade to
	// Algorithm 1, reported per task in Result.Degraded.
	Exact
)

// String implements fmt.Stringer.
func (m DelayMethod) String() string {
	switch m {
	case Algorithm1:
		return "algorithm1"
	case Equation4:
		return "equation4"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("DelayMethod(%d)", int(m))
	}
}

// responseTimes is the shared fixpoint engine. gamma(i,j) is the preemption
// cost added to each release of higher-priority task j while analysing task
// i (nil = 0). blocking(i) is the blocking term added to task i (nil = 0).
// The fixpoint charges one guard step per iteration.
//
// warm optionally seeds each task's iteration with a previously computed
// response time (in the same jitter-inclusive scale the function returns).
// Soundness: the recurrence's right-hand side is monotone in r, so from ANY
// seed at or below the least fixpoint the iterates stay below it and — the
// reachable values form a finite lattice of release-count combinations —
// settle on exactly the least fixpoint. The result is therefore bit-identical
// to a cold start; only the iteration count shrinks. Callers must guarantee
// warm[i] <= task i's true response time; entries that are non-finite or
// below the cold-start value are ignored (cold start is always sound).
//
// solver selects the fixpoint strategy: core.SolverMonotone iterates the
// recurrence one step at a time (exactly the pre-solver behaviour), the
// cutting solvers additionally jump to the shaved root of the linearized
// recurrence between monotone steps — same fixpoints, far fewer iterations.
// See solver.go for the cut construction and the fallback rules.
func responseTimes(g *guard.Ctx, sc *obs.Scope, ts task.Set, gamma func(i, j int) float64, blocking func(i int) float64, warm []float64, solver core.Solver) ([]float64, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("sched: empty task set")
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	iters := sc.Counter("sched.rta.iterations")
	solverIters := sc.Counter("sched.rta.solver.iterations")
	seeded := sc.Counter("sched.rta.warm.seeded")
	cuts := sc.Counter("sched.rta.solver.cuts")
	falls := sc.Counter("sched.rta.solver.fallbacks")
	out := make([]float64, len(ts))
	for i, tk := range ts {
		b := 0.0
		if blocking != nil {
			b = blocking(i)
		}
		base := tk.C + b
		r := base
		if i < len(warm) {
			// warm values include jitter; the iteration variable does not.
			if w := warm[i] - tk.Jitter; w > r && !math.IsInf(w, 1) && !math.IsNaN(w) {
				r = w
				seeded.Inc()
			}
		}
		deadline := tk.Deadline()
		// Cutting-plane state: lastSound is the most recent iterate
		// produced by plain monotone steps (always a certified lower bound
		// on the least fixpoint); iterates past a jump are speculative
		// until the chain re-converges, and any doubt signal reverts to
		// lastSound with jumps disabled — a warm-started monotone run.
		lastSound := r
		speculative, jumpedLast := false, false
		// jumps gates cutting-plane acceleration; refute gates the
		// no-fixpoint-below-deadline certificate. A deadline fallback
		// disables jumps but keeps refuting (the certificate anchors only
		// at certified monotone iterates, so it stays sound and can end
		// the re-climb early); an overshoot fallback disables both, since
		// it casts doubt on the relaxation itself.
		jumps := solver != core.SolverMonotone && i > 0
		refute := jumps
		ok := false
		for iter := 0; iter < maxRTAIterations; iter++ {
			if err := g.Tick(); err != nil {
				return nil, err
			}
			iters.Inc()
			solverIters.Inc()
			next := base
			for j := 0; j < i; j++ {
				gm := 0.0
				if gamma != nil {
					gm = gamma(i, j)
				}
				next += math.Ceil((r+ts[j].Jitter)/ts[j].T) * (ts[j].C + gm)
			}
			if next == r && (!speculative || !jumpedLast) {
				ok = true
				break
			}
			if next <= r && speculative {
				// A non-increasing iterate on a speculative chain means the
				// jump overshot or landed on a fixpoint it cannot certify
				// as least. Revert and iterate plainly. (Outside
				// speculation a decreasing iterate only arises from a
				// contract-violating warm seed; the chain then follows the
				// legacy decreasing path below.)
				falls.Inc()
				r = lastSound
				speculative, jumpedLast = false, false
				jumps, refute = false, false
				continue
			}
			jumpedLast = false
			r = next
			if !speculative {
				lastSound = r
			}
			if r+tk.Jitter > deadline {
				if !speculative {
					break
				}
				// The deadline verdict must come from a certified chain:
				// re-derive it monotonically from the last sound iterate.
				falls.Inc()
				r = lastSound
				speculative, jumps = false, false
				continue
			}
			if jumps || (refute && !speculative) {
				root, found, unsat := cutRoot(ts, gamma, i, base, r, deadline-tk.Jitter)
				if unsat && !speculative {
					// The relaxation stays above the diagonal all the way to
					// the deadline: no fixpoint exists at or below it, so the
					// monotone climb could only end past the deadline. Same
					// +Inf verdict, without the climb. (Speculative chains
					// may not conclude verdicts; they never reach here with
					// unsat anyway, as speculation starts only after a root
					// was found.)
					cuts.Inc()
					break
				}
				if jumps && found {
					cut := root - math.Max(cutRelShave*math.Abs(root), cutAbsShave)
					if cap := deadline - tk.Jitter; cut > cap {
						cut = cap
					}
					if cut > r {
						r = cut
						speculative, jumpedLast = true, true
						cuts.Inc()
					}
				}
			}
		}
		if !ok || r+tk.Jitter > deadline {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = r + tk.Jitter
	}
	return out, nil
}

// Schedulable reports whether all response times meet their deadlines.
func Schedulable(ts task.Set, rts []float64) bool {
	for i, r := range rts {
		if math.IsInf(r, 1) || r > ts[i].Deadline() {
			return false
		}
	}
	return true
}

// LiuLaylandBound returns the classic rate-monotonic utilization bound
// n(2^(1/n) - 1).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// HyperbolicTest applies Bini and Buttazzo's hyperbolic bound for RM:
// Π(Ui + 1) <= 2 is sufficient for schedulability.
func HyperbolicTest(ts task.Set) bool {
	p := 1.0
	for _, tk := range ts {
		p *= tk.Utilization() + 1
	}
	return p <= 2
}

// effectiveWCETs computes C'i = Ci + delay_bound(fi, Qi) for every task
// (Equation 5 of the paper). A nil Delay slice means no task suffers
// preemption delay. Per-task bounds run through core.Analyze (or the exact
// engine for Method Exact), so Options.Memo makes them content-addressed:
// re-analysing a task set after a single-task edit recomputes only the
// edited task's bound (counted by sched.cprime.cached /
// sched.cprime.computed).
//
// The second return is non-nil only for Method Exact: degraded[i] reports
// that task i's exact exploration was infeasible (state budget exceeded, or
// a delay function the exact engine cannot lower) and its bound fell back
// to Algorithm 1 — still sound, just an upper bound instead of the exact
// value. Degradations are counted by exact.degraded.
func effectiveWCETs(g *guard.Ctx, sc *obs.Scope, ts task.Set, opts Options) ([]float64, []bool, error) {
	out := make([]float64, len(ts))
	if opts.Delay == nil {
		for i, tk := range ts {
			out[i] = tk.C
		}
		return out, nil, nil
	}
	if len(opts.Delay) != len(ts) {
		return nil, nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(opts.Delay), len(ts))
	}
	cached := sc.Counter("sched.cprime.cached")
	computed := sc.Counter("sched.cprime.computed")
	var degraded []bool
	if opts.Method == Exact {
		degraded = make([]bool, len(ts))
	}
	for i, tk := range ts {
		if opts.Delay[i] == nil {
			out[i] = tk.C
			continue
		}
		if d := opts.Delay[i].Domain(); math.Abs(d-tk.C) > 1e-9 {
			return nil, nil, guard.Invalidf("sched: task %s has C=%g but delay function domain %g", tk.Name, tk.C, d)
		}
		if tk.Q <= 0 {
			return nil, nil, guard.Invalidf("sched: task %s has no NPR length Q", tk.Name)
		}
		copts := core.Options{Solver: opts.Solver, Obs: sc, Memo: opts.Memo}
		switch opts.Method {
		case Algorithm1:
		case Equation4:
			copts.Method = core.Equation4
		case Exact:
			d, ok, err := exactDelay(g, sc, tk, opts.Delay[i], opts)
			if err != nil {
				return nil, nil, fmt.Errorf("sched: task %s: %w", tk.Name, err)
			}
			if ok {
				out[i] = tk.C + d
				continue
			}
			// Degrade this task to Algorithm 1 (copts is already set up).
			degraded[i] = true
			sc.Counter("exact.degraded").Inc()
		default:
			return nil, nil, guard.Invalidf("sched: unknown delay method %v", opts.Method)
		}
		r, err := core.Analyze(g, opts.Delay[i], tk.Q, copts)
		if err != nil {
			return nil, nil, fmt.Errorf("sched: task %s: %w", tk.Name, err)
		}
		if r.Cached {
			cached.Inc()
		} else {
			computed.Inc()
		}
		out[i] = tk.C + r.TotalDelay
	}
	return out, degraded, nil
}

// exactDelay runs one task's delay function through the exact engine. The
// second return is false where the exact method cannot apply — a
// non-piecewise-constant function, or a state space above the budget — and
// the caller degrades to Algorithm 1.
func exactDelay(g *guard.Ctx, sc *obs.Scope, tk task.Task, f delay.Function, opts Options) (float64, bool, error) {
	p, ok := exact.AsPiecewise(f)
	if !ok {
		return 0, false, nil
	}
	res, err := exact.Delay(g, p, tk.Q, exact.Options{
		MaxStates: opts.ExactStates,
		Memo:      opts.Memo,
		Obs:       sc,
	})
	if err != nil {
		var sse *exact.StateSpaceError
		if errors.As(err, &sse) {
			return 0, false, nil
		}
		return 0, false, err
	}
	return res.Delay, true, nil
}

// inflate clones ts with C replaced by the effective WCETs; a divergent
// entry yields a Divergedf error.
func inflate(ts task.Set, cp []float64) (task.Set, error) {
	inflated := ts.Clone()
	for i := range inflated {
		if math.IsInf(cp[i], 1) {
			return nil, guard.Divergedf("sched: task %s has divergent delay bound", inflated[i].Name)
		}
		inflated[i].C = cp[i]
	}
	return inflated, nil
}

// fpBlocking builds the floating-NPR blocking closure over the inflated set:
// a lower-priority task inside its NPR can delay τi by up to min(Qk, C'k).
func fpBlocking(inflated task.Set, cp []float64) func(i int) float64 {
	return func(i int) float64 {
		var b float64
		for k := i + 1; k < len(inflated); k++ {
			q := math.Min(inflated[k].Q, cp[k])
			if q > b {
				b = q
			}
		}
		return b
	}
}

// fpResponseTimes runs the fixed-priority RTA with effective WCETs and the
// floating-NPR blocking term:
//
//	Ri = C'i + max_{k>i} min(Qk, C'k) + Σ_{j<i} ceil((Ri+Jj)/Tj) * C'j
func fpResponseTimes(g *guard.Ctx, sc *obs.Scope, ts task.Set, opts Options, cp []float64) ([]float64, error) {
	inflated, err := inflate(ts, cp)
	if err != nil {
		return nil, err
	}
	// Validation of the inflated set may fail C <= D before the RTA can
	// report it gracefully, so check tasks individually here.
	for _, tk := range inflated {
		if tk.C > tk.Deadline() {
			rts := make([]float64, len(inflated))
			for i := range rts {
				rts[i] = math.Inf(1)
			}
			return rts, nil
		}
	}
	return responseTimes(g, sc, inflated, nil, fpBlocking(inflated, cp), opts.Warm, opts.Solver)
}

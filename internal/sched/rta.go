// Package sched provides schedulability analyses that consume the
// preemption-delay bounds of package core: classic fixed-priority
// response-time analysis (RTA), the CRPD-aware RTA variants the paper's
// related-work section surveys (Busquets-style maximum-cost inflation and
// Petters-style preempter-damage inflation), and the floating-NPR analyses
// that plug in the effective WCET C' = C + total_delay of Equation 5 for
// both fixed-priority and EDF scheduling.
package sched

import (
	"fmt"
	"math"

	"fnpr/internal/core"
	"fnpr/internal/delay"
	"fnpr/internal/guard"
	"fnpr/internal/npr"
	"fnpr/internal/task"
)

// maxRTAIterations caps the response-time fixpoint iteration.
const maxRTAIterations = 1_000_000

// ResponseTimes runs the classic fully-preemptive fixed-priority RTA on a
// priority-sorted set (index 0 = highest priority):
//
//	Ri = Ci + Σ_{j<i} ceil((Ri + Jj)/Tj) * Cj
//
// It returns the fixpoint response times; a task whose iteration exceeds its
// deadline gets +Inf (unschedulable) and iteration continues for the others.
func ResponseTimes(ts task.Set) ([]float64, error) {
	return responseTimes(nil, ts, nil, nil, nil)
}

// ResponseTimesCtx is ResponseTimes under a guard scope: the fixpoint charges
// one guard step per iteration, so runaway iterations can be canceled or
// budget-bounded. A nil guard means no limits.
func ResponseTimesCtx(g *guard.Ctx, ts task.Set) ([]float64, error) {
	return responseTimes(g, ts, nil, nil, nil)
}

// CRPDMethod selects how preemption costs inflate the RTA.
type CRPDMethod int

const (
	// NoCRPD ignores preemption delay (the classic, optimistic RTA).
	NoCRPD CRPDMethod = iota
	// BusquetsMax charges every preemption of τi the maximum CRPD of
	// τi, following Busquets-Mataix et al. (reference [5]).
	BusquetsMax
	// PettersDamage charges each preemption by τj the smaller of τi's
	// maximum CRPD and the maximum damage τj can cause (its ECB-limited
	// eviction cost), following Petters and Färber (reference [1]).
	PettersDamage
)

// String implements fmt.Stringer.
func (m CRPDMethod) String() string {
	switch m {
	case NoCRPD:
		return "none"
	case BusquetsMax:
		return "busquets-max"
	case PettersDamage:
		return "petters-damage"
	default:
		return fmt.Sprintf("CRPDMethod(%d)", int(m))
	}
}

// CRPDParams carries the per-task cache quantities the CRPD-aware RTAs use.
type CRPDParams struct {
	// MaxCRPD[i] is the largest preemption delay task i can suffer
	// (max of its fi).
	MaxCRPD []float64
	// Damage[j] is the largest eviction damage task j can inflict when
	// it preempts (Petters-style preempter cost). Only used by
	// PettersDamage.
	Damage []float64
}

// ResponseTimesCRPD runs the fully-preemptive RTA with preemption costs
// charged per higher-priority release:
//
//	Ri = Ci + Σ_{j<i} ceil((Ri + Jj)/Tj) * (Cj + γij)
//
// with γij picked by the method. This reproduces the state-of-the-art
// integration styles the paper compares against.
func ResponseTimesCRPD(ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	return ResponseTimesCRPDCtx(nil, ts, m, p)
}

// ResponseTimesCRPDCtx is ResponseTimesCRPD under a guard scope.
func ResponseTimesCRPDCtx(g *guard.Ctx, ts task.Set, m CRPDMethod, p CRPDParams) ([]float64, error) {
	if m == NoCRPD {
		return ResponseTimesCtx(g, ts)
	}
	if len(p.MaxCRPD) != len(ts) {
		return nil, guard.Invalidf("sched: MaxCRPD has %d entries for %d tasks", len(p.MaxCRPD), len(ts))
	}
	gamma := func(i, j int) float64 {
		switch m {
		case BusquetsMax:
			return p.MaxCRPD[i]
		case PettersDamage:
			g := p.MaxCRPD[i]
			if len(p.Damage) == len(ts) && p.Damage[j] < g {
				g = p.Damage[j]
			}
			return g
		default:
			return 0
		}
	}
	return responseTimes(g, ts, gamma, nil, nil)
}

// responseTimes is the shared fixpoint engine. gamma(i,j) is the preemption
// cost added to each release of higher-priority task j while analysing task
// i (nil = 0). blocking(i) is the blocking term added to task i (nil = 0).
// The fixpoint charges one guard step per iteration.
//
// warm optionally seeds each task's iteration with a previously computed
// response time (in the same jitter-inclusive scale the function returns).
// Soundness: the recurrence's right-hand side is monotone in r, so from ANY
// seed at or below the least fixpoint the iterates stay below it and — the
// reachable values form a finite lattice of release-count combinations —
// settle on exactly the least fixpoint. The result is therefore bit-identical
// to a cold start; only the iteration count shrinks. Callers must guarantee
// warm[i] <= task i's true response time; entries that are non-finite or
// below the cold-start value are ignored (cold start is always sound).
func responseTimes(g *guard.Ctx, ts task.Set, gamma func(i, j int) float64, blocking func(i int) float64, warm []float64) ([]float64, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, guard.Invalidf("sched: empty task set")
	}
	if err := g.Err(); err != nil {
		return nil, err
	}
	sc := g.Obs()
	iters := sc.Counter("sched.rta.iterations")
	seeded := sc.Counter("sched.rta.warm.seeded")
	out := make([]float64, len(ts))
	for i, tk := range ts {
		b := 0.0
		if blocking != nil {
			b = blocking(i)
		}
		r := tk.C + b
		if i < len(warm) {
			// warm values include jitter; the iteration variable does not.
			if w := warm[i] - tk.Jitter; w > r && !math.IsInf(w, 1) && !math.IsNaN(w) {
				r = w
				seeded.Inc()
			}
		}
		ok := false
		for iter := 0; iter < maxRTAIterations; iter++ {
			if err := g.Tick(); err != nil {
				return nil, err
			}
			iters.Inc()
			next := tk.C + b
			for j := 0; j < i; j++ {
				g := 0.0
				if gamma != nil {
					g = gamma(i, j)
				}
				next += math.Ceil((r+ts[j].Jitter)/ts[j].T) * (ts[j].C + g)
			}
			if next == r {
				ok = true
				break
			}
			r = next
			if r+tk.Jitter > tk.Deadline() {
				break
			}
		}
		if !ok || r+tk.Jitter > tk.Deadline() {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = r + tk.Jitter
	}
	return out, nil
}

// Schedulable reports whether all response times meet their deadlines.
func Schedulable(ts task.Set, rts []float64) bool {
	for i, r := range rts {
		if math.IsInf(r, 1) || r > ts[i].Deadline() {
			return false
		}
	}
	return true
}

// LiuLaylandBound returns the classic rate-monotonic utilization bound
// n(2^(1/n) - 1).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// HyperbolicTest applies Bini and Buttazzo's hyperbolic bound for RM:
// Π(Ui + 1) <= 2 is sufficient for schedulability.
func HyperbolicTest(ts task.Set) bool {
	p := 1.0
	for _, tk := range ts {
		p *= tk.Utilization() + 1
	}
	return p <= 2
}

// FNPRAnalysis couples the floating-NPR task model with the paper's delay
// bound: each task carries its preemption delay function, its Q, and the
// analysis uses the effective WCET C'i = Ci + Algorithm1(fi, Qi).
type FNPRAnalysis struct {
	// Tasks is the priority-sorted task set (for FP) or any order (EDF).
	Tasks task.Set
	// Delay holds each task's preemption delay function; a nil entry
	// means the task suffers no preemption delay. Function domains must
	// equal the task's C.
	Delay []delay.Function
	// Method selects how the cumulative delay is bounded; see
	// DelayMethod.
	Method DelayMethod
	// Warm optionally seeds the response-time fixpoints from previously
	// computed response times (jitter-inclusive, indexed like Tasks).
	//
	// Soundness contract: Warm[i] must be a proven lower bound on task
	// i's response time under THIS analysis — in practice, the response
	// times of the same task set under pointwise-smaller effective WCETs.
	// Delay bounds are non-negative, so the plain no-delay FNPR response
	// times lower-bound every delay-aware variant, and the Algorithm 1
	// response times lower-bound the (coarser) Equation 4 ones. A valid
	// seed changes nothing but the iteration count: results stay
	// bit-identical (see responseTimes). Non-finite or too-small entries
	// fall back to a cold start per task.
	Warm []float64
}

// DelayMethod selects the cumulative-delay bound used for C'.
type DelayMethod int

const (
	// Algorithm1 uses the paper's Algorithm 1 (the contribution).
	Algorithm1 DelayMethod = iota
	// Equation4 uses the state-of-the-art iterative bound.
	Equation4
)

// String implements fmt.Stringer.
func (m DelayMethod) String() string {
	switch m {
	case Algorithm1:
		return "algorithm1"
	case Equation4:
		return "equation4"
	default:
		return fmt.Sprintf("DelayMethod(%d)", int(m))
	}
}

// EffectiveWCETs computes C'i for every task under the selected method
// (Equation 5 of the paper).
func (a FNPRAnalysis) EffectiveWCETs() ([]float64, error) {
	return a.EffectiveWCETsCtx(nil)
}

// EffectiveWCETsCtx is EffectiveWCETs under a guard scope: each task's delay
// bound runs with cancellation and budget checks.
func (a FNPRAnalysis) EffectiveWCETsCtx(g *guard.Ctx) ([]float64, error) {
	if len(a.Delay) != len(a.Tasks) {
		return nil, guard.Invalidf("sched: %d delay functions for %d tasks", len(a.Delay), len(a.Tasks))
	}
	out := make([]float64, len(a.Tasks))
	for i, tk := range a.Tasks {
		if a.Delay[i] == nil {
			out[i] = tk.C
			continue
		}
		if d := a.Delay[i].Domain(); math.Abs(d-tk.C) > 1e-9 {
			return nil, guard.Invalidf("sched: task %s has C=%g but delay function domain %g", tk.Name, tk.C, d)
		}
		if tk.Q <= 0 {
			return nil, guard.Invalidf("sched: task %s has no NPR length Q", tk.Name)
		}
		var opts core.Options
		switch a.Method {
		case Algorithm1:
		case Equation4:
			opts.Method = core.Equation4
		default:
			return nil, guard.Invalidf("sched: unknown delay method %v", a.Method)
		}
		r, err := core.Analyze(g, a.Delay[i], tk.Q, opts)
		if err != nil {
			return nil, fmt.Errorf("sched: task %s: %w", tk.Name, err)
		}
		out[i] = tk.C + r.TotalDelay
	}
	return out, nil
}

// ResponseTimesFP runs the fixed-priority RTA with effective WCETs and the
// floating-NPR blocking term: a lower-priority task inside its NPR can delay
// τi by up to min(Qk, C'k):
//
//	Ri = C'i + max_{k>i} min(Qk, C'k) + Σ_{j<i} ceil((Ri+Jj)/Tj) * C'j
func (a FNPRAnalysis) ResponseTimesFP() ([]float64, error) {
	return a.ResponseTimesFPCtx(nil)
}

// ResponseTimesFPCtx is ResponseTimesFP under a guard scope.
func (a FNPRAnalysis) ResponseTimesFPCtx(g *guard.Ctx) ([]float64, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return nil, err
	}
	inflated := a.Tasks.Clone()
	for i := range inflated {
		if math.IsInf(cp[i], 1) {
			return nil, guard.Divergedf("sched: task %s has divergent delay bound", inflated[i].Name)
		}
		inflated[i].C = cp[i]
	}
	blocking := func(i int) float64 {
		var b float64
		for k := i + 1; k < len(inflated); k++ {
			q := math.Min(inflated[k].Q, cp[k])
			if q > b {
				b = q
			}
		}
		return b
	}
	// Validation of the inflated set may fail C <= D before the RTA can
	// report it gracefully, so check tasks individually here.
	for _, tk := range inflated {
		if tk.C > tk.Deadline() {
			rts := make([]float64, len(inflated))
			for i := range rts {
				rts[i] = math.Inf(1)
			}
			return rts, nil
		}
	}
	return responseTimes(g, inflated, nil, blocking, a.Warm)
}

// SchedulableEDF runs the processor-demand test with effective WCETs and the
// floating-NPR blocking term of Bertogna and Baruah: for every absolute
// deadline t up to the analysis horizon,
//
//	dbf'(t) + max_{Dj > t} min(Qj, C'j) <= t
func (a FNPRAnalysis) SchedulableEDF() (bool, error) {
	return a.SchedulableEDFCtx(nil)
}

// SchedulableEDFCtx is SchedulableEDF under a guard scope: the demand-bound
// sweep charges one guard step per deadline checked.
func (a FNPRAnalysis) SchedulableEDFCtx(g *guard.Ctx) (bool, error) {
	cp, err := a.EffectiveWCETsCtx(g)
	if err != nil {
		return false, err
	}
	inflated := a.Tasks.Clone()
	for i := range inflated {
		if math.IsInf(cp[i], 1) {
			return false, nil
		}
		inflated[i].C = cp[i]
	}
	if inflated.Utilization() > 1 {
		return false, nil
	}
	horizon, err := npr.AnalysisHorizon(inflated)
	if err != nil {
		return false, err
	}
	// Check at every absolute deadline up to the horizon.
	for _, tk := range inflated {
		for d := tk.Deadline(); d <= horizon; d += tk.T {
			if err := g.Tick(); err != nil {
				return false, err
			}
			demand := npr.DemandBound(inflated, d)
			var blocking float64
			for j := range inflated {
				if inflated[j].Deadline() > d {
					if q := math.Min(inflated[j].Q, cp[j]); q > blocking {
						blocking = q
					}
				}
			}
			if demand+blocking > d+1e-9 {
				return false, nil
			}
		}
	}
	return true, nil
}

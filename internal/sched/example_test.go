package sched_test

import (
	"fmt"

	"fnpr/internal/delay"
	"fnpr/internal/sched"
	"fnpr/internal/task"
)

// Delay-aware response-time analysis under floating non-preemptive regions:
// the same set analysed with the paper's Algorithm 1 and with the Equation 4
// state of the art.
func ExampleFNPRAnalysis_ResponseTimesFP() {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10, Prio: 0},
		{Name: "lo", C: 40, T: 200, Q: 8, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(2, 40)}

	a := sched.FNPRAnalysis{Tasks: ts, Delay: fns, Method: sched.Algorithm1}
	r1, _ := a.ResponseTimesFP()

	a.Method = sched.Equation4
	r4, _ := a.ResponseTimesFP()

	fmt.Printf("lo with Algorithm 1: R = %.0f\n", r1[1])
	fmt.Printf("lo with Equation 4:  R = %.0f\n", r4[1])
	// Output:
	// lo with Algorithm 1: R = 62
	// lo with Equation 4:  R = 64
}

// The preemption-count refinement (the paper's future work (ii)) recovers
// finite bounds even when the per-window delay equals Q.
func ExampleFNPRAnalysis_ResponseTimesFPLimited() {
	ts := task.Set{
		{Name: "hi", C: 5, T: 100, Q: 5, Prio: 0},
		{Name: "lo", C: 40, T: 400, D: 300, Q: 4, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(4, 40)} // delay == Q!
	a := sched.FNPRAnalysis{Tasks: ts, Delay: fns, Method: sched.Algorithm1}

	lim, _ := a.ResponseTimesFPLimited()
	fmt.Printf("lo: at most %d preemption(s), C' = %.0f, R = %.0f\n",
		lim.PreemptionLimit[1], lim.EffectiveC[1], lim.Response[1])
	// Output:
	// lo: at most 1 preemption(s), C' = 44, R = 49
}

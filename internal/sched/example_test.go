package sched_test

import (
	"fmt"

	"fnpr/internal/delay"
	"fnpr/internal/sched"
	"fnpr/internal/task"
)

// Delay-aware response-time analysis under floating non-preemptive regions:
// the same set analysed with the paper's Algorithm 1 and with the Equation 4
// state of the art.
func ExampleAnalyze() {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10, Prio: 0},
		{Name: "lo", C: 40, T: 200, Q: 8, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(2, 40)}

	r1, _ := sched.Analyze(nil, ts, sched.Options{Delay: fns})
	r4, _ := sched.Analyze(nil, ts, sched.Options{Delay: fns, Method: sched.Equation4})

	fmt.Printf("lo with Algorithm 1: R = %.0f\n", r1.Response[1])
	fmt.Printf("lo with Equation 4:  R = %.0f\n", r4.Response[1])
	// Output:
	// lo with Algorithm 1: R = 62
	// lo with Equation 4:  R = 64
}

// The preemption-count refinement (the paper's future work (ii)) recovers
// finite bounds even when the per-window delay equals Q.
func ExampleAnalyze_limited() {
	ts := task.Set{
		{Name: "hi", C: 5, T: 100, Q: 5, Prio: 0},
		{Name: "lo", C: 40, T: 400, D: 300, Q: 4, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(4, 40)} // delay == Q!
	lim, _ := sched.Analyze(nil, ts, sched.Options{Delay: fns, Limited: true})

	fmt.Printf("lo: at most %d preemption(s), C' = %.0f, R = %.0f\n",
		lim.PreemptionLimit[1], lim.EffectiveC[1], lim.Response[1])
	// Output:
	// lo: at most 1 preemption(s), C' = 44, R = 49
}

// The exact schedule-graph method replaces the Algorithm 1 bound with the
// true worst-case cumulative delay; the bound ordering exact <= Algorithm 1
// <= Equation 4 carries through the response-time analysis. On a constant
// delay function Algorithm 1 is tight, so the exact method matches it here
// (a front-loaded curve would separate them).
func ExampleAnalyze_exact() {
	ts := task.Set{
		{Name: "hi", C: 10, T: 100, Q: 10, Prio: 0},
		{Name: "lo", C: 40, T: 200, Q: 8, Prio: 1},
	}
	fns := []delay.Function{nil, delay.Constant(2, 40)}

	rx, _ := sched.Analyze(nil, ts, sched.Options{Delay: fns, Method: sched.Exact})
	fmt.Printf("lo exact: C' = %.0f, R = %.0f, degraded: %v\n",
		rx.EffectiveC[1], rx.Response[1], rx.Degraded[1])
	// Output:
	// lo exact: C' = 52, R = 62, degraded: false
}

package sched

import (
	"math"
	"testing"

	"fnpr/internal/delay"
	"fnpr/internal/task"
)

func TestResponseTimesFPLimitedTightens(t *testing.T) {
	// One rare high-priority task: the count refinement knows lo can be
	// preempted at most twice within its deadline, while plain Algorithm
	// 1 charges a preemption every Q.
	ts := task.Set{
		{Name: "hi", C: 5, T: 100, Q: 5, Prio: 0},
		{Name: "lo", C: 60, T: 300, D: 200, Q: 10, Prio: 1},
	}
	f := delay.Constant(3, 60)
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, f}, Method: Algorithm1}

	plain, err := a.ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	lim, err := a.ResponseTimesFPLimited()
	if err != nil {
		t.Fatal(err)
	}
	if lim.Response[1] > plain[1] {
		t.Fatalf("limited response %g above plain %g", lim.Response[1], plain[1])
	}
	if lim.Response[1] >= plain[1] {
		t.Fatalf("expected strict improvement: limited %g, plain %g", lim.Response[1], plain[1])
	}
	// The fixpoint count: R_lo ~ 60+3*2+5*ceil(R/100) -> R ~ 76; one
	// release of hi in 76 -> limit 1... iterate: with limit 1, C' = 63,
	// R = 63 + 5 = 68, count(68) = 1. Stable.
	if lim.PreemptionLimit[1] != 1 {
		t.Fatalf("preemption limit = %d, want 1", lim.PreemptionLimit[1])
	}
	if lim.EffectiveC[1] != 63 {
		t.Fatalf("C' = %g, want 63", lim.EffectiveC[1])
	}
	if lim.Response[1] != 68 {
		t.Fatalf("R = %g, want 68", lim.Response[1])
	}
}

func TestResponseTimesFPLimitedHandlesDivergentDelay(t *testing.T) {
	// Delay == Q makes plain Algorithm 1 diverge; the count refinement
	// keeps it finite (at most N preemptions each costing max f).
	ts := task.Set{
		{Name: "hi", C: 5, T: 100, Q: 5, Prio: 0},
		{Name: "lo", C: 40, T: 400, D: 300, Q: 4, Prio: 1},
	}
	f := delay.Constant(4, 40)
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, f}, Method: Algorithm1}
	if _, err := a.ResponseTimesFP(); err == nil {
		t.Fatal("plain analysis should reject the divergent bound")
	}
	lim, err := a.ResponseTimesFPLimited()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lim.Response[1], 1) {
		t.Fatal("limited analysis should recover a finite response")
	}
	// lo: count at deadline 300 -> 3 releases -> C' = 40 + 12 = 52;
	// R = 52 + 5 = 57 -> count 1 -> C' = 44, R = 49 -> count 1 stable.
	if lim.PreemptionLimit[1] != 1 || lim.EffectiveC[1] != 44 || lim.Response[1] != 49 {
		t.Fatalf("fixpoint = %+v, want limit 1, C'=44, R=49", lim)
	}
}

func TestResponseTimesFPLimitedValidation(t *testing.T) {
	ts := task.Set{{Name: "a", C: 5, T: 20, Q: 2, Prio: 0}}
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{delay.Constant(1, 5)}, Method: Equation4}
	if _, err := a.ResponseTimesFPLimited(); err == nil {
		t.Fatal("accepted Equation4 method")
	}
	a.Method = Algorithm1
	a.Delay = nil
	if _, err := a.ResponseTimesFPLimited(); err == nil {
		t.Fatal("accepted missing delay slice")
	}
	a.Delay = []delay.Function{delay.Constant(1, 99)}
	if _, err := a.ResponseTimesFPLimited(); err == nil {
		t.Fatal("accepted domain mismatch")
	}
	b := FNPRAnalysis{
		Tasks:  task.Set{{Name: "a", C: 5, T: 20, Prio: 0}},
		Delay:  []delay.Function{delay.Constant(1, 5)},
		Method: Algorithm1,
	}
	if _, err := b.ResponseTimesFPLimited(); err == nil {
		t.Fatal("accepted missing Q")
	}
}

func TestResponseTimesFPLimitedNeverWorseThanPlain(t *testing.T) {
	// Across a small family of sets, the refined analysis never yields a
	// larger response time than the plain one.
	base := task.Set{
		{Name: "h1", C: 2, T: 30, Q: 2, Prio: 0},
		{Name: "h2", C: 4, T: 70, Q: 3, Prio: 1},
		{Name: "lo", C: 30, T: 300, D: 250, Q: 6, Prio: 2},
	}
	for _, peak := range []float64{0.5, 1, 2, 4} {
		f := delay.FrontLoaded(peak, peak/4, 30)
		a := FNPRAnalysis{
			Tasks:  base,
			Delay:  []delay.Function{nil, delay.Constant(0.2, 4), f},
			Method: Algorithm1,
		}
		plain, err := a.ResponseTimesFP()
		if err != nil {
			t.Fatal(err)
		}
		lim, err := a.ResponseTimesFPLimited()
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if lim.Response[i] > plain[i]+1e-9 {
				t.Fatalf("peak %g task %d: limited %g above plain %g",
					peak, i, lim.Response[i], plain[i])
			}
		}
	}
}

func TestResponseTimesFPLimitedAdmitsMore(t *testing.T) {
	// A set the plain analysis rejects but the refinement admits: rare
	// preempters, tight deadline.
	ts := task.Set{
		{Name: "hi", C: 10, T: 200, Q: 10, Prio: 0},
		{Name: "lo", C: 50, T: 400, D: 70, Q: 5, Prio: 1},
	}
	f := delay.Constant(2, 50)
	a := FNPRAnalysis{Tasks: ts, Delay: []delay.Function{nil, f}, Method: Algorithm1}
	plain, err := a.ResponseTimesFP()
	if err != nil {
		t.Fatal(err)
	}
	// plain: Alg1 on const 2, Q=5: progress 3 per window from 5:
	// windows at 5,8,...,47 -> 15 preemptions x 2 = 30. C' = 80 > D=70.
	if !math.IsInf(plain[1], 1) {
		t.Fatalf("plain should reject (R=%v)", plain)
	}
	lim, err := a.ResponseTimesFPLimited()
	if err != nil {
		t.Fatal(err)
	}
	// limit: count at D=70 -> 1 release of hi -> C' = 52, R = 52+10=62
	// -> count(62) = 1, stable. 62 <= 70: schedulable.
	if math.IsInf(lim.Response[1], 1) || lim.Response[1] > 70 {
		t.Fatalf("refined analysis should admit: %+v", lim)
	}
	if !Schedulable(ts, lim.Response) {
		t.Fatal("refined response times should be schedulable")
	}
}
